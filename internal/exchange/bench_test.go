package exchange

import (
	"math/rand"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

func benchSparse(r *rand.Rand, dim int, density float64) *sparse.Vector {
	v := sparse.NewVector(dim, 0)
	for i := 0; i < dim; i++ {
		if r.Float64() < density {
			v.Index = append(v.Index, int32(i))
			v.Value = append(v.Value, r.NormFloat64())
		}
	}
	return v
}

// BenchmarkCodecEncodeSparse measures the in-place wire rounding every
// contribution pays before entering a collective, per codec kind. All
// kinds must stay allocation-free: encode works in the caller's buffer.
func BenchmarkCodecEncodeSparse(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(string(k), func(b *testing.B) {
			c, err := For(k)
			if err != nil {
				b.Fatal(err)
			}
			v := benchSparse(rand.New(rand.NewSource(7)), 1<<16, 0.05)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeSparse(v)
			}
		})
	}
}

// BenchmarkCodecEncodeDense is the dense-exchange analogue (ADMMLib's
// fp32 rounding and the quantizers over a full parameter vector).
func BenchmarkCodecEncodeDense(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(string(k), func(b *testing.B) {
			c, err := For(k)
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(8))
			x := make([]float64, 1<<16)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeDense(x)
			}
		})
	}
}

// BenchmarkCodecWireTraceInto measures re-costing a collective trace to
// wire sizes into caller scratch — per-round work on the engine hot path.
func BenchmarkCodecWireTraceInto(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(string(k), func(b *testing.B) {
			c, err := For(k)
			if err != nil {
				b.Fatal(err)
			}
			tr := collective.Trace{Steps: 8}
			for i := 0; i < 64; i++ {
				tr.Events = append(tr.Events, collective.Event{
					Step: i % 8, From: i % 4, To: (i + 1) % 4, Bytes: 8 + 20*i,
				})
			}
			var scratch []collective.Event
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := c.WireTraceInto(scratch[:0], tr)
				scratch = out.Events
			}
		})
	}
}
