package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// TestTCPLargeMessages pushes multi-megabyte dense frames through the TCP
// fabric in both directions at once — the pattern ring steps produce —
// verifying framing survives TCP segmentation and that concurrent
// bidirectional traffic cannot deadlock (sends must not block receives).
func TestTCPLargeMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("large-message stress in -short mode")
	}
	eps := world(t, "tcp", 2)
	const n = 1 << 19 // 512k float64 = 4 MiB payload
	mk := func(seed int64) []float64 {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		return x
	}
	a, b := mk(1), mk(2)

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	exchange := func(ep Endpoint, mine []float64, peer int, want []float64) {
		defer wg.Done()
		sendErr := make(chan error, 1)
		go func() { sendErr <- ep.Send(peer, wire.DenseMsg(1, mine)) }()
		in, err := ep.Recv(peer, 1)
		if err != nil {
			errCh <- err
			return
		}
		if err := <-sendErr; err != nil {
			errCh <- err
			return
		}
		if !vec.Equal(in.Dense, want) {
			errCh <- fmt.Errorf("payload corrupted in flight")
		}
	}
	wg.Add(2)
	go exchange(eps[0], a, 1, b)
	go exchange(eps[1], b, 0, a)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestTCPManySmallMessages verifies ordering holds under a flood of small
// tagged frames interleaved with sparse payloads.
func TestTCPManySmallMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("flood stress in -short mode")
	}
	eps := world(t, "tcp", 2)
	const k = 2000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < k; i++ {
			var err error
			if i%3 == 0 {
				sv := sparse.FromDense([]float64{0, float64(i), 0, 1})
				err = eps[0].Send(1, wire.SparseMsg(7, sv))
			} else {
				err = eps[0].Send(1, wire.Control(7, int64(i)))
			}
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < k; i++ {
		m, err := eps[1].Recv(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if m.Kind != wire.KindSparse || m.Sparse.ToDense()[1] != float64(i) {
				t.Fatalf("frame %d: wrong sparse payload", i)
			}
		} else {
			if m.Kind != wire.KindControl || m.Ints[0] != int64(i) {
				t.Fatalf("frame %d: got %v", i, m.Ints)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestChanFabricConcurrentCollectiveStorm runs many concurrent all-to-all
// rounds to shake out fabric races (run with -race).
func TestChanFabricConcurrentCollectiveStorm(t *testing.T) {
	const n = 8
	const rounds = 30
	f := NewChanFabric(n)
	defer f.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r)
			for round := 0; round < rounds; round++ {
				tag := int32(round)
				for p := 0; p < n; p++ {
					if p == r {
						continue
					}
					if err := ep.Send(p, wire.Control(tag, int64(r))); err != nil {
						errCh <- err
						return
					}
				}
				seen := 0
				for p := 0; p < n; p++ {
					if p == r {
						continue
					}
					if _, err := ep.Recv(p, tag); err != nil {
						errCh <- err
						return
					}
					seen++
				}
				if seen != n-1 {
					errCh <- fmt.Errorf("rank %d round %d: %d msgs", r, round, seen)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
