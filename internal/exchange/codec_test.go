package exchange

import (
	"math"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

func TestForCoversEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		c, err := For(k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if c.Kind() != k {
			t.Fatalf("%s: Kind() returned %s", k, c.Kind())
		}
	}
	if _, err := For("bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDenseExchangeFlag(t *testing.T) {
	for k, want := range map[Kind]bool{
		Sparse: false, SparseQ8: false, SparseQ16: false,
		Dense: true, DenseF32: true,
	} {
		c, _ := For(k)
		if c.DenseExchange() != want {
			t.Fatalf("%s: DenseExchange = %v", k, c.DenseExchange())
		}
	}
}

func TestExactCodecsAreIdentity(t *testing.T) {
	for _, k := range []Kind{Sparse, Dense} {
		c, _ := For(k)
		v := sparse.FromDense([]float64{0.1, 0, -2.5})
		c.EncodeSparse(v)
		d := []float64{0.1, -2.5}
		c.EncodeDense(d)
		if v.Value[0] != 0.1 || v.Value[1] != -2.5 || d[0] != 0.1 || d[1] != -2.5 {
			t.Fatalf("%s: exact codec changed values", k)
		}
	}
}

func TestWireTraceScaling(t *testing.T) {
	tr := collective.Trace{Steps: 1, Events: []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 120},
	}}
	cases := []struct {
		kind Kind
		want int
	}{
		{Sparse, 120},   // identity
		{SparseQ8, 50},  // 12-byte entries → 5-byte entries
		{SparseQ16, 60}, // → 6-byte entries
		{Dense, 120},    // identity
		{DenseF32, 60},  // halved values
	}
	for _, tc := range cases {
		c, _ := For(tc.kind)
		got := c.WireTrace(tr).Events[0].Bytes
		if got != tc.want {
			t.Fatalf("%s: WireTrace bytes %d, want %d", tc.kind, got, tc.want)
		}
		if tr.Events[0].Bytes != 120 {
			t.Fatalf("%s: WireTrace mutated its input", tc.kind)
		}
	}
}

func TestQuantizeDenseBitsBound(t *testing.T) {
	x := []float64{1, -0.5, 0.3, 0}
	QuantizeDenseBits(x, 8)
	// Max-abs element is exactly representable; every element stays within
	// half a quantization level of its original.
	if x[0] != 1 || x[3] != 0 {
		t.Fatalf("endpoints moved: %v", x)
	}
	if math.Abs(x[1]+0.5) > 0.5/127+1e-12 || math.Abs(x[2]-0.3) > 0.5/127+1e-12 {
		t.Fatalf("quantization error too large: %v", x)
	}
	// All-zero input is a no-op.
	z := []float64{0, 0}
	QuantizeDenseBits(z, 8)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector changed")
	}
}

func TestRoundF32DropsUnderflow(t *testing.T) {
	v := sparse.FromDense([]float64{1.5, 1e-300})
	RoundF32Sparse(v)
	if v.NNZ() != 1 || v.Value[0] != 1.5 {
		t.Fatalf("subnormal underflow not dropped: %+v", v)
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageByteFormulas(t *testing.T) {
	sp, _ := For(Sparse)
	f32, _ := For(DenseF32)
	if sp.SparseMsgBytes(10) != 8+12*10 {
		t.Fatalf("sparse msg bytes %d", sp.SparseMsgBytes(10))
	}
	if sp.DenseMsgBytes(100) != 4+8*100 {
		t.Fatalf("dense msg bytes %d", sp.DenseMsgBytes(100))
	}
	if f32.DenseMsgBytes(100) != 4+8*100/2 {
		t.Fatalf("f32 dense msg bytes %d", f32.DenseMsgBytes(100))
	}
	if f32.ZMsgBytes(7) != 4+8*7 {
		t.Fatalf("f32 z msg bytes %d", f32.ZMsgBytes(7))
	}
}
