package simnet

import "testing"

func TestJitterRangeAndDeterminism(t *testing.T) {
	j := Jitter{Seed: 9, Amp: 0.5}
	for iter := 0; iter < 50; iter++ {
		for w := 0; w < 16; w++ {
			f := j.Factor(iter, w)
			if f < 1 || f > 1.5 {
				t.Fatalf("factor %v out of [1,1.5]", f)
			}
			if f != j.Factor(iter, w) {
				t.Fatal("jitter not deterministic")
			}
		}
	}
}

func TestJitterDisabled(t *testing.T) {
	j := Jitter{}
	if j.Enabled() {
		t.Fatal("zero Jitter enabled")
	}
	if j.Factor(3, 4) != 1 {
		t.Fatal("disabled jitter altered factor")
	}
}

func TestJitterVaries(t *testing.T) {
	j := Jitter{Seed: 2, Amp: 0.5}
	same := true
	base := j.Factor(0, 0)
	for w := 1; w < 32 && same; w++ {
		if j.Factor(0, w) != base {
			same = false
		}
	}
	if same {
		t.Fatal("jitter constant across workers")
	}
	// Mean should be near 1 + Amp/2.
	sum := 0.0
	n := 0
	for iter := 0; iter < 100; iter++ {
		for w := 0; w < 32; w++ {
			sum += j.Factor(iter, w)
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 1.2 || mean > 1.3 {
		t.Fatalf("jitter mean %v, want ≈1.25", mean)
	}
}

func TestStragglerDelay(t *testing.T) {
	s := Stragglers{Seed: 3, Prob: 0.5, Delay: 2e-3}
	if !s.Enabled() {
		t.Fatal("delay-only injector should be enabled")
	}
	sawDelay, sawZero := false, false
	for iter := 0; iter < 40; iter++ {
		d := s.NodeDelay(iter, 1)
		switch d {
		case 0:
			sawZero = true
		case 2e-3:
			sawDelay = true
		default:
			t.Fatalf("delay %v", d)
		}
		// Delay-only injection must not touch the multiplicative factor.
		if s.NodeFactor(iter, 1) != 1 {
			t.Fatal("delay-only injector changed NodeFactor")
		}
	}
	if !sawDelay || !sawZero {
		t.Fatalf("delay injection degenerate: sawDelay=%v sawZero=%v", sawDelay, sawZero)
	}
}

func TestStragglerSlowdownAndDelayCompose(t *testing.T) {
	s := Stragglers{Seed: 3, Prob: 1, Slowdown: 3, Delay: 1e-3}
	if s.NodeFactor(0, 0) != 3 {
		t.Fatalf("factor %v", s.NodeFactor(0, 0))
	}
	if s.NodeDelay(0, 0) != 1e-3 {
		t.Fatalf("delay %v", s.NodeDelay(0, 0))
	}
}

func TestScaleBandwidthAndCompute(t *testing.T) {
	c := Tianhe2Like()
	s := c.ScaleBandwidth(4)
	if s.InterBeta != 4*c.InterBeta || s.IntraBeta != 4*c.IntraBeta {
		t.Fatal("ScaleBandwidth wrong")
	}
	if s.InterAlpha != c.InterAlpha {
		t.Fatal("ScaleBandwidth must not change latency")
	}
	s2 := c.ScaleCompute(5)
	if s2.ComputePerUnit != 5*c.ComputePerUnit {
		t.Fatal("ScaleCompute wrong")
	}
	if s2.InterBeta != c.InterBeta {
		t.Fatal("ScaleCompute must not change bandwidth")
	}
}
