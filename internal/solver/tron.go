package solver

import (
	"math"

	"psrahgadmm/internal/vec"
)

// TronOptions configures the trust-region Newton solver.
type TronOptions struct {
	// MaxIter bounds outer Newton iterations. Default 50.
	MaxIter int
	// MaxCG bounds conjugate-gradient steps per Newton iteration.
	// Default 40.
	MaxCG int
	// GradTol stops when ‖g‖ ≤ GradTol·‖g₀‖. Default 1e-3 (the loose
	// inner tolerance customary for ADMM subproblems — outer ADMM
	// iterations absorb the slack).
	GradTol float64
	// GradTolAbs is an absolute stop: ‖g‖ ≤ GradTolAbs. It protects the
	// relative test when the start point is already near-optimal.
	// Default 1e-10.
	GradTolAbs float64
	// CGTol is the relative residual target of the inner CG solve.
	// Default 0.1.
	CGTol float64
}

func (o *TronOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.MaxCG <= 0 {
		o.MaxCG = 40
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-3
	}
	if o.CGTol <= 0 {
		o.CGTol = 0.1
	}
	if o.GradTolAbs <= 0 {
		o.GradTolAbs = 1e-10
	}
}

// TronResult reports the work a TRON solve performed. CGIters is the total
// Hessian-vector product count, the dominant cost; the simnet compute model
// charges virtual time proportional to it.
type TronResult struct {
	Iters     int
	CGIters   int
	FunEvals  int
	F         float64
	GradNorm  float64
	Converged bool
}

// Workspace holds TRON's scratch vectors so hot callers (one subproblem
// solve per worker per ADMM iteration) avoid re-allocating seven
// dimension-sized slices per solve. A zero Workspace is valid; it grows on
// first use and is reused when the dimension matches.
type Workspace struct {
	g, s, r, d, hd, xNew, gNew []float64
}

func (ws *Workspace) ensure(n int) {
	if len(ws.g) == n {
		return
	}
	ws.g = make([]float64, n)
	ws.s = make([]float64, n)
	ws.r = make([]float64, n)
	ws.d = make([]float64, n)
	ws.hd = make([]float64, n)
	ws.xNew = make([]float64, n)
	ws.gNew = make([]float64, n)
}

// TRON minimizes obj starting from x (updated in place) with the
// trust-region Newton method of Lin & Moré: an inner Steihaug conjugate
// gradient solve truncated at the trust boundary, and the classic
// ratio-based radius update.
func TRON(obj Objective, x []float64, opts TronOptions) TronResult {
	var ws Workspace
	return TRONWorkspace(obj, x, opts, &ws)
}

// TRONWorkspace is TRON with caller-owned scratch (see Workspace).
func TRONWorkspace(obj Objective, x []float64, opts TronOptions, ws *Workspace) TronResult {
	opts.fill()
	n := obj.Dim()
	if len(x) != n {
		panic("solver: TRON x length mismatch")
	}

	ws.ensure(n)
	g := ws.g
	s := ws.s
	r := ws.r
	d := ws.d
	hd := ws.hd
	xNew := ws.xNew
	gNew := ws.gNew

	var res TronResult
	f := obj.Eval(x, g)
	res.FunEvals++
	gnorm0 := vec.Nrm2(g)
	gnorm := gnorm0
	converged := func() bool {
		return gnorm <= opts.GradTol*gnorm0 || gnorm <= opts.GradTolAbs
	}
	if converged() {
		res.F = f
		res.GradNorm = gnorm
		res.Converged = true
		return res
	}
	delta := gnorm0

	// Radius update constants from Lin & Moré.
	const (
		eta0 = 1e-4
		eta1 = 0.25
		eta2 = 0.75
	)
	const (
		sigma1 = 0.25
		sigma2 = 0.5
		sigma3 = 4.0
	)

	for res.Iters = 0; res.Iters < opts.MaxIter; res.Iters++ {
		if converged() {
			res.Converged = true
			break
		}

		// Steihaug CG: solve H s ≈ −g within the trust region.
		cgIters, atBoundary := steihaugCG(obj, g, s, r, d, hd, delta, opts, &res)
		_ = cgIters

		// Predicted reduction: −gᵀs − ½ sᵀHs. Using H s = −(r − (−g)) ⇒
		// sᵀHs = −sᵀ(r+g)... compute directly for clarity and safety.
		obj.HessVec(s, hd)
		res.CGIters++
		pred := -(vec.Dot(g, s) + 0.5*vec.Dot(s, hd))

		vec.Add(xNew, x, s)
		fNew := obj.Eval(xNew, gNew)
		res.FunEvals++
		actual := f - fNew

		snorm := vec.Nrm2(s)
		// Radius update.
		var ratio float64
		if pred > 0 {
			ratio = actual / pred
		} else {
			// Non-positive predicted reduction: the model is unreliable;
			// treat as failure and shrink.
			ratio = -1
		}
		switch {
		case ratio < eta1:
			delta = math.Max(sigma1*delta, math.Min(sigma2*snorm, delta*sigma2))
		case ratio < eta2:
			// keep delta
		default:
			if atBoundary {
				delta = math.Min(sigma3*delta, math.Max(delta, 2*snorm))
			}
		}

		if ratio > eta0 && actual > 0 {
			copy(x, xNew)
			copy(g, gNew)
			f = fNew
			gnorm = vec.Nrm2(g)
		}
		if delta <= 1e-12*gnorm0 || math.IsNaN(f) {
			break
		}
	}
	res.F = f
	res.GradNorm = gnorm
	if converged() {
		res.Converged = true
	}
	return res
}

// steihaugCG approximately solves H s = −g inside ‖s‖ ≤ delta. It writes
// the step into s and returns the CG iteration count and whether the step
// hit the trust boundary. r, d, hd are caller-provided scratch.
func steihaugCG(obj Objective, g, s, r, d, hd []float64, delta float64, opts TronOptions, res *TronResult) (int, bool) {
	vec.Zero(s)
	vec.ScaleTo(r, -1, g) // r = −g
	copy(d, r)
	rsq := vec.Nrm2Sq(r)
	tol := opts.CGTol * math.Sqrt(rsq)

	for it := 0; it < opts.MaxCG; it++ {
		if math.Sqrt(rsq) <= tol {
			return it, false
		}
		obj.HessVec(d, hd)
		res.CGIters++
		dhd := vec.Dot(d, hd)
		if dhd <= 0 {
			// Negative curvature: walk to the boundary along d.
			tau := boundaryTau(s, d, delta)
			vec.Axpy(tau, d, s)
			return it + 1, true
		}
		alpha := rsq / dhd
		// Tentative step.
		vec.Axpy(alpha, d, s)
		if vec.Nrm2(s) >= delta {
			// Retract and project onto the boundary.
			vec.Axpy(-alpha, d, s)
			tau := boundaryTau(s, d, delta)
			vec.Axpy(tau, d, s)
			return it + 1, true
		}
		vec.Axpy(-alpha, hd, r)
		rsqNew := vec.Nrm2Sq(r)
		beta := rsqNew / rsq
		rsq = rsqNew
		for i := range d {
			d[i] = r[i] + beta*d[i]
		}
	}
	return opts.MaxCG, false
}

// boundaryTau returns τ ≥ 0 with ‖s + τ·d‖ = delta.
func boundaryTau(s, d []float64, delta float64) float64 {
	sd := vec.Dot(s, d)
	dd := vec.Nrm2Sq(d)
	ss := vec.Nrm2Sq(s)
	if dd == 0 {
		return 0
	}
	disc := sd*sd + dd*(delta*delta-ss)
	if disc < 0 {
		disc = 0
	}
	return (-sd + math.Sqrt(disc)) / dd
}
