package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"psrahgadmm/internal/sparse"
)

// TestDecodeArbitraryBytesNeverPanics feeds the decoder random garbage,
// truncations of valid frames, and bit-flipped valid frames: it must
// always return an error (or a valid message) and never panic or over-read
// — the robustness a network-facing codec needs.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(90))

	// Pure garbage.
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		r.Read(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on garbage input: %v", p)
				}
			}()
			_, _ = Decode(bytes.NewReader(buf))
		}()
	}

	// Truncations of a valid frame at every boundary.
	var valid bytes.Buffer
	if err := Encode(&valid, DenseMsg(3, []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	full := valid.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		if cut == 0 && err != io.EOF {
			t.Fatalf("empty stream: %v, want io.EOF", err)
		}
	}

	// Single-bit flips of a valid frame: must decode to something valid
	// or error — never panic, never hang.
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), full...)
		mut[r.Intn(len(mut))] ^= 1 << uint(r.Intn(8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on bit-flipped frame: %v", p)
				}
			}()
			_, _ = Decode(bytes.NewReader(mut))
		}()
	}
}

// FuzzDecodeFrom drives the frame decoder with arbitrary byte streams.
// Invariants: never panic; a lying length prefix must not force an
// allocation disproportionate to the bytes actually present (the chunked
// readPayload guarantee); and any frame that decodes successfully must
// re-encode to the identical bytes (the codec is canonical).
func FuzzDecodeFrom(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(append([]byte(nil), full...))
		f.Add(append([]byte(nil), full[:len(full)/2]...))
		// Two frames back to back: exercises stream framing.
		f.Add(append(append([]byte(nil), full...), full...))
	}
	seed(Control(7, 1, -2, 3))
	seed(DenseMsg(3, []float64{1, 2.5, -3}))
	sv := sparse.NewVector(8, 2)
	sv.Index = append(sv.Index, 1, 5)
	sv.Value = append(sv.Value, 0.5, -1)
	seed(SparseMsg(4, sv))
	f.Add([]byte{magic0, magic1, version1, byte(KindDense), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x3f})
	// A version-1 frame (no CRC trailer) must still decode.
	v1 := []byte{magic0, magic1, version1, byte(KindControl), 9, 0, 0, 0, 0, 0, 0, 0, 12, 0, 0, 0,
		1, 0, 0, 0, 42, 0, 0, 0, 0, 0, 0, 0}
	f.Add(append([]byte(nil), v1...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var payload []byte
		for {
			start := len(data) - r.Len()
			m, p, err := DecodeFrom(r, payload)
			payload = p
			if err != nil {
				break
			}
			end := len(data) - r.Len()
			var re bytes.Buffer
			if eerr := Encode(&re, m); eerr != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", eerr)
			}
			// Byte-exact round trips hold only for current-version frames:
			// re-encoding a legacy version-1 frame upgrades it to version 2
			// (new version byte, appended CRC trailer) by design.
			if data[start+2] == version2 && !bytes.Equal(re.Bytes(), data[start:end]) {
				t.Fatalf("re-encode diverged from wire bytes at [%d:%d]", start, end)
			}
		}
		// A lying length prefix must not have grown the scratch far past
		// the input: doubling growth bounds it by twice the bytes present
		// plus one speculative chunk — never the claimed payload size.
		if cap(payload) > 2*(len(data)+decodeChunk) {
			t.Fatalf("decoder allocated %d bytes for a %d-byte input", cap(payload), len(data))
		}
	})
}

// TestDecodeHugeLengthPrefix checks the 1 GiB payload cap fires instead of
// attempting a giant allocation.
func TestDecodeHugeLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the length field to ~4 GiB.
	b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("4 GiB length prefix accepted")
	}
}
