package exchange

import (
	"bytes"
	"os"
	"testing"

	"psrahgadmm/internal/checkpoint"
)

// fuzzSnapshot is a representative two-worker snapshot exercising every
// field shape the codec knows: dense and sparse consensus views, strategy
// scalars, a dead rank.
func fuzzSnapshot() *Snapshot {
	return &Snapshot{
		Algorithm:  "psra-hgadmm",
		Iter:       42,
		Rho:        1.5,
		Epoch:      3,
		Dead:       []int32{1},
		ZPrev:      []float64{0.5, -0.25, 0},
		TotalCal:   12.5,
		TotalComm:  3.25,
		TotalBytes: 4096,
		Strategy:   []float64{7.5},
		Workers: []WorkerSnap{
			{Rank: 0, Clock: 10.5, CalTotal: 8, XA: []float64{1, 2, 3}, YA: []float64{0.1, 0.2, 0.3}, ZDense: []float64{0.5, -0.25, 0}},
			{Rank: 2, Clock: 11, CalTotal: 9, XA: []float64{4, 5, 6}, YA: []float64{0.4, 0.5, 0.6}, ZIdx: []int32{0, 2}, ZVal: []float64{0.5, 0}},
		},
	}
}

// fuzzSnapshotSharded mirrors a block-sharded run's snapshot shape: each
// rank's ZDense is its compact subscribed-block concatenation — lengths
// differ per rank and from the global dimension — alongside a sparse view.
// The PSCK format is identical; only the slice lengths exercise the
// decoder differently, which is exactly what the fuzz corpus should pin.
func fuzzSnapshotSharded() *Snapshot {
	return &Snapshot{
		Algorithm:  "psra-hgadmm-sharded",
		Iter:       7,
		Rho:        0.5,
		Epoch:      0,
		ZPrev:      []float64{1, 0, -1, 2, 0, 3},
		TotalCal:   1.5,
		TotalComm:  0.75,
		TotalBytes: 512,
		Workers: []WorkerSnap{
			{Rank: 0, Clock: 2, CalTotal: 1, XA: []float64{1}, YA: []float64{0.1}, ZDense: []float64{1, 0}, ZIdx: []int32{0}, ZVal: []float64{1}},
			{Rank: 1, Clock: 2.5, CalTotal: 1.5, XA: []float64{2, 3}, YA: []float64{0.2, 0.3}, ZDense: []float64{-1, 2, 0, 3}, ZIdx: []int32{2, 3, 5}, ZVal: []float64{-1, 2, 3}},
		},
	}
}

// FuzzPSCKDecode drives DecodeSnapshot with arbitrary bytes. Invariants:
// never panic; corrupt length prefixes must error without attempting an
// allocation beyond the bytes present; and any blob that decodes must
// re-encode to the identical bytes (the codec is canonical).
func FuzzPSCKDecode(f *testing.F) {
	full := EncodeSnapshot(fuzzSnapshot())
	f.Add(append([]byte(nil), full...))
	for _, cut := range []int{0, 3, 4, 8, len(full) / 2, len(full) - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	sharded := EncodeSnapshot(fuzzSnapshotSharded())
	f.Add(append([]byte(nil), sharded...))
	for _, cut := range []int{len(sharded) / 3, len(sharded) - 2} {
		f.Add(append([]byte(nil), sharded[:cut]...))
	}
	// Valid prefix with a huge vector-length prefix appended.
	f.Add(append(append([]byte(nil), full[:8]...), 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(s), data) {
			t.Fatal("re-encode diverged from accepted snapshot bytes")
		}
	})
}

// TestSnapshotTruncationRejected cuts a valid snapshot at every byte
// boundary: no truncation may decode successfully, and none may panic.
// Both the replicated and the sharded worker shapes are exercised.
func TestSnapshotTruncationRejected(t *testing.T) {
	for _, snap := range []*Snapshot{fuzzSnapshot(), fuzzSnapshotSharded()} {
		full := EncodeSnapshot(snap)
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeSnapshot(full[:cut]); err == nil {
				t.Fatalf("%s: truncation at byte %d of %d decoded successfully", snap.Algorithm, cut, len(full))
			}
		}
	}
}

// TestSnapshotCorruptLengthBounded pins the over-allocation guard: a
// corrupt u32 length prefix claiming ~2^31 elements must produce a decode
// error, not a multi-gigabyte make.
func TestSnapshotCorruptLengthBounded(t *testing.T) {
	full := EncodeSnapshot(fuzzSnapshot())
	// The Dead vector's length prefix sits right after magic+version+
	// Algorithm(str)+Iter+Rho+Epoch.
	off := 4 + 4 + (4 + len("psra-hgadmm")) + 4 + 8 + 4
	for _, evil := range []uint32{1 << 30, 0xffffffff} {
		mut := append([]byte(nil), full...)
		mut[off] = byte(evil)
		mut[off+1] = byte(evil >> 8)
		mut[off+2] = byte(evil >> 16)
		mut[off+3] = byte(evil >> 24)
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("length prefix %#x accepted", evil)
		}
	}
}

// TestTruncatedCheckpointRejectedOnLoad is the durability contract end to
// end: a PSCK blob saved through the fsynced DirStore, then truncated on
// disk (a torn write the rename discipline is supposed to prevent, or
// media damage), must be rejected at decode — a resumed run fails loudly
// instead of training from garbage.
func TestTruncatedCheckpointRejectedOnLoad(t *testing.T) {
	store, err := checkpoint.NewDirStore(t.TempDir(), "rank-0.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	full := EncodeSnapshot(fuzzSnapshot())
	if err := store.Save(full); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(store.Path(), int64(len(full)/2)); err != nil {
		t.Fatal(err)
	}
	data, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("load after truncate: ok=%v err=%v", ok, err)
	}
	if _, err := DecodeSnapshot(data); err == nil {
		t.Fatal("truncated checkpoint decoded successfully")
	}
}
