// Quarantine protocol of the elastic WLG runtime — the semantic-fault
// rung above crash tolerance. The elastic machinery absorbs ranks that
// STOP talking; this file handles ranks that keep talking WRONG.
//
// The Leader is the observer: it screens every gathered member
// contribution against that member's own baseline (watchdog.Screen),
// excludes flagged vectors from the node sum, and after the strike limit
// quarantines the member in its local tracker. Quarantine is a membership
// fact, so it propagates the way every membership fact here does: the
// Leader publishes evidence to the Group Generator (elKindQuarantine,
// re-sent each round until confirmed), the GG folds it into the
// append-only rejoin log as a membership.QuarantineLogEntry triple, and
// the log piggybacks on every control reply until every live rank — and
// the victim itself — has applied it. Application is incarnation-guarded
// and idempotent, so duplicated, reordered, or replayed evidence (a
// FaultFabric specialty) converges to the same view.
//
// The victim's side is probation: a rank that finds itself indicted stops
// contributing, locally rebuilds its would-be contribution each virtual
// iteration, and screens it against the baseline its clean history built
// (flagged observations never updated it, so the baseline still describes
// the healthy regime). quarantineRounds consecutive clean probes earn a
// rejoin announcement — the SAME handshake a crashed rank uses — and the
// GG mints a fresh incarnation whose join record supersedes the
// quarantine entry for every observer. A rank that never comes clean
// simply runs out the clock and exits with its farewell, keeping the GG's
// done-or-dead accounting sound.
package wlg

import (
	"errors"

	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/wire"
)

// errSelfQuarantined is the internal signal that the rejoin log indicts
// this rank's current incarnation; the worker loop turns it into
// probation, never into a run failure.
var errSelfQuarantined = errors.New("wlg: this rank is quarantined")

// errQuarantinedByScreen is the membership cause recorded for a rank the
// contribution screen excluded.
var errQuarantinedByScreen = errors.New("wlg: quarantined by contribution screen")

// reportQuarantines publishes evidence for every node member this rank
// has quarantined but the rejoin log does not confirm yet. At-least-once:
// called every led round, it keeps re-sending until the GG's log carries
// the entry; the GG applies duplicates idempotently. A send failure is
// ordinary death evidence.
func (w *elasticWorker) reportQuarantines(iter int) {
	for _, m := range w.members {
		if m == w.rank || !w.tr.Quarantined(m) {
			continue
		}
		inc := w.tr.Incarnation(m)
		if w.logHasQuarantine(m, inc) {
			continue
		}
		if err := w.ep.Send(w.gg, wire.Control(tagElControl, elKindQuarantine, int64(m), int64(iter), int64(inc))); err != nil {
			w.tr.Observe(err)
			return
		}
	}
}

// logHasQuarantine reports whether the rejoin log already records a
// quarantine of rank at (or past) the given incarnation.
func (w *elasticWorker) logHasQuarantine(rank, inc int) bool {
	for i := 0; i+2 < len(w.joinLog); i += 3 {
		r, _, in, quar := membership.ParseLogEntry(w.joinLog[i], w.joinLog[i+1], w.joinLog[i+2])
		if quar && r == rank && in >= inc {
			return true
		}
	}
	return false
}

// probation is the quarantined rank's path back: rebuild the would-be
// contribution for each remaining virtual iteration, screen it locally
// (nothing ships), and after quarantineRounds consecutive clean probes
// re-enter through the rejoin handshake. Returns the first iteration the
// caller's loop should execute — the granted join iteration, or MaxIter
// when re-admission was never earned (the loop then falls through to the
// farewell).
func (w *elasticWorker) probation(fromIter int, f WorkerFuncs) (int, error) {
	codec, err := w.cfg.codec()
	if err != nil {
		return 0, err
	}
	need := w.cfg.quarantineRounds()
	clean := 0
	var buf []float64
	for probe := fromIter + 1; probe < w.cfg.MaxIter && clean < need; probe++ {
		buf = append(buf[:0], f.ComputeW(probe)...)
		codec.EncodeDense(buf)
		if w.screen.ObserveDense(w.rank, buf) {
			clean = 0
		} else {
			clean++
		}
	}
	if clean < need {
		return w.cfg.MaxIter, nil
	}
	joinIter, warm, warmCnt, err := w.announceRejoin()
	if err != nil {
		return 0, err
	}
	if f.Rejoined != nil {
		f.Rejoined(joinIter, warm, warmCnt)
	}
	// The grant's log entry (already folded in by announceRejoin) carries
	// the new incarnation; the old indictment no longer matches it.
	w.selfQuar = false
	w.screen.Reset(w.rank)
	return joinIter, nil
}
