package core

import (
	"testing"

	"psrahgadmm/internal/collective"
)

// TestRegistryVariantsReachReferenceOptimum is the cross-variant
// equivalence check: every registered algorithm, run on the degenerate
// 1-node × 2-worker cluster where hierarchy, grouping, and partial
// barriers all collapse, must reach the same global optimum of the
// L1-logistic problem. Strategies differ in WHO/WHEN/WHAT they
// communicate, never in the fixed point of the recursion.
func TestRegistryVariantsReachReferenceOptimum(t *testing.T) {
	train, _ := testData(t, 120)
	rho, lambda := 1.0, 0.5
	fstar, _, err := ReferenceOptimum(train, rho, lambda, 250)
	if err != nil {
		t.Fatal(err)
	}
	if isNaN(fstar) || fstar <= 0 {
		t.Fatalf("degenerate reference optimum %v", fstar)
	}
	for _, v := range Variants() {
		v := v
		t.Run(string(v.Name), func(t *testing.T) {
			cfg := baseConfig(v.Name, 1, 2)
			tol := 0.02
			if v.Aggregator == collective.AggTrimmedMeanName {
				// A trimmed mean needs 2·TrimF < N contributors; run the
				// robust variants on 2×2, where one trim per side still
				// leaves half of the four contributions. A robust center
				// is NOT the mean: with ~30 rows per worker the per-rank
				// duals spread widely, so the trimmed fixed point sits a
				// few percent off f* (the heterogeneity bias every robust
				// aggregator pays). This test only checks convergence to
				// that nearby robust consensus; the Byzantine chaos test
				// checks tightness on an IID-sharded problem where the
				// bias vanishes.
				cfg = baseConfig(v.Name, 2, 2)
				tol = 0.2
			}
			// Generous budget and tight inner solves: the lossy and
			// stale variants converge slower, but all must arrive.
			cfg.MaxIter = 160
			cfg.Rho = rho
			cfg.Lambda = lambda
			cfg.Tron.MaxIter = 40
			cfg.EvalEvery = cfg.MaxIter // only the endpoint matters
			res, err := Run(cfg, train, RunOptions{FStar: fstar, HaveFStar: true})
			if err != nil {
				t.Fatal(err)
			}
			last := res.History[len(res.History)-1]
			// Tolerance covers the quantized codecs' precision floor;
			// exact variants land far inside it.
			if isNaN(last.RelError) || last.RelError > tol {
				t.Fatalf("%s: relative error %v vs f*=%v (objective %v)",
					v.Name, last.RelError, fstar, last.Objective)
			}
		})
	}
}
