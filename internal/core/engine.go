package core

import (
	"errors"
	"fmt"
	"sort"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
)

// corruptRetryCap bounds how many times one iteration's round may be
// retried because a frame failed its integrity check. CRC32C drops are
// independent per frame, so legitimate corruption clears in one or two
// attempts; a link that fails this many rounds in a row is poisoned and
// the run aborts with the corrupt cause instead of spinning.
const corruptRetryCap = 8

// RunOptions carries the optional evaluation inputs of a run.
type RunOptions struct {
	// Test enables per-iteration accuracy reporting.
	Test *dataset.Dataset
	// FStar enables relative-error reporting (paper eq. 18) against a
	// reference optimum, e.g. from ReferenceOptimum.
	FStar float64
	// HaveFStar distinguishes FStar == 0 from "not provided".
	HaveFStar bool
	// OnIteration, when non-nil, observes each IterStat as it is
	// produced (progress reporting in the CLIs).
	OnIteration func(IterStat)
	// Checkpoint, when non-nil, enables periodic snapshots and — with
	// Resume set — restart from the store's latest snapshot. See
	// CheckpointOptions for the exactness contract.
	Checkpoint *CheckpointOptions
	// Health, when non-nil, receives the run's live-worker and epoch
	// gauges plus per-rank PeerDown counters (external monitoring). Run
	// creates a private one when nil; the same numbers always surface in
	// every IterStat.
	Health *metrics.Health
}

// Run trains L1-regularized logistic regression on train with the
// configured algorithm and virtual cluster, returning the per-iteration
// history. Runs are deterministic: equal inputs give bit-identical
// histories.
//
// Run contains the ONE iteration loop of the engine. Everything
// algorithm-specific lives behind the strategy triple the registry binds
// to cfg.Algorithm: the ConsensusStrategy executes the round, the
// SyncModel decides admission, and the ExchangeCodec fixes the wire
// format. The loop itself only does bookkeeping every variant shares —
// residuals, evaluation cadence, adaptive penalty, early stopping.
//
// Failure semantics are selected by Config.Elastic:
//
//   - Fail-stop (default): if the communication fabric fails mid-run (a
//     rank killed by Config.Faults, a closed endpoint), Run aborts the
//     iteration, unblocks every worker goroutine, and returns the partial
//     Result accumulated so far ALONGSIDE the error — callers get the
//     history up to the failure instead of a deadlock.
//   - Fail-survive (Elastic): a death is absorbed into the membership
//     view, the failed round retries over the survivors, and the run
//     continues to MaxIter on the shrunken world with the z-update
//     averaging over live shards. Run returns an error only when the
//     failure is not peer loss or no workers survive. Both exit paths set
//     Z, SystemTime, and the membership fields of Result.
func Run(cfg Config, train *dataset.Dataset, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	if train.Rows() < cfg.Topo.Size() {
		return nil, fmt.Errorf("core: %d rows cannot feed %d workers", train.Rows(), cfg.Topo.Size())
	}
	variant, ok := Lookup(cfg.Algorithm)
	if !ok { // unreachable after Validate; kept for direct callers
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
	consensusKind, syncKind, codecKind := variant.resolve(cfg)
	codec, err := exchange.For(codecKind)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Algorithm, err)
	}
	sharded := variant.Sharded || cfg.ShardedState

	ws := newWorkers(cfg, train)
	// One scratch fabric serves every in-run collective; rank numbering
	// matches the virtual topology so link classes resolve correctly.
	// A fault plan wraps it for deterministic failure injection. Zero-copy
	// is safe here: every collective is barrier-aligned, the workspaces
	// ship only their private chunk scratch, and aborted-round stragglers
	// are tag-matched but never payload-read.
	var fab transport.Fabric = transport.NewChanFabricZeroCopy(cfg.Topo.Size())
	var ffab *transport.FaultFabric
	if cfg.Faults != nil {
		ffab = transport.NewFaultFabric(fab, *cfg.Faults)
		fab = ffab
	}
	defer fab.Close()

	// The membership tracker is the single source of truth for who is
	// alive; the health metrics mirror it for external observers and the
	// per-iteration stats.
	members := membership.NewTracker(cfg.Topo.Size())
	health := opts.Health
	if health == nil {
		health = metrics.NewHealth(cfg.Topo.Size())
	}
	members.OnDown(func(rank int, cause error) {
		health.ObserveDown(rank)
		health.LiveWorkers.Set(int64(members.LiveCount()))
		health.Epoch.Set(int64(members.Epoch()))
	})
	members.OnUp(func(rank, incarnation int) {
		health.LiveWorkers.Set(int64(members.LiveCount()))
		health.Epoch.Set(int64(members.Epoch()))
	})

	env := &strategyEnv{
		ws:      ws,
		fab:     fab,
		codec:   codec,
		sync:    newSyncModel(syncKind, cfg),
		dim:     train.Dim(),
		members: members,
		elastic: cfg.Elastic,
	}
	if f := cfg.Faults; f != nil && (f.CorruptProb > 0 || len(f.CorruptAtIteration) > 0) {
		env.corruptible = true
	}
	// The aggregator spec rides every PSR/shard collective job; the mean
	// spec routes through the unmodified sum kernels, so non-robust runs
	// stay bit-identical to the pre-aggregator engine.
	if env.agg, err = cfg.aggSpec(); err != nil { // unreachable after Validate; kept for direct callers
		return nil, fmt.Errorf("core: %s: %w", cfg.Algorithm, err)
	}
	// The contribution screen (nil when disabled) scores every encoded
	// contribution at the encodeSparse chokepoint; the quarantine
	// controller below turns its strikes into membership transitions at
	// iteration boundaries.
	env.screen = watchdog.NewScreen(cfg.Screen, cfg.Topo.Size())
	if f := cfg.Faults; f != nil && len(f.ByzantineAtIteration) > 0 {
		env.byz = make([]byzRank, cfg.Topo.Size())
		env.byzSeed = f.Seed
		for r, bf := range f.ByzantineAtIteration {
			env.byz[r] = byzRank{mode: bf.Mode, from: bf.Iteration, until: bf.Until}
		}
	}
	// The stateStore owns the consensus state's placement — replicated
	// dense z or block-sharded z — and allocates every worker's storage.
	// Placement composes freely with the sync model: the strategies route
	// all placement-specific work through the store (see statestore.go).
	env.store = newStateStore(env, sharded, cfg.ShardBlocks)
	env.store.initWorkers()
	// The top-k codecs carry per-rank error-feedback state: the residual
	// of dropped (and quantized-away) mass, merged back before the next
	// selection, plus the adaptive k driven by CodecBudgetBytes. Every
	// other codec leaves states nil, keeping the encode path — and every
	// golden history — byte-identical to the stateless engine.
	if exchange.IsTopK(codecKind) {
		env.states = make([]*exchange.State, cfg.Topo.Size())
		for r := range env.states {
			s := exchange.NewState(codecKind, cfg.CodecBudgetBytes)
			s.DisableErrorFeedback = cfg.CodecNoErrorFeedback
			s.AgeScoring = cfg.CodecAgeScoring
			if cfg.CodecTopK > 0 {
				s.K = cfg.CodecTopK
				s.KMin = cfg.CodecTopK
			}
			env.states[r] = s
		}
	}
	// The run's persistent goroutine sets: the compute pool executes
	// x-updates, the crew serves collective membership. Both are created
	// once so steady-state rounds spawn nothing.
	env.pool = newComputePool()
	defer env.pool.close()
	env.crew = newCrew(env)
	defer env.crew.close()
	strat, err := newStrategy(consensusKind, env, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Algorithm, err)
	}

	// Scheduled kills and rejoins, fired at iteration starts. In elastic
	// mode the death is also recorded in the membership view at the same
	// boundary, making elastic chaos runs deterministic: the rank leaves
	// the world before any collective can race against discovering it. A
	// rejoin is the mirror image: the fabric endpoint reopens, the tracker
	// revives the rank as a new incarnation, and the worker's consensus
	// view warm-starts from the cluster's current iterate — all before the
	// round, so the strategies simply see one more live rank.
	killAt := make(map[int][]int)
	rejoinAt := make(map[int][]int)
	// Corruption and NaN injections share the boundary mechanism but fire
	// at most ONCE per run: the entry is deleted when executed, so a
	// post-rollback replay of the same iteration is not re-poisoned (the
	// whole point of the rollback is to get past the fault).
	corruptAt := make(map[int][]int)
	nanAt := make(map[int][]int)
	if ffab != nil {
		for r, it := range cfg.Faults.KillAtIteration {
			killAt[it] = append(killAt[it], r)
		}
		for r, it := range cfg.Faults.RejoinAtIteration {
			rejoinAt[it] = append(rejoinAt[it], r)
		}
		for r, it := range cfg.Faults.CorruptAtIteration {
			corruptAt[it] = append(corruptAt[it], r)
		}
		for r, it := range cfg.Faults.NaNAtIteration {
			nanAt[it] = append(nanAt[it], r)
		}
		for _, m := range []map[int][]int{killAt, rejoinAt, corruptAt, nanAt} {
			for _, rs := range m {
				sort.Ints(rs)
			}
		}
	}

	res := &Result{Config: cfg, History: make([]IterStat, 0, cfg.MaxIter)}
	zPrev := make([]float64, train.Dim())
	zbar := make([]float64, train.Dim())

	// finish stamps the shared exit-path fields — on success AND on
	// failure, so a partial Result is never missing Z, SystemTime, or the
	// membership view.
	finish := func() {
		res.SystemTime = res.TotalCalTime + res.TotalCommTime
		live := env.liveWorkers()
		if len(live) == 0 {
			live = ws
		}
		alive := members.Alive
		if members.LiveCount() == 0 {
			alive = func(int) bool { return true }
		}
		z := make([]float64, env.dim)
		env.store.assembleInto(z, live, alive)
		res.Z = z
		res.LiveWorkers = members.LiveCount()
		res.Epoch = members.Epoch()
		res.Degraded = res.LiveWorkers < len(ws)
	}
	fail := func(iter int, err error) (*Result, error) {
		finish()
		return res, fmt.Errorf("core: iteration %d: %w", iter, err)
	}

	startIter := 0
	if opts.Checkpoint != nil && opts.Checkpoint.Resume {
		startIter, err = restoreCheckpoint(opts.Checkpoint, &cfg, env, strat, zPrev, res)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		// Replay scheduled kills and rejoins that predate the snapshot, in
		// iteration order, so the fabric agrees with the restored
		// membership view (a rank killed then revived must end up open).
		for it := 0; it < startIter; it++ {
			for _, r := range killAt[it] {
				ffab.Kill(r)
			}
			for _, r := range rejoinAt[it] {
				ffab.Revive(r)
			}
		}
	}

	// The divergence watchdog (nil when disabled) plus rollback
	// bookkeeping. histBase maps History indices to iterations: entry i is
	// iteration startIter+i, which a rollback's truncation must respect on
	// resumed runs.
	wd := watchdog.New(cfg.Watchdog)
	wdCfg := cfg.Watchdog.Fill()
	rollbacks := 0
	histBase := startIter
	var quar *quarantineCtl
	if env.screen != nil {
		quar = newQuarantineCtl(cfg, env.agg)
	}

	// A round that fails because peers died is retried over the survivors
	// (elastic mode only). Each death shrinks the world by one, and a
	// retry can surface at most one fresh death per observing member, so
	// 2·world+4 attempts bounds any real cascade; hitting the cap means
	// the round is failing for a reason retries cannot fix.
	retryCap := 2*cfg.Topo.Size() + 4
	// Bound the liveness predicate once: a per-iteration members.Alive
	// method value would heap-allocate a closure on the steady-state path
	// the bench snapshot pins at zero.
	isAlive := members.Alive
	for iter := startIter; iter < cfg.MaxIter; iter++ {
		env.curIter = iter
		for _, r := range killAt[iter] {
			ffab.Kill(r)
			if cfg.Elastic {
				members.MarkDown(r, &transport.PeerDownError{Peer: r, Cause: errScheduledKill})
			}
		}
		if rs := rejoinAt[iter]; len(rs) > 0 {
			// The rejoiner's virtual clock jumps to the live maximum: it
			// models a process that was absent, not one that computed.
			var maxClock float64
			for _, w := range env.liveWorkers() {
				if w.clock > maxClock {
					maxClock = w.clock
				}
			}
			for _, r := range rs {
				if members.Alive(r) {
					continue // e.g. a KillAfterSends trigger that never fired
				}
				ffab.Revive(r)
				members.MarkUp(r)
				env.store.rejoin(ws[r], zPrev, maxClock)
				if env.states != nil {
					// The rejoiner's residual described contributions its
					// dead incarnation never shipped; restart error feedback
					// clean (k re-derives on first encode).
					env.states[r].Reset()
				}
			}
		}
		if (cfg.Elastic || env.screen != nil) && members.LiveCount() == 0 {
			return fail(iter, errors.New("no live workers remain"))
		}
		if rs := corruptAt[iter]; len(rs) > 0 {
			for _, r := range rs {
				ffab.ArmCorrupt(r)
			}
			delete(corruptAt, iter)
		}
		if rs := nanAt[iter]; len(rs) > 0 {
			for _, r := range rs {
				ws[r].poisonNaN = true
			}
			delete(nanAt, iter)
		}

		var timing iterTiming
		lostRetries, corruptRetries := 0, 0
		for {
			var err error
			timing, err = strat.Round(cfg, iter)
			if err == nil {
				break
			}
			if errors.Is(err, errRoundCorrupt) {
				// A checksum-dropped frame is a recoverable loss in ANY
				// failure mode: the fabric is healthy, nobody consumed bad
				// bytes, and a fresh attempt under a new tag window re-ships
				// the round. Bounded so a persistently poisoned link becomes
				// a typed failure instead of an infinite retry.
				if corruptRetries >= corruptRetryCap {
					return fail(iter, fmt.Errorf("giving up after %d corrupt-frame round retries: %w", corruptRetries, err))
				}
				corruptRetries++
				health.CorruptRounds.Inc()
				continue
			}
			if !cfg.Elastic || !errors.Is(err, errPeersLost) ||
				members.LiveCount() == 0 || lostRetries >= retryCap {
				// Partial results travel with the error: everything up
				// to the failed iteration is valid history.
				return fail(iter, err)
			}
			lostRetries++
			// Failed attempts charge no virtual time: the simulated
			// cluster's clock models healthy progress, and a retried
			// round re-runs from the reconciled state.
		}

		// Quarantine boundary: probe quarantined ranks (possibly readmitting
		// them), quarantine live ranks whose screen strikes hit the limit,
		// and enforce the robust quorum bound — all BEFORE this iteration's
		// stats, so LiveWorkers, the assembled z̄, and the objective reflect
		// the post-transition world.
		if quar != nil {
			if qerr := quar.sweep(env, cfg, iter, zPrev, res); qerr != nil {
				return fail(iter, qerr)
			}
		}

		live := env.liveWorkers()
		// Adaptive k: every live rank observes the same round total, so the
		// per-rank states stay in lockstep and selection k is identical
		// across ranks — the property the deterministic-history contract
		// needs.
		if env.states != nil && timing.bytes > 0 {
			for _, w := range live {
				env.states[w.rank].Adapt(timing.bytes)
			}
		}
		stat := IterStat{
			Iter:        iter,
			Objective:   nan(),
			RelError:    nan(),
			Accuracy:    nan(),
			CalTime:     timing.cal,
			CommTime:    timing.comm,
			Bytes:       timing.bytes,
			Rho:         cfg.Rho,
			LiveWorkers: members.LiveCount(),
			Epoch:       members.Epoch(),
			PeerDowns:   health.TotalPeerDowns(),
		}
		// Per-rank consensus-state footprint: max over live ranks, reported
		// every iteration under every sync model. In replicated mode every
		// rank carries the full dimension; sharded, only the subscribed
		// blocks — the number the store's placement shrinks.
		var resident int64
		for _, w := range live {
			if rb := env.store.residentBytes(w); rb > resident {
				resident = rb
			}
		}
		stat.ResidentBytes = resident
		health.ResidentBytes.Set(resident)
		env.store.assembleInto(zbar, live, isAlive)
		stat.PrimalRes, stat.DualRes = residuals(live, zbar, zPrev, cfg.Rho)
		copy(zPrev, zbar)
		if iter%cfg.EvalEvery == 0 || iter == cfg.MaxIter-1 {
			stat.Objective = globalObjective(cfg, live, zbar)
			// Paper eq. 18: |f − f*| / |f*|. Gate on HaveFStar (f* = 0 is a
			// legitimate optimum for trivially separable data, though the
			// ratio is then undefined and stays NaN).
			if opts.HaveFStar && absf(opts.FStar) != 0 {
				stat.RelError = absf(stat.Objective-opts.FStar) / absf(opts.FStar)
			}
			if opts.Test != nil {
				stat.Accuracy = opts.Test.Accuracy(zbar)
			}
		}
		res.History = append(res.History, stat)
		res.TotalCalTime += timing.cal
		res.TotalCommTime += timing.comm
		res.TotalBytes += timing.bytes
		if opts.OnIteration != nil {
			opts.OnIteration(stat)
		}
		// Divergence check BEFORE the adaptive penalty and the checkpoint
		// save: a poisoned iteration must neither steer ρ nor be persisted
		// as a "good" snapshot. The iterate scan runs first — a NaN that a
		// zero gather or a sparse merge masked out of the residuals is still
		// poison in somebody's x/y/z.
		if wd != nil {
			var trip *watchdog.TripError
			for _, w := range live {
				if bad := watchdog.ScanNonFinite([]string{"x", "y", "z"}, w.xA, w.yA, w.zStore); bad != "" {
					trip = &watchdog.TripError{Iter: iter, Reason: fmt.Sprintf("non-finite iterate on rank %d: %s", w.rank, bad)}
					break
				}
			}
			if trip == nil {
				haveObj := iter%cfg.EvalEvery == 0 || iter == cfg.MaxIter-1
				trip = wd.Observe(iter, stat.PrimalRes, stat.DualRes, stat.Objective, haveObj)
			}
			if trip != nil {
				health.WatchdogTrips.Inc()
				ck := opts.Checkpoint
				if rollbacks >= wdCfg.MaxRollbacks || ck == nil || ck.Store == nil {
					return fail(iter, trip)
				}
				toIter, ok, rerr := rollbackToSnapshot(ck, &cfg, env, strat, zPrev, res)
				if rerr != nil {
					return fail(iter, fmt.Errorf("rollback after %v: %w", trip, rerr))
				}
				if !ok {
					return fail(iter, fmt.Errorf("no checkpoint to roll back to: %w", trip))
				}
				rollbacks++
				// The snapshot restored iterates, z_prev, ρ, strategy
				// scalars, and the virtual-clock totals; everything derived
				// since is discarded: history past the snapshot, the codec
				// error-feedback residuals (they describe contributions of a
				// timeline that no longer happened), and the watchdog's own
				// baseline (the replay builds a fresh one).
				res.History = res.History[:toIter-histBase]
				if env.states != nil {
					for _, s := range env.states {
						s.Reset()
					}
				}
				wd.Reset()
				res.Rollbacks = append(res.Rollbacks, RollbackEvent{TripIter: iter, ToIter: toIter, Reason: trip.Reason})
				health.Rollbacks.Inc()
				iter = toIter - 1
				continue
			}
		}
		if cfg.AdaptiveRho {
			if newRho := adaptRho(cfg.Rho, stat.PrimalRes, stat.DualRes, cfg.RhoMu, cfg.RhoTau); newRho != cfg.Rho {
				cfg.Rho = newRho
				setRho(ws, newRho)
			}
		}
		if ck := opts.Checkpoint; ck != nil && ck.Store != nil && (iter+1)%ck.interval() == 0 {
			if err := saveCheckpoint(ck, cfg, env, strat, iter+1, zPrev, res); err != nil {
				return fail(iter, fmt.Errorf("checkpoint: %w", err))
			}
		}
		if cfg.Tol > 0 && stat.PrimalRes <= cfg.Tol && stat.DualRes <= cfg.Tol {
			res.Stopped = true
			break
		}
	}
	finish()
	return res, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ReferenceOptimum computes a tight approximation of the global optimum
// f* = min_x Σ f_i(x) + λ‖x‖₁ by running the exact single-group algorithm
// (one node, one worker per data shard is unnecessary — a single worker
// holding all data suffices) for many iterations with a tight subproblem
// tolerance. Used as the denominator of the paper's relative-error metric.
func ReferenceOptimum(train *dataset.Dataset, rho, lambda float64, iters int) (float64, []float64, error) {
	if iters <= 0 {
		iters = 300
	}
	cfg := Config{
		Algorithm: GCADMM,
		Topo:      simnet.Topology{Nodes: 1, WorkersPerNode: 1},
		Rho:       rho,
		Lambda:    lambda,
		MaxIter:   iters,
		EvalEvery: iters, // only the last evaluation matters
	}
	cfg.Tron.GradTol = 1e-8
	cfg.Tron.MaxIter = 200
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		return 0, nil, err
	}
	best := res.FinalObjective()
	// The objective at intermediate iterates can dip below the final
	// evaluation point only through numerical noise; guard by also
	// checking the final z directly and keeping the smaller of the two.
	scratch := make([]float64, train.Dim())
	obj := solver.NewLogisticProx(train.X, train.Labels, rho, scratch, scratch)
	atZ := obj.LocalLoss(res.Z) + lambda*vec.Nrm1(res.Z)
	if isNaN(best) || atZ < best {
		best = atZ
	}
	return best, vec.Clone(res.Z), nil
}
