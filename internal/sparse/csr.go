package sparse

import "fmt"

// CSR is a compressed-sparse-row matrix with NRows rows and NCols columns.
// Row r occupies positions [RowPtr[r], RowPtr[r+1]) of ColIdx/Val, with
// strictly increasing column indices inside each row. It is the storage
// format for every dataset shard: one row per training sample, one column
// per feature.
type CSR struct {
	NRows, NCols int
	RowPtr       []int64
	ColIdx       []int32
	Val          []float64
}

// NewCSR returns an empty matrix with the given shape and nonzero capacity.
func NewCSR(rows, cols, nnz int) *CSR {
	return &CSR{
		NRows:  rows,
		NCols:  cols,
		RowPtr: append(make([]int64, 0, rows+1), 0),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// AppendRow adds one row given parallel column/value slices with strictly
// increasing columns. The slices are copied. It panics if called after
// NRows rows have already been appended when the matrix was built with
// NewCSR; rows beyond the initial capacity grow NRows.
func (m *CSR) AppendRow(cols []int32, vals []float64) {
	if len(cols) != len(vals) {
		panic("sparse: AppendRow cols/vals length mismatch")
	}
	prev := int32(-1)
	for _, c := range cols {
		if c <= prev {
			panic("sparse: AppendRow columns must be strictly increasing")
		}
		if int(c) >= m.NCols {
			panic("sparse: AppendRow column out of range")
		}
		prev = c
	}
	m.ColIdx = append(m.ColIdx, cols...)
	m.Val = append(m.Val, vals...)
	m.RowPtr = append(m.RowPtr, int64(len(m.ColIdx)))
	if len(m.RowPtr)-1 > m.NRows {
		m.NRows = len(m.RowPtr) - 1
	}
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Check validates structural invariants.
func (m *CSR) Check() error {
	if len(m.RowPtr) != m.NRows+1 {
		return fmt.Errorf("sparse: RowPtr length %d != NRows+1 (%d)", len(m.RowPtr), m.NRows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.NRows] != int64(len(m.ColIdx)) {
		return fmt.Errorf("sparse: RowPtr end %d != nnz %d", m.RowPtr[m.NRows], len(m.ColIdx))
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx/Val length mismatch")
	}
	for r := 0; r < m.NRows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr decreasing at row %d", r)
		}
		prev := int32(-1)
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing", r)
			}
			if int(c) >= m.NCols {
				return fmt.Errorf("sparse: row %d column %d out of range", r, c)
			}
			prev = c
		}
	}
	return nil
}

// Row returns the column indices and values of row r as sub-slices of the
// matrix storage (do not modify).
func (m *CSR) Row(r int) ([]int32, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the nonzero count of row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// RowDot returns <row r, x> for dense x of length NCols.
func (m *CSR) RowDot(r int, x []float64) float64 {
	var s float64
	for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
		s += m.Val[k] * x[m.ColIdx[k]]
	}
	return s
}

// MulVec computes dst = A·x, where x has length NCols and dst length NRows.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.NCols || len(dst) != m.NRows {
		panic("sparse: MulVec dimension mismatch")
	}
	for r := 0; r < m.NRows; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[r] = s
	}
}

// MulTransVec computes dst = Aᵀ·y, where y has length NRows and dst length
// NCols. dst is overwritten.
func (m *CSR) MulTransVec(dst, y []float64) {
	if len(y) != m.NRows || len(dst) != m.NCols {
		panic("sparse: MulTransVec dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.NRows; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			dst[m.ColIdx[k]] += m.Val[k] * yr
		}
	}
}

// AddScaledRow accumulates alpha * row r into dense dst (length NCols).
func (m *CSR) AddScaledRow(dst []float64, r int, alpha float64) {
	for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
		dst[m.ColIdx[k]] += alpha * m.Val[k]
	}
}

// RowSlice returns a new CSR holding rows [lo, hi) of m; storage is copied
// so shards can outlive the parent. Column dimension is preserved.
func (m *CSR) RowSlice(lo, hi int) *CSR {
	if lo < 0 || hi < lo || hi > m.NRows {
		panic("sparse: RowSlice bounds out of range")
	}
	start, end := m.RowPtr[lo], m.RowPtr[hi]
	out := &CSR{
		NRows:  hi - lo,
		NCols:  m.NCols,
		RowPtr: make([]int64, hi-lo+1),
		ColIdx: make([]int32, end-start),
		Val:    make([]float64, end-start),
	}
	for r := lo; r <= hi; r++ {
		out.RowPtr[r-lo] = m.RowPtr[r] - start
	}
	copy(out.ColIdx, m.ColIdx[start:end])
	copy(out.Val, m.Val[start:end])
	return out
}

// ColumnDensity returns, for each of p contiguous column blocks, the number
// of stored nonzeros whose column falls in that block. The cost analyses of
// the sparse collectives (eqs. 11–16 of the paper) are parameterized by
// exactly this distribution.
func (m *CSR) ColumnDensity(p int) []int {
	counts := make([]int, p)
	base := m.NCols / p
	rem := m.NCols % p
	big := rem * (base + 1)
	for _, c := range m.ColIdx {
		ci := int(c)
		var b int
		if ci < big {
			b = ci / (base + 1)
		} else if base > 0 {
			b = rem + (ci-big)/base
		}
		counts[b]++
	}
	return counts
}
