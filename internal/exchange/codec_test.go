package exchange

import (
	"math"
	"math/rand"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/raceflag"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/wire"
)

func TestForCoversEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		c, err := For(k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if c.Kind() != k {
			t.Fatalf("%s: Kind() returned %s", k, c.Kind())
		}
	}
	if _, err := For("bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDenseExchangeFlag(t *testing.T) {
	for k, want := range map[Kind]bool{
		Sparse: false, SparseQ8: false, SparseQ16: false,
		Dense: true, DenseF32: true,
		TopK: false, TopKQ8: false,
	} {
		c, _ := For(k)
		if c.DenseExchange() != want {
			t.Fatalf("%s: DenseExchange = %v", k, c.DenseExchange())
		}
	}
}

func TestExactCodecsAreIdentity(t *testing.T) {
	for _, k := range []Kind{Sparse, Dense} {
		c, _ := For(k)
		v := sparse.FromDense([]float64{0.1, 0, -2.5})
		c.EncodeSparse(v)
		d := []float64{0.1, -2.5}
		c.EncodeDense(d)
		if v.Value[0] != 0.1 || v.Value[1] != -2.5 || d[0] != 0.1 || d[1] != -2.5 {
			t.Fatalf("%s: exact codec changed values", k)
		}
	}
}

func TestWireTraceScaling(t *testing.T) {
	tr := collective.Trace{Steps: 1, Events: []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 120},
	}}
	cases := []struct {
		kind Kind
		want int
	}{
		{Sparse, 120},   // identity
		{SparseQ8, 50},  // 12-byte entries → 5-byte entries
		{SparseQ16, 60}, // → 6-byte entries
		{Dense, 120},    // identity
		{DenseF32, 60},  // halved values
	}
	for _, tc := range cases {
		c, _ := For(tc.kind)
		got := c.WireTrace(tr).Events[0].Bytes
		if got != tc.want {
			t.Fatalf("%s: WireTrace bytes %d, want %d", tc.kind, got, tc.want)
		}
		if tr.Events[0].Bytes != 120 {
			t.Fatalf("%s: WireTrace mutated its input", tc.kind)
		}
	}
}

// TestTracedBytesMatchEncoded pins the message-size accounting to the
// bytes the wire codec actually produces, for every codec: the nominal
// sizes the strategies feed into traces (*MsgBytes, computed from the
// POST-encode payload) must equal wire.PayloadBytes of the message the
// fabric ships, and WireTrace must map those recorded sizes to the
// codec's modeled wire cost with the documented num/den scaling. This is
// what keeps the virtual cost model honest after encoders drop entries
// (quantization rounds small values to exact zero).
func TestTracedBytesMatchEncoded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dense := make([]float64, 64)
	for i := range dense {
		dense[i] = rng.NormFloat64() * 1e-2
	}
	// A vector with a huge max-abs entry so 8-bit quantization rounds the
	// tiny values to zero — exercising the dropped-entry accounting.
	spVals := append([]float64{1e6}, dense...)
	for _, k := range Kinds() {
		c, _ := For(k)
		v := sparse.FromDense(spVals)
		c.EncodeSparse(v)
		x := append([]float64(nil), dense...)
		c.EncodeDense(x)

		// The frames the in-process and TCP fabrics actually ship.
		spMsg := wire.SparseMsg(0, v)
		dnMsg := wire.DenseMsg(0, x)
		spFrame, err := wire.AppendMessage(nil, spMsg)
		if err != nil {
			t.Fatal(err)
		}
		if len(spFrame) != wire.EncodedBytes(spMsg) {
			t.Fatalf("%s: encoded sparse frame %d bytes, EncodedBytes %d", k, len(spFrame), wire.EncodedBytes(spMsg))
		}
		dnFrame, err := wire.AppendMessage(nil, dnMsg)
		if err != nil {
			t.Fatal(err)
		}
		if len(dnFrame) != wire.EncodedBytes(dnMsg) {
			t.Fatalf("%s: encoded dense frame %d bytes, EncodedBytes %d", k, len(dnFrame), wire.EncodedBytes(dnMsg))
		}
		spActual := wire.PayloadBytes(spMsg)
		dnActual := wire.PayloadBytes(dnMsg)

		// Nominal accounting must equal the actual encoded payload for the
		// formats that travel as-is (sparse contributions, dense float64).
		if k != DenseF32 {
			if got := c.SparseMsgBytes(v.NNZ()); got != spActual {
				t.Fatalf("%s: SparseMsgBytes(%d) = %d, encoded payload %d", k, v.NNZ(), got, spActual)
			}
		}
		if k == Sparse || k == Dense {
			if got := c.DenseMsgBytes(len(x)); got != dnActual {
				t.Fatalf("%s: DenseMsgBytes(%d) = %d, encoded payload %d", k, len(x), got, dnActual)
			}
			if got := c.ZMsgBytes(v.NNZ()); k == Sparse && got != spActual {
				t.Fatalf("%s: ZMsgBytes(%d) = %d, encoded payload %d", k, v.NNZ(), got, spActual)
			}
		}

		// WireTrace maps the recorded (actual) sizes to modeled wire cost.
		tr := collective.Trace{Steps: 1, Events: []collective.Event{
			{Step: 0, From: 0, To: 1, Bytes: spActual},
			{Step: 0, From: 1, To: 0, Bytes: dnActual},
		}}
		var wantSp, wantDn int
		switch k {
		case Sparse, Dense, TopK:
			wantSp, wantDn = spActual, dnActual
		case SparseQ8, TopKQ8:
			wantSp, wantDn = spActual*5/12, dnActual*5/12
		case SparseQ16:
			wantSp, wantDn = spActual*6/12, dnActual*6/12
		case DenseF32:
			wantSp, wantDn = spActual/2, dnActual/2
		}
		scaled := c.WireTrace(tr)
		if scaled.Events[0].Bytes != wantSp || scaled.Events[1].Bytes != wantDn {
			t.Fatalf("%s: WireTrace bytes (%d,%d), want (%d,%d)",
				k, scaled.Events[0].Bytes, scaled.Events[1].Bytes, wantSp, wantDn)
		}
		// WireTraceInto agrees event-for-event and reuses its scratch.
		dst := c.WireTraceInto(nil, tr)
		if dst.Steps != scaled.Steps || len(dst.Events) != len(scaled.Events) {
			t.Fatalf("%s: WireTraceInto shape mismatch", k)
		}
		for i := range scaled.Events {
			if dst.Events[i] != scaled.Events[i] {
				t.Fatalf("%s: WireTraceInto event %d = %+v, want %+v", k, i, dst.Events[i], scaled.Events[i])
			}
		}
		if tr.Events[0].Bytes != spActual || tr.Events[1].Bytes != dnActual {
			t.Fatalf("%s: scaling mutated its input", k)
		}
		if !raceflag.Enabled {
			scratchEv := dst.Events
			allocs := testing.AllocsPerRun(100, func() {
				out := c.WireTraceInto(scratchEv, tr)
				scratchEv = out.Events
			})
			if allocs != 0 {
				t.Fatalf("%s: WireTraceInto with warm scratch allocates %.1f times", k, allocs)
			}
		}
	}
}

func TestQuantizeDenseBitsBound(t *testing.T) {
	x := []float64{1, -0.5, 0.3, 0}
	QuantizeDenseBits(x, 8)
	// Max-abs element is exactly representable; every element stays within
	// half a quantization level of its original.
	if x[0] != 1 || x[3] != 0 {
		t.Fatalf("endpoints moved: %v", x)
	}
	if math.Abs(x[1]+0.5) > 0.5/127+1e-12 || math.Abs(x[2]-0.3) > 0.5/127+1e-12 {
		t.Fatalf("quantization error too large: %v", x)
	}
	// All-zero input is a no-op.
	z := []float64{0, 0}
	QuantizeDenseBits(z, 8)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector changed")
	}
}

func TestRoundF32DropsUnderflow(t *testing.T) {
	v := sparse.FromDense([]float64{1.5, 1e-300})
	RoundF32Sparse(v)
	if v.NNZ() != 1 || v.Value[0] != 1.5 {
		t.Fatalf("subnormal underflow not dropped: %+v", v)
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageByteFormulas(t *testing.T) {
	sp, _ := For(Sparse)
	f32, _ := For(DenseF32)
	if sp.SparseMsgBytes(10) != 8+12*10 {
		t.Fatalf("sparse msg bytes %d", sp.SparseMsgBytes(10))
	}
	if sp.DenseMsgBytes(100) != 4+8*100 {
		t.Fatalf("dense msg bytes %d", sp.DenseMsgBytes(100))
	}
	if f32.DenseMsgBytes(100) != 4+8*100/2 {
		t.Fatalf("f32 dense msg bytes %d", f32.DenseMsgBytes(100))
	}
	if f32.ZMsgBytes(7) != 4+8*7 {
		t.Fatalf("f32 z msg bytes %d", f32.ZMsgBytes(7))
	}
}
