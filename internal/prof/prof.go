// Package prof wires the standard runtime/pprof profiles behind the CLI
// flags the psra commands share (-cpuprofile, -memprofile,
// -mutexprofile). Profiles are flushed by an explicit Stop call rather
// than a defer, because the commands exit through os.Exit on the
// degraded path (exit code 4), which skips deferred functions — a
// degraded-but-complete run is exactly the one worth profiling.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// mutexSampling is the fraction passed to runtime.SetMutexProfileFraction
// when -mutexprofile is set: report every 5th contention event, the
// conventional low-overhead setting.
const mutexSampling = 5

// Flags holds the profile destinations registered by Register.
type Flags struct {
	cpu, mem, mutex string
	cpuFile         *os.File
}

// Register installs the three profile flags on fs (use flag.CommandLine
// for a command's global flags). Call before fs is parsed.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.mutex, "mutexprofile", "", "write a mutex-contention profile to this file on exit")
	return f
}

// Start begins CPU profiling and mutex sampling for every requested
// profile. Call once, after flag parsing.
func (f *Flags) Start() error {
	if f.cpu != "" {
		file, err := os.Create(f.cpu)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return fmt.Errorf("prof: %w", err)
		}
		f.cpuFile = file
	}
	if f.mutex != "" {
		runtime.SetMutexProfileFraction(mutexSampling)
	}
	return nil
}

// Stop flushes every requested profile. It must run on every completed
// run — including degraded completions that end in os.Exit(4) — and is
// safe to call when no profile was requested.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		f.cpuFile = nil
	}
	if f.mem != "" {
		file, err := os.Create(f.mem)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer file.Close()
		runtime.GC() // an up-to-date heap profile, not the last GC's
		if err := pprof.WriteHeapProfile(file); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if f.mutex != "" {
		file, err := os.Create(f.mutex)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer file.Close()
		if err := pprof.Lookup("mutex").WriteTo(file, 0); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	return nil
}
