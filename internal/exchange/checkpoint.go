package exchange

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint snapshot encoding. Like the wire codecs, this keeps the
// serialized representation of ADMM state in one place; unlike them it is
// always exact — float64 bits round-trip verbatim so a resumed run can
// reproduce the uninterrupted history bit-for-bit.
//
// Layout (little-endian): magic "PSCK", u32 version, then the Snapshot
// fields in declaration order. Vectors are length-prefixed; float64s
// travel as math.Float64bits so NaN payloads and signed zeros survive.

const (
	snapMagic   = "PSCK"
	snapVersion = uint32(1)
)

// WorkerSnap is one worker's persisted per-iteration state: the ADMM
// primal/dual/consensus triple plus the virtual clock and accounting
// needed to continue the simulated timeline exactly.
type WorkerSnap struct {
	Rank     int32
	Clock    float64
	CalTotal float64
	XA       []float64
	YA       []float64
	ZDense   []float64
	// ZIdx/ZVal carry the sparse consensus view for compact-feature
	// workers; empty for dense-only runtimes.
	ZIdx []int32
	ZVal []float64
}

// Snapshot is the full resumable state of a training run at an iteration
// boundary: which algorithm, where in the schedule, the penalty (which
// AdaptiveRho may have changed), the membership view, and every worker's
// state. Strategy carries consensus-strategy scalars (e.g. the star
// master's next-free time) whose meaning is private to the strategy.
type Snapshot struct {
	Algorithm  string
	Iter       int32
	Rho        float64
	Epoch      int32
	Dead       []int32
	ZPrev      []float64
	TotalCal   float64
	TotalComm  float64
	TotalBytes int64
	Strategy   []float64
	Workers    []WorkerSnap
}

type snapWriter struct{ buf []byte }

func (w *snapWriter) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *snapWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *snapWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *snapWriter) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}
func (w *snapWriter) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("exchange: truncated snapshot (want %d bytes, have %d)", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) i32() int32   { return int32(r.u32()) }
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *snapReader) str() string {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *snapReader) i32s() []int32 {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	// Bound the allocation by the bytes actually present: a corrupt length
	// prefix must produce an error, never a multi-gigabyte make.
	if n < 0 || n > len(r.buf)/4 {
		r.err = fmt.Errorf("exchange: vector length %d exceeds remaining %d bytes", n, len(r.buf))
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = r.i32()
	}
	return v
}

func (r *snapReader) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if n < 0 || n > len(r.buf)/8 {
		r.err = fmt.Errorf("exchange: vector length %d exceeds remaining %d bytes", n, len(r.buf))
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.f64()
	}
	return v
}

// EncodeSnapshot serializes a snapshot to its binary form.
func EncodeSnapshot(s *Snapshot) []byte {
	w := &snapWriter{buf: make([]byte, 0, 64)}
	w.buf = append(w.buf, snapMagic...)
	w.u32(snapVersion)
	w.str(s.Algorithm)
	w.i32(s.Iter)
	w.f64(s.Rho)
	w.i32(s.Epoch)
	w.i32s(s.Dead)
	w.f64s(s.ZPrev)
	w.f64(s.TotalCal)
	w.f64(s.TotalComm)
	w.u64(uint64(s.TotalBytes))
	w.f64s(s.Strategy)
	w.u32(uint32(len(s.Workers)))
	for i := range s.Workers {
		ws := &s.Workers[i]
		w.i32(ws.Rank)
		w.f64(ws.Clock)
		w.f64(ws.CalTotal)
		w.f64s(ws.XA)
		w.f64s(ws.YA)
		w.f64s(ws.ZDense)
		w.i32s(ws.ZIdx)
		w.f64s(ws.ZVal)
	}
	return w.buf
}

// DecodeSnapshot parses a binary snapshot, rejecting unknown magic or
// versions and truncated payloads.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := &snapReader{buf: data}
	if string(r.take(4)) != snapMagic {
		return nil, fmt.Errorf("exchange: not a snapshot (bad magic)")
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("exchange: unsupported snapshot version %d", v)
	}
	s := &Snapshot{}
	s.Algorithm = r.str()
	s.Iter = r.i32()
	s.Rho = r.f64()
	s.Epoch = r.i32()
	s.Dead = r.i32s()
	s.ZPrev = r.f64s()
	s.TotalCal = r.f64()
	s.TotalComm = r.f64()
	s.TotalBytes = int64(r.u64())
	s.Strategy = r.f64s()
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	// A worker record is at least 40 bytes (three scalars + five length
	// prefixes), so the remaining buffer bounds the plausible count — and
	// with it the allocation — long before the absolute cap matters.
	if n < 0 || n > 1<<20 || n > len(r.buf)/40 {
		return nil, fmt.Errorf("exchange: implausible worker count %d", n)
	}
	s.Workers = make([]WorkerSnap, n)
	for i := range s.Workers {
		ws := &s.Workers[i]
		ws.Rank = r.i32()
		ws.Clock = r.f64()
		ws.CalTotal = r.f64()
		ws.XA = r.f64s()
		ws.YA = r.f64s()
		ws.ZDense = r.f64s()
		ws.ZIdx = r.i32s()
		ws.ZVal = r.f64s()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("exchange: %d trailing bytes after snapshot", len(r.buf))
	}
	return s, nil
}
