package core

import (
	"testing"

	"psrahgadmm/internal/simnet"
)

func TestSSPCutoffBasics(t *testing.T) {
	mk := func(finish float64, stale int) sspClock {
		return sspClock{pending: &pendingCompute{finish: finish}, staleness: stale}
	}
	clocks := []sspClock{mk(3, 0), mk(1, 0), mk(2, 0), mk(9, 0)}
	var scratch []float64
	if got := sspCutoff(clocks, 2, 5, &scratch); got != 2 {
		t.Fatalf("k=2 cutoff = %v", got)
	}
	if got := sspCutoff(clocks, 4, 5, &scratch); got != 9 {
		t.Fatalf("k=4 cutoff = %v", got)
	}
	// k beyond population clamps.
	if got := sspCutoff(clocks, 99, 5, &scratch); got != 9 {
		t.Fatalf("clamped cutoff = %v", got)
	}
	// A participant at MaxDelay forces the cutoff out to its finish.
	clocks[3].staleness = 5
	if got := sspCutoff(clocks, 1, 5, &scratch); got != 9 {
		t.Fatalf("forced cutoff = %v", got)
	}
	// Empty population.
	if got := sspCutoff(nil, 1, 5, &scratch); got != 0 {
		t.Fatalf("empty cutoff = %v", got)
	}
	// Participants without pending are skipped.
	clocks[0].pending = nil
	clocks[3].staleness = 0
	if got := sspCutoff(clocks, 1, 5, &scratch); got != 1 {
		t.Fatalf("skip-nil cutoff = %v", got)
	}
}

func TestADMMLibMinBarrierExtremes(t *testing.T) {
	train, _ := testData(t, 160)
	for _, mb := range []int{1, 8} { // 1 worker (max async) and all workers (BSP-like)
		cfg := baseConfig(ADMMLib, 4, 2)
		cfg.MinBarrier = mb
		cfg.MaxIter = 15
		cfg.Jitter = simnet.Jitter{Seed: 2, Amp: 0.6}
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatalf("MinBarrier=%d: %v", mb, err)
		}
		if res.FinalObjective() >= res.History[0].Objective {
			t.Fatalf("MinBarrier=%d: no progress", mb)
		}
	}
}

func TestADMMLibFullBarrierMatchesGRADMMTrajectoryDirection(t *testing.T) {
	// With MinBarrier = all workers and no jitter, ADMMLib degenerates to
	// synchronous hierarchical ring ADMM — its trajectory should land
	// close to GR-ADMM's (same recursion, ADMMLib adds only fp32
	// rounding).
	train, _ := testData(t, 120)
	run := func(alg Algorithm) float64 {
		cfg := baseConfig(alg, 4, 2)
		cfg.MinBarrier = 8
		cfg.MaxIter = 15
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalObjective()
	}
	a := run(ADMMLib)
	g := run(GRADMM)
	if absf(a-g) > 0.01*(1+absf(g)) {
		t.Fatalf("synchronous ADMMLib %v deviates from GR-ADMM %v beyond fp32 noise", a, g)
	}
}

func TestADADMMWorkerGranularStaleness(t *testing.T) {
	// Strong jitter at worker granularity: AD-ADMM must still converge
	// with half the workers stale each round, and its per-iteration
	// communication must scale with the master's dense traffic.
	train, _ := testData(t, 160)
	cfg := baseConfig(ADADMM, 4, 2)
	cfg.MaxIter = 25
	cfg.Jitter = simnet.Jitter{Seed: 3, Amp: 1.0}
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective() >= res.History[0].Objective {
		t.Fatal("AD-ADMM made no progress under heavy jitter")
	}
	// Dense master exchange: bytes per round at least 2·d·8 per fresh
	// worker; with 8 workers and MinBarrier 4, ≥ 4 fresh per round.
	minPerRound := int64(4 * 2 * train.Dim() * 8)
	perRound := res.TotalBytes / int64(len(res.History))
	if perRound < minPerRound/2 {
		t.Fatalf("AD-ADMM per-round bytes %d implausibly low", perRound)
	}
}

func TestSSPFreshWorkIsConserved(t *testing.T) {
	// Over a run, every worker must become fresh regularly (MaxDelay
	// bound): with MaxDelay=2 no worker can contribute fewer than
	// MaxIter/(MaxDelay+1) x-updates' worth of compute time relative to
	// the most active one. Verified via total cal time being within a
	// factor of the per-round mean times iterations.
	train, _ := testData(t, 160)
	cfg := baseConfig(ADADMM, 4, 2)
	cfg.MaxIter = 30
	cfg.MaxDelay = 2
	cfg.Jitter = simnet.Jitter{Seed: 9, Amp: 0.8}
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, h := range res.History {
		if h.CalTime > 0 {
			rounds++
		}
	}
	if rounds < cfg.MaxIter*2/3 {
		t.Fatalf("only %d of %d rounds did fresh work", rounds, cfg.MaxIter)
	}
}
