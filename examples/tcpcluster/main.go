// TCP cluster: a complete PSRA-HGADMM training run over a genuine TCP
// mesh on localhost — every rank owns real sockets and exchanges real
// frames; only the process boundary is collapsed (each rank is a
// goroutine, so the example is self-contained and needs no orchestration).
// For true multi-process runs, use cmd/psra-worker, which runs the same
// code path.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	psra "psrahgadmm"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wlg"
)

const (
	rho     = 1.0
	lambda  = 1.0
	maxIter = 20
)

func main() {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	world := wlg.WorldSize(topo)

	// Reserve one loopback port per rank so every endpoint knows the full
	// mesh before any rank starts.
	addrs := make([]string, world)
	listeners := make([]net.Listener, world)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	fmt.Printf("mesh of %d ranks (4 workers + 1 group generator) on %v\n", world, addrs)

	// Establish the full mesh concurrently.
	eps := make([]transport.Endpoint, world)
	var setup sync.WaitGroup
	for i := 0; i < world; i++ {
		setup.Add(1)
		go func(i int) {
			defer setup.Done()
			ep, err := transport.NewTCPEndpoint(i, addrs, transport.TCPOptions{})
			if err != nil {
				log.Fatalf("rank %d: %v", i, err)
			}
			eps[i] = ep
		}(i)
	}
	setup.Wait()
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	train, test, err := psra.Generate(psra.News20Like(0.0005, 11))
	if err != nil {
		log.Fatal(err)
	}
	shards := train.Shard(topo.Size())
	dim := train.Dim()
	cfg := wlg.Config{Topo: topo, MaxIter: maxIter, GroupThreshold: 0}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wlg.RunGG(eps[wlg.GGRank(topo)], cfg); err != nil {
			log.Fatal(err)
		}
	}()

	finalZ := make([][]float64, topo.Size())
	for rank := 0; rank < topo.Size(); rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			x := make([]float64, dim)
			y := make([]float64, dim)
			z := make([]float64, dim)
			w := make([]float64, dim)
			obj := solver.NewLogisticProx(shards[rank].X, shards[rank].Labels, rho, y, z)
			funcs := wlg.WorkerFuncs{
				ComputeW: func(iter int) []float64 {
					solver.TRON(obj, x, solver.TronOptions{MaxIter: 10})
					solver.WLocal(w, y, x, rho)
					return w
				},
				ApplyW: func(iter int, bigW []float64, contributors int) {
					solver.ZUpdateL1(z, bigW, lambda, rho, contributors)
					solver.DualUpdate(y, x, z, rho)
				},
			}
			if err := wlg.RunWorker(eps[rank], cfg, funcs); err != nil {
				log.Fatal(err)
			}
			finalZ[rank] = vec.Clone(z)
		}(rank)
	}
	wg.Wait()

	for rank := 1; rank < topo.Size(); rank++ {
		if !vec.WithinTol(finalZ[rank], finalZ[0], 1e-9) {
			log.Fatalf("rank %d disagrees with rank 0 after %d iterations", rank, maxIter)
		}
	}
	z := finalZ[0]
	fmt.Printf("consensus reached after %d iterations over TCP: ‖z‖₀ = %d\n",
		maxIter, vec.CountNonzero(z))
	fmt.Printf("test accuracy of the consensus model: %.3f\n", test.Accuracy(z))
	var sent int64
	for _, ep := range eps {
		sent += ep.Stats().BytesSent
	}
	fmt.Printf("real bytes pushed through the sockets: %d\n", sent)
}
