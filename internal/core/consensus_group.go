package core

import (
	"sort"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

// groupStrategy is the group-local-consensus reading of Algorithms 1–3:
// one grouping round per iteration, each group computing z from its own
// members' W only (scaled by the group's worker count). Fast groups
// proceed without ever waiting for slow nodes — the straggler isolation
// Figure 7 measures — trading per-iteration consensus breadth; rotating
// arrival-ordered membership mixes information across iterations. Under
// SSP/async the isolation compounds: stale nodes are simply absent from
// the round's grouping instead of gating it.
type groupStrategy struct {
	env    *strategyEnv
	clocks []sspClock // per node
	pend   []*sparse.Vector
	// Reusable barrier scratch.
	finishes []float64
	fresh    []int
}

func newGroupStrategy(env *strategyEnv, cfg Config) *groupStrategy {
	return &groupStrategy{
		env:    env,
		clocks: make([]sspClock, cfg.Topo.Nodes),
		pend:   make([]*sparse.Vector, cfg.Topo.Nodes),
	}
}

// reconcile absorbs membership changes exactly as treeStrategy.reconcile
// does (see that method for the staleness contract).
func (st *groupStrategy) reconcile() {
	env := st.env
	for n := range st.clocks {
		p := st.clocks[n].pending
		if p == nil || !env.prunePending(p) {
			continue
		}
		if len(p.ranks) == 0 {
			st.clocks[n] = sspClock{}
			st.pend[n] = nil
			continue
		}
		st.pend[n] = sumSparse(env.dim, p.vs)
	}
}

func (st *groupStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	var timing iterTiming

	if env.reconciles() {
		st.reconcile()
	}
	liveNodes, _ := env.liveNodes(topo)

	for _, n := range liveNodes {
		if st.clocks[n].pending != nil {
			continue
		}
		c := launchNodeSparse(env, cfg, n, iter)
		st.pend[n] = c.sum
		st.clocks[n].pending = c.pending
	}
	chargeLaunchBytes(st.clocks, iter, &timing)

	cutoff := sspCutoff(st.clocks, env.sync.Quorum(len(liveNodes), wpn), env.sync.Delay(), &st.finishes)
	st.fresh = admitted(st.clocks, cutoff, st.fresh)
	freshNodes := st.fresh

	// GG batching in virtual-arrival order over this round's fresh nodes.
	type nodeAgg struct {
		node    int
		leader  int
		sum     *sparse.Vector
		ready   float64
		workers []int
	}
	ggRTT := 2 * (cfg.Cost.InterAlpha + float64(ggRequestBytes)*cfg.Cost.InterBeta)
	order := make([]*nodeAgg, 0, len(freshNodes))
	for _, n := range freshNodes {
		p := st.clocks[n].pending
		order = append(order, &nodeAgg{
			node: n, leader: p.ranks[0], sum: st.pend[n],
			ready:   p.finish,
			workers: p.ranks,
		})
	}
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].ready != order[b].ready {
			return order[a].ready < order[b].ready
		}
		return order[a].node < order[b].node
	})

	// Phase 1 — fabric traffic only: every group's allreduce completes
	// before ANY worker state mutates, so a failed attempt (peers lost
	// mid-collective) leaves nothing half-applied and the elastic engine
	// can safely retry the whole round.
	type groupResult struct {
		group []*nodeAgg
		agg   *sparse.Vector
		start float64
		commT float64
	}
	threshold := cfg.GroupThreshold
	results := make([]groupResult, 0, (len(order)+threshold-1)/threshold)
	for lo := 0; lo < len(order); lo += threshold {
		hi := lo + threshold
		if hi > len(order) {
			hi = len(order)
		}
		group := order[lo:hi]
		start := 0.0
		leaders := make([]int, len(group))
		inputs := make([]*sparse.Vector, len(group))
		for i, na := range group {
			start = maxf(start, na.ready)
			leaders[i] = na.leader
			inputs[i] = na.sum
		}
		start += ggRTT
		timing.bytes += int64(len(group) * ggRequestBytes * 2)

		var agg *sparse.Vector
		var tr collective.Trace
		if len(group) == 1 {
			agg, tr = group[0].sum, collective.Trace{}
		} else {
			// The aggregate is retained into results for phase 2, so it
			// gets its own vector rather than crew scratch.
			agg = new(sparse.Vector)
			var err error
			tr, err = groupAllreduce(env, leaders, commPSRSparse, inputs, agg)
			if err != nil {
				return timing, err
			}
			tr = env.codec.WireTrace(tr)
		}
		timing.bytes += traceBytes(tr)
		results = append(results, groupResult{
			group: group,
			agg:   agg,
			start: start,
			commT: cfg.Cost.TraceTime(topo, tr),
		})
	}

	// Phase 2 — apply: each group's z averages over its members'
	// SURVIVING workers, the scaling that keeps a degraded group's
	// consensus exact.
	calSum, commSum := 0.0, 0.0
	applied := 0
	for _, gr := range results {
		contributors := 0
		for _, na := range gr.group {
			contributors += len(na.workers)
		}
		zSparse := zFromW(gr.agg, cfg.Lambda, cfg.Rho, contributors)
		zDense := zSparse.ToDense()
		for _, na := range gr.group {
			bc := intraBcastTrace(na.workers, na.leader, zSparse.NNZ())
			timing.bytes += traceBytes(bc)
			end := gr.start + gr.commT + cfg.Cost.TraceTime(topo, bc)
			applyNodeZ(env, cfg, st.clocks[na.node].pending, zDense, zSparse, end, &commSum, &applied)
		}
	}

	// Compute time sums in rank order (comm follows group order); fresh
	// bookkeeping clears after the whole round so group membership stays
	// stable while groups are processed.
	for _, n := range freshNodes {
		for _, c := range st.clocks[n].pending.cals {
			calSum += c
		}
	}
	for _, n := range freshNodes {
		st.clocks[n].pending = nil
		st.clocks[n].staleness = 0
		st.pend[n] = nil
	}
	bumpStale(st.clocks)
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}
