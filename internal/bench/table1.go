package bench

import (
	"fmt"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/metrics"
)

// Table1 reproduces the paper's Table 1 (dataset summary). Two tables are
// printed: the configured full-scale shapes matching the paper's corpora
// (these are the generator presets at scale 1.0 — not generated, the
// corpora are multi-gigabyte), and the measured statistics of the
// scaled-down datasets every other experiment actually runs on.
func Table1(opts Options) error {
	opts.fill()

	full := metrics.NewTable("Table 1 — paper-scale dataset shapes (generator presets at scale 1.0)",
		"dataset", "dimension", "training set", "test set")
	for _, p := range dataset.PaperPresets(1.0, opts.Seed) {
		full.AddRow(p.Name, p.Dim, p.TrainRows, p.TestRows)
	}
	if err := emit(opts, full); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out)

	bench := metrics.NewTable("Table 1b — bench-scale synthetic datasets (as generated for the experiments)",
		"dataset", "dimension", "training set", "test set", "nnz", "density", "pos frac")
	for _, cfg := range BenchDatasets(opts.Seed, opts.Quick) {
		l, err := load(cfg)
		if err != nil {
			return err
		}
		s := l.train.Summary()
		bench.AddRow(s.Name, s.Dim, s.Rows, l.test.Rows(), s.NNZ, s.Density, s.PosFrac)
	}
	return emit(opts, bench)
}
