// Quarantine evidence: the monotone, epoch-stamped record one observer
// publishes when it excludes a rank for a semantic fault. Like a death
// record, the evidence only ever accumulates — a quarantine against
// incarnation k is permanent for that incarnation, and re-admission is a
// separate, later fact (a clean-probe Unquarantine or a fresh
// incarnation) — so replaying, duplicating, or reordering evidence is
// idempotent by construction.
//
// Two encodings exist for the same fact:
//
//   - a self-describing binary frame (AppendBinary / DecodeQuarantineEvidence)
//     for transports that ship evidence as payload bytes, and
//   - an int64 triple (QuarantineLogEntry / ParseLogEntry) that rides the
//     WLG runtime's append-only rejoin log: the rank field is encoded as
//     -(rank+1), so a negative first element marks a quarantine entry and
//     every pre-existing log consumer (which reads non-negative rejoin
//     triples) skips it untouched.
package membership

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// QuarantineEvidence is one observer's exclusion record for a rank.
type QuarantineEvidence struct {
	// Rank is the quarantined world rank.
	Rank int
	// Incarnation is the life the evidence indicts; a newer incarnation is
	// not covered by it.
	Incarnation int
	// Iter is the iteration at which the screen tripped.
	Iter int
	// Score is the outlier score that tripped the screen (for diagnostics;
	// not part of the monotonicity contract).
	Score float64
}

const (
	evidenceMagic   = "PSQE"
	evidenceVersion = 1
	evidenceBytes   = 4 + 1 + 4 + 4 + 4 + 8 // magic, version, rank, inc, iter, score
)

// AppendBinary appends the evidence frame to dst and returns the extended
// slice.
func (e QuarantineEvidence) AppendBinary(dst []byte) []byte {
	dst = append(dst, evidenceMagic...)
	dst = append(dst, evidenceVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Rank))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Incarnation))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Iter))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Score))
	return dst
}

// ErrEvidenceCorrupt reports a quarantine-evidence frame that failed
// structural validation.
var ErrEvidenceCorrupt = errors.New("membership: corrupt quarantine evidence")

// DecodeQuarantineEvidence parses one evidence frame. Every structural
// violation — wrong magic, unknown version, truncation, negative fields, a
// non-finite score — is rejected with ErrEvidenceCorrupt: evidence changes
// membership, so a corrupt frame must never be half-applied.
func DecodeQuarantineEvidence(data []byte) (QuarantineEvidence, error) {
	var e QuarantineEvidence
	if len(data) != evidenceBytes {
		return e, fmt.Errorf("%w: %d bytes, want %d", ErrEvidenceCorrupt, len(data), evidenceBytes)
	}
	if string(data[:4]) != evidenceMagic {
		return e, fmt.Errorf("%w: bad magic", ErrEvidenceCorrupt)
	}
	if data[4] != evidenceVersion {
		return e, fmt.Errorf("%w: unknown version %d", ErrEvidenceCorrupt, data[4])
	}
	e.Rank = int(int32(binary.LittleEndian.Uint32(data[5:])))
	e.Incarnation = int(int32(binary.LittleEndian.Uint32(data[9:])))
	e.Iter = int(int32(binary.LittleEndian.Uint32(data[13:])))
	e.Score = math.Float64frombits(binary.LittleEndian.Uint64(data[17:]))
	if e.Rank < 0 || e.Incarnation < 0 || e.Iter < 0 {
		return e, fmt.Errorf("%w: negative field", ErrEvidenceCorrupt)
	}
	if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
		return e, fmt.Errorf("%w: non-finite score", ErrEvidenceCorrupt)
	}
	return e, nil
}

// QuarantineLogEntry encodes the evidence as an int64 triple for the WLG
// rejoin log: (-(rank+1), iter, incarnation). The negated rank keeps the
// entry distinguishable from rejoin triples, whose rank is non-negative.
func QuarantineLogEntry(rank, iter, inc int) [3]int64 {
	return [3]int64{-(int64(rank) + 1), int64(iter), int64(inc)}
}

// ParseLogEntry classifies one log triple. quarantine is true for a
// quarantine entry (rank decoded from the sentinel); false means a plain
// rejoin triple, returned as-is.
func ParseLogEntry(a, b, c int64) (rank, iter, inc int, quarantine bool) {
	if a < 0 {
		return int(-a - 1), int(b), int(c), true
	}
	return int(a), int(b), int(c), false
}
