// Package dataset provides the training data substrate: LIBSVM-format
// reading/writing, row sharding for data parallelism, and seeded synthetic
// generators that stand in for the paper's corpora (news20, webspam, url —
// Table 1), which are multi-gigabyte downloads this offline module cannot
// fetch. The generators match each corpus's *shape* — dimensionality,
// per-row sparsity, feature-popularity skew, label balance — which is what
// the convergence and communication behaviour of sparse consensus ADMM
// depends on.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"psrahgadmm/internal/sparse"
)

// Dataset is a labeled sparse design matrix: one row per sample, labels in
// {−1, +1}.
type Dataset struct {
	Name   string
	X      *sparse.CSR
	Labels []float64
}

// Rows returns the number of samples.
func (d *Dataset) Rows() int { return d.X.NRows }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.X.NCols }

// NNZ returns the total stored nonzeros.
func (d *Dataset) NNZ() int { return d.X.NNZ() }

// Density returns NNZ / (rows·dim).
func (d *Dataset) Density() float64 {
	if d.Rows() == 0 || d.Dim() == 0 {
		return 0
	}
	return float64(d.NNZ()) / (float64(d.Rows()) * float64(d.Dim()))
}

// Check validates matrix invariants and label values.
func (d *Dataset) Check() error {
	if err := d.X.Check(); err != nil {
		return err
	}
	if len(d.Labels) != d.X.NRows {
		return fmt.Errorf("dataset: %d labels for %d rows", len(d.Labels), d.X.NRows)
	}
	for i, l := range d.Labels {
		if l != 1 && l != -1 {
			return fmt.Errorf("dataset: label[%d] = %v, want ±1", i, l)
		}
	}
	return nil
}

// Shard splits the dataset into n contiguous row shards of nearly equal
// size, the data-parallel distribution the paper uses (one shard per
// worker). Shards own copies of their rows.
func (d *Dataset) Shard(n int) []*Dataset {
	if n <= 0 {
		panic("dataset: Shard requires n >= 1")
	}
	out := make([]*Dataset, n)
	base := d.Rows() / n
	rem := d.Rows() % n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		hi := lo + size
		out[i] = &Dataset{
			Name:   fmt.Sprintf("%s/shard%d", d.Name, i),
			X:      d.X.RowSlice(lo, hi),
			Labels: append([]float64(nil), d.Labels[lo:hi]...),
		}
		lo = hi
	}
	return out
}

// Concat joins datasets row-wise into one (the inverse of Shard, up to
// row order). All parts must share the feature dimension. Used to
// reassemble the surviving workers' shards when computing a degraded
// run's reference optimum.
func Concat(name string, parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: Concat needs at least one part")
	}
	dim := parts[0].Dim()
	rows, nnz := 0, 0
	for _, p := range parts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("dataset: Concat dimension mismatch: %d vs %d", p.Dim(), dim)
		}
		rows += p.Rows()
		nnz += p.NNZ()
	}
	out := &Dataset{
		Name:   name,
		X:      sparse.NewCSR(0, dim, nnz),
		Labels: make([]float64, 0, rows),
	}
	for _, p := range parts {
		for r := 0; r < p.Rows(); r++ {
			cols, vals := p.X.Row(r)
			out.X.AppendRow(cols, vals)
		}
		out.Labels = append(out.Labels, p.Labels...)
	}
	return out, nil
}

// Accuracy returns the fraction of samples whose sign(xᵀa) matches the
// label; ties (zero margin) count as wrong, matching LIBLINEAR.
func (d *Dataset) Accuracy(x []float64) float64 {
	if d.Rows() == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < d.Rows(); r++ {
		m := d.X.RowDot(r, x)
		if (m > 0 && d.Labels[r] > 0) || (m < 0 && d.Labels[r] < 0) {
			correct++
		}
	}
	return float64(correct) / float64(d.Rows())
}

// ReadLIBSVM parses the LIBSVM text format ("label idx:val idx:val ...",
// 1-based indices). If dim <= 0 the dimension is inferred from the maximum
// index seen. Labels other than ±1 are mapped: values > 0 → +1, else −1
// (the paper's binary problems use ±1 directly).
func ReadLIBSVM(r io.Reader, dim int, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	type row struct {
		label float64
		cols  []int32
		vals  []float64
	}
	var rows []row
	maxIdx := int32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		lab, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q", lineNo, fields[0])
		}
		rw := row{label: 1}
		if lab <= 0 {
			rw.label = -1
		}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("dataset: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("dataset: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q", lineNo, f[colon+1:])
			}
			if val == 0 {
				continue
			}
			c := int32(idx - 1)
			if c > maxIdx {
				maxIdx = c
			}
			rw.cols = append(rw.cols, c)
			rw.vals = append(rw.vals, val)
		}
		// LIBSVM files are sorted by index, but be forgiving.
		if !sort.SliceIsSorted(rw.cols, func(a, b int) bool { return rw.cols[a] < rw.cols[b] }) {
			sort.Sort(&colSorter{rw.cols, rw.vals})
		}
		rows = append(rows, rw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	if dim <= 0 {
		dim = int(maxIdx) + 1
	}
	m := sparse.NewCSR(0, dim, 0)
	labels := make([]float64, 0, len(rows))
	for i, rw := range rows {
		for _, c := range rw.cols {
			if int(c) >= dim {
				return nil, fmt.Errorf("dataset: row %d index %d exceeds dim %d", i, c+1, dim)
			}
		}
		m.AppendRow(rw.cols, rw.vals)
		labels = append(labels, rw.label)
	}
	return &Dataset{Name: name, X: m, Labels: labels}, nil
}

type colSorter struct {
	cols []int32
	vals []float64
}

func (s *colSorter) Len() int           { return len(s.cols) }
func (s *colSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *colSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// WriteLIBSVM writes the dataset in LIBSVM text format (1-based indices).
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for r := 0; r < d.Rows(); r++ {
		if d.Labels[r] > 0 {
			if _, err := bw.WriteString("+1"); err != nil {
				return err
			}
		} else {
			if _, err := bw.WriteString("-1"); err != nil {
				return err
			}
		}
		cols, vals := d.X.Row(r)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, " %d:%.17g", c+1, vals[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Stats summarizes a dataset for Table 1 style reporting.
type Stats struct {
	Name    string
	Dim     int
	Rows    int
	NNZ     int
	Density float64
	PosFrac float64
}

// Summary computes the dataset's Stats.
func (d *Dataset) Summary() Stats {
	pos := 0
	for _, l := range d.Labels {
		if l > 0 {
			pos++
		}
	}
	pf := 0.0
	if d.Rows() > 0 {
		pf = float64(pos) / float64(d.Rows())
	}
	return Stats{
		Name:    d.Name,
		Dim:     d.Dim(),
		Rows:    d.Rows(),
		NNZ:     d.NNZ(),
		Density: d.Density(),
		PosFrac: pf,
	}
}
