// Package membership turns transport-level failure evidence — typed
// PeerDownErrors from crashed connections, missed heartbeats, fault-plan
// kills — into a monotonic, epoch-stamped view of which ranks are alive.
//
// The in-process engine (core.Run) and the message-passing runtime
// (wlg.Run) share this layer: both feed it the errors their communication
// produces and read back the surviving world. Two invariants keep the view
// sane without any consensus protocol of its own:
//
//   - Death is monotone per incarnation. Every life of a rank carries an
//     incarnation number; marking rank i down kills its current
//     incarnation, and that incarnation never comes back — observers' dead
//     sets for incarnation k only grow, so all views still converge to the
//     union of the evidence. Rejoin is a *new* incarnation: MarkUp (or
//     MarkUpAt, when the number is assigned elsewhere) revives the rank
//     with incarnation k+1 and bumps the epoch, exactly the transition the
//     epoch number was reserved for.
//   - Evidence is ground truth. Ranks are only marked down from transport
//     facts (a PeerDownError, a fault-plan kill), never from timeouts
//     alone — a slow peer stays a member. The bounded-retry helpers in
//     package collective enforce the same rule: a retry budget expiring
//     against a live peer yields staleness, not an execution.
//
// Leader re-election follows from the view deterministically: the leader
// of any rank set is its first live member, so every observer that has
// seen the same evidence elects the same leader with no extra messages.
package membership

import (
	"errors"
	"fmt"
	"sync"

	"psrahgadmm/internal/transport"
)

// View is an immutable snapshot of the tracker: the epoch and the live
// ranks in ascending order.
type View struct {
	Epoch int
	Live  []int
}

// Tracker maintains the epoch-stamped live set for one world. It is safe
// for concurrent use: in the engine many collective goroutines observe
// errors at once; in the WLG runtime every rank's goroutine shares one
// tracker per process.
type Tracker struct {
	mu     sync.Mutex
	world  int
	epoch  int
	dead   []bool
	inc    []int // incarnation of the rank's current (or last) life
	causes []error
	// quar marks ranks excluded for SEMANTIC faults: the process is up and
	// its transport works, but its contributions are suspect. A quarantined
	// rank is not Alive — it leaves every live filter, divisor, and
	// subscriber count — yet it is not dead either: no transport evidence
	// exists, its endpoint keeps working, and it may be readmitted without
	// a new incarnation (Unquarantine) or by one (markUpLocked clears the
	// flag, so the incarnation-based rejoin path covers it too).
	quar      []bool
	quarCause []error
	live      int
	onDown    func(rank int, cause error)
	onUp      func(rank, incarnation int)
}

// NewTracker returns a tracker for ranks 0..world-1, all alive, epoch 0,
// every rank at incarnation 0 (its original life).
func NewTracker(world int) *Tracker {
	if world <= 0 {
		panic("membership: world must be positive")
	}
	return &Tracker{
		world:     world,
		dead:      make([]bool, world),
		inc:       make([]int, world),
		causes:    make([]error, world),
		quar:      make([]bool, world),
		quarCause: make([]error, world),
		live:      world,
	}
}

// OnDown registers a hook invoked (outside the tracker lock) each time a
// rank is newly marked down — the metrics layer's event counter feed.
func (t *Tracker) OnDown(fn func(rank int, cause error)) {
	t.mu.Lock()
	t.onDown = fn
	t.mu.Unlock()
}

// OnUp registers a hook invoked (outside the tracker lock) each time a
// rank rejoins as a new incarnation.
func (t *Tracker) OnUp(fn func(rank, incarnation int)) {
	t.mu.Lock()
	t.onUp = fn
	t.mu.Unlock()
}

// World returns the total rank count, dead or alive.
func (t *Tracker) World() int { return t.world }

// MarkDown records rank as dead with the given cause and bumps the epoch.
// Idempotent: re-reporting a known death changes nothing. Returns whether
// the rank was newly marked.
func (t *Tracker) MarkDown(rank int, cause error) bool {
	if rank < 0 || rank >= t.world {
		return false
	}
	t.mu.Lock()
	if t.dead[rank] {
		t.mu.Unlock()
		return false
	}
	// A quarantined rank already left the live count; dying while
	// quarantined must not decrement it twice.
	if !t.quar[rank] {
		t.live--
	}
	t.dead[rank] = true
	t.causes[rank] = cause
	t.epoch++
	hook := t.onDown
	t.mu.Unlock()
	if hook != nil {
		hook(rank, cause)
	}
	return true
}

// MarkUp revives a dead rank as its next incarnation and bumps the epoch.
// Only a dead rank can rejoin this way — a live rank's incarnation never
// changes under it. Returns whether the rank was revived; the new
// incarnation is readable via Incarnation.
func (t *Tracker) MarkUp(rank int) bool {
	if rank < 0 || rank >= t.world {
		return false
	}
	t.mu.Lock()
	if !t.dead[rank] {
		t.mu.Unlock()
		return false
	}
	inc := t.inc[rank] + 1
	hook := t.markUpLocked(rank, inc)
	t.mu.Unlock()
	if hook != nil {
		hook(rank, inc)
	}
	return true
}

// MarkUpAt applies a rejoin whose incarnation number was assigned by an
// authoritative observer (the GG, a checkpoint): the rank is revived and
// its incarnation set to inc. Idempotent: an incarnation at or below the
// local one changes nothing, so a duplicated or re-forwarded rejoin
// announcement is harmless. A rank that is still locally "alive" but
// carries a newer incarnation died and rejoined without this observer
// noticing either transition; the incarnation is adopted and the epoch
// bumped once.
func (t *Tracker) MarkUpAt(rank, inc int) bool {
	if rank < 0 || rank >= t.world || inc <= 0 {
		return false
	}
	t.mu.Lock()
	if inc <= t.inc[rank] {
		t.mu.Unlock()
		return false
	}
	hook := t.markUpLocked(rank, inc)
	t.mu.Unlock()
	if hook != nil {
		hook(rank, inc)
	}
	return true
}

// markUpLocked performs the revive transition under t.mu and returns the
// OnUp hook to fire after unlock (nil if none registered). A new
// incarnation starts with a clean slate: a quarantine against the old life
// does not survive into the new one.
func (t *Tracker) markUpLocked(rank, inc int) func(rank, incarnation int) {
	wasCounted := !t.dead[rank] && !t.quar[rank]
	t.inc[rank] = inc
	t.dead[rank] = false
	t.causes[rank] = nil
	t.quar[rank] = false
	t.quarCause[rank] = nil
	if !wasCounted {
		t.live++
	}
	t.epoch++
	return t.onUp
}

// Quarantine excludes a live rank for a semantic fault: it leaves the live
// set (Alive, LiveCount, View, Live, FirstLive all drop it) and the epoch
// bumps, but the rank is not dead — no incarnation change, no transport
// teardown. Idempotent; a dead rank cannot be quarantined. Returns whether
// the rank was newly quarantined.
func (t *Tracker) Quarantine(rank int, cause error) bool {
	if rank < 0 || rank >= t.world {
		return false
	}
	t.mu.Lock()
	if t.dead[rank] || t.quar[rank] {
		t.mu.Unlock()
		return false
	}
	t.quar[rank] = true
	t.quarCause[rank] = cause
	t.live--
	t.epoch++
	t.mu.Unlock()
	return true
}

// Unquarantine readmits a quarantined rank without minting a new
// incarnation — the probation path, for a rank whose clean probes earned
// its way back. Returns whether the rank was readmitted.
func (t *Tracker) Unquarantine(rank int) bool {
	if rank < 0 || rank >= t.world {
		return false
	}
	t.mu.Lock()
	if t.dead[rank] || !t.quar[rank] {
		t.mu.Unlock()
		return false
	}
	t.quar[rank] = false
	t.quarCause[rank] = nil
	t.live++
	t.epoch++
	t.mu.Unlock()
	return true
}

// Quarantined reports whether rank is currently quarantined.
func (t *Tracker) Quarantined(rank int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return rank >= 0 && rank < t.world && t.quar[rank]
}

// QuarantinedCount returns how many ranks are currently quarantined.
func (t *Tracker) QuarantinedCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for r := 0; r < t.world; r++ {
		if t.quar[r] {
			n++
		}
	}
	return n
}

// QuarantineCause returns the recorded cause of a rank's quarantine, nil
// while unquarantined.
func (t *Tracker) QuarantineCause(rank int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= t.world {
		return nil
	}
	return t.quarCause[rank]
}

// Incarnation returns the incarnation number of the rank's current (or,
// when dead, last) life: 0 for the original process, k for its k-th rejoin.
func (t *Tracker) Incarnation(rank int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= t.world {
		return -1
	}
	return t.inc[rank]
}

// Observe extracts a *transport.PeerDownError from err and marks the peer
// down. It returns the peer rank and whether err carried one.
func (t *Tracker) Observe(err error) (int, bool) {
	var pd *transport.PeerDownError
	if !errors.As(err, &pd) {
		return -1, false
	}
	t.MarkDown(pd.Peer, pd)
	return pd.Peer, true
}

// Alive reports whether rank is still a member: neither dead nor
// quarantined.
func (t *Tracker) Alive(rank int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return rank >= 0 && rank < t.world && !t.dead[rank] && !t.quar[rank]
}

// Epoch returns the current membership epoch: the number of membership
// transitions (deaths and rejoins) observed so far. Every degraded-mode
// decision is stamped with it.
func (t *Tracker) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// LiveCount returns how many ranks remain alive.
func (t *Tracker) LiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.live
}

// View returns the epoch and the ascending live rank list.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{Epoch: t.epoch, Live: make([]int, 0, t.live)}
	for r := 0; r < t.world; r++ {
		if !t.dead[r] && !t.quar[r] {
			v.Live = append(v.Live, r)
		}
	}
	return v
}

// Live filters ranks down to its live members, preserving order.
func (t *Tracker) Live(ranks []int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(ranks))
	for _, r := range ranks {
		if r >= 0 && r < t.world && !t.dead[r] && !t.quar[r] {
			out = append(out, r)
		}
	}
	return out
}

// FirstLive returns the first live rank of the ordered set — the
// deterministic leader-election rule — or -1 when every member is dead.
func (t *Tracker) FirstLive(ranks []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range ranks {
		if r >= 0 && r < t.world && !t.dead[r] && !t.quar[r] {
			return r
		}
	}
	return -1
}

// Dead returns the dead ranks in ascending order (checkpoint capture).
func (t *Tracker) Dead() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, t.world-t.live)
	for r := 0; r < t.world; r++ {
		if t.dead[r] {
			out = append(out, r)
		}
	}
	return out
}

// Cause returns the recorded cause of a rank's death, nil while alive.
func (t *Tracker) Cause(rank int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= t.world {
		return nil
	}
	return t.causes[rank]
}

// Restore resets the tracker to a checkpointed state: the given epoch and
// dead set. Used on resume so a restarted run agrees with the snapshot's
// view of the world. The OnDown hook fires for every restored death.
func (t *Tracker) Restore(epoch int, dead []int) error {
	for _, r := range dead {
		if r < 0 || r >= t.world {
			return fmt.Errorf("membership: restore: rank %d out of world %d", r, t.world)
		}
	}
	cause := errors.New("membership: dead at checkpoint")
	t.mu.Lock()
	hook := t.onDown
	t.dead = make([]bool, t.world)
	t.inc = make([]int, t.world)
	t.causes = make([]error, t.world)
	t.quar = make([]bool, t.world)
	t.quarCause = make([]error, t.world)
	t.live = t.world
	for _, r := range dead {
		if !t.dead[r] {
			t.dead[r] = true
			t.causes[r] = cause
			t.live--
		}
	}
	t.epoch = epoch
	t.mu.Unlock()
	if hook != nil {
		for _, r := range dead {
			hook(r, cause)
		}
	}
	return nil
}
