package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"psrahgadmm/internal/wire"
)

// handshakeTag is the reserved tag carried by the one-time rank
// identification frame exchanged when a mesh connection is established.
// User code must not send on this tag.
const handshakeTag int32 = -0x7fffffff

// TCPOptions configures mesh establishment.
type TCPOptions struct {
	// DialTimeout bounds how long NewTCPEndpoint keeps retrying dials to
	// peers that have not started listening yet. Default 30s.
	DialTimeout time.Duration
	// RetryInterval is the pause between dial attempts. Default 50ms.
	RetryInterval time.Duration
}

func (o *TCPOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
}

// tcpEndpoint is one rank of a full TCP mesh. Every pair of ranks shares
// exactly one TCP connection: rank i dials every rank j < i and accepts
// from every j > i, so connection count is n(n-1)/2 across the cluster.
type tcpEndpoint struct {
	rank  int
	size  int
	ln    net.Listener
	peers []*tcpPeer // indexed by rank; peers[rank] == nil

	inbox chan wire.Message
	buf   pending

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
	stats     statsCounter
}

type tcpPeer struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes
}

// NewTCPEndpoint joins a TCP mesh as `rank`. addrs lists the listen address
// of every rank (host:port); addrs[rank] is this process's own listen
// address. The call blocks until the full mesh is established.
func NewTCPEndpoint(rank int, addrs []string, opts TCPOptions) (Endpoint, error) {
	opts.fill()
	size := len(addrs)
	if err := checkRank(rank, size); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	e := &tcpEndpoint{
		rank:   rank,
		size:   size,
		ln:     ln,
		peers:  make([]*tcpPeer, size),
		inbox:  make(chan wire.Message, inboxDepth),
		closed: make(chan struct{}),
	}

	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var setup sync.WaitGroup

	// Accept connections from all higher ranks.
	higher := size - 1 - rank
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := 0; i < higher; i++ {
			conn, err := ln.Accept()
			if err != nil {
				setErr(fmt.Errorf("transport: rank %d accept: %w", rank, err))
				return
			}
			m, err := wire.Decode(conn)
			if err != nil || m.Tag != handshakeTag || len(m.Ints) != 1 {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d bad handshake: %v", rank, err))
				return
			}
			peer := int(m.Ints[0])
			if err := checkRank(peer, size); err != nil || peer <= rank {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d handshake from invalid rank %d", rank, peer))
				return
			}
			mu.Lock()
			dup := e.peers[peer] != nil
			if !dup {
				e.peers[peer] = &tcpPeer{conn: conn}
			}
			mu.Unlock()
			if dup {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d duplicate handshake from %d", rank, peer))
				return
			}
		}
	}()

	// Dial all lower ranks, retrying while they come up.
	for peer := 0; peer < rank; peer++ {
		setup.Add(1)
		go func(peer int) {
			defer setup.Done()
			deadline := time.Now().Add(opts.DialTimeout)
			for {
				conn, err := net.DialTimeout("tcp", addrs[peer], opts.DialTimeout)
				if err == nil {
					hs := wire.Control(handshakeTag, int64(rank))
					hs.From = int32(rank)
					if err := wire.Encode(conn, hs); err != nil {
						conn.Close()
						setErr(fmt.Errorf("transport: rank %d handshake to %d: %w", rank, peer, err))
						return
					}
					mu.Lock()
					e.peers[peer] = &tcpPeer{conn: conn}
					mu.Unlock()
					return
				}
				if time.Now().After(deadline) {
					setErr(fmt.Errorf("transport: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
					return
				}
				time.Sleep(opts.RetryInterval)
			}
		}(peer)
	}

	setup.Wait()
	if firstErr != nil {
		e.teardown()
		return nil, firstErr
	}

	// Start one reader per peer connection.
	for p, peer := range e.peers {
		if peer == nil {
			continue
		}
		e.wg.Add(1)
		go e.readLoop(p, peer.conn)
	}
	return e, nil
}

func (e *tcpEndpoint) readLoop(peer int, conn net.Conn) {
	defer e.wg.Done()
	for {
		m, err := wire.Decode(conn)
		if err != nil {
			return // connection closed or corrupted; Recv ends via e.closed
		}
		m.From = int32(peer) // trust the mesh, not the frame
		select {
		case e.inbox <- m:
		case <-e.closed:
			return
		}
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to int, m wire.Message) error {
	if err := checkRank(to, e.size); err != nil {
		return err
	}
	if to == e.rank {
		// Loopback without touching the network.
		m.From = int32(e.rank)
		select {
		case e.inbox <- m:
			e.stats.record(m)
			return nil
		case <-e.closed:
			return ErrClosed
		}
	}
	peer := e.peers[to]
	if peer == nil {
		return fmt.Errorf("transport: no connection to rank %d", to)
	}
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	m.From = int32(e.rank)
	peer.wmu.Lock()
	err := wire.Encode(peer.conn, m)
	peer.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: send to rank %d: %w", to, err)
	}
	e.stats.record(m)
	return nil
}

func (e *tcpEndpoint) Recv(from int, tag int32) (wire.Message, error) {
	if from != AnySource {
		if err := checkRank(from, e.size); err != nil {
			return wire.Message{}, err
		}
	}
	if m, ok := e.buf.take(from, tag); ok {
		return m, nil
	}
	for {
		select {
		case <-e.closed:
			return wire.Message{}, ErrClosed
		case m := <-e.inbox:
			if m.Tag == tag && (from == AnySource || int(m.From) == from) {
				return m, nil
			}
			e.buf.put(m)
		}
	}
}

func (e *tcpEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *tcpEndpoint) teardown() {
	if e.ln != nil {
		e.ln.Close()
	}
	for _, p := range e.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.closed)
		e.teardown()
	})
	e.wg.Wait()
	return nil
}
