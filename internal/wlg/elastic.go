// Elastic (fail-survive) mode of the WLG runtime: worker deaths shrink the
// world instead of aborting it.
//
// Every rank keeps its own membership.Tracker fed exclusively by transport
// evidence — a failed send or receive against a dead peer surfaces a typed
// *transport.PeerDownError, which marks the peer down. Views converge
// because death is monotone and every rank eventually touches a dead peer
// it depends on. A node's Leader is re-elected deterministically as the
// first live rank of the node (membership.Tracker.FirstLive), so ranks
// that have seen the same evidence elect the same Leader with no election
// messages.
//
// Inter-node aggregation changes shape relative to the fail-stop runtime:
// instead of the leader-to-leader PSR-Allreduce, each Leader sends its
// node's sum to the Group Generator, which batches nodes into groups
// (arrival order, same GQ threshold as Algorithm 2), sums each group, and
// replies to the contributing Leaders. The GG also CACHES every flushed
// (iteration, node) result. The cache is what makes re-election sound: a
// result exists if and only if the GG holds it, so a member orphaned by
// its Leader's death first asks the GG to recover the result — a hit means
// the old Leader had finished the round before dying; a miss guarantees no
// member of the node has the result, so the survivors can safely re-elect
// and re-run the round (the GG deduplicates re-sent contributions by
// node). This trades the PSR-Allreduce's bandwidth optimality for a single
// authoritative place to recover from, which is the robustness point of
// this mode.
//
// Waits on peers are bounded by cfg.Retry (package collective): a retry
// budget expiring against a LIVE peer is staleness, not death — the Leader
// skips that member's contribution for the round (counted in
// RunInfo.Skipped) and nobody is pruned. Only transport evidence removes a
// rank from the world.
//
// Termination: each worker sends a "done" control to the GG when it
// finishes (or gives up); the GG exits once every worker rank is done or
// dead, so it never waits on a crashed worker's farewell.
package wlg

import (
	"errors"
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
	"psrahgadmm/internal/wire"
)

// Elastic-mode tags. The per-iteration offsets live in the same iterTag
// windows as the fail-stop protocol's — the two protocols never share a
// run, so reuse is safe — and the fixed control tag sits beside
// tagGGRequest, below tagIterBase and far below the collective package's
// ack band.
const (
	offElMemberW  = 0 // member → Leader: dense contribution w_i
	offElReplyCtl = 2 // GG → requester: Control[status, contributors]
	offElReplyW   = 3 // GG → requester: dense group aggregate
	offElBcCtl    = 5 // Leader → member: Control[contributors]
	offElBcW      = 6 // Leader → member: dense group aggregate
	offElGGW      = 7 // Leader → GG: dense node sum (follows the contribute control)

	// tagElControl carries every worker→GG control in elastic mode:
	// Ints = [kind, node, iteration, count].
	tagElControl int32 = 520

	elKindContribute = 1 // a Leader's node sum is on its way
	elKindRecover    = 2 // an orphaned member asks for a cached result
	elKindDone       = 3 // this rank will send nothing more
	// elKindQuarantine publishes a Leader's quarantine evidence:
	// Ints = [kind, victim rank, trip iteration, victim incarnation]. The
	// GG folds it into the rejoin log as a membership.QuarantineLogEntry
	// triple, where it piggybacks on every control reply exactly like a
	// death/rejoin record. At-least-once with idempotent application: the
	// Leader re-sends each round until the log confirms the entry, and
	// the GG ignores evidence for a rank already quarantined, dead, or
	// reincarnated past the indicted incarnation.
	elKindQuarantine = 5

	elStatusNotReady = 0
	elStatusReady    = 1

	// elasticCycles bounds a member's elect→send→wait→recover loop per
	// iteration; recontributeCap bounds a Leader's contribute→reply loop
	// against the GG. Both exist so message loss degrades into an error
	// instead of an infinite loop; each cycle already carries a full retry
	// budget, so hitting these caps means the fabric is effectively gone.
	elasticCycles   = 8
	recontributeCap = 4
)

// RunInfo summarizes how degraded an elastic run ended up.
type RunInfo struct {
	// Epoch counts the deaths this view absorbed (membership epoch).
	Epoch int
	// LiveWorkers is the surviving worker count.
	LiveWorkers int
	// Skipped counts member contributions a Leader's gather skipped
	// because the retry budget expired against a live peer (bounded
	// staleness, not death).
	Skipped int64
	// ShortRounds counts iterations whose consensus averaged fewer than
	// the full world's workers. The contributor count travels with every
	// aggregate, so this catches degradation a rank never locally
	// witnessed: workers on an unaffected node exchange no messages with
	// a dead peer (aggregation routes through the GG) and their tracker
	// stays pristine, but the shrunken count still reaches them.
	ShortRounds int64
	// Rollbacks counts the checkpoint rollbacks RunWithRecovery performed
	// before this run completed (zero for a trip-free run; plain
	// Run/RunWorker never set it).
	Rollbacks int
	// Flagged counts member contributions a Leader's screen excluded from
	// the node sum as outliers (Config.Screen).
	Flagged int64
	// SelfQuarantines counts how many times this rank discovered itself
	// quarantined and entered probation.
	SelfQuarantines int
}

// Degraded reports whether the run lost anything: a death, a skipped or
// screened-out contribution, or a round whose consensus fell short of the
// full world.
func (ri *RunInfo) Degraded() bool {
	return ri.Epoch > 0 || ri.Skipped > 0 || ri.ShortRounds > 0 || ri.Flagged > 0 || ri.SelfQuarantines > 0
}

// elasticWorker is one rank's state for the fail-survive protocol.
type elasticWorker struct {
	ep      transport.Endpoint
	cfg     Config
	rank    int
	node    int
	gg      int
	members []int // all ranks of this node, rank order (election order)
	tr      *membership.Tracker
	pol     collective.RetryPolicy
	skipped int64
	short   int64
	// skips[r] counts rank r's CONSECUTIVE skipped gathers under the
	// Min_barrier partial barrier; reaching the Max_delay bound restores
	// the full wait budget for that member (bounded staleness). Reset on
	// every gathered contribution.
	skips []int
	// joinLog is the newest copy of the GG's rejoin log (see rejoin.go):
	// flattened (rank, joinIter, incarnation) triples applied at
	// iteration boundaries so every rank re-admits a rejoiner at the
	// same iteration. Quarantine evidence rides the same log as
	// membership.QuarantineLogEntry triples (negative first element).
	joinLog []int64
	// screen is the contribution screen (nil when Config.Screen is off).
	// Every rank carries one — Leaders score gathered member
	// contributions with it, every rank self-observes its own encoded
	// contribution to keep a baseline for probation, and a quarantined
	// rank judges its self-probes against that baseline.
	screen *watchdog.Screen
	// selfQuar is set by applyJoins when the log indicts THIS rank's
	// current incarnation; cleared when probation earns a new one.
	selfQuar  bool
	flagged   int64
	selfQuars int
	// quorumTol is the robust tolerance f: once MORE than quorumTol ranks
	// are quarantined in this view, the trim can no longer out-vote the
	// remaining poison and the run aborts (watchdog.ErrQuorumLost, exit 6
	// in psra-worker). -1 disables the bound (mean aggregation). The bound
	// counts RANKS against the GG's node-granular tolerance, which is
	// conservative: it aborts no later than a node-exact bound would.
	quorumTol int
}

// runWorkerElastic executes the elastic worker loop. The returned RunInfo
// reflects THIS rank's final membership view; the error is non-nil only
// for unrecoverable failures (the GG gone, the fabric closed, recovery
// budgets exhausted) — peer deaths are absorbed, not returned.
func runWorkerElastic(ep transport.Endpoint, cfg Config, f WorkerFuncs) (*RunInfo, error) {
	topo := cfg.Topo
	rank := ep.Rank()
	codec, err := cfg.codec()
	if err != nil {
		return nil, fmt.Errorf("wlg: %w", err)
	}
	spec, err := cfg.aggSpec()
	if err != nil {
		return nil, fmt.Errorf("wlg: %w", err)
	}
	quorumTol := -1
	switch spec.Kind {
	case collective.AggTrimmedMean:
		quorumTol = spec.TrimF
	case collective.AggMedian:
		quorumTol = (topo.Nodes - 1) / 2
	}
	w := &elasticWorker{
		ep:        ep,
		cfg:       cfg,
		rank:      rank,
		node:      topo.NodeOf(rank),
		gg:        GGRank(topo),
		members:   topo.WorkersOf(topo.NodeOf(rank)),
		tr:        membership.NewTracker(topo.Size()),
		pol:       cfg.Retry,
		skips:     make([]int, topo.Size()),
		screen:    watchdog.NewScreen(cfg.Screen, topo.Size()),
		quorumTol: quorumTol,
	}
	// Elastic retries converge on shared targets (a dead Leader, the GG);
	// decorrelated jitter spreads the survivors' attempts instead of
	// letting them thunder the transport in lockstep.
	w.pol.Jitter = true
	info := func() *RunInfo {
		return &RunInfo{
			Epoch:           w.tr.Epoch(),
			LiveWorkers:     w.tr.LiveCount(),
			Skipped:         w.skipped,
			ShortRounds:     w.short,
			Flagged:         w.flagged,
			SelfQuarantines: w.selfQuars,
		}
	}
	// Tell the GG this rank is finished on every exit path — including
	// give-ups — so its done-or-dead accounting never waits on a rank that
	// will stay silent. The farewell is ack'd and re-sent on loss (the GG
	// treats duplicates idempotently): a dropped farewell must not strand
	// the GG. A failed farewell means the GG itself is gone, which is moot.
	defer func() {
		_ = collective.SendAck(ep, w.gg, wire.Control(tagElControl, elKindDone, int64(w.node), 0, 0), w.pol)
	}()

	startIter := cfg.StartIter
	if cfg.Rejoin {
		// A returning incarnation first obtains its grant: the join
		// iteration, the dead set, and (when available) a warm start. A
		// grant at or past MaxIter degenerates to zero iterations and an
		// immediate farewell — still a clean exit.
		joinIter, err := w.rejoinStart(f)
		if err != nil {
			return info(), err
		}
		startIter = joinIter
	}

	// Top-k runs its error-feedback selection over the dense buffer: the
	// values are sparsified (dropped coordinates zeroed, residual carried)
	// but the frames stay dense — the GG's result cache and recovery
	// replies need them, so the elastic mode trades the byte savings for
	// survivability. A rank that rejoined starts with a clean residual by
	// construction (the State is created fresh for the new incarnation).
	st := exchange.NewState(cfg.Codec, 0)

	wd := newWatch(cfg, rank)
	for iter := startIter; iter < cfg.MaxIter; iter++ {
		buf := append([]float64(nil), f.ComputeW(iter)...)
		// Divergence is not a membership fact: a poisoned contribution (or
		// aggregate, below) is an unrecoverable per-rank error that tears
		// the run down — the elastic machinery only absorbs peer deaths.
		if err := wd.checkOwn(iter, buf); err != nil {
			return info(), err
		}
		if st != nil {
			st.EncodeDense(buf)
		} else {
			codec.EncodeDense(buf)
		}
		// Self-observe the encoded contribution: the baseline this builds
		// is what a quarantined incarnation's probation judges its
		// self-probes against. Flagged observations never enter the
		// baseline, so a compromise cannot drag its own baseline up.
		w.screen.ObserveDense(w.rank, buf)
		agg, contributors, err := w.iterate(iter, buf)
		if errors.Is(err, errSelfQuarantined) {
			// The log indicts this incarnation. Enter probation: screen
			// local probes until quarantineRounds consecutive clean ones,
			// then re-enter through the rejoin handshake as a fresh
			// incarnation (or run out the clock and exit degraded).
			w.selfQuars++
			joinIter, perr := w.probation(iter, f)
			if perr != nil {
				return info(), perr
			}
			// The new incarnation starts with a clean error-feedback
			// residual, like any other rejoiner.
			st = exchange.NewState(cfg.Codec, 0)
			iter = joinIter - 1
			continue
		}
		if err != nil {
			return info(), err
		}
		if err := wd.checkAgg(iter, agg); err != nil {
			return info(), err
		}
		if contributors < topo.Size() {
			w.short++
		}
		f.ApplyW(iter, agg, contributors)
	}
	return info(), nil
}

// iterate runs one elastic iteration: elect the node's Leader, follow the
// member or Leader path, and recover through the GG when the Leader is
// lost mid-round. Each cycle either returns a result or strictly narrows
// the world (a death observed) or burns one bounded recovery attempt.
func (w *elasticWorker) iterate(iter int, own []float64) ([]float64, int, error) {
	for cycle := 0; cycle < elasticCycles; cycle++ {
		// Fold the rejoin log in BEFORE electing — on every cycle, not
		// just at iteration entry, because a recover reply inside this
		// loop may have just delivered the entry (e.g. the proof that the
		// Leader this rank keeps waiting on died and will only be back at
		// a later iteration). Every rank that holds the log sees the same
		// world for the same iteration.
		w.applyJoins(iter)
		if w.selfQuar {
			return nil, 0, errSelfQuarantined
		}
		if w.quorumTol >= 0 && w.tr.QuarantinedCount() > w.quorumTol {
			return nil, 0, &watchdog.QuorumError{Quarantined: w.tr.QuarantinedCount(), F: w.quorumTol}
		}
		leader := w.tr.FirstLive(w.members)
		if leader < 0 { // self is alive in its own view; defensive only
			return nil, 0, fmt.Errorf("wlg: rank %d iter %d: node %d has no live ranks", w.rank, iter, w.node)
		}
		if leader == w.rank {
			return w.leadIterate(iter, own)
		}

		// Member path: hand the contribution to the Leader, wait for the
		// aggregate. A re-sent contribution (same Leader after a recover
		// miss) sits unconsumed under the iteration-scoped tag — harmless.
		if err := w.ep.Send(leader, wire.DenseMsg(iterTag(iter, offElMemberW), own)); err != nil {
			if _, down := w.tr.Observe(err); down {
				continue // Leader died: re-elect
			}
			return nil, 0, fmt.Errorf("wlg: rank %d iter %d send to leader %d: %w", w.rank, iter, leader, err)
		}
		ctl, err := collective.RecvRetry(w.ep, leader, iterTag(iter, offElBcCtl), w.pol)
		if err == nil {
			w.noteJoins(ctl.Ints[1:]) // the Leader forwards the GG's rejoin log
			var wm wire.Message
			wm, err = collective.RecvRetry(w.ep, leader, iterTag(iter, offElBcW), w.pol)
			if err == nil {
				return wm.Dense, int(ctl.Ints[0]), nil
			}
		}
		if _, down := w.tr.Observe(err); !down && !errors.Is(err, collective.ErrUnavailable) {
			return nil, 0, fmt.Errorf("wlg: rank %d iter %d await leader %d: %w", w.rank, iter, leader, err)
		}

		// The Leader is dead or silent. If it completed the round before
		// vanishing the GG has the result cached; a miss proves nobody in
		// the node has it, so re-electing and re-running is safe.
		agg, contributors, hit, err := w.recoverFromGG(iter)
		if err != nil {
			return nil, 0, err
		}
		if hit {
			return agg, contributors, nil
		}
	}
	return nil, 0, fmt.Errorf("wlg: rank %d iter %d: no result after %d recovery cycles: %w",
		w.rank, iter, elasticCycles, collective.ErrUnavailable)
}

// quorum returns the Leader's per-node share of the SSP partial barrier:
// max(1, MinBarrier/Nodes) gathered contributions satisfy it. 0 means no
// partial barrier — every live member gets the full wait budget.
func (w *elasticWorker) quorum() int {
	if w.cfg.MinBarrier <= 0 {
		return 0
	}
	q := w.cfg.MinBarrier / w.cfg.Topo.Nodes
	if q < 1 {
		q = 1
	}
	return q
}

// maxDelay returns the effective staleness bound (0 defaults to the
// paper's Max_delay of 5).
func (w *elasticWorker) maxDelay() int {
	if w.cfg.MaxDelay > 0 {
		return w.cfg.MaxDelay
	}
	return 5
}

// leadIterate is the Leader path: gather the live members' contributions,
// contribute the node sum to the GG, broadcast the group aggregate back.
//
// With MinBarrier set, the gather is the paper's SSP partial barrier at
// node granularity: once quorum() contributions are in hand, each further
// member gets a single-attempt probe instead of the full budget — unless
// its consecutive-skip count has reached maxDelay(), in which case the
// Leader waits the full budget again so staleness stays bounded.
func (w *elasticWorker) leadIterate(iter int, own []float64) ([]float64, int, error) {
	sum := append([]float64(nil), own...)
	count := 1
	w.skips[w.rank] = 0
	quorum := w.quorum()
	for _, m := range w.tr.Live(w.members) {
		if m == w.rank {
			continue
		}
		pol := w.pol
		if quorum > 0 && count >= quorum && w.skips[m] < w.maxDelay() {
			pol.Attempts = 1
		}
		msg, err := collective.RecvRetry(w.ep, m, iterTag(iter, offElMemberW), pol)
		if err != nil {
			if _, down := w.tr.Observe(err); down {
				continue // dead: excluded from this round
			}
			if errors.Is(err, collective.ErrUnavailable) {
				// Alive but silent: skip the contribution, never prune.
				// The member still receives the broadcast below (messages
				// queue), so it is only stale, not stuck.
				w.skipped++
				w.skips[m]++
				continue
			}
			return nil, 0, fmt.Errorf("wlg: leader %d iter %d gather from %d: %w", w.rank, iter, m, err)
		}
		if w.screen.ObserveDense(m, msg.Dense) {
			// An outlier stays out of the node sum and its count; reaching
			// the strike limit quarantines the member — locally at once
			// (this gather and every later one excludes it), globally
			// through the evidence published below.
			w.flagged++
			if w.screen.Strikes(m) >= w.screen.StrikeLimit() {
				w.tr.Quarantine(m, errQuarantinedByScreen)
			}
			continue
		}
		vec.AddInto(sum, msg.Dense)
		w.skips[m] = 0
		count++
	}
	if w.screen != nil {
		w.reportQuarantines(iter)
	}

	agg, contributors, err := w.contribute(iter, sum, count)
	if err != nil {
		return nil, 0, err
	}

	// Broadcast to every live member — including skipped ones, whose late
	// contributions stay unconsumed. A failed send is death evidence. The
	// control forwards the rejoin log so members that only ever talk to
	// their Leader still learn about granted rejoins in time.
	bc := append(make([]int64, 0, 1+len(w.joinLog)), int64(contributors))
	bc = append(bc, w.joinLog...)
	for _, m := range w.tr.Live(w.members) {
		if m == w.rank {
			continue
		}
		if err := w.ep.Send(m, wire.Control(iterTag(iter, offElBcCtl), bc...)); err != nil {
			w.tr.Observe(err)
			continue
		}
		if err := w.ep.Send(m, wire.DenseMsg(iterTag(iter, offElBcW), agg)); err != nil {
			w.tr.Observe(err)
		}
	}
	return agg, contributors, nil
}

// contribute sends the node sum to the GG and awaits the group reply,
// re-contributing on a lost exchange (the GG deduplicates by node, so
// at-least-once is safe).
func (w *elasticWorker) contribute(iter int, sum []float64, count int) ([]float64, int, error) {
	for attempt := 0; attempt < recontributeCap; attempt++ {
		if err := w.ep.Send(w.gg, wire.Control(tagElControl, elKindContribute, int64(w.node), int64(iter), int64(count))); err != nil {
			return nil, 0, fmt.Errorf("wlg: leader %d iter %d contribute: %w", w.rank, iter, err)
		}
		if err := w.ep.Send(w.gg, wire.DenseMsg(iterTag(iter, offElGGW), sum)); err != nil {
			return nil, 0, fmt.Errorf("wlg: leader %d iter %d contribute payload: %w", w.rank, iter, err)
		}
		ctl, err := collective.RecvRetry(w.ep, w.gg, iterTag(iter, offElReplyCtl), w.pol)
		if err != nil {
			if errors.Is(err, collective.ErrUnavailable) {
				continue // lost somewhere on the way: re-contribute
			}
			return nil, 0, fmt.Errorf("wlg: leader %d iter %d GG reply: %w", w.rank, iter, err)
		}
		w.noteJoins(ctl.Ints[2:])
		wm, err := collective.RecvRetry(w.ep, w.gg, iterTag(iter, offElReplyW), w.pol)
		if err != nil {
			if errors.Is(err, collective.ErrUnavailable) {
				continue
			}
			return nil, 0, fmt.Errorf("wlg: leader %d iter %d GG aggregate: %w", w.rank, iter, err)
		}
		return wm.Dense, int(ctl.Ints[1]), nil
	}
	return nil, 0, fmt.Errorf("wlg: leader %d iter %d: GG unresponsive after %d contributions: %w",
		w.rank, iter, recontributeCap, collective.ErrUnavailable)
}

// recoverFromGG asks the GG for the cached (iter, node) result. hit=false
// with a nil error means the round was never flushed (or the reply was
// lost): the caller re-elects and retries.
func (w *elasticWorker) recoverFromGG(iter int) (agg []float64, contributors int, hit bool, err error) {
	if err := w.ep.Send(w.gg, wire.Control(tagElControl, elKindRecover, int64(w.node), int64(iter), 0)); err != nil {
		return nil, 0, false, fmt.Errorf("wlg: rank %d iter %d recover: %w", w.rank, iter, err)
	}
	ctl, err := collective.RecvRetry(w.ep, w.gg, iterTag(iter, offElReplyCtl), w.pol)
	if err != nil {
		if errors.Is(err, collective.ErrUnavailable) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("wlg: rank %d iter %d recover reply: %w", w.rank, iter, err)
	}
	w.noteJoins(ctl.Ints[2:]) // both Ready and NotReady replies carry the log
	if ctl.Ints[0] != elStatusReady {
		return nil, 0, false, nil
	}
	wm, err := collective.RecvRetry(w.ep, w.gg, iterTag(iter, offElReplyW), w.pol)
	if err != nil {
		if errors.Is(err, collective.ErrUnavailable) {
			return nil, 0, false, nil // re-request: the cache serves repeatedly
		}
		return nil, 0, false, fmt.Errorf("wlg: rank %d iter %d recover payload: %w", w.rank, iter, err)
	}
	return wm.Dense, int(ctl.Ints[1]), true, nil
}

// runGGElastic is the elastic Group Generator: an any-source control loop
// that batches node contributions into groups, caches every flushed
// result for recovery, and terminates when every worker rank is done or
// dead.
func runGGElastic(ep transport.Endpoint, cfg Config) error {
	topo := cfg.Topo
	threshold := cfg.threshold()
	tr := membership.NewTracker(topo.Size())
	// The GG's policy stays deterministic (no jitter): its worst-case
	// block — waiting out a dead Leader's never-arriving payload — must
	// stay strictly shorter than a live Leader's total re-contribution
	// budget, or Leaders would exhaust recontributeCap against a GG that
	// is merely busy. A jittered attempt waits at least half the
	// deterministic delay, so recontributeCap (4) jittered worker budgets
	// still cover one deterministic GG budget twice over; a jittered GG
	// budget could stretch to several times the deterministic one and
	// break that margin — which is exactly what jitter's clamp prevents on
	// the side that retries, not the side others wait behind.
	pol := cfg.Retry
	rj := newGGRejoin(tr, topo.Size(), cfg.StartIter)
	// The GG is the single combine point of the elastic topology, which is
	// exactly what a robust (non-associative) aggregator needs: the robust
	// center is taken here, at node granularity, over the node sums of one
	// group. Leaders still SUM their members — the screen, not the
	// statistic, is the intra-node defense — so the trim bound is on nodes.
	spec, err := cfg.aggSpec()
	if err != nil {
		return fmt.Errorf("wlg: %w", err)
	}
	var sortBuf []float64
	var srcs [][]float64
	type entry struct {
		node, leader int
		w            []float64
		count        int64
	}
	type result struct {
		w     []float64
		count int64
	}
	type key struct{ iter, node int }
	queues := make(map[int][]*entry) // iteration → GQ (arrival order)
	cache := make(map[key]*result)   // flushed results, the recovery source
	done := make([]bool, topo.Size())

	// nodeActive: some rank of the node may still contribute for an
	// iteration — alive, not done, and (for a rejoined incarnation) past
	// its join boundary, so a revival never blocks a remainder group from
	// an iteration the rejoiner will not participate in. allDone: nobody
	// will ever talk to the GG again (a revived, not-yet-done rank keeps
	// the GG serving until the rejoiner's own farewell).
	nodeActive := func(n, iter int) bool {
		for _, r := range topo.WorkersOf(n) {
			if !done[r] && tr.Alive(r) && rj.activeAt(r, iter) {
				return true
			}
		}
		return false
	}
	allDone := func() bool {
		for r := 0; r < topo.Size(); r++ {
			// A quarantined rank is excluded from aggregation but NOT done:
			// it is probing locally and will either announce a rejoin or
			// send its farewell. Counting it as gone would let the GG exit
			// while the victim's re-admission handshake is still coming.
			if !done[r] && (tr.Alive(r) || tr.Quarantined(r)) {
				return false
			}
		}
		return true
	}
	reply := func(to, iter int, res *result) {
		if err := ep.Send(to, wire.Control(iterTag(iter, offElReplyCtl), rj.withLog(elStatusReady, res.count)...)); err != nil {
			tr.Observe(err) // a dead Leader's successor recovers from the cache
			return
		}
		if err := ep.Send(to, wire.DenseMsg(iterTag(iter, offElReplyW), res.w)); err != nil {
			tr.Observe(err)
		}
	}
	flush := func(iter int, q []*entry) {
		cnt := q[0].count
		for _, e := range q[1:] {
			cnt += e.count
		}
		var sum []float64
		if spec.Robust() && len(q) > 1 {
			// CombineDense writes center × len(q) into sum; the workers'
			// ApplyW divides by cnt = Σ counts, so with near-uniform node
			// sizes the consensus lands on the robust center of the
			// per-worker contributions. A single-entry group has nothing
			// to trim and keeps the plain sum below.
			srcs = srcs[:0]
			for _, e := range q {
				srcs = append(srcs, e.w)
			}
			sum = make([]float64, len(q[0].w))
			sortBuf = collective.CombineDense(spec, sum, srcs, sortBuf)
		} else {
			sum = append([]float64(nil), q[0].w...)
			for _, e := range q[1:] {
				vec.AddInto(sum, e.w)
			}
		}
		res := &result{w: sum, count: cnt}
		rj.noteFlush(iter, res.w, res.count)
		for _, e := range q {
			cache[key{iter, e.node}] = res
		}
		for _, e := range q {
			reply(e.leader, iter, res)
		}
	}
	accounted := func(iter, node int) bool {
		if _, ok := cache[key{iter, node}]; ok {
			return true
		}
		for _, e := range queues[iter] {
			if e.node == node {
				return true
			}
		}
		return false
	}
	maybeFlush := func(iter int) {
		for len(queues[iter]) >= threshold {
			q := queues[iter]
			queues[iter] = q[threshold:]
			flush(iter, q[:threshold])
		}
		if len(queues[iter]) == 0 {
			delete(queues, iter)
			return
		}
		// The remainder group flushes once no unaccounted node can still
		// contribute — the elastic version of "every node has reported".
		for n := 0; n < topo.Nodes; n++ {
			if nodeActive(n, iter) && !accounted(iter, n) {
				return
			}
		}
		q := queues[iter]
		delete(queues, iter)
		flush(iter, q)
	}
	// A death or a farewell can complete the "nobody else will report"
	// condition of any pending remainder, so re-check them all.
	recheck := func() {
		for iter := range queues {
			maybeFlush(iter)
		}
	}

	for !allDone() {
		m, err := ep.Recv(transport.AnySource, tagElControl)
		if err != nil {
			if _, down := tr.Observe(err); down {
				recheck()
				continue
			}
			return fmt.Errorf("wlg: GG recv: %w", err)
		}
		if len(m.Ints) != 4 {
			return fmt.Errorf("wlg: GG malformed elastic request from %d", m.From)
		}
		kind, node, iter, count := m.Ints[0], int(m.Ints[1]), int(m.Ints[2]), m.Ints[3]
		from := int(m.From)
		switch kind {
		case elKindDone:
			done[from] = true
			// Acknowledge so the sender's SendAck stops re-sending;
			// duplicates from lost acks land here again, idempotently.
			if err := ep.Send(from, wire.Control(collective.AckTag(tagElControl), 0)); err != nil {
				tr.Observe(err)
			}
			recheck()
		case elKindContribute:
			rj.observe(iter)
			// The node sum follows on the per-iteration tag; per-sender
			// ordering pairs it with this control. A lost payload drops
			// the contribution — the Leader re-contributes.
			wm, err := collective.RecvRetry(ep, from, iterTag(iter, offElGGW), pol)
			if err != nil {
				if _, down := tr.Observe(err); !down && !errors.Is(err, collective.ErrUnavailable) {
					return fmt.Errorf("wlg: GG contribution payload from %d: %w", from, err)
				}
				recheck()
				continue
			}
			if res, ok := cache[key{iter, node}]; ok {
				reply(from, iter, res) // already flushed: serve the cache
				continue
			}
			replaced := false
			for _, e := range queues[iter] {
				if e.node == node {
					// A re-elected (or retrying) Leader supersedes the
					// node's queued entry — never a double count.
					e.leader, e.w, e.count = from, wm.Dense, count
					replaced = true
					break
				}
			}
			if !replaced {
				queues[iter] = append(queues[iter], &entry{node: node, leader: from, w: wm.Dense, count: count})
			}
			maybeFlush(iter)
		case elKindQuarantine:
			// A Leader's screen evidence: Ints = [kind, victim, iter, inc].
			// noteQuarantine applies it idempotently (incarnation-guarded,
			// ignored for dead/already-quarantined/reincarnated ranks) and
			// appends the log triple every live rank folds in; a fresh
			// quarantine can complete a pending remainder group's "nobody
			// else will report" condition, hence the recheck.
			victim := node
			if victim < 0 || victim >= topo.Size() {
				return fmt.Errorf("wlg: GG quarantine evidence for invalid rank %d from %d", victim, from)
			}
			if rj.noteQuarantine(victim, iter, int(count)) {
				recheck()
			}
		case elKindRecover:
			rj.observe(iter)
			if res, ok := cache[key{iter, node}]; ok {
				reply(from, iter, res)
			} else if err := ep.Send(from, wire.Control(iterTag(iter, offElReplyCtl), rj.withLog(elStatusNotReady, 0)...)); err != nil {
				tr.Observe(err)
			}
		case elKindRejoin:
			// A returning incarnation of rank `from`. admit is idempotent
			// for duplicates (loss-driven re-announces, fabric-duplicated
			// frames): the same grant is re-served and no second
			// incarnation is minted. Only a FRESH grant clears the done
			// flag — a duplicated announce straggling in after the
			// rejoiner's farewell must not resurrect the done accounting,
			// or the GG would wait forever for a second farewell.
			grant, fresh := rj.admit(from)
			if fresh {
				done[from] = false
			}
			if err := ep.Send(from, wire.Control(tagElRejoinReply, rj.grantInts(grant)...)); err != nil {
				tr.Observe(err)
				recheck()
				continue
			}
			if grant.warm != nil {
				if err := ep.Send(from, wire.DenseMsg(tagElRejoinW, grant.warm)); err != nil {
					tr.Observe(err)
					recheck()
				}
			}
		default:
			return fmt.Errorf("wlg: GG unknown elastic request kind %d from %d", kind, m.From)
		}
	}
	return nil
}
