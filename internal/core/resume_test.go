package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/transport"
)

// statBitEqual compares every float field bitwise (NaN == NaN: "not
// evaluated" must reproduce too) — stricter than iterStatEqual, which
// ignores the residual and membership fields.
func statBitEqual(a, b IterStat) bool {
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Iter == b.Iter && a.Bytes == b.Bytes &&
		a.LiveWorkers == b.LiveWorkers && a.Epoch == b.Epoch &&
		feq(a.Objective, b.Objective) && feq(a.RelError, b.RelError) &&
		feq(a.Accuracy, b.Accuracy) && feq(a.CalTime, b.CalTime) &&
		feq(a.CommTime, b.CommTime) && feq(a.PrimalRes, b.PrimalRes) &&
		feq(a.DualRes, b.DualRes) && feq(a.Rho, b.Rho)
}

// TestResumeBitExact is the checkpoint/resume contract: kill a run at
// iteration k, resume from its snapshot, and the continued history must be
// BIT-IDENTICAL to an uninterrupted golden run from k on. AdaptiveRho is
// on so the snapshot's ρ capture is load-bearing, and the elastic variant
// kills a worker before the cut so the membership view must survive the
// round trip too.
func TestResumeBitExact(t *testing.T) {
	train, test := testData(t, 160)
	const cut = 7

	cases := []struct {
		name    string
		mutate  func(*Config)
		wantPD  int64 // PeerDowns expected after resume (membership restore)
		degrade bool
	}{
		{name: "healthy", mutate: func(cfg *Config) {}},
		{
			name: "degraded",
			mutate: func(cfg *Config) {
				cfg.Elastic = true
				cfg.Faults = &transport.FaultPlan{
					Seed:            11,
					KillAtIteration: map[int]int{5: 3},
				}
			},
			wantPD:  1,
			degrade: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() Config {
				cfg := baseConfig(PSRAHGADMM, 4, 2)
				cfg.MaxIter = 12
				cfg.GroupThreshold = 2
				cfg.AdaptiveRho = true
				tc.mutate(&cfg)
				return cfg
			}

			// Golden: uninterrupted.
			golden, err := Run(mk(), train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted: same run cut at iteration `cut`, snapshotting
			// every iteration.
			store := checkpoint.NewMemStore()
			cfgCut := mk()
			cfgCut.MaxIter = cut
			if _, err := Run(cfgCut, train, RunOptions{
				Test:       test,
				Checkpoint: &CheckpointOptions{Store: store, Every: 1},
			}); err != nil {
				t.Fatal(err)
			}
			if store.Saves() != cut {
				t.Fatalf("saved %d snapshots, want %d", store.Saves(), cut)
			}

			// Resumed: fresh process state, same store.
			resumed, err := Run(mk(), train, RunOptions{
				Test:       test,
				Checkpoint: &CheckpointOptions{Store: store, Every: 1, Resume: true},
			})
			if err != nil {
				t.Fatal(err)
			}

			want := golden.History[cut:]
			if len(resumed.History) != len(want) {
				t.Fatalf("resumed %d iterations, want %d", len(resumed.History), len(want))
			}
			for i := range want {
				if !statBitEqual(want[i], resumed.History[i]) {
					t.Fatalf("iter %d diverged after resume:\ngolden:  %+v\nresumed: %+v",
						want[i].Iter, want[i], resumed.History[i])
				}
			}
			for i := range golden.Z {
				if math.Float64bits(golden.Z[i]) != math.Float64bits(resumed.Z[i]) {
					t.Fatalf("final iterate diverged at coordinate %d: %v vs %v",
						i, golden.Z[i], resumed.Z[i])
				}
			}
			// The virtual-clock totals resume from the snapshot, so the
			// resumed run's grand totals equal the golden run's.
			if math.Float64bits(golden.TotalCalTime) != math.Float64bits(resumed.TotalCalTime) ||
				math.Float64bits(golden.TotalCommTime) != math.Float64bits(resumed.TotalCommTime) ||
				golden.TotalBytes != resumed.TotalBytes {
				t.Fatalf("totals diverged: golden (%v, %v, %d) vs resumed (%v, %v, %d)",
					golden.TotalCalTime, golden.TotalCommTime, golden.TotalBytes,
					resumed.TotalCalTime, resumed.TotalCommTime, resumed.TotalBytes)
			}
			if resumed.Degraded != tc.degrade {
				t.Fatalf("Degraded = %v, want %v", resumed.Degraded, tc.degrade)
			}
			if pd := resumed.History[len(resumed.History)-1].PeerDowns; pd != tc.wantPD {
				t.Fatalf("PeerDowns after resume = %d, want %d", pd, tc.wantPD)
			}
		})
	}
}

// TestResumeFreshStartWhenEmpty: Resume against an empty store is a
// normal cold start, so one flag serves both the first launch and every
// restart of a training job.
func TestResumeFreshStartWhenEmpty(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 2, 2)
	cfg.MaxIter = 5
	res, err := Run(cfg, train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: checkpoint.NewMemStore(), Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.MaxIter {
		t.Fatalf("history length %d", len(res.History))
	}
}

// TestResumeRejectsMismatchedRun: a snapshot from a different algorithm
// or world must be refused loudly, not silently corrupt the state.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	train, _ := testData(t, 120)
	store := checkpoint.NewMemStore()
	cfg := baseConfig(PSRAHGADMM, 2, 2)
	cfg.MaxIter = 4
	if _, err := Run(cfg, train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: store, Every: 2},
	}); err != nil {
		t.Fatal(err)
	}

	wrongAlg := baseConfig(GCADMM, 2, 2)
	wrongAlg.MaxIter = 4
	if _, err := Run(wrongAlg, train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: store, Resume: true},
	}); err == nil {
		t.Fatal("resume accepted a snapshot from a different algorithm")
	}

	wrongWorld := baseConfig(PSRAHGADMM, 3, 2)
	wrongWorld.MaxIter = 4
	if _, err := Run(wrongWorld, train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: store, Resume: true},
	}); err == nil {
		t.Fatal("resume accepted a snapshot from a different world size")
	}
}

// TestCheckpointDirStoreRoundTrip drives the file-backed store through
// the engine: save to disk, resume from disk — the CLI flag path.
func TestCheckpointDirStoreRoundTrip(t *testing.T) {
	train, _ := testData(t, 120)
	store, err := checkpoint.NewDirStore(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		cfg := baseConfig(PSRAHGADMM, 2, 2)
		cfg.MaxIter = 8
		return cfg
	}
	golden, err := Run(mk(), train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfgCut := mk()
	cfgCut.MaxIter = 4
	if _, err := Run(cfgCut, train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: store, Every: 2},
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(mk(), train, RunOptions{
		Checkpoint: &CheckpointOptions{Store: store, Every: 2, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.History) != 4 {
		t.Fatalf("resumed %d iterations, want 4", len(resumed.History))
	}
	for i, want := range golden.History[4:] {
		if !statBitEqual(want, resumed.History[i]) {
			t.Fatalf("iter %d diverged across the file round trip", want.Iter)
		}
	}
}
