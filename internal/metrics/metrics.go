// Package metrics provides the reporting helpers shared by the benchmark
// harness and the CLIs: aligned text tables, CSV emission, and the
// percentage/ratio arithmetic the paper's headline claims use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, h := range t.headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(clean(h))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(clean(c))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatFloat renders a float compactly: scientific for very small/large
// magnitudes, fixed otherwise.
func FormatFloat(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v == 0:
		return "0"
	case absf(v) < 1e-3 || absf(v) >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case absf(v) < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// PctChange returns 100·(to−from)/from: negative means a reduction, the
// quantity headline claims like "communication cost reduced by 32%" use.
func PctChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (to - from) / from
}

// Reduction returns the positive reduction percentage 100·(from−to)/from,
// clamped at 0 when to >= from.
func Reduction(from, to float64) float64 {
	if from <= 0 || to >= from {
		return 0
	}
	return 100 * (from - to) / from
}

// Seconds formats a virtual duration with unit scaling.
func Seconds(v float64) string {
	switch {
	case v != v:
		return "-"
	case v >= 1:
		return fmt.Sprintf("%.3fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3fms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3fµs", v*1e6)
	default:
		return fmt.Sprintf("%.0fns", v*1e9)
	}
}

// Bytes formats a byte count with unit scaling.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// sparkGlyphs are the eight block heights used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode mini-chart on a log scale when the
// dynamic range exceeds two decades (convergence curves), linear
// otherwise. NaNs render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v != v {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	logScale := lo > 0 && hi/lo > 100
	norm := func(v float64) float64 {
		if logScale {
			return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		}
		if hi == lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	var b strings.Builder
	for _, v := range values {
		if v != v {
			b.WriteByte(' ')
			continue
		}
		idx := int(norm(v) * float64(len(sparkGlyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}
