package wlg

import (
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// elasticRecorder wires a full elastic world over a (possibly faulty)
// fabric and records every surviving worker's applied aggregates and
// contributor counts per iteration. It enforces a deadline: elastic runs
// must terminate, not hang.
type elasticRecorder struct {
	agg    [][][]float64
	counts [][]int
	info   *RunInfo
}

func runElastic(t *testing.T, fab transport.Fabric, cfg Config, dim int) *elasticRecorder {
	t.Helper()
	topo := cfg.Topo
	rec := &elasticRecorder{
		agg:    make([][][]float64, topo.Size()),
		counts: make([][]int, topo.Size()),
	}
	var mu sync.Mutex
	for r := range rec.agg {
		rec.agg[r] = make([][]float64, cfg.MaxIter)
		rec.counts[r] = make([]int, cfg.MaxIter)
	}
	funcs := func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 { return rankVec(dim, rank) },
			ApplyW: func(iter int, w []float64, n int) {
				mu.Lock()
				rec.agg[rank][iter] = vec.Clone(w)
				rec.counts[rank][iter] = n
				mu.Unlock()
			},
		}
	}
	type outcome struct {
		info *RunInfo
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		info, err := RunWithInfo(fab, cfg, funcs)
		done <- outcome{info, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("elastic run failed: %v", o.err)
		}
		rec.info = o.info
	case <-time.After(120 * time.Second):
		t.Fatal("elastic run hung")
	}
	return rec
}

// TestElasticHappyPathExactConsensus: with nobody dying and the threshold
// clamped to all nodes, the elastic protocol is exact consensus — every
// worker applies the full-world sum with the full contributor count, and
// the run reports itself undegraded.
func TestElasticHappyPathExactConsensus(t *testing.T) {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 4, Elastic: true}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 5)

	want := float64(int(1)<<topo.Size() - 1)
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.counts[r][iter] != topo.Size() {
				t.Fatalf("rank %d iter %d contributors = %d, want %d", r, iter, rec.counts[r][iter], topo.Size())
			}
			for j, got := range rec.agg[r][iter] {
				if got != want {
					t.Fatalf("rank %d iter %d slot %d = %v, want %v", r, iter, j, got, want)
				}
			}
		}
	}
	if rec.info.Degraded() || rec.info.LiveWorkers != topo.Size() || rec.info.Epoch != 0 {
		t.Fatalf("happy path reported degraded: %+v", rec.info)
	}
}

// TestElasticLeaderDeathReelection kills a node's Leader before the run
// starts — the exact scenario that makes the fail-stop runtime return a
// PeerDownError (TestRunSurfacesTypedPeerError). Elastic mode must instead
// re-elect the node's surviving rank as Leader and complete every
// iteration, with the dead rank's contribution absent from every sum.
func TestElasticLeaderDeathReelection(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 5, Elastic: true}
	fab := transport.NewFaultFabric(transport.NewChanFabric(WorldSize(topo)), transport.FaultPlan{})
	fab.Kill(2) // Leader of node 1; rank 3 must take over
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 3)

	// Survivors: ranks 0, 1 (node 0) and 3 (node 1, now Leader).
	want := float64(1<<0 + 1<<1 + 1<<3)
	for _, r := range []int{0, 1, 3} {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.counts[r][iter] != 3 {
				t.Fatalf("rank %d iter %d contributors = %d, want 3", r, iter, rec.counts[r][iter])
			}
			if rec.agg[r][iter][0] != want {
				t.Fatalf("rank %d iter %d sum = %v, want %v (dead rank leaked in?)",
					r, iter, rec.agg[r][iter][0], want)
			}
		}
	}
	if !rec.info.Degraded() || rec.info.LiveWorkers != 3 || rec.info.Epoch != 1 {
		t.Fatalf("degradation summary: %+v", rec.info)
	}
}

// TestElasticMidRunLeaderKill kills a Leader partway through the run (send
// count triggered): its members are mid-protocol when the death surfaces,
// so recovery exercises the GG's result cache and the re-election loop
// rather than a clean boundary. The run must still complete every
// iteration for every survivor.
func TestElasticMidRunLeaderKill(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 20, Elastic: true}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{Seed: 3, KillAfterSends: map[int]int{2: 5}},
	)
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 3)

	for _, r := range []int{0, 1, 3} {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				t.Fatalf("survivor %d never applied iteration %d", r, iter)
			}
			// Own contribution must always be in the sum the rank applies.
			if ranks := decodeRanks(rec.agg[r][iter][0], topo.Size()); !ranks[r] {
				t.Fatalf("rank %d iter %d: own contribution missing from %v", r, iter, ranks)
			}
		}
	}
	if !rec.info.Degraded() || rec.info.LiveWorkers != 3 {
		t.Fatalf("degradation summary: %+v", rec.info)
	}
}

// TestElasticWholeNodeDeath removes node 1 entirely mid-run (both ranks
// killed). The GG must prune the dead node from its flush expectations —
// the remainder group condition is "no unaccounted node can still
// contribute", not "every node reported" — so the surviving nodes' groups
// keep flushing and the run completes.
func TestElasticWholeNodeDeath(t *testing.T) {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 15, Elastic: true}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{Seed: 4, KillAfterSends: map[int]int{2: 6, 3: 6}},
	)
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 3)

	for _, r := range []int{0, 1, 4, 5} {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				t.Fatalf("survivor %d never applied iteration %d", r, iter)
			}
		}
	}
	if !rec.info.Degraded() || rec.info.LiveWorkers != 4 {
		t.Fatalf("degradation summary: %+v", rec.info)
	}
}

// TestElasticSurvivesMessageLoss runs the elastic world over a lossy
// fabric: every wait is budget-bounded and every exchange has a recovery
// path (re-contribution to the GG, recovery from its cache, the ack'd
// farewell), so a few percent of dropped messages must cost staleness at
// worst, never a hang or an abort — the bounded-retry contract end to end.
func TestElasticSurvivesMessageLoss(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 8, Elastic: true}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{Seed: 6, DropProb: 0.02},
	)
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 3)

	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				t.Fatalf("rank %d never applied iteration %d", r, iter)
			}
		}
	}
	if rec.info.Epoch != 0 {
		t.Fatalf("message loss was escalated to a death: %+v", rec.info)
	}
}

// TestStartIterRunsTail: StartIter makes both runtimes execute exactly the
// iterations [StartIter, MaxIter) with absolute iteration numbers — the
// property checkpoint resume relies on.
func TestStartIterRunsTail(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	for _, elastic := range []bool{false, true} {
		cfg := Config{Topo: topo, MaxIter: 6, StartIter: 4, Elastic: elastic}
		fab := transport.NewChanFabric(WorldSize(topo))
		var mu sync.Mutex
		seen := make(map[int]map[int]bool) // rank → iterations applied
		funcs := func(rank int) WorkerFuncs {
			return WorkerFuncs{
				ComputeW: func(iter int) []float64 { return rankVec(2, rank) },
				ApplyW: func(iter int, w []float64, n int) {
					mu.Lock()
					if seen[rank] == nil {
						seen[rank] = map[int]bool{}
					}
					seen[rank][iter] = true
					mu.Unlock()
				},
			}
		}
		if err := Run(fab, cfg, funcs); err != nil {
			t.Fatalf("elastic=%v: %v", elastic, err)
		}
		fab.Close()
		for r := 0; r < topo.Size(); r++ {
			if len(seen[r]) != 2 || !seen[r][4] || !seen[r][5] {
				t.Fatalf("elastic=%v rank %d applied %v, want exactly {4, 5}", elastic, r, seen[r])
			}
		}
	}
}

// TestStartIterValidation: StartIter outside [0, MaxIter) is a config
// error, not a silent empty run.
func TestStartIterValidation(t *testing.T) {
	topo := simnet.Topology{Nodes: 1, WorkersPerNode: 1}
	for _, si := range []int{-1, 3, 4} {
		cfg := Config{Topo: topo, MaxIter: 3, StartIter: si}
		if err := cfg.Validate(); err == nil {
			t.Fatalf("StartIter %d accepted", si)
		}
	}
}
