package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"psrahgadmm/internal/sparse"
)

// SynthConfig parameterizes the synthetic generator. A linear model w* with
// SignalNNZ nonzero weights over the most popular features is planted;
// features per row are drawn from a Zipf popularity distribution (text-like
// long tail) and labels are sign(w*·a) with NoiseFlip label noise.
type SynthConfig struct {
	Name      string
	Dim       int
	TrainRows int
	TestRows  int
	// RowNNZ is the mean number of nonzeros per row.
	RowNNZ int
	// ZipfS > 1 controls feature popularity skew; larger = heavier head.
	ZipfS float64
	// SignalNNZ is the support size of the planted weight vector.
	SignalNNZ int
	// NoiseFlip is the probability a label is flipped.
	NoiseFlip float64
	Seed      int64
}

func (c SynthConfig) validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("dataset: Dim must be positive")
	case c.TrainRows <= 0:
		return fmt.Errorf("dataset: TrainRows must be positive")
	case c.TestRows < 0:
		return fmt.Errorf("dataset: TestRows must be non-negative")
	case c.RowNNZ <= 0 || c.RowNNZ > c.Dim:
		return fmt.Errorf("dataset: RowNNZ %d out of (0,%d]", c.RowNNZ, c.Dim)
	case c.ZipfS <= 1:
		return fmt.Errorf("dataset: ZipfS must exceed 1")
	case c.SignalNNZ <= 0 || c.SignalNNZ > c.Dim:
		return fmt.Errorf("dataset: SignalNNZ %d out of (0,%d]", c.SignalNNZ, c.Dim)
	case c.NoiseFlip < 0 || c.NoiseFlip >= 0.5:
		return fmt.Errorf("dataset: NoiseFlip %v out of [0,0.5)", c.NoiseFlip)
	}
	return nil
}

// Generate builds the train and test splits deterministically from
// cfg.Seed.
func Generate(cfg SynthConfig) (train, test *Dataset, err error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Dim-1))

	// Planted weights on the SignalNNZ most popular features (low Zipf
	// ranks), so most rows touch some signal.
	w := make([]float64, cfg.Dim)
	for i := 0; i < cfg.SignalNNZ; i++ {
		w[i] = r.NormFloat64() * 2
	}

	gen := func(rows int, suffix string) *Dataset {
		m := sparse.NewCSR(0, cfg.Dim, 0)
		labels := make([]float64, rows)
		colsBuf := make([]int32, 0, 4*cfg.RowNNZ)
		valsBuf := make([]float64, 0, 4*cfg.RowNNZ)
		seen := map[int32]float64{}
		for i := 0; i < rows; i++ {
			// Row length: geometric-ish spread around the mean, >= 1.
			nnz := 1 + r.Intn(2*cfg.RowNNZ-1)
			for k := range seen {
				delete(seen, k)
			}
			for len(seen) < nnz {
				f := int32(zipf.Uint64())
				if _, ok := seen[f]; ok {
					continue
				}
				// tf-idf-like positive magnitudes.
				seen[f] = 0.2 + math.Abs(r.NormFloat64())
			}
			colsBuf = colsBuf[:0]
			valsBuf = valsBuf[:0]
			for c := range seen {
				colsBuf = append(colsBuf, c)
			}
			sort.Slice(colsBuf, func(a, b int) bool { return colsBuf[a] < colsBuf[b] })
			margin := 0.0
			for _, c := range colsBuf {
				v := seen[c]
				valsBuf = append(valsBuf, v)
				margin += v * w[c]
			}
			m.AppendRow(colsBuf, valsBuf)
			label := 1.0
			if margin < 0 {
				label = -1
			}
			if r.Float64() < cfg.NoiseFlip {
				label = -label
			}
			labels[i] = label
		}
		return &Dataset{Name: cfg.Name + suffix, X: m, Labels: labels}
	}
	train = gen(cfg.TrainRows, "")
	test = gen(cfg.TestRows, "/test")
	return train, test, nil
}

// Paper-corpus presets. scale ∈ (0, 1] shrinks dimension and row counts
// proportionally (floors keep the problems meaningful); scale = 1
// reproduces Table 1's sizes. The default experiment scale in package
// bench is chosen so a full figure sweep runs in seconds on a laptop.
//
//	paper Table 1:  dataset   dim         train      test
//	                news20    1,355,191   16,000     3,996
//	                webspam   16,609,143  300,000    50,000
//	                url       3,231,961   2,000,000  396,130
func scaled(v int, scale float64, floor int) int {
	s := int(float64(v) * scale)
	if s < floor {
		s = floor
	}
	return s
}

// News20Like mimics news20.binary: bag-of-words text, ~455 nonzeros per
// row over 1.35M features, heavy Zipf head.
func News20Like(scale float64, seed int64) SynthConfig {
	return SynthConfig{
		Name:      "news20",
		Dim:       scaled(1355191, scale, 256),
		TrainRows: scaled(16000, scale, 64),
		TestRows:  scaled(3996, scale, 16),
		RowNNZ:    scaled(455, scale*10, 12),
		ZipfS:     1.3,
		SignalNNZ: scaled(2000, scale, 32),
		NoiseFlip: 0.02,
		Seed:      seed,
	}
}

// WebspamLike mimics webspam (trigram): extremely high dimension (16.6M),
// ~3700 nonzeros per row, very sparse relative to dimension.
func WebspamLike(scale float64, seed int64) SynthConfig {
	return SynthConfig{
		Name:      "webspam",
		Dim:       scaled(16609143, scale, 512),
		TrainRows: scaled(300000, scale, 96),
		TestRows:  scaled(50000, scale, 16),
		RowNNZ:    scaled(3730, scale*10, 20),
		ZipfS:     1.2,
		SignalNNZ: scaled(4000, scale, 48),
		NoiseFlip: 0.01,
		Seed:      seed,
	}
}

// URLLike mimics the url reputation corpus: 3.2M features, ~115 nonzeros
// per row, many near-binary features, mild skew.
func URLLike(scale float64, seed int64) SynthConfig {
	return SynthConfig{
		Name:      "url",
		Dim:       scaled(3231961, scale, 384),
		TrainRows: scaled(2000000, scale, 128),
		TestRows:  scaled(396130, scale, 24),
		RowNNZ:    scaled(115, scale*10, 10),
		ZipfS:     1.15,
		SignalNNZ: scaled(3000, scale, 40),
		NoiseFlip: 0.03,
		Seed:      seed,
	}
}

// PaperPresets returns the three Table 1 dataset configs at the given
// scale, in the paper's order.
func PaperPresets(scale float64, seed int64) []SynthConfig {
	return []SynthConfig{
		News20Like(scale, seed),
		WebspamLike(scale, seed+1),
		URLLike(scale, seed+2),
	}
}
