package core

import (
	"psrahgadmm/internal/sparse"
)

// ringStrategy is the hierarchical Ring-Allreduce: workers reduce their w
// over the node bus to their Leader, all Leaders run one Ring-Allreduce,
// and the (much sparser) z fans back out. The codec decides the wire
// format — GR-ADMM is this ring with the exact sparse exchange under BSP;
// ADMMLib is the same ring with the dense single-precision exchange under
// node-granular SSP (the full parameter vector circulates regardless of
// sparsity, which is why its communication volume is flat in cluster size
// and why PSRA's sparse exchange undercuts it).
type ringStrategy struct {
	env    *strategyEnv
	clocks []sspClock // per node
	// Dense-codec state: cached and in-flight per-node dense sums.
	wCurD [][]float64
	pendD [][]float64
	// Sparse-codec state: cached and in-flight per-node sparse sums.
	wCurS []*sparse.Vector
	pendS []*sparse.Vector
	// lastRingEnd serializes consecutive rings through the Leaders' NICs.
	lastRingEnd float64
}

func newRingStrategy(env *strategyEnv, cfg Config) *ringStrategy {
	nodes := cfg.Topo.Nodes
	st := &ringStrategy{env: env, clocks: make([]sspClock, nodes)}
	if env.codec.DenseExchange() {
		st.wCurD = make([][]float64, nodes)
		st.pendD = make([][]float64, nodes)
		for n := range st.wCurD {
			st.wCurD[n] = make([]float64, env.dim)
		}
	} else {
		st.wCurS = make([]*sparse.Vector, nodes)
		st.pendS = make([]*sparse.Vector, nodes)
		for n := range st.wCurS {
			st.wCurS[n] = sparse.NewVector(env.dim, 0)
		}
	}
	return st
}

func (st *ringStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dense := env.codec.DenseExchange()
	var timing iterTiming

	// Launch compute on every idle node.
	for n := range st.clocks {
		if st.clocks[n].pending != nil {
			continue
		}
		if dense {
			st.pendD[n] = st.launchNodeDense(cfg, n, iter, &timing)
		} else {
			c := launchNodeSparse(env, cfg, n, iter, &timing)
			st.pendS[n] = c.sum
			st.clocks[n].pending = c.pending
		}
	}

	cutoff := sspCutoff(st.clocks, env.sync.Quorum(topo.Nodes, wpn), env.sync.Delay())
	freshNodes := admitted(st.clocks, cutoff)
	for _, n := range freshNodes {
		if dense {
			st.wCurD[n] = st.pendD[n]
		} else {
			st.wCurS[n] = st.pendS[n]
		}
	}

	// The ring runs among ALL Leaders every round — stale Leaders serve
	// their cached contribution.
	leaders := make([]int, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		leaders[n] = topo.WorkersOf(n)[0]
	}
	ringStart := maxf(cutoff, st.lastRingEnd)
	var commT float64
	var bigW []float64
	var agg *sparse.Vector
	if topo.Nodes == 1 {
		if dense {
			bigW = append([]float64(nil), st.wCurD[0]...)
		} else {
			agg = st.wCurS[0]
		}
	} else if dense {
		var err error
		var tr traceAlias
		bigW, tr, err = groupAllreduceDense(env.fab, leaders, int32(64+iter%2*8), st.wCurD)
		if err != nil {
			return timing, err
		}
		scaled := env.codec.WireTrace(tr)
		commT = cfg.Cost.TraceTime(topo, scaled)
		timing.bytes += traceBytes(scaled)
	} else {
		var err error
		var tr traceAlias
		agg, tr, err = groupAllreduce(env.fab, leaders, commRingSparse, int32(64+iter%2*8), st.wCurS)
		if err != nil {
			return timing, err
		}
		tr = env.codec.WireTrace(tr)
		commT = cfg.Cost.TraceTime(topo, tr)
		timing.bytes += traceBytes(tr)
	}
	ringEnd := ringStart + commT
	st.lastRingEnd = ringEnd

	// Leaders hold W after the ring; they apply the z-update and fan the
	// thresholded z to their fresh workers.
	var zDense []float64
	var zSparse *sparse.Vector
	if dense {
		env.codec.EncodeDense(bigW)
		zDense = make([]float64, env.dim)
		solverZUpdate(zDense, bigW, cfg.Lambda, cfg.Rho, topo.Size())
		env.codec.EncodeDense(zDense)
	} else {
		zSparse = zFromW(agg, cfg.Lambda, cfg.Rho, topo.Size())
		zDense = zSparse.ToDense()
	}

	calSum, commSum := 0.0, 0.0
	applied := 0
	for _, n := range freshNodes {
		p := st.clocks[n].pending
		ranks := topo.WorkersOf(n)
		var bc traceAlias
		if dense {
			bc = denseFanTrace(ranks, ranks[0], env.codec.ZMsgBytes(countNonzero(zDense)), false)
		} else {
			bc = intraBcastTrace(ranks, ranks[0], zSparse.NNZ())
		}
		timing.bytes += traceBytes(bc)
		end := ringEnd + cfg.Cost.TraceTime(topo, bc)
		for _, c := range p.cals {
			calSum += c
		}
		applyNodeZ(env, cfg, n, p, zDense, zSparse, end, &commSum, &applied)
		st.clocks[n].pending = nil
		st.clocks[n].staleness = 0
		if dense {
			st.pendD[n] = nil
		} else {
			st.pendS[n] = nil
		}
	}
	bumpStale(st.clocks)
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}

// launchNodeDense is the dense-codec counterpart of launchNodeSparse: the
// node's w contributions are summed densely, rounded by the codec, and
// fanned to the Leader as fixed-size dense messages over the bus.
func (st *ringStrategy) launchNodeDense(cfg Config, n, iter int, timing *iterTiming) []float64 {
	env := st.env
	topo := cfg.Topo
	ranks := topo.WorkersOf(n)
	sub := make([]*worker, len(ranks))
	for i, r := range ranks {
		sub[i] = env.ws[r]
	}
	cals := parallelXUpdates(cfg, sub, iter)
	starts := make([]float64, len(ranks))
	sum := make([]float64, env.dim)
	ready := 0.0
	for i, w := range sub {
		starts[i] = w.clock
		ready = maxf(ready, w.clock+cals[i])
		w.wSparse(cfg.Rho).AddIntoDense(sum, 1)
	}
	env.codec.EncodeDense(sum)
	tr := denseFanTrace(ranks, ranks[0], env.codec.DenseMsgBytes(env.dim), true)
	timing.bytes += traceBytes(tr)
	st.clocks[n].pending = &pendingCompute{
		finish: ready + cfg.Cost.TraceTime(topo, tr),
		starts: starts,
		cals:   cals,
	}
	return sum
}
