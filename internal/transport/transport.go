// Package transport provides the message-passing fabric the PSRA-HGADMM
// algorithms run on. It plays the role MPICH plays in the paper: reliable,
// ordered, tagged point-to-point messaging between ranks, with two
// interchangeable implementations:
//
//   - ChanFabric: all ranks are goroutines in one process, messages travel
//     over channels. This is the default for the engine, the tests, and the
//     benchmark harness.
//   - TCPFabric: each rank is a peer in a full TCP mesh using the wire
//     codec. This is the "custom RPC" substitute for MPI when ranks live in
//     separate processes (see cmd/psra-worker).
//
// Collectives (package collective) and the WLG runtime (package wlg) are
// written purely against Endpoint, so every algorithm runs unchanged on
// either fabric.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"

	"psrahgadmm/internal/wire"
)

// AnySource makes Recv match a message from any sender, like MPI_ANY_SOURCE.
const AnySource = -1

// ErrClosed is returned by Send/Recv after the endpoint has been closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one rank's handle onto the fabric. Send and Recv follow MPI
// point-to-point semantics: messages between a fixed (sender, receiver)
// pair are delivered in send order, and Recv matches on (source, tag),
// buffering non-matching messages until a matching Recv arrives.
//
// An Endpoint is safe for use by a single goroutine (one rank = one
// goroutine); concurrent Sends from the owning goroutine's helpers must be
// externally serialized.
type Endpoint interface {
	// Rank returns this endpoint's 0-based rank.
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers m to rank `to`. The From field is stamped by the
	// fabric. Delivered payloads never alias the sender's buffers: the
	// channel fabric deep-copies float payloads, the TCP fabric
	// serializes. Senders may mutate their buffers as soon as Send
	// returns.
	Send(to int, m wire.Message) error
	// Recv blocks until a message with the given tag from the given source
	// (or from anyone when from == AnySource) is available.
	Recv(from int, tag int32) (wire.Message, error)
	// Stats returns cumulative send-side counters for this endpoint.
	Stats() Stats
	// Close tears down the endpoint. Blocked Recvs return ErrClosed.
	Close() error
}

// Stats counts traffic an endpoint has sent.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
}

type statsCounter struct {
	msgs  atomic.Int64
	bytes atomic.Int64
}

func (s *statsCounter) record(m wire.Message) {
	s.msgs.Add(1)
	s.bytes.Add(int64(wire.EncodedBytes(m)))
}

func (s *statsCounter) snapshot() Stats {
	return Stats{MsgsSent: s.msgs.Load(), BytesSent: s.bytes.Load()}
}

func checkRank(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", rank, size)
	}
	return nil
}

// pending is an ordered buffer of received-but-unmatched messages.
type pending struct {
	msgs []wire.Message
}

// take removes and returns the first buffered message matching (from, tag).
func (p *pending) take(from int, tag int32) (wire.Message, bool) {
	for i, m := range p.msgs {
		if m.Tag != tag {
			continue
		}
		if from != AnySource && int(m.From) != from {
			continue
		}
		p.msgs = append(p.msgs[:i], p.msgs[i+1:]...)
		return m, true
	}
	return wire.Message{}, false
}

func (p *pending) put(m wire.Message) { p.msgs = append(p.msgs, m) }
