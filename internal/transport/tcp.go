package transport

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"psrahgadmm/internal/wire"
)

// handshakeTag is the reserved tag carried by the one-time rank
// identification frame exchanged when a mesh connection is established.
// User code must not send on this tag.
const handshakeTag = wire.TagHandshake

// maxCorruptRun is how many consecutive checksum-failed frames a reader
// tolerates (each dropped and re-sent by the retry layer) before declaring
// the connection poisoned and marking the peer down. Isolated flips recover
// invisibly; a systematically broken link fails fast instead of spinning.
const maxCorruptRun = 8

// TCPOptions configures mesh establishment and failure detection.
type TCPOptions struct {
	// DialTimeout bounds the TOTAL wall time NewTCPEndpoint spends
	// retrying dials to peers that have not started listening yet,
	// including the individual dial attempts themselves. Default 30s.
	DialTimeout time.Duration
	// RetryInterval is the pause between dial attempts. Default 50ms.
	RetryInterval time.Duration
	// HeartbeatInterval is how often an idle connection carries a
	// keepalive frame (wire.TagHeartbeat), keeping silent peer failures
	// detectable. Heartbeats are consumed by the transport, never surface
	// from Recv, and are excluded from MsgsSent/BytesSent. Default 1s; a
	// negative value disables heartbeats (and with them PeerTimeout
	// detection).
	HeartbeatInterval time.Duration
	// PeerTimeout, when positive, marks a peer down (PeerDownError) after
	// no frame — data or heartbeat — has been received from it for this
	// long. It should be several times the peers' HeartbeatInterval.
	// Default 0: disabled; peer failure is then detected only through
	// connection errors (EOF, reset, write failure), which the OS reports
	// promptly for process death but not for silent network partitions.
	PeerTimeout time.Duration
	// Rejoin marks this endpoint as a restarted incarnation joining an
	// already-established mesh: instead of the dial-lower/accept-higher
	// bootstrap it dials EVERY peer, whose persistent accept loops adopt
	// the new connections in place of the dead ones and re-arm their
	// heartbeat state.
	Rejoin bool
}

func (o *TCPOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
}

// tcpEndpoint is one rank of a full TCP mesh. Every pair of ranks shares
// exactly one TCP connection: rank i dials every rank j < i and accepts
// from every j > i, so connection count is n(n-1)/2 across the cluster.
//
// Failure model: each peer connection has a dedicated reader; any read
// error, decode error, write error, or heartbeat silence marks that peer
// down exactly once. A down peer turns every Send to it and every Recv that
// depends on it into a fast *PeerDownError instead of a hang (see
// Endpoint.Recv for the buffered-delivery guarantee).
type tcpEndpoint struct {
	rank  int
	size  int
	opts  TCPOptions
	ln    net.Listener
	peers []*tcpPeer // indexed by rank; peers[rank] == nil; guarded by mu after setup

	inbox chan wire.Message
	buf   pending

	mu       sync.Mutex
	down     []*PeerDownError // indexed by rank, nil while alive
	downCh   chan struct{}    // closed and replaced on every down event
	reported []bool           // crashes already surfaced to an any-source wait
	firstErr error            // first decode error seen by any reader

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
	stats     statsCounter
}

type tcpPeer struct {
	conn       net.Conn
	wmu        sync.Mutex   // serializes frame writes
	lastSend   atomic.Int64 // UnixNano of the last frame written
	lastRecv   atomic.Int64 // UnixNano of the last frame read
	sawGoodbye atomic.Bool  // peer announced an orderly shutdown
}

// NewTCPEndpoint joins a TCP mesh as `rank`. addrs lists the listen address
// of every rank (host:port); addrs[rank] is this process's own listen
// address. The call blocks until the full mesh is established.
func NewTCPEndpoint(rank int, addrs []string, opts TCPOptions) (Endpoint, error) {
	opts.fill()
	size := len(addrs)
	if err := checkRank(rank, size); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	e := &tcpEndpoint{
		rank:     rank,
		size:     size,
		opts:     opts,
		ln:       ln,
		peers:    make([]*tcpPeer, size),
		inbox:    make(chan wire.Message, inboxDepth),
		down:     make([]*PeerDownError, size),
		downCh:   make(chan struct{}),
		reported: make([]bool, size),
		closed:   make(chan struct{}),
	}

	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var setup sync.WaitGroup

	// Accept connections from all higher ranks (a rejoining incarnation
	// instead dials everyone; its peers' accept loops adopt it).
	higher := size - 1 - rank
	if opts.Rejoin {
		higher = 0
	}
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := 0; i < higher; i++ {
			conn, err := ln.Accept()
			if err != nil {
				setErr(fmt.Errorf("transport: rank %d accept: %w", rank, err))
				return
			}
			m, err := wire.Decode(conn)
			if err != nil || m.Tag != handshakeTag || len(m.Ints) != 1 {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d bad handshake: %v", rank, err))
				return
			}
			peer := int(m.Ints[0])
			if err := checkRank(peer, size); err != nil || peer <= rank {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d handshake from invalid rank %d", rank, peer))
				return
			}
			mu.Lock()
			dup := e.peers[peer] != nil
			if !dup {
				e.peers[peer] = &tcpPeer{conn: conn}
			}
			mu.Unlock()
			if dup {
				conn.Close()
				setErr(fmt.Errorf("transport: rank %d duplicate handshake from %d", rank, peer))
				return
			}
		}
	}()

	// Dial all lower ranks — all peers when rejoining — retrying while
	// they come up. The whole loop — attempts and pauses — shares one
	// wall-clock budget of opts.DialTimeout, so each attempt is capped by
	// the remaining budget rather than restarting the full timeout (which
	// could overshoot ~2×).
	dialHigh := rank
	if opts.Rejoin {
		dialHigh = size
	}
	for peer := 0; peer < dialHigh; peer++ {
		if peer == rank {
			continue
		}
		setup.Add(1)
		go func(peer int) {
			defer setup.Done()
			deadline := time.Now().Add(opts.DialTimeout)
			// A rejoining incarnation may find some peers dead themselves;
			// that is a membership fact, not a setup failure — record them
			// down and join the survivors.
			fail := setErr
			if opts.Rejoin {
				fail = func(err error) {
					e.mu.Lock()
					e.down[peer] = &PeerDownError{Peer: peer, Cause: err}
					e.mu.Unlock()
				}
			}
			for {
				remaining := time.Until(deadline)
				if remaining <= 0 {
					fail(fmt.Errorf("transport: rank %d dial rank %d (%s): %w",
						rank, peer, addrs[peer], ErrTimeout))
					return
				}
				conn, err := net.DialTimeout("tcp", addrs[peer], remaining)
				if err == nil {
					hs := wire.Control(handshakeTag, int64(rank))
					hs.From = int32(rank)
					if err := wire.Encode(conn, hs); err != nil {
						conn.Close()
						fail(fmt.Errorf("transport: rank %d handshake to %d: %w", rank, peer, err))
						return
					}
					if opts.Rejoin {
						// Wait for the peer to adopt the connection before
						// reporting the mesh ready, or an immediate Send from
						// the peer's side could still see the old down record.
						conn.SetReadDeadline(deadline)
						ack, err := wire.Decode(conn)
						if err != nil || ack.Tag != handshakeTag {
							conn.Close()
							fail(fmt.Errorf("transport: rank %d rejoin ack from %d: %v", rank, peer, err))
							return
						}
						conn.SetReadDeadline(time.Time{})
					}
					mu.Lock()
					e.peers[peer] = &tcpPeer{conn: conn}
					mu.Unlock()
					return
				}
				if remaining = time.Until(deadline); remaining <= 0 {
					fail(fmt.Errorf("transport: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
					return
				}
				if pause := opts.RetryInterval; pause > remaining {
					time.Sleep(remaining)
				} else {
					time.Sleep(pause)
				}
			}
		}(peer)
	}

	setup.Wait()
	if firstErr != nil {
		e.teardown()
		return nil, firstErr
	}

	// Start one reader per peer connection, plus the heartbeat ticker.
	now := time.Now().UnixNano()
	for p, peer := range e.peers {
		if peer == nil {
			continue
		}
		peer.lastSend.Store(now)
		peer.lastRecv.Store(now)
		e.wg.Add(1)
		go e.readLoop(p, peer)
	}
	if e.opts.HeartbeatInterval > 0 && size > 1 {
		e.wg.Add(1)
		go e.heartbeatLoop()
	}
	// The listener stays open for the life of the endpoint so restarted
	// incarnations of dead peers can re-dial into the mesh.
	e.wg.Add(1)
	go e.acceptRejoins()
	return e, nil
}

// acceptRejoins serves the listener after mesh establishment: every new
// connection must hand-shake as a known rank, and is adopted as that
// peer's new incarnation — replacing the dead (or about-to-be-declared-
// dead) connection, clearing the down record, and re-arming heartbeat
// state. Handshakes are processed one at a time; rejoin traffic is rare.
func (e *tcpEndpoint) acceptRejoins() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed (endpoint shutdown)
		}
		conn.SetReadDeadline(time.Now().Add(e.opts.DialTimeout))
		m, err := wire.Decode(conn)
		if err != nil || m.Tag != handshakeTag || len(m.Ints) != 1 {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		peer := int(m.Ints[0])
		if checkRank(peer, e.size) != nil || peer == e.rank {
			conn.Close()
			continue
		}
		// Acknowledge before installing: the dialer blocks on this ack, so
		// nobody else writes to the connection yet.
		ack := wire.Control(handshakeTag, int64(e.rank))
		ack.From = int32(e.rank)
		if err := wire.Encode(conn, ack); err != nil {
			conn.Close()
			continue
		}
		p := &tcpPeer{conn: conn}
		now := time.Now().UnixNano()
		p.lastSend.Store(now)
		p.lastRecv.Store(now)
		e.mu.Lock()
		select {
		case <-e.closed:
			e.mu.Unlock()
			conn.Close()
			return
		default:
		}
		old := e.peers[peer]
		e.peers[peer] = p
		e.down[peer] = nil
		e.reported[peer] = false
		// Wake blocked Recvs so targeted waits on the revived rank resume.
		close(e.downCh)
		e.downCh = make(chan struct{})
		e.mu.Unlock()
		if old != nil {
			// A new incarnation supersedes the old connection whether or not
			// its death was detected yet; stale observers of the old conn are
			// ignored by peerDown's identity check.
			old.conn.Close()
		}
		e.wg.Add(1)
		go e.readLoop(peer, p)
	}
}

// getPeer returns the current connection object for a rank; rejoins may
// replace it at any time, so callers must pass the same object to peerDown
// when reporting a failure they observed on it.
func (e *tcpEndpoint) getPeer(r int) *tcpPeer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peers[r]
}

// peerDown records the first failure observed for peer and wakes every
// blocked Recv. Closing the connection stops its reader and fails any
// in-flight writes fast instead of letting them buffer into a dead socket.
// The reporter passes the connection object it observed the failure on: a
// report against a connection a rejoin has since superseded is stale news
// about the previous incarnation and must not kill the new one.
func (e *tcpEndpoint) peerDown(peer int, p *tcpPeer, cause error, graceful bool) {
	e.mu.Lock()
	if p != nil && e.peers[peer] != p {
		e.mu.Unlock()
		p.conn.Close() // stale observer of a superseded connection
		return
	}
	if e.down[peer] != nil {
		e.mu.Unlock()
		return
	}
	e.down[peer] = &PeerDownError{Peer: peer, Cause: cause, Graceful: graceful}
	close(e.downCh)
	e.downCh = make(chan struct{})
	cur := e.peers[peer]
	e.mu.Unlock()
	if cur != nil {
		cur.conn.Close()
	}
}

// peerErr returns peer's PeerDownError, or nil while it is alive.
func (e *tcpEndpoint) peerErr(peer int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d := e.down[peer]; d != nil {
		return d
	}
	return nil
}

// recvDownError decides whether a Recv(from, ...) can still be satisfied.
// A targeted Recv fails as soon as its source is down, gracefully or not.
// An AnySource Recv fails on a CRASHED peer — a rank that vanished without
// a goodbye may be exactly the one whose message the caller is waiting
// for, so continuing risks a hang — but each crash is reported only ONCE:
// the report lets the caller register the death, after which later
// any-source waits tolerate the known-dead rank like a graceful departure
// (ranks that Closed after finishing) as long as at least one remote peer
// is still alive. Without the once-only rule an elastic caller that
// already pruned the dead rank would have every subsequent wait re-failed
// by old news — the Group Generator's request loop would spin instead of
// serving survivors. A fully departed world fails regardless: nobody is
// left to send.
func (e *tcpEndpoint) recvDownError(from int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from != AnySource {
		if d := e.down[from]; d != nil {
			return d
		}
		return nil
	}
	var first *PeerDownError
	allDown := true
	for r := 0; r < e.size; r++ {
		if r == e.rank {
			continue
		}
		d := e.down[r]
		if d == nil {
			allDown = false
			continue
		}
		if first == nil {
			first = d
		}
		if !d.Graceful && !e.reported[r] {
			e.reported[r] = true
			return d // a crash can strand this wait forever — fail now
		}
	}
	if allDown && first != nil {
		return first
	}
	return nil // live peers remain (or single-rank world: loopback only)
}

// curDownCh returns the channel that will be closed on the next down event.
func (e *tcpEndpoint) curDownCh() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.downCh
}

// noteDecodeError counts a corrupted frame and logs the first one, so a
// poisoned stream is distinguishable from a clean shutdown in both Stats
// and the process log.
func (e *tcpEndpoint) noteDecodeError(peer int, err error) {
	e.stats.recvErrs.Add(1)
	e.mu.Lock()
	first := e.firstErr == nil
	if first {
		e.firstErr = err
	}
	e.mu.Unlock()
	if first {
		log.Printf("transport: rank %d: decode error from peer %d: %v", e.rank, peer, err)
	}
}

func (e *tcpEndpoint) readLoop(peer int, p *tcpPeer) {
	defer e.wg.Done()
	// The frame scratch is grown by DecodeFrom only when a payload exceeds
	// it, so the steady state reads every frame into the same buffer.
	var frame []byte
	corruptRun := 0
	for {
		var m wire.Message
		var err error
		m, frame, err = wire.DecodeFrom(p.conn, frame)
		if errors.Is(err, wire.ErrFrameCorrupt) {
			// The checksum failed but the framing held: exactly one frame
			// was consumed, so the stream is still aligned. Drop the frame
			// — the sender's retry layer re-sends it — and keep reading.
			// A long run of consecutive corrupt frames means the link (or
			// peer) is systematically poisoned; give up on it then.
			e.stats.corrupt.Add(1)
			e.noteDecodeError(peer, err)
			p.lastRecv.Store(time.Now().UnixNano())
			if corruptRun++; corruptRun >= maxCorruptRun {
				e.peerDown(peer, p, fmt.Errorf("%d consecutive corrupt frames: %w", corruptRun, err), false)
				return
			}
			continue
		}
		if err != nil {
			select {
			case <-e.closed:
				return // local shutdown, not a peer failure
			default:
			}
			switch {
			case errors.Is(err, io.EOF) && p.sawGoodbye.Load():
				// FIN after a goodbye frame: an orderly departure.
				e.peerDown(peer, p, errors.New("peer closed"), true)
			case errors.Is(err, io.EOF):
				// FIN with no goodbye: the process died.
				e.peerDown(peer, p, errors.New("connection closed by peer"), false)
			case errors.Is(err, wire.ErrBadFrame):
				e.noteDecodeError(peer, err)
				e.peerDown(peer, p, fmt.Errorf("corrupted frame: %w", err), false)
			default:
				// Mid-frame EOF, reset, or read error — includes the
				// conn.Close a concurrent peerDown already performed, in
				// which case this is a no-op. A goodbye still marks the
				// departure orderly even if the teardown raced the read.
				e.peerDown(peer, p, fmt.Errorf("read: %w", err), p.sawGoodbye.Load())
			}
			return
		}
		corruptRun = 0
		p.lastRecv.Store(time.Now().UnixNano())
		if m.Tag == wire.TagHeartbeat {
			continue // liveness plumbing, never delivered
		}
		if m.Tag == wire.TagGoodbye {
			p.sawGoodbye.Store(true)
			continue // shutdown announcement; the EOF that follows is clean
		}
		m.From = int32(peer) // trust the mesh, not the frame
		select {
		case e.inbox <- m:
		case <-e.closed:
			return
		}
	}
}

// heartbeatLoop keeps idle connections carrying traffic and, when
// PeerTimeout is set, converts prolonged silence into a peer-down event.
func (e *tcpEndpoint) heartbeatLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.closed:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for r := 0; r < e.size; r++ {
			p := e.getPeer(r)
			if p == nil || e.peerErr(r) != nil {
				continue
			}
			if pt := e.opts.PeerTimeout; pt > 0 && now-p.lastRecv.Load() > int64(pt) {
				e.peerDown(r, p, fmt.Errorf("no traffic for %v: %w", pt, ErrTimeout), false)
				continue
			}
			if now-p.lastSend.Load() < int64(e.opts.HeartbeatInterval) {
				continue // connection is busy; no keepalive needed
			}
			hb := wire.Control(wire.TagHeartbeat)
			hb.From = int32(e.rank)
			p.wmu.Lock()
			err := wire.Encode(p.conn, hb)
			p.wmu.Unlock()
			if err != nil {
				select {
				case <-e.closed:
					return
				default:
				}
				e.peerDown(r, p, fmt.Errorf("heartbeat write: %w", err), p.sawGoodbye.Load())
				continue
			}
			p.lastSend.Store(now)
			e.stats.heartbeats.Add(1)
		}
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(to int, m wire.Message) error {
	if err := checkRank(to, e.size); err != nil {
		return err
	}
	if to == e.rank {
		// Loopback without touching the network.
		m.From = int32(e.rank)
		select {
		case e.inbox <- m:
			e.stats.record(m)
			return nil
		case <-e.closed:
			return ErrClosed
		}
	}
	if err := e.peerErr(to); err != nil {
		return err
	}
	peer := e.getPeer(to)
	if peer == nil {
		return fmt.Errorf("transport: no connection to rank %d", to)
	}
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	m.From = int32(e.rank)
	peer.wmu.Lock()
	err := wire.Encode(peer.conn, m)
	peer.wmu.Unlock()
	if err != nil {
		select {
		case <-e.closed:
			return ErrClosed
		default:
		}
		e.peerDown(to, peer, fmt.Errorf("write: %w", err), peer.sawGoodbye.Load())
		return e.peerErr(to)
	}
	peer.lastSend.Store(time.Now().UnixNano())
	e.stats.record(m)
	return nil
}

func (e *tcpEndpoint) Recv(from int, tag int32) (wire.Message, error) {
	return e.recv(from, tag, 0)
}

func (e *tcpEndpoint) RecvTimeout(from int, tag int32, d time.Duration) (wire.Message, error) {
	return e.recv(from, tag, d)
}

func (e *tcpEndpoint) recv(from int, tag int32, d time.Duration) (wire.Message, error) {
	if from != AnySource {
		if err := checkRank(from, e.size); err != nil {
			return wire.Message{}, err
		}
	}
	timeout, stop := deadlineChan(d)
	defer stop()
	for {
		if m, ok := e.buf.take(from, tag); ok {
			return m, nil
		}
		// Drain already-delivered messages before consulting closed/down
		// state: frames that arrived before a peer died (or before Close)
		// must still be matched. The reader pushes every decoded frame
		// into the inbox before it reports the failure, so this drain sees
		// everything the dead peer managed to send.
	drain:
		for {
			select {
			case m := <-e.inbox:
				if matches(m, from, tag) {
					return m, nil
				}
				e.buf.put(m)
			default:
				break drain
			}
		}
		select {
		case <-e.closed:
			return wire.Message{}, ErrClosed
		default:
		}
		if err := e.recvDownError(from); err != nil {
			return wire.Message{}, err
		}
		downCh := e.curDownCh()
		select {
		case <-e.closed:
			// Loop once more to drain racing deliveries, then report
			// ErrClosed via the check above.
		case <-downCh:
			// A peer just went down; re-evaluate whether this Recv can
			// still complete.
		case <-timeout:
			return wire.Message{}, fmt.Errorf("transport: recv from %d tag %d: %w", from, tag, ErrTimeout)
		case m := <-e.inbox:
			if matches(m, from, tag) {
				return m, nil
			}
			e.buf.put(m)
		}
	}
}

func (e *tcpEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *tcpEndpoint) teardown() {
	if e.ln != nil {
		e.ln.Close()
	}
	e.mu.Lock()
	peers := append([]*tcpPeer(nil), e.peers...)
	e.mu.Unlock()
	for _, p := range peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.sayGoodbye()
		close(e.closed)
		e.teardown()
	})
	e.wg.Wait()
	return nil
}

// sayGoodbye announces an orderly shutdown to every live peer so they can
// tell this departure from a crash. Best effort: a peer that is already
// gone, or a socket that fails mid-write, simply misses the announcement
// and errs on the side of reporting a crash — a failure, never a hang.
func (e *tcpEndpoint) sayGoodbye() {
	for r := 0; r < e.size; r++ {
		p := e.getPeer(r)
		if p == nil || e.peerErr(r) != nil {
			continue
		}
		bye := wire.Control(wire.TagGoodbye)
		bye.From = int32(e.rank)
		p.wmu.Lock()
		wire.Encode(p.conn, bye)
		p.wmu.Unlock()
	}
}
