package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"psrahgadmm/internal/vec"
)

const sampleLIBSVM = `+1 1:0.5 3:1.25 7:-2
-1 2:1 3:0.5
# a comment line

+1 7:3
`

func TestReadLIBSVM(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader(sampleLIBSVM), 0, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 3 {
		t.Fatalf("Rows = %d", d.Rows())
	}
	if d.Dim() != 7 {
		t.Fatalf("Dim = %d (max index 7 → 0-based 6 → dim 7)", d.Dim())
	}
	if d.Labels[0] != 1 || d.Labels[1] != -1 || d.Labels[2] != 1 {
		t.Fatalf("labels = %v", d.Labels)
	}
	cols, vals := d.X.Row(0)
	if len(cols) != 3 || cols[0] != 0 || cols[2] != 6 || vals[2] != -2 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
}

func TestReadLIBSVMExplicitDim(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("+1 2:1\n"), 10, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 10 {
		t.Fatalf("Dim = %d", d.Dim())
	}
	// Index exceeding explicit dim must error.
	if _, err := ReadLIBSVM(strings.NewReader("+1 11:1\n"), 10, "x"); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestReadLIBSVMLabelMapping(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("0 1:1\n2 1:1\n-3 1:1\n"), 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 1, -1}
	if !vec.Equal(d.Labels, want) {
		t.Fatalf("labels = %v, want %v", d.Labels, want)
	}
}

func TestReadLIBSVMUnsortedIndices(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("+1 5:2 1:1\n"), 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	cols, vals := d.X.Row(0)
	if cols[0] != 0 || vals[0] != 1 || cols[1] != 4 || vals[1] != 2 {
		t.Fatalf("row = %v %v", cols, vals)
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	for _, bad := range []string{
		"abc 1:1\n",
		"+1 1\n",
		"+1 x:1\n",
		"+1 1:y\n",
		"+1 0:1\n", // 0-based index invalid in LIBSVM
	} {
		if _, err := ReadLIBSVM(strings.NewReader(bad), 0, "x"); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	train, _, err := Generate(SynthConfig{
		Name: "rt", Dim: 50, TrainRows: 30, TestRows: 1, RowNNZ: 5,
		ZipfS: 1.3, SignalNNZ: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(&buf, train.Dim(), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != train.Rows() || back.NNZ() != train.NNZ() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d", back.Rows(), back.NNZ(), train.Rows(), train.NNZ())
	}
	if !vec.Equal(back.Labels, train.Labels) {
		t.Fatal("labels changed in round trip")
	}
	for r := 0; r < train.Rows(); r++ {
		gc, gv := back.X.Row(r)
		wc, wv := train.X.Row(r)
		if len(gc) != len(wc) {
			t.Fatalf("row %d nnz", r)
		}
		for k := range gc {
			if gc[k] != wc[k] || gv[k] != wv[k] {
				t.Fatalf("row %d entry %d: %d:%v vs %d:%v", r, k, gc[k], gv[k], wc[k], wv[k])
			}
		}
	}
}

func TestShard(t *testing.T) {
	train, _, err := Generate(SynthConfig{
		Name: "s", Dim: 40, TrainRows: 10, TestRows: 1, RowNNZ: 4,
		ZipfS: 1.3, SignalNNZ: 8, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := train.Shard(3)
	if len(shards) != 3 {
		t.Fatalf("len = %d", len(shards))
	}
	total, nnz := 0, 0
	for _, s := range shards {
		if err := s.Check(); err != nil {
			t.Fatal(err)
		}
		if s.Dim() != train.Dim() {
			t.Fatalf("shard dim %d", s.Dim())
		}
		total += s.Rows()
		nnz += s.NNZ()
	}
	if total != train.Rows() || nnz != train.NNZ() {
		t.Fatalf("shards lose rows/nnz: %d/%d", total, nnz)
	}
	// Sizes differ by at most 1.
	if shards[0].Rows()-shards[2].Rows() > 1 {
		t.Fatalf("unbalanced shards: %d vs %d", shards[0].Rows(), shards[2].Rows())
	}
}

func TestShardMoreThanRows(t *testing.T) {
	train, _, err := Generate(SynthConfig{
		Name: "s", Dim: 20, TrainRows: 2, TestRows: 1, RowNNZ: 3,
		ZipfS: 1.3, SignalNNZ: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := train.Shard(5)
	nonEmpty := 0
	for _, s := range shards {
		if s.Rows() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("nonEmpty = %d", nonEmpty)
	}
}

func TestAccuracy(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("+1 1:1\n-1 1:1\n+1 2:1\n"), 2, "a")
	if err != nil {
		t.Fatal(err)
	}
	// x = [1, -1]: row0 margin 1 (+1 ✓), row1 margin 1 (−1 ✗), row2 margin −1 (+1 ✗).
	acc := d.Accuracy([]float64{1, -1})
	if math.Abs(acc-1.0/3) > 1e-15 {
		t.Fatalf("Accuracy = %v", acc)
	}
	// Zero margin counts as wrong.
	if a := d.Accuracy([]float64{0, 0}); a != 0 {
		t.Fatalf("zero-margin accuracy = %v", a)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := News20Like(0.001, 42)
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() || !vec.Equal(a.Labels, b.Labels) {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateShapeMatchesConfig(t *testing.T) {
	cfg := SynthConfig{
		Name: "shape", Dim: 500, TrainRows: 200, TestRows: 50, RowNNZ: 10,
		ZipfS: 1.3, SignalNNZ: 30, NoiseFlip: 0.05, Seed: 9,
	}
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.Check(); err != nil {
		t.Fatal(err)
	}
	if err := test.Check(); err != nil {
		t.Fatal(err)
	}
	if train.Rows() != 200 || test.Rows() != 50 || train.Dim() != 500 {
		t.Fatalf("shape: %d %d %d", train.Rows(), test.Rows(), train.Dim())
	}
	meanNNZ := float64(train.NNZ()) / float64(train.Rows())
	if meanNNZ < 3 || meanNNZ > 25 {
		t.Fatalf("mean row nnz %v far from configured 10", meanNNZ)
	}
	// Zipf head: the most popular block of features should hold far more
	// mass than the tail block.
	counts := train.X.ColumnDensity(10)
	if counts[0] <= counts[9]*2 {
		t.Fatalf("no popularity skew: head %d tail %d", counts[0], counts[9])
	}
	// Label balance should not be degenerate.
	s := train.Summary()
	if s.PosFrac < 0.1 || s.PosFrac > 0.9 {
		t.Fatalf("degenerate label balance %v", s.PosFrac)
	}
}

func TestGenerateIsLearnable(t *testing.T) {
	// A planted linear model must be recoverable: train accuracy of the
	// true weights should be >= 1 - noise - slack.
	cfg := SynthConfig{
		Name: "learn", Dim: 300, TrainRows: 400, TestRows: 100, RowNNZ: 12,
		ZipfS: 1.3, SignalNNZ: 40, NoiseFlip: 0.02, Seed: 11,
	}
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = test
	// Re-derive w* by regenerating with the same seed (the generator uses
	// the first SignalNNZ features); instead check separability via a
	// simple perceptron pass, which succeeds only if structure exists.
	w := make([]float64, cfg.Dim)
	mistakes := 0
	for epoch := 0; epoch < 20; epoch++ {
		mistakes = 0
		for r := 0; r < train.Rows(); r++ {
			m := train.X.RowDot(r, w)
			if m*train.Labels[r] <= 0 {
				train.X.AddScaledRow(w, r, train.Labels[r])
				mistakes++
			}
		}
	}
	acc := train.Accuracy(w)
	if acc < 0.85 {
		t.Fatalf("perceptron accuracy %v — generated data has no linear structure", acc)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []SynthConfig{
		{Dim: 0, TrainRows: 1, TestRows: 1, RowNNZ: 1, ZipfS: 1.2, SignalNNZ: 1},
		{Dim: 10, TrainRows: 0, TestRows: 1, RowNNZ: 1, ZipfS: 1.2, SignalNNZ: 1},
		{Dim: 10, TrainRows: 1, TestRows: 1, RowNNZ: 11, ZipfS: 1.2, SignalNNZ: 1},
		{Dim: 10, TrainRows: 1, TestRows: 1, RowNNZ: 1, ZipfS: 1.0, SignalNNZ: 1},
		{Dim: 10, TrainRows: 1, TestRows: 1, RowNNZ: 1, ZipfS: 1.2, SignalNNZ: 0},
		{Dim: 10, TrainRows: 1, TestRows: 1, RowNNZ: 1, ZipfS: 1.2, SignalNNZ: 1, NoiseFlip: 0.7},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPaperPresets(t *testing.T) {
	presets := PaperPresets(1.0, 1)
	names := []string{"news20", "webspam", "url"}
	dims := []int{1355191, 16609143, 3231961}
	trains := []int{16000, 300000, 2000000}
	tests := []int{3996, 50000, 396130}
	for i, p := range presets {
		if p.Name != names[i] {
			t.Fatalf("preset %d name %s", i, p.Name)
		}
		if p.Dim != dims[i] || p.TrainRows != trains[i] || p.TestRows != tests[i] {
			t.Fatalf("preset %s: dim %d train %d test %d", p.Name, p.Dim, p.TrainRows, p.TestRows)
		}
	}
	// Scaled-down presets still validate.
	for _, p := range PaperPresets(0.001, 1) {
		if err := p.validate(); err != nil {
			t.Fatalf("scaled preset %s invalid: %v", p.Name, err)
		}
	}
}

func TestSummary(t *testing.T) {
	d, err := ReadLIBSVM(strings.NewReader("+1 1:1 2:1\n-1 1:1\n"), 4, "sum")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Summary()
	if s.Rows != 2 || s.Dim != 4 || s.NNZ != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Density-3.0/8) > 1e-15 || math.Abs(s.PosFrac-0.5) > 1e-15 {
		t.Fatalf("Summary = %+v", s)
	}
}
