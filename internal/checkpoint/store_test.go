package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, "rank-0.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	if err := s.Save([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("second")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Load()
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(data, []byte("second")) {
		t.Fatalf("got %q", data)
	}
	// No temp litter after successful saves.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "rank-0.ckpt" {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
}

func TestDirStoreCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	s, err := NewDirStore(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Path(); got != filepath.Join(dir, "checkpoint.bin") {
		t.Fatalf("default name path: %s", got)
	}
}

// TestDirStoreRejectsCorruptFile flips one bit of the committed snapshot
// file at every byte position in turn: each flip must surface as a typed
// ErrChecksum (the trailer protects itself too — a flip in the magic
// degrades to "legacy unverified file", which is why flips there must
// corrupt the CRC match instead... every position is exercised to prove no
// flip loads wrong bytes silently).
func TestDirStoreRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, "rank-0.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("snapshot payload with enough bytes to matter")
	if err := s.Save(payload); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(clean); pos++ {
		corrupt := append([]byte(nil), clean...)
		corrupt[pos] ^= 0x10
		if err := os.WriteFile(s.Path(), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		data, ok, err := s.Load()
		if err == nil && ok && bytes.Equal(data, payload) {
			t.Fatalf("flip at byte %d loaded the original payload without an error — impossible", pos)
		}
		if err == nil && ok && !bytes.Equal(data, payload) {
			// A flip inside the trailer magic demotes the file to "legacy,
			// unverified", returning payload+brokenTrailer — detectable by
			// the caller's decoder, but the common body/CRC flips must be
			// caught HERE, typed.
			if pos < len(clean)-sumTrailerLen || pos >= len(clean)-4 {
				t.Fatalf("flip at byte %d (outside trailer magic) loaded silently", pos)
			}
			continue
		}
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: error not typed ErrChecksum: %v", pos, err)
		}
	}
}

// TestDirStoreLoadsLegacyFile: a pre-trailer snapshot (raw blob, no magic)
// still loads byte-for-byte — the trailer is opt-in per file, not a format
// break.
func TestDirStoreLoadsLegacyFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, "old.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	legacy := []byte("written by a version that predates PSCKSUM1")
	if err := os.WriteFile(s.Path(), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Load()
	if err != nil || !ok || !bytes.Equal(data, legacy) {
		t.Fatalf("legacy load: ok=%v err=%v data=%q", ok, err, data)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok, _ := s.Load(); ok {
		t.Fatal("empty store reported data")
	}
	blob := []byte{1, 2, 3}
	if err := s.Save(blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 9 // caller mutation must not leak in
	data, ok, _ := s.Load()
	if !ok || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("got %v ok=%v", data, ok)
	}
	data[1] = 9 // nor out
	again, _, _ := s.Load()
	if !bytes.Equal(again, []byte{1, 2, 3}) {
		t.Fatalf("aliasing: %v", again)
	}
	if s.Saves() != 1 {
		t.Fatalf("saves = %d", s.Saves())
	}
}
