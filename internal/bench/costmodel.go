package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// placement controls where each member's c nonzeros sit relative to the
// block layout — the variable eqs. 11–16 analyze.
type placement string

const (
	placeUniform   placement = "uniform"    // spread evenly over all blocks (Ring's best case)
	placeOwnBlock  placement = "own-block"  // all nonzeros in the member's own block (PSR's scatter best case)
	placeOneBlock  placement = "one-block"  // every member's nonzeros in block 0 (Ring's worst case)
	placeOffBlocks placement = "off-blocks" // spread over all blocks except the member's own (PSR's scatter worst case)
)

func placements() []placement {
	return []placement{placeUniform, placeOwnBlock, placeOneBlock, placeOffBlocks}
}

// buildPlaced constructs N sparse vectors of dimension dim with exactly c
// nonzeros each, positioned per the placement.
func buildPlaced(p placement, n, dim, c int, seed int64) []*sparse.Vector {
	r := rand.New(rand.NewSource(seed))
	chunks := vec.Split(dim, n)
	out := make([]*sparse.Vector, n)
	for m := 0; m < n; m++ {
		positions := map[int32]float64{}
		pick := func(lo, hi int) {
			for len(positions) < c {
				// Rejection-free enough at our densities.
				idx := int32(lo + r.Intn(hi-lo))
				positions[idx] = 1 + r.Float64()
			}
		}
		switch p {
		case placeUniform:
			pick(0, dim)
		case placeOwnBlock:
			pick(chunks[m].Lo, chunks[m].Hi)
		case placeOneBlock:
			pick(chunks[0].Lo, chunks[0].Hi)
		case placeOffBlocks:
			for len(positions) < c {
				idx := int32(r.Intn(dim))
				if int(idx) >= chunks[m].Lo && int(idx) < chunks[m].Hi {
					continue
				}
				positions[idx] = 1 + r.Float64()
			}
		}
		out[m] = sparse.FromMap(dim, positions)
	}
	return out
}

// collectiveKind selects the allreduce under test.
type collectiveKind int

const (
	kindRing collectiveKind = iota
	kindPSR
	kindRHD
)

// runSparseCollective executes the named collective among n single-worker
// nodes and returns the virtual time and total payload bytes.
func runSparseCollective(kind collectiveKind, inputs []*sparse.Vector, cost simnet.CostModel) (secs float64, bytes int64, err error) {
	n := len(inputs)
	topo := simnet.Topology{Nodes: n, WorkersPerNode: 1}
	fab := transport.NewChanFabric(n)
	defer fab.Close()
	g := collective.WorldGroup(n)

	traces := make([]collective.Trace, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch kind {
			case kindRing:
				_, traces[i], errs[i] = collective.RingAllreduceSparse(fab.Endpoint(i), g, 1, inputs[i])
			case kindPSR:
				_, traces[i], errs[i] = collective.PSRAllreduceSparse(fab.Endpoint(i), g, 1, inputs[i])
			case kindRHD:
				_, traces[i], errs[i] = collective.RHDAllreduceSparse(fab.Endpoint(i), g, 1, inputs[i])
			}
		}(i)
	}
	wg.Wait()
	merged := collective.Trace{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		if traces[i].Steps > merged.Steps {
			merged.Steps = traces[i].Steps
		}
		merged.Events = append(merged.Events, traces[i].Events...)
	}
	for _, e := range merged.Events {
		bytes += int64(e.Bytes)
	}
	return cost.TraceTime(topo, merged), bytes, nil
}

// CostModel reproduces the §4.2 analysis (eqs. 11–16) empirically: the
// measured virtual time of Ring-Allreduce vs PSR-Allreduce on sparse
// vectors under the four extreme nonzero placements, alongside the
// theoretical envelopes. The claim under test: Ring's worst case grows
// ~N× worse than PSR's, while their best cases match.
func CostModel(opts Options) error {
	opts.fill()
	cost := simnet.Tianhe2Like()
	sizes := []int{4, 8, 16}
	if opts.Quick {
		sizes = []int{4, 8}
	}
	dim := 1 << 20
	c := 2048 // nonzeros per member

	theta := float64(wire.SparseEntryBytes) * cost.InterBeta
	tbl := metrics.NewTable(
		fmt.Sprintf("Cost model (eqs. 11–16) — measured allreduce time, dim=%d, c=%d nonzeros/member", dim, c),
		"N", "placement", "ring_time", "psr_time", "rhd_time", "ring/psr",
		"ring_bound_hi", "psr_bound_hi")
	for _, n := range sizes {
		for _, p := range placements() {
			inputs := buildPlaced(p, n, dim, c, opts.Seed)
			ringT, _, err := runSparseCollective(kindRing, inputs, cost)
			if err != nil {
				return fmt.Errorf("costmodel ring N=%d %s: %w", n, p, err)
			}
			psrT, _, err := runSparseCollective(kindPSR, inputs, cost)
			if err != nil {
				return fmt.Errorf("costmodel psr N=%d %s: %w", n, p, err)
			}
			rhdT, _, err := runSparseCollective(kindRHD, inputs, cost)
			if err != nil {
				return fmt.Errorf("costmodel rhd N=%d %s: %w", n, p, err)
			}
			// Paper bounds: eq. 13 upper ≈ 3cNθ(N−1)/2; eq. 16 upper = cNθ.
			ringHi := 1.5 * float64(c*n*(n-1)) * theta
			psrHi := float64(c*n) * theta
			tbl.AddRow(n, string(p),
				metrics.Seconds(ringT), metrics.Seconds(psrT), metrics.Seconds(rhdT),
				ringT/psrT,
				metrics.Seconds(ringHi), metrics.Seconds(psrHi))
		}
	}
	if err := emit(opts, tbl); err != nil {
		return err
	}
	fmt.Fprintln(opts.Out,
		"expectation: ring/psr ≈ 1 under `uniform`; ring/psr grows with N under `one-block` (Ring's pathological case, eq. 13 vs eq. 16).")
	return nil
}
