package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/wire"
)

// tcpWorld builds an n-rank TCP mesh with per-rank options.
func tcpWorld(t *testing.T, n int, opts func(rank int) TCPOptions) []Endpoint {
	t.Helper()
	ports := freePorts(t, n)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[i])
	}
	eps := make([]Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := TCPOptions{DialTimeout: 10 * time.Second}
			if opts != nil {
				o = opts(i)
			}
			eps[i], errs[i] = NewTCPEndpoint(i, addrs, o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestRecvTimeout(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			start := time.Now()
			_, err := eps[0].RecvTimeout(1, 7, 60*time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
			if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 3*time.Second {
				t.Fatalf("deadline not respected: %v", elapsed)
			}
			// A matching message beats the deadline.
			if err := eps[1].Send(0, wire.Control(7, 42)); err != nil {
				t.Fatal(err)
			}
			m, err := eps[0].RecvTimeout(1, 7, 5*time.Second)
			if err != nil || m.Ints[0] != 42 {
				t.Fatalf("RecvTimeout with message pending: %v %v", m, err)
			}
		})
	}
}

// TestTCPPeerKillMidCollective is the ISSUE's no-hang stress test: four
// ranks exchange all-to-all rounds over TCP, then one rank dies abruptly.
// Every surviving rank's blocked Recv on the victim must return a typed
// *PeerDownError well within the deadline — no hang, no ErrTimeout.
func TestTCPPeerKillMidCollective(t *testing.T) {
	const n, victim = 4, 2
	const liveRounds = 2
	eps := world(t, "tcp", n)

	exchange := func(r, round int) error {
		tag := int32(10 + round)
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			if err := eps[r].Send(p, wire.Control(tag, int64(r))); err != nil {
				return fmt.Errorf("rank %d round %d send to %d: %w", r, round, p, err)
			}
		}
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			if _, err := eps[r].RecvTimeout(p, tag, 10*time.Second); err != nil {
				return fmt.Errorf("rank %d round %d recv from %d: %w", r, round, p, err)
			}
		}
		return nil
	}

	died := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < liveRounds; round++ {
				if err := exchange(r, round); err != nil {
					errs[r] = err
					return
				}
			}
			<-died
			// The collective's next step: a Recv that only the dead victim
			// could satisfy.
			_, err := eps[r].RecvTimeout(victim, 99, 5*time.Second)
			errs[r] = err
		}(r)
	}
	// The victim participates in the live rounds, then dies without ever
	// sending on tag 99.
	for round := 0; round < liveRounds; round++ {
		if err := exchange(victim, round); err != nil {
			t.Fatalf("victim round %d: %v", round, err)
		}
	}
	eps[victim].Close()
	close(died)
	wg.Wait()

	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		var pd *PeerDownError
		if !errors.As(errs[r], &pd) {
			t.Fatalf("rank %d: err = %v, want *PeerDownError", r, errs[r])
		}
		if pd.Peer != victim {
			t.Fatalf("rank %d: PeerDownError.Peer = %d, want %d", r, pd.Peer, victim)
		}
	}
}

// TestTCPSendToDeadPeerFailsFast verifies the send side of failure
// detection: once the victim is observed down, Send returns PeerDownError
// instead of writing into a dead socket forever.
func TestTCPSendToDeadPeerFailsFast(t *testing.T) {
	eps := world(t, "tcp", 2)
	eps[1].Close()
	// First observe the death via a blocked Recv...
	_, err := eps[0].RecvTimeout(1, 5, 5*time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("recv err = %v, want *PeerDownError", err)
	}
	// ...after which sends fail fast with the same typed error.
	err = eps[0].Send(1, wire.Control(1, 1))
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("send err = %v, want *PeerDownError{Peer: 1}", err)
	}
}

// TestCloseDrainsDeliveredMessages pins the Endpoint.Recv shutdown
// guarantee: messages that reached the endpoint's inbox before Close are
// matched by later Recvs; only then does Recv report ErrClosed. Before the
// fix, inbox-resident messages raced a random select against ErrClosed
// while pending-buffered ones were always returned.
func TestCloseDrainsDeliveredMessages(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			if err := eps[0].Send(1, wire.Control(7, 1)); err != nil {
				t.Fatal(err)
			}
			if err := eps[0].Send(1, wire.Control(8, 2)); err != nil {
				t.Fatal(err)
			}
			// Wait until both messages are in rank 1's inbox (the TCP
			// reader delivers asynchronously).
			waitInboxLen(t, eps[1], 2)
			eps[1].Close()
			if m, err := eps[1].Recv(0, 7); err != nil || m.Ints[0] != 1 {
				t.Fatalf("inbox message lost after Close: %v %v", m, err)
			}
			if m, err := eps[1].Recv(0, 8); err != nil || m.Ints[0] != 2 {
				t.Fatalf("second inbox message lost after Close: %v %v", m, err)
			}
			if _, err := eps[1].Recv(0, 9); !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v, want ErrClosed once drained", err)
			}
		})
	}
}

func waitInboxLen(t *testing.T, ep Endpoint, want int) {
	t.Helper()
	var inbox chan wire.Message
	switch e := ep.(type) {
	case *chanEndpoint:
		inbox = e.inbox
	case *tcpEndpoint:
		inbox = e.inbox
	default:
		t.Fatalf("unknown endpoint type %T", ep)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(inbox) < want {
		if time.Now().After(deadline) {
			t.Fatalf("inbox never reached %d messages (have %d)", want, len(inbox))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPDialBudgetNotExceeded pins the dial-retry fix: the total wall time
// spent failing to reach an absent peer must stay near DialTimeout, not the
// ~2× overshoot the old code allowed by handing every attempt the full
// timeout.
func TestTCPDialBudgetNotExceeded(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[0]), // never listens
		fmt.Sprintf("127.0.0.1:%d", ports[1]),
	}
	const budget = 300 * time.Millisecond
	start := time.Now()
	_, err := NewTCPEndpoint(1, addrs, TCPOptions{DialTimeout: budget})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected dial failure: rank 0 never listened")
	}
	if elapsed > 4*budget {
		t.Fatalf("dial retries ran %v, far beyond the %v budget", elapsed, budget)
	}
}

// TestTCPDecodeErrorSurfaced injects garbage into an established mesh
// connection and verifies corruption is (a) counted in Stats.RecvErrors,
// distinguishing it from a clean shutdown, and (b) converted into a typed
// PeerDownError for receivers.
func TestTCPDecodeErrorSurfaced(t *testing.T) {
	eps := world(t, "tcp", 2)
	raw := eps[0].(*tcpEndpoint).peers[1].conn
	if _, err := raw.Write([]byte("XXXXXXXXXXXXXXXX")); err != nil { // 16 bytes of bad magic
		t.Fatal(err)
	}
	_, err := eps[1].RecvTimeout(0, 1, 5*time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("err = %v, want *PeerDownError", err)
	}
	if !errors.Is(err, wire.ErrBadFrame) {
		t.Fatalf("cause = %v, want wire.ErrBadFrame in chain", err)
	}
	if got := eps[1].Stats().RecvErrors; got != 1 {
		t.Fatalf("Stats.RecvErrors = %d, want 1", got)
	}
	if got := eps[0].Stats().RecvErrors; got != 0 {
		t.Fatalf("writer's Stats.RecvErrors = %d, want 0", got)
	}
}

// TestTCPPeerTimeoutDetectsSilentPeer simulates a silent partition: rank 0
// has heartbeats disabled and never sends, so rank 1's PeerTimeout must
// declare it down even though the connection never errors.
func TestTCPPeerTimeoutDetectsSilentPeer(t *testing.T) {
	eps := tcpWorld(t, 2, func(rank int) TCPOptions {
		o := TCPOptions{DialTimeout: 10 * time.Second}
		if rank == 0 {
			o.HeartbeatInterval = -1 // mute: simulates a one-way partition
		} else {
			o.HeartbeatInterval = 50 * time.Millisecond
			o.PeerTimeout = 250 * time.Millisecond
		}
		return o
	})
	start := time.Now()
	_, err := eps[1].RecvTimeout(0, 3, 10*time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("err = %v, want *PeerDownError", err)
	}
	if pd.Peer != 0 {
		t.Fatalf("Peer = %d, want 0", pd.Peer)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("cause = %v, want heartbeat ErrTimeout in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("silent peer took %v to detect", elapsed)
	}
}

// TestTCPHeartbeatsKeepIdleConnectionAlive is the false-positive guard:
// two mutually heartbeating ranks sit idle well past PeerTimeout, then
// exchange real traffic successfully.
func TestTCPHeartbeatsKeepIdleConnectionAlive(t *testing.T) {
	eps := tcpWorld(t, 2, func(rank int) TCPOptions {
		return TCPOptions{
			DialTimeout:       10 * time.Second,
			HeartbeatInterval: 50 * time.Millisecond,
			PeerTimeout:       300 * time.Millisecond,
		}
	})
	time.Sleep(800 * time.Millisecond) // idle >> PeerTimeout
	if err := eps[0].Send(1, wire.Control(4, 9)); err != nil {
		t.Fatalf("send after idle period: %v", err)
	}
	m, err := eps[1].RecvTimeout(0, 4, 5*time.Second)
	if err != nil || m.Ints[0] != 9 {
		t.Fatalf("recv after idle period: %v %v", m, err)
	}
	if hb := eps[0].Stats().HeartbeatsSent; hb == 0 {
		t.Fatal("no heartbeats recorded during idle period")
	}
	if sent := eps[0].Stats().MsgsSent; sent != 1 {
		t.Fatalf("heartbeats leaked into MsgsSent: %d", sent)
	}
}

// TestTCPAnySourceCrashVsGracefulClose pins the any-source failure policy:
// a rank that Closes cleanly (goodbye + FIN) must not abort another rank's
// Recv(AnySource) wait while live peers remain, but a rank that vanishes
// without a goodbye — a crash — must fail it promptly, because the crashed
// rank may be exactly the sender the wait needs.
func TestTCPAnySourceCrashVsGracefulClose(t *testing.T) {
	eps := world(t, "tcp", 3)

	// Rank 2 departs cleanly. Rank 1 is still alive, so rank 0's
	// AnySource wait must survive and match rank 1's message.
	eps[2].Close()
	done := make(chan error, 1)
	go func() {
		m, err := eps[0].Recv(AnySource, 21)
		if err == nil && m.Ints[0] != 7 {
			err = fmt.Errorf("wrong payload %v", m.Ints)
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let rank 2's goodbye+EOF land first
	if err := eps[1].Send(0, wire.Control(21, 7)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful close aborted AnySource wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AnySource recv hung")
	}
	// Rank 0 knows rank 2 left, and gracefully.
	var pd *PeerDownError
	if _, err := eps[0].RecvTimeout(2, 22, time.Second); !errors.As(err, &pd) || !pd.Graceful {
		t.Fatalf("targeted recv from departed rank = %v, want graceful *PeerDownError", err)
	}

	// Rank 1 crashes: its side of the socket breaks with no goodbye. Rank
	// 0's next AnySource wait must fail with a non-graceful PeerDownError
	// instead of blocking forever.
	eps[1].(*tcpEndpoint).peers[0].conn.Close()
	_, err := eps[0].Recv(AnySource, 23)
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("err = %v, want *PeerDownError{Peer: 1}", err)
	}
	if pd.Graceful {
		t.Fatal("crash misreported as graceful departure")
	}
}
