package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

func nan() float64         { return math.NaN() }
func isNaN(v float64) bool { return math.IsNaN(v) }
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// worker holds one rank's private ADMM state.
//
// The subproblem is solved in the shard's *active feature subspace*: for a
// coordinate j no sample of the shard touches, the x-subproblem objective
// reduces to y_j·x_j + (ρ/2)(x_j − z_j)², whose minimizer is closed-form —
// and since y_j starts at 0, induction over the dual update gives
// y_j ≡ 0 and x_j ≡ z_j there forever, hence w_j = ρ·z_j. Restricting
// TRON to the active columns is therefore *exact*, and it is what makes
// million-dimension problems feasible: per-worker dense work scales with
// the shard's support, not the global dimension. (LIBLINEAR-style sparse
// solvers make the same move.)
type worker struct {
	rank  int
	dim   int              // full model dimension
	shard *dataset.Dataset // original shard (full column space, for evaluation)

	// Active-subspace problem.
	active  []int32     // sorted original column ids the shard touches
	compact *sparse.CSR // shard remapped to columns 0..len(active)-1
	obj     *solver.LogisticProx
	xA, yA  []float64 // primal/dual over active columns
	zA      []float64 // consensus gathered onto active columns

	// Consensus view. zStore is what the hot paths actually read: in
	// replicated mode it shares zDense's backing (and activePos aliases
	// active), so the unified indirection reads the identical memory; in
	// sharded mode it is the compact concatenation of the rank's
	// subscribed blocks, zDense is nil, and no full-dimension iterate
	// exists on this rank.
	zDense    []float64      // full-dimension copy (replicated mode only)
	zStore    []float64      // consensus storage the hot paths index
	activePos []int32        // zStore position of each active column
	zSparse   *sparse.Vector // same iterate, sparse (w construction)

	// Sharded-state view (nil smap means replicated mode). subOff[i] is
	// the zStore offset of subscribed block Subs[rank][i]; the trailing
	// entry is len(zStore).
	smap   *shard.Map
	subOff []int

	// clock is the worker's virtual time; calTotal accumulates compute.
	clock    float64
	calTotal float64
	lastCal  float64
	tron     solver.Workspace

	// poisonNaN makes the next xUpdate emit a NaN iterate — the engine's
	// FaultPlan.NaNAtIteration hook, modeling a numerically blown-up local
	// solve. Consumed on use so a post-rollback replay of the iteration is
	// clean.
	poisonNaN bool

	// Steady-state reuse (see DESIGN.md "Memory model & buffer
	// ownership"): zScratch is applyW's z-update destination; zOwn
	// double-buffers the sparse consensus view derived in applyZDense's
	// nil-zSparse path. The double buffer keeps the vector the worker read
	// this round intact while the next one is built, and because zOwn is
	// worker-private it can never alias a strategy-shared z vector.
	zScratch []float64
	zOwn     [2]*sparse.Vector
	zOwnIdx  int
}

// newWorkers shards the dataset and initializes per-rank solver state
// (x=y=0, paper Algorithm 1 line 2). Consensus storage is NOT allocated
// here — the run's stateStore owns placement and calls initReplicated or
// initShard on every worker before the first iteration.
func newWorkers(cfg Config, train *dataset.Dataset) []*worker {
	n := cfg.Topo.Size()
	shards := train.Shard(n)
	dim := train.Dim()
	ws := make([]*worker, n)
	for i := range ws {
		w := &worker{rank: i, dim: dim, shard: shards[i]}
		w.buildActive(dim)
		w.obj = solver.NewLogisticProx(w.compact, w.shard.Labels, cfg.Rho, w.yA, w.zA)
		ws[i] = w
	}
	return ws
}

// initReplicated gives the worker the replicated consensus placement: the
// full-dimension dense z, with zStore sharing zDense's backing and
// activePos aliasing active so the unified indirection reads the identical
// memory the pre-sharding engine did. Called once by replicatedStore.
func (w *worker) initReplicated() {
	w.zDense = make([]float64, w.dim)
	w.zStore = w.zDense
	w.activePos = w.active
	w.zSparse = sparse.NewVector(w.dim, 0)
}

// initShard gives the worker the block-sharded consensus placement: no
// full-dimension iterate exists, zStore is the compact concatenation of
// the subscribed blocks, and activePos targets each active column's
// position in the compact store. Called once by shardedStore.
func (w *worker) initShard(m *shard.Map) {
	w.smap = m
	subs := m.Subs[w.rank]
	w.subOff = make([]int, len(subs)+1)
	total := 0
	for i, b := range subs {
		w.subOff[i] = total
		total += m.Part.Chunk(int(b)).Len()
	}
	w.subOff[len(subs)] = total
	w.zStore = make([]float64, total)
	w.zDense = nil
	w.zSparse = sparse.NewVector(w.dim, 0)
	w.activePos = make([]int32, len(w.active))
	si := 0
	for i, c := range w.active {
		b := m.Part.BlockOf(int(c))
		for int(subs[si]) != b {
			si++ // active sorted → blocks non-decreasing → cursor, not search
		}
		w.activePos[i] = int32(w.subOff[si] + int(c) - m.Part.Chunk(b).Lo)
	}
}

// subIdx returns the subscription position of block b, or -1 when the
// worker does not subscribe to it.
func (w *worker) subIdx(b int) int {
	subs := w.smap.Subs[w.rank]
	i := sort.Search(len(subs), func(k int) bool { return int(subs[k]) >= b })
	if i < len(subs) && int(subs[i]) == b {
		return i
	}
	return -1
}

// blockView returns the worker's stored view of subscribed block b (the
// no-copy zStore slice), or nil when unsubscribed.
func (w *worker) blockView(b int) []float64 {
	if i := w.subIdx(b); i >= 0 {
		return w.zStore[w.subOff[i]:w.subOff[i+1]]
	}
	return nil
}

// residentBytes is the rank's consensus-state footprint: the z storage the
// rank actually holds plus the active-subspace primal/dual/gather arrays.
func (w *worker) residentBytes() int64 {
	return 8 * int64(len(w.zStore)+len(w.xA)+len(w.yA)+len(w.zA))
}

// buildActive computes the shard's active column set and the remapped CSR.
func (w *worker) buildActive(dim int) {
	seen := make(map[int32]struct{})
	for _, c := range w.shard.X.ColIdx {
		seen[c] = struct{}{}
	}
	w.active = make([]int32, 0, len(seen))
	for c := range seen {
		w.active = append(w.active, c)
	}
	sort.Slice(w.active, func(a, b int) bool { return w.active[a] < w.active[b] })
	remap := make(map[int32]int32, len(w.active))
	for i, c := range w.active {
		remap[c] = int32(i)
	}
	src := w.shard.X
	w.compact = &sparse.CSR{
		NRows:  src.NRows,
		NCols:  len(w.active),
		RowPtr: src.RowPtr,
		ColIdx: make([]int32, len(src.ColIdx)),
		Val:    src.Val,
	}
	for k, c := range src.ColIdx {
		w.compact.ColIdx[k] = remap[c]
	}
	w.xA = make([]float64, len(w.active))
	w.yA = make([]float64, len(w.active))
	w.zA = make([]float64, len(w.active))
}

// xUpdate solves the local subproblem (eq. 4) with TRON over the active
// subspace and returns the deterministic virtual compute time, scaled by
// the straggler and jitter factors for (iter, rank).
func (w *worker) xUpdate(cfg Config, iter int) float64 {
	// Gather the consensus onto the active columns. In replicated mode
	// zStore/activePos alias zDense/active, so these are the identical
	// memory reads the pre-sharding engine performed.
	for i, p := range w.activePos {
		w.zA[i] = w.zStore[p]
	}
	var res solver.TronResult
	if len(w.active) > 0 {
		res = solver.TRONWorkspace(w.obj, w.xA, cfg.Tron, &w.tron)
	}
	if w.poisonNaN {
		w.poisonNaN = false
		if len(w.xA) > 0 {
			w.xA[0] = math.NaN()
		}
	}
	units := simnet.WorkUnits(res.CGIters, res.FunEvals, w.shard.NNZ(), len(w.active))
	t := cfg.Cost.ComputeTime(units)
	node := cfg.Topo.NodeOf(w.rank)
	t *= cfg.Stragglers.NodeFactor(iter, node)
	t *= cfg.Jitter.Factor(iter, w.rank)
	t += cfg.Stragglers.NodeDelay(iter, node)
	w.lastCal = t
	w.calTotal += t
	return t
}

// wSparse assembles w_i = y_i + ρ·x_i (eq. 8) as a sparse vector: the
// active columns carry y_A + ρ·x_A; off-active columns carry ρ·z_j on the
// consensus support (the closed-form x_j = z_j, y_j = 0 there).
func (w *worker) wSparse(rho float64) *sparse.Vector {
	return w.wSparseInto(sparse.NewVector(w.dim, len(w.active)+w.zSparse.NNZ()), rho)
}

// wSparseInto is wSparse writing into out (emptied first, backing arrays
// reused). The merge order and zero-skipping are identical to the
// allocating form, so reuse never perturbs the bit-exact histories.
func (w *worker) wSparseInto(out *sparse.Vector, rho float64) *sparse.Vector {
	out.Reset(w.dim)
	ai, zi := 0, 0
	for ai < len(w.active) || zi < w.zSparse.NNZ() {
		switch {
		case zi >= w.zSparse.NNZ() || (ai < len(w.active) && w.active[ai] < w.zSparse.Index[zi]):
			if v := w.yA[ai] + rho*w.xA[ai]; v != 0 {
				out.Index = append(out.Index, w.active[ai])
				out.Value = append(out.Value, v)
			}
			ai++
		case ai >= len(w.active) || w.zSparse.Index[zi] < w.active[ai]:
			if v := rho * w.zSparse.Value[zi]; v != 0 {
				out.Index = append(out.Index, w.zSparse.Index[zi])
				out.Value = append(out.Value, v)
			}
			zi++
		default: // same column: the active coordinates already include the z pull
			if v := w.yA[ai] + rho*w.xA[ai]; v != 0 {
				out.Index = append(out.Index, w.active[ai])
				out.Value = append(out.Value, v)
			}
			ai++
			zi++
		}
	}
	return out
}

// applyZDense consumes the new consensus iterate (the Leader-distributed,
// already-thresholded z) under the replicated placement and performs the
// dual update (eq. 6) over the active subspace; off-active duals are
// identically zero (see the worker doc comment). zSparse may be nil, in
// which case it is derived from zDense. The worker copies the dense form
// and retains the sparse one. Dispatch between placements is the
// stateStore's job (applyZShard is the sharded counterpart).
func (w *worker) applyZDense(cfg Config, zDense []float64, zSparse *sparse.Vector) {
	copy(w.zDense, zDense)
	if zSparse != nil {
		w.zSparse = zSparse
	} else {
		// Derive the sparse view into the worker-private double buffer:
		// never overwrite the vector w.zSparse currently points at — the
		// last round's wSparse merge may still be comparing against it, and
		// a strategy-shared vector must never be clobbered.
		nb := w.zOwn[w.zOwnIdx]
		if nb == nil {
			nb = new(sparse.Vector)
			w.zOwn[w.zOwnIdx] = nb
		}
		w.zOwnIdx = 1 - w.zOwnIdx
		w.zSparse = sparse.FromDenseInto(nb, zDense)
	}
	for i, c := range w.active {
		w.yA[i] += cfg.Rho * (w.xA[i] - zDense[c])
	}
}

// applyZShard is applyZDense's sharded counterpart, given a full-dimension
// z (the star/tree delivery paths): the store keeps only the subscribed blocks,
// the retained sparse view is restricted to the subscription, and the dual
// update runs through the compact positions.
func (w *worker) applyZShard(cfg Config, zDense []float64, zSparse *sparse.Vector) {
	subs := w.smap.Subs[w.rank]
	for i, b := range subs {
		c := w.smap.Part.Chunk(int(b))
		copy(w.zStore[w.subOff[i]:w.subOff[i+1]], zDense[c.Lo:c.Hi])
	}
	nb := w.zOwn[w.zOwnIdx]
	if nb == nil {
		nb = new(sparse.Vector)
		w.zOwn[w.zOwnIdx] = nb
	}
	w.zOwnIdx = 1 - w.zOwnIdx
	nb.Reset(w.dim)
	if zSparse != nil {
		for _, b := range subs {
			c := w.smap.Part.Chunk(int(b))
			from, to := zSparse.Range(c.Lo, c.Hi)
			nb.Index = append(nb.Index, zSparse.Index[from:to]...)
			nb.Value = append(nb.Value, zSparse.Value[from:to]...)
		}
	} else {
		for i, b := range subs {
			c := w.smap.Part.Chunk(int(b))
			for p := w.subOff[i]; p < w.subOff[i+1]; p++ {
				if v := w.zStore[p]; v != 0 {
					nb.Index = append(nb.Index, int32(c.Lo+p-w.subOff[i]))
					nb.Value = append(nb.Value, v)
				}
			}
		}
	}
	w.zSparse = nb
	for i, p := range w.activePos {
		w.yA[i] += cfg.Rho * (w.xA[i] - w.zStore[p])
	}
}

// applyWShard consumes the sharded collective's reduced W — sparse, global
// coordinates, restricted to the rank's subscription — and computes the
// subscribed blocks' z directly into the compact store, scaling block b by
// counts[b] (its live subscriber count). The scalar expression is
// ZUpdateL1's, so equal counts reproduce the replicated flat path's values
// bit for bit.
func (w *worker) applyWShard(cfg Config, bigW *sparse.Vector, counts []int) {
	vec.Zero(w.zStore)
	nb := w.zOwn[w.zOwnIdx]
	if nb == nil {
		nb = new(sparse.Vector)
		w.zOwn[w.zOwnIdx] = nb
	}
	w.zOwnIdx = 1 - w.zOwnIdx
	nb.Reset(w.dim)
	subs := w.smap.Subs[w.rank]
	si := 0
	for k, idx := range bigW.Index {
		b := w.smap.Part.BlockOf(int(idx))
		for si < len(subs) && int(subs[si]) < b {
			si++ // indices sorted → blocks non-decreasing
		}
		if si >= len(subs) || int(subs[si]) != b {
			continue // outside my subscription: not my state
		}
		n := counts[b]
		if n <= 0 {
			continue
		}
		v := vec.SoftThreshold(bigW.Value[k], cfg.Lambda) * (1 / (cfg.Rho * float64(n)))
		if v == 0 {
			continue
		}
		c := w.smap.Part.Chunk(b)
		w.zStore[w.subOff[si]+int(idx)-c.Lo] = v
		nb.Index = append(nb.Index, idx)
		nb.Value = append(nb.Value, v)
	}
	w.zSparse = nb
	for i, p := range w.activePos {
		w.yA[i] += cfg.Rho * (w.xA[i] - w.zStore[p])
	}
}

// applyW consumes a raw aggregated W summing `contributors` workers (the
// flat PSRA-ADMM and GC-ADMM paths, where every worker receives W itself):
// the z-update (eq. 10, corrected N·ρ scaling) followed by applyZDense.
// ZUpdateL1 overwrites every destination element, so the scratch carries
// no state between rounds.
func (w *worker) applyW(cfg Config, bigW []float64, contributors int) {
	if cap(w.zScratch) < len(bigW) {
		w.zScratch = make([]float64, len(bigW))
	}
	z := w.zScratch[:len(bigW)]
	solver.ZUpdateL1(z, bigW, cfg.Lambda, cfg.Rho, contributors)
	w.applyZDense(cfg, z, nil)
}

// rejoinReplicated re-admits a revived rank at an iteration boundary under
// the replicated placement. The consensus view warm-starts from the
// cluster's current iterate — the rejoiner's first x-update then solves
// against live consensus, not the stale z it died holding — while xA/yA
// keep their frozen pre-death values (any restart point is valid for ADMM,
// and the stale primal/dual pair is closer to the optimum than zero). The
// clock jump is supplied by the engine (the live maximum).
func (w *worker) rejoinReplicated(z []float64, clock float64) {
	copy(w.zDense, z)
	// Derive the sparse view through the same double buffer applyZDense
	// uses, so the vector the last pre-death round published is never
	// clobbered.
	nb := w.zOwn[w.zOwnIdx]
	if nb == nil {
		nb = new(sparse.Vector)
		w.zOwn[w.zOwnIdx] = nb
	}
	w.zOwnIdx = 1 - w.zOwnIdx
	w.zSparse = sparse.FromDenseInto(nb, z)
	if clock > w.clock {
		w.clock = clock
	}
}

// rejoinShard is rejoinReplicated's sharded counterpart: the cluster's
// iterate is restricted to the rank's subscription — the only state this
// rank ever holds.
func (w *worker) rejoinShard(z []float64, clock float64) {
	subs := w.smap.Subs[w.rank]
	for i, b := range subs {
		c := w.smap.Part.Chunk(int(b))
		copy(w.zStore[w.subOff[i]:w.subOff[i+1]], z[c.Lo:c.Hi])
	}
	nb := w.zOwn[w.zOwnIdx]
	if nb == nil {
		nb = new(sparse.Vector)
		w.zOwn[w.zOwnIdx] = nb
	}
	w.zOwnIdx = 1 - w.zOwnIdx
	nb.Reset(w.dim)
	for _, b := range subs {
		c := w.smap.Part.Chunk(int(b))
		for j := c.Lo; j < c.Hi; j++ {
			if v := z[j]; v != 0 {
				nb.Index = append(nb.Index, int32(j))
				nb.Value = append(nb.Value, v)
			}
		}
	}
	w.zSparse = nb
	if clock > w.clock {
		w.clock = clock
	}
}

// localLoss evaluates the shard's data-fit term Σ log(1+exp(−b·aᵀz)) at a
// full-dimension point.
func (w *worker) localLoss(z []float64) float64 {
	m := w.shard.X
	var loss float64
	for r := 0; r < m.NRows; r++ {
		loss += solver.LogLoss(w.shard.Labels[r] * m.RowDot(r, z))
	}
	return loss
}

// solverZUpdate is a thin alias keeping the consensus strategies readable.
func solverZUpdate(dst, w []float64, lambda, rho float64, n int) {
	solver.ZUpdateL1(dst, w, lambda, rho, n)
}

// countNonzero counts nonzero entries of a dense slice.
func countNonzero(x []float64) int { return vec.CountNonzero(x) }

// parallelXUpdates runs every listed worker's xUpdate concurrently (the
// updates are independent) and returns each worker's compute time indexed
// as the input. Results are deterministic: each worker's state is private
// and the caller consumes results in fixed order.
func parallelXUpdates(cfg Config, ws []*worker, iter int) []float64 {
	times := make([]float64, len(ws))
	par := runtime.GOMAXPROCS(0)
	if par > len(ws) {
		par = len(ws)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				times[i] = ws[i].xUpdate(cfg, iter)
			}
		}()
	}
	for i := range ws {
		work <- i
	}
	close(work)
	wg.Wait()
	return times
}

// meanZInto writes the average of the listed workers' consensus views —
// the iterate the engine evaluates the global objective at — into a
// caller-owned buffer. Under exact consensus all views are equal and the
// mean is that view; under SSP they may differ transiently and the mean is
// the natural cluster-wide summary.
func meanZInto(out []float64, ws []*worker) {
	for i := range out {
		out[i] = 0
	}
	for _, w := range ws {
		vec.AddInto(out, w.zDense)
	}
	vec.Scale(1/float64(len(ws)), out)
}

// assembleShardedZ reconstructs the full-dimension consensus summary from
// sharded workers: per block, the live subscribers' stored views are summed
// in rank order then averaged — the per-coordinate operation order of
// meanZInto, so a fully subscribed sharded world assembles the identical
// bits. Blocks with no live subscriber stay zero (no data couples to them,
// so their z is provably zero). ws must be indexed by world rank.
func assembleShardedZ(out []float64, ws []*worker, m *shard.Map, alive func(rank int) bool) {
	vec.Zero(out)
	for b := 0; b < m.Part.Blocks; b++ {
		c := m.Part.Chunk(b)
		dst := out[c.Lo:c.Hi]
		n := 0
		for _, r := range m.Subscribers(b) {
			if !alive(int(r)) {
				continue
			}
			vec.AddInto(dst, ws[r].blockView(b))
			n++
		}
		if n > 0 {
			vec.Scale(1/float64(n), dst)
		}
	}
}

// computePool is the run's persistent x-update executor: GOMAXPROCS
// worker goroutines fed by an unbuffered index channel, so dispatching a
// round's subproblem solves costs no goroutine spawns and no allocation.
// The job fields (cfg/iter/ws/times) are plain writes made visible by the
// channel sends; the pool is driven only from the single strategy
// goroutine, and wg.Wait orders the executors' writes before the caller
// reads times.
type computePool struct {
	cfg   Config
	iter  int
	ws    []*worker
	times []float64
	jobs  chan int
	wg    sync.WaitGroup
}

func newComputePool() *computePool {
	p := &computePool{jobs: make(chan int)}
	for i := runtime.GOMAXPROCS(0); i > 0; i-- {
		go p.serve()
	}
	return p
}

func (p *computePool) serve() {
	for i := range p.jobs {
		p.times[i] = p.ws[i].xUpdate(p.cfg, p.iter)
		p.wg.Done()
	}
}

// run executes every listed worker's xUpdate concurrently and returns the
// compute times indexed as the input. The returned slice is pool-owned
// scratch, valid only until the next run — callers that retain it copy.
func (p *computePool) run(cfg Config, ws []*worker, iter int) []float64 {
	if cap(p.times) < len(ws) {
		p.times = make([]float64, len(ws))
	}
	p.times = p.times[:len(ws)]
	if len(ws) == 0 {
		return p.times
	}
	p.cfg, p.iter, p.ws = cfg, iter, ws
	p.wg.Add(len(ws))
	for i := range ws {
		p.jobs <- i
	}
	p.wg.Wait()
	return p.times
}

func (p *computePool) close() { close(p.jobs) }

// globalObjective evaluates the paper's eq. 17 at point z over all shards:
// Σ_i f_i(z) + λ‖z‖₁.
func globalObjective(cfg Config, ws []*worker, z []float64) float64 {
	var loss float64
	for _, w := range ws {
		loss += w.localLoss(z)
	}
	return loss + cfg.Lambda*vec.Nrm1(z)
}
