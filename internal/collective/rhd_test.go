package collective

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

func TestRHDAllreduceCorrectness(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, dim := range []int{1, 7, 64, 301} {
			t.Run(fmt.Sprintf("n=%d/dim=%d", n, dim), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(n*77 + dim)))
				vs, want := sparseInputs(r, n, dim, 0.3)
				g := WorldGroup(n)
				var mu sync.Mutex
				results := make([]*sparse.Vector, n)
				runRanks(t, n, func(ep transport.Endpoint) error {
					out, tr, err := RHDAllreduceSparse(ep, g, 40, vs[ep.Rank()])
					if err != nil {
						return err
					}
					if n > 1 {
						wantSteps := 0
						for 1<<wantSteps < n {
							wantSteps++
						}
						if tr.Steps != 2*wantSteps {
							return fmt.Errorf("steps = %d, want %d", tr.Steps, 2*wantSteps)
						}
					}
					mu.Lock()
					results[ep.Rank()] = out
					mu.Unlock()
					return nil
				})
				for rk, got := range results {
					if err := got.Check(); err != nil {
						t.Fatalf("rank %d invariant: %v", rk, err)
					}
					if !vec.WithinTol(got.ToDense(), want, 1e-9) {
						t.Fatalf("rank %d RHD result wrong", rk)
					}
				}
			})
		}
	}
}

func TestRHDRejectsNonPowerOfTwo(t *testing.T) {
	runRanks(t, 3, func(ep transport.Endpoint) error {
		v := sparse.NewVector(8, 0)
		_, _, err := RHDAllreduceSparse(ep, WorldGroup(3), 1, v)
		if err == nil {
			return fmt.Errorf("rank %d: 3-member RHD accepted", ep.Rank())
		}
		return nil
	})
}

func TestRHDLogarithmicMessageCount(t *testing.T) {
	// Each member sends exactly 2·log₂N messages — the latency advantage
	// over the ring's 2(N−1).
	r := rand.New(rand.NewSource(80))
	n := 8
	vs, _ := sparseInputs(r, n, 200, 0.2)
	g := WorldGroup(n)
	var mu sync.Mutex
	counts := make([]int, n)
	runRanks(t, n, func(ep transport.Endpoint) error {
		_, tr, err := RHDAllreduceSparse(ep, g, 1, vs[ep.Rank()])
		if err != nil {
			return err
		}
		mu.Lock()
		counts[ep.Rank()] = len(tr.Events)
		mu.Unlock()
		return nil
	})
	for rk, c := range counts {
		if c != 6 { // 2·log₂8
			t.Fatalf("rank %d sent %d messages, want 6", rk, c)
		}
	}
}
