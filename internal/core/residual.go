package core

import (
	"math"

	"psrahgadmm/internal/vec"
)

// Standard consensus-ADMM diagnostics and the classic extensions built on
// them (Boyd et al. §3.3–3.4): primal/dual residual norms, residual-based
// early stopping, and residual-balancing adaptive penalty (the idea behind
// the AADMM line of work the paper cites as related).

// residuals computes the consensus residual norms at the end of an
// iteration:
//
//	‖r‖ = sqrt(Σᵢ ‖xᵢ − z‖²)      (primal: disagreement with consensus)
//	‖s‖ = ρ·√N·‖z − z_prev‖        (dual: consensus movement)
//
// Off-active coordinates satisfy xᵢⱼ = zⱼ exactly (see worker), so the
// primal sum only runs over each worker's active set — but z may have
// support outside a worker's active set, where xᵢⱼ = zⱼ(previous); those
// coordinates contribute (z_prev − z)ⱼ² per worker, amortized into the
// dual-style correction below. For the penalty controller the active-set
// approximation is standard and sufficient.
func residuals(ws []*worker, z, zPrev []float64, rho float64) (primal, dual float64) {
	var rsq float64
	for _, w := range ws {
		for i, c := range w.active {
			d := w.xA[i] - z[c]
			rsq += d * d
		}
	}
	primal = math.Sqrt(rsq)
	dual = rho * math.Sqrt(float64(len(ws))) * math.Sqrt(vec.DistSq(z, zPrev))
	return primal, dual
}

// adaptRho applies residual balancing: when the primal residual dominates
// the dual by more than mu, the penalty is too weak (consensus drifting) —
// multiply by tau; in the opposite regime divide. Returns the new ρ.
func adaptRho(rho, primal, dual, mu, tau float64) float64 {
	switch {
	case primal > mu*dual:
		return rho * tau
	case dual > mu*primal:
		return rho / tau
	default:
		return rho
	}
}

// setRho propagates a penalty change into every worker's subproblem.
// In the unscaled dual form the y iterates need no rescaling; only the
// objective's quadratic coupling changes.
func setRho(ws []*worker, rho float64) {
	for _, w := range ws {
		w.obj.Rho = rho
	}
}
