package collective

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// runRanks executes fn concurrently for every rank on a fresh chan fabric,
// failing the test on any returned error.
func runRanks(t *testing.T, n int, fn func(ep transport.Endpoint) error) {
	t.Helper()
	f := transport.NewChanFabric(n)
	defer f.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := fn(f.Endpoint(r)); err != nil {
				errCh <- fmt.Errorf("rank %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func denseInputs(r *rand.Rand, n, dim int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	want := make([]float64, dim)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = r.NormFloat64()
		}
		vec.AddInto(want, xs[i])
	}
	return xs, want
}

func sparseInputs(r *rand.Rand, n, dim int, density float64) ([]*sparse.Vector, []float64) {
	vs := make([]*sparse.Vector, n)
	want := make([]float64, dim)
	for i := range vs {
		vs[i] = sparse.NewVector(dim, 0)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				vs[i].Append(int32(j), r.NormFloat64())
			}
		}
		vec.AddInto(want, vs[i].ToDense())
	}
	return vs, want
}

type denseAllreduce func(transport.Endpoint, Group, int32, []float64) (Trace, error)

func denseAllreduces() map[string]denseAllreduce {
	return map[string]denseAllreduce{
		"ring": RingAllreduceDense,
		"psr":  PSRAllreduceDense,
		"star": StarAllreduceDense,
	}
}

func TestDenseAllreduceCorrectness(t *testing.T) {
	for name, ar := range denseAllreduces() {
		for _, n := range []int{1, 2, 3, 5, 8} {
			for _, dim := range []int{1, 3, 17, 256} {
				t.Run(fmt.Sprintf("%s/n=%d/dim=%d", name, n, dim), func(t *testing.T) {
					r := rand.New(rand.NewSource(int64(n*1000 + dim)))
					xs, want := denseInputs(r, n, dim)
					g := WorldGroup(n)
					var mu sync.Mutex
					results := make([][]float64, n)
					runRanks(t, n, func(ep transport.Endpoint) error {
						x := vec.Clone(xs[ep.Rank()])
						if _, err := ar(ep, g, 100, x); err != nil {
							return err
						}
						mu.Lock()
						results[ep.Rank()] = x
						mu.Unlock()
						return nil
					})
					for rk, got := range results {
						if !vec.WithinTol(got, want, 1e-9) {
							t.Fatalf("rank %d result wrong", rk)
						}
					}
				})
			}
		}
	}
}

func TestDenseAllreduceSubgroup(t *testing.T) {
	// Only ranks {1,3,4} of a 6-rank world participate; the rest idle.
	n := 6
	g := NewGroup(1, 3, 4)
	r := rand.New(rand.NewSource(7))
	xs, _ := denseInputs(r, n, 40)
	want := make([]float64, 40)
	for _, m := range g.Ranks {
		vec.AddInto(want, xs[m])
	}
	for name, ar := range denseAllreduces() {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			results := map[int][]float64{}
			runRanks(t, n, func(ep transport.Endpoint) error {
				if !g.Contains(ep.Rank()) {
					return nil
				}
				x := vec.Clone(xs[ep.Rank()])
				if _, err := ar(ep, g, 10, x); err != nil {
					return err
				}
				mu.Lock()
				results[ep.Rank()] = x
				mu.Unlock()
				return nil
			})
			for rk, got := range results {
				if !vec.WithinTol(got, want, 1e-9) {
					t.Fatalf("rank %d subgroup result wrong", rk)
				}
			}
		})
	}
}

func TestSparseAllreduceCorrectness(t *testing.T) {
	type sparseAR func(transport.Endpoint, Group, int32, *sparse.Vector) (*sparse.Vector, Trace, error)
	algs := map[string]sparseAR{
		"ring": RingAllreduceSparse,
		"psr":  PSRAllreduceSparse,
	}
	for name, ar := range algs {
		for _, n := range []int{1, 2, 4, 7} {
			for _, dim := range []int{5, 64, 301} {
				t.Run(fmt.Sprintf("%s/n=%d/dim=%d", name, n, dim), func(t *testing.T) {
					r := rand.New(rand.NewSource(int64(n*31 + dim)))
					vs, want := sparseInputs(r, n, dim, 0.25)
					g := WorldGroup(n)
					var mu sync.Mutex
					results := make([]*sparse.Vector, n)
					runRanks(t, n, func(ep transport.Endpoint) error {
						out, _, err := ar(ep, g, 50, vs[ep.Rank()])
						if err != nil {
							return err
						}
						mu.Lock()
						results[ep.Rank()] = out
						mu.Unlock()
						return nil
					})
					for rk, got := range results {
						if err := got.Check(); err != nil {
							t.Fatalf("rank %d invariant: %v", rk, err)
						}
						if !vec.WithinTol(got.ToDense(), want, 1e-9) {
							t.Fatalf("rank %d sparse result wrong", rk)
						}
					}
				})
			}
		}
	}
}

func TestSparseAllreduceAllRanksAgreeExactly(t *testing.T) {
	// Beyond tolerance: every rank must get the *identical* result, since
	// reduction order per block is deterministic up to float association
	// on the owner. Ring circulates one partial per block; PSR reduces at
	// a single owner; either way the finished block bytes are identical
	// on every rank.
	n, dim := 5, 97
	r := rand.New(rand.NewSource(99))
	vs, _ := sparseInputs(r, n, dim, 0.3)
	for name, ar := range map[string]func(transport.Endpoint, Group, int32, *sparse.Vector) (*sparse.Vector, Trace, error){
		"ring": RingAllreduceSparse, "psr": PSRAllreduceSparse,
	} {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			results := make([]*sparse.Vector, n)
			runRanks(t, n, func(ep transport.Endpoint) error {
				out, _, err := ar(ep, WorldGroup(n), 1, vs[ep.Rank()])
				if err != nil {
					return err
				}
				mu.Lock()
				results[ep.Rank()] = out
				mu.Unlock()
				return nil
			})
			ref := results[0].ToDense()
			for rk := 1; rk < n; rk++ {
				if !vec.Equal(results[rk].ToDense(), ref) {
					t.Fatalf("rank %d differs bitwise from rank 0", rk)
				}
			}
		})
	}
}

func TestReduceBroadcastDense(t *testing.T) {
	n, dim := 5, 33
	r := rand.New(rand.NewSource(3))
	xs, want := denseInputs(r, n, dim)
	root := 2
	var mu sync.Mutex
	results := make([][]float64, n)
	runRanks(t, n, func(ep transport.Endpoint) error {
		g := WorldGroup(n)
		x := vec.Clone(xs[ep.Rank()])
		if _, err := ReduceDense(ep, g, 10, root, x); err != nil {
			return err
		}
		if _, err := BroadcastDense(ep, g, 12, root, x); err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = x
		mu.Unlock()
		return nil
	})
	for rk, got := range results {
		if !vec.WithinTol(got, want, 1e-9) {
			t.Fatalf("rank %d reduce+broadcast wrong", rk)
		}
	}
}

func TestReduceBroadcastSparse(t *testing.T) {
	n, dim := 4, 50
	r := rand.New(rand.NewSource(4))
	vs, want := sparseInputs(r, n, dim, 0.3)
	root := 1
	var mu sync.Mutex
	results := make([]*sparse.Vector, n)
	runRanks(t, n, func(ep transport.Endpoint) error {
		g := WorldGroup(n)
		sum, _, err := ReduceSparse(ep, g, 20, root, vs[ep.Rank()])
		if err != nil {
			return err
		}
		if ep.Rank() != g.Ranks[root] && sum != nil {
			return fmt.Errorf("non-root got non-nil reduce result")
		}
		if ep.Rank() == g.Ranks[root] {
			if err := sum.Check(); err != nil {
				return err
			}
		} else {
			sum = sparse.NewVector(dim, 0) // placeholder, replaced by bcast
		}
		out, _, err := BroadcastSparse(ep, g, 22, root, sum)
		if err != nil {
			return err
		}
		mu.Lock()
		results[ep.Rank()] = out
		mu.Unlock()
		return nil
	})
	for rk, got := range results {
		if !vec.WithinTol(got.ToDense(), want, 1e-9) {
			t.Fatalf("rank %d sparse reduce+broadcast wrong", rk)
		}
	}
}

func TestBarrier(t *testing.T) {
	n := 6
	var counter sync.Map
	runRanks(t, n, func(ep transport.Endpoint) error {
		counter.Store(ep.Rank(), "before")
		if _, err := Barrier(ep, WorldGroup(n), 500); err != nil {
			return err
		}
		// After the barrier every rank must have stored "before".
		for r := 0; r < n; r++ {
			if _, ok := counter.Load(r); !ok {
				return fmt.Errorf("barrier released before rank %d arrived", r)
			}
		}
		return nil
	})
}

func TestGroupValidation(t *testing.T) {
	f := transport.NewChanFabric(3)
	defer f.Close()
	ep := f.Endpoint(0)
	x := []float64{1}
	if _, err := RingAllreduceDense(ep, NewGroup(), 1, x); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := RingAllreduceDense(ep, NewGroup(1, 2), 1, x); err == nil {
		t.Fatal("non-member rank accepted")
	}
	if _, err := RingAllreduceDense(ep, NewGroup(0, 0), 1, x); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := RingAllreduceDense(ep, NewGroup(0, 7), 1, x); err == nil {
		t.Fatal("out-of-world rank accepted")
	}
	if _, err := ReduceDense(ep, NewGroup(0), 1, 5, x); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestGroupIndexOf(t *testing.T) {
	g := NewGroup(4, 2, 9)
	if g.IndexOf(2) != 1 || g.IndexOf(9) != 2 || g.IndexOf(3) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if !g.Contains(4) || g.Contains(0) {
		t.Fatal("Contains wrong")
	}
}

func TestTraceMerge(t *testing.T) {
	a := Trace{Steps: 2, Events: []Event{{Step: 0, From: 0, To: 1, Bytes: 10}}}
	b := Trace{Steps: 3, Events: []Event{{Step: 1, From: 1, To: 0, Bytes: 20}}}
	a.Merge(b)
	if a.Steps != 5 {
		t.Fatalf("Steps = %d", a.Steps)
	}
	if a.Events[1].Step != 3 {
		t.Fatalf("merged step = %d", a.Events[1].Step)
	}
	if a.TotalBytes() != 30 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}

// TestSingleMemberGroupNoTraffic checks the degenerate group fast paths.
func TestSingleMemberGroupNoTraffic(t *testing.T) {
	runRanks(t, 1, func(ep transport.Endpoint) error {
		g := WorldGroup(1)
		x := []float64{1, 2}
		if tr, err := RingAllreduceDense(ep, g, 1, x); err != nil || len(tr.Events) != 0 {
			return fmt.Errorf("ring: %v %v", tr, err)
		}
		if tr, err := PSRAllreduceDense(ep, g, 3, x); err != nil || len(tr.Events) != 0 {
			return fmt.Errorf("psr: %v %v", tr, err)
		}
		v := sparse.FromDense(x)
		out, tr, err := PSRAllreduceSparse(ep, g, 5, v)
		if err != nil || len(tr.Events) != 0 || !vec.Equal(out.ToDense(), x) {
			return fmt.Errorf("psr sparse: %v", err)
		}
		if _, err := Barrier(ep, g, 7); err != nil {
			return err
		}
		return nil
	})
}
