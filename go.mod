module psrahgadmm

go 1.22
