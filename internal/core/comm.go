package core

import (
	"errors"
	"fmt"
	"sync"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// commKind selects which allreduce schedule a leader group runs.
type commKind int

const (
	commPSRSparse commKind = iota
	commRingSparse
)

// abortOnError closes the scratch fabric the first time a group member
// reports an error, so every other member's blocked Recv unblocks with
// ErrClosed instead of waiting forever on a rank that will never send.
// The run is aborting anyway — a dead scratch fabric is the price of the
// no-hang guarantee.
type abortOnError struct {
	fab  transport.Fabric
	once sync.Once
}

func (a *abortOnError) observe(err error) {
	if err != nil {
		a.once.Do(a.fab.Close)
	}
}

// firstGroupError picks the most informative error out of a group's
// results: a typed PeerDownError beats a generic failure, which beats the
// ErrClosed noise the abort itself produced on the other members.
func firstGroupError(what string, ranks []int, errs []error) error {
	var fallback error
	for i, err := range errs {
		if err == nil {
			continue
		}
		var pd *transport.PeerDownError
		if errors.As(err, &pd) {
			return fmt.Errorf("core: %s rank %d: %w", what, ranks[i], err)
		}
		if fallback == nil || errors.Is(fallback, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed) {
			fallback = fmt.Errorf("core: %s rank %d: %w", what, ranks[i], err)
		}
	}
	return fallback
}

// groupAllreduce runs the *actual* collective implementation among the
// given world ranks over the engine's scratch fabric — one goroutine per
// member — and returns the aggregated vector plus the merged trace. The
// engine's virtual clock is driven by real message sizes, not an analytic
// formula; this is what keeps the Figure 6/7 communication times honest
// about sparsity. Each invocation draws a fresh tag window, so a retried
// attempt can never match an aborted attempt's stale messages. Failure
// handling follows runGroup: abort-and-return in a non-elastic run,
// classify-and-retry (errPeersLost) in an elastic one.
func groupAllreduce(env *strategyEnv, ranks []int, kind commKind, inputs []*sparse.Vector) (*sparse.Vector, collective.Trace, error) {
	if len(ranks) != len(inputs) {
		panic("core: groupAllreduce ranks/inputs mismatch")
	}
	tagBase := env.nextTagBase()
	g := collective.NewGroup(ranks...)
	results := make([]*sparse.Vector, len(ranks))
	traces := make([]collective.Trace, len(ranks))
	err := runGroup(env, "group allreduce", ranks, func(i int, ep transport.Endpoint) error {
		var err error
		switch kind {
		case commPSRSparse:
			results[i], traces[i], err = collective.PSRAllreduceSparse(ep, g, tagBase, inputs[i])
		case commRingSparse:
			results[i], traces[i], err = collective.RingAllreduceSparse(ep, g, tagBase, inputs[i])
		default:
			err = fmt.Errorf("core: unknown comm kind %d", kind)
		}
		return err
	})
	if err != nil {
		return nil, collective.Trace{}, err
	}
	// All members hold the identical aggregate; return member 0's.
	return results[0], mergeTraces(traces), nil
}

// groupAllreduceDense runs the real dense Ring-Allreduce among the given
// world ranks — ADMMLib's exchange: the full parameter vector circulates
// regardless of sparsity. Inputs are summed in place into per-member
// copies; member 0's result and the merged trace are returned. Failure
// handling as in groupAllreduce.
func groupAllreduceDense(env *strategyEnv, ranks []int, inputs [][]float64) ([]float64, collective.Trace, error) {
	if len(ranks) != len(inputs) {
		panic("core: groupAllreduceDense ranks/inputs mismatch")
	}
	tagBase := env.nextTagBase()
	g := collective.NewGroup(ranks...)
	bufs := make([][]float64, len(ranks))
	traces := make([]collective.Trace, len(ranks))
	err := runGroup(env, "dense group allreduce", ranks, func(i int, ep transport.Endpoint) error {
		bufs[i] = append([]float64(nil), inputs[i]...)
		var err error
		traces[i], err = collective.RingAllreduceDense(ep, g, tagBase, bufs[i])
		return err
	})
	if err != nil {
		return nil, collective.Trace{}, err
	}
	return bufs[0], mergeTraces(traces), nil
}

// mergeTraces folds per-member traces into one (max steps, all events).
func mergeTraces(traces []collective.Trace) collective.Trace {
	merged := collective.Trace{}
	for i := range traces {
		if traces[i].Steps > merged.Steps {
			merged.Steps = traces[i].Steps
		}
		merged.Events = append(merged.Events, traces[i].Events...)
	}
	return merged
}

// traceBytes sums payload bytes across a merged trace.
func traceBytes(tr collective.Trace) int64 {
	var n int64
	for _, e := range tr.Events {
		n += int64(e.Bytes)
	}
	return n
}

// traceAlias lets sibling files name collective.Trace in struct literals
// without re-importing.
type traceAlias = collective.Trace

// denseFanTrace models a one-step dense fan over the node bus: reduce=true
// is the workers→leader fan-in, reduce=false the leader→workers fan-out.
// Every message has the same fixed size (dense vectors).
func denseFanTrace(workers []int, leader int, msgBytes int, reduce bool) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for _, r := range workers {
		if r == leader {
			continue
		}
		e := collective.Event{Step: 0, From: r, To: leader, Bytes: msgBytes}
		if !reduce {
			e.From, e.To = leader, r
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

// intraReduceTrace models the intra-node fan-in of workers' w vectors to
// their Leader: one step, wpn−1 messages over the bus. Message sizes use
// the senders' actual sparse sizes.
func intraReduceTrace(workers []int, leader int, nnzs []int) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for i, r := range workers {
		if r == leader {
			continue
		}
		tr.Events = append(tr.Events, collective.Event{
			Step: 0, From: r, To: leader,
			Bytes: 8 + wire.SparseEntryBytes*nnzs[i],
		})
	}
	return tr
}

// intraBcastTrace models the Leader broadcasting the aggregate back: one
// step, wpn−1 bus messages of the aggregate's size.
func intraBcastTrace(workers []int, leader, aggNNZ int) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for _, r := range workers {
		if r == leader {
			continue
		}
		tr.Events = append(tr.Events, collective.Event{
			Step: 0, From: leader, To: r,
			Bytes: 8 + wire.SparseEntryBytes*aggNNZ,
		})
	}
	return tr
}

// ggRequestBytes is the payload of a Leader→GG grouping request plus the
// reply (a handful of int64s). The GG round trip is charged at inter-node
// cost.
const ggRequestBytes = 4 + 8*2

// zFromW applies the L1 z-update (eq. 10, N·ρ scaling) directly on a
// sparse W: only entries with |W_j| > λ survive, which is why the
// downstream distribution ships z rather than W — same math, a fraction of
// the bytes.
func zFromW(w *sparse.Vector, lambda, rho float64, n int) *sparse.Vector {
	inv := 1 / (rho * float64(n))
	out := sparse.NewVector(w.Dim, 0)
	for k, idx := range w.Index {
		if v := vec.SoftThreshold(w.Value[k], lambda) * inv; v != 0 {
			out.Index = append(out.Index, idx)
			out.Value = append(out.Value, v)
		}
	}
	return out
}

// sumSparse adds vs in index order (deterministic association).
func sumSparse(dim int, vs []*sparse.Vector) *sparse.Vector {
	acc := sparse.NewAccumulator(dim)
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Sum()
}

// starGatherTrace models AD-ADMM's master-side exchange for one round:
// step 0, each fresh worker ships its primal and dual vectors (2·d dense
// doubles) to the master; step 1, the master returns the new z (d dense
// doubles) to each fresh worker. The master's NIC serializes both sides —
// the scaling bottleneck the paper attributes to AD-ADMM.
func starGatherTrace(master int, fresh []int, dim int) collective.Trace {
	up := 4 + wire.DenseEntryBytes*dim*2
	down := 4 + wire.DenseEntryBytes*dim
	tr := collective.Trace{Steps: 2}
	for _, r := range fresh {
		if r == master {
			continue
		}
		tr.Events = append(tr.Events,
			collective.Event{Step: 0, From: r, To: master, Bytes: up},
			collective.Event{Step: 1, From: master, To: r, Bytes: down},
		)
	}
	return tr
}
