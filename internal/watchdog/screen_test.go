package watchdog

import (
	"errors"
	"math"
	"testing"

	"psrahgadmm/internal/sparse"
)

func steadyDense(dim int, val float64) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = val
	}
	return x
}

func steadySparse(dim int, val float64) *sparse.Vector {
	v := sparse.NewVector(dim, 0)
	for j := 0; j < dim; j++ {
		v.Append(int32(j), val)
	}
	return v
}

// warmScreen feeds rank enough identical clean observations to mature its
// baseline.
func warmScreen(t *testing.T, s *Screen, rank, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if s.ObserveDense(rank, steadyDense(4, 1)) {
			t.Fatalf("warmup observation %d flagged", i)
		}
	}
}

func TestScreenNilIsNoOp(t *testing.T) {
	var s *Screen
	if s != NewScreen(ScreenConfig{}, 4) {
		t.Fatal("disabled config must yield a nil screen")
	}
	if s.ObserveDense(0, steadyDense(3, 1e30)) {
		t.Fatal("nil screen flagged")
	}
	if s.ObserveSparse(0, steadySparse(3, 1e30)) {
		t.Fatal("nil screen flagged sparse")
	}
	if s.Strikes(0) != 0 || s.StrikeLimit() != 0 {
		t.Fatal("nil screen reported strikes")
	}
	s.Reset(0) // must not panic
}

func TestScreenImmatureNeverFlags(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 2)
	// Warmup defaults to 3: the first three observations can be arbitrarily
	// wild without flagging — there is no baseline to judge against yet.
	for i, val := range []float64{1, 1e12, 3} {
		if s.ObserveDense(0, steadyDense(4, val)) {
			t.Fatalf("immature observation %d (val %v) flagged", i, val)
		}
	}
}

func TestScreenFlagsNormOutlier(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 2)
	warmScreen(t, s, 0, 4)
	if !s.ObserveDense(0, steadyDense(4, 100)) {
		t.Fatal("100× norm spike not flagged against a mature baseline")
	}
	if s.Strikes(0) != 1 {
		t.Fatalf("strikes = %d, want 1", s.Strikes(0))
	}
	// A clean observation resets the strike count: isolated spikes never
	// accumulate into a quarantine.
	if s.ObserveDense(0, steadyDense(4, 1)) {
		t.Fatal("clean observation flagged after a spike")
	}
	if s.Strikes(0) != 0 {
		t.Fatalf("strikes = %d after clean observation, want 0", s.Strikes(0))
	}
}

// TestScreenFlagsSignFlip is the load-bearing case: a sign-flip preserves
// ‖v‖ exactly, so only the Δ-norm term can catch it.
func TestScreenFlagsSignFlip(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 2)
	// On a steady signal the Δ-baseline decays geometrically toward zero
	// (each identical round contributes Δ = 0), so after a handful of
	// rounds the flip's Δ = 2‖v‖ towers over Factor× the baseline.
	warmScreen(t, s, 0, 9)
	if !s.ObserveDense(0, steadyDense(4, -1)) {
		t.Fatal("sign-flip (norm-preserving) not flagged — Δ-norm term broken")
	}
	// Same property on the sparse path.
	sp := NewScreen(ScreenConfig{Enabled: true}, 2)
	for i := 0; i < 9; i++ {
		if sp.ObserveSparse(1, steadySparse(4, 1)) {
			t.Fatalf("sparse warmup observation %d flagged", i)
		}
	}
	if !sp.ObserveSparse(1, steadySparse(4, -1)) {
		t.Fatal("sparse sign-flip not flagged")
	}
}

func TestScreenFlaggedObservationDoesNotPoisonBaseline(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 1)
	warmScreen(t, s, 0, 4)
	// A persistent attacker keeps getting flagged: its outliers never enter
	// the EWMA, so the baseline cannot be dragged up to cover it.
	for i := 0; i < 10; i++ {
		if !s.ObserveDense(0, steadyDense(4, 1000)) {
			t.Fatalf("attack observation %d slipped past the screen", i)
		}
	}
	if s.Strikes(0) != 10 {
		t.Fatalf("strikes = %d, want 10 (consecutive flags accumulate)", s.Strikes(0))
	}
	// And the honest signal still passes afterwards.
	if s.ObserveDense(0, steadyDense(4, 1)) {
		t.Fatal("honest observation flagged after sustained attack")
	}
}

func TestScreenNonFiniteAlwaysFlags(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 1)
	// Even during warmup: NaN/Inf would poison the EWMA.
	x := steadyDense(4, 1)
	x[2] = math.NaN()
	if !s.ObserveDense(0, x) {
		t.Fatal("NaN contribution not flagged during warmup")
	}
	x[2] = math.Inf(1)
	if !s.ObserveDense(0, x) {
		t.Fatal("Inf contribution not flagged")
	}
}

func TestScreenResetClearsBaseline(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 1)
	warmScreen(t, s, 0, 4)
	if !s.ObserveDense(0, steadyDense(4, 100)) {
		t.Fatal("spike not flagged pre-reset")
	}
	s.Reset(0)
	if s.Strikes(0) != 0 {
		t.Fatal("Reset did not clear strikes")
	}
	// Post-reset the rank is a different regime: the same magnitude that
	// flagged before is now an unmatched first observation and must pass.
	if s.ObserveDense(0, steadyDense(4, 100)) {
		t.Fatal("post-reset observation judged against the stale baseline")
	}
}

func TestScreenOutOfRangeRank(t *testing.T) {
	s := NewScreen(ScreenConfig{Enabled: true}, 2)
	if s.ObserveDense(-1, steadyDense(2, 1)) || s.ObserveDense(7, steadyDense(2, 1)) {
		t.Fatal("out-of-range rank flagged")
	}
	if s.Strikes(-1) != 0 || s.Strikes(7) != 0 {
		t.Fatal("out-of-range rank reported strikes")
	}
	s.Reset(-1)
	s.Reset(7) // must not panic
}

func TestScreenConfigValidate(t *testing.T) {
	for _, bad := range []ScreenConfig{
		{Enabled: true, Warmup: -1},
		{Enabled: true, Factor: -2},
		{Enabled: true, Factor: 0.5},
		{Enabled: true, Alpha: 1.5},
		{Enabled: true, Alpha: -0.1},
		{Enabled: true, Strikes: -3},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
	// A disabled config is never validated: garbage fields are inert.
	if err := (ScreenConfig{Factor: -2}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
	filled := ScreenConfig{Enabled: true}.Fill()
	if filled.Warmup != 3 || filled.Factor != 8 || filled.Alpha != 0.25 || filled.Strikes != 2 {
		t.Fatalf("Fill defaults wrong: %+v", filled)
	}
}

func TestQuorumErrorUnwrapsToSentinel(t *testing.T) {
	err := &QuorumError{Quarantined: 3, F: 1}
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatal("QuorumError must unwrap to ErrQuorumLost")
	}
	if errors.Is(err, ErrDiverged) {
		t.Fatal("QuorumError must not match the divergence sentinel")
	}
}
