// Robust reduce kernels: trimmed-mean and coordinate-median alternatives to
// the sum that every consensus reduce in this repo is built on. A robust
// statistic is not associative — median(median(a,b), c) is not median(a,b,c)
// — so unlike the sum it cannot ride a pairwise schedule (ring). It CAN ride
// any schedule that funnels all contributions for a coordinate range through
// one combine point before redistribution, which is exactly what
// PSRAllreduceSparse (block owners see every contribution to their block)
// and ShardAllreduceSparse (ditto, per shard block) already do. The robust
// forms below reuse those schedules verbatim — same messages, same tags,
// same traces — and swap only the owner-side combine.
//
// Scaling contract: the combine writes center × n, where center is the
// trimmed mean or median over the n contributors and n is the contributor
// count the UNCHANGED downstream consensus update divides by (group size for
// the replicated kernels, the per-block subscriber count for the sharded
// one). Dividing center × n by n recovers the robust center, so callers of
// the mean path and callers of the robust path run identical post-reduce
// code. With Kind == AggMean the Agg entry points delegate to the original
// kernels untouched — mean results stay bit-identical to pre-robust builds,
// because (Σ/n)×n round-trips through float division and Σ does not.
package collective

import (
	"fmt"
	"slices"

	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// Agg selects the aggregation statistic for a consensus reduce.
type Agg uint8

const (
	// AggMean is the plain sum-then-divide mean — today's behavior,
	// bit-identical to the pre-robust kernels.
	AggMean Agg = iota
	// AggTrimmedMean drops the TrimF smallest and TrimF largest
	// contributions per coordinate and averages the rest.
	AggTrimmedMean
	// AggMedian takes the per-coordinate median.
	AggMedian
)

// Aggregator names as they appear in configs and CLI flags.
const (
	AggMeanName        = "mean"
	AggTrimmedMeanName = "trimmed-mean"
	AggMedianName      = "coordinate-median"
)

// String returns the config-facing name.
func (a Agg) String() string {
	switch a {
	case AggTrimmedMean:
		return AggTrimmedMeanName
	case AggMedian:
		return AggMedianName
	default:
		return AggMeanName
	}
}

// ParseAgg maps a config name to an Agg. The empty string is the mean (the
// default aggregator).
func ParseAgg(name string) (Agg, error) {
	switch name {
	case "", AggMeanName:
		return AggMean, nil
	case AggTrimmedMeanName:
		return AggTrimmedMean, nil
	case AggMedianName:
		return AggMedian, nil
	}
	return AggMean, fmt.Errorf("collective: unknown aggregator %q (want %s, %s, or %s)",
		name, AggMeanName, AggTrimmedMeanName, AggMedianName)
}

// AggNames lists the valid aggregator names.
func AggNames() []string {
	return []string{AggMeanName, AggTrimmedMeanName, AggMedianName}
}

// AggSpec is a fully-resolved aggregator choice. The zero value is the
// mean.
type AggSpec struct {
	Kind Agg
	// TrimF is the per-side trim count for AggTrimmedMean: the f in
	// "tolerates f Byzantine contributors". Clamped at combine time to
	// (n-1)/2 so at least one value survives the trim.
	TrimF int
}

// Robust reports whether the spec selects a non-mean statistic (and thus
// the robust combine path).
func (s AggSpec) Robust() bool { return s.Kind != AggMean }

// robustCenter computes the spec's statistic over an ascending-sorted
// contributor slice. len(sorted) must be ≥ 1.
func robustCenter(sorted []float64, spec AggSpec) float64 {
	n := len(sorted)
	switch spec.Kind {
	case AggMedian:
		if n%2 == 1 {
			return sorted[n/2]
		}
		return 0.5 * (sorted[n/2-1] + sorted[n/2])
	case AggTrimmedMean:
		f := spec.TrimF
		if 2*f >= n {
			f = (n - 1) / 2
		}
		s := 0.0
		for _, x := range sorted[f : n-f] {
			s += x
		}
		return s / float64(n-2*f)
	default:
		// Mean over the sorted slice — NOT the bit path for AggMean (the
		// Agg entry points delegate to the sum kernels before reaching
		// here); kept so robustCenter is total.
		s := 0.0
		for _, x := range sorted {
			s += x
		}
		return s / float64(n)
	}
}

// robustScratch is the owner-side combine state for the robust kernels: a
// coordinate × contributor value matrix over the touched coordinates of one
// block. Like sparse.Accumulator it is reset-clean — rows are zeroed as
// they are extracted, and reset() scrubs rows left behind by an aborted
// call — so a warmed workspace combines without allocating.
type robustScratch struct {
	vals    []float64 // row-major: vals[coord*n + slot]
	seen    []bool
	touched []int32
	sortBuf []float64
	cursors []int // sharded per-member subscription cursors
	w, n    int   // current block width and contributor-slot count
}

// reset re-targets the scratch for a block of the given width with n
// contributor slots, scrubbing any rows a previous (possibly aborted) use
// left behind.
func (rb *robustScratch) reset(width, n int) {
	for _, i := range rb.touched {
		row := rb.vals[int(i)*rb.n : int(i)*rb.n+rb.n]
		for k := range row {
			row[k] = 0
		}
		rb.seen[i] = false
	}
	rb.touched = rb.touched[:0]
	if need := width * n; cap(rb.vals) < need {
		rb.vals = make([]float64, need)
	} else {
		rb.vals = rb.vals[:need]
		// Dimension change re-maps rows onto different flat positions, so
		// the scrub above may have missed stale cells; clear the lot.
		if width != rb.w || n != rb.n {
			for k := range rb.vals {
				rb.vals[k] = 0
			}
		}
	}
	if cap(rb.seen) < width {
		rb.seen = make([]bool, width)
	}
	rb.seen = rb.seen[:width]
	if cap(rb.sortBuf) < n {
		rb.sortBuf = make([]float64, n)
	}
	rb.w, rb.n = width, n
}

// addSlot scatters v's entries at storage positions [from, to), re-based by
// -base, into contributor column slot. Coordinates a contributor does not
// store are implicit zeros — already present in the zeroed matrix — so a
// sparse contributor's missing entries still count toward the statistic.
func (rb *robustScratch) addSlot(slot int, v *sparse.Vector, from, to int, base int32) {
	n := rb.n
	for k := from; k < to; k++ {
		i := v.Index[k] - base
		if int(i) >= rb.w || i < 0 {
			panic("collective: robust addSlot index out of block range")
		}
		if !rb.seen[i] {
			rb.seen[i] = true
			rb.touched = append(rb.touched, i)
		}
		rb.vals[int(i)*n+slot] = v.Value[k]
	}
}

// finishInto extracts center × n per touched coordinate into dst (allocated
// when nil), zeroing the matrix rows behind it, and returns dst. Untouched
// coordinates are zero for every contributor, so their center is exactly 0
// and they are skipped — matching the sum kernels' no-stored-zeros output.
func (rb *robustScratch) finishInto(dst *sparse.Vector, spec AggSpec) *sparse.Vector {
	slices.Sort(rb.touched)
	if dst == nil {
		dst = sparse.NewVector(rb.w, len(rb.touched))
	} else {
		dst.Reset(rb.w)
	}
	n := rb.n
	scale := float64(n)
	sb := rb.sortBuf[:n]
	for _, i := range rb.touched {
		row := rb.vals[int(i)*n : int(i)*n+n]
		copy(sb, row)
		for k := range row {
			row[k] = 0
		}
		rb.seen[i] = false
		slices.Sort(sb)
		if v := robustCenter(sb, spec) * scale; v != 0 {
			dst.Index = append(dst.Index, i)
			dst.Value = append(dst.Value, v)
		}
	}
	rb.touched = rb.touched[:0]
	return dst
}

// ensureCursors returns the zeroed p-wide cursor slice for the sharded
// combine's monotone subscription walks.
func (rb *robustScratch) ensureCursors(p int) []int {
	if cap(rb.cursors) < p {
		rb.cursors = make([]int, p)
	}
	rb.cursors = rb.cursors[:p]
	for i := range rb.cursors {
		rb.cursors[i] = 0
	}
	return rb.cursors
}

// PSRAllreduceSparseAgg is PSRAllreduceSparse with a pluggable aggregator.
// AggMean delegates to PSRAllreduceSparse itself — same code, bit-identical
// results. The robust kinds run the identical scatter/allgather schedule
// (same messages, tags, and trace shape) and replace only the owner-side
// block combine: each owner computes center × p over the p contributions to
// its block, so the caller's divide-by-p recovers the robust center.
func (ws *Workspace) PSRAllreduceSparseAgg(ep transport.Endpoint, g Group, tagBase int32, v, out *sparse.Vector, spec AggSpec) (Trace, error) {
	if !spec.Robust() {
		return ws.PSRAllreduceSparse(ep, g, tagBase, v, out)
	}
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if p == 1 {
		// center × 1 of a single contribution is the contribution.
		out.ReuseFrom(v)
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureSparse(p)
	ws.chunks = vec.SplitInto(ws.chunks, v.Dim, p)
	mine := ws.chunks[me]

	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		blk := v.SliceInto(ws.own[j], ws.chunks[j].Lo, ws.chunks[j].Hi)
		msg := wire.SparseMsg(tagBase, blk)
		tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(msg))
		if err := ws.send(ep, sync, g.Ranks[j], msg); err != nil {
			return tr, err
		}
	}
	arrivals := ws.arrS
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != mine.Hi-mine.Lo {
			return tr, fmt.Errorf("collective: psr sparse scatter dim %d, want %d", sv.Dim, mine.Hi-mine.Lo)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: psr sparse scatter unexpected sender %d", in.From)
		}
		arrivals[src] = sv
	}
	arrivals[me] = v.SliceInto(ws.own[me], mine.Lo, mine.Hi)
	// Robust combine in member-slot order (slot order is immaterial once
	// each coordinate's contributors are sorted, but determinism is free).
	ws.rb.reset(mine.Hi-mine.Lo, p)
	for s, a := range arrivals {
		if a != nil {
			ws.rb.addSlot(s, a, 0, a.NNZ(), 0)
		}
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}
	myBlock := ws.rb.finishInto(ws.myBlock, spec)
	ws.myBlock = myBlock

	msg := wire.SparseMsg(tagBase+1, myBlock)
	bytes := wire.PayloadBytes(msg)
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		tr.add(1, ep.Rank(), g.Ranks[j], bytes)
		if err := ws.send(ep, sync, g.Ranks[j], msg); err != nil {
			return tr, err
		}
	}
	blocks := ws.cur
	blocks[me] = myBlock
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me {
			return tr, fmt.Errorf("collective: psr sparse gather from unexpected rank %d", in.From)
		}
		if sv.Dim != ws.chunks[src].Hi-ws.chunks[src].Lo {
			return tr, fmt.Errorf("collective: psr sparse gather dim %d, want %d", sv.Dim, ws.chunks[src].Hi-ws.chunks[src].Lo)
		}
		blocks[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}
	for j, c := range ws.chunks {
		ws.offsets[j] = c.Lo
	}
	sparse.ConcatInto(out, v.Dim, ws.offsets, blocks)
	ws.events = tr.Events
	return tr, nil
}

// ShardAllreduceSparseAgg is ShardAllreduceSparse with a pluggable
// aggregator; AggMean delegates to the original. The robust kinds keep the
// pair schedule and replace each owned block's member-order sum with
// center × m_b, where m_b is block b's subscriber count under the plan — a
// static property (b ∈ Subs[i]), never a function of who happened to send
// nonzeros — so the sharded z-update's divide-by-subscribers recovers the
// robust center exactly as the replicated path's divide-by-p does.
func (ws *Workspace) ShardAllreduceSparseAgg(ep transport.Endpoint, g Group, tagBase int32, plan *shard.Plan, v, out *sparse.Vector, spec AggSpec) (Trace, error) {
	if !spec.Robust() {
		return ws.ShardAllreduceSparse(ep, g, tagBase, plan, v, out)
	}
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	if plan.Members() != p {
		return Trace{}, fmt.Errorf("collective: shard plan has %d members, group %d", plan.Members(), p)
	}
	part := plan.Part
	if v.Dim != part.Dim {
		return Trace{}, fmt.Errorf("collective: shard input dim %d, want %d", v.Dim, part.Dim)
	}
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if p == 1 {
		out.ReuseFrom(v)
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureSparse(p)
	owned := (part.Blocks + p - 1 - me) / p
	ws.ensureShard(p, owned)
	subsMe := plan.Subs[me]

	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		msg := ws.own[j]
		msg.Reset(part.Dim)
		send := false
		for _, b32 := range subsMe {
			b := int(b32)
			if plan.OwnerPos(b) != j {
				continue
			}
			send = true
			c := part.Chunk(b)
			from, to := v.Range(c.Lo, c.Hi)
			msg.Index = append(msg.Index, v.Index[from:to]...)
			msg.Value = append(msg.Value, v.Value[from:to]...)
		}
		if !send {
			continue
		}
		m := wire.SparseMsg(tagBase, msg)
		tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(m))
		if err := ws.send(ep, sync, g.Ranks[j], m); err != nil {
			return tr, err
		}
	}

	arrivals := ws.arrS
	expect := 0
	for i := 0; i < p; i++ {
		if i != me && planPairs(plan, i, me) {
			expect++
		}
	}
	for n := 0; n < expect; n++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != part.Dim {
			return tr, fmt.Errorf("collective: shard scatter dim %d, want %d", sv.Dim, part.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil || !planPairs(plan, src, me) {
			return tr, fmt.Errorf("collective: shard scatter unexpected sender %d", in.From)
		}
		arrivals[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}

	// Robust-combine each owned block over its subscribers. The cursors
	// advance monotonically with b (owned blocks ascend), giving each
	// member's "subscribed to b?" test amortized O(1).
	cursors := ws.rb.ensureCursors(p)
	for bi := 0; bi < owned; bi++ {
		b := me + bi*p
		c := part.Chunk(b)
		nb := 0
		for i := 0; i < p; i++ {
			subs := plan.Subs[i]
			for cursors[i] < len(subs) && int(subs[cursors[i]]) < b {
				cursors[i]++
			}
			if cursors[i] < len(subs) && int(subs[cursors[i]]) == b &&
				(i == me || arrivals[i] != nil) {
				nb++
			}
		}
		if nb == 0 {
			ws.shRed[bi] = emptyBlock(ws.shRed[bi], c.Len())
			continue
		}
		ws.rb.reset(c.Len(), nb)
		slot := 0
		for i := 0; i < p; i++ {
			subs := plan.Subs[i]
			if cursors[i] >= len(subs) || int(subs[cursors[i]]) != b {
				continue
			}
			src := v
			if i != me {
				src = arrivals[i]
				if src == nil {
					continue
				}
			}
			from, to := src.Range(c.Lo, c.Hi)
			ws.rb.addSlot(slot, src, from, to, int32(c.Lo))
			slot++
		}
		ws.shRed[bi] = ws.rb.finishInto(ws.shRed[bi], spec)
	}

	for i := 0; i < p; i++ {
		if i == me || !planPairs(plan, i, me) {
			continue
		}
		msg := ws.shOut[i]
		msg.Reset(part.Dim)
		for _, b32 := range plan.Subs[i] {
			b := int(b32)
			if plan.OwnerPos(b) != me {
				continue
			}
			c := part.Chunk(b)
			red := ws.shRed[(b-me)/p]
			for k, idx := range red.Index {
				msg.Index = append(msg.Index, idx+int32(c.Lo))
				msg.Value = append(msg.Value, red.Value[k])
			}
		}
		m := wire.SparseMsg(tagBase+1, msg)
		tr.add(1, ep.Rank(), g.Ranks[i], wire.PayloadBytes(m))
		if err := ws.send(ep, sync, g.Ranks[i], m); err != nil {
			return tr, err
		}
	}
	gathered := ws.shArr
	expect = 0
	for j := 0; j < p; j++ {
		if j != me && planPairs(plan, me, j) {
			expect++
		}
	}
	for n := 0; n < expect; n++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != part.Dim {
			return tr, fmt.Errorf("collective: shard gather dim %d, want %d", sv.Dim, part.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || gathered[src] != nil || !planPairs(plan, me, src) {
			return tr, fmt.Errorf("collective: shard gather unexpected sender %d", in.From)
		}
		gathered[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}

	out.Reset(part.Dim)
	for _, b32 := range subsMe {
		b := int(b32)
		c := part.Chunk(b)
		if j := plan.OwnerPos(b); j == me {
			red := ws.shRed[(b-me)/p]
			for k, idx := range red.Index {
				out.Index = append(out.Index, idx+int32(c.Lo))
				out.Value = append(out.Value, red.Value[k])
			}
		} else {
			src := gathered[j]
			from, to := src.Range(c.Lo, c.Hi)
			out.Index = append(out.Index, src.Index[from:to]...)
			out.Value = append(out.Value, src.Value[from:to]...)
		}
	}
	ws.events = tr.Events
	return tr, nil
}

// emptyBlock resets (or allocates) dst as an empty block of the given
// width.
func emptyBlock(dst *sparse.Vector, width int) *sparse.Vector {
	if dst == nil {
		return sparse.NewVector(width, 0)
	}
	dst.Reset(width)
	return dst
}

// CombineSparse robust-combines full-width sparse contributions at a single
// point — the star master's and forced-single-group tree root's combine,
// where every live contribution is already local. nil entries in srcs are
// skipped; n is the count of non-nil contributors and the output is
// center × n over their union support, written into out (allocated when
// nil) and returned. Only the robust kinds route through here — the mean
// path keeps its original accumulator sum.
func (ws *Workspace) CombineSparse(spec AggSpec, dim int, srcs []*sparse.Vector, out *sparse.Vector) *sparse.Vector {
	n := 0
	for _, s := range srcs {
		if s != nil {
			n++
		}
	}
	if n == 0 {
		return emptyBlock(out, dim)
	}
	ws.rb.reset(dim, n)
	slot := 0
	for _, s := range srcs {
		if s == nil {
			continue
		}
		if s.Dim != dim {
			panic("collective: CombineSparse dimension mismatch")
		}
		ws.rb.addSlot(slot, s, 0, s.NNZ(), 0)
		slot++
	}
	return ws.rb.finishInto(out, spec)
}

// CombineDense robust-combines equal-length dense contributions:
// dst[i] = center(srcs[·][i]) × len(srcs). Used by the WLG leader gather,
// which holds every member's dense w locally before contributing the group
// total upstream. sortBuf is caller-retained scratch, grown as needed and
// returned so a warmed caller combines without allocating. srcs must be
// non-empty and dst must not alias any src.
func CombineDense(spec AggSpec, dst []float64, srcs [][]float64, sortBuf []float64) []float64 {
	n := len(srcs)
	if n == 0 {
		panic("collective: CombineDense with no contributors")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("collective: CombineDense length mismatch")
		}
	}
	if cap(sortBuf) < n {
		sortBuf = make([]float64, n)
	}
	sb := sortBuf[:n]
	scale := float64(n)
	for i := range dst {
		for s, src := range srcs {
			sb[s] = src[i]
		}
		slices.Sort(sb)
		dst[i] = robustCenter(sb, spec) * scale
	}
	return sortBuf
}
