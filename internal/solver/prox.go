package solver

import "psrahgadmm/internal/vec"

// ZUpdateL1 computes the consensus z-update for g(z) = lambda·‖z‖₁ (paper
// eq. 10, with the N-worker penalty aggregated correctly):
//
//	z = argmin_z  λ‖z‖₁ + (Nρ/2)‖z‖² − zᵀW
//	  = SoftThreshold(W, λ) / (Nρ)
//
// where W = Σᵢ (yᵢ + ρ·xᵢ) over the n workers contributing to W. Note the
// paper's eq. (10) writes ρ/2·‖z‖²; summing eq. (5)'s penalty over i gives
// N·ρ/2, which is what we use (the paper silently absorbs N into ρ).
// dst may alias w.
func ZUpdateL1(dst, w []float64, lambda, rho float64, n int) {
	if n <= 0 {
		panic("solver: ZUpdateL1 requires n >= 1")
	}
	inv := 1 / (rho * float64(n))
	for i, wi := range w {
		dst[i] = vec.SoftThreshold(wi, lambda) * inv
	}
}

// ZUpdateL1At is the scalar form of ZUpdateL1 — one coordinate's z-update
// under an n-contributor penalty. The sharded engine applies it per block
// with that block's live subscriber count (general-form consensus: the
// quadratic penalty on a coordinate sums only over the ranks whose
// objective couples to it). The expression is identical to ZUpdateL1's
// loop body, so equal counts give bit-identical results.
func ZUpdateL1At(wi, lambda, rho float64, n int) float64 {
	if n <= 0 {
		panic("solver: ZUpdateL1At requires n >= 1")
	}
	return vec.SoftThreshold(wi, lambda) * (1 / (rho * float64(n)))
}

// ZUpdateL1Blocks is ZUpdateL1 with a per-block contributor count: block b
// covers dst[offs[b]:offs[b+1]] (offs has len(counts)+1 entries, the
// partition's cumulative block offsets) and is scaled by counts[b] — the
// block's live subscriber count in a sharded run. A block with zero
// subscribers has provably zero W (no rank's support reaches it) and its
// z stays zero. With every count equal to n this is bit-identical to
// ZUpdateL1(dst, w, lambda, rho, n). dst may alias w.
func ZUpdateL1Blocks(dst, w []float64, lambda, rho float64, offs []int, counts []int) {
	if len(offs) != len(counts)+1 {
		panic("solver: ZUpdateL1Blocks offsets/counts mismatch")
	}
	for b, n := range counts {
		lo, hi := offs[b], offs[b+1]
		if n <= 0 {
			for i := lo; i < hi; i++ {
				dst[i] = 0
			}
			continue
		}
		inv := 1 / (rho * float64(n))
		for i := lo; i < hi; i++ {
			dst[i] = vec.SoftThreshold(w[i], lambda) * inv
		}
	}
}

// ZUpdateL2 computes the consensus z-update for ridge regularization
// g(z) = (lambda/2)·‖z‖²:
//
//	z = argmin_z (λ/2)‖z‖² + (Nρ/2)‖z‖² − zᵀW = W / (λ + Nρ)
func ZUpdateL2(dst, w []float64, lambda, rho float64, n int) {
	if n <= 0 {
		panic("solver: ZUpdateL2 requires n >= 1")
	}
	vec.ScaleTo(dst, 1/(lambda+rho*float64(n)), w)
}

// DualUpdate performs yᵢ ← yᵢ + ρ(xᵢ − z) in place (paper eq. 6).
func DualUpdate(y, x, z []float64, rho float64) {
	for i := range y {
		y[i] += rho * (x[i] - z[i])
	}
}

// WLocal computes wᵢ = yᵢ + ρ·xᵢ (paper eq. 8), the quantity each worker
// contributes to the Allreduce.
func WLocal(dst, y, x []float64, rho float64) {
	for i := range dst {
		dst[i] = y[i] + rho*x[i]
	}
}
