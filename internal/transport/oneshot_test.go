package transport

import (
	"errors"
	"testing"
	"time"

	"psrahgadmm/internal/wire"
)

// TestFaultAnySourceReportsKillOnce pins the elastic-mode contract: an
// any-source wait surfaces a given kill exactly once per observing
// endpoint, then tolerates the dead rank while live peers remain, so a
// retried collective over the survivors is not re-failed by old news.
func TestFaultAnySourceReportsKillOnce(t *testing.T) {
	fab := NewFaultFabric(NewChanFabric(3), FaultPlan{Seed: 1})
	defer fab.Close()
	fab.Kill(2)

	ep := fab.Endpoint(0)
	_, err := ep.RecvTimeout(AnySource, 7, 200*time.Millisecond)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 2 {
		t.Fatalf("first wait must report the kill, got %v", err)
	}

	// Second wait: the kill is old news; a live peer's message wins.
	done := make(chan error, 1)
	go func() { done <- fab.Endpoint(1).Send(0, wire.Control(7, 42)) }()
	m, err := ep.Recv(AnySource, 7)
	if err != nil {
		t.Fatalf("second wait must tolerate the reported kill: %v", err)
	}
	if m.From != 1 || m.Ints[0] != 42 {
		t.Fatalf("wrong message: %+v", m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Targeted waits at the dead rank keep failing.
	if _, err := ep.RecvTimeout(2, 7, 50*time.Millisecond); !errors.As(err, &pd) {
		t.Fatalf("targeted recv from dead rank: %v", err)
	}

	// Once every remote rank is dead the wait fails regardless.
	fab.Kill(1)
	if _, err := ep.RecvTimeout(AnySource, 8, 200*time.Millisecond); !errors.As(err, &pd) {
		t.Fatalf("first report of second kill: %v", err)
	}
	if _, err := ep.RecvTimeout(AnySource, 8, 200*time.Millisecond); !errors.As(err, &pd) {
		t.Fatalf("fully departed world must fail: %v", err)
	}
}
