// Top-k sparsification with error feedback — the codec-axis option that
// changes WHICH coordinates travel, not just how they are encoded.
// Following Deng et al. (communication-efficient distributed learning via
// sparse and adaptive stochastic gradient), each rank keeps a residual of
// the coordinates it dropped (plus any quantization error) and adds it
// back into the next round's contribution before selection, so the mass a
// round drops is delayed, never lost — the property that keeps aggressive
// sparsification convergent. The selection budget k adapts per round from
// observed trace bytes against a target budget, clamped to [KMin, KMax].
//
// The codec itself (topkCodec) is stateless like every other Codec; the
// error-feedback residual and selection scratch live in a State, one per
// rank, owned by the runtime (the engine's strategy environment or a WLG
// worker loop) and carried across rounds. Ranks that die and rejoin Reset
// their State: a returning incarnation must not replay residual mass
// accumulated before it died (see DESIGN.md).
package exchange

import (
	"math"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/wire"
)

// Top-k codec kinds.
const (
	// TopK keeps only the k largest-magnitude coordinates of each
	// contribution, exact float64 values (12-byte entries).
	TopK Kind = "topk"
	// TopKQ8 composes top-k selection with the 8-bit quantizer: the k
	// survivors travel as 5-byte entries, and the quantization error joins
	// the dropped coordinates in the error-feedback residual.
	TopKQ8 Kind = "topk-q8"
)

// IsTopK reports whether kind is a top-k sparsifying codec (and therefore
// needs a per-rank State to be convergent).
func IsTopK(k Kind) bool { return k == TopK || k == TopKQ8 }

// topkCodec is the stateless face of the top-k family. Selection and
// error feedback need per-rank memory and run through State.Encode; the
// codec's own Encode* methods apply only the value rounding (quantization
// for topk-q8), so a State-less call site degrades to the exact/q8 codec
// instead of silently dropping coordinates.
type topkCodec struct{ bits int }

func (c topkCodec) Kind() Kind {
	if c.bits == 8 {
		return TopKQ8
	}
	return TopK
}
func (topkCodec) DenseExchange() bool { return false }
func (c topkCodec) EncodeSparse(v *sparse.Vector) {
	if c.bits > 0 {
		QuantizeSparseBits(v, c.bits)
	}
}
func (c topkCodec) EncodeDense(x []float64) {
	if c.bits > 0 {
		QuantizeDenseBits(x, c.bits)
	}
}
func (c topkCodec) WireTrace(tr collective.Trace) collective.Trace {
	if c.bits == 0 {
		return tr
	}
	return ScaleTraceBytes(tr, EntryBytes(c.bits), wire.SparseEntryBytes)
}
func (c topkCodec) WireTraceInto(dst []collective.Event, tr collective.Trace) collective.Trace {
	if c.bits == 0 {
		return tr
	}
	return ScaleTraceBytesInto(dst, tr, EntryBytes(c.bits), wire.SparseEntryBytes)
}
func (topkCodec) SparseMsgBytes(nnz int) int { return 8 + wire.SparseEntryBytes*nnz }
func (topkCodec) DenseMsgBytes(dim int) int  { return 4 + wire.DenseEntryBytes*dim }
func (topkCodec) ZMsgBytes(nnz int) int      { return 8 + wire.SparseEntryBytes*nnz }

// Default selection-budget bounds. The initial k is dim/DefaultKDivisor
// (clamped) — a deliberately conservative halving: the residual here
// carries ADMM state (w = y + ρx), not gradient increments, so a dropped
// coordinate's accumulated mass overshoots when it finally wins selection,
// and too-aggressive k makes the recursion oscillate instead of converge.
// Callers wanting harder compression pin k explicitly (core's CodecTopK)
// or set a byte budget (State.BudgetBytes) and let Adapt steer k from
// observed traffic.
const (
	DefaultKMin     = 16
	DefaultKDivisor = 2
)

// DefaultDecay is the residual damping factor applied when State.Decay is
// unset; NoDecay (exactly 1) keeps the classical undamped accumulator.
const (
	DefaultDecay = 0.5
	NoDecay      = 1.0
)

// State is one rank's top-k error-feedback memory: the residual of
// dropped coordinates (and quantization error), the merge/selection
// scratch, and the adaptive selection budget. All scratch is State-owned
// and reused, so a warmed Encode performs no allocations. A State is NOT
// safe for concurrent use; the runtimes keep one per rank.
type State struct {
	// K is the current selection budget in coordinates. Zero means
	// "derive from the first encoded vector's dimension".
	K int
	// KMin and KMax clamp both the initial k and every adaptation step.
	// Zero values take DefaultKMin and the vector dimension respectively.
	KMin, KMax int
	// BudgetBytes is the target for observed per-round trace bytes; Adapt
	// steers k toward it multiplicatively. Zero disables adaptation and
	// keeps k fixed.
	BudgetBytes int64
	// DisableErrorFeedback drops the residual instead of carrying it —
	// the ablation knob. Convergence degrades measurably without the
	// accumulator (see the acceptance test in internal/core); never set
	// it in production runs.
	DisableErrorFeedback bool
	// Decay scales the residual each round (0 takes DefaultDecay; set
	// NoDecay for the undamped accumulator). The exchanged vector is ADMM
	// state (w = y + ρx), not a gradient increment, so when a starved
	// coordinate finally wins selection its transmitted value overshoots
	// by everything the residual accumulated; geometric damping bounds
	// that overshoot at w·decay/(1−decay) while still boosting dropped
	// coordinates' selection priority round over round.
	Decay float64

	// AgeScoring weights selection by residual age: a coordinate that has
	// waited a rounds in the residual is scored |v|·(1+min(a, ageBoostCap))
	// instead of |v|, so long-starved mass wins selection before damping
	// erodes it. With an empty residual (round one, or right after Reset)
	// every age is zero and selection is identical to plain magnitude —
	// the knob changes nothing until coordinates actually starve.
	AgeScoring bool

	bits     int
	residual *sparse.Vector
	merged   *sparse.Vector
	next     *sparse.Vector
	dense    *sparse.Vector // EncodeDense's sparsify scratch
	sel      []float64

	// Age-scoring state: ageRes[k] is the age (rounds waited) of the
	// residual's k-th entry; ageMrg and scores are merged-aligned scratch.
	ageRes  []float64
	ageMrg  []float64
	ageNext []float64
	scores  []float64
}

// NewState returns the per-rank error-feedback state for a top-k codec
// kind, or nil for any other kind — callers gate stateful encoding on the
// nil check. budgetBytes of zero keeps k fixed at its initial value.
func NewState(kind Kind, budgetBytes int64) *State {
	if !IsTopK(kind) {
		return nil
	}
	bits := 0
	if kind == TopKQ8 {
		bits = 8
	}
	return &State{
		BudgetBytes: budgetBytes,
		bits:        bits,
		residual:    new(sparse.Vector),
		merged:      new(sparse.Vector),
		next:        new(sparse.Vector),
		dense:       new(sparse.Vector),
	}
}

// Residual exposes a read-only view of the carried residual (tests and
// diagnostics); callers must not mutate it.
func (s *State) Residual() *sparse.Vector { return s.residual }

// Reset clears the error-feedback residual and restores the initial k.
// The elastic-rejoin hook: a returning incarnation warm-starts from the
// authoritative z, and residual mass accumulated by its previous
// incarnation belongs to contributions that were already aggregated (or
// lost with the death) — replaying it would inject stale updates.
func (s *State) Reset() {
	s.residual.Reset(s.residual.Dim)
	s.ageRes = s.ageRes[:0]
	s.K = 0
}

// WireBytes is the wire payload of one encoded contribution with nnz
// entries under this state's value precision — the per-rank byte
// observation the WLG runtime feeds back into Adapt.
func (s *State) WireBytes(nnz int) int64 {
	entry := wire.SparseEntryBytes
	if s.bits > 0 {
		entry = EntryBytes(s.bits)
	}
	return int64(8 + entry*nnz)
}

// Adapt steers k toward BudgetBytes given the bytes observed since the
// last call (one round's traffic). The update is multiplicative with
// halving smoothing, in integer arithmetic, so identical observations on
// every rank keep k bit-identical across the run. No-op without a budget
// or before the first Encode.
func (s *State) Adapt(observedBytes int64) {
	if s.BudgetBytes <= 0 || observedBytes <= 0 || s.K <= 0 {
		return
	}
	target := int64(s.K) * s.BudgetBytes / observedBytes
	if target > int64(s.KMax) {
		target = int64(s.KMax)
	}
	s.K = clampInt((s.K+int(target)+1)/2, s.KMin, s.KMax)
}

// Encode applies error-feedback top-k selection to v in place: merge the
// carried residual into the contribution, keep the k largest-magnitude
// coordinates (deterministic tie-break on lower index), quantize the
// survivors when the kind composes with q8, and carry everything the wire
// loses — dropped coordinates and quantization error alike — into the
// next round's residual. With DisableErrorFeedback the residual is
// neither merged nor updated (pure lossy truncation).
func (s *State) Encode(v *sparse.Vector) {
	s.ensureK(v.Dim)
	k := clampInt(s.K, s.KMin, s.KMax)

	if s.DisableErrorFeedback {
		s.selectInPlace(v, k)
		if s.bits > 0 {
			QuantizeSparseBits(v, s.bits)
		}
		return
	}

	if s.residual.Dim != v.Dim {
		// First round, or an elastic regroup changed the dimension: start
		// the residual empty at the new dimension.
		s.residual.Reset(v.Dim)
		s.ageRes = s.ageRes[:0]
	}
	src := sparse.MergeInto(s.merged, v, s.residual)
	s.merged = src
	if s.AgeScoring {
		s.ageMrg = mergeAges(s.ageMrg[:0], src, s.residual, s.ageRes)
	}
	if src.NNZ() > k {
		if s.AgeScoring {
			theta, ties := s.thresholdScored(src, k)
			rebuildScored(v, src, s.scores, theta, ties)
		} else {
			theta, ties := s.threshold(src, k)
			rebuild(v, src, theta, ties)
		}
	} else {
		v.ReuseFrom(src)
	}
	if s.bits > 0 {
		QuantizeSparseBits(v, s.bits)
	}
	// residual' = decay·((v + residual) − encoded): dropped coordinates
	// keep their merged value, kept coordinates keep their quantization
	// error, both damped (see Decay).
	s.next = subInto(s.next, src, v, s.effDecay())
	if s.AgeScoring {
		// Freshly transmitted coordinates restart at age 0 (only their
		// quantization error remains); everything still waiting ages by one.
		s.ageNext = nextAges(s.ageNext[:0], s.next, v, src, s.ageMrg)
		s.ageRes, s.ageNext = s.ageNext, s.ageRes
	}
	s.residual, s.next = s.next, s.residual
}

// mergeAges builds the merged-aligned age vector: entries inherited from
// the residual keep their age, fresh contribution entries start at zero.
// merged and residual are index-sorted; resAges is residual-aligned.
func mergeAges(dst []float64, merged, residual *sparse.Vector, resAges []float64) []float64 {
	j := 0
	for _, idx := range merged.Index {
		for j < len(residual.Index) && residual.Index[j] < idx {
			j++
		}
		if j < len(residual.Index) && residual.Index[j] == idx {
			dst = append(dst, resAges[j])
			j++
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// nextAges builds the next residual's age vector: an entry whose
// coordinate was just transmitted (present in sent) carries quantization
// error only and restarts at age 0; a dropped coordinate ages by one. next
// and sent have supports within src's; srcAges is src-aligned.
func nextAges(dst []float64, next, sent, src *sparse.Vector, srcAges []float64) []float64 {
	j, k := 0, 0
	for _, idx := range next.Index {
		for k < len(sent.Index) && sent.Index[k] < idx {
			k++
		}
		if k < len(sent.Index) && sent.Index[k] == idx {
			dst = append(dst, 0)
			continue
		}
		for j < len(src.Index) && src.Index[j] < idx {
			j++
		}
		age := 0.0
		if j < len(src.Index) && src.Index[j] == idx {
			age = srcAges[j]
		}
		dst = append(dst, age+1)
	}
	return dst
}

// ageBoostCap bounds the age multiplier at (1+cap)×. Unbounded growth
// makes small-k selection degenerate into round-robin by age — every
// coordinate with residual mass eventually outranks the genuinely large
// ones and convergence stalls. The cap lets age break starvation (a
// damped residual plateaus at v·decay/(1−decay), so a bounded boost is
// enough to lift it past the selection threshold) while coordinates more
// than (1+cap)× louder than the starved mass keep their slots.
const ageBoostCap = 4

// thresholdScored is threshold over age-weighted scores
// |v|·(1+min(age, ageBoostCap)) instead of raw magnitudes. The
// src-aligned scores survive in s.scores for rebuildScored (s.sel is
// quickselect scratch and gets reordered).
func (s *State) thresholdScored(src *sparse.Vector, k int) (theta float64, ties int) {
	scores := s.scores[:0]
	for i, val := range src.Value {
		scores = append(scores, math.Abs(val)*(1+math.Min(s.ageMrg[i], ageBoostCap)))
	}
	s.scores = scores
	sel := append(s.sel[:0], scores...)
	s.sel = sel
	theta = selectKthLargest(sel, k)
	gt := 0
	for _, sc := range scores {
		if sc > theta {
			gt++
		}
	}
	return theta, k - gt
}

// rebuildScored is rebuild with the survival test on src-aligned scores
// instead of entry magnitudes.
func rebuildScored(dst, src *sparse.Vector, scores []float64, theta float64, ties int) {
	dst.Reset(src.Dim)
	for i, idx := range src.Index {
		switch {
		case scores[i] > theta:
		case scores[i] == theta && ties > 0:
			ties--
		default:
			continue
		}
		dst.Index = append(dst.Index, idx)
		dst.Value = append(dst.Value, src.Value[i])
	}
}

// EncodeDense applies the error-feedback selection to a dense buffer in
// place: the values are sparsified, pushed through Encode, and scattered
// back with dropped coordinates zeroed. The buffer's dense transport
// shape — and therefore its wire size — is unchanged; this is the elastic
// WLG runtime's operating point, where the GG's result cache and recovery
// replies need dense frames. Returns the selection's nnz.
func (s *State) EncodeDense(x []float64) int {
	s.dense = sparse.FromDenseInto(s.dense, x)
	s.Encode(s.dense)
	for i := range x {
		x[i] = 0
	}
	s.dense.AddIntoDense(x, 1)
	return s.dense.NNZ()
}

func (s *State) effDecay() float64 {
	if s.Decay > 0 {
		return s.Decay
	}
	return DefaultDecay
}

// ensureK derives the clamp bounds and initial budget from the first
// vector's dimension.
func (s *State) ensureK(dim int) {
	if s.KMin <= 0 {
		s.KMin = DefaultKMin
	}
	if s.KMax <= 0 {
		s.KMax = dim
	}
	if s.KMax < s.KMin {
		s.KMax = s.KMin
	}
	if s.K <= 0 {
		s.K = clampInt(dim/DefaultKDivisor, s.KMin, s.KMax)
	}
}

// threshold computes the magnitude cut for keeping exactly k of src's
// entries: theta is the k-th largest |value|, ties is how many entries
// with |value| == theta survive (taken in increasing index order).
func (s *State) threshold(src *sparse.Vector, k int) (theta float64, ties int) {
	sel := s.sel[:0]
	for _, val := range src.Value {
		sel = append(sel, math.Abs(val))
	}
	s.sel = sel
	theta = selectKthLargest(sel, k)
	gt := 0
	for _, val := range src.Value {
		if math.Abs(val) > theta {
			gt++
		}
	}
	return theta, k - gt
}

// rebuild writes the surviving entries of src into dst (dst != src),
// keeping every |value| > theta plus the first `ties` entries at exactly
// theta in index order — exactly k survivors, deterministically.
func rebuild(dst, src *sparse.Vector, theta float64, ties int) {
	dst.Reset(src.Dim)
	for i, idx := range src.Index {
		a := math.Abs(src.Value[i])
		switch {
		case a > theta:
		case a == theta && ties > 0:
			ties--
		default:
			continue
		}
		dst.Index = append(dst.Index, idx)
		dst.Value = append(dst.Value, src.Value[i])
	}
}

// selectInPlace truncates v to its k largest-magnitude entries in place
// (the no-error-feedback path).
func (s *State) selectInPlace(v *sparse.Vector, k int) {
	if v.NNZ() <= k {
		return
	}
	theta, ties := s.threshold(v, k)
	kept := 0
	for i, idx := range v.Index {
		a := math.Abs(v.Value[i])
		switch {
		case a > theta:
		case a == theta && ties > 0:
			ties--
		default:
			continue
		}
		v.Index[kept] = idx
		v.Value[kept] = v.Value[i]
		kept++
	}
	v.Index = v.Index[:kept]
	v.Value = v.Value[:kept]
}

// subInto writes scale·(a − b) into dst, where b's support is a subset of
// a's (b is a selected with possibly quantized values). Differences that
// cancel exactly are dropped.
func subInto(dst, a, b *sparse.Vector, scale float64) *sparse.Vector {
	dst.Reset(a.Dim)
	j := 0
	for i, idx := range a.Index {
		if j < len(b.Index) && b.Index[j] == idx {
			if d := a.Value[i] - b.Value[j]; d != 0 {
				dst.Index = append(dst.Index, idx)
				dst.Value = append(dst.Value, scale*d)
			}
			j++
			continue
		}
		dst.Index = append(dst.Index, idx)
		dst.Value = append(dst.Value, scale*a.Value[i])
	}
	return dst
}

// selectKthLargest returns the k-th largest element of a (1-based),
// partially reordering a. Deterministic iterative quickselect with a
// median-of-three pivot — no allocation, no randomness.
func selectKthLargest(a []float64, k int) float64 {
	target := k - 1
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] > a[lo] {
			a[lo], a[mid] = a[mid], a[lo]
		}
		if a[hi] > a[lo] {
			a[lo], a[hi] = a[hi], a[lo]
		}
		if a[hi] > a[mid] {
			a[mid], a[hi] = a[hi], a[mid]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] > pivot {
				i++
			}
			for a[j] < pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return a[target]
		}
	}
	return a[target]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
