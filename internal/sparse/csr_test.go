package sparse

import (
	"math/rand"
	"testing"

	"psrahgadmm/internal/vec"
)

// denseOf expands a CSR into a [][]float64 for reference computations.
func denseOf(m *CSR) [][]float64 {
	out := make([][]float64, m.NRows)
	for r := 0; r < m.NRows; r++ {
		out[r] = make([]float64, m.NCols)
		cols, vals := m.Row(r)
		for k, c := range cols {
			out[r][c] = vals[k]
		}
	}
	return out
}

func randCSR(r *rand.Rand, rows, cols int, density float64) *CSR {
	m := NewCSR(0, cols, 0)
	m.NRows = 0
	for i := 0; i < rows; i++ {
		var cs []int32
		var vs []float64
		for c := 0; c < cols; c++ {
			if r.Float64() < density {
				cs = append(cs, int32(c))
				vs = append(vs, r.NormFloat64())
			}
		}
		m.AppendRow(cs, vs)
	}
	return m
}

func TestAppendRowAndCheck(t *testing.T) {
	m := NewCSR(0, 5, 0)
	m.AppendRow([]int32{0, 3}, []float64{1, 2})
	m.AppendRow(nil, nil)
	m.AppendRow([]int32{4}, []float64{-1})
	if m.NRows != 3 {
		t.Fatalf("NRows = %d", m.NRows)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	cols, vals := m.Row(2)
	if len(cols) != 1 || cols[0] != 4 || vals[0] != -1 {
		t.Fatalf("Row(2) = %v %v", cols, vals)
	}
	if m.RowNNZ(1) != 0 {
		t.Fatalf("RowNNZ(1) = %d", m.RowNNZ(1))
	}
}

func TestAppendRowRejectsBadColumns(t *testing.T) {
	m := NewCSR(0, 3, 0)
	for _, bad := range [][]int32{{1, 1}, {2, 0}, {5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for columns %v", bad)
				}
			}()
			vals := make([]float64, len(bad))
			m.AppendRow(bad, vals)
		}()
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		rows, cols := r.Intn(20)+1, r.Intn(30)+1
		m := randCSR(r, rows, cols, 0.3)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := make([]float64, rows)
		m.MulVec(got, x)
		ref := denseOf(m)
		for i := 0; i < rows; i++ {
			want := vec.Dot(ref[i], x)
			if d := got[i] - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("MulVec row %d: %v vs %v", i, got[i], want)
			}
			if d := m.RowDot(i, x) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("RowDot row %d mismatch", i)
			}
		}
	}
}

func TestMulTransVecAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		rows, cols := r.Intn(20)+1, r.Intn(30)+1
		m := randCSR(r, rows, cols, 0.3)
		y := make([]float64, rows)
		for i := range y {
			y[i] = r.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulTransVec(got, y)
		want := make([]float64, cols)
		ref := denseOf(m)
		for i := 0; i < rows; i++ {
			vec.Axpy(y[i], ref[i], want)
		}
		if !vec.WithinTol(got, want, 1e-10) {
			t.Fatal("MulTransVec mismatch")
		}
	}
}

func TestAddScaledRow(t *testing.T) {
	m := NewCSR(0, 4, 0)
	m.AppendRow([]int32{1, 3}, []float64{2, -1})
	dst := []float64{1, 1, 1, 1}
	m.AddScaledRow(dst, 0, 3)
	if !vec.Equal(dst, []float64{1, 7, 1, -2}) {
		t.Fatalf("AddScaledRow = %v", dst)
	}
}

func TestRowSlice(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	m := randCSR(r, 10, 8, 0.4)
	s := m.RowSlice(3, 7)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.NRows != 4 || s.NCols != 8 {
		t.Fatalf("RowSlice shape = %dx%d", s.NRows, s.NCols)
	}
	for r2 := 0; r2 < 4; r2++ {
		gc, gv := s.Row(r2)
		wc, wv := m.Row(r2 + 3)
		if len(gc) != len(wc) {
			t.Fatalf("row %d nnz mismatch", r2)
		}
		for k := range gc {
			if gc[k] != wc[k] || gv[k] != wv[k] {
				t.Fatalf("row %d entry %d mismatch", r2, k)
			}
		}
	}
	// Mutating the slice must not affect the parent.
	if s.NNZ() > 0 {
		s.Val[0] += 100
		if err := m.Check(); err != nil {
			t.Fatal(err)
		}
		_, pv := m.Row(3)
		if len(pv) > 0 && pv[0] == s.Val[0] {
			t.Fatal("RowSlice shares storage with parent")
		}
	}
}

func TestColumnDensity(t *testing.T) {
	m := NewCSR(0, 10, 0)
	m.AppendRow([]int32{0, 1, 9}, []float64{1, 1, 1})
	m.AppendRow([]int32{4, 5}, []float64{1, 1})
	counts := m.ColumnDensity(2)
	// Blocks: [0,5) and [5,10). Nonzero columns 0,1,9,4,5 → 3 in first, 2 in second.
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("ColumnDensity = %v", counts)
	}
	total := 0
	for _, c := range m.ColumnDensity(3) {
		total += c
	}
	if total != m.NNZ() {
		t.Fatalf("ColumnDensity total %d != nnz %d", total, m.NNZ())
	}
}

func TestColumnDensityMatchesChunkOf(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		cols := r.Intn(50) + 2
		p := r.Intn(7) + 1
		m := randCSR(r, 8, cols, 0.3)
		counts := m.ColumnDensity(p)
		want := make([]int, p)
		for _, c := range m.ColIdx {
			want[vec.ChunkOf(cols, p, int(c))]++
		}
		for i := range want {
			if counts[i] != want[i] {
				t.Fatalf("ColumnDensity[%d] = %d, want %d", i, counts[i], want[i])
			}
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	r := rand.New(rand.NewSource(24))
	m := randCSR(r, 500, 2000, 0.02)
	x := make([]float64, 2000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	dst := make([]float64, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkMulTransVec(b *testing.B) {
	r := rand.New(rand.NewSource(25))
	m := randCSR(r, 500, 2000, 0.02)
	y := make([]float64, 500)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	dst := make([]float64, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulTransVec(dst, y)
	}
}
