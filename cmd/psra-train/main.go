// Command psra-train trains L1-regularized logistic regression with any of
// the implemented consensus-ADMM algorithms on a LIBSVM file or a
// synthetic dataset, printing per-iteration progress:
//
//	psra-train -synth news20 -scale 0.002 -algorithm psra-hgadmm -nodes 8 -wpn 4
//	psra-train -data train.svm -test test.svm -algorithm admmlib -iters 50
//
// -elastic selects the failure model: off (fail-stop, the default),
// survive (deaths shrink the world and training continues), or recover
// (survive plus re-admission of returning ranks). Bare -elastic means
// survive, matching the old boolean flag. The chaos flags schedule
// deterministic boundary faults for studying the models:
//
//	psra-train -elastic=recover -chaos-kill 3@3,2@5 -chaos-rejoin 3@9,2@12
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	psra "psrahgadmm"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/prof"
	"psrahgadmm/internal/transport"
)

// elasticMode is the -elastic flag: a tri-state that still accepts the
// historical boolean spellings (bare -elastic, -elastic=true/false).
type elasticMode string

func (m *elasticMode) String() string { return string(*m) }

func (m *elasticMode) Set(s string) error {
	switch s {
	case "", "off", "false":
		*m = "off"
	case "true", "survive":
		*m = "survive"
	case "recover":
		*m = "recover"
	default:
		return fmt.Errorf("unknown mode %q (off | survive | recover)", s)
	}
	return nil
}

// IsBoolFlag lets bare -elastic (no value) keep meaning "survive".
func (m *elasticMode) IsBoolFlag() bool { return true }

func main() {
	var (
		algorithm = flag.String("algorithm", string(psra.PSRAHGADMM), "registered algorithm name (see -list-algorithms)")
		listAlgos = flag.Bool("list-algorithms", false, "list every registered algorithm with its strategy triple and exit")
		nodes     = flag.Int("nodes", 4, "virtual cluster nodes")
		wpn       = flag.Int("wpn", 4, "workers per node")
		rho       = flag.Float64("rho", 1, "ADMM penalty parameter ρ")
		lambda    = flag.Float64("lambda", 1, "L1 regularization weight λ")
		iters     = flag.Int("iters", 100, "outer iterations")
		threshold = flag.Int("threshold", 0, "GQ grouping threshold in nodes (0 = all nodes)")
		consensus = flag.String("consensus", string(psra.ConsensusGlobal), "global | group (PSRA-HGADMM aggregation breadth)")
		minBarr   = flag.Int("min-barrier", 0, "SSP partial-barrier size in workers (0 = half the workers, the paper's Min_barrier)")
		maxDelay  = flag.Int("max-delay", 0, "SSP/async staleness bound in rounds (0 = the paper's Max_delay of 5)")
		dataPath  = flag.String("data", "", "LIBSVM training file (overrides -synth)")
		testPath  = flag.String("test", "", "LIBSVM test file for accuracy reporting")
		synth     = flag.String("synth", "news20", "synthetic preset: news20 | webspam | url")
		scale     = flag.Float64("scale", 0.002, "synthetic preset scale in (0,1]")
		seed      = flag.Int64("seed", 1, "synthetic generation seed")
		every     = flag.Int("every", 10, "print every k-th iteration")
		jsonOut   = flag.String("json", "", "write the full run history as JSON to this file")
		codecKB   = flag.Int64("codec-budget-bytes", 0, "per-round wire budget for top-k codecs: k adapts to stay under it (0 = no budget)")
		codecTopK = flag.Int("codec-topk", 0, "fixed selection size for top-k codecs, overriding the dim/2 default (0 = default)")
		codecAge  = flag.Bool("codec-age-scoring", false, "top-k codecs: weight selection by residual age so starved coordinates eventually ship")
		sharded   = flag.Bool("sharded", false, "block-sharded consensus state: each rank holds only the model blocks its shard touches (flat/star/tree consensus, any sync model)")
		shardBlk  = flag.Int("shard-blocks", 0, "block count for -sharded partitioning (0 = world size)")
		chaosKill = flag.String("chaos-kill", "", "kill schedule rank@iter[,rank@iter...]: each rank dies at its iteration boundary")
		chaosJoin = flag.String("chaos-rejoin", "", "rejoin schedule rank@iter[,...]: killed ranks return (requires -elastic=recover)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed (with -chaos-kill or -chaos-corrupt)")
		chaosCorr = flag.Float64("chaos-corrupt", 0, "per-record probability of a seeded wire bit-flip (detected, dropped, and retried)")
		chaosCAt  = flag.String("chaos-corrupt-at", "", "corruption schedule rank@iter[,...]: one frame to each rank is bit-flipped at its iteration")
		chaosNaN  = flag.String("chaos-nan", "", "NaN-injection schedule rank@iter[,...]: each rank's local solve is poisoned once")
		chaosByz  = flag.String("chaos-byzantine", "", "Byzantine schedule rank@iter[-until]:mode[,...]: the rank's contributions are poisoned from iter onward (modes: sign-flip | scale | random | stale-replay); pair with -screen and a robust -aggregator")
		aggName   = flag.String("aggregator", "", "consensus reduce statistic: mean | trimmed-mean | coordinate-median (empty = the algorithm's registered default)")
		trimF     = flag.Int("trim-f", 0, "trimmed-mean per-side trim count in ranks (0 = default 1 with trimmed-mean)")
		screenOn  = flag.Bool("screen", false, "contribution screen: score every contribution against its rank's baseline and quarantine sustained outliers")
		quarRnds  = flag.Int("quarantine-rounds", 0, "consecutive clean probes a quarantined rank needs for re-admission (0 = default 3)")
		quarLog   = flag.String("quarantine-log", "", "write each quarantine as a binary evidence frame to this audit file")
		ckDir     = flag.String("checkpoint-dir", "", "directory for periodic snapshots (enables checkpointing)")
		ckEvery   = flag.Int("checkpoint-every", 10, "snapshot every k-th iteration (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "continue from the latest snapshot in -checkpoint-dir (fresh start if none)")
		wdOn      = flag.Bool("watchdog", false, "divergence watchdog: NaN/Inf and explosion detection, checkpoint auto-rollback with -checkpoint-dir")
		wdWindow  = flag.Int("watchdog-window", 0, "healthy iterations forming the explosion baseline (0 = default 8)")
		wdResFac  = flag.Float64("watchdog-residual-factor", 0, "residual explosion threshold as a multiple of the window floor (0 = default 1e4)")
		wdObjFac  = flag.Float64("watchdog-objective-factor", 0, "objective explosion threshold as a multiple of the window floor (0 = default 1e4)")
		wdMaxRB   = flag.Int("max-rollbacks", 0, "rollback budget before a watchdog trip aborts the run (0 = default 2)")
	)
	elastic := elasticMode("off")
	flag.Var(&elastic, "elastic", "failure model: off | survive | recover (bare -elastic = survive)")
	profiles := prof.Register(flag.CommandLine)
	flag.Parse()

	if *listAlgos {
		listAlgorithms()
		return
	}
	if err := validateExplicitFlags(); err != nil {
		fatal(err)
	}
	if err := profiles.Start(); err != nil {
		fatal(err)
	}

	train, test, err := loadData(*dataPath, *testPath, *synth, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s — %d samples × %d features, %d nonzeros\n",
		train.Name, train.Rows(), train.Dim(), train.NNZ())

	cfg := psra.Config{
		Algorithm:        psra.Algorithm(*algorithm),
		Topo:             psra.Topology{Nodes: *nodes, WorkersPerNode: *wpn},
		Rho:              *rho,
		Lambda:           *lambda,
		MaxIter:          *iters,
		GroupThreshold:   *threshold,
		Consensus:        psra.ConsensusMode(*consensus),
		MinBarrier:       *minBarr,
		MaxDelay:         *maxDelay,
		Elastic:          elastic != "off",
		CodecBudgetBytes: *codecKB,
		CodecTopK:        *codecTopK,
		CodecAgeScoring:  *codecAge,
		ShardedState:     *sharded,
		ShardBlocks:      *shardBlk,
		Aggregator:       *aggName,
		TrimF:            *trimF,
		QuarantineRounds: *quarRnds,
	}
	if *screenOn {
		cfg.Screen = psra.ScreenConfig{Enabled: true}
	}
	if *wdOn {
		cfg.Watchdog = psra.WatchdogConfig{
			Enabled:         true,
			Window:          *wdWindow,
			ResidualFactor:  *wdResFac,
			ObjectiveFactor: *wdObjFac,
			MaxRollbacks:    *wdMaxRB,
		}
	}
	if *chaosJoin != "" && elastic != "recover" {
		fatal(fmt.Errorf("-chaos-rejoin requires -elastic=recover"))
	}
	if *chaosCorr < 0 || *chaosCorr > 1 {
		fatal(fmt.Errorf("-chaos-corrupt %v outside [0, 1]", *chaosCorr))
	}
	if *chaosKill != "" || *chaosJoin != "" || *chaosCorr > 0 || *chaosCAt != "" || *chaosNaN != "" || *chaosByz != "" {
		plan := &transport.FaultPlan{Seed: *chaosSeed, CorruptProb: *chaosCorr}
		var err error
		if plan.KillAtIteration, err = parseSchedule(*chaosKill); err != nil {
			fatal(fmt.Errorf("-chaos-kill: %w", err))
		}
		if plan.RejoinAtIteration, err = parseSchedule(*chaosJoin); err != nil {
			fatal(fmt.Errorf("-chaos-rejoin: %w", err))
		}
		if plan.CorruptAtIteration, err = parseSchedule(*chaosCAt); err != nil {
			fatal(fmt.Errorf("-chaos-corrupt-at: %w", err))
		}
		if plan.NaNAtIteration, err = parseSchedule(*chaosNaN); err != nil {
			fatal(fmt.Errorf("-chaos-nan: %w", err))
		}
		if plan.ByzantineAtIteration, err = parseByzantine(*chaosByz); err != nil {
			fatal(fmt.Errorf("-chaos-byzantine: %w", err))
		}
		cfg.Faults = plan
	}
	opts := psra.RunOptions{Test: test}
	if *resume && *ckDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *ckDir != "" {
		store, err := psra.NewDirCheckpointStore(*ckDir)
		if err != nil {
			fatal(err)
		}
		opts.Checkpoint = &psra.CheckpointOptions{Store: store, Every: *ckEvery, Resume: *resume}
	}
	opts.OnIteration = func(s psra.IterStat) {
		if s.Iter%*every != 0 && s.Iter != *iters-1 {
			return
		}
		fmt.Printf("iter %3d  objective %-12s accuracy %-8s cal %-10s comm %s\n",
			s.Iter+1, metrics.FormatFloat(s.Objective), metrics.FormatFloat(s.Accuracy),
			metrics.Seconds(s.CalTime), metrics.Seconds(s.CommTime))
	}
	res, err := psra.Train(cfg, train, opts)
	if stopErr := profiles.Stop(); stopErr != nil && err == nil {
		err = stopErr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nfinal objective %s", metrics.FormatFloat(res.FinalObjective()))
	if test != nil {
		fmt.Printf(", test accuracy %s", metrics.FormatFloat(res.FinalAccuracy()))
	}
	fmt.Printf("\nvirtual system time %s (cal %s + comm %s), %s communicated\n",
		metrics.Seconds(res.SystemTime), metrics.Seconds(res.TotalCalTime),
		metrics.Seconds(res.TotalCommTime), metrics.Bytes(res.TotalBytes))
	for _, rb := range res.Rollbacks {
		fmt.Printf("ROLLED BACK: watchdog tripped at iteration %d (%s); resumed from the iteration-%d checkpoint\n",
			rb.TripIter+1, rb.Reason, rb.ToIter)
	}
	for _, ev := range res.Quarantines {
		if ev.Readmitted {
			fmt.Printf("READMITTED: rank %d returned to the live set at iteration %d after consecutive clean probes\n",
				ev.Rank, ev.Iter+1)
		} else {
			fmt.Printf("QUARANTINED: rank %d excluded at iteration %d by the contribution screen\n",
				ev.Rank, ev.Iter+1)
		}
	}
	if *quarLog != "" {
		var buf []byte
		events := 0
		for _, ev := range res.Quarantines {
			if ev.Readmitted {
				continue
			}
			buf = membership.QuarantineEvidence{Rank: ev.Rank, Iter: ev.Iter}.AppendBinary(buf)
			events++
		}
		if err := os.WriteFile(*quarLog, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("quarantine evidence written to %s (%d frames)\n", *quarLog, events)
	}
	if res.Degraded {
		fmt.Printf("DEGRADED: %d of %d workers survived (membership epoch %d) — objective is the survivors' optimum\n",
			res.LiveWorkers, cfg.Topo.Size(), res.Epoch)
	} else if res.Epoch > 0 {
		fmt.Printf("RECOVERED: membership changed %d times but the final world is whole — objective is the full-data optimum\n",
			res.Epoch)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("history written to %s\n", *jsonOut)
	}
}

// validateExplicitFlags rejects nonsense values for flags whose zero
// default means "auto": leaving them unset is fine, but explicitly passing
// a non-positive value is a typo'd invocation that would otherwise be
// silently reinterpreted as the default.
func validateExplicitFlags() error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		if err != nil {
			return
		}
		switch f.Name {
		case "shard-blocks", "checkpoint-every", "codec-budget-bytes",
			"min-barrier", "max-delay", "trim-f", "quarantine-rounds":
			if v, perr := strconv.ParseInt(f.Value.String(), 10, 64); perr != nil || v <= 0 {
				err = fmt.Errorf("-%s must be a positive integer, got %s", f.Name, f.Value.String())
			}
		}
	})
	return err
}

// parseSchedule parses "rank@iter[,rank@iter...]" into a fault schedule;
// an empty string is a nil map (no faults of that kind).
func parseSchedule(s string) (map[int]int, error) {
	if s == "" {
		return nil, nil
	}
	sched := make(map[int]int)
	for _, entry := range strings.Split(s, ",") {
		rankStr, iterStr, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("entry %q is not rank@iter", entry)
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return nil, fmt.Errorf("entry %q: bad rank: %w", entry, err)
		}
		iter, err := strconv.Atoi(iterStr)
		if err != nil {
			return nil, fmt.Errorf("entry %q: bad iteration: %w", entry, err)
		}
		if _, dup := sched[rank]; dup {
			return nil, fmt.Errorf("rank %d scheduled twice", rank)
		}
		sched[rank] = iter
	}
	return sched, nil
}

// parseByzantine parses "rank@iter[-until]:mode[,...]" into a Byzantine
// schedule. Every malformed entry is rejected loudly — an unknown mode, a
// duplicated rank, or a negative iteration silently dropped would turn a
// chaos experiment into a clean run that "proves" robustness it never
// tested.
func parseByzantine(s string) (map[int]transport.ByzantineFault, error) {
	if s == "" {
		return nil, nil
	}
	sched := make(map[int]transport.ByzantineFault)
	for _, entry := range strings.Split(s, ",") {
		rankStr, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("entry %q is not rank@iter:mode", entry)
		}
		window, mode, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("entry %q is missing its :mode", entry)
		}
		if !transport.ValidByzantineMode(mode) {
			return nil, fmt.Errorf("entry %q: unknown mode %q (want %s)",
				entry, mode, strings.Join(transport.ByzantineModes(), " | "))
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("entry %q: bad rank %q", entry, rankStr)
		}
		fromStr, untilStr, bounded := strings.Cut(window, "-")
		from, err := strconv.Atoi(fromStr)
		if err != nil || from < 0 {
			return nil, fmt.Errorf("entry %q: bad iteration %q", entry, fromStr)
		}
		bf := transport.ByzantineFault{Iteration: from, Mode: mode}
		if bounded {
			until, err := strconv.Atoi(untilStr)
			if err != nil || until <= from {
				return nil, fmt.Errorf("entry %q: until %q must be an integer past the start iteration", entry, untilStr)
			}
			bf.Until = until
		}
		if _, dup := sched[rank]; dup {
			return nil, fmt.Errorf("rank %d scheduled twice", rank)
		}
		sched[rank] = bf
	}
	return sched, nil
}

// listAlgorithms prints the registry: every runnable algorithm with the
// (consensus, sync, codec) triple it binds.
func listAlgorithms() {
	for _, v := range psra.Variants() {
		state := ""
		if v.Sharded {
			state = " state=sharded"
		}
		fmt.Printf("%-20s consensus=%-11s sync=%-5s codec=%-10s%s %s\n",
			v.Name, v.Consensus, v.Sync, v.Codec, state, v.Description)
	}
}

func loadData(dataPath, testPath, synth string, scale float64, seed int64) (*psra.Dataset, *psra.Dataset, error) {
	if dataPath != "" {
		train, err := readLIBSVM(dataPath, 0)
		if err != nil {
			return nil, nil, err
		}
		var test *psra.Dataset
		if testPath != "" {
			if test, err = readLIBSVM(testPath, train.Dim()); err != nil {
				return nil, nil, err
			}
		}
		return train, test, nil
	}
	var cfg psra.SynthConfig
	switch synth {
	case "news20":
		cfg = psra.News20Like(scale, seed)
	case "webspam":
		cfg = psra.WebspamLike(scale, seed)
	case "url":
		cfg = psra.URLLike(scale, seed)
	default:
		return nil, nil, fmt.Errorf("unknown synthetic preset %q", synth)
	}
	return psra.Generate(cfg)
}

func readLIBSVM(path string, dim int) (*psra.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadLIBSVM(f, dim, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psra-train:", err)
	os.Exit(1)
}
