package collective

import (
	"fmt"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// Workspace holds every piece of per-call scratch a collective needs —
// chunk tables, block buffers, arrival slots, the reduce accumulator, and
// the trace event log — so a long-lived caller (one engine member, one
// WLG worker) re-runs collectives with zero steady-state heap allocation.
// Buffers are sized on first use and grown on demand, so a workspace
// needs no explicit invalidation when the group or dimension changes
// (elastic regroup simply re-sizes on the next call).
//
// A Workspace serves ONE goroutine: concurrent collectives need one
// workspace per member. The returned Trace's Events alias ws storage and
// are valid until the workspace's next call; callers that keep a trace
// must copy it.
//
// When the endpoint advertises transport.NonBlockingSender, sends happen
// inline instead of via the usual goroutine-per-send (the async form
// exists only to avoid distributed deadlock on fabrics with bounded
// buffering, such as TCP). On zero-copy fabrics delivered payloads alias
// sender workspaces; that is safe here because every schedule below has
// the property that a buffer, once sent, is not rewritten until the whole
// collective completes on all members — see DESIGN.md "Memory model &
// buffer ownership" for the per-schedule argument.
type Workspace struct {
	seen    []bool // group validation scratch, world-sized
	chunks  []vec.Chunk
	offsets []int
	events  []Event
	errcs   []chan error // async-send fallback

	// Sparse block state. own[j] are buffers this workspace owns and
	// rewrites each call; cur[j] are the working pointers, which may come
	// to alias received payloads on zero-copy fabrics. spare double-buffers
	// ring merges; myBlock holds the accumulator extraction.
	own     []*sparse.Vector
	cur     []*sparse.Vector
	arrS    []*sparse.Vector
	acc     *sparse.Accumulator
	myBlock *sparse.Vector
	spare   *sparse.Vector

	arrD [][]float64

	// Sharded-collective scratch (ShardAllreduceSparse): reduced owned
	// blocks, gather-phase per-destination outgoing buffers, and gather
	// arrival slots. Kept apart from own/cur/arrS so neither phase rewrites
	// a payload the other may still alias on zero-copy fabrics.
	shRed []*sparse.Vector
	shOut []*sparse.Vector
	shArr []*sparse.Vector

	// Robust-reduce scratch (robust.go): the coordinate × contributor
	// matrix behind the trimmed-mean/median owner-side combine.
	rb robustScratch
}

// validateGroup is Group.validate using ws.seen instead of a fresh map.
// Every collective enters through here, so it also discards async-send
// error channels left over from a previous call that aborted mid-protocol:
// their errors belong to the aborted round, and the buffered channels let
// orphaned send goroutines finish without a receiver.
func (ws *Workspace) validateGroup(ep transport.Endpoint, g Group) (int, error) {
	for i := range ws.errcs {
		ws.errcs[i] = nil
	}
	ws.errcs = ws.errcs[:0]
	if g.Size() == 0 {
		return 0, fmt.Errorf("collective: empty group")
	}
	me := g.IndexOf(ep.Rank())
	if me < 0 {
		return 0, fmt.Errorf("collective: rank %d not in group %v", ep.Rank(), g.Ranks)
	}
	n := ep.Size()
	if cap(ws.seen) < n {
		ws.seen = make([]bool, n)
	}
	ws.seen = ws.seen[:n]
	var err error
	marked := 0
	for _, r := range g.Ranks {
		if r < 0 || r >= n {
			err = fmt.Errorf("collective: group rank %d out of world [0,%d)", r, n)
			break
		}
		if ws.seen[r] {
			err = fmt.Errorf("collective: duplicate rank %d in group", r)
			break
		}
		ws.seen[r] = true
		marked++
	}
	for _, r := range g.Ranks[:marked] {
		ws.seen[r] = false
	}
	if err != nil {
		return 0, err
	}
	return me, nil
}

// ensureSparse sizes the sparse block/arrival state for a p-member group.
func (ws *Workspace) ensureSparse(p int) {
	if cap(ws.own) < p {
		own := make([]*sparse.Vector, p)
		copy(own, ws.own)
		ws.own = own
		ws.cur = make([]*sparse.Vector, p)
		ws.arrS = make([]*sparse.Vector, p)
		ws.offsets = make([]int, p)
	}
	ws.own = ws.own[:p]
	ws.cur = ws.cur[:p]
	ws.arrS = ws.arrS[:p]
	ws.offsets = ws.offsets[:p]
	for j := range ws.own {
		if ws.own[j] == nil {
			ws.own[j] = new(sparse.Vector)
		}
		ws.cur[j] = nil
		ws.arrS[j] = nil
	}
	if ws.spare == nil {
		ws.spare = new(sparse.Vector)
	}
	if ws.myBlock == nil {
		ws.myBlock = new(sparse.Vector)
	}
	if ws.acc == nil {
		ws.acc = sparse.NewAccumulator(0)
	}
}

// ensureDense sizes the dense arrival state for a p-member group.
func (ws *Workspace) ensureDense(p int) {
	if cap(ws.arrD) < p {
		ws.arrD = make([][]float64, p)
	}
	ws.arrD = ws.arrD[:p]
	for j := range ws.arrD {
		ws.arrD[j] = nil
	}
}

// send delivers msg inline when the endpoint's sends cannot deadlock,
// otherwise through the usual async goroutine (error collected later via
// ws.errcs).
func (ws *Workspace) send(ep transport.Endpoint, sync bool, to int, m wire.Message) error {
	if sync {
		return ep.Send(to, m)
	}
	ws.errcs = append(ws.errcs, sendAsync(ep, to, m))
	return nil
}

// AbandonSends waits out async sends left behind by a collective that
// returned early on error, discarding their outcomes. A retry of the
// round reuses the workspace's buffers, and the orphaned goroutines
// still read them (the transport counts encoded bytes as it delivers) —
// so the caller must first unblock the fabric (abort latch flipped, or
// fabric closed), then AbandonSends before reusing the workspace.
func (ws *Workspace) AbandonSends() {
	for i, c := range ws.errcs {
		<-c
		ws.errcs[i] = nil
	}
	ws.errcs = ws.errcs[:0]
}

// drainSends collects the async-send errors, if any.
func (ws *Workspace) drainSends() error {
	var first error
	for i, c := range ws.errcs {
		if err := <-c; err != nil && first == nil {
			first = err
		}
		ws.errcs[i] = nil
	}
	ws.errcs = ws.errcs[:0]
	return first
}

// RingAllreduceSparse is the workspace form of the package-level
// RingAllreduceSparse: the global sum is written into out (which must not
// alias v) instead of freshly allocated. Float operations occur in the
// identical order, so results are bit-identical.
func (ws *Workspace) RingAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v, out *sparse.Vector) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2 * (p - 1), Events: ws.events[:0]}
	if p == 1 {
		out.ReuseFrom(v)
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureSparse(p)
	ws.chunks = vec.SplitInto(ws.chunks, v.Dim, p)
	next := g.Ranks[(me+1)%p]
	prev := g.Ranks[(me-1+p)%p]

	blocks := ws.cur
	for j, c := range ws.chunks {
		blocks[j] = v.SliceInto(ws.own[j], c.Lo, c.Hi)
	}

	for s := 0; s < p-1; s++ {
		sendIdx := (me - s + p*p) % p
		recvIdx := (me - s - 1 + p*p) % p
		msg := wire.SparseMsg(tagBase, blocks[sendIdx])
		bytes := wire.PayloadBytes(msg)
		if err := ws.send(ep, sync, next, msg); err != nil {
			return tr, err
		}
		in, err := ep.Recv(prev, tagBase)
		if err != nil {
			return tr, err
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		tr.add(s, ep.Rank(), next, bytes)
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != blocks[recvIdx].Dim {
			return tr, fmt.Errorf("collective: ring sparse block dim %d, want %d", sv.Dim, blocks[recvIdx].Dim)
		}
		merged := sparse.MergeInto(ws.spare, blocks[recvIdx], sv)
		// The displaced buffer was never sent (a block is merged one step
		// before it is forwarded), so it can safely become the next spare.
		// Swap the ownership slot too, keeping {own[·]} ∪ {spare} a set of
		// p+1 distinct buffers across calls.
		ws.own[recvIdx], ws.spare = merged, ws.own[recvIdx]
		blocks[recvIdx] = merged
	}

	for s := 0; s < p-1; s++ {
		sendIdx := (me + 1 - s + p*p) % p
		recvIdx := (me - s + p*p) % p
		msg := wire.SparseMsg(tagBase+1, blocks[sendIdx])
		bytes := wire.PayloadBytes(msg)
		if err := ws.send(ep, sync, next, msg); err != nil {
			return tr, err
		}
		in, err := ep.Recv(prev, tagBase+1)
		if err != nil {
			return tr, err
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		tr.add(p-1+s, ep.Rank(), next, bytes)
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != blocks[recvIdx].Dim {
			return tr, fmt.Errorf("collective: ring sparse gather dim %d, want %d", sv.Dim, blocks[recvIdx].Dim)
		}
		blocks[recvIdx] = sv
	}

	for j, c := range ws.chunks {
		ws.offsets[j] = c.Lo
	}
	sparse.ConcatInto(out, v.Dim, ws.offsets, blocks)
	ws.events = tr.Events
	return tr, nil
}

// PSRAllreduceSparse is the workspace form of the package-level
// PSRAllreduceSparse, writing the global sum into out (which must not
// alias v). Bit-identical to the allocating form.
func (ws *Workspace) PSRAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v, out *sparse.Vector) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if p == 1 {
		out.ReuseFrom(v)
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureSparse(p)
	ws.chunks = vec.SplitInto(ws.chunks, v.Dim, p)
	mine := ws.chunks[me]

	// Scatter-Reduce: send block j to its owner, accumulate arrivals into
	// my own block.
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		blk := v.SliceInto(ws.own[j], ws.chunks[j].Lo, ws.chunks[j].Hi)
		msg := wire.SparseMsg(tagBase, blk)
		tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(msg))
		if err := ws.send(ep, sync, g.Ranks[j], msg); err != nil {
			return tr, err
		}
	}
	// Collect contributions first, then reduce in member order so float
	// association is independent of arrival order (bit-reproducibility).
	arrivals := ws.arrS
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != mine.Hi-mine.Lo {
			return tr, fmt.Errorf("collective: psr sparse scatter dim %d, want %d", sv.Dim, mine.Hi-mine.Lo)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: psr sparse scatter unexpected sender %d", in.From)
		}
		arrivals[src] = sv
	}
	arrivals[me] = v.SliceInto(ws.own[me], mine.Lo, mine.Hi)
	ws.acc.Reset(mine.Hi - mine.Lo)
	for _, a := range arrivals {
		if a != nil {
			ws.acc.Add(a)
		}
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}
	myBlock := ws.acc.SumInto(ws.myBlock)
	ws.myBlock = myBlock

	// Allgather: broadcast my finished block, collect the rest.
	msg := wire.SparseMsg(tagBase+1, myBlock)
	bytes := wire.PayloadBytes(msg)
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		tr.add(1, ep.Rank(), g.Ranks[j], bytes)
		if err := ws.send(ep, sync, g.Ranks[j], msg); err != nil {
			return tr, err
		}
	}
	blocks := ws.cur
	blocks[me] = myBlock
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me {
			return tr, fmt.Errorf("collective: psr sparse gather from unexpected rank %d", in.From)
		}
		if sv.Dim != ws.chunks[src].Hi-ws.chunks[src].Lo {
			return tr, fmt.Errorf("collective: psr sparse gather dim %d, want %d", sv.Dim, ws.chunks[src].Hi-ws.chunks[src].Lo)
		}
		blocks[src] = sv
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}
	for j, c := range ws.chunks {
		ws.offsets[j] = c.Lo
	}
	sparse.ConcatInto(out, v.Dim, ws.offsets, blocks)
	ws.events = tr.Events
	return tr, nil
}

// ReduceSparse is the workspace form of the package-level ReduceSparse:
// the root's sum is written into out (which must not alias v); non-root
// members leave out untouched. Contributions are accumulated in member
// order regardless of arrival order, so overlapping supports sum
// bit-identically on every run — the property the WLG leader gather
// relies on when members ship partially-overlapping top-k selections.
func (ws *Workspace) ReduceSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v, out *sparse.Vector) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1, Events: ws.events[:0]}
	if me != rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		if err := ep.Send(g.Ranks[rootIdx], msg); err != nil {
			return tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[rootIdx], wire.PayloadBytes(msg))
		ws.events = tr.Events
		return tr, nil
	}
	ws.ensureSparse(g.Size())
	arrivals := ws.arrS
	for j := 0; j < g.Size()-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		sv, err := sparsePayload(in)
		if err != nil {
			return tr, err
		}
		if sv.Dim != v.Dim {
			return tr, fmt.Errorf("collective: sparse reduce dim %d, want %d", sv.Dim, v.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: sparse reduce unexpected sender %d", in.From)
		}
		arrivals[src] = sv
	}
	arrivals[me] = v
	ws.acc.Reset(v.Dim)
	for _, a := range arrivals {
		if a != nil {
			ws.acc.Add(a)
		}
	}
	ws.acc.SumInto(out)
	ws.events = tr.Events
	return tr, nil
}

// BroadcastSparse is the workspace form of the package-level
// BroadcastSparse: the root sends v (out is ignored and may be nil);
// every other member receives into out, decoupled from the transport
// buffer.
func (ws *Workspace) BroadcastSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v, out *sparse.Vector) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	sync := transport.SendsNonBlocking(ep)
	tr := Trace{Steps: 1, Events: ws.events[:0]}
	if me == rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		bytes := wire.PayloadBytes(msg)
		for j := 0; j < g.Size(); j++ {
			if j == rootIdx {
				continue
			}
			tr.add(0, ep.Rank(), g.Ranks[j], bytes)
			if err := ws.send(ep, sync, g.Ranks[j], msg); err != nil {
				return tr, err
			}
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		ws.events = tr.Events
		return tr, nil
	}
	in, err := ep.Recv(g.Ranks[rootIdx], tagBase)
	if err != nil {
		return tr, err
	}
	sv, err := sparsePayload(in)
	if err != nil {
		return tr, err
	}
	out.ReuseFrom(sv)
	ws.events = tr.Events
	return tr, nil
}

// RingAllreduceDense is the workspace form of the package-level
// RingAllreduceDense (in place on x). Bit-identical results.
func (ws *Workspace) RingAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2 * (p - 1), Events: ws.events[:0]}
	if p == 1 {
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.chunks = vec.SplitInto(ws.chunks, len(x), p)
	next := g.Ranks[(me+1)%p]
	prev := g.Ranks[(me-1+p)%p]

	for s := 0; s < p-1; s++ {
		sendIdx := (me - s + p*p) % p
		recvIdx := (me - s - 1 + p*p) % p
		sc := ws.chunks[sendIdx]
		msg := wire.DenseMsg(tagBase, x[sc.Lo:sc.Hi])
		if err := ws.send(ep, sync, next, msg); err != nil {
			return tr, err
		}
		in, err := ep.Recv(prev, tagBase)
		if err != nil {
			return tr, err
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		tr.add(s, ep.Rank(), next, wire.PayloadBytes(msg))
		rc := ws.chunks[recvIdx]
		if len(in.Dense) != rc.Hi-rc.Lo {
			return tr, fmt.Errorf("collective: ring scatter block size %d, want %d", len(in.Dense), rc.Hi-rc.Lo)
		}
		vec.AddInto(x[rc.Lo:rc.Hi], in.Dense)
	}

	for s := 0; s < p-1; s++ {
		sendIdx := (me + 1 - s + p*p) % p
		recvIdx := (me - s + p*p) % p
		sc := ws.chunks[sendIdx]
		msg := wire.DenseMsg(tagBase+1, x[sc.Lo:sc.Hi])
		if err := ws.send(ep, sync, next, msg); err != nil {
			return tr, err
		}
		in, err := ep.Recv(prev, tagBase+1)
		if err != nil {
			return tr, err
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		tr.add(p-1+s, ep.Rank(), next, wire.PayloadBytes(msg))
		rc := ws.chunks[recvIdx]
		if len(in.Dense) != rc.Hi-rc.Lo {
			return tr, fmt.Errorf("collective: ring gather block size %d, want %d", len(in.Dense), rc.Hi-rc.Lo)
		}
		copy(x[rc.Lo:rc.Hi], in.Dense)
	}
	ws.events = tr.Events
	return tr, nil
}

// PSRAllreduceDense is the workspace form of the package-level
// PSRAllreduceDense (in place on x). Bit-identical results.
func (ws *Workspace) PSRAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if p == 1 {
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	ws.ensureDense(p)
	ws.chunks = vec.SplitInto(ws.chunks, len(x), p)
	mine := ws.chunks[me]

	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		c := ws.chunks[j]
		if err := ws.send(ep, sync, g.Ranks[j], wire.DenseMsg(tagBase, x[c.Lo:c.Hi])); err != nil {
			return tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[j], 4+wire.DenseEntryBytes*(c.Hi-c.Lo))
	}
	arrivals := ws.arrD
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		if len(in.Dense) != mine.Hi-mine.Lo {
			return tr, fmt.Errorf("collective: psr scatter block size %d, want %d", len(in.Dense), mine.Hi-mine.Lo)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: psr scatter unexpected sender %d", in.From)
		}
		arrivals[src] = in.Dense
	}
	for _, a := range arrivals {
		if a != nil {
			vec.AddInto(x[mine.Lo:mine.Hi], a)
		}
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}

	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		if err := ws.send(ep, sync, g.Ranks[j], wire.DenseMsg(tagBase+1, x[mine.Lo:mine.Hi])); err != nil {
			return tr, err
		}
		tr.add(1, ep.Rank(), g.Ranks[j], 4+wire.DenseEntryBytes*(mine.Hi-mine.Lo))
	}
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		src := g.IndexOf(int(in.From))
		if src < 0 {
			return tr, fmt.Errorf("collective: psr gather from non-member rank %d", in.From)
		}
		c := ws.chunks[src]
		if len(in.Dense) != c.Hi-c.Lo {
			return tr, fmt.Errorf("collective: psr gather block size %d, want %d", len(in.Dense), c.Hi-c.Lo)
		}
		copy(x[c.Lo:c.Hi], in.Dense)
	}
	if err := ws.drainSends(); err != nil {
		return tr, err
	}
	ws.events = tr.Events
	return tr, nil
}

// ReduceDense is the workspace form of the package-level ReduceDense.
func (ws *Workspace) ReduceDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1, Events: ws.events[:0]}
	if g.Size() == 1 {
		return tr, nil
	}
	if me != rootIdx {
		m := wire.DenseMsg(tagBase, x)
		if err := ep.Send(g.Ranks[rootIdx], m); err != nil {
			return tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[rootIdx], wire.PayloadBytes(m))
		ws.events = tr.Events
		return tr, nil
	}
	ws.ensureDense(g.Size())
	arrivals := ws.arrD
	for j := 0; j < g.Size()-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		if len(in.Dense) != len(x) {
			return tr, fmt.Errorf("collective: reduce length %d, want %d", len(in.Dense), len(x))
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: reduce unexpected sender %d", in.From)
		}
		arrivals[src] = in.Dense
	}
	// Reduce in member order for arrival-order-independent float results.
	for _, a := range arrivals {
		if a != nil {
			vec.AddInto(x, a)
		}
	}
	ws.events = tr.Events
	return tr, nil
}

// BroadcastDense is the workspace form of the package-level
// BroadcastDense.
func (ws *Workspace) BroadcastDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1, Events: ws.events[:0]}
	if g.Size() == 1 {
		return tr, nil
	}
	sync := transport.SendsNonBlocking(ep)
	if me == rootIdx {
		m := wire.DenseMsg(tagBase, x)
		bytes := wire.PayloadBytes(m)
		for j := 0; j < g.Size(); j++ {
			if j == rootIdx {
				continue
			}
			if err := ws.send(ep, sync, g.Ranks[j], m); err != nil {
				return tr, err
			}
			tr.add(0, ep.Rank(), g.Ranks[j], bytes)
		}
		if err := ws.drainSends(); err != nil {
			return tr, err
		}
		ws.events = tr.Events
		return tr, nil
	}
	in, err := ep.Recv(g.Ranks[rootIdx], tagBase)
	if err != nil {
		return tr, err
	}
	if len(in.Dense) != len(x) {
		return tr, fmt.Errorf("collective: broadcast length %d, want %d", len(in.Dense), len(x))
	}
	copy(x, in.Dense)
	ws.events = tr.Events
	return tr, nil
}

// Barrier is the workspace form of the package-level Barrier.
func (ws *Workspace) Barrier(ep transport.Endpoint, g Group, tag int32) (Trace, error) {
	me, err := ws.validateGroup(ep, g)
	if err != nil {
		return Trace{}, err
	}
	tr := Trace{Steps: 2, Events: ws.events[:0]}
	if g.Size() == 1 {
		return tr, nil
	}
	root := g.Ranks[0]
	if me == 0 {
		for i := 1; i < g.Size(); i++ {
			if _, err := ep.Recv(transport.AnySource, tag); err != nil {
				return tr, err
			}
		}
		for i := 1; i < g.Size(); i++ {
			m := wire.Control(tag + 1)
			if err := ep.Send(g.Ranks[i], m); err != nil {
				return tr, err
			}
			tr.add(1, ep.Rank(), g.Ranks[i], wire.PayloadBytes(m))
		}
		ws.events = tr.Events
		return tr, nil
	}
	m := wire.Control(tag)
	if err := ep.Send(root, m); err != nil {
		return tr, err
	}
	tr.add(0, ep.Rank(), root, wire.PayloadBytes(m))
	if _, err := ep.Recv(root, tag+1); err != nil {
		return tr, err
	}
	ws.events = tr.Events
	return tr, nil
}
