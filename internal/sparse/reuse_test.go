package sparse

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, dim, nnz int) *Vector {
	m := make(map[int32]float64, nnz)
	for len(m) < nnz {
		m[int32(rng.Intn(dim))] = rng.NormFloat64()
	}
	return FromMap(dim, m)
}

func equalVec(a, b *Vector) bool {
	if a.Dim != b.Dim || len(a.Index) != len(b.Index) {
		return false
	}
	for k := range a.Index {
		if a.Index[k] != b.Index[k] || a.Value[k] != b.Value[k] {
			return false
		}
	}
	return true
}

// TestIntoMatchesAllocating checks every XxxInto against its allocating
// counterpart on random inputs, reusing one destination across rounds.
func TestIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dim := 300
	dstSlice := NewVector(0, 0)
	dstMerge := NewVector(0, 0)
	dstConcat := NewVector(0, 0)
	dstFrom := NewVector(0, 0)
	dense := make([]float64, 0)
	for round := 0; round < 50; round++ {
		a := randVec(rng, dim, rng.Intn(60))
		b := randVec(rng, dim, rng.Intn(60))

		lo, hi := rng.Intn(dim), rng.Intn(dim)
		if lo > hi {
			lo, hi = hi, lo
		}
		if !equalVec(a.Slice(lo, hi), a.SliceInto(dstSlice, lo, hi)) {
			t.Fatalf("round %d: SliceInto mismatch", round)
		}
		if !equalVec(Merge(a, b), MergeInto(dstMerge, a, b)) {
			t.Fatalf("round %d: MergeInto mismatch", round)
		}
		blocks := []*Vector{a.Slice(0, 100), a.Slice(100, 180), a.Slice(180, dim)}
		offsets := []int{0, 100, 180}
		got := ConcatInto(dstConcat, dim, offsets, blocks)
		if !equalVec(Concat(dim, offsets, blocks), got) {
			t.Fatalf("round %d: ConcatInto mismatch", round)
		}
		if !equalVec(a, got) {
			t.Fatalf("round %d: Concat(Slice) did not round-trip", round)
		}

		x := a.ToDense()
		dense = a.ToDenseInto(dense)
		for i := range x {
			if x[i] != dense[i] {
				t.Fatalf("round %d: ToDenseInto mismatch at %d", round, i)
			}
		}
		if !equalVec(FromDense(x), FromDenseInto(dstFrom, x)) {
			t.Fatalf("round %d: FromDenseInto mismatch", round)
		}
	}
}

func TestReuseFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randVec(rng, 500, 40)
	v := NewVector(0, 0)
	v.ReuseFrom(src)
	if !equalVec(v, src) {
		t.Fatal("ReuseFrom copy mismatch")
	}
	// Mutating the copy must not touch the source.
	v.Value[0] = 1e9
	if src.Value[0] == 1e9 {
		t.Fatal("ReuseFrom shares storage with source")
	}
}

func TestSumInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := NewAccumulator(200)
	dst := NewVector(0, 0)
	for round := 0; round < 20; round++ {
		vs := []*Vector{randVec(rng, 200, 30), randVec(rng, 200, 30), randVec(rng, 200, 30)}
		want := NewAccumulator(200)
		for _, v := range vs {
			acc.Add(v)
			want.Add(v)
		}
		got := acc.SumInto(dst)
		if !equalVec(want.Sum(), got) {
			t.Fatalf("round %d: SumInto mismatch", round)
		}
	}
}

func TestAccumulatorReset(t *testing.T) {
	acc := NewAccumulator(100)
	v := FromMap(100, map[int32]float64{5: 1, 50: 2})
	acc.Add(v)
	acc.Reset(100)
	if got := acc.Sum(); got.NNZ() != 0 {
		t.Fatalf("Reset left %d residues", got.NNZ())
	}
	// Shrink then regrow within capacity: tail must come back clean.
	acc.Add(v)
	acc.Reset(10)
	acc.Reset(100)
	if got := acc.Sum(); got.NNZ() != 0 {
		t.Fatalf("re-dimension left %d residues", got.NNZ())
	}
	acc.Reset(250) // forces regrow
	acc.Add(FromMap(250, map[int32]float64{240: 3}))
	s := acc.Sum()
	if s.Dim != 250 || s.NNZ() != 1 || s.Value[0] != 3 {
		t.Fatalf("post-grow Sum wrong: dim=%d nnz=%d", s.Dim, s.NNZ())
	}
}

// TestSteadyStateAllocs pins the reuse contract: once destinations are
// warm, the Into APIs do not touch the heap.
func TestSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randVec(rng, 400, 50)
	b := randVec(rng, 400, 50)
	dst := NewVector(400, 128)
	dense := make([]float64, 400)
	acc := NewAccumulator(400)
	sum := NewVector(400, 128)

	avg := testing.AllocsPerRun(100, func() {
		MergeInto(dst, a, b)
		dense = dst.ToDenseInto(dense)
		a.SliceInto(dst, 100, 300)
		acc.Add(a)
		acc.Add(b)
		acc.SumInto(sum)
	})
	if avg > 0 {
		t.Errorf("warmed Into cycle allocates %.1f times, want 0", avg)
	}
}
