// Package bench is the experiment harness: one driver per table/figure of
// the paper's evaluation (§5), each printing the same rows/series the
// paper reports. The drivers are shared by cmd/psra-bench and the
// repository-level testing.B benchmarks.
//
// Scale: the paper's corpora are multi-gigabyte and its cluster had 512
// cores; the harness defaults to scaled-down synthetic datasets with the
// same *shape* (see internal/dataset) and a virtual cluster clock (see
// internal/simnet). Expected fidelity is ordering and trend, not absolute
// seconds — EXPERIMENTS.md records both sides.
package bench

import (
	"fmt"
	"io"
	"sync"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the report (required).
	Out io.Writer
	// Seed drives dataset generation and straggler injection. Default 1.
	Seed int64
	// MaxIter is the outer iteration budget per run (paper: 100).
	MaxIter int
	// Quick shrinks sweeps (fewer sizes, fewer iterations, one dataset)
	// so the full suite runs in seconds; used by tests and testing.B.
	Quick bool
	// Rho and Lambda are the ADMM penalty and L1 weight (paper: λ = 1).
	Rho, Lambda float64
	// CSV emits tables as CSV instead of aligned text.
	CSV bool
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxIter <= 0 {
		if o.Quick {
			o.MaxIter = 12
		} else {
			o.MaxIter = 100
		}
	}
	if o.Rho <= 0 {
		o.Rho = 1
	}
	if o.Lambda <= 0 {
		o.Lambda = 1
	}
}

// BenchDatasets returns the experiment datasets: scaled-down synthetic
// stand-ins for Table 1's corpora preserving their relative shapes —
// webspam-like has the highest dimension and densest rows, url-like the
// most rows, news20-like is the smallest. Quick mode uses a single small
// dataset.
func BenchDatasets(seed int64, quick bool) []dataset.SynthConfig {
	if quick {
		return []dataset.SynthConfig{{
			Name: "news20", Dim: 24000, TrainRows: 640, TestRows: 160,
			RowNNZ: 15, ZipfS: 1.3, SignalNNZ: 60, NoiseFlip: 0.02, Seed: seed,
		}}
	}
	return []dataset.SynthConfig{
		{
			Name: "news20", Dim: 90000, TrainRows: 2560, TestRows: 640,
			RowNNZ: 40, ZipfS: 1.3, SignalNNZ: 120, NoiseFlip: 0.02, Seed: seed,
		},
		{
			Name: "webspam", Dim: 180000, TrainRows: 3840, TestRows: 960,
			RowNNZ: 80, ZipfS: 1.2, SignalNNZ: 200, NoiseFlip: 0.01, Seed: seed + 1,
		},
		{
			Name: "url", Dim: 120000, TrainRows: 5120, TestRows: 1280,
			RowNNZ: 25, ZipfS: 1.15, SignalNNZ: 150, NoiseFlip: 0.03, Seed: seed + 2,
		},
	}
}

// loaded pairs a generated dataset with its test split and cached
// reference optimum.
type loaded struct {
	cfg   dataset.SynthConfig
	train *dataset.Dataset
	test  *dataset.Dataset

	fstarOnce sync.Once
	fstar     float64
	fstarErr  error
}

var (
	loadMu    sync.Mutex
	loadCache = map[string]*loaded{}
)

// load generates (or returns the cached) dataset for cfg.
func load(cfg dataset.SynthConfig) (*loaded, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", cfg.Name, cfg.Dim, cfg.TrainRows, cfg.RowNNZ, cfg.Seed)
	loadMu.Lock()
	defer loadMu.Unlock()
	if l, ok := loadCache[key]; ok {
		return l, nil
	}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %s: %w", cfg.Name, err)
	}
	l := &loaded{cfg: cfg, train: train, test: test}
	loadCache[key] = l
	return l, nil
}

// referenceOptimum returns the cached f* for the loaded dataset.
func (l *loaded) referenceOptimum(rho, lambda float64) (float64, error) {
	l.fstarOnce.Do(func() {
		l.fstar, _, l.fstarErr = core.ReferenceOptimum(l.train, rho, lambda, 150)
	})
	return l.fstar, l.fstarErr
}

// runCfg builds the common Config for a paper experiment.
func runCfg(alg core.Algorithm, nodes, wpn int, opts Options) core.Config {
	return core.Config{
		Algorithm:      alg,
		Topo:           simnet.Topology{Nodes: nodes, WorkersPerNode: wpn},
		Rho:            opts.Rho,
		Lambda:         opts.Lambda,
		MaxIter:        opts.MaxIter,
		GroupThreshold: (nodes + 1) / 2, // paper: GQ = half the nodes
		MinBarrier:     nodes * wpn / 2, // paper: half the workers
		MaxDelay:       5,               // paper setting
		// Real clusters never have perfectly uniform compute times; this
		// mild deterministic variance is what exposes the SSP baselines'
		// staleness (DESIGN.md §2).
		Jitter: simnet.Jitter{Seed: opts.Seed + 1000, Amp: 0.6},
		// Bandwidths are scaled down ~10× to preserve the paper's
		// communication-to-computation ratio at our reduced dimensions
		// (DESIGN.md §2: the datasets are ~45× lower-dimensional than the
		// corpora, so unscaled links would make every transfer invisible).
		Cost: simnet.Tianhe2Like().ScaleBandwidth(3).ScaleCompute(10),
		// Loose inner solves, the custom for inexact ADMM: the outer
		// iterations absorb subproblem slack.
		Tron: solver.TronOptions{MaxIter: 8, MaxCG: 15},
	}
}

// render writes a metrics table per the CSV option.
type tableRenderer interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

func emit(opts Options, t tableRenderer) error {
	if opts.CSV {
		return t.RenderCSV(opts.Out)
	}
	return t.Render(opts.Out)
}

// Experiments maps experiment ids to drivers, in paper order.
func Experiments() []struct {
	ID   string
	Desc string
	Run  func(Options) error
} {
	return []struct {
		ID   string
		Desc string
		Run  func(Options) error
	}{
		{"table1", "dataset summary (paper Table 1)", Table1},
		{"fig5", "relative error vs iteration (paper Figure 5)", Fig5},
		{"fig6", "system time and accuracy vs cluster size (paper Figure 6)", Fig6},
		{"fig7", "dynamic grouping under stragglers (paper Figure 7)", Fig7},
		{"costmodel", "Ring vs PSR sparse cost envelopes (paper eqs. 11-16)", CostModel},
		{"tte", "time to fixed relative error (derived from Figures 5+6)", TimeToError},
		{"ablation", "design-choice ablations (DESIGN.md §5)", Ablation},
		{"zoo", "every registered algorithm variant side by side", Zoo},
	}
}

// RunExperiment dispatches by id; "all" runs the full suite in order.
func RunExperiment(id string, opts Options) error {
	if id == "all" {
		for _, e := range Experiments() {
			if err := e.Run(opts); err != nil {
				return fmt.Errorf("bench: %s: %w", e.ID, err)
			}
			fmt.Fprintln(opts.Out)
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(opts)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}
