package bench

import (
	"strings"
	"testing"
)

// runQuick executes an experiment driver in quick mode and returns its
// report text.
func runQuick(t *testing.T, id string) string {
	t.Helper()
	var sb strings.Builder
	opts := Options{Out: &sb, Quick: true, Seed: 1, MaxIter: 6}
	if err := RunExperiment(id, opts); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return sb.String()
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("malformed experiment entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig5", "fig6", "fig7", "costmodel", "ablation"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
	if err := RunExperiment("nope", Options{Out: &strings.Builder{}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Output(t *testing.T) {
	out := runQuick(t, "table1")
	for _, want := range []string{"news20", "1355191", "16000", "dimension"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Output(t *testing.T) {
	out := runQuick(t, "fig5")
	for _, want := range []string{"Figure 5", "psra-hgadmm", "admmlib", "ad-admm", "final relative error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 missing %q", want)
		}
	}
	// The series must contain numeric relative errors, not NaN dashes.
	if strings.Contains(out, " -  ") && !strings.Contains(out, "0.") {
		t.Fatal("fig5 series look empty")
	}
}

func TestFig6Output(t *testing.T) {
	out := runQuick(t, "fig6")
	for _, want := range []string{"Figure 6", "cal_time", "comm_time", "system_time", "accuracy",
		"headline[news20]: system time", "communication volume"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 missing %q", want)
		}
	}
}

func TestFig7Output(t *testing.T) {
	out := runQuick(t, "fig7")
	for _, want := range []string{"Figure 7", "dynamic-grouping", "ungrouped", "comm time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q", want)
		}
	}
}

func TestCostModelOutput(t *testing.T) {
	out := runQuick(t, "costmodel")
	for _, want := range []string{"ring_time", "psr_time", "rhd_time", "one-block", "uniform"} {
		if !strings.Contains(out, want) {
			t.Fatalf("costmodel missing %q", want)
		}
	}
}

func TestAblationOutput(t *testing.T) {
	out := runQuick(t, "ablation")
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "quantized", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation missing %q", want)
		}
	}
}

func TestCSVMode(t *testing.T) {
	var sb strings.Builder
	opts := Options{Out: &sb, Quick: true, MaxIter: 3, CSV: true}
	if err := RunExperiment("table1", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dataset,dimension") {
		t.Fatalf("CSV header missing:\n%s", sb.String())
	}
}

func TestBenchDatasetsShapes(t *testing.T) {
	full := BenchDatasets(1, false)
	if len(full) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(full))
	}
	names := []string{"news20", "webspam", "url"}
	for i, cfg := range full {
		if cfg.Name != names[i] {
			t.Fatalf("dataset %d = %s", i, cfg.Name)
		}
	}
	// Relative ordering mirrors Table 1: webspam highest-dim and densest
	// rows, url most rows.
	if !(full[1].Dim > full[2].Dim && full[2].Dim > full[0].Dim) {
		t.Fatal("dimension ordering broken")
	}
	if !(full[2].TrainRows > full[1].TrainRows && full[1].TrainRows > full[0].TrainRows) {
		t.Fatal("row ordering broken")
	}
	if !(full[1].RowNNZ > full[0].RowNNZ && full[0].RowNNZ > full[2].RowNNZ) {
		t.Fatal("row-density ordering broken")
	}
	quick := BenchDatasets(1, true)
	if len(quick) != 1 {
		t.Fatalf("quick mode should use 1 dataset, got %d", len(quick))
	}
}

func TestLoadCachesDatasets(t *testing.T) {
	cfg := BenchDatasets(1, true)[0]
	a, err := load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("load did not cache")
	}
	fa, err := a.referenceOptimum(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.referenceOptimum(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatal("reference optimum not cached")
	}
}
