package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	train, test := testData(t, 80)
	cfg := baseConfig(PSRAHGADMM, 2, 2)
	cfg.MaxIter = 6
	cfg.EvalEvery = 3 // some iterations carry NaN objective → null in JSON
	res, err := Run(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into JSON")
	}
	if !strings.Contains(out, `"objective": null`) {
		t.Fatal("skipped evaluations should serialize as null")
	}
	// Round-trip through generic JSON to prove validity and shape.
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed["algorithm"] != "psra-hgadmm" {
		t.Fatalf("algorithm = %v", parsed["algorithm"])
	}
	hist, ok := parsed["history"].([]any)
	if !ok || len(hist) != 6 {
		t.Fatalf("history length = %d", len(hist))
	}
	first := hist[0].(map[string]any)
	for _, key := range []string{"iter", "objective", "cal_time_s", "comm_time_s", "bytes", "primal_res", "dual_res", "rho"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("history entry missing %q", key)
		}
	}
	if parsed["nodes"].(float64) != 2 || parsed["workers_per_node"].(float64) != 2 {
		t.Fatal("topology fields wrong")
	}
}
