// Package psrahgadmm is a Go implementation of PSRA-HGADMM — the
// communication-efficient distributed consensus ADMM of Qiu, Lei & Wang
// (ICPP 2023) — together with every substrate it needs and the baselines
// it is evaluated against.
//
// The library trains L1-regularized logistic regression (and, through the
// solver package, other smooth-plus-prox objectives) across a cluster of
// workers using the global consensus ADMM recursion, with the paper's
// three stacked ideas:
//
//   - a decentralized rewrite of the z-update so consensus is a single
//     Allreduce of w_i = y_i + ρ·x_i per iteration;
//   - PSR-Allreduce, a parameter-server-flavoured Ring-Allreduce variant
//     whose sparse-data worst case is N× better than the ring's;
//   - the Worker-Leader-Group generator (WLG) hierarchy: intra-node BSP
//     reduction to an elected Leader, and dynamic arrival-ordered Leader
//     groups that keep fast nodes from idling behind stragglers.
//
// Two execution paths share the algorithm code:
//
//   - Train runs the deterministic experiment engine: real numerics and
//     real collective schedules under a simulated cluster clock
//     (bit-reproducible; used for all paper-figure experiments).
//   - The wlg runtime (see RunWorker/RunGG in internal/wlg, exercised by
//     cmd/psra-worker and the tcpcluster example) runs the same
//     algorithm as a genuine message-passing program over in-process
//     channels or a TCP mesh.
//
// Quickstart:
//
//	train, test, _ := psrahgadmm.Generate(psrahgadmm.News20Like(0.001, 42))
//	cfg := psrahgadmm.Config{
//		Algorithm: psrahgadmm.PSRAHGADMM,
//		Topo:      psrahgadmm.Topology{Nodes: 4, WorkersPerNode: 2},
//		Rho:       1, Lambda: 1, MaxIter: 50,
//	}
//	res, err := psrahgadmm.Train(cfg, train, psrahgadmm.RunOptions{Test: test})
package psrahgadmm

import (
	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/core"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/watchdog"
)

// Core configuration and result types.
type (
	// Config parameterizes a training run; see internal/core for field
	// documentation.
	Config = core.Config
	// RunOptions carries optional evaluation inputs (test set, reference
	// optimum, progress callback).
	RunOptions = core.RunOptions
	// Result is a completed run: per-iteration history, final iterate,
	// virtual-time and byte totals.
	Result = core.Result
	// IterStat is one iteration's record.
	IterStat = core.IterStat
	// Algorithm names a registered consensus-ADMM variant.
	Algorithm = core.Algorithm
	// Variant is one registry entry: an algorithm name bound to a
	// (consensus, sync, codec) strategy triple.
	Variant = core.Variant
	// ConsensusKind names a consensus strategy (how W is aggregated and z
	// redistributed): star, ring, flat PSR, staged tree, or group-local.
	ConsensusKind = core.ConsensusKind
	// SyncKind names a synchronization model (when a round admits its
	// participants): BSP, SSP, or bounded-delay async.
	SyncKind = core.SyncKind
	// ExchangeKind names a wire codec (what travels): exact sparse,
	// quantized sparse, dense fp64, or dense fp32.
	ExchangeKind = exchange.Kind
	// ConsensusMode selects PSRA-HGADMM's aggregation breadth.
	ConsensusMode = core.ConsensusMode
	// Topology is the virtual cluster layout (nodes × workers/node).
	Topology = simnet.Topology
	// CostModel is the α/β virtual-time model.
	CostModel = simnet.CostModel
	// Stragglers injects deterministic slow nodes.
	Stragglers = simnet.Stragglers
	// Jitter injects deterministic per-worker compute variance.
	Jitter = simnet.Jitter
	// Dataset is a labeled sparse design matrix.
	Dataset = dataset.Dataset
	// SynthConfig parameterizes the synthetic dataset generator.
	SynthConfig = dataset.SynthConfig
	// CheckpointOptions enables periodic snapshots for Train (and resume
	// from the latest one); see RunOptions.Checkpoint.
	CheckpointOptions = core.CheckpointOptions
	// CheckpointStore persists snapshot blobs (directory-backed or
	// in-memory).
	CheckpointStore = checkpoint.Store
	// WatchdogConfig tunes the divergence watchdog (Config.Watchdog):
	// NaN/Inf scanning over the iterates plus sliding-window explosion
	// detection on residuals and objective, with checkpoint auto-rollback
	// when RunOptions.Checkpoint is set.
	WatchdogConfig = watchdog.Config
	// RollbackEvent records one watchdog-triggered checkpoint rollback
	// (see Result.Rollbacks).
	RollbackEvent = core.RollbackEvent
	// ScreenConfig tunes the contribution screen (Config.Screen): per-rank
	// outlier scoring of every contribution entering a consensus reduce,
	// with sustained outliers quarantined and re-admitted after clean
	// probes (see Config.QuarantineRounds).
	ScreenConfig = watchdog.ScreenConfig
	// QuarantineEvent records one screen-triggered membership transition
	// (see Result.Quarantines).
	QuarantineEvent = core.QuarantineEvent
)

// ErrDiverged is the sentinel every watchdog abort wraps: errors.Is
// distinguishes "training went numerically wrong and could not be rolled
// back" from infrastructure failures.
var ErrDiverged = watchdog.ErrDiverged

// ErrQuorumLost is the sentinel every "robust quorum unreachable" abort
// wraps: more ranks are quarantined than the robust aggregator tolerates
// (Config.TrimF for trimmed-mean, a minority for the median), so the
// remaining faulty minority could dominate the trim.
var ErrQuorumLost = watchdog.ErrQuorumLost

// The consensus reduce statistics (Config.Aggregator).
const (
	// AggregatorMean is the exact sum-then-divide consensus every paper
	// algorithm specifies — the default, bit-identical to runs predating
	// the Aggregator axis.
	AggregatorMean = collective.AggMeanName
	// AggregatorTrimmedMean drops the Config.TrimF largest and smallest
	// contributions per coordinate before averaging — robust to TrimF
	// Byzantine ranks.
	AggregatorTrimmedMean = collective.AggTrimmedMeanName
	// AggregatorMedian takes the coordinate-wise median — robust to any
	// faulty minority.
	AggregatorMedian = collective.AggMedianName
)

// The implemented algorithms.
const (
	// PSRAHGADMM is the paper's contribution: hierarchical grouping
	// consensus ADMM with PSR-Allreduce.
	PSRAHGADMM = core.PSRAHGADMM
	// PSRAADMM is the flat variant: one cluster-wide PSR-Allreduce.
	PSRAADMM = core.PSRAADMM
	// GRADMM is the static-grouping Ring-Allreduce predecessor (paper
	// ref. [9]).
	GRADMM = core.GRADMM
	// ADMMLib is the hierarchical Ring-Allreduce + SSP baseline.
	ADMMLib = core.ADMMLib
	// ADADMM is the asynchronous master-worker baseline.
	ADADMM = core.ADADMM
	// GCADMM is classic synchronous master-worker consensus ADMM.
	GCADMM = core.GCADMM
	// PSRAHGADMMGroup is the group-local consensus reading as a named
	// variant (equivalent to PSRAHGADMM with Consensus: ConsensusGroup).
	PSRAHGADMMGroup = core.PSRAHGADMMGroup
	// PSRAHGADMMSSPQ8 composes the staged aggregation tree with SSP
	// admission and an 8-bit quantized sparse exchange — a combination the
	// pre-registry engine could not express.
	PSRAHGADMMSSPQ8 = core.PSRAHGADMMSSPQ8
	// PSRAADMMAsync drives the flat PSR-Allreduce asynchronously.
	PSRAADMMAsync = core.PSRAADMMAsync
	// GRADMMSSP runs GR-ADMM's sparse Leader ring under SSP.
	GRADMMSSP = core.GRADMMSSP
	// PSRAHGADMMSharded is the staged aggregation tree with block-sharded
	// consensus state: no rank holds the full model (see Config.ShardedState
	// for the same bit on other variants).
	PSRAHGADMMSharded = core.PSRAHGADMMSharded
	// PSRAHGADMMShardedSSP composes block-sharded state with node-granular
	// SSP: stale nodes' cached contributions keep feeding their blocks for
	// up to Max_delay rounds while the fresh quorum advances.
	PSRAHGADMMShardedSSP = core.PSRAHGADMMShardedSSP
	// PSRAHGADMMShardedAsync drives the block-sharded aggregation tree
	// asynchronously (quorum of one, bounded delay).
	PSRAHGADMMShardedAsync = core.PSRAHGADMMShardedAsync
	// PSRAADMMRobust is the flat PSR-Allreduce with a trimmed-mean robust
	// consensus reduce: convergence within the robust consensus bias under
	// up to TrimF Byzantine ranks.
	PSRAADMMRobust = core.PSRAADMMRobust
	// PSRAHGADMMRobust is the staged aggregation tree forced to a single
	// combine point with a trimmed-mean reduce (robust statistics are
	// non-associative, so the tree's merges collapse into one).
	PSRAHGADMMRobust = core.PSRAHGADMMRobust
	// GCADMMMedian is classic master-worker consensus ADMM with a
	// coordinate-median reduce at the master.
	GCADMMMedian = core.GCADMMMedian
	// PSRAADMMShardedRobust composes block-sharded consensus state with the
	// trimmed-mean reduce: each shard owner trims its own blocks.
	PSRAADMMShardedRobust = core.PSRAADMMShardedRobust
)

// PSRA-HGADMM consensus modes (see Config.Consensus).
const (
	ConsensusGlobal = core.ConsensusGlobal
	ConsensusGroup  = core.ConsensusGroup
)

// Train runs L1-regularized logistic regression with the configured
// algorithm over the virtual cluster and returns the per-iteration
// history. Runs are deterministic: equal inputs give bit-identical
// histories.
func Train(cfg Config, train *Dataset, opts RunOptions) (*Result, error) {
	return core.Run(cfg, train, opts)
}

// Algorithms lists every registered variant name in registration order
// (the paper's six first, then the named strategy compositions).
func Algorithms() []Algorithm { return core.Algorithms() }

// Variants lists every registered variant with its strategy triple and
// description, in registration order.
func Variants() []Variant { return core.Variants() }

// RegisterVariant adds a custom algorithm to the registry: any valid
// (consensus, sync, codec) triple becomes runnable by name through Train.
// It panics on duplicate names or inexpressible combinations, matching the
// package-init-time semantics of the built-in registrations.
func RegisterVariant(v Variant) { core.Register(v) }

// ReferenceOptimum computes a tight approximation of the global optimum
// f* (the denominator of the paper's relative-error metric, eq. 18).
func ReferenceOptimum(train *Dataset, rho, lambda float64, iters int) (float64, []float64, error) {
	return core.ReferenceOptimum(train, rho, lambda, iters)
}

// NewDirCheckpointStore returns a crash-safe file-backed checkpoint store
// (one atomically-replaced snapshot file inside dir) for
// CheckpointOptions.Store.
func NewDirCheckpointStore(dir string) (CheckpointStore, error) {
	return checkpoint.NewDirStore(dir, "")
}

// Generate builds a synthetic dataset (train and test splits)
// deterministically from cfg.Seed.
func Generate(cfg SynthConfig) (train, test *Dataset, err error) {
	return dataset.Generate(cfg)
}

// Dataset presets mirroring the paper's Table 1 corpora shapes at a given
// scale in (0, 1].
var (
	News20Like  = dataset.News20Like
	WebspamLike = dataset.WebspamLike
	URLLike     = dataset.URLLike
)

// Tianhe2Like returns the virtual cluster cost model shaped after the
// paper's platform.
func Tianhe2Like() CostModel { return simnet.Tianhe2Like() }
