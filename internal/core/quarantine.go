package core

import (
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/watchdog"
)

// Quarantine protocol for the in-process engine — the semantic-fault rung
// of the failure ladder. Crash faults are caught by the transport
// (PeerDownError) and absorbed by elastic membership; a Byzantine rank
// never crashes, it keeps sending poison. The contribution screen scores
// every encoded contribution at the encodeSparse chokepoint; this file
// turns sustained strikes into membership facts at iteration boundaries:
//
//	quarantined:  excluded from every collective, every z-update divisor,
//	              and every shard live-subscriber count (all of which read
//	              membership.Tracker.Alive) — but NOT transport-dead. The
//	              rank's state freezes; its endpoint stays open.
//	probing:      each iteration the engine rebuilds the rank's would-be
//	              contribution locally (poison schedule still applied) and
//	              screens it without shipping a byte.
//	re-admission: QuarantineRounds consecutive clean probes warm-start the
//	              rank from the cluster's current iterate, reset its codec
//	              error-feedback and screen baseline, and return it to the
//	              live set — the same rejoin mechanics a crash recovery
//	              uses, minus the fabric revive it never needed.
//
// The robust quorum bound lives here too: a robust aggregator tolerates f
// faulty contributors (TrimF for trimmed-mean, a minority for the median);
// once MORE than f ranks are quarantined the trim can no longer out-vote
// the remaining poison and the run aborts with watchdog.ErrQuorumLost
// (exit code 6 in psra-worker).

// quarantineCtl is the engine's per-run quarantine state.
type quarantineCtl struct {
	clean []int          // consecutive clean probes per rank
	probe *sparse.Vector // probe contribution scratch (never shipped)
	fTol  int            // robust tolerance f; -1 when no robust aggregator
}

// newQuarantineCtl sizes the controller for the world; fTol is derived
// from the aggregator: trimmed-mean tolerates TrimF per side, the
// coordinate median a minority, and the mean nothing (no bound is
// enforced — quarantine under mean only ever removes poison from an exact
// sum, like an elastic death).
func newQuarantineCtl(cfg Config, agg collective.AggSpec) *quarantineCtl {
	q := &quarantineCtl{
		clean: make([]int, cfg.Topo.Size()),
		probe: new(sparse.Vector),
		fTol:  -1,
	}
	switch agg.Kind {
	case collective.AggTrimmedMean:
		q.fTol = agg.TrimF
	case collective.AggMedian:
		q.fTol = (cfg.Topo.Size() - 1) / 2
	}
	return q
}

// sweep runs the quarantine state machine at the end of iteration iter:
// probe the quarantined (and possibly readmit), quarantine fresh strike
// limits, then enforce the robust quorum bound. zPrev is the cluster's
// last completed iterate — the warm start a readmitted rank resumes from.
func (q *quarantineCtl) sweep(env *strategyEnv, cfg Config, iter int, zPrev []float64, res *Result) error {
	members := env.members
	limit := env.screen.StrikeLimit()

	// Probe quarantined ranks. The rank's x/y froze at quarantine, so the
	// clean part of its contribution is constant; what the probe tracks is
	// the poison schedule riding on top. A flagged probe resets the clean
	// streak; QuarantineRounds clean ones in a row re-admit.
	for r := range env.ws {
		if !members.Quarantined(r) {
			continue
		}
		v := env.ws[r].wSparseInto(q.probe, cfg.Rho)
		if env.byz != nil {
			env.poisonSparse(r, v)
		}
		if env.screen.ObserveSparse(r, v) {
			q.clean[r] = 0
		} else {
			q.clean[r]++
		}
		q.probe = v
		if q.clean[r] < cfg.QuarantineRounds {
			continue
		}
		// Re-admission: the same warm-start mechanics a crash rejoin uses
		// (store.rejoin + codec reset), except the fabric never closed —
		// the rank was excluded, not dead. The screen baseline resets:
		// the returning regime must earn a fresh one.
		var maxClock float64
		for _, w := range env.liveWorkers() {
			if w.clock > maxClock {
				maxClock = w.clock
			}
		}
		members.Unquarantine(r)
		env.store.rejoin(env.ws[r], zPrev, maxClock)
		if env.states != nil {
			env.states[r].Reset()
		}
		env.screen.Reset(r)
		q.clean[r] = 0
		res.Quarantines = append(res.Quarantines, QuarantineEvent{Rank: r, Iter: iter, Readmitted: true})
	}

	// Fresh quarantines: a live rank whose consecutive-flag count reached
	// the strike limit leaves the live set at this boundary. Its pending
	// compute is pruned by the strategies' reconcile on the next round.
	for r := range env.ws {
		if members.Quarantined(r) || !members.Alive(r) {
			continue
		}
		if env.screen.Strikes(r) >= limit {
			members.Quarantine(r, fmt.Errorf("contribution screen: %d consecutive outlier contributions at iteration %d", limit, iter))
			q.clean[r] = 0
			res.Quarantines = append(res.Quarantines, QuarantineEvent{Rank: r, Iter: iter})
		}
	}

	if q.fTol >= 0 && members.QuarantinedCount() > q.fTol {
		return &watchdog.QuorumError{Quarantined: members.QuarantinedCount(), F: q.fTol}
	}
	return nil
}
