package collective

import (
	"fmt"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// RingAllreduceSparse sums the members' sparse vectors (all of dimension
// v.Dim) with the ring schedule, transmitting only nonzeros. The returned
// vector is the global sum. Unlike the dense variant, per-step message
// sizes depend on where the nonzeros sit — which is exactly the sensitivity
// the paper analyzes in eqs. (11)–(13): a block that accumulates all the
// nonzeros grows linearly as it travels the ring.
func RingAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2 * (p - 1)}
	if p == 1 {
		return v.Clone(), tr, nil
	}
	chunks := vec.Split(v.Dim, p)
	next := g.Ranks[(me+1)%p]
	prev := g.Ranks[(me-1+p)%p]

	// blocks[j] is this member's current (partially reduced) copy of block j.
	blocks := make([]*sparse.Vector, p)
	for j, c := range chunks {
		blocks[j] = v.Slice(c.Lo, c.Hi)
	}

	for s := 0; s < p-1; s++ {
		sendIdx := (me - s + p*p) % p
		recvIdx := (me - s - 1 + p*p) % p
		msg := wire.SparseMsg(tagBase, blocks[sendIdx])
		bytes := wire.PayloadBytes(msg)
		errc := sendAsync(ep, next, msg)
		in, err := ep.Recv(prev, tagBase)
		if err != nil {
			return nil, tr, err
		}
		if err := <-errc; err != nil {
			return nil, tr, err
		}
		tr.add(s, ep.Rank(), next, bytes)
		if in.Sparse.Dim != blocks[recvIdx].Dim {
			return nil, tr, fmt.Errorf("collective: ring sparse block dim %d, want %d", in.Sparse.Dim, blocks[recvIdx].Dim)
		}
		blocks[recvIdx] = sparse.Merge(blocks[recvIdx], in.Sparse)
	}

	for s := 0; s < p-1; s++ {
		sendIdx := (me + 1 - s + p*p) % p
		recvIdx := (me - s + p*p) % p
		msg := wire.SparseMsg(tagBase+1, blocks[sendIdx])
		bytes := wire.PayloadBytes(msg)
		errc := sendAsync(ep, next, msg)
		in, err := ep.Recv(prev, tagBase+1)
		if err != nil {
			return nil, tr, err
		}
		if err := <-errc; err != nil {
			return nil, tr, err
		}
		tr.add(p-1+s, ep.Rank(), next, bytes)
		if in.Sparse.Dim != blocks[recvIdx].Dim {
			return nil, tr, fmt.Errorf("collective: ring sparse gather dim %d, want %d", in.Sparse.Dim, blocks[recvIdx].Dim)
		}
		blocks[recvIdx] = in.Sparse
	}

	offsets := make([]int, p)
	for j, c := range chunks {
		offsets[j] = c.Lo
	}
	return sparse.Concat(v.Dim, offsets, blocks), tr, nil
}

// PSRAllreduceSparse sums the members' sparse vectors with the paper's
// PSR-Allreduce schedule: block j goes straight to owner j (one
// Scatter-Reduce step), then each owner sends its finished block to every
// other member (one Allgather step). Sparse cost is bounded by c·θ in the
// scatter step and c·θ·(N−1) in the gather step (paper eqs. 14–15),
// independent of where the nonzeros concentrate — the robustness property
// PSRA-HGADMM is built on.
func PSRAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2}
	if p == 1 {
		return v.Clone(), tr, nil
	}
	chunks := vec.Split(v.Dim, p)
	mine := chunks[me]

	// Scatter-Reduce: send block j to its owner, accumulate arrivals into
	// my own block.
	errcs := make([]chan error, 0, p-1)
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		blk := v.Slice(chunks[j].Lo, chunks[j].Hi)
		msg := wire.SparseMsg(tagBase, blk)
		tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(msg))
		errcs = append(errcs, sendAsync(ep, g.Ranks[j], msg))
	}
	// Collect contributions first, then reduce in member order so float
	// association is independent of arrival order (bit-reproducibility).
	arrivals := make([]*sparse.Vector, p)
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return nil, tr, err
		}
		if in.Sparse.Dim != mine.Hi-mine.Lo {
			return nil, tr, fmt.Errorf("collective: psr sparse scatter dim %d, want %d", in.Sparse.Dim, mine.Hi-mine.Lo)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return nil, tr, fmt.Errorf("collective: psr sparse scatter unexpected sender %d", in.From)
		}
		arrivals[src] = in.Sparse
	}
	arrivals[me] = v.Slice(mine.Lo, mine.Hi)
	acc := sparse.NewAccumulator(mine.Hi - mine.Lo)
	for _, a := range arrivals {
		if a != nil {
			acc.Add(a)
		}
	}
	for _, c := range errcs {
		if err := <-c; err != nil {
			return nil, tr, err
		}
	}
	myBlock := acc.Sum()

	// Allgather: broadcast my finished block, collect the rest.
	errcs = errcs[:0]
	msg := wire.SparseMsg(tagBase+1, myBlock)
	bytes := wire.PayloadBytes(msg)
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		tr.add(1, ep.Rank(), g.Ranks[j], bytes)
		errcs = append(errcs, sendAsync(ep, g.Ranks[j], msg))
	}
	blocks := make([]*sparse.Vector, p)
	blocks[me] = myBlock
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return nil, tr, err
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me {
			return nil, tr, fmt.Errorf("collective: psr sparse gather from unexpected rank %d", in.From)
		}
		if in.Sparse.Dim != chunks[src].Hi-chunks[src].Lo {
			return nil, tr, fmt.Errorf("collective: psr sparse gather dim %d, want %d", in.Sparse.Dim, chunks[src].Hi-chunks[src].Lo)
		}
		blocks[src] = in.Sparse
	}
	for _, c := range errcs {
		if err := <-c; err != nil {
			return nil, tr, err
		}
	}
	offsets := make([]int, p)
	for j, c := range chunks {
		offsets[j] = c.Lo
	}
	return sparse.Concat(v.Dim, offsets, blocks), tr, nil
}

// ReduceSparse sums every member's vector at the root member and returns
// the sum there; non-root members receive nil.
func ReduceSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return nil, Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if me != rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		if err := ep.Send(g.Ranks[rootIdx], msg); err != nil {
			return nil, tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[rootIdx], wire.PayloadBytes(msg))
		return nil, tr, nil
	}
	arrivals := make([]*sparse.Vector, g.Size())
	for j := 0; j < g.Size()-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return nil, tr, err
		}
		if in.Sparse.Dim != v.Dim {
			return nil, tr, fmt.Errorf("collective: sparse reduce dim %d, want %d", in.Sparse.Dim, v.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return nil, tr, fmt.Errorf("collective: sparse reduce unexpected sender %d", in.From)
		}
		arrivals[src] = in.Sparse
	}
	arrivals[me] = v
	acc := sparse.NewAccumulator(v.Dim)
	for _, a := range arrivals {
		if a != nil {
			acc.Add(a)
		}
	}
	return acc.Sum(), tr, nil
}

// BroadcastSparse sends the root's vector to every member and returns each
// member's copy (the root gets its own vector back unchanged).
func BroadcastSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return nil, Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if me == rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		bytes := wire.PayloadBytes(msg)
		errcs := make([]chan error, 0, g.Size()-1)
		for j := 0; j < g.Size(); j++ {
			if j == rootIdx {
				continue
			}
			tr.add(0, ep.Rank(), g.Ranks[j], bytes)
			errcs = append(errcs, sendAsync(ep, g.Ranks[j], msg))
		}
		for _, c := range errcs {
			if err := <-c; err != nil {
				return nil, tr, err
			}
		}
		return v, tr, nil
	}
	in, err := ep.Recv(g.Ranks[rootIdx], tagBase)
	if err != nil {
		return nil, tr, err
	}
	return in.Sparse, tr, nil
}
