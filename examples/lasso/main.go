// Consensus lasso over the WLG runtime: the engine's building blocks
// (TRON, the prox z-update, the Worker-Leader-Group generator) are
// objective-generic — here they solve
//
//	min_x ½‖Ax − b‖² + λ‖x‖₁
//
// distributed across 3 nodes × 2 workers as a *real* message-passing
// program (goroutines over the channel fabric, the same code path the TCP
// cluster uses), not the simulation engine.
//
//	go run ./examples/lasso
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wlg"
)

const (
	dim     = 200
	rows    = 240 // total samples
	rho     = 1.0
	lambda  = 0.5
	maxIter = 60
)

func main() {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	nWorkers := topo.Size()

	// Plant a sparse ground truth and synthesize A·x* + noise = b.
	r := rand.New(rand.NewSource(7))
	xTrue := make([]float64, dim)
	for i := 0; i < 12; i++ {
		xTrue[r.Intn(dim)] = r.NormFloat64() * 3
	}
	shardsA := make([]*sparse.CSR, nWorkers)
	shardsB := make([][]float64, nWorkers)
	perShard := rows / nWorkers
	for s := 0; s < nWorkers; s++ {
		m := sparse.NewCSR(0, dim, 0)
		b := make([]float64, perShard)
		for i := 0; i < perShard; i++ {
			var cols []int32
			var vals []float64
			for c := 0; c < dim; c++ {
				if r.Float64() < 0.1 {
					cols = append(cols, int32(c))
					vals = append(vals, r.NormFloat64())
				}
			}
			m.AppendRow(cols, vals)
			b[i] = m.RowDot(i, xTrue) + 0.01*r.NormFloat64()
		}
		shardsA[s] = m
		shardsB[s] = b
	}

	// One endpoint per worker plus the Group Generator.
	fab := transport.NewChanFabric(wlg.WorldSize(topo))
	defer fab.Close()
	cfg := wlg.Config{Topo: topo, MaxIter: maxIter, GroupThreshold: 0}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wlg.RunGG(fab.Endpoint(wlg.GGRank(topo)), cfg); err != nil {
			log.Fatal(err)
		}
	}()

	finalZ := make([][]float64, nWorkers)
	for rank := 0; rank < nWorkers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			x := make([]float64, dim)
			y := make([]float64, dim)
			z := make([]float64, dim)
			w := make([]float64, dim)
			obj := solver.NewLeastSquaresProx(shardsA[rank], shardsB[rank], rho, y, z)
			funcs := wlg.WorkerFuncs{
				ComputeW: func(iter int) []float64 {
					solver.TRON(obj, x, solver.TronOptions{MaxIter: 15})
					solver.WLocal(w, y, x, rho)
					return w
				},
				ApplyW: func(iter int, bigW []float64, contributors int) {
					solver.ZUpdateL1(z, bigW, lambda, rho, contributors)
					solver.DualUpdate(y, x, z, rho)
					if rank == 0 && (iter%10 == 0 || iter == maxIter-1) {
						fmt.Printf("iter %2d  shard-0 residual %.4f  ‖z‖₀ = %d\n",
							iter+1, obj.LocalLoss(z), vec.CountNonzero(z))
					}
				},
			}
			if err := wlg.RunWorker(fab.Endpoint(rank), cfg, funcs); err != nil {
				log.Fatal(err)
			}
			finalZ[rank] = vec.Clone(z)
		}(rank)
	}
	wg.Wait()

	// All workers agree on z (exact consensus with one global group).
	for rank := 1; rank < nWorkers; rank++ {
		if !vec.WithinTol(finalZ[rank], finalZ[0], 1e-9) {
			log.Fatalf("worker %d diverged from consensus", rank)
		}
	}
	fmt.Printf("\nrecovered support %d (true %d), ‖ẑ − x*‖₂ = %.4f\n",
		vec.CountNonzero(finalZ[0]), vec.CountNonzero(xTrue),
		dist(finalZ[0], xTrue))
}

func dist(a, b []float64) float64 {
	d := make([]float64, len(a))
	vec.Sub(d, a, b)
	return vec.Nrm2(d)
}
