package wlg

import (
	"errors"
	"testing"
	"time"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
)

// happyFuncs returns trivially valid worker callbacks for rank r.
func happyFuncs(dim int) func(rank int) WorkerFuncs {
	return func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 { return rankVec(dim, rank) },
			ApplyW:   func(iter int, w []float64, n int) {},
		}
	}
}

func TestRunCompletesWithoutFaults(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 3, GroupThreshold: 2}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	if err := Run(fab, cfg, happyFuncs(3)); err != nil {
		t.Fatal(err)
	}
}

// TestRunAbortsOnWorkerDeath is the WLG-level no-hang guarantee: when one
// worker dies mid-run, Run must return an error instead of leaving the
// Leader (blocked on the dead worker's contribution), the GG, and the
// other workers deadlocked forever.
func TestRunAbortsOnWorkerDeath(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 20, GroupThreshold: 2}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{KillAfterSends: map[int]int{1: 3}},
	)
	defer fab.Close()

	done := make(chan error, 1)
	go func() { done <- Run(fab, cfg, happyFuncs(3)) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run succeeded despite a killed worker")
		}
		if errors.Is(err, transport.ErrTimeout) {
			t.Fatalf("death surfaced as a timeout: %v", err)
		}
		t.Logf("aborted with: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("Run deadlocked after worker death")
	}
}

// TestRunSurfacesTypedPeerError kills a Leader by fiat before the run
// starts. Its node's members address the Leader directly (targeted Send of
// their contribution, targeted Recv of the broadcast), so their very first
// touch of the dead rank must produce a *PeerDownError — and Run must
// prefer it over the abort's ErrClosed noise.
func TestRunSurfacesTypedPeerError(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 5, GroupThreshold: 2}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{},
	)
	defer fab.Close()
	fab.Kill(2) // Leader of node 1; rank 3 must report it by name

	done := make(chan error, 1)
	go func() { done <- Run(fab, cfg, happyFuncs(3)) }()
	select {
	case err := <-done:
		var pd *transport.PeerDownError
		if !errors.As(err, &pd) {
			t.Fatalf("err = %v, want *PeerDownError", err)
		}
		if pd.Peer != 2 {
			t.Fatalf("PeerDownError.Peer = %d, want 2", pd.Peer)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Run deadlocked after pre-run kill")
	}
}
