package collective

import (
	"errors"
	"fmt"
	"sync"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// ErrPayloadKind reports that a message of the wrong payload kind arrived
// on a sparse collective's tag — a protocol confusion (mis-tagged dense or
// control traffic) that must surface as an error on the receiving member,
// never as a nil-dereference panic.
var ErrPayloadKind = errors.New("collective: unexpected payload kind")

// sparsePayload validates that an arrival actually carries a sparse
// vector before any field of it is dereferenced.
func sparsePayload(in wire.Message) (*sparse.Vector, error) {
	if in.Kind != wire.KindSparse || in.Sparse == nil {
		return nil, fmt.Errorf("collective: tag %d from %d carries kind %v, want sparse: %w",
			in.Tag, in.From, in.Kind, ErrPayloadKind)
	}
	return in.Sparse, nil
}

// wsPool backs the package-level convenience wrappers: they run through
// pooled Workspaces instead of stack-allocating fresh scratch per call, so
// callers that have not migrated to the Workspace methods still amortize
// the block buffers. The wrappers copy the trace events out before
// returning the workspace (a Workspace's Events are valid only until its
// next call).
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

func detachTrace(tr Trace) Trace {
	if len(tr.Events) > 0 {
		tr.Events = append([]Event(nil), tr.Events...)
	} else {
		tr.Events = nil
	}
	return tr
}

// RingAllreduceSparse sums the members' sparse vectors (all of dimension
// v.Dim) with the ring schedule, transmitting only nonzeros. The returned
// vector is the global sum. Unlike the dense variant, per-step message
// sizes depend on where the nonzeros sit — which is exactly the sensitivity
// the paper analyzes in eqs. (11)–(13): a block that accumulates all the
// nonzeros grows linearly as it travels the ring.
//
// Convenience form: allocates the result and copies the trace. Hot-path
// callers hold a Workspace and use its method directly.
func RingAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	out := new(sparse.Vector)
	tr, err := ws.RingAllreduceSparse(ep, g, tagBase, v, out)
	tr = detachTrace(tr)
	if err != nil {
		return nil, tr, err
	}
	return out, tr, nil
}

// PSRAllreduceSparse sums the members' sparse vectors with the paper's
// PSR-Allreduce schedule: block j goes straight to owner j (one
// Scatter-Reduce step), then each owner sends its finished block to every
// other member (one Allgather step). Sparse cost is bounded by c·θ in the
// scatter step and c·θ·(N−1) in the gather step (paper eqs. 14–15),
// independent of where the nonzeros concentrate — the robustness property
// PSRA-HGADMM is built on.
//
// Convenience form: allocates the result and copies the trace. Hot-path
// callers hold a Workspace and use its method directly.
func PSRAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	out := new(sparse.Vector)
	tr, err := ws.PSRAllreduceSparse(ep, g, tagBase, v, out)
	tr = detachTrace(tr)
	if err != nil {
		return nil, tr, err
	}
	return out, tr, nil
}

// ReduceSparse sums every member's vector at the root member and returns
// the sum there; non-root members receive nil.
func ReduceSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	out := new(sparse.Vector)
	tr, err := ws.ReduceSparse(ep, g, tagBase, rootIdx, v, out)
	tr = detachTrace(tr)
	if err != nil {
		return nil, tr, err
	}
	if g.IndexOf(ep.Rank()) != rootIdx {
		return nil, tr, nil
	}
	return out, tr, nil
}

// BroadcastSparse sends the root's vector to every member and returns each
// member's copy (the root gets its own vector back unchanged).
func BroadcastSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	me := g.IndexOf(ep.Rank())
	if me == rootIdx {
		tr, err := ws.BroadcastSparse(ep, g, tagBase, rootIdx, v, nil)
		return v, detachTrace(tr), err
	}
	out := new(sparse.Vector)
	tr, err := ws.BroadcastSparse(ep, g, tagBase, rootIdx, v, out)
	tr = detachTrace(tr)
	if err != nil {
		return nil, tr, err
	}
	return out, tr, nil
}
