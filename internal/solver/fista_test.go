package solver

import (
	"math"
	"math/rand"
	"testing"

	"psrahgadmm/internal/vec"
)

func TestFISTAConvergesAndMatchesADMMStructure(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	data, labels := smallLogistic(r, 60, 12)
	lambda := 0.5

	x := make([]float64, 12)
	res := FISTA(data, labels, lambda, x, FISTAOptions{MaxIter: 2000, Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("FISTA did not converge: %+v", res)
	}

	obj := func(pt []float64) float64 {
		var loss float64
		for row := 0; row < data.NRows; row++ {
			loss += LogLoss(labels[row] * data.RowDot(row, pt))
		}
		return loss + lambda*vec.Nrm1(pt)
	}
	f := obj(x)
	if math.Abs(f-res.F) > 1e-9*(1+math.Abs(f)) {
		t.Fatalf("reported F %v != evaluated %v", res.F, f)
	}

	// First-order optimality of the composite problem: for x_i ≠ 0,
	// ∇f_i = −λ·sign(x_i); for x_i = 0, |∇f_i| ≤ λ.
	grad := make([]float64, 12)
	scratch := make([]float64, data.NRows)
	margins := make([]float64, data.NRows)
	data.MulVec(margins, x)
	for j := range margins {
		scratch[j] = -labels[j] * Sigmoid(-labels[j]*margins[j])
	}
	data.MulTransVec(grad, scratch)
	for i, xi := range x {
		switch {
		case xi > 0:
			if math.Abs(grad[i]+lambda) > 1e-4 {
				t.Fatalf("KKT violated at %d: grad %v, x %v", i, grad[i], xi)
			}
		case xi < 0:
			if math.Abs(grad[i]-lambda) > 1e-4 {
				t.Fatalf("KKT violated at %d: grad %v, x %v", i, grad[i], xi)
			}
		default:
			if math.Abs(grad[i]) > lambda+1e-4 {
				t.Fatalf("KKT violated at zero %d: |grad| %v > λ", i, math.Abs(grad[i]))
			}
		}
	}

	// Perturbation check: no nearby point beats the solution.
	for trial := 0; trial < 50; trial++ {
		xp := vec.Clone(x)
		xp[r.Intn(12)] += (r.Float64() - 0.5) * 0.01
		if obj(xp) < f-1e-9 {
			t.Fatalf("perturbed objective %v below solution %v", obj(xp), f)
		}
	}
}

func TestFISTAZeroLambdaIsLogisticRegression(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	data, labels := smallLogistic(r, 40, 6)
	x := make([]float64, 6)
	res := FISTA(data, labels, 0, x, FISTAOptions{MaxIter: 3000, Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	// Gradient must vanish without regularization.
	margins := make([]float64, data.NRows)
	scratch := make([]float64, data.NRows)
	grad := make([]float64, 6)
	data.MulVec(margins, x)
	for j := range margins {
		scratch[j] = -labels[j] * Sigmoid(-labels[j]*margins[j])
	}
	data.MulTransVec(grad, scratch)
	if vec.Nrm2(grad) > 1e-4 {
		t.Fatalf("gradient norm %v at unregularized optimum", vec.Nrm2(grad))
	}
}

func TestFISTAHighLambdaGivesZero(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	data, labels := smallLogistic(r, 30, 5)
	x := make([]float64, 5)
	// λ above the gradient magnitude at 0 forces the zero solution.
	res := FISTA(data, labels, 1e4, x, FISTAOptions{MaxIter: 200})
	_ = res
	if vec.CountNonzero(x) != 0 {
		t.Fatalf("x = %v, want exactly zero at huge λ", x)
	}
}
