// Package core implements the paper's algorithm family as compositions of
// three orthogonal strategy axes:
//
//   - ConsensusStrategy (strategy.go, consensus_*.go): HOW the aggregate
//     W = Σ(yᵢ + ρxᵢ) is formed and z redistributed — star, ring, flat
//     PSR, staged aggregation tree, group-local.
//   - SyncModel (syncmodel.go): WHEN a round admits its participants —
//     BSP barrier, SSP partial barrier (Min_barrier/Max_delay), or
//     bounded-delay async.
//   - ExchangeCodec (package exchange): WHAT travels — exact sparse,
//     quantized sparse, dense fp64, or dense fp32.
//
// Named algorithms are registry entries (registry.go) binding one triple:
// PSRA-HGADMM is (tree, bsp, sparse), ADMMLib is (ring, ssp, dense-f32),
// AD-ADMM is (star, ssp, dense), and so on — see Variants() for the full
// zoo, including compositions the paper's monoliths could not express.
//
// The engine executes real numerics (TRON subproblem solves, exact sparse
// aggregation through the collective implementations) under a deterministic
// virtual clock from package simnet. Given equal (Config, data), two runs
// produce bit-identical histories.
package core

import (
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/watchdog"
)

// ConsensusMode selects PSRA-HGADMM's aggregation breadth per iteration.
type ConsensusMode string

// The implemented consensus modes.
const (
	ConsensusGlobal ConsensusMode = "global"
	ConsensusGroup  ConsensusMode = "group"
)

// Algorithm names one registered consensus-ADMM variant (see registry.go
// for the bindings and Algorithms()/Variants() for enumeration).
type Algorithm string

// The paper's variants plus the registered strategy compositions.
const (
	PSRAHGADMM Algorithm = "psra-hgadmm"
	PSRAADMM   Algorithm = "psra-admm"
	GRADMM     Algorithm = "gr-admm"
	ADMMLib    Algorithm = "admmlib"
	ADADMM     Algorithm = "ad-admm"
	GCADMM     Algorithm = "gc-admm"
	// PSRAHGADMMGroup names the group-local consensus reading directly
	// (equivalent to PSRAHGADMM with Consensus=group).
	PSRAHGADMMGroup Algorithm = "psra-hgadmm-group"
	// PSRAHGADMMSSPQ8 is a composition the monolithic switch could not
	// express: the staged aggregation tree under SSP with an 8-bit
	// quantized sparse exchange.
	PSRAHGADMMSSPQ8 Algorithm = "psra-hgadmm-ssp-q8"
	// PSRAADMMAsync drives the flat PSR-Allreduce asynchronously.
	PSRAADMMAsync Algorithm = "psra-admm-async"
	// GRADMMSSP runs GR-ADMM's sparse Leader ring under ADMMLib's SSP
	// barrier — isolating the codec at identical topology and sync.
	GRADMMSSP Algorithm = "gr-admm-ssp"
	// PSRAHGADMMTopK is the staged aggregation tree with the top-k
	// error-feedback codec: only the k largest-magnitude coordinates of
	// each contribution travel; dropped mass carries into the next round.
	PSRAHGADMMTopK Algorithm = "psra-hgadmm-topk"
	// PSRAHGADMMTopKQ8 composes top-k selection with 8-bit quantization:
	// the k survivors travel as 5-byte entries, and the quantization error
	// joins the dropped coordinates in the residual.
	PSRAHGADMMTopKQ8 Algorithm = "psra-hgadmm-topk-q8"
	// PSRAADMMTopK drives the flat PSR-Allreduce with the top-k codec —
	// the composition the zero-alloc budget test pins.
	PSRAADMMTopK Algorithm = "psra-admm-topk"
	// PSRAHGADMMSharded is the staged aggregation tree over block-sharded
	// consensus state: the model is block-partitioned with PSR-style
	// owners, each rank holds only the blocks its data touches, and no
	// rank materializes the full model.
	PSRAHGADMMSharded Algorithm = "psra-hgadmm-sharded"
	// PSRAHGADMMShardedSSP runs the block-sharded staged aggregation tree
	// under node-granular SSP: stale nodes' cached contributions keep
	// feeding their subscribed blocks for up to Max_delay rounds while the
	// fresh quorum advances, and each block still averages over its live
	// subscribers.
	PSRAHGADMMShardedSSP Algorithm = "psra-hgadmm-sharded-ssp"
	// PSRAHGADMMShardedAsync drives the block-sharded staged aggregation
	// tree asynchronously (quorum of one, bounded delay).
	PSRAHGADMMShardedAsync Algorithm = "psra-hgadmm-sharded-async"
	// PSRAADMMRobust is the flat PSR-Allreduce with the trimmed-mean
	// robust aggregator: each owner drops the TrimF largest and smallest
	// contributions per coordinate before averaging, tolerating up to
	// TrimF Byzantine workers.
	PSRAADMMRobust Algorithm = "psra-admm-robust"
	// PSRAHGADMMRobust is the staged aggregation tree under trimmed-mean,
	// forced to a single merge of every node partial (the robust statistic
	// needs all contributions at one combine point) — node-granularity
	// Byzantine tolerance.
	PSRAHGADMMRobust Algorithm = "psra-hgadmm-robust"
	// GCADMMMedian is the master-worker star with the coordinate-median
	// aggregator — the classic robust-aggregation baseline.
	GCADMMMedian Algorithm = "gc-admm-median"
	// PSRAADMMShardedRobust composes trimmed-mean with block-sharded
	// state: each block owner trims over that block's live subscribers.
	PSRAADMMShardedRobust Algorithm = "psra-admm-sharded-robust"
)

// Config parameterizes one training run.
type Config struct {
	Algorithm Algorithm
	// Topo lays out the virtual cluster. The worker count is Topo.Size().
	Topo simnet.Topology
	// Rho is the ADMM penalty parameter.
	Rho float64
	// Lambda is the L1 regularization weight (paper: λ = 1).
	Lambda float64
	// MaxIter is the outer iteration count (paper: 100).
	MaxIter int
	// GroupThreshold is the WLG GQ batching threshold in nodes
	// (PSRA-HGADMM only). 0 or out of range means all nodes — exact
	// global consensus, the paper's "ungrouped" baseline.
	GroupThreshold int
	// Consensus selects how far PSRA-HGADMM's group aggregates propagate
	// each iteration. The paper's Algorithms 1–3 are ambiguous here, so
	// both readings are implemented (see DESIGN.md):
	//
	//   - ConsensusGlobal (default): group partials re-enter the GG queue
	//     and merge in a staged tree until W is exact global consensus —
	//     the reading Figure 5's convergence requires.
	//   - ConsensusGroup: one grouping round per iteration; each group
	//     computes z from its own members only (scaled by the group's
	//     worker count). Fast groups never wait for slow nodes — the
	//     reading Figure 7's straggler isolation requires — at the cost
	//     of consensus breadth per iteration.
	Consensus ConsensusMode
	// MinBarrier is the SSP partial-barrier size in workers (ADMMLib,
	// AD-ADMM). 0 defaults to half the workers, the paper's setting.
	MinBarrier int
	// MaxDelay is the SSP staleness bound in rounds. 0 defaults to 5, the
	// paper's setting.
	MaxDelay int
	// Tron configures the subproblem solver.
	Tron solver.TronOptions
	// Cost is the virtual-time model. Zero value defaults to
	// simnet.Tianhe2Like().
	Cost simnet.CostModel
	// Stragglers optionally injects slow nodes (Figure 7).
	Stragglers simnet.Stragglers
	// Jitter optionally injects mild per-worker compute variance (real
	// clusters always have some; it is what makes SSP staleness real).
	Jitter simnet.Jitter
	// EvalEvery computes objective/accuracy every k iterations (default 1).
	EvalEvery int
	// Tol enables residual-based early stopping: the run ends once both
	// the primal residual ‖r‖ = sqrt(Σ‖xᵢ−z‖²) and the dual residual
	// ‖s‖ = ρ√N‖z−z_prev‖ fall below Tol. 0 disables (fixed MaxIter, the
	// paper's protocol).
	Tol float64
	// AdaptiveRho enables residual-balancing penalty adaptation (the
	// AADMM idea the paper cites): ρ×=RhoTau when ‖r‖ > RhoMu·‖s‖,
	// ρ/=RhoTau in the opposite regime. The residual norms are globally
	// agreed scalars, so the extra communication is negligible.
	AdaptiveRho bool
	// RhoMu and RhoTau are the balancing parameters (defaults 10 and 2).
	RhoMu, RhoTau float64
	// QuantBits, when 8 or 16, quantizes every communicated w
	// contribution to that many value bits with a per-vector max-abs
	// scale (the Q-GADMM-style lossy option). 0 keeps full float64
	// precision. Applies to the PSRA algorithms' sparse exchange.
	QuantBits int
	// CodecBudgetBytes targets the top-k codecs' adaptive selection: after
	// every round each live rank steers its selection budget k so the
	// observed per-iteration trace bytes approach this figure, clamped to
	// the state's [KMin, KMax]. All ranks observe the same round total, so
	// k stays identical across ranks and runs stay deterministic. 0 keeps
	// the default fixed k (dim/2, clamped). Ignored by non-topk codecs.
	CodecBudgetBytes int64
	// CodecTopK, when positive, sets the top-k codecs' selection size
	// directly (and its floor under adaptation), overriding the dim/2
	// default. With CodecBudgetBytes zero the selection stays fixed at
	// this k. Ignored by non-topk codecs.
	CodecTopK int
	// CodecAgeScoring weights the top-k codecs' selection by residual age:
	// a coordinate that has waited a rounds in the error-feedback residual
	// scores |v|·(1+a) instead of |v|, so starved coordinates ship before
	// their accumulated mass overshoots. Ignored by non-topk codecs.
	CodecAgeScoring bool
	// CodecNoErrorFeedback disables the top-k codecs' residual accumulator
	// — the ablation knob behind the acceptance test that shows error
	// feedback is load-bearing. Dropped coordinates are then lost forever
	// and convergence stalls short of the optimum; never set it in
	// production runs.
	CodecNoErrorFeedback bool
	// Faults, when non-nil, wraps the engine's scratch fabric in a
	// transport.FaultFabric injecting the described drops, delays,
	// partitions, and rank kills deterministically from the plan's seed.
	// A killed rank surfaces as a typed transport.PeerDownError; Run then
	// aborts cleanly with partial results instead of hanging. Test/chaos
	// tooling only — production failures arrive through the TCP fabric's
	// own detection.
	Faults *transport.FaultPlan
	// Elastic switches the failure model from fail-stop to fail-survive:
	// a dead rank is pruned from the membership view instead of aborting
	// the run, the z-update averages over the survivors (keeping degraded
	// consensus exact under BSP), and training continues to MaxIter on
	// the shrunken world. IterStat.LiveWorkers/Epoch and
	// Result.Degraded report the attrition. Kills scheduled via
	// Faults.KillAtIteration are deterministic in elastic mode: the rank
	// leaves the world at the iteration boundary, before any collective
	// can fail on it.
	//
	// Elastic also enables fail-recover: ranks scheduled through
	// Faults.RejoinAtIteration come back at their iteration boundary as a
	// new incarnation — fabric reopened, membership revived, consensus
	// view warm-started from the cluster's current iterate — and the
	// z-update's contributor scaling grows back, so a kill-then-rejoin
	// run converges to the same full-data optimum as an undisturbed one.
	Elastic bool
	// ShardedState switches the consensus state from replicated dense z to
	// block-sharded z: the model splits into ShardBlocks contiguous blocks
	// with deterministic owners (block b → group position b mod p), each
	// rank subscribes only to the blocks its shard's features touch, and
	// the z-update scales per block by its live subscriber count
	// (general-form consensus). No rank materializes the full model;
	// IterStat.ResidentBytes reports the per-rank footprint. State
	// placement is owned by the engine's StateStore layer (statestore.go),
	// so sharding composes with every sync model — BSP, SSP, and async;
	// only the consensus axis is constrained (flat/star/tree — the ring
	// hierarchy and group-local consensus assume full-width aggregates).
	// False keeps the replicated engine bit-identical to its goldens. The
	// psra-hgadmm-sharded* variants set this implicitly.
	ShardedState bool
	// ShardBlocks is the sharded-state block count (0 defaults to the
	// worker count, the PSR chunk layout). More blocks than workers means
	// each owner holds several blocks; subscriptions get finer and per-rank
	// residency drops on sparse data. Ignored unless sharding is on.
	ShardBlocks int
	// Watchdog enables divergence monitoring: NaN/Inf escaping into any
	// live worker's x/y/z, non-finite residuals or objective, and
	// residual/objective explosions relative to a sliding window of
	// healthy iterations. On a trip the engine rolls every rank back to
	// the last checkpoint (when RunOptions.Checkpoint has a store and a
	// usable snapshot) at the iteration boundary — re-seeding codec
	// error-feedback state and recording the event in Result.Rollbacks —
	// and aborts with an error wrapping watchdog.ErrDiverged once
	// Watchdog.MaxRollbacks is exhausted or no snapshot exists.
	Watchdog watchdog.Config
	// Aggregator selects the consensus reduce statistic: "mean" (the
	// default — bit-identical to the pre-robust engine, every sum routed
	// through the unmodified kernels), "trimmed-mean" (drop the TrimF
	// largest and smallest contributions per coordinate before averaging),
	// or "coordinate-median". Empty inherits the registered variant's
	// Aggregator axis value. The robust statistics are non-associative, so
	// they require a consensus strategy with a single combine point:
	// flat/star/tree, not ring or group-local; with sharded state only the
	// flat strategy reduces per block with per-block contributor sets.
	Aggregator string
	// TrimF is trimmed-mean's per-side trim count — the number of
	// Byzantine contributors the reduce tolerates. Defaults to 1 when the
	// trimmed-mean aggregator is selected. It is also the robust quorum
	// bound: once more than TrimF ranks are quarantined the run aborts
	// with an error wrapping watchdog.ErrQuorumLost.
	TrimF int
	// Screen enables contribution screening: every contribution entering a
	// consensus reduce is scored against its sender's own EWMA baselines
	// (norm and Δ-norm), consecutive outliers quarantine the rank, and
	// QuarantineRounds consecutive clean probes re-admit it. See
	// watchdog.ScreenConfig.
	Screen watchdog.ScreenConfig
	// QuarantineRounds is how many consecutive clean probe observations a
	// quarantined rank must produce before re-admission. Default 3.
	QuarantineRounds int
}

func (c *Config) fill() {
	if c.MinBarrier <= 0 || c.MinBarrier > c.Topo.Size() {
		c.MinBarrier = (c.Topo.Size() + 1) / 2
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5
	}
	if c.Cost == (simnet.CostModel{}) {
		c.Cost = simnet.Tianhe2Like()
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.GroupThreshold < 1 || c.GroupThreshold > c.Topo.Nodes {
		c.GroupThreshold = c.Topo.Nodes
	}
	if c.Consensus == "" {
		c.Consensus = ConsensusGlobal
	}
	if c.RhoMu <= 0 {
		c.RhoMu = 10
	}
	if c.RhoTau <= 1 {
		c.RhoTau = 2
	}
	if c.Aggregator == "" {
		if v, ok := Lookup(c.Algorithm); ok {
			c.Aggregator = v.Aggregator
		}
	}
	if c.Aggregator == "" {
		c.Aggregator = collective.AggMeanName
	}
	if c.Aggregator == collective.AggTrimmedMeanName && c.TrimF == 0 {
		c.TrimF = 1
	}
	if c.QuarantineRounds <= 0 {
		c.QuarantineRounds = 3
	}
}

// aggSpec resolves the run's aggregator axis after fill.
func (c Config) aggSpec() (collective.AggSpec, error) {
	name := c.Aggregator
	if name == "" {
		if v, ok := Lookup(c.Algorithm); ok {
			name = v.Aggregator
		}
	}
	kind, err := collective.ParseAgg(name)
	if err != nil {
		return collective.AggSpec{}, fmt.Errorf("core: %w", err)
	}
	f := c.TrimF
	if kind == collective.AggTrimmedMean && f == 0 {
		f = 1 // fill's default, applied here too so pre-fill Validate agrees
	}
	return collective.AggSpec{Kind: kind, TrimF: f}, nil
}

// Validate checks the configuration before a run.
func (c Config) Validate() error {
	if !c.Algorithm.Valid() {
		return fmt.Errorf("core: unknown algorithm %q", c.Algorithm)
	}
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if c.Rho <= 0 {
		return fmt.Errorf("core: Rho must be positive, got %v", c.Rho)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("core: Lambda must be non-negative, got %v", c.Lambda)
	}
	if c.MaxIter <= 0 {
		return fmt.Errorf("core: MaxIter must be positive, got %d", c.MaxIter)
	}
	if c.Consensus != "" && c.Consensus != ConsensusGlobal && c.Consensus != ConsensusGroup {
		return fmt.Errorf("core: unknown consensus mode %q", c.Consensus)
	}
	if c.QuantBits != 0 && c.QuantBits != 8 && c.QuantBits != 16 {
		return fmt.Errorf("core: QuantBits must be 0, 8 or 16, got %d", c.QuantBits)
	}
	if c.CodecBudgetBytes < 0 {
		return fmt.Errorf("core: CodecBudgetBytes must be non-negative, got %d", c.CodecBudgetBytes)
	}
	if c.CodecTopK < 0 {
		return fmt.Errorf("core: CodecTopK must be non-negative, got %d", c.CodecTopK)
	}
	if c.Tol < 0 {
		return fmt.Errorf("core: Tol must be non-negative")
	}
	if c.ShardBlocks < 0 {
		return fmt.Errorf("core: ShardBlocks must be non-negative, got %d", c.ShardBlocks)
	}
	if c.MinBarrier < 0 {
		return fmt.Errorf("core: MinBarrier must be non-negative, got %d", c.MinBarrier)
	}
	if c.MinBarrier > c.Topo.Size() {
		return fmt.Errorf("core: MinBarrier %d exceeds the worker count %d", c.MinBarrier, c.Topo.Size())
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("core: MaxDelay must be non-negative, got %d", c.MaxDelay)
	}
	if err := c.Watchdog.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Screen.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.TrimF < 0 {
		return fmt.Errorf("core: TrimF must be non-negative, got %d", c.TrimF)
	}
	if c.QuarantineRounds < 0 {
		return fmt.Errorf("core: QuarantineRounds must be non-negative, got %d", c.QuarantineRounds)
	}
	spec, err := c.aggSpec()
	if err != nil {
		return err
	}
	if spec.Robust() {
		if v, ok := Lookup(c.Algorithm); ok {
			ck, _, _ := v.resolve(c)
			switch ck {
			case ConsensusFlat, ConsensusStar, ConsensusTree:
			default:
				return fmt.Errorf("core: aggregator %q needs a single combine point; %s consensus reduces pairwise", spec.Kind, ck)
			}
			if (v.Sharded || c.ShardedState) && ck != ConsensusFlat {
				return fmt.Errorf("core: aggregator %q over sharded state requires flat-psr consensus (per-block contributor sets), not %s", spec.Kind, ck)
			}
		}
		if 2*spec.TrimF >= c.Topo.Size() {
			return fmt.Errorf("core: TrimF %d trims everything: need 2·TrimF < %d workers", spec.TrimF, c.Topo.Size())
		}
	}
	if c.Faults != nil {
		for r, bf := range c.Faults.ByzantineAtIteration {
			if r < 0 || r >= c.Topo.Size() {
				return fmt.Errorf("core: Byzantine rank %d outside the world [0,%d)", r, c.Topo.Size())
			}
			if bf.Iteration < 0 {
				return fmt.Errorf("core: Byzantine rank %d iteration %d negative", r, bf.Iteration)
			}
			if !transport.ValidByzantineMode(bf.Mode) {
				return fmt.Errorf("core: Byzantine rank %d: unknown mode %q (valid: %v)", r, bf.Mode, transport.ByzantineModes())
			}
			if bf.Until != 0 && bf.Until <= bf.Iteration {
				return fmt.Errorf("core: Byzantine rank %d: Until %d must follow Iteration %d", r, bf.Until, bf.Iteration)
			}
		}
	}
	if c.Faults != nil && (c.Faults.CorruptProb < 0 || c.Faults.CorruptProb > 1) {
		return fmt.Errorf("core: Faults.CorruptProb must be in [0,1], got %v", c.Faults.CorruptProb)
	}
	if c.Faults != nil && len(c.Faults.RejoinAtIteration) > 0 {
		if !c.Elastic {
			return fmt.Errorf("core: Faults.RejoinAtIteration requires Elastic mode (fail-stop runs cannot re-admit ranks)")
		}
		for r, rit := range c.Faults.RejoinAtIteration {
			kit, scheduled := c.Faults.KillAtIteration[r]
			_, sendKilled := c.Faults.KillAfterSends[r]
			if !scheduled && !sendKilled {
				return fmt.Errorf("core: rank %d scheduled to rejoin at iteration %d but never killed", r, rit)
			}
			if scheduled && rit <= kit {
				return fmt.Errorf("core: rank %d rejoin at iteration %d must follow its kill at %d", r, rit, kit)
			}
		}
	}
	return nil
}

// IterStat records one iteration of a run. Times are virtual seconds from
// the simnet cost model; bytes are actual payload bytes the collectives
// sent.
type IterStat struct {
	Iter int
	// Objective is the global L1-logistic objective (paper eq. 17)
	// evaluated at the mean consensus iterate. NaN when skipped by
	// EvalEvery.
	Objective float64
	// RelError is |f − f*| / f* against the reference optimum when one
	// was supplied (paper eq. 18); NaN otherwise.
	RelError float64
	// Accuracy is test-set accuracy at the mean consensus iterate; NaN
	// when no test set was supplied or evaluation was skipped.
	Accuracy float64
	// CalTime is the mean per-worker compute time of this iteration.
	CalTime float64
	// CommTime is the iteration's elapsed virtual time beyond CalTime:
	// transfer plus synchronization wait.
	CommTime float64
	// Bytes is the total communication payload of the iteration.
	Bytes int64
	// PrimalRes and DualRes are the consensus residual norms (always
	// computed; they drive Tol stopping and AdaptiveRho).
	PrimalRes, DualRes float64
	// Rho is the penalty in effect during this iteration (changes only
	// under AdaptiveRho).
	Rho float64
	// LiveWorkers is the surviving worker count at the end of the
	// iteration (always Topo.Size() in a non-elastic run).
	LiveWorkers int
	// Epoch is the membership epoch — it advances by one per observed
	// death, so equal epochs mean identical membership views.
	Epoch int
	// PeerDowns is the cumulative count of peer-death observations across
	// all ranks (the per-rank counters live in metrics.Health).
	PeerDowns int64
	// ResidentBytes is the largest per-rank consensus-state footprint this
	// iteration: 8·(len(zStore)+len(xA)+len(yA)+len(zA)) over live ranks.
	// Under sharded state zStore holds only the rank's subscribed blocks;
	// replicated runs report the full-dimension figure. The StateStore
	// reports it every iteration under every sync model (BSP, SSP, async)
	// — stale ranks' frozen state counts at its last applied size.
	ResidentBytes int64
}

// Result is a completed run.
type Result struct {
	Config  Config
	History []IterStat
	// Z is the final mean consensus iterate.
	Z []float64
	// TotalCalTime/TotalCommTime/SystemTime aggregate the virtual clock:
	// SystemTime = TotalCalTime + TotalCommTime = the paper's "system
	// time".
	TotalCalTime  float64
	TotalCommTime float64
	SystemTime    float64
	// TotalBytes is the cumulative communication volume.
	TotalBytes int64
	// Stopped reports whether residual-based early stopping fired before
	// MaxIter (History is then shorter than Config.MaxIter).
	Stopped bool
	// LiveWorkers and Epoch are the final membership view; Degraded
	// reports whether any worker was lost (elastic runs complete degraded
	// rather than aborting).
	LiveWorkers int
	Epoch       int
	Degraded    bool
	// Rollbacks records every watchdog-triggered checkpoint rollback the
	// run performed, in order. A non-empty list with a nil error means the
	// run diverged, recovered from its last good snapshot, and still
	// finished; the History contains the post-rollback replay (entries for
	// the rolled-back iterations are truncated and rewritten).
	Rollbacks []RollbackEvent
	// Quarantines records every contribution-screen quarantine and
	// re-admission the run performed, in order.
	Quarantines []QuarantineEvent
}

// QuarantineEvent is one screen-triggered membership transition.
type QuarantineEvent struct {
	// Rank is the affected world rank.
	Rank int
	// Iter is the iteration boundary the transition took effect at.
	Iter int
	// Readmitted distinguishes a clean-probe re-admission from the
	// quarantine itself.
	Readmitted bool
}

// RollbackEvent is one watchdog-triggered restore to a checkpoint.
type RollbackEvent struct {
	// TripIter is the iteration whose statistics tripped the watchdog.
	TripIter int
	// ToIter is the iteration the run restarted from (the snapshot's
	// boundary).
	ToIter int
	// Reason is the watchdog's trip description.
	Reason string
}

// FinalObjective returns the last evaluated objective value.
func (r *Result) FinalObjective() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !isNaN(r.History[i].Objective) {
			return r.History[i].Objective
		}
	}
	return nan()
}

// FinalAccuracy returns the last evaluated test accuracy.
func (r *Result) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !isNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return nan()
}
