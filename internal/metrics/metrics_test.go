package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 0.25)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## demo", "name", "value", "alpha", "1.500", "0.2500", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Column alignment: "alpha" and "b" rows must start values at the
	// same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	lastTwo := lines[len(lines)-2:]
	idxA := strings.Index(lastTwo[0], "1.500")
	idxB := strings.Index(lastTwo[1], "0.2500")
	if idxA != idxB {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx;y,2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "-"},
		{0, "0"},
		{1e-5, "1.000e-05"},
		{0.5, "0.5000"},
		{3.25, "3.250"},
		{2e7, "2.000e+07"},
		{-0.25, "-0.2500"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestPctChangeAndReduction(t *testing.T) {
	if got := PctChange(100, 68); got != -32 {
		t.Fatalf("PctChange = %v", got)
	}
	if got := PctChange(0, 5); got != 0 {
		t.Fatalf("PctChange from 0 = %v", got)
	}
	if got := Reduction(100, 68); got != 32 {
		t.Fatalf("Reduction = %v", got)
	}
	if got := Reduction(100, 120); got != 0 {
		t.Fatalf("Reduction clamp = %v", got)
	}
	if got := Reduction(0, 1); got != 0 {
		t.Fatalf("Reduction zero-from = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "-"},
		{2.5, "2.500s"},
		{0.0025, "2.500ms"},
		{2.5e-6, "2.500µs"},
		{3e-9, "3ns"},
	}
	for _, c := range cases {
		if got := Seconds(c.v); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
