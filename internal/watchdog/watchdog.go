// Package watchdog detects training divergence: NaN/Inf escaping into the
// iterates and residual/objective explosions relative to a sliding window
// of recent healthy values. It is deliberately dependency-free — both the
// core engine and the WLG runtime feed it their own notion of an iteration
// — and deliberately conservative: a trip means "this state must not be
// checkpointed, roll back or abort", so thresholds default to orders of
// magnitude, not percentages.
package watchdog

import (
	"errors"
	"fmt"
	"math"
)

// ErrDiverged is the sentinel every watchdog trip wraps; check with
// errors.Is to distinguish "training went numerically wrong" from
// infrastructure failures.
var ErrDiverged = errors.New("watchdog: training diverged")

// Config tunes the divergence monitor. The zero value disables it; set
// Enabled to get the defaults.
type Config struct {
	// Enabled turns monitoring on. Off by default: divergence scanning
	// reads every iterate each iteration, which is measurable work the
	// zero-alloc benchmarks should not pay unless asked.
	Enabled bool
	// Window is how many recent healthy iterations form the explosion
	// baseline. Until the window fills only non-finite checks fire, so
	// startup transients (residuals legitimately grow early) never trip.
	// Default 8.
	Window int
	// ResidualFactor trips when a primal or dual residual exceeds
	// Factor × the window minimum. Default 1e4.
	ResidualFactor float64
	// ObjectiveFactor trips when the objective exceeds Factor × the window
	// minimum (objectives here are nonnegative: loss + L1). Default 1e4.
	ObjectiveFactor float64
	// MaxRollbacks bounds how many checkpoint rollbacks a run may attempt
	// before a trip becomes a typed abort. Default 2.
	MaxRollbacks int
}

// Fill returns cfg with defaults applied.
func (c Config) Fill() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.ResidualFactor <= 0 {
		c.ResidualFactor = 1e4
	}
	if c.ObjectiveFactor <= 0 {
		c.ObjectiveFactor = 1e4
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 2
	}
	return c
}

// Validate rejects nonsensical explicit settings.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Window < 0 {
		return fmt.Errorf("watchdog: Window %d negative", c.Window)
	}
	if c.ResidualFactor < 0 || c.ObjectiveFactor < 0 {
		return fmt.Errorf("watchdog: negative explosion factor")
	}
	if c.MaxRollbacks < 0 {
		return fmt.Errorf("watchdog: MaxRollbacks %d negative", c.MaxRollbacks)
	}
	return nil
}

// TripError reports a detected divergence: at which iteration and why.
// errors.Is(err, ErrDiverged) matches.
type TripError struct {
	Iter   int
	Reason string
}

func (e *TripError) Error() string {
	return fmt.Sprintf("watchdog: diverged at iteration %d: %s", e.Iter, e.Reason)
}

func (e *TripError) Unwrap() error { return ErrDiverged }

// Monitor is a per-run divergence detector. Not safe for concurrent use;
// each rank (or the engine) owns one.
type Monitor struct {
	cfg  Config
	objs window
	res  window
}

// New builds a monitor; nil when cfg.Enabled is false, and every method on
// a nil Monitor is a cheap no-op, so callers need no branches.
func New(cfg Config) *Monitor {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.Fill()
	return &Monitor{
		cfg:  cfg,
		objs: window{cap: cfg.Window},
		res:  window{cap: cfg.Window},
	}
}

// Reset clears the sliding windows. Call after a rollback: the restored
// state's residuals are from an older regime and the post-rollback replay
// must rebuild its own baseline rather than being judged against the
// pre-divergence one.
func (m *Monitor) Reset() {
	if m == nil {
		return
	}
	m.objs.reset()
	m.res.reset()
}

// Observe feeds one iteration's statistics. primal and dual are the
// consensus residuals; objective is the evaluated objective when haveObj
// is true (the engine evaluates on a cadence — iterations without an
// evaluation pass haveObj false rather than a NaN sentinel). It returns a
// *TripError on divergence, nil while healthy.
func (m *Monitor) Observe(iter int, primal, dual, objective float64, haveObj bool) *TripError {
	if m == nil {
		return nil
	}
	if math.IsNaN(primal) || math.IsInf(primal, 0) || math.IsNaN(dual) || math.IsInf(dual, 0) {
		return &TripError{Iter: iter, Reason: fmt.Sprintf("non-finite residuals (primal %v, dual %v)", primal, dual)}
	}
	if haveObj && (math.IsNaN(objective) || math.IsInf(objective, 0)) {
		return &TripError{Iter: iter, Reason: fmt.Sprintf("non-finite objective %v", objective)}
	}
	worst := primal
	if dual > worst {
		worst = dual
	}
	if floor, ok := m.res.min(); ok && worst > m.cfg.ResidualFactor*maxf(floor, residualTiny) {
		return &TripError{Iter: iter, Reason: fmt.Sprintf(
			"residual explosion: %.3g > %.0f× window floor %.3g", worst, m.cfg.ResidualFactor, floor)}
	}
	if haveObj {
		if floor, ok := m.objs.min(); ok && objective > m.cfg.ObjectiveFactor*maxf(floor, residualTiny) {
			return &TripError{Iter: iter, Reason: fmt.Sprintf(
				"objective explosion: %.3g > %.0f× window floor %.3g", objective, m.cfg.ObjectiveFactor, floor)}
		}
		m.objs.push(objective)
	}
	m.res.push(worst)
	return nil
}

// residualTiny floors the explosion baseline: once a run has converged to
// ~0 residuals, any tiny numeric jitter would otherwise look like an
// "explosion" relative to a vanishing window minimum.
const residualTiny = 1e-9

// ScanNonFinite returns the index-pair (slice, element) description of the
// first NaN/Inf found across the given vectors, or "" when all values are
// finite. The engine uses it to catch poison in x/y/z before residuals
// (which a zero gather could mask) and to name the culprit in the trip.
func ScanNonFinite(names []string, vecs ...[]float64) string {
	for i, v := range vecs {
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				name := ""
				if i < len(names) {
					name = names[i]
				}
				return fmt.Sprintf("%s[%d] = %v", name, j, x)
			}
		}
	}
	return ""
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// window is a fixed-capacity FIFO over float64 with O(n) min — n is the
// watchdog window (default 8), so linearity is cheaper than a heap.
type window struct {
	cap  int
	vals []float64
}

func (w *window) push(v float64) {
	if len(w.vals) == w.cap {
		copy(w.vals, w.vals[1:])
		w.vals = w.vals[:len(w.vals)-1]
	}
	w.vals = append(w.vals, v)
}

// min returns the window minimum; ok is false until the window is full,
// which is what keeps startup transients from tripping explosion checks.
func (w *window) min() (float64, bool) {
	if len(w.vals) < w.cap {
		return 0, false
	}
	m := w.vals[0]
	for _, v := range w.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

func (w *window) reset() { w.vals = w.vals[:0] }
