package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"psrahgadmm/internal/wire"
)

// FaultPlan describes the failures a FaultFabric injects. All randomness is
// drawn from per-rank PRNGs seeded from Seed, so a plan replays identically
// across runs as long as each rank's own send sequence is deterministic —
// which the ADMM runtimes guarantee (one rank = one goroutine).
type FaultPlan struct {
	// Seed derives every per-rank PRNG. Two fabrics with equal plans
	// inject identical fault sequences.
	Seed int64
	// DropProb is the probability an individual Send is silently
	// discarded (message loss). The sender sees success.
	DropProb float64
	// DelayProb is the probability a Send is held for a random duration
	// up to MaxDelay before delivery (network jitter / stragglers).
	DelayProb float64
	// MaxDelay bounds injected delays. Default 10ms when DelayProb > 0.
	MaxDelay time.Duration
	// Partitions lists rank pairs whose traffic is blackholed in both
	// directions, simulating a network partition. Partitioned sends are
	// silently dropped, exactly like a real partition: only deadlines
	// (RecvTimeout) or the peers' own failure detection notice.
	Partitions [][2]int
	// KillAfterSends maps rank → the number of successful Sends after
	// which that rank dies: its endpoint behaves as abruptly closed
	// (ErrClosed from its own calls) and every other rank sees it as a
	// down peer (PeerDownError), mirroring a mid-collective process crash.
	KillAfterSends map[int]int
	// KillAtIteration maps rank → the outer iteration at whose start the
	// rank dies. The transport layer cannot trigger these itself (an
	// iteration is an algorithm notion); the core engine reads the plan
	// and calls Kill at the scheduled boundary. This is how ranks that
	// never touch the fabric — e.g. non-leader workers whose intra-node
	// exchange is simulated — can still be killed deterministically.
	KillAtIteration map[int]int
	// RejoinAtIteration maps rank → the outer iteration at whose start the
	// rank comes back as a new incarnation. Like KillAtIteration it is
	// executed by the engine (via Revive) at the scheduled boundary, and it
	// only makes sense for a rank some earlier entry killed.
	RejoinAtIteration map[int]int
	// DupProb is the probability a delivered Send is delivered twice —
	// at-least-once semantics gone wrong. Protocols must treat duplicated
	// frames as idempotent.
	DupProb float64
	// ReorderProb is the probability a Send is held back and delivered
	// after the sender's next Send, swapping the pair's arrival order. A
	// held message with no successor behaves like a drop.
	ReorderProb float64
	// CorruptProb is the probability a Send's encoded frame suffers a
	// single bit-flip in its payload bytes in transit. The flip is applied
	// to the real wire encoding (CRC32C trailer included, computed before
	// the flip), then run through the real decoder: a detected flip means
	// the frame is dropped and the receiver observes a FrameCorruptError —
	// exactly what a TCP reader does when a checksum fails — while an
	// undetected flip (impossible for single-bit errors under CRC32C, but
	// counted defensively) is delivered wrong, modeling an unprotected
	// wire. Tests assert SilentCorruptions stays zero.
	CorruptProb float64
	// CorruptAtIteration maps rank → the outer iteration at whose start
	// that rank's next algorithm-traffic Send is corrupted. Like
	// KillAtIteration it is executed by the core engine (via ArmCorrupt) at
	// the scheduled boundary, and it fires at most once per run so a
	// post-rollback replay of the same iteration is not re-poisoned.
	CorruptAtIteration map[int]int
	// NaNAtIteration maps rank → the outer iteration at whose start the
	// engine poisons that rank's local solve with a NaN. This is not a
	// transport fault at all — it rides in the plan so every chaos schedule
	// lives in one place — and, like KillAtIteration, the engine executes
	// it (transport cannot see solver state) exactly once per run.
	NaNAtIteration map[int]int
	// ByzantineAtIteration maps rank → the Byzantine behavior that rank
	// adopts FROM the named iteration ONWARD. Unlike the fire-once
	// corruption and NaN schedules, a Byzantine rank stays Byzantine — the
	// threat model is a compromised or persistently buggy worker, not a
	// transient glitch — until the quarantine protocol excludes it. Like
	// NaNAtIteration this is engine-executed (the poison is applied to the
	// contribution after codec encoding, exactly where a compromised
	// worker would inject it); it rides in the plan so every chaos
	// schedule lives in one place. The 'random' mode draws its values from
	// a PRNG seeded per (Seed, rank, iteration), so corrupt-frame retries
	// of the same round replay identically.
	ByzantineAtIteration map[int]ByzantineFault
}

// ByzantineFault schedules one rank's semantic-fault behavior.
type ByzantineFault struct {
	// Iteration is the first poisoned iteration.
	Iteration int
	// Mode selects the poison: one of the Byzantine* constants.
	Mode string
	// Until, when positive, is the first iteration the poison NO LONGER
	// applies — a bounded compromise window. Zero means forever, the
	// default threat model. A bounded window is what makes quarantine
	// re-admission observable: once the attack stops, the victim's clean
	// probes accumulate and the engine readmits it.
	Until int
}

// The Byzantine poison modes.
const (
	// ByzantineSignFlip negates the contribution — norm-preserving, so it
	// defeats magnitude-only screens and is the classic robust-aggregation
	// stress case.
	ByzantineSignFlip = "sign-flip"
	// ByzantineScale multiplies the contribution by 10.
	ByzantineScale = "scale"
	// ByzantineRandom replaces the values with seeded uniform noise in
	// [-1, 1) on the same support.
	ByzantineRandom = "random"
	// ByzantineStaleReplay re-sends the rank's last clean contribution
	// from before the fault activated, every round.
	ByzantineStaleReplay = "stale-replay"
)

// ByzantineModes lists every valid mode.
func ByzantineModes() []string {
	return []string{ByzantineSignFlip, ByzantineScale, ByzantineRandom, ByzantineStaleReplay}
}

// ValidByzantineMode reports whether mode names a known poison.
func ValidByzantineMode(mode string) bool {
	switch mode {
	case ByzantineSignFlip, ByzantineScale, ByzantineRandom, ByzantineStaleReplay:
		return true
	}
	return false
}

// faultPoll is how often blocked Recvs on a FaultFabric re-check failure
// state. Coarse enough to stay cheap, fine enough that a kill surfaces to
// every blocked rank within a few milliseconds.
const faultPoll = 2 * time.Millisecond

// FaultFabric wraps another Fabric and injects drops, delays, partitions,
// and peer kills according to a deterministic FaultPlan. It implements
// Fabric, so the engine and the WLG runtime run on it unchanged — this is
// the harness the no-hang tests drive and the knob Config.Faults exposes.
type FaultFabric struct {
	under Fabric
	plan  FaultPlan
	eps   []*faultEndpoint

	mu       sync.Mutex
	down     []*PeerDownError  // rank → kill record, nil while alive
	cut      map[[2]int]bool   // normalized partitioned pairs
	corruptQ [][]corruptRecord // rank → detected-corrupt frames awaiting its Recv
	drops    atomic.Int64
	delays   atomic.Int64
	dups     atomic.Int64
	reorders atomic.Int64
	corrupts atomic.Int64
	silent   atomic.Int64
}

// corruptRecord is one detected-and-dropped corrupt frame: enough identity
// for the recipient's Recv to surface a typed FrameCorruptError in its
// place, so in-process receivers learn of the loss promptly instead of
// waiting out a deadline the way a TCP receiver would.
type corruptRecord struct {
	from int
	tag  int32
}

// FrameCorruptError reports that a frame destined for this receiver failed
// its integrity check in transit and was dropped. The message never
// arrived; the collective retry layer treats this exactly like a lost
// frame and re-requests it. errors.Is(err, wire.ErrFrameCorrupt) matches.
type FrameCorruptError struct {
	From int
	Tag  int32
}

func (e *FrameCorruptError) Error() string {
	return fmt.Sprintf("transport: corrupt frame from %d tag %d dropped", e.From, e.Tag)
}

func (e *FrameCorruptError) Unwrap() error { return wire.ErrFrameCorrupt }

// NewFaultFabric wraps under with the given plan.
func NewFaultFabric(under Fabric, plan FaultPlan) *FaultFabric {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 10 * time.Millisecond
	}
	f := &FaultFabric{
		under:    under,
		plan:     plan,
		eps:      make([]*faultEndpoint, under.Size()),
		down:     make([]*PeerDownError, under.Size()),
		cut:      make(map[[2]int]bool),
		corruptQ: make([][]corruptRecord, under.Size()),
	}
	for _, p := range plan.Partitions {
		f.cut[pairKey(p[0], p[1])] = true
	}
	for i := range f.eps {
		f.eps[i] = &faultEndpoint{
			fab:       f,
			under:     under.Endpoint(i),
			rng:       rand.New(rand.NewSource(plan.Seed ^ int64(i)*0x5851f42d4c957f2d)),
			killAfter: -1,
			reported:  make(map[int]bool),
		}
		if n, ok := plan.KillAfterSends[i]; ok {
			f.eps[i].killAfter = n
		}
	}
	return f
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Size returns the number of ranks.
func (f *FaultFabric) Size() int { return f.under.Size() }

// Endpoint returns rank i's fault-injecting endpoint.
func (f *FaultFabric) Endpoint(i int) Endpoint {
	if err := checkRank(i, f.under.Size()); err != nil {
		panic(err)
	}
	return f.eps[i]
}

// Close closes the underlying fabric.
func (f *FaultFabric) Close() { f.under.Close() }

// Kill marks rank dead immediately: its endpoint's calls return ErrClosed
// and every peer observes a PeerDownError for it. Idempotent.
func (f *FaultFabric) Kill(rank int) {
	if err := checkRank(rank, f.under.Size()); err != nil {
		panic(err)
	}
	f.mu.Lock()
	if f.down[rank] == nil {
		f.down[rank] = &PeerDownError{Peer: rank, Cause: errors.New("killed by fault plan")}
	}
	f.mu.Unlock()
	// Closing the victim's underlying endpoint unblocks its own Recvs and
	// makes peers' direct sends to it fail, as a real crash would.
	f.under.Endpoint(rank).Close()
}

// Revive brings a killed rank back as a new incarnation: the kill record
// is cleared, every endpoint's once-per-observer report flag for the rank
// is reset (so a future death of the new incarnation is reported afresh),
// the pending KillAfterSends trigger is disarmed, and — when the
// underlying fabric supports it — the rank's endpoint is reopened with an
// empty inbox. The caller must guarantee the dead rank's old goroutine has
// quiesced before reviving, exactly as a real rejoin is a new process.
func (f *FaultFabric) Revive(rank int) {
	if err := checkRank(rank, f.under.Size()); err != nil {
		panic(err)
	}
	f.mu.Lock()
	f.down[rank] = nil
	f.corruptQ[rank] = nil // a fresh incarnation starts with a clean inbox
	for _, e := range f.eps {
		delete(e.reported, rank)
	}
	f.mu.Unlock()
	ep := f.eps[rank]
	ep.rmu.Lock()
	ep.killAfter = -1
	ep.held = nil
	ep.corruptArm = false
	ep.rmu.Unlock()
	if ro, ok := f.under.(interface{ Reopen(int) }); ok {
		ro.Reopen(rank)
	}
}

// Partition blackholes traffic between a and b (both directions) from now
// on. Heal removes the cut.
func (f *FaultFabric) Partition(a, b int) {
	f.mu.Lock()
	f.cut[pairKey(a, b)] = true
	f.mu.Unlock()
}

// Heal reconnects a previously partitioned pair.
func (f *FaultFabric) Heal(a, b int) {
	f.mu.Lock()
	delete(f.cut, pairKey(a, b))
	f.mu.Unlock()
}

// InjectedDrops reports how many sends were discarded (drops + partition
// blackholes) — the number tests assert against to prove injection ran.
func (f *FaultFabric) InjectedDrops() int64 { return f.drops.Load() }

// InjectedDelays reports how many sends were artificially delayed.
func (f *FaultFabric) InjectedDelays() int64 { return f.delays.Load() }

// InjectedDups reports how many sends were delivered twice.
func (f *FaultFabric) InjectedDups() int64 { return f.dups.Load() }

// InjectedReorders reports how many send pairs had their order swapped.
func (f *FaultFabric) InjectedReorders() int64 { return f.reorders.Load() }

// InjectedCorruptions reports how many sends were bit-flipped in transit
// and DETECTED by the frame checksum (then dropped for the retry layer to
// recover). Tests assert this is positive to prove injection ran.
func (f *FaultFabric) InjectedCorruptions() int64 { return f.corrupts.Load() }

// SilentCorruptions reports bit-flipped frames that passed the checksum
// and were delivered wrong. CRC32C detects all single-bit errors, so this
// must be zero; it exists so tests can assert "never silently wrong"
// directly instead of inferring it from convergence.
func (f *FaultFabric) SilentCorruptions() int64 { return f.silent.Load() }

// ArmCorrupt makes rank's next algorithm-traffic Send corrupt in transit.
// The engine calls this at the iteration boundary CorruptAtIteration
// names; tests may call it directly.
func (f *FaultFabric) ArmCorrupt(rank int) {
	if err := checkRank(rank, f.under.Size()); err != nil {
		panic(err)
	}
	ep := f.eps[rank]
	ep.rmu.Lock()
	ep.corruptArm = true
	ep.rmu.Unlock()
}

// noteCorrupt queues a detected-corrupt record for the recipient's Recv.
func (f *FaultFabric) noteCorrupt(to, from int, tag int32) {
	f.mu.Lock()
	f.corruptQ[to] = append(f.corruptQ[to], corruptRecord{from: from, tag: tag})
	f.mu.Unlock()
}

// takeCorrupt removes and returns the first queued corrupt record matching
// a Recv(from, tag) on rank self, or nil.
func (f *FaultFabric) takeCorrupt(self, from int, tag int32) *corruptRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	q := f.corruptQ[self]
	for i := range q {
		if q[i].tag != tag {
			continue
		}
		if from != AnySource && q[i].from != from {
			continue
		}
		rec := q[i]
		f.corruptQ[self] = append(q[:i], q[i+1:]...)
		return &rec
	}
	return nil
}

func (f *FaultFabric) killed(rank int) *PeerDownError {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[rank]
}

// recvDownError mirrors the TCP fabric's policy: a targeted Recv fails as
// soon as its source is killed, and an AnySource Recv fails on a killed
// rank — but each kill is reported at most ONCE per observing endpoint
// (the reported set). The first report lets a blocked collective abort
// and its caller register the death; after that an any-source wait
// tolerates the known-dead rank like a departed peer, so an elastic
// caller's retried collective over the survivors is not re-failed by old
// news. When every remote rank is dead the wait fails regardless: nobody
// is left to send.
func (f *FaultFabric) recvDownError(e *faultEndpoint, self, from int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from != AnySource {
		if d := f.down[from]; d != nil {
			return d
		}
		return nil
	}
	var unreported *PeerDownError
	var first *PeerDownError
	allDown := true
	for r := range f.down {
		if r == self {
			continue
		}
		d := f.down[r]
		if d == nil {
			allDown = false
			continue
		}
		if first == nil {
			first = d
		}
		if unreported == nil && !e.reported[r] {
			unreported = d
		}
	}
	if unreported != nil {
		e.reported[unreported.Peer] = true
		return unreported
	}
	if allDown && first != nil {
		return first
	}
	return nil
}

func (f *FaultFabric) partitioned(a, b int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut[pairKey(a, b)]
}

// faultEndpoint decorates one rank's endpoint with the fabric's plan.
type faultEndpoint struct {
	fab   *FaultFabric
	under Endpoint

	rmu        sync.Mutex // guards rng, sends, held, and corruptArm (determinism + race safety)
	rng        *rand.Rand
	sends      int
	killAfter  int       // successful sends before suicide; -1 = never
	held       *heldSend // reorder slot: message overtaken by the next send
	corruptArm bool      // next algorithm send is corrupted (ArmCorrupt)
	// reported tracks which kills this endpoint's any-source waits have
	// already surfaced (one report per death per observer); guarded by the
	// fabric mutex alongside the down records it mirrors.
	reported map[int]bool
}

func (e *faultEndpoint) Rank() int { return e.under.Rank() }
func (e *faultEndpoint) Size() int { return e.under.Size() }

func (e *faultEndpoint) Send(to int, m wire.Message) error {
	if err := checkRank(to, e.Size()); err != nil {
		return err
	}
	self := e.Rank()
	if e.fab.killed(self) != nil {
		return ErrClosed // a dead rank's own calls fail as if closed
	}
	if d := e.fab.killed(to); d != nil {
		return d
	}
	e.rmu.Lock()
	if e.killAfter >= 0 && e.sends >= e.killAfter {
		e.rmu.Unlock()
		e.fab.Kill(self)
		return ErrClosed
	}
	e.sends++
	drop := e.fab.plan.DropProb > 0 && e.rng.Float64() < e.fab.plan.DropProb
	var delay time.Duration
	if e.fab.plan.DelayProb > 0 && e.rng.Float64() < e.fab.plan.DelayProb {
		delay = time.Duration(e.rng.Int63n(int64(e.fab.plan.MaxDelay))) + 1
	}
	dup := e.fab.plan.DupProb > 0 && e.rng.Float64() < e.fab.plan.DupProb
	reorder := e.fab.plan.ReorderProb > 0 && e.rng.Float64() < e.fab.plan.ReorderProb
	// Corruption draws happen only when corruption is configured, so plans
	// without it replay bit-identical PRNG sequences to older runs. The
	// bit index is drawn here, under the same lock as the decision, to keep
	// the (decision, position) pair deterministic per rank.
	corrupt := false
	corruptBit := 0
	if !wire.IsReservedTag(m.Tag) {
		if e.corruptArm {
			e.corruptArm = false
			corrupt = true
		} else if e.fab.plan.CorruptProb > 0 {
			corrupt = e.rng.Float64() < e.fab.plan.CorruptProb
		}
		if corrupt {
			corruptBit = e.rng.Intn(1 << 30)
		}
	}
	var flush *heldSend
	if reorder && e.held == nil && !drop {
		// Hold this message; the sender's next Send overtakes it.
		e.held = &heldSend{to: to, m: m}
		e.rmu.Unlock()
		return nil // held: the sender cannot tell, like a delay
	}
	if e.held != nil {
		flush = e.held
		e.held = nil
	}
	e.rmu.Unlock()

	if e.fab.partitioned(self, to) || drop {
		e.fab.drops.Add(1)
		return nil // blackholed: the sender cannot tell
	}
	if delay > 0 {
		e.fab.delays.Add(1)
		time.Sleep(delay)
	}
	var err error
	if corrupt {
		err = e.corruptDeliver(to, m, corruptBit)
	} else {
		err = e.under.Send(to, m)
		if err == nil && dup {
			// Duplicate delivery: the same frame arrives twice. Best effort —
			// the duplicate's failure is invisible, like a retransmit's.
			e.fab.dups.Add(1)
			_ = e.under.Send(to, m)
		}
	}
	if flush != nil {
		// The held message arrives after its successor: order swapped.
		e.fab.reorders.Add(1)
		_ = e.under.Send(flush.to, flush.m)
	}
	return err
}

// heldSend is a message parked by reorder injection until the sender's
// next Send releases it behind that successor.
type heldSend struct {
	to int
	m  wire.Message
}

// corruptDeliver simulates an in-transit bit-flip honestly: the message is
// run through the real wire encoder (CRC trailer computed over the clean
// bytes), one payload bit is flipped, and the real decoder judges the
// result. A detected flip is dropped and recorded for the recipient's Recv
// to surface as FrameCorruptError; an undetected flip — which CRC32C rules
// out for single-bit errors — is delivered wrong and counted as silent, so
// "never silently corrupted" is an asserted property, not an assumption.
func (e *faultEndpoint) corruptDeliver(to int, m wire.Message, bitDraw int) error {
	buf, err := wire.AppendMessage(nil, m)
	if err != nil {
		return err
	}
	lo, hi := wire.HeaderBytes, len(buf)-wire.CRCBytes
	if hi <= lo {
		hi = len(buf) // degenerate frame: flip somewhere, still detected
	}
	bit := bitDraw % ((hi - lo) * 8)
	buf[lo+bit/8] ^= 1 << (bit % 8)
	dm, derr := wire.Decode(bytes.NewReader(buf))
	if derr == nil {
		e.fab.silent.Add(1)
		return e.under.Send(to, dm)
	}
	e.fab.corrupts.Add(1)
	e.fab.noteCorrupt(to, e.Rank(), m.Tag)
	return nil
}

func (e *faultEndpoint) Recv(from int, tag int32) (wire.Message, error) {
	return e.recv(from, tag, 0)
}

func (e *faultEndpoint) RecvTimeout(from int, tag int32, d time.Duration) (wire.Message, error) {
	return e.recv(from, tag, d)
}

// recv polls the underlying endpoint in short slices so that kills — which
// the underlying fabric may have no way to observe (a ChanFabric rank has
// no connection to break) — still surface to blocked receivers within
// faultPoll, preserving the no-hang guarantee on every fabric.
func (e *faultEndpoint) recv(from int, tag int32, d time.Duration) (wire.Message, error) {
	self := e.Rank()
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for {
		slice := faultPoll
		if d > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return wire.Message{}, fmt.Errorf("transport: recv from %d tag %d: %w", from, tag, ErrTimeout)
			}
			if remaining < slice {
				slice = remaining
			}
		}
		// Poll the real endpoint first: messages already delivered (even
		// by a peer killed since) win over the failure report.
		m, err := e.under.RecvTimeout(from, tag, slice)
		if err == nil {
			return m, nil
		}
		if !errors.Is(err, ErrTimeout) {
			// A kill always precedes the abort cascade that closes the
			// fabric, so prefer the typed cause over ErrClosed noise.
			if e.fab.killed(self) != nil {
				return wire.Message{}, ErrClosed
			}
			if derr := e.fab.recvDownError(e, self, from); derr != nil {
				return wire.Message{}, derr
			}
			return m, err
		}
		if e.fab.killed(self) != nil {
			return wire.Message{}, ErrClosed
		}
		if derr := e.fab.recvDownError(e, self, from); derr != nil {
			return wire.Message{}, derr
		}
		// No real message and no failure: if a frame bound for this wait
		// was corrupted in transit, report the loss promptly and typed —
		// the in-process analogue of a TCP reader's checksum skip plus the
		// receiver noticing the gap.
		if rec := e.fab.takeCorrupt(self, from, tag); rec != nil {
			return wire.Message{}, &FrameCorruptError{From: rec.from, Tag: rec.tag}
		}
	}
}

func (e *faultEndpoint) Stats() Stats { return e.under.Stats() }

func (e *faultEndpoint) Close() error { return e.under.Close() }
