// Stragglers: the Figure 7 effect in miniature. The same PSRA-HGADMM
// training runs twice under injected slow nodes — once with the dynamic
// grouping strategy (small arrival-ordered Leader groups, group-local
// consensus: fast groups never wait), once ungrouped (one global group,
// every iteration gated by the slowest node) — and the virtual timelines
// are compared.
//
//	go run ./examples/stragglers
package main

import (
	"fmt"
	"log"

	psra "psrahgadmm"
)

func main() {
	train, _, err := psra.Generate(psra.News20Like(0.001, 3))
	if err != nil {
		log.Fatal(err)
	}

	run := func(threshold int) *psra.Result {
		cfg := psra.Config{
			Algorithm:      psra.PSRAHGADMM,
			Consensus:      psra.ConsensusGroup,
			Topo:           psra.Topology{Nodes: 16, WorkersPerNode: 2},
			Rho:            1,
			Lambda:         1,
			MaxIter:        40,
			GroupThreshold: threshold,
			// Each iteration every node has a 5% chance of stalling for a
			// fixed 5ms (virtual) — the §5.5 injection.
			Stragglers: psra.Stragglers{Seed: 99, Prob: 0.05, Delay: 5e-3},
		}
		res, err := psra.Train(cfg, train, psra.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	grouped := run(4)    // groups of 4 nodes
	ungrouped := run(16) // one global group

	fmt.Println("PSRA-HGADMM, 16 nodes × 2 workers, 40 iterations, 5% × 5ms stragglers")
	fmt.Printf("%-18s %-14s %-14s %-14s\n", "strategy", "compute", "comm (wait+tx)", "system time")
	for _, row := range []struct {
		name string
		r    *psra.Result
	}{{"dynamic grouping", grouped}, {"ungrouped", ungrouped}} {
		fmt.Printf("%-18s %-14s %-14s %-14s\n", row.name,
			fmt.Sprintf("%.2fms", row.r.TotalCalTime*1e3),
			fmt.Sprintf("%.2fms", row.r.TotalCommTime*1e3),
			fmt.Sprintf("%.2fms", row.r.SystemTime*1e3))
	}
	saving := 100 * (ungrouped.SystemTime - grouped.SystemTime) / ungrouped.SystemTime
	fmt.Printf("\ndynamic grouping saves %.1f%% system time: slow nodes only stall their own group,\n", saving)
	fmt.Println("while the ungrouped run re-synchronizes the whole cluster behind every straggler.")
	fmt.Printf("final objectives: grouped %.4f, ungrouped %.4f (group-local consensus trades\n",
		grouped.FinalObjective(), ungrouped.FinalObjective())
	fmt.Println("some per-iteration consensus breadth for straggler isolation; see DESIGN.md).")
}
