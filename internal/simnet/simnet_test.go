package simnet

import (
	"math"
	"testing"

	"psrahgadmm/internal/collective"
)

func TestTopology(t *testing.T) {
	topo := Topology{Nodes: 3, WorkersPerNode: 4}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 12 {
		t.Fatalf("Size = %d", topo.Size())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Fatal("NodeOf wrong")
	}
	w := topo.WorkersOf(1)
	if len(w) != 4 || w[0] != 4 || w[3] != 7 {
		t.Fatalf("WorkersOf = %v", w)
	}
	if !topo.SameNode(4, 7) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	if (Topology{Nodes: 0, WorkersPerNode: 1}).Validate() == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestLinkClassSelection(t *testing.T) {
	topo := Topology{Nodes: 2, WorkersPerNode: 2}
	c := CostModel{IntraAlpha: 1, IntraBeta: 0, InterAlpha: 100, InterBeta: 0}
	intra := []collective.Event{{Step: 0, From: 0, To: 1, Bytes: 10}}
	inter := []collective.Event{{Step: 0, From: 0, To: 2, Bytes: 10}}
	if got := c.StepTimes(topo, 1, intra)[0]; got != 1 {
		t.Fatalf("intra cost = %v", got)
	}
	if got := c.StepTimes(topo, 1, inter)[0]; got != 100 {
		t.Fatalf("inter cost = %v", got)
	}
}

func TestStepSerializationThroughEndpoint(t *testing.T) {
	// One sender pushing to 3 receivers in a single step serializes: step
	// time = 3 messages' cost, not 1.
	topo := Topology{Nodes: 4, WorkersPerNode: 1}
	c := CostModel{InterAlpha: 1, InterBeta: 1}
	events := []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 10},
		{Step: 0, From: 0, To: 2, Bytes: 10},
		{Step: 0, From: 0, To: 3, Bytes: 10},
	}
	got := c.StepTimes(topo, 1, events)[0]
	want := 3 * (1 + 10.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("serialized cost = %v, want %v", got, want)
	}
	// The same bytes spread over 3 senders to 3 receivers are concurrent.
	events = []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 10},
		{Step: 0, From: 2, To: 3, Bytes: 10},
	}
	got = c.StepTimes(topo, 1, events)[0]
	if math.Abs(got-11) > 1e-12 {
		t.Fatalf("concurrent cost = %v, want 11", got)
	}
}

func TestReceiverBottleneck(t *testing.T) {
	// Fan-in: 3 senders to one receiver — the receiver's in-side
	// serializes.
	topo := Topology{Nodes: 4, WorkersPerNode: 1}
	c := CostModel{InterAlpha: 0, InterBeta: 1}
	events := []collective.Event{
		{Step: 0, From: 1, To: 0, Bytes: 5},
		{Step: 0, From: 2, To: 0, Bytes: 5},
		{Step: 0, From: 3, To: 0, Bytes: 5},
	}
	got := c.StepTimes(topo, 1, events)[0]
	if math.Abs(got-15) > 1e-12 {
		t.Fatalf("fan-in cost = %v, want 15", got)
	}
}

func TestStepsSumAndEmptySteps(t *testing.T) {
	topo := Topology{Nodes: 2, WorkersPerNode: 1}
	c := CostModel{InterAlpha: 1, InterBeta: 0}
	tr := collective.Trace{Steps: 3, Events: []collective.Event{
		{Step: 0, From: 0, To: 1, Bytes: 1},
		{Step: 2, From: 1, To: 0, Bytes: 1},
	}}
	// Step 1 has no events: zero duration.
	times := c.StepTimes(topo, tr.Steps, tr.Events)
	if len(times) != 3 || times[1] != 0 {
		t.Fatalf("times = %v", times)
	}
	if got := c.TraceTime(topo, tr); math.Abs(got-2) > 1e-12 {
		t.Fatalf("TraceTime = %v", got)
	}
}

func TestTraceTimeMergesLocalTraces(t *testing.T) {
	topo := Topology{Nodes: 2, WorkersPerNode: 1}
	c := CostModel{InterAlpha: 1, InterBeta: 0}
	a := collective.Trace{Steps: 2, Events: []collective.Event{{Step: 0, From: 0, To: 1, Bytes: 1}}}
	b := collective.Trace{Steps: 2, Events: []collective.Event{{Step: 1, From: 1, To: 0, Bytes: 1}}}
	if got := c.TraceTime(topo, a, b); math.Abs(got-2) > 1e-12 {
		t.Fatalf("merged TraceTime = %v", got)
	}
}

func TestStepOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := Tianhe2Like()
	c.StepTimes(Topology{Nodes: 1, WorkersPerNode: 2}, 1, []collective.Event{{Step: 5, From: 0, To: 1}})
}

func TestTianhe2LikeShape(t *testing.T) {
	c := Tianhe2Like()
	if c.IntraBeta >= c.InterBeta {
		t.Fatal("bus must be faster than interconnect")
	}
	if c.IntraAlpha >= c.InterAlpha {
		t.Fatal("bus latency must be below interconnect latency")
	}
	if c.ComputePerUnit <= 0 {
		t.Fatal("compute rate missing")
	}
}

func TestWorkUnitsAndComputeTime(t *testing.T) {
	u := WorkUnits(10, 5, 1000, 50)
	want := float64(15)*2*1000 + 6*50
	if u != want {
		t.Fatalf("WorkUnits = %v, want %v", u, want)
	}
	c := CostModel{ComputePerUnit: 2}
	if got := c.ComputeTime(3); got != 6 {
		t.Fatalf("ComputeTime = %v", got)
	}
}

func TestStragglerDeterminism(t *testing.T) {
	s := Default(7)
	for iter := 0; iter < 5; iter++ {
		for node := 0; node < 8; node++ {
			a := s.NodeFactor(iter, node)
			b := s.NodeFactor(iter, node)
			if a != b {
				t.Fatal("NodeFactor not deterministic")
			}
			if a != 1 && a != s.Slowdown {
				t.Fatalf("factor = %v", a)
			}
		}
	}
}

func TestStragglerRate(t *testing.T) {
	s := Stragglers{Seed: 3, Prob: 0.25, Slowdown: 4}
	slow := 0
	total := 0
	for iter := 0; iter < 200; iter++ {
		for node := 0; node < 32; node++ {
			total++
			if s.NodeFactor(iter, node) > 1 {
				slow++
			}
		}
	}
	rate := float64(slow) / float64(total)
	if rate < 0.18 || rate > 0.32 {
		t.Fatalf("observed straggler rate %v, want ≈0.25", rate)
	}
}

func TestStragglerDisabled(t *testing.T) {
	s := None()
	if s.Enabled() {
		t.Fatal("None() enabled")
	}
	if s.NodeFactor(0, 0) != 1 {
		t.Fatal("disabled injector altered factor")
	}
}

func TestStragglerSeedsDiffer(t *testing.T) {
	a := Default(1)
	b := Default(2)
	same := true
	for iter := 0; iter < 20 && same; iter++ {
		for node := 0; node < 16; node++ {
			if a.NodeFactor(iter, node) != b.NodeFactor(iter, node) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical straggler patterns")
	}
}
