package collective

import (
	"fmt"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// Recursive halving-doubling allreduce — the classic MPI large-message
// algorithm (Rabenseifner): log₂N reduce-scatter steps that halve the
// exchanged range while doubling the partner distance, then log₂N
// allgather steps in reverse. Included as a third comparator alongside
// Ring and PSR in the cost-model study: it matches Ring's bandwidth term
// with logarithmic latency, but inherits the same sparse-data imbalance
// sensitivity (each step ships whatever nonzeros fall in the circulating
// half). The group size must be a power of two.

// RHDAllreduceSparse sums the members' sparse vectors with recursive
// halving-doubling. tagBase reserves tags [tagBase, tagBase+2).
func RHDAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	p := g.Size()
	if p&(p-1) != 0 {
		return nil, Trace{}, fmt.Errorf("collective: RHD requires power-of-two group, got %d", p)
	}
	steps := 0
	for 1<<steps < p {
		steps++
	}
	tr := Trace{Steps: 2 * steps}
	if p == 1 {
		return v.Clone(), tr, nil
	}

	// cur is this member's working range, re-based to local coordinates;
	// base is its absolute offset in the full vector.
	cur := v.Clone()
	base := 0

	// Reduce-scatter: halve the range each step. Both partners compute
	// half := curDim/2 on identical curDim (same exchange history), so the
	// kept/sent pieces complement even for odd sizes.
	for s := 0; s < steps; s++ {
		partner := me ^ (1 << s)
		half := cur.Dim / 2
		var out, keep *sparse.Vector
		if me&(1<<s) == 0 {
			keep = cur.Slice(0, half)
			out = cur.Slice(half, cur.Dim)
		} else {
			out = cur.Slice(0, half)
			keep = cur.Slice(half, cur.Dim)
		}
		msg := wire.SparseMsg(tagBase, out)
		bytes := wire.PayloadBytes(msg)
		errc := sendAsync(ep, g.Ranks[partner], msg)
		in, err := ep.Recv(g.Ranks[partner], tagBase)
		if err != nil {
			return nil, tr, err
		}
		if err := <-errc; err != nil {
			return nil, tr, err
		}
		tr.add(s, ep.Rank(), g.Ranks[partner], bytes)
		if in.Sparse.Dim != keep.Dim {
			return nil, tr, fmt.Errorf("collective: RHD reduce dim %d, want %d", in.Sparse.Dim, keep.Dim)
		}
		cur = sparse.Merge(keep, in.Sparse)
		if me&(1<<s) != 0 {
			base += half
		}
	}

	// Allgather: reverse pattern, doubling the range. Partner widths may
	// differ by one element on odd splits; Concat handles both orders.
	for s := steps - 1; s >= 0; s-- {
		partner := me ^ (1 << s)
		msg := wire.SparseMsg(tagBase+1, cur)
		bytes := wire.PayloadBytes(msg)
		errc := sendAsync(ep, g.Ranks[partner], msg)
		in, err := ep.Recv(g.Ranks[partner], tagBase+1)
		if err != nil {
			return nil, tr, err
		}
		if err := <-errc; err != nil {
			return nil, tr, err
		}
		tr.add(2*steps-1-s, ep.Rank(), g.Ranks[partner], bytes)
		newDim := cur.Dim + in.Sparse.Dim
		if me&(1<<s) == 0 {
			// My range precedes the partner's.
			cur = sparse.Concat(newDim, []int{0, cur.Dim}, []*sparse.Vector{cur, in.Sparse})
		} else {
			base -= in.Sparse.Dim
			cur = sparse.Concat(newDim, []int{0, in.Sparse.Dim}, []*sparse.Vector{in.Sparse, cur})
		}
	}
	if base != 0 || cur.Dim != v.Dim {
		return nil, tr, fmt.Errorf("collective: RHD range bug base=%d dim=%d want dim %d", base, cur.Dim, v.Dim)
	}
	return cur, tr, nil
}
