package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// Elastic membership for the in-process engine: the fail-survive half of
// the failure model. When Config.Elastic is set, a dead rank does not
// abort the run — the strategies prune it from every collective and
// pending batch, the z-update averages over the survivors (the
// `contributors` scaling that keeps degraded consensus mathematically
// exact), and the engine retries the round over the shrunken world. The
// membership.Tracker is the single source of truth all of it consults.

// errPeersLost marks a round failure caused by group members dying
// mid-collective. It is the ONLY error the elastic engine retries: after
// the tracker absorbs the deaths, the next attempt runs over survivors.
var errPeersLost = errors.New("core: live peers lost mid-round")

// errRoundAborted is the latch's local unblock signal: another member of
// the same collective failed, so this member's attempt is void. Never
// escapes runGroup.
var errRoundAborted = errors.New("core: round attempt aborted")

// errScheduledKill is the cause recorded for deaths injected by
// FaultPlan.KillAtIteration.
var errScheduledKill = errors.New("scheduled kill (fault plan)")

// latchPoll is how often a latched Recv re-checks the abort flag.
const latchPoll = 2 * time.Millisecond

// latchEndpoint wraps a group member's endpoint with a shared abort
// latch. The elastic engine must NOT close the fabric on failure (the
// survivors keep using it), so blocked members are instead unblocked by
// polling: once any member errors, every other member's next poll
// returns errRoundAborted and the attempt unwinds cleanly.
type latchEndpoint struct {
	transport.Endpoint
	stop *atomic.Bool
}

func (l latchEndpoint) Send(to int, m wire.Message) error {
	if l.stop.Load() {
		return errRoundAborted
	}
	return l.Endpoint.Send(to, m)
}

func (l latchEndpoint) Recv(from int, tag int32) (wire.Message, error) {
	for {
		if l.stop.Load() {
			return wire.Message{}, errRoundAborted
		}
		m, err := l.Endpoint.RecvTimeout(from, tag, latchPoll)
		if err == nil || !errors.Is(err, transport.ErrTimeout) {
			return m, err
		}
	}
}

func (l latchEndpoint) RecvTimeout(from int, tag int32, d time.Duration) (wire.Message, error) {
	if d <= 0 {
		return l.Recv(from, tag)
	}
	deadline := time.Now().Add(d)
	for {
		if l.stop.Load() {
			return wire.Message{}, errRoundAborted
		}
		step := latchPoll
		if rem := time.Until(deadline); rem <= 0 {
			return wire.Message{}, fmt.Errorf("core: latched recv: %w", transport.ErrTimeout)
		} else if rem < step {
			step = rem
		}
		m, err := l.Endpoint.RecvTimeout(from, tag, step)
		if err == nil || !errors.Is(err, transport.ErrTimeout) {
			return m, err
		}
	}
}

// liveWorkersOf returns node n's live world ranks in topology order.
func (env *strategyEnv) liveWorkersOf(topo simnet.Topology, n int) []int {
	return env.members.Live(topo.WorkersOf(n))
}

// liveNodes returns the nodes with at least one live worker, plus each
// node's live rank list indexed by node.
func (env *strategyEnv) liveNodes(topo simnet.Topology) (nodes []int, ranksOf [][]int) {
	ranksOf = make([][]int, topo.Nodes)
	nodes = make([]int, 0, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		ranksOf[n] = env.liveWorkersOf(topo, n)
		if len(ranksOf[n]) > 0 {
			nodes = append(nodes, n)
		}
	}
	return nodes, ranksOf
}

// liveWorkers returns the live workers' state in rank order. With nobody
// dead it returns the full slice unchanged, so the happy path sums in
// exactly the pre-elastic order.
func (env *strategyEnv) liveWorkers() []*worker {
	if env.members.LiveCount() == len(env.ws) {
		return env.ws
	}
	out := make([]*worker, 0, env.members.LiveCount())
	for _, w := range env.ws {
		if env.members.Alive(w.rank) {
			out = append(out, w)
		}
	}
	return out
}

// allRanks returns the full world rank list [0, n).
func allRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// prunePending drops dead members from an in-flight batch in place,
// reporting whether anything was removed. A batch can shrink to zero
// members; the caller then discards it entirely.
func (env *strategyEnv) prunePending(p *pendingCompute) bool {
	keep := 0
	for i, r := range p.ranks {
		if !env.members.Alive(r) {
			continue
		}
		p.ranks[keep] = p.ranks[i]
		p.starts[keep] = p.starts[i]
		p.cals[keep] = p.cals[i]
		if p.vs != nil {
			p.vs[keep] = p.vs[i]
		}
		keep++
	}
	if keep == len(p.ranks) {
		return false
	}
	p.ranks = p.ranks[:keep]
	p.starts = p.starts[:keep]
	p.cals = p.cals[:keep]
	if p.vs != nil {
		p.vs = p.vs[:keep]
	}
	return true
}
