package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

// Property: zFromW on a sparse W is exactly equivalent to the dense
// ZUpdateL1 followed by compression — the sparse fast path must never
// change the math.
func TestZFromWMatchesDenseUpdate(t *testing.T) {
	f := func(seed int64, dimRaw, nRaw uint8) bool {
		dim := int(dimRaw%60) + 1
		n := int(nRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		lambda := r.Float64() * 2
		rho := r.Float64() + 0.1

		w := sparse.NewVector(dim, 0)
		for j := 0; j < dim; j++ {
			if r.Float64() < 0.4 {
				w.Append(int32(j), r.NormFloat64()*4)
			}
		}
		got := zFromW(w, lambda, rho, n)
		if got.Check() != nil {
			return false
		}
		want := make([]float64, dim)
		solver.ZUpdateL1(want, w.ToDense(), lambda, rho, n)
		return vec.Equal(got.ToDense(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: b-bit quantization has relative error ≤ 1/(2^(b−1)−1) of the
// vector's max magnitude, elementwise, and preserves signs of survivors.
func TestQuantizationErrorBound(t *testing.T) {
	f := func(seed int64, pick8 bool) bool {
		bits := 16
		if pick8 {
			bits = 8
		}
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(80) + 1
		orig := sparse.NewVector(dim, 0)
		for j := 0; j < dim; j++ {
			if r.Float64() < 0.5 {
				orig.Append(int32(j), r.NormFloat64()*10)
			}
		}
		var scale float64
		for _, v := range orig.Value {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		q := orig.Clone()
		exchange.QuantizeSparseBits(q, bits)
		if q.Check() != nil {
			return false
		}
		bound := scale/float64(int(1)<<(bits-1)-1)/2 + 1e-12
		od, qd := orig.ToDense(), q.ToDense()
		for j := range od {
			if math.Abs(od[j]-qd[j]) > bound {
				return false
			}
			if qd[j] != 0 && od[j] != 0 && math.Signbit(qd[j]) != math.Signbit(od[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: residuals are non-negative, zero iff full consensus and no
// movement.
func TestResidualProperties(t *testing.T) {
	train, _ := testData(t, 60)
	cfg := baseConfig(GCADMM, 2, 2)
	ws := newWorkers(cfg, train)
	for _, w := range ws {
		w.initReplicated()
	}
	z := make([]float64, train.Dim())
	zPrev := make([]float64, train.Dim())
	p, d := residuals(ws, z, zPrev, cfg.Rho)
	// x=z=0 initially: perfect consensus, no movement.
	if p != 0 || d != 0 {
		t.Fatalf("initial residuals %v %v, want 0 0", p, d)
	}
	// Perturb one worker's x: primal must become positive.
	if len(ws[0].active) == 0 {
		t.Skip("degenerate shard")
	}
	ws[0].xA[0] = 1
	p, d = residuals(ws, z, zPrev, cfg.Rho)
	if p <= 0 || d != 0 {
		t.Fatalf("perturbed residuals %v %v", p, d)
	}
	// Move z: dual becomes positive.
	z[0] = 0.5
	_, d = residuals(ws, z, zPrev, cfg.Rho)
	if d <= 0 {
		t.Fatalf("dual residual %v after z moved", d)
	}
}

// Property: wSparse equals the mathematical w = y + ρx reconstructed at
// full dimension, where off-active x_j = z_j and y_j = 0.
func TestWSparseMatchesDefinition(t *testing.T) {
	train, _ := testData(t, 80)
	cfg := baseConfig(GCADMM, 2, 2)
	cfg.MaxIter = 3
	// Drive a few iterations so x, y, z are non-trivial.
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	ws := newWorkers(cfg, train)
	for _, w := range ws {
		w.initReplicated()
	}
	for iter := 0; iter < 3; iter++ {
		calTimes := parallelXUpdates(cfg, ws, iter)
		_ = calTimes
		bigW := make([]float64, train.Dim())
		for _, w := range ws {
			w.wSparse(cfg.Rho).AddIntoDense(bigW, 1)
		}
		for _, w := range ws {
			w.applyW(cfg, bigW, len(ws))
		}
	}
	for _, w := range ws {
		got := w.wSparse(cfg.Rho).ToDense()
		want := make([]float64, train.Dim())
		// Reconstruct: active coords from (xA, yA); off-active from ρ·z.
		copy(want, w.zDense)
		vec.Scale(cfg.Rho, want)
		for i, c := range w.active {
			want[c] = w.yA[i] + cfg.Rho*w.xA[i]
		}
		if !vec.WithinTol(got, want, 1e-12) {
			t.Fatalf("worker %d wSparse deviates from definition", w.rank)
		}
	}
}
