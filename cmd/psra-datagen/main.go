// Command psra-datagen writes synthetic LIBSVM datasets shaped after the
// paper's corpora (Table 1):
//
//	psra-datagen -preset webspam -scale 0.001 -out webspam_small
//
// produces webspam_small.train.svm and webspam_small.test.svm.
package main

import (
	"flag"
	"fmt"
	"os"

	psra "psrahgadmm"
	"psrahgadmm/internal/dataset"
)

func main() {
	var (
		preset = flag.String("preset", "news20", "news20 | webspam | url | custom")
		scale  = flag.Float64("scale", 0.001, "preset scale in (0,1]; 1.0 = paper-size")
		seed   = flag.Int64("seed", 1, "generation seed")
		out    = flag.String("out", "", "output path prefix (default: the preset name)")

		dim    = flag.Int("dim", 10000, "custom: feature dimension")
		rows   = flag.Int("rows", 1000, "custom: training rows")
		test   = flag.Int("testrows", 200, "custom: test rows")
		rowNNZ = flag.Int("rownnz", 20, "custom: mean nonzeros per row")
		zipf   = flag.Float64("zipf", 1.3, "custom: feature popularity skew (>1)")
		signal = flag.Int("signal", 100, "custom: planted weight support size")
		noise  = flag.Float64("noise", 0.02, "custom: label flip probability")
	)
	flag.Parse()

	var cfg psra.SynthConfig
	switch *preset {
	case "news20":
		cfg = psra.News20Like(*scale, *seed)
	case "webspam":
		cfg = psra.WebspamLike(*scale, *seed)
	case "url":
		cfg = psra.URLLike(*scale, *seed)
	case "custom":
		cfg = psra.SynthConfig{
			Name: "custom", Dim: *dim, TrainRows: *rows, TestRows: *test,
			RowNNZ: *rowNNZ, ZipfS: *zipf, SignalNNZ: *signal,
			NoiseFlip: *noise, Seed: *seed,
		}
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}

	train, testSet, err := psra.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	prefix := *out
	if prefix == "" {
		prefix = cfg.Name
	}
	if err := write(prefix+".train.svm", train); err != nil {
		fatal(err)
	}
	if err := write(prefix+".test.svm", testSet); err != nil {
		fatal(err)
	}
	s := train.Summary()
	fmt.Printf("wrote %s.train.svm (%d×%d, %d nnz, density %.2e) and %s.test.svm (%d rows)\n",
		prefix, s.Rows, s.Dim, s.NNZ, s.Density, prefix, testSet.Rows())
}

func write(path string, d *psra.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dataset.WriteLIBSVM(f, d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psra-datagen:", err)
	os.Exit(1)
}
