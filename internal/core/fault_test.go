package core

import (
	"errors"
	"testing"
	"time"

	"psrahgadmm/internal/transport"
)

// TestRunAbortsOnWorkerDeath is the engine-level no-hang guarantee: with a
// fault plan that kills one rank mid-run, Run must return an error (not
// deadlock with the surviving workers blocked in a collective) and still
// hand back the partial result. The exact error may be the typed
// *PeerDownError or the ErrClosed fallout of the abort cascade; what is
// non-negotiable is that Run returns at all, promptly, on every algorithm's
// communication pattern.
func TestRunAbortsOnWorkerDeath(t *testing.T) {
	train, _ := testData(t, 120)
	for _, alg := range []Algorithm{PSRAHGADMM, PSRAADMM, GRADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 3, 2)
			cfg.MaxIter = 50
			// Rank 0 leads node 0, so it participates in every algorithm's
			// communication pattern (non-leader ranks never touch the
			// inter-node fabric in the hierarchical variants).
			cfg.Faults = &transport.FaultPlan{
				Seed:           9,
				KillAfterSends: map[int]int{0: 7},
			}
			type outcome struct {
				res *Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := Run(cfg, train, RunOptions{})
				done <- outcome{res, err}
			}()
			select {
			case o := <-done:
				if o.err == nil {
					t.Fatal("Run succeeded despite a killed worker")
				}
				if o.res == nil {
					t.Fatal("Run returned no partial result alongside the error")
				}
				if errors.Is(o.err, transport.ErrTimeout) {
					t.Fatalf("death surfaced as a timeout, not a failure: %v", o.err)
				}
				t.Logf("aborted with: %v", o.err)
			case <-time.After(60 * time.Second):
				t.Fatal("Run deadlocked after worker death")
			}
		})
	}
}

// TestRunWithBenignFaultsStillConverges exercises the delay injector on the
// happy path: jitter alone must not corrupt results or trip the failure
// detector.
func TestRunWithBenignFaultsStillConverges(t *testing.T) {
	train, test := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 3, 2)
	cfg.MaxIter = 10
	cfg.Faults = &transport.FaultPlan{Seed: 3, DelayProb: 0.2, MaxDelay: time.Millisecond}
	res, err := Run(cfg, train, RunOptions{Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective() >= res.History[0].Objective {
		t.Fatalf("objective did not decrease under jitter: %v → %v",
			res.History[0].Objective, res.FinalObjective())
	}
}
