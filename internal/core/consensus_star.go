package core

import (
	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

// starStrategy is the master–worker topology: every admitted worker ships
// its (x_i, y_i) to the master colocated with rank 0, which computes z
// from ALL workers' cached contributions and returns it. The master's
// links serialize both directions — the scalability wall §4.1 starts from.
// Under BSP this is classic GC-ADMM (full barrier, every worker fresh
// every round); under SSP it is AD-ADMM's worker-granular partial barrier
// (Zhang & Kwok's async consensus update: stale workers' previous w's
// stay in the sum).
type starStrategy struct {
	env      *strategyEnv
	clocks   []sspClock // per worker
	wCur     []*sparse.Vector
	pendingW []*sparse.Vector
	// masterFreeAt serializes consecutive rounds through the master's NIC.
	masterFreeAt float64
	// Reusable round scratch (barrier bookkeeping).
	finishes []float64
	fresh    []int
	idle     []int
	sub      []*worker
	// Robust-aggregation scratch: cws carries the coordinate×contributor
	// combine matrix (only its robust scratch is used — the star never
	// runs a wire collective through it), combined/combineSrcs are the
	// master-side combine's destination and source list.
	cws         collective.Workspace
	combined    *sparse.Vector
	combineSrcs []*sparse.Vector
}

func newStarStrategy(env *strategyEnv) *starStrategy {
	st := &starStrategy{
		env:      env,
		clocks:   make([]sspClock, len(env.ws)),
		wCur:     make([]*sparse.Vector, len(env.ws)),
		pendingW: make([]*sparse.Vector, len(env.ws)),
	}
	for i := range st.wCur {
		st.wCur[i] = sparse.NewVector(env.dim, 0)
	}
	return st
}

func (st *starStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	ws := env.ws
	topo := cfg.Topo
	var timing iterTiming

	// Reconcile: dead or quarantined workers leave the barrier and the
	// sum. The star has no fabric traffic, so deaths only ever arrive via
	// the engine's scheduled kills; the master role migrates to the first
	// live rank.
	if env.reconciles() {
		for i := range st.clocks {
			if st.clocks[i].pending != nil && !env.members.Alive(ws[i].rank) {
				st.clocks[i] = sspClock{}
				st.pendingW[i] = nil
			}
		}
	}

	// Launch compute on every idle live worker.
	idle := st.idle[:0]
	for i := range st.clocks {
		if st.clocks[i].pending == nil && env.members.Alive(ws[i].rank) {
			idle = append(idle, i)
		}
	}
	st.idle = idle
	sub := st.sub[:0]
	for _, i := range idle {
		sub = append(sub, ws[i])
	}
	st.sub = sub
	// The per-batch cal slices below copy the value out, so the pool's
	// scratch is safe to use directly.
	cals := env.pool.run(cfg, sub, iter)
	for j, i := range idle {
		w := ws[i]
		st.pendingW[i] = w.wSparse(cfg.Rho)
		env.encodeSparse(w.rank, st.pendingW[i])
		st.clocks[i].pending = &pendingCompute{
			finish: w.clock + cals[j],
			ranks:  []int{w.rank},
			starts: []float64{w.clock},
			cals:   []float64{cals[j]},
		}
	}

	contributors := env.members.LiveCount()
	cutoff := sspCutoff(st.clocks, env.sync.Quorum(contributors, 1), env.sync.Delay(), &st.finishes)
	st.fresh = admitted(st.clocks, cutoff, st.fresh)
	fresh := st.fresh
	for _, i := range fresh {
		st.wCur[i] = st.pendingW[i]
	}

	// The master — the first live rank — aggregates every live worker's
	// cached contribution (fresh or stale), then returns z to the fresh
	// workers. Only fresh workers pay wire time this round.
	master := env.members.FirstLive(allRanks(len(ws)))
	gatherStart := maxf(cutoff, st.masterFreeAt)
	tr := env.codec.WireTrace(starGatherTrace(master, fresh, env.dim))
	commT := cfg.Cost.TraceTime(topo, tr)
	timing.bytes += traceBytes(tr)
	end := gatherStart + commT
	st.masterFreeAt = end

	// The master is the robust aggregators' natural combine point: it
	// already sees every live contribution, so the trimmed-mean/median
	// center (scaled ×contributors, which the z-update divides back out)
	// drops straight in where the sum was. The mean path is untouched.
	var wAgg []float64
	if env.agg.Robust() {
		srcs := st.combineSrcs[:0]
		for i, wc := range st.wCur {
			if !env.members.Alive(ws[i].rank) {
				continue
			}
			srcs = append(srcs, wc)
		}
		st.combineSrcs = srcs
		st.combined = st.cws.CombineSparse(env.agg, env.dim, srcs, st.combined)
		wAgg = st.combined.ToDense()
	} else {
		acc := sparse.NewAccumulator(env.dim)
		for i, wc := range st.wCur {
			if !env.members.Alive(ws[i].rank) {
				continue
			}
			acc.Add(wc)
		}
		wAgg = acc.Sum().ToDense()
	}
	zDense := make([]float64, env.dim)
	// The store picks the z-update's contributor scaling: the global count
	// replicated, per-block live subscribers sharded; workers then retain
	// whatever storage their placement gives them (store.applyZ).
	env.store.zUpdateDense(zDense, wAgg, cfg, contributors)
	env.codec.EncodeDense(zDense)

	calSum, commSum := 0.0, 0.0
	for _, i := range fresh {
		p := st.clocks[i].pending
		env.store.applyZ(cfg, ws[i], zDense, nil)
		calSum += p.cals[0]
		commSum += end - p.starts[0] - p.cals[0]
		ws[i].clock = end
		st.clocks[i].pending = nil
		st.clocks[i].staleness = 0
		st.pendingW[i] = nil
	}
	bumpStale(st.clocks)
	if len(fresh) > 0 {
		timing.cal = calSum / float64(len(fresh))
		timing.comm = commSum / float64(len(fresh))
	}
	return timing, nil
}
