package simnet

import (
	"fmt"

	"psrahgadmm/internal/collective"
)

// TimeScratch holds the per-call state StepTimes needs — per-(step,
// endpoint) send/receive loads and the merged event list — as flat
// reusable slices instead of nested maps. One scratch per engine
// amortizes cost-model evaluation to zero allocation; it is resized
// on demand, so an elastic regroup that changes the world size needs no
// explicit invalidation.
//
// Bit-reproducibility: loads accumulate in event-slice order exactly as
// the map-based StepTimes does, and the per-step maximum is
// order-independent, so scratch-computed times are bit-identical to the
// allocating path (the golden-history tests pin this).
type TimeScratch struct {
	out, in []float64 // indexed step*world + rank
	touched []int32   // touched flat keys, first-touch order
	times   []float64
	events  []collective.Event // merge buffer for TraceTimeScratch
	world   int
}

// grow ensures capacity for steps×world load cells. Cells are kept clean
// between calls via the touched list, so growth only zero-fills new
// storage.
func (ts *TimeScratch) grow(steps, world int) {
	n := steps * world
	if cap(ts.out) < n {
		ts.out = make([]float64, n)
		ts.in = make([]float64, n)
	}
	ts.out = ts.out[:n]
	ts.in = ts.in[:n]
	ts.world = world
	if cap(ts.times) < steps {
		ts.times = make([]float64, steps)
	}
	ts.times = ts.times[:steps]
	for s := range ts.times {
		ts.times[s] = 0
	}
}

// StepTimesScratch is StepTimes computing into ts. The returned slice is
// owned by ts and valid until the next call; callers that keep it must
// copy. Results are bit-identical to StepTimes.
func (c CostModel) StepTimesScratch(ts *TimeScratch, topo Topology, steps int, events []collective.Event) []float64 {
	if steps == 0 {
		return nil
	}
	world := topo.Size()
	ts.grow(steps, world)
	for _, e := range events {
		if e.Step < 0 || e.Step >= steps {
			panic(fmt.Sprintf("simnet: event step %d out of [0,%d)", e.Step, steps))
		}
		alpha, beta := c.linkCost(topo, e.From, e.To)
		cost := alpha + beta*float64(e.Bytes)
		kf := int32(e.Step*world + e.From)
		kt := int32(e.Step*world + e.To)
		if ts.out[kf] == 0 && ts.in[kf] == 0 {
			ts.touched = append(ts.touched, kf)
		}
		ts.out[kf] += cost
		if ts.in[kt] == 0 && ts.out[kt] == 0 {
			ts.touched = append(ts.touched, kt)
		}
		ts.in[kt] += cost
	}
	for _, k := range ts.touched {
		s := int(k) / world
		if ts.out[k] > ts.times[s] {
			ts.times[s] = ts.out[k]
		}
		if ts.in[k] > ts.times[s] {
			ts.times[s] = ts.in[k]
		}
		ts.out[k] = 0
		ts.in[k] = 0
	}
	ts.touched = ts.touched[:0]
	return ts.times
}

// TraceTimeScratch is TraceTime computing through ts, merging the traces'
// events into ts's reusable buffer. Results are bit-identical to
// TraceTime.
func (c CostModel) TraceTimeScratch(ts *TimeScratch, topo Topology, traces ...collective.Trace) float64 {
	steps := 0
	ts.events = ts.events[:0]
	for _, tr := range traces {
		if tr.Steps > steps {
			steps = tr.Steps
		}
		ts.events = append(ts.events, tr.Events...)
	}
	var total float64
	for _, t := range c.StepTimesScratch(ts, topo, steps, ts.events) {
		total += t
	}
	return total
}
