package watchdog

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func healthy(t *testing.T, m *Monitor, iters int) {
	t.Helper()
	for i := 0; i < iters; i++ {
		if trip := m.Observe(i, 1.0/float64(i+1), 0.5/float64(i+1), 10-float64(i)*0.1, true); trip != nil {
			t.Fatalf("healthy iteration %d tripped: %v", i, trip)
		}
	}
}

func TestNilMonitorIsNoOp(t *testing.T) {
	var m *Monitor
	if trip := m.Observe(0, math.NaN(), math.Inf(1), math.NaN(), true); trip != nil {
		t.Fatal("nil monitor must never trip")
	}
	m.Reset() // must not panic
	if New(Config{}) != nil {
		t.Fatal("disabled config must build a nil monitor")
	}
}

func TestNonFiniteResidualTripsImmediately(t *testing.T) {
	m := New(Config{Enabled: true})
	trip := m.Observe(0, math.NaN(), 0, 1, true)
	if trip == nil || trip.Iter != 0 {
		t.Fatalf("trip = %v", trip)
	}
	if !errors.Is(trip, ErrDiverged) {
		t.Fatal("TripError must wrap ErrDiverged")
	}
}

func TestNonFiniteObjectiveTrips(t *testing.T) {
	m := New(Config{Enabled: true})
	if trip := m.Observe(0, 0.1, 0.1, math.Inf(1), true); trip == nil {
		t.Fatal("Inf objective must trip")
	}
	// Without an evaluation this iteration, the objective is not judged.
	m = New(Config{Enabled: true})
	if trip := m.Observe(0, 0.1, 0.1, math.NaN(), false); trip != nil {
		t.Fatalf("haveObj=false must skip the objective: %v", trip)
	}
}

func TestResidualExplosionNeedsFullWindow(t *testing.T) {
	m := New(Config{Enabled: true, Window: 4, ResidualFactor: 100})
	// Growing residuals before the window fills: tolerated (startup).
	for i := 0; i < 3; i++ {
		if trip := m.Observe(i, float64(i+1), 0, 1, true); trip != nil {
			t.Fatalf("pre-window trip: %v", trip)
		}
	}
	if trip := m.Observe(3, 1e6, 0, 1, true); trip != nil {
		t.Fatalf("window not yet full, explosion check must not fire: %v", trip)
	}
	// Window now full (values 1,2,3,1e6): min 1, so 1e6 would have tripped
	// had the window been full — prove it fires now.
	trip := m.Observe(4, 1e7, 0, 1, true)
	if trip == nil || !strings.Contains(trip.Reason, "residual explosion") {
		t.Fatalf("trip = %v, want residual explosion", trip)
	}
}

func TestObjectiveExplosion(t *testing.T) {
	m := New(Config{Enabled: true, Window: 3, ObjectiveFactor: 10})
	healthyObj := []float64{5, 4.5, 4}
	for i, o := range healthyObj {
		if trip := m.Observe(i, 0.1, 0.1, o, true); trip != nil {
			t.Fatalf("iteration %d tripped: %v", i, trip)
		}
	}
	trip := m.Observe(3, 0.1, 0.1, 4000, true)
	if trip == nil || !strings.Contains(trip.Reason, "objective explosion") {
		t.Fatalf("trip = %v, want objective explosion", trip)
	}
}

func TestResetClearsBaseline(t *testing.T) {
	m := New(Config{Enabled: true, Window: 3, ResidualFactor: 10})
	healthy(t, m, 6)
	m.Reset()
	// After a reset the very values that would have tripped are startup
	// transients again — the post-rollback replay builds a fresh baseline.
	if trip := m.Observe(0, 50, 0, 1, true); trip != nil {
		t.Fatalf("post-reset trip: %v", trip)
	}
}

func TestConvergedRunNeverTrips(t *testing.T) {
	m := New(Config{Enabled: true})
	for i := 0; i < 200; i++ {
		p := 1.0 / (1.0 + float64(i))
		if trip := m.Observe(i, p, p/2, 3+p, true); trip != nil {
			t.Fatalf("converging run tripped at %d: %v", i, trip)
		}
	}
	// Converged-to-zero residual with tiny jitter: the residualTiny floor
	// must keep noise from reading as an explosion.
	m2 := New(Config{Enabled: true, Window: 3})
	for i := 0; i < 10; i++ {
		if trip := m2.Observe(i, 1e-15, 1e-16, 1, true); trip != nil {
			t.Fatalf("zero-residual jitter tripped: %v", trip)
		}
	}
	if trip := m2.Observe(10, 1e-12, 0, 1, true); trip != nil {
		t.Fatalf("sub-floor jitter tripped: %v", trip)
	}
}

func TestScanNonFinite(t *testing.T) {
	if got := ScanNonFinite([]string{"x", "y"}, []float64{1, 2}, []float64{3}); got != "" {
		t.Fatalf("finite vectors reported %q", got)
	}
	got := ScanNonFinite([]string{"x", "y"}, []float64{1, 2}, []float64{3, math.NaN()})
	if !strings.Contains(got, "y[1]") {
		t.Fatalf("got %q, want y[1]", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Enabled: true, Window: -1}).Validate(); err == nil {
		t.Fatal("negative window must be rejected")
	}
	if err := (Config{Enabled: true, MaxRollbacks: -2}).Validate(); err == nil {
		t.Fatal("negative MaxRollbacks must be rejected")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config: %v", err)
	}
}
