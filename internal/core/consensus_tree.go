package core

import (
	"container/heap"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

// treeStrategy is PSRA-HGADMM's grouped aggregation, modeled as the
// paper's Algorithms 1–3 with the GG's "next grouping cycle" taken
// literally: a Leader that finishes a group synchronization re-enters the
// GG queue carrying the group's partial aggregate, so arrival-ordered
// groups of GroupThreshold Leaders form a *staged aggregation tree* that
// terminates in one exact global W. Consensus is exact every iteration
// (the property Figure 5's convergence requires); what grouping changes is
// the clock: early arrivals aggregate while stragglers are still
// computing, so the synchronization wait that a flat all-node collective
// serializes behind the slowest node is largely overlapped (the Figure 7
// effect). The flip side — visible at small node counts, and called out in
// the paper's §5.5 and conclusion — is the extra GG round trips and tree
// levels.
//
// Under SSP/async — a composition the monolithic variant could not
// express — stale nodes' cached partials enter the tree as leaves
// available at the cutoff, keeping W a full-N sum while only fresh nodes
// wait for (and receive) the result.

// aggEntry is one queue occupant: a Leader (or group representative)
// carrying a partial aggregate that becomes available at `ready`.
type aggEntry struct {
	seq   int // creation order, deterministic tie-break
	rep   int // world rank of the representative Leader
	value *sparse.Vector
	ready float64
	// children are the entries merged into this one (nil for leaves);
	// child 0's rep is this entry's rep.
	children []*aggEntry
	// leafNode is the physical node for leaf entries, -1 otherwise.
	leafNode int
}

// entryHeap orders by (ready, seq).
type entryHeap []*aggEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*aggEntry)) }
func (h *entryHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type treeStrategy struct {
	env    *strategyEnv
	clocks []sspClock // per node
	wCur   []*sparse.Vector
	pend   []*sparse.Vector
	// Reusable barrier scratch.
	finishes []float64
	fresh    []int
}

func newTreeStrategy(env *strategyEnv, cfg Config) *treeStrategy {
	nodes := cfg.Topo.Nodes
	st := &treeStrategy{
		env:    env,
		clocks: make([]sspClock, nodes),
		wCur:   make([]*sparse.Vector, nodes),
		pend:   make([]*sparse.Vector, nodes),
	}
	for n := range st.wCur {
		st.wCur[n] = sparse.NewVector(env.dim, 0)
	}
	return st
}

// reconcile absorbs membership changes since the last attempt: dead
// members leave every in-flight batch and the node partial sums are
// rebuilt from the survivors' retained contributions. A node with no
// survivors drops out entirely. Cached stale contributions (wCur) are
// left as-is — under SSP a dead worker's w can linger in a live node's
// cached partial for at most MaxDelay rounds (bounded staleness); under
// BSP every round is fresh and degraded consensus is exact.
func (st *treeStrategy) reconcile() {
	env := st.env
	for n := range st.clocks {
		p := st.clocks[n].pending
		if p == nil || !env.prunePending(p) {
			continue
		}
		if len(p.ranks) == 0 {
			st.clocks[n] = sspClock{}
			st.pend[n] = nil
			continue
		}
		st.pend[n] = sumSparse(env.dim, p.vs)
	}
}

func (st *treeStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	topo := cfg.Topo
	var timing iterTiming

	if env.reconciles() {
		st.reconcile()
	}
	liveNodes, ranksOf := env.liveNodes(topo)

	for _, n := range liveNodes {
		if st.clocks[n].pending != nil {
			continue
		}
		c := launchNodeSparse(env, cfg, n, iter)
		st.pend[n] = c.sum
		st.clocks[n].pending = c.pending
	}
	chargeLaunchBytes(st.clocks, iter, &timing)

	cutoff := sspCutoff(st.clocks, env.sync.Quorum(len(liveNodes), topo.WorkersPerNode), env.sync.Delay(), &st.finishes)
	freshSet := make(map[int]bool, topo.Nodes)
	st.fresh = admitted(st.clocks, cutoff, st.fresh)
	for _, n := range st.fresh {
		st.wCur[n] = st.pend[n]
		freshSet[n] = true
	}

	// Leaves: fresh nodes arrive at their finish time; stale nodes' cached
	// partials are available at the cutoff (the GG retained them). Fully
	// dead nodes are gone: their shards leave the consensus, and the
	// z-update rescales to the surviving worker count below.
	seq := 0
	pending := make(entryHeap, 0, len(liveNodes))
	for _, n := range liveNodes {
		ready := cutoff
		if freshSet[n] {
			ready = st.clocks[n].pending.finish
		}
		pending = append(pending, &aggEntry{
			seq:      seq,
			rep:      ranksOf[n][0],
			value:    st.wCur[n],
			ready:    ready,
			leafNode: n,
		})
		seq++
	}
	heap.Init(&pending)

	// Grouping threshold: a group of one cannot aggregate, so the
	// effective tree fan-in is at least 2 (unless there is only one node).
	threshold := cfg.GroupThreshold
	if threshold < 2 {
		threshold = 2
	}
	// A robust aggregator is non-associative: a merge of merges would trim
	// trimmed results. Force every node partial into ONE merge group, so
	// the single PSR combine sees all contributions at once. The statistic
	// is then node-granular — one Byzantine worker poisons its node's
	// partial and the trim drops that whole node — which is the honest
	// granularity of a hierarchy that sums within nodes first.
	if env.agg.Robust() && threshold < len(liveNodes) {
		threshold = len(liveNodes)
	}
	ggRTT := 2 * (cfg.Cost.InterAlpha + float64(ggRequestBytes)*cfg.Cost.InterBeta)

	merge := func(group []*aggEntry) (*aggEntry, error) {
		start := 0.0
		leaders := make([]int, len(group))
		inputs := make([]*sparse.Vector, len(group))
		for i, e := range group {
			start = maxf(start, e.ready)
			leaders[i] = e.rep
			inputs[i] = e.value
		}
		start += ggRTT
		timing.bytes += int64(len(group) * ggRequestBytes * 2)
		// The aggregate travels up the tree as a later merge's input, so
		// each merge gets its own result vector rather than crew scratch.
		agg := new(sparse.Vector)
		tr, err := groupAllreduce(env, leaders, commPSRSparse, inputs, agg)
		if err != nil {
			return nil, err
		}
		tr = env.codec.WireTrace(tr)
		timing.bytes += traceBytes(tr)
		e := &aggEntry{
			seq:      seq,
			rep:      group[0].rep,
			value:    agg,
			ready:    start + cfg.Cost.TraceTime(topo, tr),
			children: group,
			leafNode: -1,
		}
		seq++
		return e, nil
	}

	// Event-driven GG: arrivals (by virtual ready time) enter the queue;
	// a full queue forms a group; when nothing more can arrive, the
	// remainder is flushed. The loop conserves entries, terminating with
	// the single global aggregate.
	var queue []*aggEntry
	var root *aggEntry
	for {
		if pending.Len() == 0 {
			if len(queue) == 1 {
				root = queue[0]
				break
			}
			g, err := merge(queue)
			if err != nil {
				return timing, err
			}
			queue = nil
			heap.Push(&pending, g)
			continue
		}
		e := heap.Pop(&pending).(*aggEntry)
		queue = append(queue, e)
		if len(queue) == threshold {
			g, err := merge(queue)
			if err != nil {
				return timing, err
			}
			queue = nil
			heap.Push(&pending, g)
		}
	}

	// Down-pass: the root group's members already hold W (PSR-Allreduce
	// leaves every member with the result) and apply the z-update
	// themselves; what travels down the tree is the *thresholded* z —
	// identical at every worker and far sparser than W. Each
	// representative re-broadcasts down its subtree, and node Leaders
	// broadcast to their fresh workers over the bus; stale nodes are still
	// computing and receive nothing this round.
	// The store picks the z-update's contributor scaling: the live worker
	// count replicated, per-block live subscribers sharded (general-form
	// consensus); workers retain whatever storage their placement gives
	// them when the delivery lands (store.applyZ via applyNodeZ).
	zSparse := env.store.zFromW(root.value, cfg, env.members.LiveCount())
	zDense := zSparse.ToDense()
	wBytes := env.codec.ZMsgBytes(zSparse.NNZ())
	calSum, commSum := 0.0, 0.0
	applied := 0
	var deliver func(e *aggEntry, t float64)
	deliver = func(e *aggEntry, t float64) {
		if e.leafNode >= 0 {
			n := e.leafNode
			if !freshSet[n] {
				return
			}
			p := st.clocks[n].pending
			bc := intraBcastTrace(p.ranks, p.ranks[0], zSparse.NNZ())
			timing.bytes += traceBytes(bc)
			end := t + cfg.Cost.TraceTime(topo, bc)
			applyNodeZ(env, cfg, p, zDense, zSparse, end, &commSum, &applied)
			return
		}
		// Child 0's rep is e.rep and already holds W; the others receive
		// it in one step over the interconnect.
		tr := collective.Trace{Steps: 1}
		for _, c := range e.children[1:] {
			tr.Events = append(tr.Events, collective.Event{
				Step: 0, From: e.rep, To: c.rep, Bytes: wBytes,
			})
		}
		timing.bytes += traceBytes(tr)
		tNext := t + cfg.Cost.TraceTime(topo, tr)
		deliver(e.children[0], t)
		for _, c := range e.children[1:] {
			deliver(c, tNext)
		}
	}
	if root.leafNode >= 0 {
		// Single-node cluster: no tree was built.
		deliver(root, root.ready)
	} else {
		// Every member of the final group holds W at root.ready.
		for _, c := range root.children {
			deliver(c, root.ready)
		}
	}
	// Compute time is summed in rank order (delivery order drives comm),
	// so grouped and ungrouped runs report bit-identical CalTime.
	for n := 0; n < topo.Nodes; n++ {
		if !freshSet[n] {
			continue
		}
		for _, c := range st.clocks[n].pending.cals {
			calSum += c
		}
	}
	for n := range st.clocks {
		if freshSet[n] {
			st.clocks[n].pending = nil
			st.clocks[n].staleness = 0
			st.pend[n] = nil
		}
	}
	bumpStale(st.clocks)
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}
