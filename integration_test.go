package psrahgadmm

// Cross-path integration tests: the real message-passing WLG runtime
// (goroutines over the channel fabric — the code path cmd/psra-worker
// ships) and the deterministic simulation engine must agree on the
// numerics, since they implement the same recursion over the same
// substrate packages.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wlg"
)

// runWLGLogistic trains L1-logreg over the real WLG runtime and returns
// the consensus iterate after maxIter iterations.
func runWLGLogistic(t *testing.T, train *Dataset, topo simnet.Topology, rho, lambda float64, maxIter, threshold int) []float64 {
	t.Helper()
	fab := transport.NewChanFabric(wlg.WorldSize(topo))
	defer fab.Close()
	cfg := wlg.Config{Topo: topo, MaxIter: maxIter, GroupThreshold: threshold}
	shards := train.Shard(topo.Size())
	dim := train.Dim()

	var wg sync.WaitGroup
	errCh := make(chan error, wlg.WorldSize(topo))
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wlg.RunGG(fab.Endpoint(wlg.GGRank(topo)), cfg); err != nil {
			errCh <- fmt.Errorf("GG: %w", err)
		}
	}()
	finalZ := make([][]float64, topo.Size())
	for rank := 0; rank < topo.Size(); rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			x := make([]float64, dim)
			y := make([]float64, dim)
			z := make([]float64, dim)
			w := make([]float64, dim)
			obj := solver.NewLogisticProx(shards[rank].X, shards[rank].Labels, rho, y, z)
			funcs := wlg.WorkerFuncs{
				ComputeW: func(iter int) []float64 {
					solver.TRON(obj, x, solver.TronOptions{GradTol: 1e-9, MaxIter: 100, MaxCG: 100, CGTol: 1e-4})
					solver.WLocal(w, y, x, rho)
					return w
				},
				ApplyW: func(iter int, bigW []float64, contributors int) {
					solver.ZUpdateL1(z, bigW, lambda, rho, contributors)
					solver.DualUpdate(y, x, z, rho)
				},
			}
			if err := wlg.RunWorker(fab.Endpoint(rank), cfg, funcs); err != nil {
				errCh <- fmt.Errorf("worker %d: %w", rank, err)
			}
			finalZ[rank] = vec.Clone(z)
		}(rank)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for rank := 1; rank < topo.Size(); rank++ {
		if !vec.WithinTol(finalZ[rank], finalZ[0], 1e-9) {
			t.Fatalf("WLG rank %d not in consensus with rank 0", rank)
		}
	}
	return finalZ[0]
}

func TestWLGRuntimeMatchesEngine(t *testing.T) {
	train, _, err := Generate(News20Like(0.0005, 21))
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	const (
		rho, lambda = 1.0, 1.0
		iters       = 15
	)

	// Real runtime (exact consensus: one global group).
	zWLG := runWLGLogistic(t, train, topo, rho, lambda, iters, 0)

	// Simulation engine on the identical problem.
	cfg := Config{
		Algorithm: PSRAHGADMM,
		Topo:      topo,
		Rho:       rho, Lambda: lambda, MaxIter: iters,
		Tron: solver.TronOptions{GradTol: 1e-9, MaxIter: 100, MaxCG: 100, CGTol: 1e-4},
	}
	res, err := Train(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Same consensus iterate: the runtime runs full-dimension TRON, the
	// engine active-subspace TRON, so agreement is to subproblem
	// tolerance, not bitwise.
	if len(zWLG) != len(res.Z) {
		t.Fatalf("dimension mismatch %d vs %d", len(zWLG), len(res.Z))
	}
	var maxDiff float64
	for i := range zWLG {
		if d := math.Abs(zWLG[i] - res.Z[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("WLG runtime and engine diverge: max |Δz| = %v", maxDiff)
	}
}

func TestWLGRuntimeGroupedStillConverges(t *testing.T) {
	// Grouped (threshold 1 = per-node groups) WLG training must still
	// reduce each shard's loss even though consensus is group-local.
	train, _, err := Generate(News20Like(0.0005, 22))
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	z := runWLGLogisticGrouped(t, train, topo, 12)
	if vec.CountNonzero(z) == 0 {
		t.Fatal("grouped WLG training produced the zero model")
	}
	if acc := train.Accuracy(z); acc < 0.6 {
		t.Fatalf("grouped WLG training accuracy %v", acc)
	}
}

// runWLGLogisticGrouped runs with threshold 1 (node-local groups) and
// returns node 0's final z.
func runWLGLogisticGrouped(t *testing.T, train *Dataset, topo simnet.Topology, iters int) []float64 {
	t.Helper()
	fab := transport.NewChanFabric(wlg.WorldSize(topo))
	defer fab.Close()
	cfg := wlg.Config{Topo: topo, MaxIter: iters, GroupThreshold: 1}
	shards := train.Shard(topo.Size())
	dim := train.Dim()

	var wg sync.WaitGroup
	errCh := make(chan error, wlg.WorldSize(topo))
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wlg.RunGG(fab.Endpoint(wlg.GGRank(topo)), cfg); err != nil {
			errCh <- err
		}
	}()
	var z0 []float64
	var mu sync.Mutex
	for rank := 0; rank < topo.Size(); rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			x := make([]float64, dim)
			y := make([]float64, dim)
			z := make([]float64, dim)
			w := make([]float64, dim)
			obj := solver.NewLogisticProx(shards[rank].X, shards[rank].Labels, 1, y, z)
			funcs := wlg.WorkerFuncs{
				ComputeW: func(iter int) []float64 {
					solver.TRON(obj, x, solver.TronOptions{MaxIter: 20})
					solver.WLocal(w, y, x, 1)
					return w
				},
				ApplyW: func(iter int, bigW []float64, contributors int) {
					solver.ZUpdateL1(z, bigW, 1, 1, contributors)
					solver.DualUpdate(y, x, z, 1)
				},
			}
			if err := wlg.RunWorker(fab.Endpoint(rank), cfg, funcs); err != nil {
				errCh <- err
			}
			if rank == 0 {
				mu.Lock()
				z0 = vec.Clone(z)
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return z0
}
