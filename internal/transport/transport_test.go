package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// world builds n endpoints on the named fabric and returns them plus a
// cleanup function.
func world(t *testing.T, fabric string, n int) []Endpoint {
	t.Helper()
	switch fabric {
	case "chan":
		f := NewChanFabric(n)
		eps := make([]Endpoint, n)
		for i := range eps {
			eps[i] = f.Endpoint(i)
		}
		t.Cleanup(f.Close)
		return eps
	case "tcp":
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = "127.0.0.1:0"
		}
		// Listen first on ephemeral ports to learn real addresses, then
		// rebuild with fixed addresses. Simpler: grab n free ports.
		ports := freePorts(t, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[i])
		}
		eps := make([]Endpoint, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				eps[i], errs[i] = NewTCPEndpoint(i, addrs, TCPOptions{DialTimeout: 10 * time.Second})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", i, err)
			}
		}
		t.Cleanup(func() {
			for _, ep := range eps {
				ep.Close()
			}
		})
		return eps
	default:
		t.Fatalf("unknown fabric %q", fabric)
		return nil
	}
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]interface{ Close() error }, 0, n)
	for i := 0; i < n; i++ {
		ln, err := newLoopbackListener()
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.port
		lns = append(lns, ln.ln)
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func fabrics() []string { return []string{"chan", "tcp"} }

func TestPairwiseOrdering(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			const k = 100
			done := make(chan error, 1)
			go func() {
				for i := 0; i < k; i++ {
					if err := eps[0].Send(1, wire.Control(1, int64(i))); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			for i := 0; i < k; i++ {
				m, err := eps[1].Recv(0, 1)
				if err != nil {
					t.Fatal(err)
				}
				if m.Ints[0] != int64(i) {
					t.Fatalf("out of order: got %d want %d", m.Ints[0], i)
				}
				if m.From != 0 {
					t.Fatalf("From = %d", m.From)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			if err := eps[0].Send(1, wire.Control(10, 100)); err != nil {
				t.Fatal(err)
			}
			if err := eps[0].Send(1, wire.Control(20, 200)); err != nil {
				t.Fatal(err)
			}
			// Receive tag 20 first: tag 10 must be buffered, not lost.
			m, err := eps[1].Recv(0, 20)
			if err != nil || m.Ints[0] != 200 {
				t.Fatalf("tag 20: %v %v", m, err)
			}
			m, err = eps[1].Recv(0, 10)
			if err != nil || m.Ints[0] != 100 {
				t.Fatalf("tag 10: %v %v", m, err)
			}
		})
	}
}

func TestAnySource(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 4)
			for i := 1; i < 4; i++ {
				i := i
				go func() {
					if err := eps[i].Send(0, wire.Control(5, int64(i))); err != nil {
						t.Error(err)
					}
				}()
			}
			seen := map[int64]bool{}
			for i := 0; i < 3; i++ {
				m, err := eps[0].Recv(AnySource, 5)
				if err != nil {
					t.Fatal(err)
				}
				if int64(m.From) != m.Ints[0] {
					t.Fatalf("From %d != payload %d", m.From, m.Ints[0])
				}
				seen[m.Ints[0]] = true
			}
			if len(seen) != 3 {
				t.Fatalf("saw %v", seen)
			}
		})
	}
}

func TestAnySourceDoesNotStealOtherTags(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 3)
			if err := eps[1].Send(0, wire.Control(99, 1)); err != nil {
				t.Fatal(err)
			}
			if err := eps[2].Send(0, wire.Control(5, 2)); err != nil {
				t.Fatal(err)
			}
			m, err := eps[0].Recv(AnySource, 5)
			if err != nil || m.Ints[0] != 2 {
				t.Fatalf("AnySource matched wrong message: %v %v", m, err)
			}
			m, err = eps[0].Recv(1, 99)
			if err != nil || m.Ints[0] != 1 {
				t.Fatalf("buffered message lost: %v %v", m, err)
			}
		})
	}
}

func TestDenseAndSparsePayloads(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			x := []float64{1.5, -2.5, 0, 3.25}
			sv := sparse.FromDense([]float64{0, 7, 0, -1})
			go func() {
				eps[0].Send(1, wire.DenseMsg(1, x))
				eps[0].Send(1, wire.SparseMsg(2, sv))
			}()
			m, err := eps[1].Recv(0, 1)
			if err != nil || !vec.Equal(m.Dense, x) {
				t.Fatalf("dense: %v %v", m.Dense, err)
			}
			m, err = eps[1].Recv(0, 2)
			if err != nil || !vec.Equal(m.Sparse.ToDense(), sv.ToDense()) {
				t.Fatalf("sparse: %v", err)
			}
		})
	}
}

func TestAllToAllExchange(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			const n = 6
			eps := world(t, fab, n)
			var wg sync.WaitGroup
			errCh := make(chan error, n)
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ep := eps[r]
					for p := 0; p < n; p++ {
						if p == r {
							continue
						}
						if err := ep.Send(p, wire.Control(int32(r), int64(r*100+p))); err != nil {
							errCh <- err
							return
						}
					}
					for p := 0; p < n; p++ {
						if p == r {
							continue
						}
						m, err := ep.Recv(p, int32(p))
						if err != nil {
							errCh <- err
							return
						}
						if m.Ints[0] != int64(p*100+r) {
							errCh <- fmt.Errorf("rank %d from %d: got %d", r, p, m.Ints[0])
							return
						}
					}
				}(r)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			if fab == "chan" {
				// Chan fabric: self-send goes through own inbox too.
			}
			if err := eps[0].Send(0, wire.Control(1, 42)); err != nil {
				t.Fatal(err)
			}
			m, err := eps[0].Recv(0, 1)
			if err != nil || m.Ints[0] != 42 {
				t.Fatalf("self-send: %v %v", m, err)
			}
		})
	}
}

func TestStats(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			m := wire.DenseMsg(1, []float64{1, 2, 3})
			if err := eps[0].Send(1, m); err != nil {
				t.Fatal(err)
			}
			s := eps[0].Stats()
			if s.MsgsSent != 1 {
				t.Fatalf("MsgsSent = %d", s.MsgsSent)
			}
			if s.BytesSent != int64(wire.EncodedBytes(m)) {
				t.Fatalf("BytesSent = %d, want %d", s.BytesSent, wire.EncodedBytes(m))
			}
		})
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			done := make(chan error, 1)
			go func() {
				_, err := eps[1].Recv(0, 1)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			eps[1].Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("err = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock after Close")
			}
		})
	}
}

func TestSendInvalidRank(t *testing.T) {
	eps := world(t, "chan", 2)
	if err := eps[0].Send(5, wire.Control(1)); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
	if _, err := eps[0].Recv(9, 1); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}

func TestChanSendToClosedPeer(t *testing.T) {
	f := NewChanFabric(2)
	defer f.Close()
	f.Endpoint(1).Close()
	err := f.Endpoint(0).Send(1, wire.Control(1))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	for _, fab := range fabrics() {
		t.Run(fab, func(t *testing.T) {
			eps := world(t, fab, 2)
			if err := eps[0].Close(); err != nil {
				t.Fatal(err)
			}
			if err := eps[0].Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func BenchmarkChanRoundTrip(b *testing.B) {
	f := NewChanFabric(2)
	defer f.Close()
	a, c := f.Endpoint(0), f.Endpoint(1)
	x := make([]float64, 1024)
	go func() {
		for {
			m, err := c.Recv(0, 1)
			if err != nil {
				return
			}
			if err := c.Send(0, m); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Send(1, wire.DenseMsg(1, x)); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
