package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

func TestResidualsShrink(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 4, 2)
	cfg.MaxIter = 40
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[1] // iteration 0's dual residual is vs z_prev = 0
	last := res.History[len(res.History)-1]
	if !(last.PrimalRes < first.PrimalRes) {
		t.Fatalf("primal residual did not shrink: %v → %v", first.PrimalRes, last.PrimalRes)
	}
	if !(last.DualRes < first.DualRes) {
		t.Fatalf("dual residual did not shrink: %v → %v", first.DualRes, last.DualRes)
	}
	if last.Rho != cfg.Rho {
		t.Fatalf("rho changed without AdaptiveRho: %v", last.Rho)
	}
}

func TestEarlyStoppingOnTol(t *testing.T) {
	train, _ := testData(t, 120)
	cfg := baseConfig(PSRAHGADMM, 4, 2)
	cfg.MaxIter = 200
	cfg.Tol = 1e-2
	cfg.EvalEvery = 1000 // evaluation must not be required for stopping
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("Tol stopping never fired")
	}
	if len(res.History) >= cfg.MaxIter {
		t.Fatalf("ran all %d iterations despite Tol", len(res.History))
	}
	last := res.History[len(res.History)-1]
	if last.PrimalRes > cfg.Tol || last.DualRes > cfg.Tol {
		t.Fatalf("stopped with residuals above Tol: %v %v", last.PrimalRes, last.DualRes)
	}
}

func TestAdaptiveRhoAdjustsAndConverges(t *testing.T) {
	train, _ := testData(t, 120)
	// Deliberately bad initial penalty: adaptation must correct it.
	mk := func(adaptive bool) *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.Rho = 0.01
		cfg.MaxIter = 40
		cfg.AdaptiveRho = adaptive
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	adaptive := mk(true)
	fixed := mk(false)

	changed := false
	for _, h := range adaptive.History {
		if h.Rho != 0.01 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("AdaptiveRho never adjusted the penalty")
	}
	// With a badly small initial ρ the adaptive run should end closer to
	// consensus (smaller primal residual).
	aLast := adaptive.History[len(adaptive.History)-1]
	fLast := fixed.History[len(fixed.History)-1]
	if aLast.PrimalRes >= fLast.PrimalRes {
		t.Fatalf("adaptive primal residual %v not below fixed %v", aLast.PrimalRes, fLast.PrimalRes)
	}
}

func TestAdaptRhoRule(t *testing.T) {
	if got := adaptRho(1, 100, 1, 10, 2); got != 2 {
		t.Fatalf("primal-dominant: %v", got)
	}
	if got := adaptRho(1, 1, 100, 10, 2); got != 0.5 {
		t.Fatalf("dual-dominant: %v", got)
	}
	if got := adaptRho(1, 5, 4, 10, 2); got != 1 {
		t.Fatalf("balanced: %v", got)
	}
}

func TestQuantizedCommunication(t *testing.T) {
	train, test := testData(t, 160)
	run := func(bits int) *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.MaxIter = 25
		cfg.QuantBits = bits
		res, err := Run(cfg, train, RunOptions{Test: test})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(0)
	q16 := run(16)
	q8 := run(8)

	// Bytes must shrink monotonically with precision.
	if !(q8.TotalBytes < q16.TotalBytes && q16.TotalBytes < full.TotalBytes) {
		t.Fatalf("byte ordering: q8=%d q16=%d full=%d", q8.TotalBytes, q16.TotalBytes, full.TotalBytes)
	}
	// 16-bit quantization should barely hurt the objective; 8-bit may
	// hurt more but must still optimize.
	if q16.FinalObjective() > full.FinalObjective()*1.1 {
		t.Fatalf("16-bit objective %v far above full %v", q16.FinalObjective(), full.FinalObjective())
	}
	if q8.FinalObjective() >= q8.History[0].Objective {
		t.Fatal("8-bit quantization prevented optimization")
	}
}

func TestQuantizeSparseBits(t *testing.T) {
	v := sparse.FromDense([]float64{1, 0, -0.5, 0.001, 0})
	exchange.QuantizeSparseBits(v, 8)
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	d := v.ToDense()
	if math.Abs(d[0]-1) > 1.0/127+1e-12 {
		t.Fatalf("max element moved: %v", d[0])
	}
	if math.Abs(d[2]+0.5) > 1.0/127+1e-12 {
		t.Fatalf("mid element error: %v", d[2])
	}
	// Tiny element rounds to zero and must be dropped.
	if d[3] != 0 {
		t.Fatalf("tiny element survived: %v", d[3])
	}
	// Empty and zero vectors are no-ops.
	empty := sparse.NewVector(3, 0)
	exchange.QuantizeSparseBits(empty, 8)
	if empty.NNZ() != 0 {
		t.Fatal("empty vector changed")
	}
}

func TestQuantEntryBytes(t *testing.T) {
	if exchange.EntryBytes(0) != 12 || exchange.EntryBytes(8) != 5 || exchange.EntryBytes(16) != 6 {
		t.Fatal("exchange.EntryBytes wrong")
	}
}

func TestQuantBitsValidation(t *testing.T) {
	train, _ := testData(t, 60)
	cfg := baseConfig(PSRAHGADMM, 2, 1)
	cfg.QuantBits = 7
	if _, err := Run(cfg, train, RunOptions{}); err == nil {
		t.Fatal("QuantBits=7 accepted")
	}
}

func TestReferenceOptimumAgreesWithFISTA(t *testing.T) {
	// Two unrelated solvers — consensus ADMM (TRON inner solves) and
	// FISTA (accelerated proximal gradient) — must agree on the global
	// optimum of the L1-logistic problem.
	train, _ := testData(t, 120)
	lambda := 0.5
	fADMM, _, err := ReferenceOptimum(train, 1.0, lambda, 200)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, train.Dim())
	fres := solver.FISTA(train.X, train.Labels, lambda, x, solver.FISTAOptions{MaxIter: 4000, Tol: 1e-12})
	var loss float64
	for r := 0; r < train.Rows(); r++ {
		loss += solver.LogLoss(train.Labels[r] * train.X.RowDot(r, x))
	}
	fFISTA := loss + lambda*vec.Nrm1(x)
	if math.Abs(fADMM-fFISTA) > 5e-3*(1+math.Abs(fFISTA)) {
		t.Fatalf("solvers disagree on f*: ADMM %v vs FISTA %v (FISTA converged=%v after %d iters)",
			fADMM, fFISTA, fres.Converged, fres.Iters)
	}
}
