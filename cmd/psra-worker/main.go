// Command psra-worker is one rank of a genuinely distributed PSRA-HGADMM
// run over a TCP mesh — the multi-process counterpart of the in-process
// engine. Start nodes×wpn worker processes plus one Group Generator
// process (the last rank); every process receives the same -addrs list and
// its own -rank:
//
//	ADDRS=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//	psra-worker -rank 0 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 1 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 2 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 3 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 4 -addrs $ADDRS -nodes 2 -wpn 2   # the GG
//
// Every process generates the identical synthetic dataset from -seed and
// takes the shard matching its rank, so no data distribution step is
// needed.
//
// With -elastic the run survives worker deaths: nodes re-elect their
// Leader, inter-node aggregation routes through the GG (which caches
// results for recovery), and surviving ranks train to completion on the
// shrunken world. -start-iter resumes a run's tail after a restart.
//
// Exit codes tell orchestration what happened:
//
//	0 — clean completion, nobody lost
//	1 — local failure (bad flags, dataset, I/O)
//	3 — unrecoverable peer loss: a peer died and the run could not
//	    continue without it (always the outcome of a death without
//	    -elastic)
//	4 — degraded completion: all iterations finished, but peers died or
//	    contributions were skipped along the way (-elastic only)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	psra "psrahgadmm"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/prof"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wlg"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this process's rank (workers first, GG last)")
		addrs     = flag.String("addrs", "", "comma-separated host:port of every rank")
		nodes     = flag.Int("nodes", 2, "logical nodes")
		wpn       = flag.Int("wpn", 2, "workers per node")
		iters     = flag.Int("iters", 30, "outer iterations")
		threshold = flag.Int("threshold", 0, "GQ grouping threshold in nodes (0 = all)")
		codec     = flag.String("codec", "", "exchange codec: sparse | sparse-q8 | sparse-q16 | dense | dense-f32 (empty = exact)")
		rho       = flag.Float64("rho", 1, "ADMM penalty parameter ρ")
		lambda    = flag.Float64("lambda", 1, "L1 regularization weight λ")
		synth     = flag.String("synth", "news20", "synthetic preset: news20 | webspam | url")
		scale     = flag.Float64("scale", 0.001, "preset scale")
		seed      = flag.Int64("seed", 1, "generation seed (must match across ranks)")
		timeout   = flag.Duration("timeout", time.Minute, "mesh establishment timeout")
		heartbeat = flag.Duration("heartbeat", time.Second, "keepalive interval on idle connections (negative disables)")
		peerDead  = flag.Duration("peer-timeout", 15*time.Second, "declare a peer dead after this much silence (0 disables)")
		elastic   = flag.Bool("elastic", false, "survive peer deaths: re-elect Leaders and keep training (exit 4 when degraded)")
		startIter = flag.Int("start-iter", 0, "first iteration to execute (resume a run's tail after a restart)")
	)
	profiles := prof.Register(flag.CommandLine)
	flag.Parse()

	if err := profiles.Start(); err != nil {
		fatal(err)
	}
	topo := simnet.Topology{Nodes: *nodes, WorkersPerNode: *wpn}
	world := wlg.WorldSize(topo)
	addrList := strings.Split(*addrs, ",")
	if len(addrList) != world {
		fatal(fmt.Errorf("need %d addresses (workers + GG), got %d", world, len(addrList)))
	}
	if *rank < 0 || *rank >= world {
		fatal(fmt.Errorf("rank %d out of [0,%d)", *rank, world))
	}

	ep, err := transport.NewTCPEndpoint(*rank, addrList, transport.TCPOptions{
		DialTimeout:       *timeout,
		HeartbeatInterval: *heartbeat,
		PeerTimeout:       *peerDead,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()

	cfg := wlg.Config{
		Topo:           topo,
		MaxIter:        *iters,
		GroupThreshold: *threshold,
		Codec:          exchange.Kind(*codec),
		Elastic:        *elastic,
		StartIter:      *startIter,
	}
	if *rank == wlg.GGRank(topo) {
		fmt.Printf("rank %d: group generator serving %d nodes × %d iterations\n", *rank, *nodes, *iters)
		if err := wlg.RunGG(ep, cfg); err != nil {
			fatal(err)
		}
		if err := profiles.Stop(); err != nil {
			fatal(err)
		}
		return
	}

	var preset psra.SynthConfig
	switch *synth {
	case "news20":
		preset = psra.News20Like(*scale, *seed)
	case "webspam":
		preset = psra.WebspamLike(*scale, *seed)
	case "url":
		preset = psra.URLLike(*scale, *seed)
	default:
		fatal(fmt.Errorf("unknown preset %q", *synth))
	}
	train, _, err := psra.Generate(preset)
	if err != nil {
		fatal(err)
	}
	shard := train.Shard(topo.Size())[*rank]
	dim := train.Dim()
	fmt.Printf("rank %d: node %d, shard %d×%d (%d nnz)\n",
		*rank, topo.NodeOf(*rank), shard.Rows(), dim, shard.NNZ())

	x := make([]float64, dim)
	y := make([]float64, dim)
	z := make([]float64, dim)
	w := make([]float64, dim)
	obj := solver.NewLogisticProx(shard.X, shard.Labels, *rho, y, z)

	funcs := wlg.WorkerFuncs{
		ComputeW: func(iter int) []float64 {
			solver.TRON(obj, x, solver.TronOptions{MaxIter: 10, MaxCG: 20})
			solver.WLocal(w, y, x, *rho)
			return w
		},
		ApplyW: func(iter int, bigW []float64, contributors int) {
			solver.ZUpdateL1(z, bigW, *lambda, *rho, contributors)
			solver.DualUpdate(y, x, z, *rho)
			if *rank == 0 && (iter%5 == 0 || iter == *iters-1) {
				fmt.Printf("rank 0: iter %3d  local loss %.4f  ‖z‖₁ %.4f  z nnz %d  (group of %d workers)\n",
					iter+1, obj.LocalLoss(z), vec.Nrm1(z), vec.CountNonzero(z), contributors)
			}
		},
	}
	info, err := wlg.RunWorkerInfo(ep, cfg, funcs)
	if err != nil {
		fatal(err)
	}
	// Profiles flush before the degraded os.Exit below: a degraded-but-
	// complete run is a clean exit as far as profiling is concerned.
	if err := profiles.Stop(); err != nil {
		fatal(err)
	}
	if info.Degraded() {
		fmt.Printf("rank %d: done DEGRADED — %d workers alive, %d deaths absorbed, %d contributions skipped, %d short rounds\n",
			*rank, info.LiveWorkers, info.Epoch, info.Skipped, info.ShortRounds)
		os.Exit(4)
	}
	fmt.Printf("rank %d: done\n", *rank)
}

// fatal exits nonzero with a diagnostic. Peer loss gets its own exit code
// (3, "unrecoverable") and a pointed message so orchestration (and humans
// reading logs) can tell "a neighbor died and took the run with it" apart
// from local failures — and apart from exit 4, a degraded-but-complete
// elastic run.
func fatal(err error) {
	var pd *transport.PeerDownError
	if errors.As(err, &pd) {
		fmt.Fprintf(os.Stderr, "psra-worker: peer rank %d is down (%v); aborting run: %v\n", pd.Peer, pd.Cause, err)
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "psra-worker:", err)
	os.Exit(1)
}
