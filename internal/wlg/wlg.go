// Package wlg implements the paper's Worker-Leader-Group generator
// framework (§4.3, Algorithms 1–3) as a real message-passing runtime over
// transport.Endpoint:
//
//   - Workers on one physical node form an intra-node communication domain
//     and elect a Leader (the node's first rank, mirroring how MPI
//     communicators elect rank 0).
//   - Each iteration, workers reduce their contribution w_i to the Leader
//     (BSP, blocking — the fast memory bus), the Leader reports to the
//     Group Generator, the GG batches Leaders into inter-node groups of a
//     configurable threshold in arrival order (FIFO queue GQ), and each
//     group runs PSR-Allreduce among its Leaders before the Leaders
//     broadcast the aggregate back to their workers.
//
// The runtime is algorithm-agnostic: the ADMM math is supplied through
// callbacks, so the same machinery serves PSRA-HGADMM, its flat PSRA-ADMM
// special case (threshold = all nodes), and the lasso example. It runs
// identically over the in-process channel fabric and the TCP fabric.
package wlg

import (
	"errors"
	"fmt"
	"sync"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/watchdog"
	"psrahgadmm/internal/wire"
)

// GGRank returns the world rank reserved for the Group Generator: one past
// the last worker. A WLG world therefore has topo.Size()+1 endpoints.
func GGRank(topo simnet.Topology) int { return topo.Size() }

// WorldSize returns the endpoint count a WLG run needs (workers + GG).
func WorldSize(topo simnet.Topology) int { return topo.Size() + 1 }

// LeaderOf returns the rank acting as Leader for node n (its first worker).
func LeaderOf(topo simnet.Topology, n int) int { return topo.WorkersOf(n)[0] }

// IsLeader reports whether rank r is its node's Leader.
func IsLeader(topo simnet.Topology, r int) bool {
	return r == LeaderOf(topo, topo.NodeOf(r))
}

// Tag layout: each iteration gets a disjoint tag window so messages from
// consecutive iterations cannot be confused even when groups run ahead.
const (
	tagsPerIter = 8
	tagIterBase = 1 << 10
	offIntraRed = 0
	offGGReply  = 2
	offInterAR  = 3 // PSR-Allreduce uses two tags: offInterAR, offInterAR+1
	offIntraBc  = 5
	offIntraBc2 = 6

	// tagGGRequest is the single fixed tag Leaders use to report to the
	// GG; the iteration travels in the payload so the GG can match
	// requests from interleaved iterations with one Recv.
	tagGGRequest int32 = 512
)

func iterTag(iter, off int) int32 {
	return int32(tagIterBase + iter*tagsPerIter + off)
}

// Config parameterizes a WLG run.
type Config struct {
	Topo simnet.Topology
	// MaxIter is the number of outer ADMM iterations.
	MaxIter int
	// GroupThreshold is the GQ batching threshold in Leaders. Values < 1
	// or > Nodes are clamped to Nodes (one global group = exact
	// consensus, the "ungrouped" baseline of Figure 7).
	GroupThreshold int
	// Codec selects the exchange representation from the same codec axis
	// the engine's registry binds (exchange.Kinds()). Lossy codecs round
	// each worker's contribution in place before it enters the intra-node
	// reduce, so the runtime aggregates exactly what a real lossy wire
	// would deliver. Empty means the exact exchange. The top-k kinds
	// additionally switch the plain runtime to sparse transport with a
	// per-rank error-feedback state (see topk.go); the elastic runtime
	// keeps dense frames and applies only the selection to the values.
	Codec exchange.Kind
	// CodecBudgetBytes targets the top-k codecs' adaptive selection in the
	// plain runtime: each rank steers its k so its own contribution's wire
	// bytes approach this figure. 0 keeps the default fixed k. Ignored by
	// non-topk codecs and by the elastic runtime (dense frames make byte
	// feedback meaningless there).
	CodecBudgetBytes int64
	// ShardBlocks > 0 routes the sparse inter-Leader aggregation through
	// the shard-aware collective: the model dimension is partitioned into
	// this many contiguous blocks, each group's Leaders own blocks round-
	// robin by group position, and every Leader reduces only the blocks it
	// owns before the per-owner gather reassembles the full aggregate
	// (full subscription — every Leader still receives all blocks back).
	// The per-block reduction order matches the plain PSR-Allreduce, so
	// the aggregate is bit-identical; what changes is the schedule. 0
	// keeps the classic chunked PSR-Allreduce. Only the sparse-transport
	// (top-k) plain runtime consults it; the dense and elastic paths
	// ignore it.
	ShardBlocks int
	// Elastic selects fail-survive semantics: worker deaths shrink the
	// world instead of aborting the run. Each rank keeps a membership view
	// fed by transport evidence, nodes re-elect their Leader as the first
	// live rank, and inter-node aggregation routes through the Group
	// Generator (which caches per-iteration results so orphaned workers
	// can recover them) instead of the leader-to-leader PSR-Allreduce —
	// robustness bought with GG bandwidth. See elastic.go.
	Elastic bool
	// StartIter is the first iteration to execute (resume support: a run
	// restored from a checkpoint at iteration k passes StartIter = k).
	// Iteration tags are absolute, so a resumed world is wire-compatible
	// with a fresh one.
	StartIter int
	// Rejoin marks this rank as a returning incarnation of a previously
	// dead worker (fail-recover). Instead of starting at StartIter, the
	// rank announces itself to the Group Generator, receives its join
	// iteration, the current dead set, and the latest group aggregate for
	// a warm start (surfaced through WorkerFuncs.Rejoined), and enters the
	// elastic loop at the join boundary — the iteration from which every
	// survivor's membership view re-admits it. Requires Elastic; see
	// rejoin.go for the handshake.
	Rejoin bool
	// Retry bounds every elastic-mode wait on a peer (the Leader's gather,
	// the GG round trips, the member's wait for the broadcast). The zero
	// value means the collective package defaults. Only consulted when
	// Elastic is set.
	Retry collective.RetryPolicy
	// MinBarrier is the SSP partial-barrier size in workers, the paper's
	// Min_barrier applied to the elastic Leader's gather: once a Leader
	// holds max(1, MinBarrier/Topo.Nodes) contributions for the round
	// (its per-node share of the barrier), remaining live members get a
	// single-attempt probe instead of the full Retry budget — laggards
	// are skipped as stale rather than waited out. 0 keeps the full
	// gather (every live member gets the whole budget, the BSP-flavored
	// default). Unlike the engine's SSP, a skipped contribution is absent
	// from the round's sum, not replayed from cache: the runtime has no
	// cached w_i, so MinBarrier here bounds WAIT, and the contributor
	// count that travels with every aggregate keeps the averaging exact.
	// Only consulted when Elastic is set.
	MinBarrier int
	// MaxDelay bounds a member's consecutive skipped rounds (the paper's
	// Max_delay): a member already MaxDelay rounds stale is waited on
	// with the full Retry budget even after the barrier is met, so no
	// rank's staleness grows without bound. 0 defaults to 5, the paper's
	// setting. Only meaningful with MinBarrier > 0.
	MaxDelay int
	// Watchdog enables per-rank divergence detection: each worker scans
	// its own contribution and every received aggregate for NaN/Inf and
	// tracks their magnitudes against a sliding window (the runtime never
	// sees residuals — those are the algorithm's business — so the
	// watchdog monitors the vectors that actually cross the wire). A trip
	// surfaces as a typed *DivergedError before ApplyW runs, so poisoned
	// aggregates never reach algorithm state; RunWithRecovery turns that
	// abort into a coordinated checkpoint rollback. See recover.go.
	Watchdog watchdog.Config
	// Aggregator selects the consensus statistic the elastic Group
	// Generator applies when it flushes a group (collective.AggNames):
	// "mean" (the default — the exact sum path, bit-identical to the
	// pre-aggregator runtime), "trimmed-mean", or "coordinate-median".
	// Robust statistics are non-associative, so they require Elastic mode,
	// where the GG is the runtime's single combine point; the fail-stop
	// leader-to-leader PSR-Allreduce is sum-only. Granularity is the
	// node: a group's entries are per-node sums, so one Byzantine worker
	// poisons its node's entry and the trim drops that whole node.
	Aggregator string
	// TrimF is the per-side trim count for "trimmed-mean" (0 defaults to
	// 1). Ignored by the other aggregators.
	TrimF int
	// Screen enables leader-side contribution screening (elastic only):
	// each Leader scores every gathered member contribution against that
	// member's own running baseline, excludes flagged contributions from
	// the node sum, and — after ScreenConfig.Strikes consecutive flags —
	// quarantines the member and publishes the evidence through the GG's
	// append-only log, where it piggybacks on every control reply exactly
	// like a rejoin record. A quarantined rank re-enters through the
	// rejoin handshake after QuarantineRounds clean self-probes.
	Screen watchdog.ScreenConfig
	// QuarantineRounds is how many consecutive clean self-probes a
	// quarantined rank needs before it may announce a rejoin. 0 defaults
	// to 3.
	QuarantineRounds int
}

// codec resolves the configured exchange codec, defaulting to exact.
func (c Config) codec() (exchange.Codec, error) {
	k := c.Codec
	if k == "" {
		k = exchange.Sparse
	}
	return exchange.For(k)
}

func (c Config) threshold() int {
	t := c.GroupThreshold
	if t < 1 || t > c.Topo.Nodes {
		t = c.Topo.Nodes
	}
	return t
}

// aggSpec resolves the configured aggregator, defaulting to the exact
// mean and TrimF=1 for the trimmed mean.
func (c Config) aggSpec() (collective.AggSpec, error) {
	name := c.Aggregator
	if name == "" {
		name = collective.AggMeanName
	}
	kind, err := collective.ParseAgg(name)
	if err != nil {
		return collective.AggSpec{}, err
	}
	f := c.TrimF
	if kind == collective.AggTrimmedMean && f == 0 {
		f = 1
	}
	return collective.AggSpec{Kind: kind, TrimF: f}, nil
}

// quarantineRounds returns the effective clean-probe requirement (0
// defaults to 3).
func (c Config) quarantineRounds() int {
	if c.QuarantineRounds > 0 {
		return c.QuarantineRounds
	}
	return 3
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if c.MaxIter <= 0 {
		return fmt.Errorf("wlg: MaxIter must be positive")
	}
	if c.StartIter < 0 || c.StartIter >= c.MaxIter {
		return fmt.Errorf("wlg: StartIter %d outside [0, MaxIter=%d)", c.StartIter, c.MaxIter)
	}
	if c.Rejoin && !c.Elastic {
		return fmt.Errorf("wlg: Rejoin requires Elastic mode (the fail-stop protocol cannot re-admit ranks)")
	}
	if _, err := c.codec(); err != nil {
		return fmt.Errorf("wlg: %w", err)
	}
	if c.CodecBudgetBytes < 0 {
		return fmt.Errorf("wlg: CodecBudgetBytes must be non-negative, got %d", c.CodecBudgetBytes)
	}
	if c.ShardBlocks < 0 {
		return fmt.Errorf("wlg: ShardBlocks must be non-negative, got %d", c.ShardBlocks)
	}
	if c.MinBarrier < 0 {
		return fmt.Errorf("wlg: MinBarrier must be non-negative, got %d", c.MinBarrier)
	}
	if c.MinBarrier > c.Topo.Size() {
		return fmt.Errorf("wlg: MinBarrier %d exceeds the worker count %d", c.MinBarrier, c.Topo.Size())
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("wlg: MaxDelay must be non-negative, got %d", c.MaxDelay)
	}
	if err := c.Watchdog.Validate(); err != nil {
		return fmt.Errorf("wlg: %w", err)
	}
	if c.TrimF < 0 {
		return fmt.Errorf("wlg: TrimF must be non-negative, got %d", c.TrimF)
	}
	spec, err := c.aggSpec()
	if err != nil {
		return fmt.Errorf("wlg: %w", err)
	}
	if spec.Robust() && !c.Elastic {
		return fmt.Errorf("wlg: aggregator %q requires Elastic mode (a robust statistic is non-associative and needs the GG as the single combine point; the fail-stop leader PSR-Allreduce is sum-only)", c.Aggregator)
	}
	if spec.Kind == collective.AggTrimmedMean && 2*spec.TrimF >= c.Topo.Nodes {
		return fmt.Errorf("wlg: TrimF %d trims everything: need 2·TrimF < %d nodes", spec.TrimF, c.Topo.Nodes)
	}
	if err := c.Screen.Validate(); err != nil {
		return fmt.Errorf("wlg: %w", err)
	}
	if c.Screen.Enabled && !c.Elastic {
		return fmt.Errorf("wlg: contribution screening requires Elastic mode (quarantine is a membership transition the fail-stop protocol cannot express)")
	}
	if c.QuarantineRounds < 0 {
		return fmt.Errorf("wlg: QuarantineRounds must be non-negative, got %d", c.QuarantineRounds)
	}
	return nil
}

// WorkerFuncs supplies the algorithm math to the runtime. The runtime
// guarantees ComputeW and ApplyW are called exactly once per iteration, in
// order, from the worker's own goroutine — with one exception: a
// QUARANTINED rank's probation calls ComputeW for iterations it sits out,
// with no matching ApplyW (the contribution is screened locally, never
// shipped), and its post-rejoin loop resumes at the granted join
// iteration, skipping the quarantined range entirely.
type WorkerFuncs struct {
	// ComputeW returns the worker's contribution w_i = y_i + ρ·x_i for the
	// given iteration (the paper's step 7–8 of Algorithm 1). The returned
	// slice is not retained.
	ComputeW func(iter int) []float64
	// ApplyW receives the aggregated W for the worker's group and the
	// number of workers whose contributions it sums; the worker performs
	// the z- and y-updates (steps 12–13).
	ApplyW func(iter int, w []float64, contributors int)
	// Rejoined, if set, is called once on a Config.Rejoin rank before its
	// first iteration, with the join iteration the Group Generator
	// granted and the latest group aggregate plus its contributor count
	// for a warm start (w is nil on a cold start: no round had flushed
	// yet). The slice is not retained by the runtime. Ranks without
	// Config.Rejoin never receive this call.
	Rejoined func(joinIter int, w []float64, contributors int)
}

// RunWorker executes Algorithm 1 (and Algorithm 3 when this rank is its
// node's Leader) for MaxIter iterations. It must be called concurrently on
// every worker rank while RunGG serves GGRank. With cfg.Elastic it runs
// the fail-survive protocol of elastic.go instead; RunWorkerInfo
// additionally reports the degradation summary that path accumulates.
func RunWorker(ep transport.Endpoint, cfg Config, f WorkerFuncs) error {
	_, err := RunWorkerInfo(ep, cfg, f)
	return err
}

// RunWorkerInfo is RunWorker plus the run's RunInfo: the rank's final
// membership view and how many contributions its gathers skipped. Process
// launchers use it to distinguish a degraded-but-complete run (exit code
// "degraded") from a clean one.
func RunWorkerInfo(ep transport.Endpoint, cfg Config, f WorkerFuncs) (*RunInfo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f.ComputeW == nil || f.ApplyW == nil {
		return nil, fmt.Errorf("wlg: WorkerFuncs incomplete")
	}
	topo := cfg.Topo
	rank := ep.Rank()
	if rank >= topo.Size() {
		return nil, fmt.Errorf("wlg: rank %d is not a worker (world has %d workers)", rank, topo.Size())
	}
	if cfg.Elastic {
		return runWorkerElastic(ep, cfg, f)
	}
	if err := runWorkerPlain(ep, cfg, f); err != nil {
		return nil, err
	}
	return &RunInfo{LiveWorkers: topo.Size()}, nil
}

// runWorkerPlain is the original fail-stop worker loop: every peer is
// assumed alive, every wait is unbounded, and the first failure aborts.
//
// All per-iteration scratch — the contribution buffer, the collective
// workspace, the leader's group membership and control payloads — is
// allocated once before the loop and reused, so a warmed iteration
// allocates nothing in the runtime itself (see DESIGN.md "Memory model &
// buffer ownership"). Transport-level copies remain the fabric's business.
func runWorkerPlain(ep transport.Endpoint, cfg Config, f WorkerFuncs) error {
	if exchange.IsTopK(cfg.Codec) {
		// Top-k changes WHICH coordinates travel; its loop runs the sparse
		// collectives end to end instead of rounding a dense exchange.
		return runWorkerPlainTopK(ep, cfg, f)
	}
	topo := cfg.Topo
	rank := ep.Rank()
	node := topo.NodeOf(rank)
	intra := collective.NewGroup(topo.WorkersOf(node)...)
	leader := IsLeader(topo, rank)
	gg := GGRank(topo)
	codec, err := cfg.codec() // Validate already vetted the kind
	if err != nil {
		return fmt.Errorf("wlg: %w", err)
	}

	var ws collective.Workspace
	var buf []float64
	members := make([]int, 0, topo.Nodes)
	var ggReq [2]int64 // node, iter — rewritten only after the GG replied
	var cnt [1]int64
	wd := newWatch(cfg, rank)

	for iter := cfg.StartIter; iter < cfg.MaxIter; iter++ {
		w := f.ComputeW(iter)
		if err := wd.checkOwn(iter, w); err != nil {
			return err
		}
		buf = append(buf[:0], w...)
		// Lossy codecs round the contribution before it is communicated:
		// the aggregate every worker applies is built from wire-precision
		// values, matching what a real cluster would sum.
		codec.EncodeDense(buf)

		// Step 9: intra-node reduce to the Leader over the bus.
		if _, err := ws.ReduceDense(ep, intra, iterTag(iter, offIntraRed), 0, buf); err != nil {
			return fmt.Errorf("wlg: rank %d iter %d intra reduce: %w", rank, iter, err)
		}

		var contributors int
		if leader {
			// Algorithm 3: report to the GG, receive the inter-node group.
			ggReq[0], ggReq[1] = int64(node), int64(iter)
			if err := ep.Send(gg, wire.Control(tagGGRequest, ggReq[:]...)); err != nil {
				return fmt.Errorf("wlg: leader %d iter %d GG request: %w", rank, iter, err)
			}
			reply, err := ep.Recv(gg, iterTag(iter, offGGReply))
			if err != nil {
				return fmt.Errorf("wlg: leader %d iter %d GG reply: %w", rank, iter, err)
			}
			members = members[:0]
			for _, n := range reply.Ints {
				members = append(members, LeaderOf(topo, int(n)))
			}
			inter := collective.NewGroup(members...)
			// PSR-Allreduce of W among the group's Leaders.
			if _, err := ws.PSRAllreduceDense(ep, inter, iterTag(iter, offInterAR), buf); err != nil {
				return fmt.Errorf("wlg: leader %d iter %d PSR allreduce: %w", rank, iter, err)
			}
			contributors = inter.Size() * topo.WorkersPerNode
			// Step 4: broadcast the aggregate and its contributor count.
			cnt[0] = int64(contributors)
			if err := broadcastResult(ep, &ws, intra, iter, buf, cnt[:]); err != nil {
				return err
			}
		} else {
			res, n, err := receiveResult(ep, intra, iter)
			if err != nil {
				return err
			}
			// Copy into the worker-owned buffer: the received slice belongs
			// to the transport and may be recycled or alias a peer.
			buf = append(buf[:0], res...)
			contributors = n
		}
		if err := wd.checkAgg(iter, buf); err != nil {
			return err
		}
		f.ApplyW(iter, buf, contributors)
	}
	return nil
}

func broadcastResult(ep transport.Endpoint, ws *collective.Workspace, intra collective.Group, iter int, w []float64, contributors []int64) error {
	if _, err := ws.BroadcastDense(ep, intra, iterTag(iter, offIntraBc), 0, w); err != nil {
		return fmt.Errorf("wlg: iter %d intra broadcast: %w", iter, err)
	}
	for _, r := range intra.Ranks[1:] {
		if err := ep.Send(r, wire.Control(iterTag(iter, offIntraBc2), contributors...)); err != nil {
			return fmt.Errorf("wlg: iter %d contributor broadcast: %w", iter, err)
		}
	}
	return nil
}

func receiveResult(ep transport.Endpoint, intra collective.Group, iter int) ([]float64, int, error) {
	leaderRank := intra.Ranks[0]
	in, err := ep.Recv(leaderRank, iterTag(iter, offIntraBc))
	if err != nil {
		return nil, 0, fmt.Errorf("wlg: iter %d receive W: %w", iter, err)
	}
	cnt, err := ep.Recv(leaderRank, iterTag(iter, offIntraBc2))
	if err != nil {
		return nil, 0, fmt.Errorf("wlg: iter %d receive count: %w", iter, err)
	}
	return in.Dense, int(cnt.Ints[0]), nil
}

// Run executes a complete WLG world — every worker plus the Group
// Generator — over the given fabric. Without cfg.Elastic the semantics are
// fail-fast: the first rank to return an error (a transport.PeerDownError
// from a crashed peer, a closed endpoint, a malformed request) closes the
// whole fabric, so every other rank unblocks instead of waiting on
// messages that will never arrive. With cfg.Elastic a worker's death is
// absorbed — its own ErrClosed exit does not abort the others, who regroup
// per elastic.go — and only the GG failing or a worker hitting an
// unrecoverable error tears the world down. funcs(rank) supplies each
// worker's algorithm callbacks. The returned error is the first causal
// failure; ErrClosed noise from the abort itself is suppressed in its
// favor.
func Run(fab transport.Fabric, cfg Config, funcs func(rank int) WorkerFuncs) error {
	_, err := RunWithInfo(fab, cfg, funcs)
	return err
}

// RunWithInfo is Run plus the degradation summary: how many workers
// survived to the end, how many died, and how many contributions the
// Leaders' gathers skipped. On a fail-stop (non-elastic) success the
// summary is trivially "everyone lived".
func RunWithInfo(fab transport.Fabric, cfg Config, funcs func(rank int) WorkerFuncs) (*RunInfo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	world := WorldSize(cfg.Topo)
	if fab.Size() < world {
		return nil, fmt.Errorf("wlg: fabric has %d endpoints, world needs %d", fab.Size(), world)
	}
	errs := make([]error, world)
	infos := make([]*RunInfo, world)
	var abort sync.Once
	var wg sync.WaitGroup
	// In elastic mode a worker whose own endpoint died (ErrClosed from a
	// fault-plan kill) is a casualty the protocol absorbs, not a reason to
	// abort; everything else still tears the world down so nobody hangs on
	// an unrecoverable failure.
	fatal := func(err error) bool {
		return !cfg.Elastic || !errors.Is(err, transport.ErrClosed)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		gg := GGRank(cfg.Topo)
		if err := RunGG(fab.Endpoint(gg), cfg); err != nil {
			errs[gg] = err
			abort.Do(fab.Close)
		}
	}()
	for r := 0; r < cfg.Topo.Size(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := RunWorkerInfo(fab.Endpoint(r), cfg, funcs(r))
			infos[r] = info
			if err != nil {
				errs[r] = err
				if fatal(err) {
					abort.Do(fab.Close)
				}
			}
		}()
	}
	wg.Wait()
	// Prefer a typed peer failure, then any non-ErrClosed error, then
	// whatever remains — mirroring core's collective abort. Elastic deaths
	// (a worker's own ErrClosed) are not failures at all.
	var fallback error
	deaths := 0
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if cfg.Elastic && rank < cfg.Topo.Size() && errors.Is(err, transport.ErrClosed) {
			deaths++
			continue
		}
		var pd *transport.PeerDownError
		if errors.As(err, &pd) {
			return nil, err
		}
		if fallback == nil || errors.Is(fallback, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed) {
			fallback = err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	sum := &RunInfo{Epoch: deaths, LiveWorkers: cfg.Topo.Size() - deaths}
	for _, info := range infos {
		if info != nil {
			sum.Skipped += info.Skipped
			sum.ShortRounds += info.ShortRounds
			sum.Flagged += info.Flagged
			sum.SelfQuarantines += info.SelfQuarantines
		}
	}
	return sum, nil
}

// RunGG executes Algorithm 2: serve grouping requests for MaxIter
// iterations. Leaders of one iteration are batched into groups of
// cfg.GroupThreshold in arrival order; once every node has reported for an
// iteration, any remainder below the threshold forms a final smaller
// group. Requests from different iterations may interleave (fast groups
// start the next iteration while slow ones finish), which the per-iteration
// queues absorb.
func RunGG(ep transport.Endpoint, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Elastic {
		return runGGElastic(ep, cfg)
	}
	topo := cfg.Topo
	threshold := cfg.threshold()
	queues := make(map[int][]int64) // iteration → GQ (node ids, arrival order)
	reported := make(map[int]int)   // iteration → requests seen
	remaining := (cfg.MaxIter - cfg.StartIter) * topo.Nodes

	flush := func(iter int) error {
		q := queues[iter]
		if len(q) == 0 {
			return nil
		}
		queues[iter] = nil
		for _, nodeID := range q {
			leader := LeaderOf(topo, int(nodeID))
			if err := ep.Send(leader, wire.Control(iterTag(iter, offGGReply), q...)); err != nil {
				return fmt.Errorf("wlg: GG reply to leader %d: %w", leader, err)
			}
		}
		return nil
	}

	for remaining > 0 {
		m, err := ep.Recv(transport.AnySource, tagGGRequest)
		if err != nil {
			return fmt.Errorf("wlg: GG recv: %w", err)
		}
		if len(m.Ints) != 2 {
			return fmt.Errorf("wlg: GG malformed request from %d", m.From)
		}
		node, iter := m.Ints[0], int(m.Ints[1])
		queues[iter] = append(queues[iter], node)
		reported[iter]++
		remaining--
		if len(queues[iter]) == threshold || reported[iter] == topo.Nodes {
			if err := flush(iter); err != nil {
				return err
			}
		}
		if reported[iter] == topo.Nodes {
			delete(reported, iter)
			delete(queues, iter)
		}
	}
	return nil
}
