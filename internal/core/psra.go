package core

import (
	"container/heap"
	"sort"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// PSRA-HGADMM's grouped aggregation, modeled as the paper's Algorithms
// 1–3 with the GG's "next grouping cycle" taken literally: a Leader that
// finishes a group synchronization re-enters the GG queue carrying the
// group's partial aggregate, so arrival-ordered groups of GroupThreshold
// Leaders form a *staged aggregation tree* that terminates in one exact
// global W. Consensus is exact every iteration (the property Figure 5's
// convergence requires); what grouping changes is the clock: early
// arrivals aggregate while stragglers are still computing, so the
// synchronization wait that a flat all-node collective serializes behind
// the slowest node is largely overlapped (the Figure 7 effect). The
// flip side — visible at small node counts, and called out in the paper's
// §5.5 and conclusion — is the extra GG round trips and tree levels.

// aggEntry is one queue occupant: a Leader (or group representative)
// carrying a partial aggregate that becomes available at `ready`.
type aggEntry struct {
	seq   int // creation order, deterministic tie-break
	rep   int // world rank of the representative Leader
	value *sparse.Vector
	ready float64
	// children are the entries merged into this one (nil for leaves);
	// child 0's rep is this entry's rep.
	children []*aggEntry
	// leafNode is the physical node for leaf entries, -1 otherwise.
	leafNode int
}

// entryHeap orders by (ready, seq).
type entryHeap []*aggEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(*aggEntry)) }
func (h *entryHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h entryHeap) peekReady() float64 { return h[0].ready }

// runPSRAHGADMM executes one PSRA-HGADMM iteration under the DES clock,
// dispatching on the configured consensus mode.
func runPSRAHGADMM(cfg Config, ws []*worker, fab transport.Fabric, iter int) (iterTiming, error) {
	if cfg.Consensus == ConsensusGroup {
		return runPSRAHGADMMGroup(cfg, ws, fab, iter)
	}
	return runPSRAHGADMMGlobal(cfg, ws, fab, iter)
}

// runPSRAHGADMMGlobal is the staged-aggregation-tree reading (exact global
// consensus every iteration).
func runPSRAHGADMMGlobal(cfg Config, ws []*worker, fab transport.Fabric, iter int) (iterTiming, error) {
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dim := len(ws[0].zDense)
	calTimes := parallelXUpdates(cfg, ws, iter)

	var timing iterTiming
	starts := make([]float64, len(ws))
	for i, w := range ws {
		starts[i] = w.clock
		w.clock += calTimes[i]
		timing.cal += calTimes[i]
	}
	timing.cal /= float64(len(ws))

	// Leaves: intra-node reduce of w_i to each Leader over the bus.
	seq := 0
	pending := make(entryHeap, 0, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		ranks := topo.WorkersOf(n)
		vs := make([]*sparse.Vector, wpn)
		nnzs := make([]int, wpn)
		ready := 0.0
		for i, r := range ranks {
			vs[i] = ws[r].wSparse(cfg.Rho)
			if cfg.QuantBits != 0 {
				quantizeSparseBits(vs[i], cfg.QuantBits)
			}
			nnzs[i] = vs[i].NNZ()
			ready = maxf(ready, ws[r].clock)
		}
		tr := quantScale(intraReduceTrace(ranks, ranks[0], nnzs), cfg.QuantBits)
		timing.bytes += traceBytes(tr)
		pending = append(pending, &aggEntry{
			seq:      seq,
			rep:      ranks[0],
			value:    sumSparse(dim, vs),
			ready:    ready + cfg.Cost.TraceTime(topo, tr),
			leafNode: n,
		})
		seq++
	}
	heap.Init(&pending)

	// Grouping threshold: a group of one cannot aggregate, so the
	// effective tree fan-in is at least 2 (unless there is only one node).
	threshold := cfg.GroupThreshold
	if threshold < 2 {
		threshold = 2
	}
	ggRTT := 2 * (cfg.Cost.InterAlpha + float64(ggRequestBytes)*cfg.Cost.InterBeta)

	merge := func(group []*aggEntry) (*aggEntry, error) {
		start := 0.0
		leaders := make([]int, len(group))
		inputs := make([]*sparse.Vector, len(group))
		for i, e := range group {
			start = maxf(start, e.ready)
			leaders[i] = e.rep
			inputs[i] = e.value
		}
		start += ggRTT
		timing.bytes += int64(len(group) * ggRequestBytes * 2)
		agg, tr, err := groupAllreduce(fab, leaders, commPSRSparse, int32(64+iter%2*8), inputs)
		if err != nil {
			return nil, err
		}
		tr = quantScale(tr, cfg.QuantBits)
		timing.bytes += traceBytes(tr)
		e := &aggEntry{
			seq:      seq,
			rep:      group[0].rep,
			value:    agg,
			ready:    start + cfg.Cost.TraceTime(topo, tr),
			children: group,
			leafNode: -1,
		}
		seq++
		return e, nil
	}

	// Event-driven GG: arrivals (by virtual ready time) enter the queue;
	// a full queue forms a group; when nothing more can arrive, the
	// remainder is flushed. The loop conserves entries, terminating with
	// the single global aggregate.
	var queue []*aggEntry
	var root *aggEntry
	for {
		if pending.Len() == 0 {
			if len(queue) == 1 {
				root = queue[0]
				break
			}
			g, err := merge(queue)
			if err != nil {
				return timing, err
			}
			queue = nil
			heap.Push(&pending, g)
			continue
		}
		e := heap.Pop(&pending).(*aggEntry)
		queue = append(queue, e)
		if len(queue) == threshold {
			g, err := merge(queue)
			if err != nil {
				return timing, err
			}
			queue = nil
			heap.Push(&pending, g)
		}
	}

	// Down-pass: the root group's members already hold W (PSR-Allreduce
	// leaves every member with the result) and apply the z-update
	// themselves; what travels down the tree is the *thresholded* z —
	// identical at every worker and far sparser than W. Each
	// representative re-broadcasts down its subtree, and node Leaders
	// broadcast to their workers over the bus.
	zSparse := zFromW(root.value, cfg.Lambda, cfg.Rho, topo.Size())
	zDense := zSparse.ToDense()
	wBytes := 8 + wire.SparseEntryBytes*zSparse.NNZ()
	var deliver func(e *aggEntry, t float64)
	deliver = func(e *aggEntry, t float64) {
		if e.leafNode >= 0 {
			ranks := topo.WorkersOf(e.leafNode)
			bc := intraBcastTrace(ranks, ranks[0], zSparse.NNZ())
			timing.bytes += traceBytes(bc)
			end := t + cfg.Cost.TraceTime(topo, bc)
			for _, r := range ranks {
				ws[r].applyZ(cfg, zDense, zSparse)
				timing.comm += end - starts[r] - calTimes[r]
				ws[r].clock = end
			}
			return
		}
		// Child 0's rep is e.rep and already holds W; the others receive
		// it in one step over the interconnect.
		tr := collective.Trace{Steps: 1}
		for _, c := range e.children[1:] {
			tr.Events = append(tr.Events, collective.Event{
				Step: 0, From: e.rep, To: c.rep, Bytes: wBytes,
			})
		}
		timing.bytes += traceBytes(tr)
		tNext := t + cfg.Cost.TraceTime(topo, tr)
		deliver(e.children[0], t)
		for _, c := range e.children[1:] {
			deliver(c, tNext)
		}
	}
	if root.leafNode >= 0 {
		// Single-node cluster: no tree was built.
		deliver(root, root.ready)
	} else {
		// Every member of the final group holds W at root.ready.
		for _, c := range root.children {
			deliver(c, root.ready)
		}
	}
	timing.comm /= float64(len(ws))
	return timing, nil
}

// runPSRAHGADMMGroup is the group-local-consensus reading of Algorithms
// 1–3: one grouping round per iteration, each group computing z from its
// own members' W only (scaled by the group's worker count). Fast groups
// proceed without ever waiting for slow nodes — the straggler isolation
// Figure 7 measures — trading per-iteration consensus breadth; rotating
// arrival-ordered membership mixes information across iterations.
func runPSRAHGADMMGroup(cfg Config, ws []*worker, fab transport.Fabric, iter int) (iterTiming, error) {
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dim := len(ws[0].zDense)
	calTimes := parallelXUpdates(cfg, ws, iter)

	var timing iterTiming
	starts := make([]float64, len(ws))
	for i, w := range ws {
		starts[i] = w.clock
		w.clock += calTimes[i]
		timing.cal += calTimes[i]
	}
	timing.cal /= float64(len(ws))

	// Intra-node reduce to Leaders.
	type nodeAgg struct {
		node    int
		leader  int
		sum     *sparse.Vector
		ready   float64
		workers []int
	}
	nodes := make([]*nodeAgg, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		ranks := topo.WorkersOf(n)
		vs := make([]*sparse.Vector, wpn)
		nnzs := make([]int, wpn)
		ready := 0.0
		for i, r := range ranks {
			vs[i] = ws[r].wSparse(cfg.Rho)
			if cfg.QuantBits != 0 {
				quantizeSparseBits(vs[i], cfg.QuantBits)
			}
			nnzs[i] = vs[i].NNZ()
			ready = maxf(ready, ws[r].clock)
		}
		tr := quantScale(intraReduceTrace(ranks, ranks[0], nnzs), cfg.QuantBits)
		timing.bytes += traceBytes(tr)
		nodes[n] = &nodeAgg{
			node: n, leader: ranks[0], sum: sumSparse(dim, vs),
			ready:   ready + cfg.Cost.TraceTime(topo, tr),
			workers: ranks,
		}
	}

	// GG batching in virtual-arrival order.
	ggRTT := 2 * (cfg.Cost.InterAlpha + float64(ggRequestBytes)*cfg.Cost.InterBeta)
	order := make([]*nodeAgg, len(nodes))
	copy(order, nodes)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].ready != order[b].ready {
			return order[a].ready < order[b].ready
		}
		return order[a].node < order[b].node
	})

	threshold := cfg.GroupThreshold
	for lo := 0; lo < len(order); lo += threshold {
		hi := lo + threshold
		if hi > len(order) {
			hi = len(order)
		}
		group := order[lo:hi]
		start := 0.0
		leaders := make([]int, len(group))
		inputs := make([]*sparse.Vector, len(group))
		for i, na := range group {
			start = maxf(start, na.ready)
			leaders[i] = na.leader
			inputs[i] = na.sum
		}
		start += ggRTT
		timing.bytes += int64(len(group) * ggRequestBytes * 2)

		var agg *sparse.Vector
		var tr collective.Trace
		var err error
		if len(group) == 1 {
			agg, tr = group[0].sum, collective.Trace{}
		} else {
			agg, tr, err = groupAllreduce(fab, leaders, commPSRSparse, int32(64+iter%2*8), inputs)
			if err != nil {
				return timing, err
			}
			tr = quantScale(tr, cfg.QuantBits)
		}
		commT := cfg.Cost.TraceTime(topo, tr)
		timing.bytes += traceBytes(tr)

		contributors := len(group) * wpn
		zSparse := zFromW(agg, cfg.Lambda, cfg.Rho, contributors)
		zDense := zSparse.ToDense()
		for _, na := range group {
			bc := intraBcastTrace(na.workers, na.leader, zSparse.NNZ())
			timing.bytes += traceBytes(bc)
			end := start + commT + cfg.Cost.TraceTime(topo, bc)
			for _, r := range na.workers {
				ws[r].applyZ(cfg, zDense, zSparse)
				timing.comm += end - starts[r] - calTimes[r]
				ws[r].clock = end
			}
		}
	}
	timing.comm /= float64(len(ws))
	return timing, nil
}
