package core

import (
	"sort"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

// groupStrategy is the group-local-consensus reading of Algorithms 1–3:
// one grouping round per iteration, each group computing z from its own
// members' W only (scaled by the group's worker count). Fast groups
// proceed without ever waiting for slow nodes — the straggler isolation
// Figure 7 measures — trading per-iteration consensus breadth; rotating
// arrival-ordered membership mixes information across iterations. Under
// SSP/async the isolation compounds: stale nodes are simply absent from
// the round's grouping instead of gating it.
type groupStrategy struct {
	env    *strategyEnv
	clocks []sspClock // per node
	pend   []*sparse.Vector
}

func newGroupStrategy(env *strategyEnv, cfg Config) *groupStrategy {
	return &groupStrategy{
		env:    env,
		clocks: make([]sspClock, cfg.Topo.Nodes),
		pend:   make([]*sparse.Vector, cfg.Topo.Nodes),
	}
}

func (st *groupStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	var timing iterTiming

	for n := range st.clocks {
		if st.clocks[n].pending != nil {
			continue
		}
		c := launchNodeSparse(env, cfg, n, iter, &timing)
		st.pend[n] = c.sum
		st.clocks[n].pending = c.pending
	}

	cutoff := sspCutoff(st.clocks, env.sync.Quorum(topo.Nodes, wpn), env.sync.Delay())
	freshNodes := admitted(st.clocks, cutoff)

	// GG batching in virtual-arrival order over this round's fresh nodes.
	type nodeAgg struct {
		node    int
		leader  int
		sum     *sparse.Vector
		ready   float64
		workers []int
	}
	ggRTT := 2 * (cfg.Cost.InterAlpha + float64(ggRequestBytes)*cfg.Cost.InterBeta)
	order := make([]*nodeAgg, 0, len(freshNodes))
	for _, n := range freshNodes {
		ranks := topo.WorkersOf(n)
		order = append(order, &nodeAgg{
			node: n, leader: ranks[0], sum: st.pend[n],
			ready:   st.clocks[n].pending.finish,
			workers: ranks,
		})
	}
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].ready != order[b].ready {
			return order[a].ready < order[b].ready
		}
		return order[a].node < order[b].node
	})

	calSum, commSum := 0.0, 0.0
	applied := 0
	threshold := cfg.GroupThreshold
	for lo := 0; lo < len(order); lo += threshold {
		hi := lo + threshold
		if hi > len(order) {
			hi = len(order)
		}
		group := order[lo:hi]
		start := 0.0
		leaders := make([]int, len(group))
		inputs := make([]*sparse.Vector, len(group))
		for i, na := range group {
			start = maxf(start, na.ready)
			leaders[i] = na.leader
			inputs[i] = na.sum
		}
		start += ggRTT
		timing.bytes += int64(len(group) * ggRequestBytes * 2)

		var agg *sparse.Vector
		var tr collective.Trace
		var err error
		if len(group) == 1 {
			agg, tr = group[0].sum, collective.Trace{}
		} else {
			agg, tr, err = groupAllreduce(env.fab, leaders, commPSRSparse, int32(64+iter%2*8), inputs)
			if err != nil {
				return timing, err
			}
			tr = env.codec.WireTrace(tr)
		}
		commT := cfg.Cost.TraceTime(topo, tr)
		timing.bytes += traceBytes(tr)

		contributors := len(group) * wpn
		zSparse := zFromW(agg, cfg.Lambda, cfg.Rho, contributors)
		zDense := zSparse.ToDense()
		for _, na := range group {
			bc := intraBcastTrace(na.workers, na.leader, zSparse.NNZ())
			timing.bytes += traceBytes(bc)
			end := start + commT + cfg.Cost.TraceTime(topo, bc)
			applyNodeZ(env, cfg, na.node, st.clocks[na.node].pending, zDense, zSparse, end, &commSum, &applied)
		}
	}

	// Compute time sums in rank order (comm follows group order); fresh
	// bookkeeping clears after the whole round so group membership stays
	// stable while groups are processed.
	for _, n := range freshNodes {
		for _, c := range st.clocks[n].pending.cals {
			calSum += c
		}
	}
	for _, n := range freshNodes {
		st.clocks[n].pending = nil
		st.clocks[n].staleness = 0
		st.pend[n] = nil
	}
	bumpStale(st.clocks)
	if applied > 0 {
		timing.cal = calSum / float64(applied)
		timing.comm = commSum / float64(applied)
	}
	return timing, nil
}
