package collective

import (
	"fmt"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// RingAllreduceSparse sums the members' sparse vectors (all of dimension
// v.Dim) with the ring schedule, transmitting only nonzeros. The returned
// vector is the global sum. Unlike the dense variant, per-step message
// sizes depend on where the nonzeros sit — which is exactly the sensitivity
// the paper analyzes in eqs. (11)–(13): a block that accumulates all the
// nonzeros grows linearly as it travels the ring.
func RingAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	var ws Workspace
	out := new(sparse.Vector)
	tr, err := ws.RingAllreduceSparse(ep, g, tagBase, v, out)
	if err != nil {
		return nil, tr, err
	}
	return out, tr, nil
}

// PSRAllreduceSparse sums the members' sparse vectors with the paper's
// PSR-Allreduce schedule: block j goes straight to owner j (one
// Scatter-Reduce step), then each owner sends its finished block to every
// other member (one Allgather step). Sparse cost is bounded by c·θ in the
// scatter step and c·θ·(N−1) in the gather step (paper eqs. 14–15),
// independent of where the nonzeros concentrate — the robustness property
// PSRA-HGADMM is built on.
func PSRAllreduceSparse(ep transport.Endpoint, g Group, tagBase int32, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	var ws Workspace
	out := new(sparse.Vector)
	tr, err := ws.PSRAllreduceSparse(ep, g, tagBase, v, out)
	if err != nil {
		return nil, tr, err
	}
	return out, tr, nil
}

// ReduceSparse sums every member's vector at the root member and returns
// the sum there; non-root members receive nil.
func ReduceSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return nil, Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if me != rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		if err := ep.Send(g.Ranks[rootIdx], msg); err != nil {
			return nil, tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[rootIdx], wire.PayloadBytes(msg))
		return nil, tr, nil
	}
	arrivals := make([]*sparse.Vector, g.Size())
	for j := 0; j < g.Size()-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return nil, tr, err
		}
		if in.Sparse.Dim != v.Dim {
			return nil, tr, fmt.Errorf("collective: sparse reduce dim %d, want %d", in.Sparse.Dim, v.Dim)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return nil, tr, fmt.Errorf("collective: sparse reduce unexpected sender %d", in.From)
		}
		arrivals[src] = in.Sparse
	}
	arrivals[me] = v
	acc := sparse.NewAccumulator(v.Dim)
	for _, a := range arrivals {
		if a != nil {
			acc.Add(a)
		}
	}
	return acc.Sum(), tr, nil
}

// BroadcastSparse sends the root's vector to every member and returns each
// member's copy (the root gets its own vector back unchanged).
func BroadcastSparse(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, v *sparse.Vector) (*sparse.Vector, Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return nil, Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return nil, Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if me == rootIdx {
		msg := wire.SparseMsg(tagBase, v)
		bytes := wire.PayloadBytes(msg)
		errcs := make([]chan error, 0, g.Size()-1)
		for j := 0; j < g.Size(); j++ {
			if j == rootIdx {
				continue
			}
			tr.add(0, ep.Rank(), g.Ranks[j], bytes)
			errcs = append(errcs, sendAsync(ep, g.Ranks[j], msg))
		}
		for _, c := range errcs {
			if err := <-c; err != nil {
				return nil, tr, err
			}
		}
		return v, tr, nil
	}
	in, err := ep.Recv(g.Ranks[rootIdx], tagBase)
	if err != nil {
		return nil, tr, err
	}
	return in.Sparse, tr, nil
}
