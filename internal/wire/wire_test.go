package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if buf.Len() != EncodedBytes(m) {
		t.Fatalf("EncodedBytes = %d, wrote %d", EncodedBytes(m), buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Decode left %d trailing bytes", buf.Len())
	}
	return got
}

func TestControlRoundTrip(t *testing.T) {
	m := Control(7, 1, -2, 1<<40)
	m.From = 3
	got := roundTrip(t, m)
	if got.Kind != KindControl || got.Tag != 7 || got.From != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Ints) != 3 || got.Ints[0] != 1 || got.Ints[1] != -2 || got.Ints[2] != 1<<40 {
		t.Fatalf("Ints = %v", got.Ints)
	}
}

func TestControlEmpty(t *testing.T) {
	got := roundTrip(t, Control(0))
	if len(got.Ints) != 0 {
		t.Fatalf("Ints = %v, want empty", got.Ints)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	x := []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	got := roundTrip(t, DenseMsg(-5, x))
	if got.Tag != -5 {
		t.Fatalf("Tag = %d", got.Tag)
	}
	if !vec.Equal(got.Dense, x) {
		t.Fatalf("Dense = %v", got.Dense)
	}
}

func TestDenseNaNRoundTrip(t *testing.T) {
	got := roundTrip(t, DenseMsg(1, []float64{math.NaN()}))
	if !math.IsNaN(got.Dense[0]) {
		t.Fatalf("NaN lost: %v", got.Dense[0])
	}
}

func TestSparseRoundTrip(t *testing.T) {
	sv := sparse.FromDense([]float64{0, 2.5, 0, 0, -1, 0, 1e-300})
	got := roundTrip(t, SparseMsg(9, sv))
	if got.Sparse == nil {
		t.Fatal("nil sparse payload")
	}
	if got.Sparse.Dim != sv.Dim {
		t.Fatalf("Dim = %d", got.Sparse.Dim)
	}
	if !vec.Equal(got.Sparse.ToDense(), sv.ToDense()) {
		t.Fatal("sparse payload mismatch")
	}
}

func TestSparseNilPayload(t *testing.T) {
	got := roundTrip(t, SparseMsg(1, nil))
	if got.Sparse == nil || got.Sparse.NNZ() != 0 {
		t.Fatalf("nil sparse should decode as empty, got %+v", got.Sparse)
	}
}

func TestPayloadBytesMatchesPaperCost(t *testing.T) {
	// θ_s per element = index (4) + value (8) = 12 bytes.
	sv := sparse.FromDense([]float64{1, 0, 2, 0, 3})
	want := 8 + 3*SparseEntryBytes
	if got := PayloadBytes(SparseMsg(0, sv)); got != want {
		t.Fatalf("PayloadBytes = %d, want %d", got, want)
	}
}

func TestDecodeEOFAtBoundary(t *testing.T) {
	_, err := Decode(bytes.NewReader(nil))
	if err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte{magic0, magic1, version2}))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, DenseMsg(1, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	_, err := Decode(bytes.NewReader(trunc))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] = 'X'
	_, err := Decode(bytes.NewReader(b))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[2] = 99
	_, err := Decode(bytes.NewReader(b))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// downgradeV1 strips the CRC trailer and stamps version 1, so tampering
// tests reach the structural validator instead of tripping the checksum.
func downgradeV1(b []byte) []byte {
	legacy := append([]byte(nil), b[:len(b)-crcBytes]...)
	legacy[2] = version1
	return legacy
}

func TestDecodeBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := downgradeV1(buf.Bytes())
	b[3] = 42
	_, err := Decode(bytes.NewReader(b))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeCorruptSparseIndices(t *testing.T) {
	sv := sparse.FromDense([]float64{1, 2})
	var buf bytes.Buffer
	if err := Encode(&buf, SparseMsg(1, sv)); err != nil {
		t.Fatal(err)
	}
	b := downgradeV1(buf.Bytes())
	// Overwrite second entry's index (offset: 16 hdr + 8 dims + 12) to equal
	// the first entry's index, violating strict ordering.
	copy(b[16+8+12:16+8+16], b[16+8:16+8+4])
	_, err := Decode(bytes.NewReader(b))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestEncodeUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Kind: Kind(0)}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Control(1, 10),
		DenseMsg(2, []float64{1, 2}),
		SparseMsg(3, sparse.FromDense([]float64{0, 5})),
	}
	for _, m := range msgs {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Tag != want.Tag {
			t.Fatalf("frame %d: %+v", i, got)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindControl.String() != "control" || KindDense.String() != "dense" ||
		KindSparse.String() != "sparse" || Kind(9).String() != "Kind(9)" {
		t.Fatal("Kind.String mismatch")
	}
}

// Property: any control message round-trips.
func TestControlRoundTripProperty(t *testing.T) {
	f := func(tag int32, ints []int64) bool {
		var buf bytes.Buffer
		if err := Encode(&buf, Control(tag, ints...)); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Tag != tag || len(got.Ints) != len(ints) {
			return false
		}
		for i := range ints {
			if got.Ints[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random sparse vectors round-trip bit-exactly.
func TestSparseRoundTripProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw%100) + 1
		r := rand.New(rand.NewSource(seed))
		sv := sparse.NewVector(dim, 0)
		for i := 0; i < dim; i++ {
			if r.Float64() < 0.3 {
				sv.Append(int32(i), r.NormFloat64())
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, SparseMsg(int32(seed), sv)); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Sparse.Dim != dim {
			return false
		}
		return vec.Equal(got.Sparse.ToDense(), sv.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDense(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i)
	}
	m := DenseMsg(1, x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(EncodedBytes(m))
		_ = Encode(&buf, m)
	}
}

func BenchmarkDecodeSparse(b *testing.B) {
	r := rand.New(rand.NewSource(30))
	sv := sparse.NewVector(1<<16, 0)
	for i := 0; i < 1<<16; i++ {
		if r.Float64() < 0.05 {
			sv.Append(int32(i), r.NormFloat64())
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, SparseMsg(1, sv)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
