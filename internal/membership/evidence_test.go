package membership

import (
	"errors"
	"math"
	"testing"
)

func TestQuarantineEvidenceRoundTrip(t *testing.T) {
	for _, e := range []QuarantineEvidence{
		{},
		{Rank: 3, Incarnation: 2, Iter: 17, Score: 123.5},
		{Rank: 0, Incarnation: 0, Iter: 0, Score: -4.25},
		{Rank: 1<<31 - 1, Incarnation: 1<<31 - 1, Iter: 1<<31 - 1, Score: 1e308},
	} {
		buf := e.AppendBinary(nil)
		got, err := DecodeQuarantineEvidence(buf)
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got != e {
			t.Fatalf("round-trip mismatch: encoded %+v decoded %+v", e, got)
		}
	}
}

func TestQuarantineEvidenceAppendChains(t *testing.T) {
	// AppendBinary appends: a log of frames concatenates and each
	// 25-byte window decodes independently.
	a := QuarantineEvidence{Rank: 1, Iter: 5, Score: 2}
	b := QuarantineEvidence{Rank: 2, Incarnation: 1, Iter: 9, Score: 3}
	buf := b.AppendBinary(a.AppendBinary(nil))
	if len(buf) != 2*evidenceBytes {
		t.Fatalf("chained frames = %d bytes, want %d", len(buf), 2*evidenceBytes)
	}
	gotA, errA := DecodeQuarantineEvidence(buf[:evidenceBytes])
	gotB, errB := DecodeQuarantineEvidence(buf[evidenceBytes:])
	if errA != nil || errB != nil || gotA != a || gotB != b {
		t.Fatalf("chained decode: %+v (%v), %+v (%v)", gotA, errA, gotB, errB)
	}
}

func TestQuarantineEvidenceRejectsCorruption(t *testing.T) {
	good := QuarantineEvidence{Rank: 2, Incarnation: 1, Iter: 8, Score: 7}.AppendBinary(nil)
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		fn(b)
		return b
	}
	cases := map[string][]byte{
		"truncated":     good[:len(good)-1],
		"extended":      append(append([]byte(nil), good...), 0),
		"empty":         {},
		"bad-magic":     mutate(func(b []byte) { b[0] = 'X' }),
		"bad-version":   mutate(func(b []byte) { b[4] = 99 }),
		"negative-rank": mutate(func(b []byte) { b[8] = 0x80 }),
		"negative-inc":  mutate(func(b []byte) { b[12] = 0x80 }),
		"negative-iter": mutate(func(b []byte) { b[16] = 0x80 }),
		"nan-score": QuarantineEvidence{
			Rank: 2, Iter: 8, Score: math.NaN(),
		}.AppendBinary(nil),
		"inf-score": QuarantineEvidence{
			Rank: 2, Iter: 8, Score: math.Inf(1),
		}.AppendBinary(nil),
	}
	for name, data := range cases {
		if _, err := DecodeQuarantineEvidence(data); !errors.Is(err, ErrEvidenceCorrupt) {
			t.Fatalf("%s: err = %v, want ErrEvidenceCorrupt", name, err)
		}
	}
}

// FuzzQuarantineEvidence drives the decoder with arbitrary bytes: it must
// never panic, and whatever it accepts must re-encode to the identical
// frame (decode∘encode is the identity on the accepted set — evidence
// changes membership, so a frame that survives validation must be
// unambiguous).
func FuzzQuarantineEvidence(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(QuarantineEvidence{Rank: 1, Incarnation: 2, Iter: 3, Score: 4}.AppendBinary(nil))
	f.Add([]byte("PSQE\x01aaaaaaaaaaaaaaaaaaaa"))
	f.Add([]byte("PSQEPSQEPSQEPSQEPSQEPSQEP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeQuarantineEvidence(data)
		if err != nil {
			if !errors.Is(err, ErrEvidenceCorrupt) {
				t.Fatalf("rejection must wrap ErrEvidenceCorrupt, got %v", err)
			}
			return
		}
		if e.Rank < 0 || e.Incarnation < 0 || e.Iter < 0 {
			t.Fatalf("accepted negative field: %+v", e)
		}
		if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
			t.Fatalf("accepted non-finite score: %+v", e)
		}
		re := e.AppendBinary(nil)
		if string(re) != string(data) {
			t.Fatalf("accepted frame is not canonical: % x re-encodes to % x", data, re)
		}
	})
}

func TestQuarantineLogEntryRoundTrip(t *testing.T) {
	e := QuarantineLogEntry(4, 17, 2)
	rank, iter, inc, quar := ParseLogEntry(e[0], e[1], e[2])
	if !quar || rank != 4 || iter != 17 || inc != 2 {
		t.Fatalf("ParseLogEntry(%v) = (%d,%d,%d,%v)", e, rank, iter, inc, quar)
	}
	// Rank 0 must still be distinguishable from a rejoin triple — that is
	// what the +1 in the sentinel buys.
	e0 := QuarantineLogEntry(0, 1, 1)
	if e0[0] >= 0 {
		t.Fatalf("rank-0 quarantine entry %v is not negative", e0)
	}
	// A plain rejoin triple passes through unclassified.
	rank, iter, inc, quar = ParseLogEntry(3, 8, 1)
	if quar || rank != 3 || iter != 8 || inc != 1 {
		t.Fatalf("rejoin triple misclassified: (%d,%d,%d,%v)", rank, iter, inc, quar)
	}
}

func TestTrackerQuarantine(t *testing.T) {
	errBad := errors.New("screen tripped")
	tr := NewTracker(4)
	epoch := tr.Epoch()

	if !tr.Quarantine(2, errBad) {
		t.Fatal("first Quarantine returned false")
	}
	if tr.Quarantine(2, errBad) {
		t.Fatal("second Quarantine not idempotent")
	}
	if tr.Epoch() != epoch+1 {
		t.Fatalf("epoch = %d, want exactly one bump to %d", tr.Epoch(), epoch+1)
	}
	if !tr.Quarantined(2) || tr.QuarantinedCount() != 1 {
		t.Fatal("quarantine state not recorded")
	}
	if tr.Alive(2) {
		t.Fatal("quarantined rank still Alive")
	}
	if tr.LiveCount() != 3 {
		t.Fatalf("LiveCount = %d, want 3", tr.LiveCount())
	}
	if got := tr.Live([]int{0, 1, 2, 3}); len(got) != 3 {
		t.Fatalf("Live kept the quarantined rank: %v", got)
	}
	if tr.QuarantineCause(2) != errBad {
		t.Fatalf("QuarantineCause = %v", tr.QuarantineCause(2))
	}
	// Quarantine is not death: no incarnation change, not in Dead().
	if tr.Incarnation(2) != 0 {
		t.Fatalf("quarantine bumped incarnation to %d", tr.Incarnation(2))
	}
	for _, d := range tr.Dead() {
		if d == 2 {
			t.Fatal("quarantined rank listed as dead")
		}
	}

	// Unquarantine restores the same incarnation to the live set.
	epoch = tr.Epoch()
	if !tr.Unquarantine(2) {
		t.Fatal("Unquarantine returned false")
	}
	if tr.Unquarantine(2) {
		t.Fatal("second Unquarantine not idempotent")
	}
	if !tr.Alive(2) || tr.Quarantined(2) || tr.QuarantinedCount() != 0 {
		t.Fatal("Unquarantine did not restore the rank")
	}
	if tr.Incarnation(2) != 0 {
		t.Fatal("Unquarantine minted a new incarnation")
	}
	if tr.Epoch() != epoch+1 {
		t.Fatalf("Unquarantine epoch = %d, want %d", tr.Epoch(), epoch+1)
	}
	if tr.QuarantineCause(2) != nil {
		t.Fatal("cause survived Unquarantine")
	}
}

func TestTrackerQuarantineDeadRank(t *testing.T) {
	tr := NewTracker(3)
	tr.MarkDown(1, errors.New("gone"))
	if tr.Quarantine(1, errors.New("late evidence")) {
		t.Fatal("a dead rank must not be quarantinable")
	}
	if tr.Quarantined(1) {
		t.Fatal("dead rank reported quarantined")
	}
}

func TestTrackerRejoinClearsQuarantine(t *testing.T) {
	// A new incarnation starts with a clean slate: evidence indicts a life,
	// not a rank.
	tr := NewTracker(3)
	tr.Quarantine(1, errors.New("screen"))
	if !tr.MarkUpAt(1, tr.Incarnation(1)+1) {
		t.Fatal("MarkUpAt rejected the fresh incarnation")
	}
	if tr.Quarantined(1) || !tr.Alive(1) {
		t.Fatal("fresh incarnation still carries the old quarantine")
	}
	if tr.QuarantineCause(1) != nil {
		t.Fatal("stale cause survived the rejoin")
	}
}

func TestTrackerQuarantineOutOfRange(t *testing.T) {
	tr := NewTracker(2)
	if tr.Quarantine(-1, errors.New("x")) || tr.Quarantine(5, errors.New("x")) {
		t.Fatal("out-of-range rank quarantined")
	}
	if tr.Unquarantine(-1) || tr.Unquarantine(5) {
		t.Fatal("out-of-range rank unquarantined")
	}
	if tr.Quarantined(-1) || tr.Quarantined(5) {
		t.Fatal("out-of-range rank reported quarantined")
	}
}
