package bench

import (
	"fmt"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
)

// Zoo runs every registered algorithm — the paper's six variants plus the
// strategy compositions the registry makes expressible — on one dataset
// and topology, reporting each variant's (consensus, sync, codec) triple
// next to its convergence and communication footprint. The experiment is
// registry-driven: a new core.Register call shows up here with no harness
// change.
func Zoo(opts Options) error {
	opts.fill()
	dcfg := BenchDatasets(opts.Seed, true)[0] // small dataset: the zoo is wide, not deep
	l, err := load(dcfg)
	if err != nil {
		return err
	}
	fstar, err := l.referenceOptimum(opts.Rho, opts.Lambda)
	if err != nil {
		return err
	}
	nodes, wpn := 4, 2
	iters := opts.MaxIter
	if iters > 30 {
		iters = 30
	}

	t := metrics.NewTable(
		fmt.Sprintf("Algorithm zoo — every registered variant, %s, %d nodes × %d workers (%d iters)",
			dcfg.Name, nodes, wpn, iters),
		"algorithm", "consensus", "sync", "codec", "rel_error", "system_time", "comm_bytes")
	for _, v := range core.Variants() {
		cfg := runCfg(v.Name, nodes, wpn, opts)
		cfg.MaxIter = iters
		res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			return fmt.Errorf("zoo %s: %w", v.Name, err)
		}
		t.AddRow(string(v.Name), string(v.Consensus), string(v.Sync), string(v.Codec),
			res.History[len(res.History)-1].RelError,
			metrics.Seconds(res.SystemTime), metrics.Bytes(res.TotalBytes))
	}
	return emit(opts, t)
}
