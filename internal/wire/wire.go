// Package wire defines the binary message format used by the PSRA-HGADMM
// communication fabrics. The format is deliberately tiny and self-contained
// (no reflection, no gob): a fixed 16-byte little-endian header followed by
// one typed payload. The same encoding defines the byte counts fed to the
// simnet cost model, so "bytes on the wire" means the same thing for the
// in-process fabric, the TCP fabric, and the analytical model.
//
// Sparse payload entries cost 12 bytes each (4-byte index + 8-byte value),
// matching the paper's per-element transmission cost θ_s = (value+index)/B.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"psrahgadmm/internal/scratch"
	"psrahgadmm/internal/sparse"
)

// Kind tags the payload type of a message.
type Kind uint8

const (
	// KindControl carries a small []int64 payload (grouping requests,
	// notifications, barrier tokens).
	KindControl Kind = iota + 1
	// KindDense carries a dense []float64 vector.
	KindDense
	// KindSparse carries a sparse vector (dim + index/value pairs).
	KindSparse
)

func (k Kind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindDense:
		return "dense"
	case KindSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is one unit of communication between ranks. Exactly one payload
// field is meaningful, selected by Kind. From is stamped by the fabric on
// delivery; Tag disambiguates concurrent conversations the way MPI tags do.
type Message struct {
	Kind   Kind
	Tag    int32
	From   int32
	Ints   []int64
	Dense  []float64
	Sparse *sparse.Vector
}

// Control builds a control message.
func Control(tag int32, ints ...int64) Message {
	return Message{Kind: KindControl, Tag: tag, Ints: ints}
}

// DenseMsg builds a dense-vector message. The slice is NOT copied; the
// sender must not mutate it until the message has been delivered.
func DenseMsg(tag int32, x []float64) Message {
	return Message{Kind: KindDense, Tag: tag, Dense: x}
}

// SparseMsg builds a sparse-vector message. The vector is NOT copied.
func SparseMsg(tag int32, v *sparse.Vector) Message {
	return Message{Kind: KindSparse, Tag: tag, Sparse: v}
}

// Reserved control tags. The transports claim a small band at the very
// bottom of the int32 tag space for internal control frames; user code must
// never send on these. Keeping them in wire (rather than each transport
// picking its own) guarantees every fabric and every tool that inspects
// frames agrees on what is algorithm traffic and what is plumbing.
const (
	// TagHandshake carries the one-time rank identification frame exchanged
	// when a mesh connection is established.
	TagHandshake int32 = -0x7fffffff
	// TagHeartbeat marks the empty keepalive frames the TCP fabric sends on
	// idle connections so silent peer failures are detectable. Heartbeats
	// are consumed by the transport and never surface from Recv.
	TagHeartbeat int32 = -0x7ffffffe
	// TagGoodbye announces an orderly shutdown: a rank that Closes its
	// endpoint sends this before the FIN, letting peers distinguish a clean
	// departure (tolerated by any-source waits) from a crash (which must
	// fail them). An EOF without a preceding goodbye is a crash.
	TagGoodbye int32 = -0x7ffffffd
)

// IsReservedTag reports whether tag belongs to the transport-internal band.
func IsReservedTag(tag int32) bool {
	return tag == TagHandshake || tag == TagHeartbeat || tag == TagGoodbye
}

const (
	magic0 = 'P'
	magic1 = 'S'
	// version1 frames are header + payload with no integrity trailer; the
	// decoder still accepts them so pre-checksum peers and archived frame
	// corpora keep working.
	version1 = 1
	// version2 frames append a 4-byte CRC32C (Castagnoli) over header +
	// payload. The encoder always emits version 2.
	version2    = 2
	headerBytes = 16
	// crcBytes is the version-2 integrity trailer size. It is part of
	// EncodedBytes (real bytes on a real wire) but deliberately NOT part of
	// PayloadBytes: the simnet cost model and the paper's per-element
	// transmission costs count payload, and a fixed 4-byte trailer would
	// skew every committed golden byte count for no analytical gain.
	crcBytes = 4
	// SparseEntryBytes is the wire cost of one sparse element: a 4-byte
	// index plus an 8-byte value. This constant is what the collective
	// cost analysis (paper eqs. 11-16) multiplies by.
	SparseEntryBytes = 12
	// DenseEntryBytes is the wire cost of one dense element.
	DenseEntryBytes = 8
	// HeaderBytes is the fixed frame header size, exported for fault
	// injectors that need to aim bit-flips at the payload region.
	HeaderBytes = headerBytes
	// CRCBytes is the version-2 integrity trailer size.
	CRCBytes = crcBytes
)

// ErrBadFrame is returned when a frame fails validation on decode.
var ErrBadFrame = errors.New("wire: malformed frame")

// ErrFrameCorrupt is returned when a version-2 frame's CRC32C trailer does
// not match its contents. Unlike ErrBadFrame the framing itself was intact —
// exactly one frame's worth of bytes was consumed from the stream — so the
// caller can skip the frame and keep reading; the lost message is recovered
// by the collective retry layer like any other recv failure.
var ErrFrameCorrupt = errors.New("wire: frame checksum mismatch")

// castagnoli is the CRC32C polynomial table shared by encode and decode.
// Castagnoli rather than IEEE because it detects all 1- and 2-bit errors on
// frames this size and has hardware support on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPayload caps a single frame at 1 GiB to fail fast on corrupt length
// prefixes instead of attempting a huge allocation.
const maxPayload = 1 << 30

// decodeChunk bounds how much payload buffer is allocated ahead of the
// bytes actually read. A header is 16 bytes of attacker-controlled input;
// trusting its length field for an up-front allocation would let a
// truncated or hostile stream pin ~1 GiB per frame. Growing chunk by chunk
// means a lying header costs at most one chunk before ReadFull reports the
// stream short.
const decodeChunk = 1 << 20

// PayloadBytes returns the encoded payload size of m in bytes, excluding
// the fixed header. This is the number the cost model charges per message.
func PayloadBytes(m Message) int {
	switch m.Kind {
	case KindControl:
		return 4 + 8*len(m.Ints)
	case KindDense:
		return 4 + DenseEntryBytes*len(m.Dense)
	case KindSparse:
		if m.Sparse == nil {
			return 8
		}
		return 8 + SparseEntryBytes*m.Sparse.NNZ()
	default:
		return 0
	}
}

// EncodedBytes returns the full on-wire size of m as the encoder emits it:
// header + payload + the version-2 CRC trailer.
func EncodedBytes(m Message) int { return headerBytes + PayloadBytes(m) + crcBytes }

// AppendMessage appends m's full wire encoding (header + payload + CRC32C
// trailer) to dst and returns the extended slice. This is the
// allocation-free core of Encode: callers that reuse dst encode with zero
// steady-state heap traffic.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	plen := PayloadBytes(m)
	if plen > maxPayload {
		return dst, fmt.Errorf("wire: payload %d exceeds limit", plen)
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magic0, magic1, version2, byte(m.Kind))
	dst = le.AppendUint32(dst, uint32(m.Tag))
	dst = le.AppendUint32(dst, uint32(m.From))
	dst = le.AppendUint32(dst, uint32(plen))
	switch m.Kind {
	case KindControl:
		dst = le.AppendUint32(dst, uint32(len(m.Ints)))
		for _, v := range m.Ints {
			dst = le.AppendUint64(dst, uint64(v))
		}
	case KindDense:
		dst = le.AppendUint32(dst, uint32(len(m.Dense)))
		for _, v := range m.Dense {
			dst = le.AppendUint64(dst, math.Float64bits(v))
		}
	case KindSparse:
		var dim, nnz int
		if sv := m.Sparse; sv != nil {
			dim, nnz = sv.Dim, sv.NNZ()
		}
		dst = le.AppendUint32(dst, uint32(dim))
		dst = le.AppendUint32(dst, uint32(nnz))
		if sv := m.Sparse; sv != nil {
			for k := range sv.Index {
				dst = le.AppendUint32(dst, uint32(sv.Index[k]))
				dst = le.AppendUint64(dst, math.Float64bits(sv.Value[k]))
			}
		}
	default:
		return dst[:len(dst)-headerBytes], fmt.Errorf("wire: cannot encode kind %v", m.Kind)
	}
	dst = le.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
	return dst, nil
}

// encBufs pools encode buffers so Encode's steady state allocates
// nothing; buffers return to the pool as soon as the Write completes.
var encBufs scratch.Bytes

// Encode writes m to w in wire format.
func Encode(w io.Writer, m Message) error {
	buf := encBufs.Get(EncodedBytes(m))
	buf, err := AppendMessage(buf, m)
	if err != nil {
		encBufs.Put(buf)
		return err
	}
	_, err = w.Write(buf)
	encBufs.Put(buf)
	return err
}

// Decode reads one message from r. It returns io.EOF cleanly if the stream
// ends exactly at a frame boundary and io.ErrUnexpectedEOF mid-frame.
func Decode(r io.Reader) (Message, error) {
	m, _, err := DecodeFrom(r, nil)
	return m, err
}

// DecodeFrom is Decode reading the raw payload into scratch (grown only
// when too small), returning the possibly-grown buffer for the caller to
// reuse on the next frame. The decoded Message's payload fields are
// always freshly allocated — they outlive the scratch — so only the
// transient frame buffer is saved.
func DecodeFrom(r io.Reader, payload []byte) (Message, []byte, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Message{}, payload, io.EOF
		}
		return Message{}, payload, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Message{}, payload, fmt.Errorf("%w: bad magic %x%x", ErrBadFrame, hdr[0], hdr[1])
	}
	if hdr[2] != version1 && hdr[2] != version2 {
		return Message{}, payload, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[2])
	}
	m := Message{
		Kind: Kind(hdr[3]),
		Tag:  int32(binary.LittleEndian.Uint32(hdr[4:8])),
		From: int32(binary.LittleEndian.Uint32(hdr[8:12])),
	}
	plen := binary.LittleEndian.Uint32(hdr[12:16])
	if plen > maxPayload {
		return Message{}, payload, fmt.Errorf("%w: payload length %d too large", ErrBadFrame, plen)
	}
	p, payload, rerr := readPayload(r, payload, int(plen))
	if rerr != nil {
		return Message{}, payload, rerr
	}
	if hdr[2] == version2 {
		// Verify the trailer BEFORE the structural decoder touches the
		// payload: corrupt bytes must surface as ErrFrameCorrupt (skippable,
		// exactly one frame consumed), never as a wrong-but-well-formed
		// message. Version-1 frames carry no trailer and decode unverified.
		var trailer [crcBytes]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Message{}, payload, err
		}
		sum := crc32.Update(0, castagnoli, hdr[:])
		sum = crc32.Update(sum, castagnoli, p)
		if sum != binary.LittleEndian.Uint32(trailer[:]) {
			return Message{}, payload, fmt.Errorf("%w: tag %d from %d (%d payload bytes)",
				ErrFrameCorrupt, m.Tag, m.From, plen)
		}
	}
	err := decodePayload(&m, p, hdr[3])
	return m, payload, err
}

// readPayload reads plen payload bytes into scratch, growing it only as
// bytes actually arrive (in decodeChunk steps, doubling capacity for
// amortized-linear growth). The steady-state path — scratch already large
// enough — reads in one ReadFull with zero allocation. It returns the
// filled prefix, the possibly-grown scratch for reuse, and any read error
// (io.EOF mid-payload becomes io.ErrUnexpectedEOF).
func readPayload(r io.Reader, scratch []byte, plen int) ([]byte, []byte, error) {
	if cap(scratch) >= plen {
		scratch = scratch[:cap(scratch)]
		p := scratch[:plen]
		if _, err := io.ReadFull(r, p); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, scratch, err
		}
		return p, scratch, nil
	}
	buf := scratch[:0]
	for len(buf) < plen {
		chunk := plen - len(buf)
		if chunk > decodeChunk {
			chunk = decodeChunk
		}
		start := len(buf)
		if cap(buf) < start+chunk {
			newCap := 2 * cap(buf)
			if newCap < start+chunk {
				newCap = start + chunk
			}
			if newCap > plen {
				newCap = plen
			}
			nb := make([]byte, start+chunk, newCap)
			copy(nb, buf)
			buf = nb
		} else {
			buf = buf[:start+chunk]
		}
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, buf[:start], err
		}
	}
	return buf, buf, nil
}

func decodePayload(m *Message, p []byte, rawKind byte) error {
	switch m.Kind {
	case KindControl:
		if len(p) < 4 {
			return fmt.Errorf("%w: short control payload", ErrBadFrame)
		}
		n := binary.LittleEndian.Uint32(p[0:4])
		if uint64(len(p)) != 4+8*uint64(n) {
			return fmt.Errorf("%w: control payload size mismatch", ErrBadFrame)
		}
		m.Ints = make([]int64, n)
		off := 4
		for i := range m.Ints {
			m.Ints[i] = int64(binary.LittleEndian.Uint64(p[off : off+8]))
			off += 8
		}
	case KindDense:
		if len(p) < 4 {
			return fmt.Errorf("%w: short dense payload", ErrBadFrame)
		}
		n := binary.LittleEndian.Uint32(p[0:4])
		if uint64(len(p)) != 4+8*uint64(n) {
			return fmt.Errorf("%w: dense payload size mismatch", ErrBadFrame)
		}
		m.Dense = make([]float64, n)
		off := 4
		for i := range m.Dense {
			m.Dense[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8]))
			off += 8
		}
	case KindSparse:
		if len(p) < 8 {
			return fmt.Errorf("%w: short sparse payload", ErrBadFrame)
		}
		dim := binary.LittleEndian.Uint32(p[0:4])
		n := binary.LittleEndian.Uint32(p[4:8])
		if uint64(len(p)) != 8+SparseEntryBytes*uint64(n) {
			return fmt.Errorf("%w: sparse payload size mismatch", ErrBadFrame)
		}
		sv := sparse.NewVector(int(dim), int(n))
		off := 8
		for i := uint32(0); i < n; i++ {
			idx := int32(binary.LittleEndian.Uint32(p[off : off+4]))
			off += 4
			val := math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8]))
			off += 8
			sv.Index = append(sv.Index, idx)
			sv.Value = append(sv.Value, val)
		}
		if err := sv.Check(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		m.Sparse = sv
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadFrame, rawKind)
	}
	return nil
}
