package collective

import (
	"fmt"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// RingAllreduceDense sums x elementwise across the group, in place. Every
// member must pass a slice of identical length. The algorithm is the
// standard two-phase ring: len(g)-1 Scatter-Reduce steps in which each
// member forwards one block to its successor while reducing the block
// arriving from its predecessor, then len(g)-1 Allgather steps circulating
// the finished blocks. tagBase reserves tags [tagBase, tagBase+2).
func RingAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2 * (p - 1)}
	if p == 1 {
		return tr, nil
	}
	chunks := vec.Split(len(x), p)
	next := g.Ranks[(me+1)%p]
	prev := g.Ranks[(me-1+p)%p]

	// Scatter-Reduce: after step s, member i holds the partial sum of s+2
	// contributions in chunk (i-s-1 mod p); after p-1 steps chunk (i+1 mod
	// p) is complete at member i.
	for s := 0; s < p-1; s++ {
		sendIdx := (me - s + p*p) % p
		recvIdx := (me - s - 1 + p*p) % p
		sc := chunks[sendIdx]
		msg := wire.DenseMsg(tagBase, x[sc.Lo:sc.Hi])
		errc := sendAsync(ep, next, msg)
		in, err := ep.Recv(prev, tagBase)
		if err != nil {
			return tr, err
		}
		if err := <-errc; err != nil {
			return tr, err
		}
		tr.add(s, ep.Rank(), next, wire.PayloadBytes(msg))
		rc := chunks[recvIdx]
		if len(in.Dense) != rc.Hi-rc.Lo {
			return tr, fmt.Errorf("collective: ring scatter block size %d, want %d", len(in.Dense), rc.Hi-rc.Lo)
		}
		vec.AddInto(x[rc.Lo:rc.Hi], in.Dense)
	}

	// Allgather: circulate completed blocks.
	for s := 0; s < p-1; s++ {
		sendIdx := (me + 1 - s + p*p) % p
		recvIdx := (me - s + p*p) % p
		sc := chunks[sendIdx]
		msg := wire.DenseMsg(tagBase+1, x[sc.Lo:sc.Hi])
		errc := sendAsync(ep, next, msg)
		in, err := ep.Recv(prev, tagBase+1)
		if err != nil {
			return tr, err
		}
		if err := <-errc; err != nil {
			return tr, err
		}
		tr.add(p-1+s, ep.Rank(), next, wire.PayloadBytes(msg))
		rc := chunks[recvIdx]
		if len(in.Dense) != rc.Hi-rc.Lo {
			return tr, fmt.Errorf("collective: ring gather block size %d, want %d", len(in.Dense), rc.Hi-rc.Lo)
		}
		copy(x[rc.Lo:rc.Hi], in.Dense)
	}
	return tr, nil
}

// PSRAllreduceDense sums x elementwise across the group in place using the
// paper's PSR-Allreduce schedule: member j owns block j. In the single
// Scatter-Reduce step every member sends each non-owned block straight to
// its owner; owners reduce. In the single Allgather step every owner sends
// its finished block to all other members. tagBase reserves tags
// [tagBase, tagBase+2).
func PSRAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return Trace{}, err
	}
	p := g.Size()
	tr := Trace{Steps: 2}
	if p == 1 {
		return tr, nil
	}
	chunks := vec.Split(len(x), p)
	mine := chunks[me]

	// Scatter-Reduce: ship block j to owner j, reduce arrivals into mine.
	errcs := make([]chan error, 0, p-1)
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		c := chunks[j]
		errcs = append(errcs, sendAsync(ep, g.Ranks[j], wire.DenseMsg(tagBase, x[c.Lo:c.Hi])))
		tr.add(0, ep.Rank(), g.Ranks[j], 4+wire.DenseEntryBytes*(c.Hi-c.Lo))
	}
	// Collect all contributions first, then reduce in member order so the
	// floating-point association is independent of arrival order; this is
	// what makes runs bit-reproducible.
	arrivals := make([][]float64, p)
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		if len(in.Dense) != mine.Hi-mine.Lo {
			return tr, fmt.Errorf("collective: psr scatter block size %d, want %d", len(in.Dense), mine.Hi-mine.Lo)
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: psr scatter unexpected sender %d", in.From)
		}
		arrivals[src] = in.Dense
	}
	for _, a := range arrivals {
		if a != nil {
			vec.AddInto(x[mine.Lo:mine.Hi], a)
		}
	}
	for _, c := range errcs {
		if err := <-c; err != nil {
			return tr, err
		}
	}

	// Allgather: broadcast my finished block, collect everyone else's.
	errcs = errcs[:0]
	for j := 0; j < p; j++ {
		if j == me {
			continue
		}
		errcs = append(errcs, sendAsync(ep, g.Ranks[j], wire.DenseMsg(tagBase+1, x[mine.Lo:mine.Hi])))
		tr.add(1, ep.Rank(), g.Ranks[j], 4+wire.DenseEntryBytes*(mine.Hi-mine.Lo))
	}
	for j := 0; j < p-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase+1)
		if err != nil {
			return tr, err
		}
		src := g.IndexOf(int(in.From))
		if src < 0 {
			return tr, fmt.Errorf("collective: psr gather from non-member rank %d", in.From)
		}
		c := chunks[src]
		if len(in.Dense) != c.Hi-c.Lo {
			return tr, fmt.Errorf("collective: psr gather block size %d, want %d", len(in.Dense), c.Hi-c.Lo)
		}
		copy(x[c.Lo:c.Hi], in.Dense)
	}
	for _, c := range errcs {
		if err := <-c; err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// ReduceDense sums every member's x into the root member's slice (member
// index rootIdx). Non-root members' slices are left untouched; the root's
// slice is updated in place. Fan-in is flat: this primitive is used for the
// intra-node reduction to the Leader, where member counts are small and the
// "link" is the memory bus.
func ReduceDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if g.Size() == 1 {
		return tr, nil
	}
	if me != rootIdx {
		m := wire.DenseMsg(tagBase, x)
		if err := ep.Send(g.Ranks[rootIdx], m); err != nil {
			return tr, err
		}
		tr.add(0, ep.Rank(), g.Ranks[rootIdx], wire.PayloadBytes(m))
		return tr, nil
	}
	arrivals := make([][]float64, g.Size())
	for j := 0; j < g.Size()-1; j++ {
		in, err := ep.Recv(transport.AnySource, tagBase)
		if err != nil {
			return tr, err
		}
		if len(in.Dense) != len(x) {
			return tr, fmt.Errorf("collective: reduce length %d, want %d", len(in.Dense), len(x))
		}
		src := g.IndexOf(int(in.From))
		if src < 0 || src == me || arrivals[src] != nil {
			return tr, fmt.Errorf("collective: reduce unexpected sender %d", in.From)
		}
		arrivals[src] = in.Dense
	}
	// Reduce in member order for arrival-order-independent float results.
	for _, a := range arrivals {
		if a != nil {
			vec.AddInto(x, a)
		}
	}
	return tr, nil
}

// BroadcastDense copies the root member's x into every member's slice.
func BroadcastDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	me, err := g.validate(ep)
	if err != nil {
		return Trace{}, err
	}
	if rootIdx < 0 || rootIdx >= g.Size() {
		return Trace{}, fmt.Errorf("collective: root index %d out of group", rootIdx)
	}
	tr := Trace{Steps: 1}
	if g.Size() == 1 {
		return tr, nil
	}
	if me == rootIdx {
		errcs := make([]chan error, 0, g.Size()-1)
		for j := 0; j < g.Size(); j++ {
			if j == rootIdx {
				continue
			}
			m := wire.DenseMsg(tagBase, x)
			errcs = append(errcs, sendAsync(ep, g.Ranks[j], m))
			tr.add(0, ep.Rank(), g.Ranks[j], wire.PayloadBytes(m))
		}
		for _, c := range errcs {
			if err := <-c; err != nil {
				return tr, err
			}
		}
		return tr, nil
	}
	in, err := ep.Recv(g.Ranks[rootIdx], tagBase)
	if err != nil {
		return tr, err
	}
	if len(in.Dense) != len(x) {
		return tr, fmt.Errorf("collective: broadcast length %d, want %d", len(in.Dense), len(x))
	}
	copy(x, in.Dense)
	return tr, nil
}

// StarAllreduceDense is the master-worker allreduce of AD-ADMM: gather all
// contributions at the group's member 0 (the master), then broadcast the
// sum. It concentrates all traffic on the master's links, which is exactly
// the bottleneck the paper's decentralized schedules remove.
func StarAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	tr, err := ReduceDense(ep, g, tagBase, 0, x)
	if err != nil {
		return tr, err
	}
	tr2, err := BroadcastDense(ep, g, tagBase+1, 0, x)
	tr.Merge(tr2)
	return tr, err
}
