package core

import (
	"math"
	"runtime"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/raceflag"
	"psrahgadmm/internal/watchdog"
)

// runMallocs executes one full training run and returns the heap objects
// it allocated, counted across all goroutines (crew members, compute
// pool) via runtime.MemStats.Mallocs.
func runMallocs(t *testing.T, cfg Config, train *dataset.Dataset) int64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := Run(cfg, train, RunOptions{})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.MaxIter {
		t.Fatalf("history length %d, want %d", len(res.History), cfg.MaxIter)
	}
	return int64(after.Mallocs - before.Mallocs)
}

// marginalAllocs measures the per-iteration allocation rate of a config as
// the slope between two runs differing only in MaxIter, so every one-time
// cost — fabric, crew, workspaces, first-rounds buffer growth — cancels.
// The minimum over trials filters runtime background noise (timers,
// scheduler growth).
func marginalAllocs(t *testing.T, base Config, train *dataset.Dataset, n1, n2 int) float64 {
	t.Helper()
	best := math.Inf(1)
	for trial := 0; trial < 3; trial++ {
		c1, c2 := base, base
		c1.MaxIter, c2.MaxIter = n1, n2
		m1 := runMallocs(t, c1, train)
		m2 := runMallocs(t, c2, train)
		if perIter := float64(m2-m1) / float64(n2-n1); perIter < best {
			best = perIter
		}
	}
	return best
}

// TestSteadyStateAllocBudget pins the tentpole guarantee: a warmed
// steady-state iteration of the flat-PSR / BSP / sparse engine — the
// repo's allocation benchmark composition — stays within a small fixed
// heap budget. Guards the reuse discipline of DESIGN.md "Memory model &
// buffer ownership"; a regression here means some per-round buffer went
// back on the heap.
func TestSteadyStateAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	train, _ := testData(t, 160)
	cfg := baseConfig(PSRAADMM, 3, 2)
	cfg.EvalEvery = 1 << 20 // objective eval is off the steady-state path

	const budget = 8.0
	got := marginalAllocs(t, cfg, train, 30, 130)
	t.Logf("steady-state allocations: %.2f objects/iter (budget %g)", got, budget)
	if got > budget {
		t.Fatalf("steady-state allocations: %.2f objects/iter exceeds budget %g", got, budget)
	}
}

// TestRobustSteadyStateAllocBudget pins the robust path's perf gate: with
// the contribution screen scoring every encoded contribution and the
// trimmed-mean combine replacing the running sum, a warmed steady-state
// iteration must allocate nothing beyond the baseline budget — the screen
// updates EWMAs in place and the robust scratch is owned by the reducer
// and recycled across rounds.
func TestRobustSteadyStateAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	train, _ := testData(t, 160)
	cfg := baseConfig(PSRAADMM, 3, 2)
	cfg.EvalEvery = 1 << 20
	cfg.Aggregator = collective.AggTrimmedMeanName
	cfg.Screen = watchdog.ScreenConfig{Enabled: true}

	const budget = 8.0
	got := marginalAllocs(t, cfg, train, 30, 130)
	t.Logf("robust steady-state allocations: %.2f objects/iter (budget %g)", got, budget)
	if got > budget {
		t.Fatalf("robust steady-state allocations: %.2f objects/iter exceeds budget %g", got, budget)
	}
}
