package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/vec"
)

// testData builds a small, learnable synthetic problem shared by the
// engine tests.
func testData(t testing.TB, rows int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Generate(dataset.SynthConfig{
		Name: "eng", Dim: 200, TrainRows: rows, TestRows: 60, RowNNZ: 10,
		ZipfS: 1.3, SignalNNZ: 30, NoiseFlip: 0.02, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func baseConfig(alg Algorithm, nodes, wpn int) Config {
	return Config{
		Algorithm: alg,
		Topo:      simnet.Topology{Nodes: nodes, WorkersPerNode: wpn},
		Rho:       1.0,
		Lambda:    0.5,
		MaxIter:   30,
	}
}

func TestAllAlgorithmsReduceObjective(t *testing.T) {
	train, test := testData(t, 160)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 4, 2)
			res, err := Run(cfg, train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.History) != cfg.MaxIter {
				t.Fatalf("history length %d", len(res.History))
			}
			first := res.History[0].Objective
			last := res.FinalObjective()
			if isNaN(first) || isNaN(last) {
				t.Fatal("objective not evaluated")
			}
			if last >= first {
				t.Fatalf("objective did not decrease: %v → %v", first, last)
			}
			acc := res.FinalAccuracy()
			if isNaN(acc) || acc < 0.6 {
				t.Fatalf("final accuracy %v too low", acc)
			}
			if res.SystemTime <= 0 || res.TotalBytes <= 0 {
				t.Fatalf("timing/bytes not accounted: %+v", res.SystemTime)
			}
		})
	}
}

func TestExactAlgorithmsAgree(t *testing.T) {
	// GC-ADMM, flat PSRA-ADMM, and PSRA-HGADMM with a single global group
	// compute the same exact consensus recursion; their objectives must
	// agree to float tolerance at every iteration.
	train, _ := testData(t, 120)
	run := func(alg Algorithm, threshold int) []IterStat {
		cfg := baseConfig(alg, 4, 2)
		cfg.MaxIter = 12
		cfg.GroupThreshold = threshold
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	gc := run(GCADMM, 0)
	flat := run(PSRAADMM, 0)
	hier := run(PSRAHGADMM, 4) // all nodes in one group
	gr := run(GRADMM, 0)
	for i := range gc {
		if d := math.Abs(gc[i].Objective - flat[i].Objective); d > 1e-8*(1+math.Abs(gc[i].Objective)) {
			t.Fatalf("iter %d: GC %v vs flat PSRA %v", i, gc[i].Objective, flat[i].Objective)
		}
		if d := math.Abs(gc[i].Objective - hier[i].Objective); d > 1e-6*(1+math.Abs(gc[i].Objective)) {
			t.Fatalf("iter %d: GC %v vs hierarchical %v", i, gc[i].Objective, hier[i].Objective)
		}
		if d := math.Abs(gc[i].Objective - gr[i].Objective); d > 1e-6*(1+math.Abs(gc[i].Objective)) {
			t.Fatalf("iter %d: GC %v vs GR-ADMM %v", i, gc[i].Objective, gr[i].Objective)
		}
	}
}

func TestDeterministicHistories(t *testing.T) {
	train, test := testData(t, 120)
	for _, alg := range []Algorithm{PSRAHGADMM, ADMMLib, ADADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 4, 2)
			cfg.MaxIter = 10
			cfg.GroupThreshold = 2
			cfg.Stragglers = simnet.Default(5)
			a, err := Run(cfg, train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg, train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.History {
				if !iterStatEqual(a.History[i], b.History[i]) {
					t.Fatalf("iter %d differs:\n%+v\n%+v", i, a.History[i], b.History[i])
				}
			}
			if !vec.Equal(a.Z, b.Z) {
				t.Fatal("final iterates differ")
			}
		})
	}
}

func TestConvergesToReferenceOptimum(t *testing.T) {
	train, _ := testData(t, 120)
	fstar, zstar, err := ReferenceOptimum(train, 1.0, 0.5, 150)
	if err != nil {
		t.Fatal(err)
	}
	if fstar <= 0 || len(zstar) != train.Dim() {
		t.Fatalf("reference optimum: f*=%v", fstar)
	}
	cfg := baseConfig(PSRAHGADMM, 4, 2)
	cfg.MaxIter = 80
	res, err := Run(cfg, train, RunOptions{FStar: fstar, HaveFStar: true})
	if err != nil {
		t.Fatal(err)
	}
	relFirst := res.History[0].RelError
	relLast := res.History[len(res.History)-1].RelError
	if isNaN(relFirst) || isNaN(relLast) {
		t.Fatal("relative error not reported")
	}
	if relLast > 0.05 {
		t.Fatalf("did not approach optimum: rel err %v", relLast)
	}
	if relLast >= relFirst {
		t.Fatalf("relative error did not shrink: %v → %v", relFirst, relLast)
	}
}

func TestGroupingPreservesConsensusChangesClock(t *testing.T) {
	// The staged aggregation tree must keep consensus exact — grouped and
	// ungrouped runs follow the same optimization trajectory (up to float
	// association) — while changing the virtual timeline and adding GG
	// traffic.
	train, _ := testData(t, 160)
	run := func(threshold int) *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.MaxIter = 10
		cfg.GroupThreshold = threshold
		cfg.Jitter = simnet.Jitter{Seed: 3, Amp: 0.5}
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	grouped := run(2)
	full := run(4)
	for i := range grouped.History {
		g, f := grouped.History[i].Objective, full.History[i].Objective
		if math.Abs(g-f) > 1e-6*(1+math.Abs(f)) {
			t.Fatalf("iter %d: grouped objective %v deviates from ungrouped %v", i, g, f)
		}
	}
	if grouped.TotalCommTime == full.TotalCommTime {
		t.Fatal("grouping did not change the virtual timeline")
	}
	if grouped.TotalBytes <= full.TotalBytes {
		// The tree adds GG round trips and inter-level broadcasts.
		t.Fatalf("grouped bytes %d not above ungrouped %d", grouped.TotalBytes, full.TotalBytes)
	}
}

func TestStragglersSlowUngroupedMoreThanGrouped(t *testing.T) {
	// The Figure 7 mechanism: with slow nodes injected, the ungrouped run
	// (every iteration waits for the slowest node) must spend more
	// wait+transfer time than the grouped run at the same cluster size.
	train, _ := testData(t, 240)
	mk := func(threshold int) float64 {
		cfg := baseConfig(PSRAHGADMM, 8, 1)
		cfg.MaxIter = 15
		cfg.GroupThreshold = threshold
		cfg.Stragglers = simnet.Default(11)
		cfg.EvalEvery = cfg.MaxIter
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCommTime
	}
	grouped := mk(4)   // half the nodes per group
	ungrouped := mk(8) // one global group
	if grouped >= ungrouped {
		t.Fatalf("grouped comm %v not below ungrouped %v under stragglers", grouped, ungrouped)
	}
}

func TestSSPStalenessBounded(t *testing.T) {
	// With MaxDelay=1 every participant must be fresh at least every
	// other round, so the objective still decreases.
	train, _ := testData(t, 160)
	cfg := baseConfig(ADMMLib, 4, 2)
	cfg.MaxDelay = 1
	cfg.MaxIter = 20
	cfg.Stragglers = simnet.Default(3)
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalObjective() >= res.History[0].Objective {
		t.Fatal("SSP with tight delay bound failed to make progress")
	}
}

func TestConfigValidation(t *testing.T) {
	train, _ := testData(t, 60)
	bad := []Config{
		{Algorithm: "nope", Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, Rho: 1, MaxIter: 1},
		{Algorithm: GCADMM, Topo: simnet.Topology{Nodes: 0, WorkersPerNode: 1}, Rho: 1, MaxIter: 1},
		{Algorithm: GCADMM, Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, Rho: 0, MaxIter: 1},
		{Algorithm: GCADMM, Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, Rho: 1, Lambda: -1, MaxIter: 1},
		{Algorithm: GCADMM, Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, Rho: 1, MaxIter: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, train, RunOptions{}); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	// More workers than rows must be rejected.
	cfg := baseConfig(GCADMM, 100, 1)
	if _, err := Run(cfg, train, RunOptions{}); err == nil {
		t.Fatal("overSharded config accepted")
	}
}

func TestEvalEverySkipsEvaluations(t *testing.T) {
	train, _ := testData(t, 80)
	cfg := baseConfig(GCADMM, 2, 1)
	cfg.MaxIter = 10
	cfg.EvalEvery = 5
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for _, h := range res.History {
		if !isNaN(h.Objective) {
			evaluated++
		}
	}
	if evaluated != 3 { // iters 0, 5, 9 (last always evaluated)
		t.Fatalf("evaluated %d times, want 3", evaluated)
	}
}

func TestOnIterationCallback(t *testing.T) {
	train, _ := testData(t, 80)
	cfg := baseConfig(GCADMM, 2, 1)
	cfg.MaxIter = 5
	var seen []int
	_, err := Run(cfg, train, RunOptions{OnIteration: func(s IterStat) {
		seen = append(seen, s.Iter)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 || seen[0] != 0 || seen[4] != 4 {
		t.Fatalf("callback iterations %v", seen)
	}
}

// iterStatEqual compares two IterStats bitwise, treating NaN == NaN (NaN
// marks "not evaluated", which must also reproduce).
func iterStatEqual(a, b IterStat) bool {
	feq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return a.Iter == b.Iter && a.Bytes == b.Bytes &&
		feq(a.Objective, b.Objective) && feq(a.RelError, b.RelError) &&
		feq(a.Accuracy, b.Accuracy) && feq(a.CalTime, b.CalTime) &&
		feq(a.CommTime, b.CommTime)
}

func TestSparseExchangeBeatsDenseBaselines(t *testing.T) {
	// On a high-dimensional sparse problem, PSRA-HGADMM's sparse exchange
	// must move fewer bytes than ADMMLib's dense fp32 ring, which in turn
	// moves fewer than AD-ADMM's full-precision (x,y) star — the §5.4
	// communication-cost ordering.
	train, _, err := dataset.Generate(dataset.SynthConfig{
		Name: "hd", Dim: 8000, TrainRows: 240, TestRows: 8, RowNNZ: 10,
		ZipfS: 1.3, SignalNNZ: 80, NoiseFlip: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg Algorithm) int64 {
		cfg := baseConfig(alg, 4, 2)
		cfg.MaxIter = 5
		cfg.EvalEvery = 5
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes
	}
	psra := run(PSRAHGADMM)
	admmlib := run(ADMMLib)
	adadmm := run(ADADMM)
	if !(psra < admmlib && admmlib < adadmm) {
		t.Fatalf("byte ordering violated: psra=%d admmlib=%d adadmm=%d", psra, admmlib, adadmm)
	}
}
