package core

import (
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
)

// iterTiming aggregates one iteration's virtual-time accounting.
type iterTiming struct {
	cal   float64 // mean per-worker compute time
	comm  float64 // mean per-worker wait+transfer time
	bytes int64
}

// runPSRAADMM executes one flat PSRA-ADMM iteration (§4.2 without the WLG
// framework): every worker joins a single cluster-wide sparse
// PSR-Allreduce of its w_i. BSP: the collective starts when the slowest
// worker is ready; the recursion is exact consensus every iteration.
func runPSRAADMM(cfg Config, ws []*worker, fab transport.Fabric, iter int) (iterTiming, error) {
	calTimes := parallelXUpdates(cfg, ws, iter)
	var timing iterTiming

	start := 0.0
	starts := make([]float64, len(ws))
	for i, w := range ws {
		starts[i] = w.clock
		w.clock += calTimes[i]
		start = maxf(start, w.clock)
		timing.cal += calTimes[i]
	}
	timing.cal /= float64(len(ws))

	ranks := make([]int, len(ws))
	inputs := make([]*sparse.Vector, len(ws))
	for i, w := range ws {
		ranks[i] = w.rank
		inputs[i] = w.wSparse(cfg.Rho)
		if cfg.QuantBits != 0 {
			quantizeSparseBits(inputs[i], cfg.QuantBits)
		}
	}
	agg, tr, err := groupAllreduce(fab, ranks, commPSRSparse, int32(64+iter%2*8), inputs)
	if err != nil {
		return timing, err
	}
	tr = quantScale(tr, cfg.QuantBits)
	commT := cfg.Cost.TraceTime(cfg.Topo, tr)
	timing.bytes += traceBytes(tr)
	end := start + commT
	bigW := agg.ToDense()
	for i, w := range ws {
		w.applyW(cfg, bigW, len(ws))
		timing.comm += end - starts[i] - calTimes[i]
		w.clock = end
	}
	timing.comm /= float64(len(ws))
	return timing, nil
}

// runGCADMM executes one classic synchronous master–worker consensus ADMM
// iteration: all workers ship (x_i, y_i) to the master (rank 0), which
// computes z and returns it. Full barrier; the master's links serialize
// all traffic — the scalability wall the paper's §4.1 starts from.
func runGCADMM(cfg Config, ws []*worker, iter int) (iterTiming, error) {
	calTimes := parallelXUpdates(cfg, ws, iter)
	var timing iterTiming
	dim := len(ws[0].zDense)

	start := 0.0
	starts := make([]float64, len(ws))
	for i, w := range ws {
		starts[i] = w.clock
		w.clock += calTimes[i]
		start = maxf(start, w.clock)
		timing.cal += calTimes[i]
	}
	timing.cal /= float64(len(ws))

	master := ws[0].rank
	all := make([]int, len(ws))
	for i, w := range ws {
		all[i] = w.rank
	}
	tr := starGatherTrace(master, all, dim)
	commT := cfg.Cost.TraceTime(cfg.Topo, tr)
	timing.bytes += traceBytes(tr)

	// Exact aggregation in rank order.
	bigW := make([]float64, dim)
	for _, w := range ws {
		w.wSparse(cfg.Rho).AddIntoDense(bigW, 1)
	}
	end := start + commT
	for i, w := range ws {
		w.applyW(cfg, bigW, len(ws))
		timing.comm += end - starts[i] - calTimes[i]
		w.clock = end
	}
	timing.comm /= float64(len(ws))
	return timing, nil
}

// runGRADMM executes one GR-ADMM iteration (after the paper's ref. [9]):
// BSP hierarchy identical to PSRA-HGADMM — workers reduce w over the bus
// to their node Leader — but the Leaders run one sparse Ring-Allreduce
// across ALL nodes (no GG, no dynamic grouping), then distribute the
// thresholded z. Against PSRA-HGADMM it isolates the collective schedule;
// against ADMMLib it isolates the computing model (BSP vs SSP at the same
// ring).
func runGRADMM(cfg Config, ws []*worker, fab transport.Fabric, iter int) (iterTiming, error) {
	topo := cfg.Topo
	wpn := topo.WorkersPerNode
	dim := len(ws[0].zDense)
	calTimes := parallelXUpdates(cfg, ws, iter)

	var timing iterTiming
	starts := make([]float64, len(ws))
	for i, w := range ws {
		starts[i] = w.clock
		w.clock += calTimes[i]
		timing.cal += calTimes[i]
	}
	timing.cal /= float64(len(ws))

	// Intra-node reduce to Leaders; the ring starts when the slowest
	// Leader is ready (BSP).
	leaders := make([]int, topo.Nodes)
	inputs := make([]*sparse.Vector, topo.Nodes)
	start := 0.0
	for n := 0; n < topo.Nodes; n++ {
		ranks := topo.WorkersOf(n)
		vs := make([]*sparse.Vector, wpn)
		nnzs := make([]int, wpn)
		ready := 0.0
		for i, r := range ranks {
			vs[i] = ws[r].wSparse(cfg.Rho)
			if cfg.QuantBits != 0 {
				quantizeSparseBits(vs[i], cfg.QuantBits)
			}
			nnzs[i] = vs[i].NNZ()
			ready = maxf(ready, ws[r].clock)
		}
		tr := quantScale(intraReduceTrace(ranks, ranks[0], nnzs), cfg.QuantBits)
		timing.bytes += traceBytes(tr)
		leaders[n] = ranks[0]
		inputs[n] = sumSparse(dim, vs)
		start = maxf(start, ready+cfg.Cost.TraceTime(topo, tr))
	}

	var agg *sparse.Vector
	var commT float64
	if topo.Nodes == 1 {
		agg = inputs[0]
	} else {
		var tr traceAlias
		var err error
		agg, tr, err = groupAllreduce(fab, leaders, commRingSparse, int32(64+iter%2*8), inputs)
		if err != nil {
			return timing, err
		}
		tr = quantScale(tr, cfg.QuantBits)
		commT = cfg.Cost.TraceTime(topo, tr)
		timing.bytes += traceBytes(tr)
	}

	zSparse := zFromW(agg, cfg.Lambda, cfg.Rho, topo.Size())
	zDense := zSparse.ToDense()
	for n := 0; n < topo.Nodes; n++ {
		ranks := topo.WorkersOf(n)
		bc := intraBcastTrace(ranks, ranks[0], zSparse.NNZ())
		timing.bytes += traceBytes(bc)
		end := start + commT + cfg.Cost.TraceTime(topo, bc)
		for _, r := range ranks {
			ws[r].applyZ(cfg, zDense, zSparse)
			timing.comm += end - starts[r] - calTimes[r]
			ws[r].clock = end
		}
	}
	timing.comm /= float64(len(ws))
	return timing, nil
}
