package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"psrahgadmm/internal/wire"
)

// inboxDepth bounds each rank's unread message queue. The ADMM algorithms
// are at most a few messages ahead per peer, so this never fills in
// practice; if it does, Send blocks, which is exactly MPI's eager-limit
// behaviour.
const inboxDepth = 4096

// ChanFabric is an in-process fabric connecting n rank goroutines with
// channels. Construct it once, hand Endpoint(i) to goroutine i.
type ChanFabric struct {
	size      int
	zeroCopy  bool
	endpoints []*chanEndpoint
}

// NewChanFabric creates a fabric with n ranks.
func NewChanFabric(n int) *ChanFabric {
	return newChanFabric(n, false)
}

// NewChanFabricZeroCopy creates a fabric whose Sends deliver float
// payloads WITHOUT the defensive deep copy — the delivered Dense/Sparse
// alias the sender's buffers. This deliberately opts out of the Endpoint
// aliasing contract and is safe only under the discipline the core engine
// enforces: collectives are barrier-aligned (every member completes a
// round before any member's buffers are rewritten for the next), and
// messages left over from aborted rounds are matched by tag but never
// payload-read. Anything without that structure must use NewChanFabric.
func NewChanFabricZeroCopy(n int) *ChanFabric {
	return newChanFabric(n, true)
}

func newChanFabric(n int, zeroCopy bool) *ChanFabric {
	if n <= 0 {
		panic("transport: fabric size must be positive")
	}
	f := &ChanFabric{size: n, zeroCopy: zeroCopy}
	f.endpoints = make([]*chanEndpoint, n)
	for i := range f.endpoints {
		ep := &chanEndpoint{
			fabric: f,
			rank:   i,
			inbox:  make(chan wire.Message, inboxDepth),
		}
		ep.life.Store(&chanLife{done: make(chan struct{})})
		f.endpoints[i] = ep
	}
	return f
}

// Reopen resurrects a closed endpoint as a fresh life: stale messages from
// the previous life are drained and a new open state installed, so a
// rejoining rank starts with an empty inbox. The caller must guarantee the
// previous owner goroutine has quiesced (no Recv in flight on this
// endpoint); concurrent Sends from peers are safe — they land in either
// life and at worst see one extra ErrClosed.
func (f *ChanFabric) Reopen(i int) {
	if err := checkRank(i, f.size); err != nil {
		panic(err)
	}
	ep := f.endpoints[i]
	for {
		select {
		case <-ep.inbox:
			continue
		default:
		}
		break
	}
	ep.buf = pending{}
	ep.life.Store(&chanLife{done: make(chan struct{})})
}

// Size returns the number of ranks.
func (f *ChanFabric) Size() int { return f.size }

// Endpoint returns rank i's endpoint.
func (f *ChanFabric) Endpoint(i int) Endpoint {
	if err := checkRank(i, f.size); err != nil {
		panic(err)
	}
	return f.endpoints[i]
}

// Close closes every endpoint in the fabric.
func (f *ChanFabric) Close() {
	for _, ep := range f.endpoints {
		_ = ep.Close()
	}
}

// chanLife is one open-until-closed lifetime of an endpoint. Reopen swaps
// in a fresh life; the per-life once keeps Close idempotent within it.
type chanLife struct {
	done chan struct{}
	once sync.Once
}

type chanEndpoint struct {
	fabric *ChanFabric
	rank   int
	inbox  chan wire.Message
	buf    pending

	life  atomic.Pointer[chanLife]
	stats statsCounter
}

func (e *chanEndpoint) Rank() int { return e.rank }
func (e *chanEndpoint) Size() int { return e.fabric.size }

func (e *chanEndpoint) Send(to int, m wire.Message) error {
	if err := checkRank(to, e.fabric.size); err != nil {
		return err
	}
	m.From = int32(e.rank)
	// Deep-copy float payloads: delivery must not alias the sender's
	// buffers, or a sender mutating its vector on a later collective step
	// races with a receiver still reading this one. This mirrors the TCP
	// fabric, where serialization makes the copy implicit. Zero-copy
	// fabrics shift that burden to the caller (see NewChanFabricZeroCopy).
	if !e.fabric.zeroCopy {
		if m.Dense != nil {
			m.Dense = append([]float64(nil), m.Dense...)
		}
		if m.Sparse != nil {
			m.Sparse = m.Sparse.Clone()
		}
	}
	dst := e.fabric.endpoints[to]
	closed := e.life.Load().done
	dstClosed := dst.life.Load().done
	// Check closed states first: select{} picks randomly among ready cases,
	// and a send to a closed-but-drainable inbox must still fail.
	select {
	case <-closed:
		return ErrClosed
	default:
	}
	select {
	case <-dstClosed:
		return fmt.Errorf("transport: send to closed rank %d: %w", to, ErrClosed)
	default:
	}
	select {
	case <-closed:
		return ErrClosed
	case <-dstClosed:
		return fmt.Errorf("transport: send to closed rank %d: %w", to, ErrClosed)
	case dst.inbox <- m:
		e.stats.record(m)
		return nil
	}
}

func (e *chanEndpoint) Recv(from int, tag int32) (wire.Message, error) {
	return e.recv(from, tag, 0)
}

func (e *chanEndpoint) RecvTimeout(from int, tag int32, d time.Duration) (wire.Message, error) {
	return e.recv(from, tag, d)
}

func (e *chanEndpoint) recv(from int, tag int32, d time.Duration) (wire.Message, error) {
	if from != AnySource {
		if err := checkRank(from, e.fabric.size); err != nil {
			return wire.Message{}, err
		}
	}
	timeout, stop := deadlineChan(d)
	defer stop()
	closed := e.life.Load().done
	for {
		if m, ok := e.buf.take(from, tag); ok {
			return m, nil
		}
		// Drain already-delivered messages before consulting the closed
		// state: a message that made it into the inbox before Close must
		// still be matched (see the Endpoint.Recv contract).
	drain:
		for {
			select {
			case m := <-e.inbox:
				if matches(m, from, tag) {
					return m, nil
				}
				e.buf.put(m)
			default:
				break drain
			}
		}
		select {
		case <-closed:
			return wire.Message{}, ErrClosed
		default:
		}
		select {
		case <-closed:
			// Loop once more: drain anything that raced in, then report
			// ErrClosed from the check above.
		case <-timeout:
			return wire.Message{}, fmt.Errorf("transport: recv from %d tag %d: %w", from, tag, ErrTimeout)
		case m := <-e.inbox:
			if matches(m, from, tag) {
				return m, nil
			}
			e.buf.put(m)
		}
	}
}

// SendNonBlocking reports that Send completes without a concurrent
// receiver: delivery is a buffered-channel push (it can block only if a
// peer falls inboxDepth messages behind, which the lockstep collectives
// never approach). Collectives use this to skip the send goroutine.
func (e *chanEndpoint) SendNonBlocking() bool { return true }

func (e *chanEndpoint) Stats() Stats { return e.stats.snapshot() }

func (e *chanEndpoint) Close() error {
	l := e.life.Load()
	l.once.Do(func() { close(l.done) })
	return nil
}
