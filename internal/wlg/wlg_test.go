package wlg

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// runWLG executes a full WLG world on a chan fabric. contribution(rank,
// iter) supplies each worker's w; the returned slices record every
// worker's received aggregate and contributor count per iteration.
func runWLG(t *testing.T, cfg Config, dim int,
	contribution func(rank, iter int) []float64) ([][][]float64, [][]int) {
	t.Helper()
	topo := cfg.Topo
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()

	aggregates := make([][][]float64, topo.Size())
	counts := make([][]int, topo.Size())
	for r := range aggregates {
		aggregates[r] = make([][]float64, cfg.MaxIter)
		counts[r] = make([]int, cfg.MaxIter)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, WorldSize(topo))
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunGG(f.Endpoint(GGRank(topo)), cfg); err != nil {
			errCh <- fmt.Errorf("GG: %w", err)
		}
	}()
	for r := 0; r < topo.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			funcs := WorkerFuncs{
				ComputeW: func(iter int) []float64 { return contribution(r, iter) },
				ApplyW: func(iter int, w []float64, n int) {
					aggregates[r][iter] = vec.Clone(w)
					counts[r][iter] = n
				},
			}
			if err := RunWorker(f.Endpoint(r), cfg, funcs); err != nil {
				errCh <- fmt.Errorf("worker %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return aggregates, counts
}

// rankVec gives rank r a distinguishable contribution: value 2^r in every
// slot, so any aggregate identifies exactly which ranks were summed.
func rankVec(dim, r int) []float64 {
	v := make([]float64, dim)
	vec.Fill(v, math.Ldexp(1, r))
	return v
}

// decodeRanks recovers the set of summed ranks from a 2^r-sum.
func decodeRanks(sum float64, worldSize int) map[int]bool {
	out := map[int]bool{}
	bits := int64(sum)
	for r := 0; r < worldSize; r++ {
		if bits&(1<<r) != 0 {
			out[r] = true
		}
	}
	return out
}

func TestSingleGroupIsExactConsensus(t *testing.T) {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 3, GroupThreshold: 0} // clamp → all nodes
	dim := 7
	agg, counts := runWLG(t, cfg, dim, func(r, iter int) []float64 {
		v := rankVec(dim, r)
		vec.Scale(float64(iter+1), v)
		return v
	})
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if counts[r][iter] != topo.Size() {
				t.Fatalf("rank %d iter %d contributors = %d, want %d", r, iter, counts[r][iter], topo.Size())
			}
			wantSum := float64(iter+1) * float64(int(1)<<topo.Size()-1)
			for j, got := range agg[r][iter] {
				if got != wantSum {
					t.Fatalf("rank %d iter %d slot %d = %v, want %v", r, iter, j, got, wantSum)
				}
			}
		}
	}
}

func TestGroupedAggregationPartitionsNodes(t *testing.T) {
	topo := simnet.Topology{Nodes: 6, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 4, GroupThreshold: 3}
	dim := 3
	agg, counts := runWLG(t, cfg, dim, func(r, iter int) []float64 {
		return rankVec(dim, r)
	})
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Each worker's aggregate must decode to a set of whole nodes
		// including its own, with contributor count matching.
		covered := map[int]int{} // node → group fingerprint share
		for r := 0; r < topo.Size(); r++ {
			got := agg[r][iter][0]
			ranks := decodeRanks(got, topo.Size())
			if !ranks[r] {
				t.Fatalf("iter %d rank %d: own contribution missing", iter, r)
			}
			if len(ranks) != counts[r][iter] {
				t.Fatalf("iter %d rank %d: %d ranks summed but count says %d",
					iter, r, len(ranks), counts[r][iter])
			}
			// Whole nodes only: for every member, all its node peers present.
			nodes := map[int]bool{}
			for m := range ranks {
				nodes[topo.NodeOf(m)] = true
			}
			for n := range nodes {
				for _, p := range topo.WorkersOf(n) {
					if !ranks[p] {
						t.Fatalf("iter %d rank %d: node %d partially summed", iter, r, n)
					}
				}
			}
			// Group size in nodes must equal the threshold (6 % 3 == 0 here).
			if len(nodes) != cfg.GroupThreshold {
				t.Fatalf("iter %d rank %d: group spans %d nodes, want %d", iter, r, len(nodes), cfg.GroupThreshold)
			}
			covered[topo.NodeOf(r)] = int(got)
			// All workers of one node see the same aggregate.
			if prev, ok := covered[topo.NodeOf(r)]; ok && prev != int(got) {
				t.Fatalf("iter %d: node %d workers disagree", iter, topo.NodeOf(r))
			}
		}
		if len(covered) != topo.Nodes {
			t.Fatalf("iter %d: only %d nodes covered", iter, len(covered))
		}
	}
}

func TestRemainderGroupFlushed(t *testing.T) {
	// 5 nodes, threshold 2 → groups of 2,2,1: the remainder must not hang.
	topo := simnet.Topology{Nodes: 5, WorkersPerNode: 1}
	cfg := Config{Topo: topo, MaxIter: 2, GroupThreshold: 2}
	agg, counts := runWLG(t, cfg, 2, func(r, iter int) []float64 {
		return rankVec(2, r)
	})
	for iter := 0; iter < cfg.MaxIter; iter++ {
		sizes := map[int]int{}
		for r := 0; r < topo.Size(); r++ {
			sizes[counts[r][iter]]++
			ranks := decodeRanks(agg[r][iter][0], topo.Size())
			if len(ranks) != counts[r][iter] {
				t.Fatalf("iter %d rank %d count mismatch", iter, r)
			}
		}
		// 4 workers in groups of 2, 1 worker in the remainder group of 1.
		if sizes[2] != 4 || sizes[1] != 1 {
			t.Fatalf("iter %d group size histogram = %v", iter, sizes)
		}
	}
}

func TestThresholdClamping(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 1}
	for _, th := range []int{-1, 0, 5} {
		cfg := Config{Topo: topo, MaxIter: 1, GroupThreshold: th}
		_, counts := runWLG(t, cfg, 1, func(r, iter int) []float64 {
			return rankVec(1, r)
		})
		for r := 0; r < topo.Size(); r++ {
			if counts[r][0] != 2 {
				t.Fatalf("threshold %d: contributors = %d, want 2 (clamped to all nodes)", th, counts[r][0])
			}
		}
	}
}

func TestLeaderHelpers(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 3}
	if GGRank(topo) != 6 || WorldSize(topo) != 7 {
		t.Fatal("GGRank/WorldSize wrong")
	}
	if LeaderOf(topo, 0) != 0 || LeaderOf(topo, 1) != 3 {
		t.Fatal("LeaderOf wrong")
	}
	if !IsLeader(topo, 0) || IsLeader(topo, 1) || !IsLeader(topo, 3) || IsLeader(topo, 5) {
		t.Fatal("IsLeader wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, MaxIter: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Topo: simnet.Topology{Nodes: 0, WorkersPerNode: 1}, MaxIter: 1},
		{Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, MaxIter: 0},
		{Topo: simnet.Topology{Nodes: 1, WorkersPerNode: 1}, MaxIter: 1, Codec: "bogus"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestLossyCodecRoundsContributions runs the same world with the exact and
// the 8-bit quantized codec: the lossy aggregate must differ from the
// exact one but stay within the quantization error bound (every worker
// sums wire-precision values, so the error per element is at most the sum
// of per-contribution quantization steps).
func TestLossyCodecRoundsContributions(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	dim := 9
	contribution := func(r, iter int) []float64 {
		v := make([]float64, dim)
		for j := range v {
			v[j] = math.Sin(float64(r*dim + j + 1)) // irrational-ish: quantization must move these
		}
		return v
	}
	exact, _ := runWLG(t, Config{Topo: topo, MaxIter: 1}, dim, contribution)
	lossy, _ := runWLG(t, Config{Topo: topo, MaxIter: 1, Codec: exchange.SparseQ8}, dim, contribution)

	var moved bool
	for j := 0; j < dim; j++ {
		diff := math.Abs(exact[0][0][j] - lossy[0][0][j])
		// Each of the 4 contributions has max-abs ≤ 1, so its quantization
		// step is at most 1/127; the summed error is bounded by 4×(1/2)/127
		// plus float slack.
		if diff > 4*0.5/127+1e-9 {
			t.Fatalf("slot %d error %v exceeds quantization bound", j, diff)
		}
		if diff != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("8-bit codec left every aggregate value untouched")
	}
}

func TestRunWorkerRejectsGGRank(t *testing.T) {
	topo := simnet.Topology{Nodes: 1, WorkersPerNode: 1}
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()
	cfg := Config{Topo: topo, MaxIter: 1}
	err := RunWorker(f.Endpoint(GGRank(topo)), cfg, WorkerFuncs{
		ComputeW: func(int) []float64 { return nil },
		ApplyW:   func(int, []float64, int) {},
	})
	if err == nil {
		t.Fatal("GG rank accepted as worker")
	}
}

func TestRunWorkerRequiresFuncs(t *testing.T) {
	topo := simnet.Topology{Nodes: 1, WorkersPerNode: 1}
	f := transport.NewChanFabric(WorldSize(topo))
	defer f.Close()
	cfg := Config{Topo: topo, MaxIter: 1}
	if err := RunWorker(f.Endpoint(0), cfg, WorkerFuncs{}); err == nil {
		t.Fatal("incomplete WorkerFuncs accepted")
	}
}

// TestInterleavedIterations exercises the GG's per-iteration queues: with
// threshold 1, every node is its own group and advances at its own pace,
// so requests from different iterations interleave at the GG.
func TestInterleavedIterations(t *testing.T) {
	topo := simnet.Topology{Nodes: 4, WorkersPerNode: 1}
	cfg := Config{Topo: topo, MaxIter: 10, GroupThreshold: 1}
	agg, counts := runWLG(t, cfg, 2, func(r, iter int) []float64 {
		return rankVec(2, r)
	})
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for r := 0; r < topo.Size(); r++ {
			if counts[r][iter] != 1 {
				t.Fatalf("threshold 1: contributors = %d", counts[r][iter])
			}
			if agg[r][iter][0] != math.Ldexp(1, r) {
				t.Fatalf("threshold 1: rank %d got foreign data", r)
			}
		}
	}
}

// TestWLGOverTCP smoke-tests the runtime on the TCP fabric.
func TestWLGOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh setup in -short mode")
	}
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 2, GroupThreshold: 2}
	n := WorldSize(topo)

	addrs := make([]string, n)
	for i := range addrs {
		ln, err := newLoopback()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.addr
		ln.close()
	}
	eps := make([]transport.Endpoint, n)
	var setup sync.WaitGroup
	setupErrs := make([]error, n)
	for i := 0; i < n; i++ {
		setup.Add(1)
		go func(i int) {
			defer setup.Done()
			eps[i], setupErrs[i] = transport.NewTCPEndpoint(i, addrs, transport.TCPOptions{})
		}(i)
	}
	setup.Wait()
	for i, err := range setupErrs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	dim := 4
	var mu sync.Mutex
	results := make(map[int][]float64)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunGG(eps[GGRank(topo)], cfg); err != nil {
			errCh <- err
		}
	}()
	for r := 0; r < topo.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			funcs := WorkerFuncs{
				ComputeW: func(iter int) []float64 { return rankVec(dim, r) },
				ApplyW: func(iter int, w []float64, nWorkers int) {
					if iter == cfg.MaxIter-1 {
						mu.Lock()
						results[r] = vec.Clone(w)
						mu.Unlock()
					}
				},
			}
			if err := RunWorker(eps[r], cfg, funcs); err != nil {
				errCh <- err
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := float64(int(1)<<topo.Size() - 1)
	for r, w := range results {
		if w[0] != want {
			t.Fatalf("TCP rank %d aggregate %v, want %v", r, w[0], want)
		}
	}
}

var _ = collective.Group{} // keep import for helper reuse below
