// Package shard implements the block-partition/ownership layer that turns
// the PSR key-ownership idea (block j owned by worker j) from an allreduce
// *schedule* into sharded *state*: the model dimension is split into
// contiguous blocks with a deterministic block→owner map, and every rank
// subscribes only to the blocks its data touches. The consensus iterate is
// then general-form consensus in the style of block-wise ADMM — no rank
// materializes the full model — while a run with every rank subscribed to
// every block reproduces the replicated-state engine bit for bit.
//
// The layout is exactly vec.Split's (the first Dim%Blocks blocks get one
// extra coordinate), so block boundaries agree with every existing chunked
// collective, and BlockOf is vec.ChunkOf's arithmetic — O(1), no tables.
package shard

import (
	"fmt"

	"psrahgadmm/internal/vec"
)

// Partition divides a model of dimension Dim into Blocks contiguous
// blocks using vec.Split's layout.
type Partition struct {
	Dim    int
	Blocks int
}

// NewPartition returns the partition of dim into blocks, clamping blocks
// into [1, dim] so no block is empty (dim must be positive).
func NewPartition(dim, blocks int) Partition {
	if dim <= 0 {
		panic(fmt.Sprintf("shard: NewPartition dim %d must be positive", dim))
	}
	if blocks < 1 {
		blocks = 1
	}
	if blocks > dim {
		blocks = dim
	}
	return Partition{Dim: dim, Blocks: blocks}
}

// Chunk returns block b's coordinate range [Lo, Hi).
func (p Partition) Chunk(b int) vec.Chunk {
	if b < 0 || b >= p.Blocks {
		panic(fmt.Sprintf("shard: block %d out of range [0,%d)", b, p.Blocks))
	}
	base := p.Dim / p.Blocks
	rem := p.Dim % p.Blocks
	if b < rem {
		lo := b * (base + 1)
		return vec.Chunk{Lo: lo, Hi: lo + base + 1}
	}
	lo := rem*(base+1) + (b-rem)*base
	return vec.Chunk{Lo: lo, Hi: lo + base}
}

// BlockOf returns the block owning coordinate idx — the inverse of Chunk,
// via vec.ChunkOf's arithmetic.
func (p Partition) BlockOf(idx int) int {
	return vec.ChunkOf(p.Dim, p.Blocks, idx)
}

// Map is one world's sharded-state layout: the partition plus every rank's
// subscription — the sorted blocks its data's active columns fall into. The
// map is built once from the dataset shards and is immutable; liveness is
// evaluated against it per round (an elastic regroup changes WHO is alive,
// never who subscribes to what).
type Map struct {
	Part  Partition
	World int
	// Subs[r] is rank r's sorted subscribed block list.
	Subs [][]int32
	// subscribers[b] is block b's sorted subscriber rank list.
	subscribers [][]int32
}

// NewMap builds the subscription map for a world where active[r] lists
// rank r's active (touched) columns in increasing order.
func NewMap(part Partition, active [][]int32) *Map {
	m := &Map{
		Part:        part,
		World:       len(active),
		Subs:        make([][]int32, len(active)),
		subscribers: make([][]int32, part.Blocks),
	}
	for r, cols := range active {
		var subs []int32
		last := int32(-1)
		for _, c := range cols {
			b := int32(part.BlockOf(int(c)))
			if b != last {
				subs = append(subs, b)
				last = b
				m.subscribers[b] = append(m.subscribers[b], int32(r))
			}
		}
		m.Subs[r] = subs
	}
	return m
}

// Subscribers returns block b's sorted subscriber ranks (shared storage;
// callers must not mutate).
func (m *Map) Subscribers(b int) []int32 { return m.subscribers[b] }

// LiveSubscribers counts block b's subscribers that are currently alive.
func (m *Map) LiveSubscribers(b int, alive func(rank int) bool) int {
	n := 0
	for _, r := range m.subscribers[b] {
		if alive(int(r)) {
			n++
		}
	}
	return n
}

// LiveCounts fills counts[b] with every block's live subscriber count —
// the per-block contributor scaling of the sharded z-update (general-form
// consensus: each block's average runs over the ranks whose objective
// actually couples to it). counts is grown when too small and returned.
func (m *Map) LiveCounts(counts []int, alive func(rank int) bool) []int {
	if cap(counts) < m.Part.Blocks {
		counts = make([]int, m.Part.Blocks)
	}
	counts = counts[:m.Part.Blocks]
	for b := range counts {
		counts[b] = m.LiveSubscribers(b, alive)
	}
	return counts
}

// FullSubscription reports whether every rank subscribes to every block —
// the regime in which the sharded engine is bit-identical to the
// replicated one.
func (m *Map) FullSubscription() bool {
	for _, subs := range m.Subs {
		if len(subs) != m.Part.Blocks {
			return false
		}
	}
	return true
}

// Plan projects the map onto one live collective group: Subs[i] is the
// subscription of the rank at group position i, and block b's owner is the
// member at position b % len(Subs) — the PSR key-ownership rule applied to
// blocks instead of chunks, deterministic under elastic regroup because it
// keys off group position, not world rank.
type Plan struct {
	Part Partition
	Subs [][]int32
}

// Plan builds the collective plan for the given live world ranks in group
// order. The returned plan aliases the map's subscription storage.
func (m *Map) Plan(ranks []int) *Plan {
	pl := &Plan{Part: m.Part, Subs: make([][]int32, len(ranks))}
	for i, r := range ranks {
		pl.Subs[i] = m.Subs[r]
	}
	return pl
}

// FullPlan is the plan where every one of p members subscribes to every
// block — how a conventional full-width allreduce rides the shard-aware
// schedule (the WLG GG's per-block-owner aggregation).
func FullPlan(part Partition, p int) *Plan {
	all := make([]int32, part.Blocks)
	for b := range all {
		all[b] = int32(b)
	}
	pl := &Plan{Part: part, Subs: make([][]int32, p)}
	for i := range pl.Subs {
		pl.Subs[i] = all
	}
	return pl
}

// OwnerPos returns the group position owning block b.
func (pl *Plan) OwnerPos(b int) int { return b % len(pl.Subs) }

// Members returns the group size.
func (pl *Plan) Members() int { return len(pl.Subs) }
