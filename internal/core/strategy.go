package core

import (
	"fmt"
	"math/rand"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/watchdog"
)

// The ConsensusStrategy axis: HOW the aggregated W = Σ(yᵢ + ρxᵢ) is formed
// and the thresholded z redistributed. Each strategy is one file
// implementing one round of its topology's protocol against the shared
// substrate — the virtual clock, the real collective implementations over
// the scratch fabric, the SyncModel barrier, and the ExchangeCodec wire
// format. The engine's Run loop is strategy-agnostic; adding a topology
// means adding one strategy file and a registry entry, not a seventh copy
// of the iteration loop.

// ConsensusKind names a consensus strategy in the algorithm registry.
type ConsensusKind string

// The implemented consensus strategies.
const (
	// ConsensusStar gathers every worker's contribution at a master
	// (rank 0) whose links serialize all traffic — GC-ADMM under BSP,
	// AD-ADMM under SSP.
	ConsensusStar ConsensusKind = "star"
	// ConsensusRing reduces within nodes, then runs a Ring-Allreduce among
	// all node Leaders — GR-ADMM (sparse, BSP) and ADMMLib (dense fp32,
	// SSP).
	ConsensusRing ConsensusKind = "ring"
	// ConsensusFlat runs one cluster-wide PSR-Allreduce with every worker
	// as a peer — PSRA-ADMM, the §4.2 algorithm before WLG grouping.
	ConsensusFlat ConsensusKind = "flat-psr"
	// ConsensusTree is PSRA-HGADMM's staged aggregation tree: arrival-
	// ordered Leader groups merge partials through the GG until W is exact
	// global consensus.
	ConsensusTree ConsensusKind = "tree"
	// ConsensusGroupLocal is the group-local reading of Algorithms 1–3:
	// one grouping round per iteration, each group computing z from its
	// own members only.
	ConsensusGroupLocal ConsensusKind = "group-local"
)

// ConsensusKinds lists every implemented consensus strategy.
func ConsensusKinds() []ConsensusKind {
	return []ConsensusKind{ConsensusStar, ConsensusRing, ConsensusFlat, ConsensusTree, ConsensusGroupLocal}
}

// ConsensusStrategy executes one aggregation round. Implementations keep
// their own cross-round state (clocks, cached contributions); cfg is
// passed per round because AdaptiveRho mutates it mid-run.
type ConsensusStrategy interface {
	Round(cfg Config, iter int) (iterTiming, error)
}

// iterTiming aggregates one iteration's virtual-time accounting.
type iterTiming struct {
	cal   float64 // mean per-worker compute time
	comm  float64 // mean per-worker wait+transfer time
	bytes int64
}

// strategyEnv bundles the per-run substrate every strategy round uses.
type strategyEnv struct {
	ws    []*worker
	fab   transport.Fabric
	codec exchange.Codec
	// states, non-nil only under the top-k codecs, holds each world rank's
	// error-feedback residual and adaptive selection budget. Encoding then
	// routes through encodeSparse so the residual is merged before
	// selection; every other codec takes the stateless path untouched
	// (bit-identical to the pre-topk engine).
	states []*exchange.State
	sync   SyncModel
	dim    int
	// members is the run's monotonic membership view. It is always
	// present; in a non-elastic run nothing is ever marked down, so every
	// live filter is an identity and the happy path is bit-identical to
	// the pre-elastic engine.
	members *membership.Tracker
	// elastic enables degraded-mode continuation: collectives run under
	// the abort latch instead of closing the fabric, and strategies prune
	// dead ranks instead of failing.
	elastic bool
	// corruptible marks a run whose fault plan can corrupt frames. Such
	// runs also latch their collectives (even fail-stop ones): a
	// checksum-dropped frame is retried over the SAME fabric, which must
	// therefore survive the failed attempt. Clean fail-stop runs keep the
	// raw endpoints — the latch's poll loop costs allocations the
	// steady-state budget does not pay for a fault-free run.
	corruptible bool
	// seq numbers collective invocations so every attempt — including
	// retries of a failed round — gets a fresh, globally unique tag
	// window. Stale messages from an aborted attempt can then never be
	// matched by a later one.
	seq int32
	// crew and pool are the run's persistent goroutine sets: collective
	// members and x-update executors. Both exist so the steady-state
	// round touches no heap — see DESIGN.md "Memory model & buffer
	// ownership".
	crew *crew
	pool *computePool
	// ts is the cost model's per-run scratch for trace timing.
	ts simnet.TimeScratch
	// store owns the consensus state's placement — replicated dense z or
	// block-sharded z. Everything placement-specific the strategies touch
	// (the W collective, the z-update's contributor scaling, delivery,
	// wire encoding) routes through it; see statestore.go.
	store stateStore
	// agg is the run's consensus reduce statistic. The zero value (mean)
	// stamps every collective job with the bit-identical sum kernels; the
	// robust kinds swap in the owner-side trimmed-mean/median combine.
	agg collective.AggSpec
	// screen, non-nil when Config.Screen is enabled, scores every encoded
	// contribution at the encodeSparse chokepoint. The engine reads the
	// strike counts at iteration boundaries and turns them into
	// membership quarantines.
	screen *watchdog.Screen
	// byz, non-nil when the fault plan schedules Byzantine ranks, holds
	// each world rank's poison state. The poison is applied AFTER codec
	// encoding — exactly where a compromised worker would inject it — and
	// BEFORE the screen observes, so the screen judges what the wire
	// carries.
	byz     []byzRank
	byzSeed int64
	// curIter is the iteration the current round belongs to, set by the
	// engine before each Round call. Poison schedules and the seeded
	// 'random' mode key on it, so corrupt-frame retries of the same round
	// replay identically.
	curIter int
}

// byzRank is one rank's scheduled Byzantine behavior (see
// transport.ByzantineFault). stale retains the last clean encoded
// contribution from before activation for the stale-replay mode.
type byzRank struct {
	mode  string
	from  int
	until int // 0 = forever
	stale *sparse.Vector
}

// active reports whether the poison applies at iteration iter.
func (b *byzRank) active(iter int) bool {
	return b.mode != "" && iter >= b.from && (b.until == 0 || iter < b.until)
}

// reconciles reports whether strategies must prune !Alive ranks from their
// pending state each round: elastic runs (deaths shrink the world) and
// screened runs (quarantines do the same, without a transport death).
func (env *strategyEnv) reconciles() bool {
	return env.elastic || env.screen != nil
}

// poisonSparse applies rank's scheduled Byzantine poison to its encoded
// contribution in place. Before activation it snapshots the clean vector
// for stale-replay; after (or outside a bounded window) it is a no-op.
func (env *strategyEnv) poisonSparse(rank int, v *sparse.Vector) {
	b := &env.byz[rank]
	if b.mode == "" {
		return
	}
	if !b.active(env.curIter) {
		if b.mode == transport.ByzantineStaleReplay && env.curIter < b.from {
			b.stale = v.Clone()
		}
		return
	}
	switch b.mode {
	case transport.ByzantineSignFlip:
		v.Scale(-1)
	case transport.ByzantineScale:
		v.Scale(10)
	case transport.ByzantineRandom:
		rng := rand.New(rand.NewSource(env.byzSeed ^
			(int64(rank)+1)*0x5851f42d4c957f2d ^
			(int64(env.curIter)+1)*0x2545f4914f6cdd1d))
		for k := range v.Value {
			v.Value[k] = 2*rng.Float64() - 1
		}
	case transport.ByzantineStaleReplay:
		if b.stale != nil {
			v.Reset(v.Dim)
			v.Index = append(v.Index, b.stale.Index...)
			v.Value = append(v.Value, b.stale.Value...)
		}
	}
}

func equalRanks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tagWindowBase starts the collective tag space well above the small
// hand-assigned tags, and every window is 8 tags wide (the widest any
// collective uses).
const tagWindowBase = int32(1) << 16

// nextTagBase allocates the next collective invocation's tag window.
// Called from the single strategy goroutine only.
func (env *strategyEnv) nextTagBase() int32 {
	b := tagWindowBase + env.seq*8
	env.seq++
	return b
}

// encodeSparse routes one rank's contribution through the codec: stateful
// top-k error feedback when the run carries per-rank exchange state, the
// store's stateless path otherwise. rank is a world rank. This is the
// single chokepoint every strategy's contributions pass through on their
// way into a reduce, so the Byzantine poison (after the codec — what a
// compromised worker ships) and the contribution screen (after the
// poison — the screen judges the wire bytes) both live here.
func (env *strategyEnv) encodeSparse(rank int, v *sparse.Vector) {
	if env.states != nil {
		env.states[rank].Encode(v)
	} else {
		env.store.encodeSparse(v)
	}
	if env.byz != nil {
		env.poisonSparse(rank, v)
	}
	env.screen.ObserveSparse(rank, v)
}

// newStrategy instantiates the consensus strategy for one run.
func newStrategy(kind ConsensusKind, env *strategyEnv, cfg Config) (ConsensusStrategy, error) {
	if env.store.Sharded() {
		switch kind {
		case ConsensusFlat, ConsensusStar, ConsensusTree:
		default:
			return nil, fmt.Errorf("core: sharded state supports flat-psr, star, and tree consensus, not %s", kind)
		}
	}
	switch kind {
	case ConsensusStar:
		return newStarStrategy(env), nil
	case ConsensusFlat:
		if env.codec.DenseExchange() {
			return nil, fmt.Errorf("core: %s consensus requires a sparse codec, got %s", kind, env.codec.Kind())
		}
		return newFlatStrategy(env), nil
	case ConsensusRing:
		return newRingStrategy(env, cfg), nil
	case ConsensusTree, ConsensusGroupLocal:
		if env.codec.DenseExchange() {
			return nil, fmt.Errorf("core: %s consensus requires a sparse codec, got %s", kind, env.codec.Kind())
		}
		if kind == ConsensusTree {
			return newTreeStrategy(env, cfg), nil
		}
		return newGroupStrategy(env, cfg), nil
	}
	return nil, fmt.Errorf("core: unknown consensus strategy %q", kind)
}

// nodeContribution is the result of launching one node's compute: the
// Leader-held partial sum plus the barrier bookkeeping.
type nodeContribution struct {
	sum     *sparse.Vector
	pending *pendingCompute
}

// launchNodeSparse runs the x-update on one idle node's workers, encodes
// each worker's w through the codec, reduces to the node Leader over the
// bus, and returns the partial sum with its availability time. Workers'
// clocks are NOT advanced here — they move to the round's end when the
// consensus is applied — so the launch is identical under BSP and SSP.
// The fan-in's wire bytes ride on the pending batch (see pendingCompute)
// and are charged by chargeLaunchBytes in the consuming round.
func launchNodeSparse(env *strategyEnv, cfg Config, n, iter int) nodeContribution {
	topo := cfg.Topo
	ranks := env.liveWorkersOf(topo, n)
	sub := make([]*worker, len(ranks))
	for i, r := range ranks {
		sub[i] = env.ws[r]
	}
	// The pool's times slice is per-round scratch; the pending batch
	// outlives the round, so it keeps its own copy.
	cals := append([]float64(nil), env.pool.run(cfg, sub, iter)...)
	starts := make([]float64, len(ranks))
	vs := make([]*sparse.Vector, len(ranks))
	nnzs := make([]int, len(ranks))
	ready := 0.0
	for i, w := range sub {
		starts[i] = w.clock
		vs[i] = w.wSparse(cfg.Rho)
		env.encodeSparse(ranks[i], vs[i])
		nnzs[i] = vs[i].NNZ()
		ready = maxf(ready, w.clock+cals[i])
	}
	tr := env.codec.WireTrace(intraReduceTrace(ranks, ranks[0], nnzs))
	return nodeContribution{
		sum: sumSparse(env.dim, vs),
		pending: &pendingCompute{
			finish:      ready + cfg.Cost.TraceTime(topo, tr),
			ranks:       ranks,
			starts:      starts,
			cals:        cals,
			vs:          vs,
			launchIter:  iter,
			launchBytes: traceBytes(tr),
		},
	}
}

// chargeLaunchBytes charges the launch fan-in of every batch launched
// this iteration into the attempt's timing. Keying on the launch
// iteration (rather than the launch call, which an elastic retry skips
// because the batch survives attempts) keeps Bytes identical whether or
// not the round needed retries, and leaves SSP attribution unchanged: a
// stale batch was charged in its own launch round.
func chargeLaunchBytes(clocks []sspClock, iter int, timing *iterTiming) {
	for i := range clocks {
		if p := clocks[i].pending; p != nil && p.launchIter == iter {
			timing.bytes += p.launchBytes
		}
	}
}

// applyNodeZ delivers the consensus iterate to a pending batch's members
// at virtual time end and folds their wait+transfer time into commSum.
// Compute time is summed separately by the caller: the strategies
// accumulate cal in rank order but comm in delivery order, and float
// summation order is part of the determinism contract. The batch's own
// rank list is authoritative — in a degraded run it holds only the
// members that were live at launch (minus any pruned since).
func applyNodeZ(env *strategyEnv, cfg Config, p *pendingCompute,
	zDense []float64, zSparse *sparse.Vector, end float64,
	commSum *float64, applied *int) {
	for i, r := range p.ranks {
		env.store.applyZ(cfg, env.ws[r], zDense, zSparse)
		*commSum += end - p.starts[i] - p.cals[i]
		env.ws[r].clock = end
		*applied++
	}
}
