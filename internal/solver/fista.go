package solver

import (
	"math"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

// FISTA solves the centralized L1-regularized problem
//
//	min_x  Σ_j log(1 + exp(−b_j·a_jᵀx)) + λ‖x‖₁
//
// with the accelerated proximal-gradient method (Beck & Teboulle) and
// backtracking line search. It is algorithmically independent of the ADMM
// machinery, which makes it the cross-check for the reference optimum f*
// used by the relative-error metric: two unrelated solvers agreeing on the
// minimum is far stronger evidence than one solver converging.

// FISTAOptions configures the solver.
type FISTAOptions struct {
	// MaxIter bounds outer iterations. Default 500.
	MaxIter int
	// Tol stops when the objective decrease over an iteration falls below
	// Tol·(1+|f|). Default 1e-9.
	Tol float64
	// L0 is the initial Lipschitz estimate for backtracking. Default 1.
	L0 float64
}

func (o *FISTAOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.L0 <= 0 {
		o.L0 = 1
	}
}

// FISTAResult reports the solve.
type FISTAResult struct {
	Iters     int
	F         float64
	Converged bool
}

// FISTA minimizes the L1-logistic objective over (data, labels) starting
// from x (updated in place).
func FISTA(data *sparse.CSR, labels []float64, lambda float64, x []float64, opts FISTAOptions) FISTAResult {
	opts.fill()
	n := data.NCols
	if len(x) != n {
		panic("solver: FISTA x length mismatch")
	}

	margins := make([]float64, data.NRows)
	grad := make([]float64, n)
	xPrev := vec.Clone(x)
	yk := vec.Clone(x)
	xNew := make([]float64, n)
	scratch := make([]float64, data.NRows)

	smooth := func(pt []float64, g []float64) float64 {
		data.MulVec(margins, pt)
		var loss float64
		for j := range margins {
			bm := labels[j] * margins[j]
			loss += LogLoss(bm)
			scratch[j] = -labels[j] * Sigmoid(-bm)
		}
		if g != nil {
			data.MulTransVec(g, scratch)
		}
		return loss
	}
	l1 := func(pt []float64) float64 { return lambda * vec.Nrm1(pt) }

	L := opts.L0
	tk := 1.0
	var res FISTAResult
	fPrev := smooth(x, nil) + l1(x)
	for res.Iters = 0; res.Iters < opts.MaxIter; res.Iters++ {
		fy := smooth(yk, grad)
		// Backtracking: find L with F(prox) ≤ Q_L(prox, y).
		for {
			for i := range xNew {
				xNew[i] = vec.SoftThreshold(yk[i]-grad[i]/L, lambda/L)
			}
			fNew := smooth(xNew, nil)
			var quad, dot float64
			for i := range xNew {
				d := xNew[i] - yk[i]
				quad += d * d
				dot += d * grad[i]
			}
			if fNew <= fy+dot+0.5*L*quad+1e-12 {
				break
			}
			L *= 2
			if L > 1e16 {
				break
			}
		}
		// Nesterov momentum.
		tNew := (1 + math.Sqrt(1+4*tk*tk)) / 2
		beta := (tk - 1) / tNew
		for i := range yk {
			yk[i] = xNew[i] + beta*(xNew[i]-xPrev[i])
		}
		copy(xPrev, x)
		copy(x, xNew)
		tk = tNew

		f := smooth(x, nil) + l1(x)
		if math.Abs(fPrev-f) <= opts.Tol*(1+math.Abs(f)) && res.Iters > 3 {
			res.F = f
			res.Converged = true
			res.Iters++
			return res
		}
		// Restart momentum if the objective went up (O'Donoghue-Candès).
		if f > fPrev {
			copy(yk, x)
			tk = 1
		}
		fPrev = f
	}
	res.F = fPrev
	return res
}
