package scratch

import "testing"

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloatsGetZeroed(t *testing.T) {
	var p Floats
	s := p.Get(100)
	if len(s) != 100 || cap(s) < 100 {
		t.Fatalf("Get(100): len=%d cap=%d", len(s), cap(s))
	}
	for i := range s {
		s[i] = float64(i + 1)
	}
	p.Put(s)
	s2 := p.Get(50)
	if len(s2) != 50 {
		t.Fatalf("Get(50): len=%d", len(s2))
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("Get returned dirty buffer at %d: %v", i, v)
		}
	}
}

func TestFloatsReuse(t *testing.T) {
	var p Floats
	s := p.Get(64)
	p.Put(s)
	avg := testing.AllocsPerRun(100, func() {
		b := p.Get(64)
		p.Put(b)
	})
	if avg > 0 {
		t.Errorf("Get/Put cycle allocates %.1f times, want 0", avg)
	}
}

func TestBytesReuse(t *testing.T) {
	var p Bytes
	s := p.Get(128)
	if len(s) != 0 || cap(s) < 128 {
		t.Fatalf("Get(128): len=%d cap=%d", len(s), cap(s))
	}
	p.Put(s)
	avg := testing.AllocsPerRun(100, func() {
		b := p.Get(128)
		p.Put(b)
	})
	if avg > 0 {
		t.Errorf("Get/Put cycle allocates %.1f times, want 0", avg)
	}
}

func TestPutForeignCapacity(t *testing.T) {
	var p Floats
	// A buffer whose capacity is not a power of two lands in the bucket
	// below, so a Get from that bucket still fits.
	p.Put(make([]float64, 0, 100)) // bucket 6 (64)
	s := p.Get(60)
	if len(s) != 60 {
		t.Fatalf("len=%d", len(s))
	}
	// Zero-capacity and nil are ignored.
	p.Put(nil)
	p.Put([]float64{})
	var b Bytes
	b.Put(nil)
}
