package collective

import (
	"psrahgadmm/internal/transport"
)

// RingAllreduceDense sums x elementwise across the group, in place. Every
// member must pass a slice of identical length. The algorithm is the
// standard two-phase ring: len(g)-1 Scatter-Reduce steps in which each
// member forwards one block to its successor while reducing the block
// arriving from its predecessor, then len(g)-1 Allgather steps circulating
// the finished blocks. tagBase reserves tags [tagBase, tagBase+2).
func RingAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	var ws Workspace
	return ws.RingAllreduceDense(ep, g, tagBase, x)
}

// PSRAllreduceDense sums x elementwise across the group in place using the
// paper's PSR-Allreduce schedule: member j owns block j. In the single
// Scatter-Reduce step every member sends each non-owned block straight to
// its owner; owners reduce. In the single Allgather step every owner sends
// its finished block to all other members. tagBase reserves tags
// [tagBase, tagBase+2).
func PSRAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	var ws Workspace
	return ws.PSRAllreduceDense(ep, g, tagBase, x)
}

// ReduceDense sums every member's x into the root member's slice (member
// index rootIdx). Non-root members' slices are left untouched; the root's
// slice is updated in place. Fan-in is flat: this primitive is used for the
// intra-node reduction to the Leader, where member counts are small and the
// "link" is the memory bus.
func ReduceDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	var ws Workspace
	return ws.ReduceDense(ep, g, tagBase, rootIdx, x)
}

// BroadcastDense copies the root member's x into every member's slice.
func BroadcastDense(ep transport.Endpoint, g Group, tagBase int32, rootIdx int, x []float64) (Trace, error) {
	var ws Workspace
	return ws.BroadcastDense(ep, g, tagBase, rootIdx, x)
}

// StarAllreduceDense is the master-worker allreduce of AD-ADMM: gather all
// contributions at the group's member 0 (the master), then broadcast the
// sum. It concentrates all traffic on the master's links, which is exactly
// the bottleneck the paper's decentralized schedules remove.
func StarAllreduceDense(ep transport.Endpoint, g Group, tagBase int32, x []float64) (Trace, error) {
	tr, err := ReduceDense(ep, g, tagBase, 0, x)
	if err != nil {
		return tr, err
	}
	tr2, err := BroadcastDense(ep, g, tagBase+1, 0, x)
	tr.Merge(tr2)
	return tr, err
}
