package core

import (
	"math"
	"slices"

	"psrahgadmm/internal/sparse"
)

// The SyncModel axis: WHEN a consensus round admits its participants.
// Every strategy runs the same per-round protocol — launch compute on idle
// participants, admit a quorum at a cutoff time, aggregate, apply — and
// the sync model only decides the quorum size and the staleness bound:
//
//   - BSP: the quorum is everyone. Every participant is fresh every round,
//     the cutoff is the slowest finish, and staleness never accrues — the
//     classic bulk-synchronous barrier all the paper's exact variants use.
//   - SSP (stale synchronous parallel): the quorum is Min_barrier workers
//     (scaled to the strategy's granularity); laggards' *previous*
//     contributions are reused, but nobody falls more than Max_delay
//     rounds behind — the ADMMLib / AD-ADMM partial barrier.
//   - Async (bounded-delay asynchronous): quorum of one — a round fires as
//     soon as the fastest participant finishes, with the same Max_delay
//     bound keeping the slowest from diverging (Zhang & Kwok's regime).
//
// Granularity belongs to the consensus strategy: star and flat synchronize
// individual workers, the hierarchical strategies synchronize nodes
// (workers within a node stay BSP over the bus).

// SyncKind names a synchronization model in the algorithm registry.
type SyncKind string

// The implemented synchronization models.
const (
	SyncBSP   SyncKind = "bsp"
	SyncSSP   SyncKind = "ssp"
	SyncAsync SyncKind = "async"
)

// SyncKinds lists every implemented synchronization model.
func SyncKinds() []SyncKind { return []SyncKind{SyncBSP, SyncSSP, SyncAsync} }

// SyncModel decides how many participants a round waits for and how stale
// a laggard may grow. Implementations are stateless; the per-participant
// bookkeeping ([]sspClock) lives in the strategy.
type SyncModel interface {
	Kind() SyncKind
	// Quorum returns the partial-barrier size in participants, given the
	// total participant count and how many workers each participant
	// represents (1 for worker granularity, WorkersPerNode for node
	// granularity).
	Quorum(participants, workersPer int) int
	// Delay is the staleness bound in rounds after which a pending
	// participant forces the barrier to wait for it.
	Delay() int
}

// newSyncModel binds a SyncKind to the run's barrier parameters.
func newSyncModel(kind SyncKind, cfg Config) SyncModel {
	switch kind {
	case SyncSSP:
		return sspSync{minBarrier: cfg.MinBarrier, maxDelay: cfg.MaxDelay}
	case SyncAsync:
		return asyncSync{maxDelay: cfg.MaxDelay}
	default:
		return bspSync{}
	}
}

// bspSync is the full barrier: quorum of everyone, staleness impossible.
type bspSync struct{}

func (bspSync) Kind() SyncKind                 { return SyncBSP }
func (bspSync) Quorum(participants, _ int) int { return participants }
func (bspSync) Delay() int                     { return math.MaxInt }

// sspSync is the Min_barrier/Max_delay partial barrier. MinBarrier is
// configured in workers; node-granular strategies round it up to whole
// nodes exactly as ADMMLib does.
type sspSync struct{ minBarrier, maxDelay int }

func (sspSync) Kind() SyncKind { return SyncSSP }
func (s sspSync) Quorum(participants, workersPer int) int {
	k := (s.minBarrier + workersPer - 1) / workersPer
	if k < 1 {
		k = 1
	}
	return k
}
func (s sspSync) Delay() int { return s.maxDelay }

// asyncSync fires on the fastest participant, bounded by Max_delay.
type asyncSync struct{ maxDelay int }

func (asyncSync) Kind() SyncKind      { return SyncAsync }
func (asyncSync) Quorum(_, _ int) int { return 1 }
func (s asyncSync) Delay() int        { return s.maxDelay }

// pendingCompute is an in-flight x-update batch (one node for the
// hierarchical strategies, one worker for star/flat) whose result becomes
// visible at finish. The per-member encoded contributions (vs) are
// retained so an elastic run can rebuild the batch's partial sum exactly
// when a member dies between launch and admission — recomputing w from
// worker state would be wrong once AdaptiveRho has moved ρ.
type pendingCompute struct {
	finish float64
	ranks  []int            // per-member world ranks (live at launch)
	starts []float64        // per-member clock at compute start
	cals   []float64        // per-member compute time
	vs     []*sparse.Vector // per-member encoded w contribution
	// launchIter/launchBytes record the launch fan-in so its bytes are
	// charged by the launch ITERATION, not the launch call: the batch
	// survives elastic round retries (compute runs once), so a retried
	// attempt must re-charge the same bytes its failed predecessor did
	// for Bytes accounting to stay retry-invariant.
	launchIter  int
	launchBytes int64
}

// sspClock tracks a participant's barrier bookkeeping.
type sspClock struct {
	pending   *pendingCompute
	staleness int
}

// sspCutoff returns the partial-barrier time over participants: the K-th
// smallest pending finish, extended to cover every participant that has
// exhausted maxDelay. scratch is the caller's finish-time buffer, grown on
// demand and handed back so the steady state sorts in place.
func sspCutoff(clocks []sspClock, k, maxDelay int, scratch *[]float64) float64 {
	finishes := (*scratch)[:0]
	for i := range clocks {
		if clocks[i].pending != nil {
			finishes = append(finishes, clocks[i].pending.finish)
		}
	}
	*scratch = finishes
	slices.Sort(finishes)
	if len(finishes) == 0 {
		return 0
	}
	if k > len(finishes) {
		k = len(finishes)
	}
	cutoff := finishes[k-1]
	for i := range clocks {
		if clocks[i].pending != nil && clocks[i].staleness >= maxDelay {
			cutoff = maxf(cutoff, clocks[i].pending.finish)
		}
	}
	return cutoff
}

// admitted lists the participants whose pending compute finished by the
// cutoff, in index order, appended into the caller's reusable dst.
func admitted(clocks []sspClock, cutoff float64, dst []int) []int {
	fresh := dst[:0]
	for i := range clocks {
		if p := clocks[i].pending; p != nil && p.finish <= cutoff {
			fresh = append(fresh, i)
		}
	}
	return fresh
}

// bumpStale advances the staleness counter of every still-pending
// participant; callers clear admitted participants' pending first.
func bumpStale(clocks []sspClock) {
	for i := range clocks {
		if clocks[i].pending != nil {
			clocks[i].staleness++
		}
	}
}
