// Quickstart: train L1-regularized logistic regression with PSRA-HGADMM on
// a synthetic news20-like dataset and print the convergence history.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	psra "psrahgadmm"
)

func main() {
	// A small news20-shaped dataset: ~680 features, 64 train / 16 test rows.
	train, test, err := psra.Generate(psra.News20Like(0.0005, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d samples × %d features (%d nonzeros)\n",
		train.Rows(), train.Dim(), train.NNZ())

	cfg := psra.Config{
		Algorithm: psra.PSRAHGADMM,
		Topo:      psra.Topology{Nodes: 4, WorkersPerNode: 2}, // 8 workers
		Rho:       1,
		Lambda:    1,
		MaxIter:   40,
	}
	res, err := psra.Train(cfg, train, psra.RunOptions{Test: test})
	if err != nil {
		log.Fatal(err)
	}

	for _, h := range res.History {
		if h.Iter%5 == 0 || h.Iter == cfg.MaxIter-1 {
			fmt.Printf("iter %2d  objective %8.4f  accuracy %.3f\n",
				h.Iter+1, h.Objective, h.Accuracy)
		}
	}
	fmt.Printf("\nvirtual system time %.3gs = compute %.3gs + communication %.3gs\n",
		res.SystemTime, res.TotalCalTime, res.TotalCommTime)
	fmt.Printf("%d bytes exchanged over %d iterations\n", res.TotalBytes, cfg.MaxIter)
}
