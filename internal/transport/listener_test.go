package transport

import "net"

// loopbackListener reserves an ephemeral port for tests that need to know a
// full mesh's addresses up front.
type loopbackListener struct {
	ln   net.Listener
	port int
}

func newLoopbackListener() (*loopbackListener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &loopbackListener{ln: ln, port: ln.Addr().(*net.TCPAddr).Port}, nil
}
