// Package solver provides the smooth-subproblem machinery of consensus
// ADMM: twice-differentiable objectives (L2-prox-regularized logistic loss
// and least squares), a trust-region Newton solver (TRON, the same
// algorithm LIBLINEAR uses and the paper's subproblem solver, ref. [14]),
// and the proximal operators used by the z-update.
package solver

import (
	"math"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

// Objective is a twice-differentiable function with Hessian-vector
// products, the contract TRON needs. Implementations cache curvature state
// from the most recent Eval; HessVec applies the Hessian at that point.
type Objective interface {
	// Dim returns the number of variables.
	Dim() int
	// Eval returns f(x) and writes the gradient into g (length Dim).
	Eval(x, g []float64) float64
	// HessVec writes H·v into hv, where H is the Hessian at the point of
	// the last Eval call.
	HessVec(v, hv []float64)
}

// LogLoss returns log(1 + e^{-m}) computed without overflow for any m.
func LogLoss(margin float64) float64 {
	if margin >= 0 {
		return math.Log1p(math.Exp(-margin))
	}
	return -margin + math.Log1p(math.Exp(margin))
}

// Sigmoid returns 1/(1+e^{-t}) without overflow.
func Sigmoid(t float64) float64 {
	if t >= 0 {
		return 1 / (1 + math.Exp(-t))
	}
	e := math.Exp(t)
	return e / (1 + e)
}

// LogisticProx is the ADMM x-subproblem objective of worker i for
// L1-regularized logistic regression (paper eq. 4):
//
//	f(x) = Σ_j log(1 + exp(-b_j·a_jᵀx)) + yᵀx + (ρ/2)·‖x − z‖²
//
// where (a_j, b_j) are the worker's data shard and (y, z) the current dual
// and consensus iterates. The loss term is the local f_i; the linear and
// quadratic terms come from the augmented Lagrangian.
type LogisticProx struct {
	Data   *sparse.CSR
	Labels []float64 // entries in {-1, +1}
	Rho    float64
	Y, Z   []float64

	margins []float64 // Ax cache from last Eval
	d       []float64 // σ(1−σ) curvature cache
	av      []float64 // scratch for HessVec
}

// NewLogisticProx constructs the subproblem objective. Labels must match
// Data.NRows; Y and Z must match Data.NCols and may be updated in place by
// the caller between TRON solves.
func NewLogisticProx(data *sparse.CSR, labels []float64, rho float64, y, z []float64) *LogisticProx {
	if len(labels) != data.NRows {
		panic("solver: labels length != rows")
	}
	if len(y) != data.NCols || len(z) != data.NCols {
		panic("solver: y/z length != cols")
	}
	return &LogisticProx{
		Data:    data,
		Labels:  labels,
		Rho:     rho,
		Y:       y,
		Z:       z,
		margins: make([]float64, data.NRows),
		d:       make([]float64, data.NRows),
		av:      make([]float64, data.NRows),
	}
}

// Dim implements Objective.
func (o *LogisticProx) Dim() int { return o.Data.NCols }

// Eval implements Objective.
func (o *LogisticProx) Eval(x, g []float64) float64 {
	m := o.Data
	m.MulVec(o.margins, x)
	var loss float64
	// grad = Aᵀc + y + ρ(x−z), with c_j = −b_j·σ(−b_j·m_j).
	for j := 0; j < m.NRows; j++ {
		bm := o.Labels[j] * o.margins[j]
		loss += LogLoss(bm)
		s := Sigmoid(-bm)
		o.d[j] = s * (1 - s)
		o.av[j] = -o.Labels[j] * s // reuse av as c scratch
	}
	m.MulTransVec(g, o.av)
	for i := range g {
		diff := x[i] - o.Z[i]
		g[i] += o.Y[i] + o.Rho*diff
		loss += o.Y[i]*x[i] + 0.5*o.Rho*diff*diff
	}
	return loss
}

// HessVec implements Objective: hv = Aᵀ·D·A·v + ρ·v with D from last Eval.
func (o *LogisticProx) HessVec(v, hv []float64) {
	m := o.Data
	m.MulVec(o.av, v)
	for j := range o.av {
		o.av[j] *= o.d[j]
	}
	m.MulTransVec(hv, o.av)
	vec.Axpy(o.Rho, v, hv)
}

// LocalLoss returns only the data-fit part Σ log(1+exp(−b·aᵀx)) at x,
// without the augmented-Lagrangian terms. The engine sums this across
// workers to report the paper's global objective (eq. 17).
func (o *LogisticProx) LocalLoss(x []float64) float64 {
	m := o.Data
	var loss float64
	for j := 0; j < m.NRows; j++ {
		loss += LogLoss(o.Labels[j] * m.RowDot(j, x))
	}
	return loss
}

// LeastSquaresProx is the ADMM x-subproblem for consensus lasso:
//
//	f(x) = ½‖Ax − b‖² + yᵀx + (ρ/2)‖x − z‖²
//
// Used by the lasso example to show the engine is objective-generic.
type LeastSquaresProx struct {
	Data *sparse.CSR
	B    []float64
	Rho  float64
	Y, Z []float64

	resid []float64
	av    []float64
}

// NewLeastSquaresProx constructs the lasso subproblem objective.
func NewLeastSquaresProx(data *sparse.CSR, b []float64, rho float64, y, z []float64) *LeastSquaresProx {
	if len(b) != data.NRows {
		panic("solver: b length != rows")
	}
	if len(y) != data.NCols || len(z) != data.NCols {
		panic("solver: y/z length != cols")
	}
	return &LeastSquaresProx{
		Data:  data,
		B:     b,
		Rho:   rho,
		Y:     y,
		Z:     z,
		resid: make([]float64, data.NRows),
		av:    make([]float64, data.NRows),
	}
}

// Dim implements Objective.
func (o *LeastSquaresProx) Dim() int { return o.Data.NCols }

// Eval implements Objective.
func (o *LeastSquaresProx) Eval(x, g []float64) float64 {
	m := o.Data
	m.MulVec(o.resid, x)
	var loss float64
	for j := range o.resid {
		o.resid[j] -= o.B[j]
		loss += 0.5 * o.resid[j] * o.resid[j]
	}
	m.MulTransVec(g, o.resid)
	for i := range g {
		diff := x[i] - o.Z[i]
		g[i] += o.Y[i] + o.Rho*diff
		loss += o.Y[i]*x[i] + 0.5*o.Rho*diff*diff
	}
	return loss
}

// HessVec implements Objective: hv = AᵀAv + ρv.
func (o *LeastSquaresProx) HessVec(v, hv []float64) {
	m := o.Data
	m.MulVec(o.av, v)
	m.MulTransVec(hv, o.av)
	vec.Axpy(o.Rho, v, hv)
}

// LocalLoss returns ½‖Ax−b‖² at x.
func (o *LeastSquaresProx) LocalLoss(x []float64) float64 {
	m := o.Data
	var loss float64
	for j := 0; j < m.NRows; j++ {
		r := m.RowDot(j, x) - o.B[j]
		loss += 0.5 * r * r
	}
	return loss
}
