package membership

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"psrahgadmm/internal/transport"
)

func TestMarkDownEpochAndFilters(t *testing.T) {
	tr := NewTracker(6)
	if tr.Epoch() != 0 || tr.LiveCount() != 6 {
		t.Fatalf("fresh tracker: epoch %d live %d", tr.Epoch(), tr.LiveCount())
	}
	if !tr.MarkDown(2, errors.New("boom")) {
		t.Fatal("first MarkDown should report a new death")
	}
	if tr.MarkDown(2, errors.New("again")) {
		t.Fatal("second MarkDown of the same rank must be idempotent")
	}
	tr.MarkDown(0, errors.New("boom"))
	if tr.Epoch() != 2 || tr.LiveCount() != 4 {
		t.Fatalf("after two deaths: epoch %d live %d", tr.Epoch(), tr.LiveCount())
	}
	if tr.Alive(2) || !tr.Alive(3) {
		t.Fatal("aliveness wrong")
	}
	if got := tr.Live([]int{0, 1, 2, 3}); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("Live filter: %v", got)
	}
	if l := tr.FirstLive([]int{0, 2, 4, 5}); l != 4 {
		t.Fatalf("leader election: got %d want 4", l)
	}
	if l := tr.FirstLive([]int{0, 2}); l != -1 {
		t.Fatalf("all-dead set must elect -1, got %d", l)
	}
	v := tr.View()
	if v.Epoch != 2 || !reflect.DeepEqual(v.Live, []int{1, 3, 4, 5}) {
		t.Fatalf("view: %+v", v)
	}
	if !reflect.DeepEqual(tr.Dead(), []int{0, 2}) {
		t.Fatalf("dead: %v", tr.Dead())
	}
}

func TestObserveExtractsPeerDown(t *testing.T) {
	tr := NewTracker(4)
	cause := &transport.PeerDownError{Peer: 3, Cause: errors.New("conn reset")}
	wrapped := fmt.Errorf("collective: scatter: %w", cause)
	rank, ok := tr.Observe(wrapped)
	if !ok || rank != 3 {
		t.Fatalf("Observe: rank %d ok %v", rank, ok)
	}
	if tr.Alive(3) {
		t.Fatal("peer 3 should be dead")
	}
	if _, ok := tr.Observe(errors.New("not a peer failure")); ok {
		t.Fatal("generic errors must not mark anyone down")
	}
	if tr.Epoch() != 1 {
		t.Fatalf("epoch %d", tr.Epoch())
	}
}

func TestOnDownHookAndRestore(t *testing.T) {
	tr := NewTracker(5)
	var mu sync.Mutex
	var downs []int
	tr.OnDown(func(rank int, cause error) {
		mu.Lock()
		downs = append(downs, rank)
		mu.Unlock()
	})
	tr.MarkDown(4, errors.New("x"))
	tr.MarkDown(4, errors.New("x")) // no second event
	tr.MarkDown(1, errors.New("y"))
	mu.Lock()
	got := append([]int(nil), downs...)
	mu.Unlock()
	if !reflect.DeepEqual(got, []int{4, 1}) {
		t.Fatalf("down events: %v", got)
	}

	if err := tr.Restore(7, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if tr.Epoch() != 7 || tr.LiveCount() != 3 {
		t.Fatalf("restored: epoch %d live %d", tr.Epoch(), tr.LiveCount())
	}
	if !tr.Alive(4) || tr.Alive(0) {
		t.Fatal("restore must replace, not merge, the dead set")
	}
	if err := tr.Restore(1, []int{9}); err == nil {
		t.Fatal("out-of-world restore must fail")
	}
}

func TestIncarnationRejoin(t *testing.T) {
	tr := NewTracker(4)
	if tr.Incarnation(2) != 0 {
		t.Fatalf("fresh incarnation: %d", tr.Incarnation(2))
	}
	if tr.MarkUp(2) {
		t.Fatal("MarkUp of a live rank must be a no-op")
	}
	tr.MarkDown(2, errors.New("boom"))
	if !tr.MarkUp(2) {
		t.Fatal("MarkUp of a dead rank must revive it")
	}
	if !tr.Alive(2) || tr.Incarnation(2) != 1 || tr.Cause(2) != nil {
		t.Fatalf("after rejoin: alive %v inc %d cause %v", tr.Alive(2), tr.Incarnation(2), tr.Cause(2))
	}
	if tr.Epoch() != 2 || tr.LiveCount() != 4 {
		t.Fatalf("after death+rejoin: epoch %d live %d", tr.Epoch(), tr.LiveCount())
	}
	// Incarnation 1 can die again — death stays monotone per incarnation.
	if !tr.MarkDown(2, errors.New("boom again")) {
		t.Fatal("new incarnation must be killable")
	}
	if tr.MarkDown(2, errors.New("dup")) {
		t.Fatal("second death of the same incarnation must be idempotent")
	}
	if !tr.MarkUp(2) || tr.Incarnation(2) != 2 {
		t.Fatalf("second rejoin: inc %d", tr.Incarnation(2))
	}
}

func TestMarkUpAtIdempotent(t *testing.T) {
	tr := NewTracker(4)
	tr.MarkDown(1, errors.New("boom"))
	var ups [][2]int
	tr.OnUp(func(rank, inc int) { ups = append(ups, [2]int{rank, inc}) })
	if !tr.MarkUpAt(1, 1) {
		t.Fatal("first MarkUpAt must apply")
	}
	if tr.MarkUpAt(1, 1) {
		t.Fatal("replayed MarkUpAt with the same incarnation must be a no-op")
	}
	if tr.MarkUpAt(1, 0) {
		t.Fatal("incarnation 0 is the original life, never a rejoin")
	}
	if !tr.Alive(1) || tr.Incarnation(1) != 1 || tr.Epoch() != 2 {
		t.Fatalf("after MarkUpAt: alive %v inc %d epoch %d", tr.Alive(1), tr.Incarnation(1), tr.Epoch())
	}
	// Unnoticed death + rejoin: the rank looks alive locally but the
	// authoritative observer reports a newer incarnation.
	if !tr.MarkUpAt(1, 3) || tr.Incarnation(1) != 3 {
		t.Fatalf("newer incarnation must be adopted: inc %d", tr.Incarnation(1))
	}
	if !reflect.DeepEqual(ups, [][2]int{{1, 1}, {1, 3}}) {
		t.Fatalf("OnUp events: %v", ups)
	}
	if err := tr.Restore(5, []int{0}); err != nil {
		t.Fatal(err)
	}
	if tr.Incarnation(1) != 0 {
		t.Fatalf("restore must reset incarnations, got %d", tr.Incarnation(1))
	}
}

func TestConcurrentMarkDown(t *testing.T) {
	tr := NewTracker(64)
	var wg sync.WaitGroup
	for r := 0; r < 32; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr.MarkDown(r, errors.New("race"))
			tr.MarkDown(r, errors.New("race"))
		}(r)
	}
	wg.Wait()
	if tr.Epoch() != 32 || tr.LiveCount() != 32 {
		t.Fatalf("epoch %d live %d", tr.Epoch(), tr.LiveCount())
	}
}
