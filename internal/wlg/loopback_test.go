package wlg

import (
	"fmt"
	"net"
)

// loopback reserves an ephemeral port so TCP mesh tests know all addresses
// before any endpoint starts.
type loopback struct {
	addr string
	ln   net.Listener
}

func newLoopback() (*loopback, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &loopback{
		addr: fmt.Sprintf("127.0.0.1:%d", ln.Addr().(*net.TCPAddr).Port),
		ln:   ln,
	}, nil
}

func (l *loopback) close() { l.ln.Close() }
