package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestDecodeArbitraryBytesNeverPanics feeds the decoder random garbage,
// truncations of valid frames, and bit-flipped valid frames: it must
// always return an error (or a valid message) and never panic or over-read
// — the robustness a network-facing codec needs.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(90))

	// Pure garbage.
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		r.Read(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on garbage input: %v", p)
				}
			}()
			_, _ = Decode(bytes.NewReader(buf))
		}()
	}

	// Truncations of a valid frame at every boundary.
	var valid bytes.Buffer
	if err := Encode(&valid, DenseMsg(3, []float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	full := valid.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		if cut == 0 && err != io.EOF {
			t.Fatalf("empty stream: %v, want io.EOF", err)
		}
	}

	// Single-bit flips of a valid frame: must decode to something valid
	// or error — never panic, never hang.
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), full...)
		mut[r.Intn(len(mut))] ^= 1 << uint(r.Intn(8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on bit-flipped frame: %v", p)
				}
			}()
			_, _ = Decode(bytes.NewReader(mut))
		}()
	}
}

// TestDecodeHugeLengthPrefix checks the 1 GiB payload cap fires instead of
// attempting a giant allocation.
func TestDecodeHugeLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the length field to ~4 GiB.
	b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("4 GiB length prefix accepted")
	}
}
