package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{1, 2, 3, 4})
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("length %d, want 4", utf8.RuneCountInString(s))
	}
	// Monotone input → monotone glyph heights.
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone sparkline %q", s)
		}
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("endpoints %q", s)
	}
}

func TestSparklineLogScale(t *testing.T) {
	// Convergence-style decay spanning 5 decades: the log scale must keep
	// the middle values distinguishable (not all collapsed to the floor).
	vals := []float64{1, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
	s := []rune(Sparkline(vals))
	if s[0] != '█' || s[len(s)-1] != '▁' {
		t.Fatalf("log endpoints %q", string(s))
	}
	distinct := map[rune]bool{}
	for _, r := range s {
		distinct[r] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("log scale collapsed: %q", string(s))
	}
}

func TestSparklineNaNsAndConstants(t *testing.T) {
	s := Sparkline([]float64{math.NaN(), 1, math.NaN()})
	if !strings.HasPrefix(s, " ") || !strings.HasSuffix(s, " ") {
		t.Fatalf("NaN rendering %q", s)
	}
	all := Sparkline([]float64{math.NaN(), math.NaN()})
	if all != "  " {
		t.Fatalf("all-NaN rendering %q", all)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(flat) != 3 {
		t.Fatalf("flat rendering %q", flat)
	}
}
