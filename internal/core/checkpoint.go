package core

import (
	"fmt"

	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/exchange"
)

// Checkpoint/resume for the in-process engine: the crash-recovery half of
// the failure model. Every k iterations the engine serializes the full
// resumable state — (iter, ρ, every worker's (x, y, z), z_prev, the
// membership view, the virtual-clock totals, and any strategy-private
// scalars — into one exchange.Snapshot blob and hands it to the store.
// A resumed run restores all of it before the loop and continues from the
// snapshot's iteration.
//
// Exactness contract: under BSP every collective completes inside its
// round, so a snapshot at an iteration boundary is the COMPLETE state and
// a resumed run's history is bit-identical to the uninterrupted run from
// that iteration on (resume_test.go asserts this). Under SSP/async the
// in-flight pending computations are deliberately not serialized: a
// resumed run restarts them from the snapshot's clocks, which perturbs
// admission order — resume is then a warm start, not a replay.

// CheckpointOptions configures periodic snapshots for Run.
type CheckpointOptions struct {
	// Store persists the snapshot blobs (checkpoint.NewDirStore for
	// crash-safe files, checkpoint.MemStore for tests).
	Store checkpoint.Store
	// Every saves a snapshot after each k-th iteration; 0 defaults to 10.
	Every int
	// Resume loads the store's latest snapshot before the first
	// iteration and continues from it. A missing snapshot is not an
	// error — the run simply starts fresh (so one flag serves both the
	// first launch and every restart).
	Resume bool
}

func (c *CheckpointOptions) interval() int {
	if c.Every > 0 {
		return c.Every
	}
	return 10
}

// resumableStrategy is implemented by consensus strategies carrying
// cross-round scalar state beyond the workers and clocks (the star
// master's next-free time, the ring/flat collective serialization times).
// Strategies without such state — tree and group rebuild everything from
// the workers each round — simply do not implement it.
type resumableStrategy interface {
	stateSnapshot() []float64
	stateRestore(vals []float64) error
}

func scalarRestore(what string, dst []*float64, vals []float64) error {
	if len(vals) != len(dst) {
		return fmt.Errorf("core: %s: want %d strategy scalars, snapshot has %d", what, len(dst), len(vals))
	}
	for i, p := range dst {
		*p = vals[i]
	}
	return nil
}

func (st *starStrategy) stateSnapshot() []float64 { return []float64{st.masterFreeAt} }
func (st *starStrategy) stateRestore(vals []float64) error {
	return scalarRestore("star", []*float64{&st.masterFreeAt}, vals)
}

func (st *flatStrategy) stateSnapshot() []float64 { return []float64{st.lastEnd} }
func (st *flatStrategy) stateRestore(vals []float64) error {
	return scalarRestore("flat", []*float64{&st.lastEnd}, vals)
}

func (st *ringStrategy) stateSnapshot() []float64 { return []float64{st.lastRingEnd} }
func (st *ringStrategy) stateRestore(vals []float64) error {
	return scalarRestore("ring", []*float64{&st.lastRingEnd}, vals)
}

// buildSnapshot captures the state a run must restore to continue from
// nextIter. Dead workers' state is captured too — it is frozen at their
// last applied update and harmless, and keeping every rank makes the
// format independent of who died when.
func buildSnapshot(cfg Config, env *strategyEnv, strat ConsensusStrategy, nextIter int, zPrev []float64, res *Result) *exchange.Snapshot {
	snap := &exchange.Snapshot{
		Algorithm:  string(cfg.Algorithm),
		Iter:       int32(nextIter),
		Rho:        cfg.Rho,
		Epoch:      int32(env.members.Epoch()),
		ZPrev:      append([]float64(nil), zPrev...),
		TotalCal:   res.TotalCalTime,
		TotalComm:  res.TotalCommTime,
		TotalBytes: res.TotalBytes,
	}
	for _, r := range env.members.Dead() {
		snap.Dead = append(snap.Dead, int32(r))
	}
	if rs, ok := strat.(resumableStrategy); ok {
		snap.Strategy = rs.stateSnapshot()
	}
	snap.Workers = make([]exchange.WorkerSnap, 0, len(env.ws))
	for _, w := range env.ws {
		wsnap := exchange.WorkerSnap{
			Rank:     int32(w.rank),
			Clock:    w.clock,
			CalTotal: w.calTotal,
			XA:       append([]float64(nil), w.xA...),
			YA:       append([]float64(nil), w.yA...),
		}
		// The store encodes the z state in the layout the rank actually
		// holds: the full dimension replicated, the compact subscribed-
		// block concatenation sharded. The PSCK format is unchanged between
		// placements — only the slice's length differs.
		env.store.snapshotZ(w, &wsnap)
		snap.Workers = append(snap.Workers, wsnap)
	}
	return snap
}

func saveCheckpoint(ck *CheckpointOptions, cfg Config, env *strategyEnv, strat ConsensusStrategy, nextIter int, zPrev []float64, res *Result) error {
	return ck.Store.Save(exchange.EncodeSnapshot(buildSnapshot(cfg, env, strat, nextIter, zPrev, res)))
}

// restoreCheckpoint loads the store's snapshot (if any) into the run's
// state and returns the iteration to continue from — 0 when the store is
// empty. It validates that the snapshot matches this run's algorithm,
// world size, and per-worker shapes: resuming onto a different config or
// dataset is an error, not silent corruption.
func restoreCheckpoint(ck *CheckpointOptions, cfg *Config, env *strategyEnv, strat ConsensusStrategy, zPrev []float64, res *Result) (int, error) {
	if ck.Store == nil {
		return 0, nil
	}
	blob, ok, err := ck.Store.Load()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	snap, err := exchange.DecodeSnapshot(blob)
	if err != nil {
		return 0, err
	}
	return applySnapshot(snap, cfg, env, strat, zPrev, res, true)
}

// rollbackToSnapshot is the mid-run variant of restoreCheckpoint, used when
// the watchdog trips: the last good snapshot's numeric state (iterates,
// z_prev, ρ, strategy scalars, virtual-clock totals) is restored, but the
// CURRENT membership view is kept — deaths observed since the snapshot are
// monotone facts (those endpoints are closed) and must not be resurrected
// by a numeric rollback. It returns the iteration to replay from and ok =
// false when the store holds no snapshot to roll back to.
func rollbackToSnapshot(ck *CheckpointOptions, cfg *Config, env *strategyEnv, strat ConsensusStrategy, zPrev []float64, res *Result) (int, bool, error) {
	if ck == nil || ck.Store == nil {
		return 0, false, nil
	}
	blob, ok, err := ck.Store.Load()
	if err != nil || !ok {
		return 0, false, err
	}
	snap, err := exchange.DecodeSnapshot(blob)
	if err != nil {
		return 0, false, err
	}
	iter, err := applySnapshot(snap, cfg, env, strat, zPrev, res, false)
	if err != nil {
		return 0, false, err
	}
	return iter, true, nil
}

// applySnapshot validates snap against the run and copies its state into
// the live workers, returning the snapshot's iteration. restoreMembers
// additionally restores the membership view (epoch + dead set) — wanted on
// startup resume, forbidden mid-run (see rollbackToSnapshot).
func applySnapshot(snap *exchange.Snapshot, cfg *Config, env *strategyEnv, strat ConsensusStrategy, zPrev []float64, res *Result, restoreMembers bool) (int, error) {
	if snap.Algorithm != string(cfg.Algorithm) {
		return 0, fmt.Errorf("core: snapshot is for algorithm %q, run uses %q", snap.Algorithm, cfg.Algorithm)
	}
	if len(snap.Workers) != len(env.ws) {
		return 0, fmt.Errorf("core: snapshot has %d workers, run has %d", len(snap.Workers), len(env.ws))
	}
	if len(snap.ZPrev) != env.dim {
		return 0, fmt.Errorf("core: snapshot dimension %d, run dimension %d", len(snap.ZPrev), env.dim)
	}
	seen := make([]bool, len(env.ws))
	for i := range snap.Workers {
		s := &snap.Workers[i]
		r := int(s.Rank)
		if r < 0 || r >= len(env.ws) || seen[r] {
			return 0, fmt.Errorf("core: snapshot worker %d has invalid rank %d", i, r)
		}
		seen[r] = true
		w := env.ws[r]
		if len(s.XA) != len(w.xA) || len(s.YA) != len(w.yA) {
			return 0, fmt.Errorf("core: snapshot rank %d state shape does not match this dataset (or its shard layout)", r)
		}
		// Copy INTO the existing slices: the worker's solver aliases yA
		// (and zA) — reassigning the slice headers would silently detach
		// the objective from the dual variable. The store validates and
		// restores the z state in the layout this placement gives the rank.
		copy(w.xA, s.XA)
		copy(w.yA, s.YA)
		if err := env.store.restoreZ(w, s); err != nil {
			return 0, err
		}
		w.clock = s.Clock
		w.calTotal = s.CalTotal
	}
	cfg.Rho = snap.Rho
	setRho(env.ws, snap.Rho)
	if restoreMembers {
		dead := make([]int, len(snap.Dead))
		for i, r := range snap.Dead {
			dead[i] = int(r)
		}
		if err := env.members.Restore(int(snap.Epoch), dead); err != nil {
			return 0, err
		}
	}
	if rs, ok := strat.(resumableStrategy); ok {
		if err := rs.stateRestore(snap.Strategy); err != nil {
			return 0, err
		}
	} else if len(snap.Strategy) > 0 {
		return 0, fmt.Errorf("core: snapshot carries %d strategy scalars but %s keeps none", len(snap.Strategy), cfg.Algorithm)
	}
	copy(zPrev, snap.ZPrev)
	res.TotalCalTime = snap.TotalCal
	res.TotalCommTime = snap.TotalComm
	res.TotalBytes = snap.TotalBytes
	return int(snap.Iter), nil
}
