package collective

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// collectTraces runs a sparse allreduce on n members and returns all local
// traces.
func collectTraces(t *testing.T, ring bool, inputs []*sparse.Vector) []Trace {
	t.Helper()
	n := len(inputs)
	f := transport.NewChanFabric(n)
	defer f.Close()
	g := WorldGroup(n)
	traces := make([]Trace, n)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if ring {
				_, traces[i], err = RingAllreduceSparse(f.Endpoint(i), g, 1, inputs[i])
			} else {
				_, traces[i], err = PSRAllreduceSparse(f.Endpoint(i), g, 1, inputs[i])
			}
			if err != nil {
				errCh <- fmt.Errorf("rank %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return traces
}

func sparseInputsFor(r *rand.Rand, n, dim int, density float64) []*sparse.Vector {
	out := make([]*sparse.Vector, n)
	for i := range out {
		v := sparse.NewVector(dim, 0)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				v.Append(int32(j), r.NormFloat64())
			}
		}
		out[i] = v
	}
	return out
}

func TestStepCounts(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	for _, n := range []int{2, 3, 5, 8} {
		inputs := sparseInputsFor(r, n, 200, 0.2)
		for _, tr := range collectTraces(t, true, inputs) {
			if tr.Steps != 2*(n-1) {
				t.Fatalf("ring steps = %d for n=%d, want %d", tr.Steps, n, 2*(n-1))
			}
		}
		for _, tr := range collectTraces(t, false, inputs) {
			if tr.Steps != 2 {
				t.Fatalf("psr steps = %d for n=%d, want 2", tr.Steps, n)
			}
		}
	}
}

func TestRingMessageCountPerMember(t *testing.T) {
	// Ring: every member sends exactly one message per step.
	r := rand.New(rand.NewSource(61))
	n := 6
	inputs := sparseInputsFor(r, n, 300, 0.2)
	for i, tr := range collectTraces(t, true, inputs) {
		if len(tr.Events) != 2*(n-1) {
			t.Fatalf("ring member %d sent %d messages, want %d", i, len(tr.Events), 2*(n-1))
		}
		// All messages go to the successor.
		for _, e := range tr.Events {
			if e.To != (i+1)%n {
				t.Fatalf("ring member %d sent to %d, want %d", i, e.To, (i+1)%n)
			}
		}
	}
}

func TestPSRMessageCountPerMember(t *testing.T) {
	// PSR: every member sends N−1 scatter messages (step 0) and N−1
	// gather messages (step 1).
	r := rand.New(rand.NewSource(62))
	n := 5
	inputs := sparseInputsFor(r, n, 300, 0.2)
	for i, tr := range collectTraces(t, false, inputs) {
		per := map[int]int{}
		for _, e := range tr.Events {
			per[e.Step]++
			if e.From != i {
				t.Fatalf("member %d logged someone else's send", i)
			}
		}
		if per[0] != n-1 || per[1] != n-1 {
			t.Fatalf("psr member %d step histogram %v", i, per)
		}
	}
}

func TestPSRScatterBytesBounded(t *testing.T) {
	// Paper eq. (14): in the Scatter-Reduce stage every member transmits
	// at most its own c nonzeros — regardless of placement.
	r := rand.New(rand.NewSource(63))
	n, dim := 6, 1200
	inputs := sparseInputsFor(r, n, dim, 0.3)
	traces := collectTraces(t, false, inputs)
	for i, tr := range traces {
		c := inputs[i].NNZ()
		scatterPayload := 0
		for _, e := range tr.Events {
			if e.Step == 0 {
				scatterPayload += e.Bytes
			}
		}
		// Allow per-message headers (8 bytes each, N−1 messages).
		maxBytes := c*wire.SparseEntryBytes + (n-1)*8
		if scatterPayload > maxBytes {
			t.Fatalf("member %d scatter bytes %d exceed eq.14 bound %d", i, scatterPayload, maxBytes)
		}
	}
}

func TestRingWorstCaseGrowsPSRBounded(t *testing.T) {
	// With every member's nonzeros concentrated in block 0 (ring's
	// pathological case, eq. 13), ring total bytes must exceed PSR total
	// bytes (eq. 16) by a growing factor as N grows.
	ratioAt := func(n int) float64 {
		r := rand.New(rand.NewSource(64))
		dim := 1 << 14
		c := 256
		chunks := vec.Split(dim, n)
		inputs := make([]*sparse.Vector, n)
		for m := range inputs {
			pos := map[int32]float64{}
			for len(pos) < c {
				pos[int32(chunks[0].Lo+r.Intn(chunks[0].Hi-chunks[0].Lo))] = r.NormFloat64()
			}
			inputs[m] = sparse.FromMap(dim, pos)
		}
		sum := func(traces []Trace) float64 {
			total := 0
			for _, tr := range traces {
				total += tr.TotalBytes()
			}
			return float64(total)
		}
		ring := sum(collectTraces(t, true, inputs))
		psr := sum(collectTraces(t, false, inputs))
		return ring / psr
	}
	r4 := ratioAt(4)
	r12 := ratioAt(12)
	if r4 <= 1 {
		t.Fatalf("ring/psr byte ratio at n=4 is %v, want > 1", r4)
	}
	if r12 <= r4 {
		t.Fatalf("ring/psr ratio should grow with n: %v (n=4) vs %v (n=12)", r4, r12)
	}
}

func TestDenseTraceBytesMatchPayloads(t *testing.T) {
	// Dense ring trace bytes must equal the actual chunk payload sizes.
	n, dim := 4, 100
	f := transport.NewChanFabric(n)
	defer f.Close()
	g := WorldGroup(n)
	traces := make([]Trace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := make([]float64, dim)
			for j := range x {
				x[j] = float64(i + j)
			}
			traces[i], _ = RingAllreduceDense(f.Endpoint(i), g, 1, x)
		}(i)
	}
	wg.Wait()
	chunks := vec.Split(dim, n)
	for i, tr := range traces {
		for _, e := range tr.Events {
			// Every dense ring message is one chunk: 4-byte length prefix
			// plus 8 bytes per element; chunk sizes are 25 here.
			want := 4 + 8*(chunks[0].Hi-chunks[0].Lo)
			if e.Bytes != want {
				t.Fatalf("member %d event bytes %d, want %d", i, e.Bytes, want)
			}
		}
	}
}
