package core

import (
	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/sparse"
)

// flatStrategy is the cluster-wide PSR-Allreduce (§4.2 without the WLG
// framework): every worker is a peer in a single sparse collective; the
// recursion is exact consensus every round. Under BSP the collective
// starts when the slowest worker is ready. Under SSP/async — compositions
// the monolithic variant could not express — the collective runs over
// every worker's cached contribution as soon as the quorum finishes, and
// only fresh workers receive (and pay for) the result.
//
// This strategy is the repo's steady-state allocation benchmark: every
// per-round buffer below is owned by the strategy and reused, so a warmed
// BSP round touches no heap (see DESIGN.md "Memory model & buffer
// ownership").
type flatStrategy struct {
	env      *strategyEnv
	clocks   []sspClock // per worker
	wCur     []*sparse.Vector
	pendingW []*sparse.Vector
	// lastEnd serializes consecutive collectives: a new round cannot start
	// before the previous one's result has been delivered.
	lastEnd float64

	// Per-worker persistent storage. slots[i] backs clocks[i].pending (the
	// single-member batch plus its one-element rank/start/cal arrays);
	// wBuf[i] double-buffers the worker's encoded contribution so a new w
	// is never assembled in the vector the collective may still serve as
	// the cached (stale) input.
	slots []flatPend
	wBuf  [][2]*sparse.Vector

	// Round scratch, reused across rounds. The densified aggregate lives
	// in the replicated store (which owns W's dense form).
	idle       []int
	sub        []*worker
	finishes   []float64
	fresh      []int
	ranks      []int
	inputs     []*sparse.Vector
	agg        *sparse.Vector
	wireEvents []collective.Event
}

// flatPend is one worker's pending-compute slot: the batch struct plus the
// one-element backing arrays its slices point into.
type flatPend struct {
	p     pendingCompute
	rank  [1]int
	start [1]float64
	cal   [1]float64
}

func newFlatStrategy(env *strategyEnv) *flatStrategy {
	n := len(env.ws)
	st := &flatStrategy{
		env:      env,
		clocks:   make([]sspClock, n),
		wCur:     make([]*sparse.Vector, n),
		pendingW: make([]*sparse.Vector, n),
		slots:    make([]flatPend, n),
		wBuf:     make([][2]*sparse.Vector, n),
		agg:      new(sparse.Vector),
	}
	for i := range st.wCur {
		st.wBuf[i][0] = sparse.NewVector(env.dim, 0)
		st.wBuf[i][1] = sparse.NewVector(env.dim, 0)
		st.wCur[i] = st.wBuf[i][0]
	}
	return st
}

func (st *flatStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	ws := env.ws
	var timing iterTiming

	// Reconcile: dead or quarantined workers leave the barrier, the
	// collective, and the z-update's averaging count.
	if env.reconciles() {
		for i := range st.clocks {
			if st.clocks[i].pending != nil && !env.members.Alive(ws[i].rank) {
				st.clocks[i] = sspClock{}
				st.pendingW[i] = nil
			}
		}
	}

	idle := st.idle[:0]
	for i := range st.clocks {
		if st.clocks[i].pending == nil && env.members.Alive(ws[i].rank) {
			idle = append(idle, i)
		}
	}
	st.idle = idle
	sub := st.sub[:0]
	for _, i := range idle {
		sub = append(sub, ws[i])
	}
	st.sub = sub
	cals := env.pool.run(cfg, sub, iter)
	for j, i := range idle {
		w := ws[i]
		// Assemble into whichever buffer the collective is NOT serving.
		nb := st.wBuf[i][0]
		if nb == st.wCur[i] {
			nb = st.wBuf[i][1]
		}
		st.pendingW[i] = w.wSparseInto(nb, cfg.Rho)
		env.encodeSparse(w.rank, st.pendingW[i])
		sl := &st.slots[i]
		sl.rank[0] = w.rank
		sl.start[0] = w.clock
		sl.cal[0] = cals[j]
		sl.p = pendingCompute{
			finish: w.clock + cals[j],
			ranks:  sl.rank[:],
			starts: sl.start[:],
			cals:   sl.cal[:],
		}
		st.clocks[i].pending = &sl.p
	}

	contributors := env.members.LiveCount()
	cutoff := sspCutoff(st.clocks, env.sync.Quorum(contributors, 1), env.sync.Delay(), &st.finishes)
	st.fresh = admitted(st.clocks, cutoff, st.fresh)
	fresh := st.fresh
	for _, i := range fresh {
		st.wCur[i] = st.pendingW[i]
	}

	// Every LIVE worker is a peer in the collective, serving its cached
	// contribution when stale.
	ranks := st.ranks[:0]
	inputs := st.inputs[:0]
	for i, w := range ws {
		if !env.members.Alive(w.rank) {
			continue
		}
		ranks = append(ranks, w.rank)
		inputs = append(inputs, st.wCur[i])
	}
	st.ranks, st.inputs = ranks, inputs
	start := maxf(cutoff, st.lastEnd)
	// The store picks the collective: full-width PSR-Allreduce into st.agg
	// replicated, the shard-aware restricted reduction sharded.
	tr, err := env.store.allreduceW(ranks, inputs, st.agg)
	if err != nil {
		return timing, err
	}
	tr = env.codec.WireTraceInto(st.wireEvents[:0], tr)
	st.wireEvents = tr.Events
	commT := cfg.Cost.TraceTimeScratch(&env.ts, cfg.Topo, tr)
	timing.bytes += traceBytes(tr)
	end := start + commT
	st.lastEnd = end

	env.store.beginApply(cfg, st.agg)
	calSum, commSum := 0.0, 0.0
	for _, i := range fresh {
		p := st.clocks[i].pending
		env.store.applyReduced(cfg, ws[i], contributors)
		calSum += p.cals[0]
		commSum += end - p.starts[0] - p.cals[0]
		ws[i].clock = end
		st.clocks[i].pending = nil
		st.clocks[i].staleness = 0
		st.pendingW[i] = nil
	}
	bumpStale(st.clocks)
	if len(fresh) > 0 {
		timing.cal = calSum / float64(len(fresh))
		timing.comm = commSum / float64(len(fresh))
	}
	return timing, nil
}
