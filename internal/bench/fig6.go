package bench

import (
	"fmt"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
)

// fig6Sizes returns the Figure 6/7 cluster sweep: 4–32 nodes at 4 workers
// per node (16–128 workers), the paper's §5.4 settings.
func fig6Sizes(quick bool) (nodesList []int, wpn int) {
	if quick {
		return []int{2, 4}, 2
	}
	return []int{4, 8, 16, 32}, 4
}

// Fig6 reproduces Figure 6: per-algorithm system time split into
// calculation and communication time, plus final test accuracy, as the
// cluster grows. It also prints the §5.4 headline ratios: the system-time
// reduction of PSRA-HGADMM vs ADMMLib at the largest cluster and the
// overall communication-volume reduction (the paper's "32% less
// communication" claim).
func Fig6(opts Options) error {
	opts.fill()
	nodesList, wpn := fig6Sizes(opts.Quick)
	// The paper's three lines, plus the top-k error-feedback variant so the
	// cost model prices its wire savings against the stock sparse codec.
	algs := append(fig5Algorithms(), core.PSRAHGADMMTopK)

	type cell struct {
		cal, comm, sys float64
		acc            float64
		bytes          int64
	}
	for _, dcfg := range BenchDatasets(opts.Seed, opts.Quick) {
		l, err := load(dcfg)
		if err != nil {
			return err
		}
		results := map[core.Algorithm]map[int]cell{}
		for _, alg := range algs {
			results[alg] = map[int]cell{}
			for _, nodes := range nodesList {
				cfg := runCfg(alg, nodes, wpn, opts)
				cfg.EvalEvery = cfg.MaxIter // accuracy only needed at the end
				if alg == core.PSRAHGADMMTopK {
					// Budget the top-k row at half the sparse codec's
					// observed per-round bytes so k adapts into real
					// truncation at any dataset scale (the conservative
					// dim/2 default never truncates here). Relies on
					// PSRAHGADMM preceding PSRAHGADMMTopK in algs.
					cfg.CodecBudgetBytes = results[core.PSRAHGADMM][nodes].bytes / int64(2*cfg.MaxIter)
				}
				res, err := core.Run(cfg, l.train, core.RunOptions{Test: l.test})
				if err != nil {
					return fmt.Errorf("fig6 %s/%s/%d: %w", dcfg.Name, alg, nodes, err)
				}
				results[alg][nodes] = cell{
					cal:   res.TotalCalTime,
					comm:  res.TotalCommTime,
					sys:   res.SystemTime,
					acc:   res.FinalAccuracy(),
					bytes: res.TotalBytes,
				}
			}
		}

		tbl := metrics.NewTable(
			fmt.Sprintf("Figure 6 — %s: system time (virtual) and accuracy vs cluster size (%d workers/node, %d iters)",
				dcfg.Name, wpn, opts.MaxIter),
			"nodes", "workers", "algorithm", "cal_time", "comm_time", "system_time", "accuracy", "comm_bytes")
		for _, nodes := range nodesList {
			for _, alg := range algs {
				c := results[alg][nodes]
				tbl.AddRow(nodes, nodes*wpn, string(alg),
					metrics.Seconds(c.cal), metrics.Seconds(c.comm), metrics.Seconds(c.sys),
					c.acc, metrics.Bytes(c.bytes))
			}
		}
		if err := emit(opts, tbl); err != nil {
			return err
		}

		// §5.4 headlines.
		maxNodes := nodesList[len(nodesList)-1]
		minNodes := nodesList[0]
		p := results[core.PSRAHGADMM]
		a := results[core.ADMMLib]
		fmt.Fprintf(opts.Out,
			"headline[%s]: system time PSRA-HGADMM vs ADMMLib at %d nodes: %.1f%% lower (%s vs %s)\n",
			dcfg.Name, maxNodes,
			metrics.Reduction(a[maxNodes].sys, p[maxNodes].sys),
			metrics.Seconds(p[maxNodes].sys), metrics.Seconds(a[maxNodes].sys))
		var pBytes, aBytes int64
		for _, nodes := range nodesList {
			pBytes += p[nodes].bytes
			aBytes += a[nodes].bytes
		}
		fmt.Fprintf(opts.Out,
			"headline[%s]: communication volume PSRA-HGADMM vs ADMMLib across the sweep: %.1f%% lower (%s vs %s)\n",
			dcfg.Name,
			metrics.Reduction(float64(aBytes), float64(pBytes)),
			metrics.Bytes(pBytes), metrics.Bytes(aBytes))
		var tkBytes int64
		for _, nodes := range nodesList {
			tkBytes += results[core.PSRAHGADMMTopK][nodes].bytes
		}
		fmt.Fprintf(opts.Out,
			"headline[%s]: communication volume psra-hgadmm-topk vs psra-hgadmm: %.1f%% lower (%s vs %s)\n",
			dcfg.Name,
			metrics.Reduction(float64(pBytes), float64(tkBytes)),
			metrics.Bytes(tkBytes), metrics.Bytes(pBytes))
		fmt.Fprintf(opts.Out,
			"headline[%s]: accuracy change %d→%d nodes: psra-hgadmm %+.2f%%, admmlib %+.2f%%, ad-admm %+.2f%%\n\n",
			dcfg.Name, minNodes, maxNodes,
			100*(p[maxNodes].acc-p[minNodes].acc),
			100*(a[maxNodes].acc-a[minNodes].acc),
			100*(results[core.ADADMM][maxNodes].acc-results[core.ADADMM][minNodes].acc))
	}
	return nil
}
