// Command psra-bench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index):
//
//	psra-bench -experiment all            # full suite (several minutes)
//	psra-bench -experiment fig5           # convergence curves
//	psra-bench -experiment fig6 -csv      # system-time sweep as CSV
//	psra-bench -experiment fig7 -iters 40 # straggler study, shorter runs
//	psra-bench -list                      # enumerate experiments
//	psra-bench -perf BENCH_psra.json      # per-layer perf suite → JSON
//	psra-bench -check BENCH_psra.json     # rerun and fail on regressions
package main

import (
	"flag"
	"fmt"
	"os"

	"psrahgadmm/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		iters      = flag.Int("iters", 0, "outer iterations per run (default 100, 12 with -quick)")
		seed       = flag.Int64("seed", 1, "dataset and injection seed")
		quick      = flag.Bool("quick", false, "shrunken sweeps for a fast smoke run")
		csv        = flag.Bool("csv", false, "emit tables as CSV")
		rho        = flag.Float64("rho", 1, "ADMM penalty parameter ρ")
		lambda     = flag.Float64("lambda", 1, "L1 regularization weight λ (paper: 1)")
		list       = flag.Bool("list", false, "list experiments and exit")
		perf       = flag.String("perf", "", "run the per-layer steady-state perf suite and write a JSON report to this path (the committed BENCH_psra.json)")
		check      = flag.String("check", "", "rerun the perf suite and fail if allocs/op grew — or ns/op drifted past -ns-tolerance — versus the committed report at this path")
		nsTol      = flag.Float64("ns-tolerance", 0, "fractional ns/op drift allowed by -check, e.g. 0.15 (0 = allocs-only, for noisy shared runners)")
	)
	flag.Parse()

	if *check != "" {
		if err := bench.CheckPerfReport(*check, os.Stdout, *seed, *nsTol); err != nil {
			fmt.Fprintln(os.Stderr, "psra-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *perf != "" {
		if err := bench.WritePerfReport(*perf, os.Stdout, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "psra-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}
	opts := bench.Options{
		Out:     os.Stdout,
		Seed:    *seed,
		MaxIter: *iters,
		Quick:   *quick,
		CSV:     *csv,
		Rho:     *rho,
		Lambda:  *lambda,
	}
	if err := bench.RunExperiment(*experiment, opts); err != nil {
		fmt.Fprintln(os.Stderr, "psra-bench:", err)
		os.Exit(1)
	}
}
