package wlg

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/watchdog"
)

// TestWLGWatchdogTripsTyped: a NaN contribution trips the guilty rank's
// watchdog at that exact iteration, and the whole world comes down with a
// typed *DivergedError — not an untyped transport failure.
func TestWLGWatchdogTripsTyped(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 6, Watchdog: watchdog.Config{Enabled: true}}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	dim := 4
	err := Run(fab, cfg, func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				v := rankVec(dim, rank)
				if rank == 1 && iter == 3 {
					v[2] = math.NaN()
				}
				return v
			},
			ApplyW: func(int, []float64, int) {},
		}
	})
	if err == nil {
		t.Fatal("NaN contribution completed the run")
	}
	if !errors.Is(err, watchdog.ErrDiverged) {
		t.Fatalf("not typed as divergence: %v", err)
	}
	var div *DivergedError
	if !errors.As(err, &div) {
		t.Fatalf("no *DivergedError in chain: %v", err)
	}
	if div.Rank != 1 || div.Iter != 3 {
		t.Fatalf("trip attributed to rank %d iter %d, want rank 1 iter 3", div.Rank, div.Iter)
	}
}

// TestWLGWatchdogMagnitudeExplosion: no value ever goes non-finite, but the
// contribution magnitude jumps six orders past the sliding-window floor —
// the aggregate every rank shares carries the explosion, so the whole
// group trips at the same iteration.
func TestWLGWatchdogMagnitudeExplosion(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 20, Watchdog: watchdog.Config{Enabled: true}}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	dim := 4
	err := Run(fab, cfg, func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				v := make([]float64, dim)
				for j := range v {
					v[j] = 1
				}
				if rank == 2 && iter >= 12 {
					v[0] = 1e9
				}
				return v
			},
			ApplyW: func(int, []float64, int) {},
		}
	})
	var div *DivergedError
	if !errors.As(err, &div) {
		t.Fatalf("magnitude explosion not detected: %v", err)
	}
	if div.Iter != 12 {
		t.Fatalf("tripped at iteration %d, want 12", div.Iter)
	}
}

// TestWLGElasticWatchdogTrips: divergence is NOT a membership fact — the
// elastic runtime absorbs deaths, but a poisoned contribution still tears
// the run down with the typed error instead of being "survived".
func TestWLGElasticWatchdogTrips(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 8, Elastic: true, Watchdog: watchdog.Config{Enabled: true}}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	dim := 3
	_, err := RunWithInfo(fab, cfg, func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				v := rankVec(dim, rank)
				if rank == 3 && iter == 2 {
					v[0] = math.Inf(1)
				}
				return v
			},
			ApplyW: func(int, []float64, int) {},
		}
	})
	var div *DivergedError
	if !errors.As(err, &div) {
		t.Fatalf("elastic run absorbed a divergence: %v", err)
	}
	if div.Rank != 3 || div.Iter != 2 {
		t.Fatalf("trip attributed to rank %d iter %d, want rank 3 iter 2", div.Rank, div.Iter)
	}
}

// TestWLGRecoveryRollsBackAndConverges is the runtime half of the
// tentpole's acceptance: a NaN poisoned into one rank's contribution
// mid-run trips every rank's watchdog, RunWithRecovery restores the last
// checkpoint every rank holds and relaunches the world with StartIter at
// that boundary (the resume path), and — the injection firing once — the
// replayed run converges to the fixpoint within 1e-3.
//
// The algorithm is consensus averaging with per-rank pull targets:
// x_r ← (Σx/n + t_r)/2, whose fixpoint is x_r* = (mean(t) + t_r)/2.
func TestWLGRecoveryRollsBackAndConverges(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	world := topo.Size()
	cfg := Config{Topo: topo, MaxIter: 30, Watchdog: watchdog.Config{Enabled: true}}
	dim := 4
	const every = 5 // checkpoint boundary spacing, in iterations

	xs := make([][]float64, world)          // rank-owned state
	cks := make([]map[int][]float64, world) // per-rank boundary → snapshot
	targets := make([]float64, world)
	for r := range xs {
		xs[r] = make([]float64, dim)
		cks[r] = make(map[int][]float64)
		targets[r] = float64(r + 1)
	}
	var poisoned atomic.Bool
	var mu sync.Mutex // guards cks: saves race with nothing but be explicit

	funcs := func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				out := append([]float64(nil), xs[rank]...)
				if rank == 2 && iter == 12 && poisoned.CompareAndSwap(false, true) {
					out[1] = math.NaN()
				}
				return out
			},
			ApplyW: func(iter int, agg []float64, n int) {
				for j := range xs[rank] {
					xs[rank][j] = (agg[j]/float64(n) + targets[rank]) / 2
				}
				if (iter+1)%every == 0 {
					mu.Lock()
					cks[rank][iter+1] = append([]float64(nil), xs[rank]...)
					mu.Unlock()
				}
			},
		}
	}
	rollback := func(trip *DivergedError) (int, bool, error) {
		// Restore the newest boundary EVERY rank checkpointed at or before
		// the trip: ranks run slightly out of lockstep, so the common
		// boundary is the consistent cut.
		mu.Lock()
		defer mu.Unlock()
		for b := trip.Iter - trip.Iter%every; b > 0; b -= every {
			all := true
			for r := range cks {
				if _, ok := cks[r][b]; !ok {
					all = false
					break
				}
			}
			if all {
				for r := range cks {
					copy(xs[r], cks[r][b])
				}
				return b, true, nil
			}
		}
		return 0, false, nil
	}
	mkFab := func() (transport.Fabric, error) {
		return transport.NewChanFabric(WorldSize(topo)), nil
	}

	info, err := RunWithRecovery(mkFab, cfg, funcs, RecoveryOptions{Rollback: rollback})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if info.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want exactly 1", info.Rollbacks)
	}
	if !poisoned.Load() {
		t.Fatal("the injection never fired")
	}
	mean := 0.0
	for _, tv := range targets {
		mean += tv
	}
	mean /= float64(world)
	for r := range xs {
		want := (mean + targets[r]) / 2
		for j, got := range xs[r] {
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("rank %d slot %d = %v after recovery, want %v ± 1e-3", r, j, got, want)
			}
		}
	}
}

// TestWLGRecoveryCleanRun: the recovery wrapper on a healthy run is a
// plain run — zero rollbacks, no fabric churn beyond the one launch.
func TestWLGRecoveryCleanRun(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 1}
	cfg := Config{Topo: topo, MaxIter: 5, Watchdog: watchdog.Config{Enabled: true}}
	launches := 0
	info, err := RunWithRecovery(func() (transport.Fabric, error) {
		launches++
		return transport.NewChanFabric(WorldSize(topo)), nil
	}, cfg, func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(int) []float64 { return rankVec(2, rank) },
			ApplyW:   func(int, []float64, int) {},
		}
	}, RecoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rollbacks != 0 || launches != 1 {
		t.Fatalf("clean run: rollbacks=%d launches=%d, want 0/1", info.Rollbacks, launches)
	}
}

// TestWLGRecoveryBudgetExhausted: a persistent poison (re-fires on every
// replay) burns the rollback budget and then surfaces as the typed error.
func TestWLGRecoveryBudgetExhausted(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 1}
	cfg := Config{Topo: topo, MaxIter: 10, Watchdog: watchdog.Config{Enabled: true, MaxRollbacks: 2}}
	rolls := 0
	_, err := RunWithRecovery(func() (transport.Fabric, error) {
		return transport.NewChanFabric(WorldSize(topo)), nil
	}, cfg, func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				v := rankVec(2, rank)
				if rank == 0 && iter == 4 {
					v[0] = math.NaN() // deterministic fault: replay re-trips
				}
				return v
			},
			ApplyW: func(int, []float64, int) {},
		}
	}, RecoveryOptions{Rollback: func(trip *DivergedError) (int, bool, error) {
		rolls++
		return 0, true, nil // "restore" to iteration 0 — state is stateless here
	}})
	if !errors.Is(err, watchdog.ErrDiverged) {
		t.Fatalf("exhausted budget not typed as divergence: %v", err)
	}
	if rolls != 2 {
		t.Fatalf("rollback handler ran %d times, want MaxRollbacks=2", rolls)
	}
}
