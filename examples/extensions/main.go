// Extensions: the classic ADMM add-ons this library layers on the paper's
// algorithm — residual-based early stopping, residual-balancing adaptive ρ
// (the AADMM idea), and Q-GADMM-style quantized communication — plus the
// algorithm registry: every variant is a named (consensus, sync, codec)
// triple, enumerable and runnable through the public API.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	psra "psrahgadmm"
)

func main() {
	train, _, err := psra.Generate(psra.News20Like(0.001, 13))
	if err != nil {
		log.Fatal(err)
	}
	base := psra.Config{
		Algorithm: psra.PSRAHGADMM,
		Topo:      psra.Topology{Nodes: 4, WorkersPerNode: 2},
		Rho:       1, Lambda: 1, MaxIter: 120,
	}

	// 1. Early stopping: residual tolerance ends the run when consensus
	// has effectively converged, instead of burning the full budget.
	cfg := base
	cfg.Tol = 5e-3
	res, err := psra.Train(cfg, train, psra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early stopping at Tol=%.0e: %d of %d iterations (primal %.2e, dual %.2e)\n",
		cfg.Tol, len(res.History), cfg.MaxIter,
		res.History[len(res.History)-1].PrimalRes,
		res.History[len(res.History)-1].DualRes)

	// 2. Adaptive ρ: start from a deliberately terrible penalty and let
	// residual balancing fix it.
	for _, adaptive := range []bool{false, true} {
		cfg := base
		cfg.MaxIter = 40
		cfg.Rho = 0.005
		cfg.AdaptiveRho = adaptive
		res, err := psra.Train(cfg, train, psra.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mode := "fixed   "
		if adaptive {
			mode = "adaptive"
		}
		last := res.History[len(res.History)-1]
		fmt.Printf("ρ₀=0.005 %s: objective %9.4f, final ρ %.3f\n",
			mode, res.FinalObjective(), last.Rho)
	}

	// 3. Quantized exchange: value bits vs bytes moved.
	for _, bits := range []int{0, 16, 8} {
		cfg := base
		cfg.MaxIter = 40
		cfg.QuantBits = bits
		res, err := psra.Train(cfg, train, psra.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%2d-bit", bits)
		if bits == 0 {
			label = "64-bit"
		}
		fmt.Printf("%s values: objective %9.4f, %8d bytes communicated\n",
			label, res.FinalObjective(), res.TotalBytes)
	}

	// 4. The registry: every runnable variant is a (consensus, sync, codec)
	// binding — including compositions the paper's monoliths could not
	// express, like the quantized staged tree under SSP. Each runs through
	// the same Train call by name.
	fmt.Println("\nregistered algorithm variants:")
	for _, v := range psra.Variants() {
		cfg := base
		cfg.Algorithm = v.Name
		cfg.MaxIter = 15
		res, err := psra.Train(cfg, train, psra.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s (%s × %s × %s): objective %9.4f\n",
			v.Name, v.Consensus, v.Sync, v.Codec, res.FinalObjective())
	}
}
