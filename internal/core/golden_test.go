package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"psrahgadmm/internal/simnet"
)

// The golden-history regression suite pins the exact per-iteration output
// of every paper variant (plus the consensus-mode and quantized readings)
// to files under testdata/golden. Histories are serialized with float64
// bit patterns, so ANY change to the arithmetic, its association order, or
// the virtual-clock bookkeeping fails the test — this is what licenses
// refactoring the variant zoo into strategies: the strategies must
// reproduce the monolithic implementations bit for bit.
//
// Regenerate (only when an intentional numerical change lands) with:
//
//	go test ./internal/core -run TestGoldenHistories -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current implementation")

// goldenCase names one pinned configuration. The configs deliberately
// exercise the interesting machinery: stragglers and jitter make the SSP
// partial barrier real, GroupThreshold 2 forces a multi-level aggregation
// tree, and the quantized case covers the lossy sparse exchange.
type goldenCase struct {
	name string
	cfg  func() Config
}

func goldenCases() []goldenCase {
	base := func(alg Algorithm) Config {
		cfg := Config{
			Algorithm:      alg,
			Topo:           simnet.Topology{Nodes: 3, WorkersPerNode: 2},
			Rho:            1.0,
			Lambda:         0.5,
			MaxIter:        6,
			GroupThreshold: 2,
			EvalEvery:      2,
			Stragglers:     simnet.Default(5),
			Jitter:         simnet.Jitter{Seed: 7, Amp: 0.6},
		}
		return cfg
	}
	return []goldenCase{
		{"psra-hgadmm", func() Config { return base(PSRAHGADMM) }},
		{"psra-hgadmm-group", func() Config {
			cfg := base(PSRAHGADMM)
			cfg.Consensus = ConsensusGroup
			return cfg
		}},
		{"psra-admm", func() Config { return base(PSRAADMM) }},
		{"psra-admm-q8", func() Config {
			cfg := base(PSRAADMM)
			cfg.QuantBits = 8
			return cfg
		}},
		{"gr-admm", func() Config { return base(GRADMM) }},
		{"gr-admm-q16", func() Config {
			cfg := base(GRADMM)
			cfg.QuantBits = 16
			return cfg
		}},
		{"admmlib", func() Config { return base(ADMMLib) }},
		{"ad-admm", func() Config { return base(ADADMM) }},
		{"gc-admm", func() Config { return base(GCADMM) }},
		// The sharded equivalence golden: same staged tree as psra-hgadmm
		// but with block-sharded consensus state (4 blocks over the test
		// data's dimension). Pins the sharded engine's trajectory — the
		// per-block z-averaging, the restricted subscriptions, the
		// shard-aware collective's accounting — bit for bit.
		{"psra-hgadmm-sharded", func() Config {
			cfg := base(PSRAHGADMMSharded)
			cfg.ShardBlocks = 4
			return cfg
		}},
	}
}

// goldenStat is one IterStat with float64 fields rendered as hex bit
// patterns — bit-exact and immune to formatting drift.
type goldenStat struct {
	Iter      int    `json:"iter"`
	Objective string `json:"objective"`
	RelError  string `json:"rel_error"`
	Accuracy  string `json:"accuracy"`
	CalTime   string `json:"cal_time"`
	CommTime  string `json:"comm_time"`
	Bytes     int64  `json:"bytes"`
	PrimalRes string `json:"primal_res"`
	DualRes   string `json:"dual_res"`
	Rho       string `json:"rho"`
}

type goldenRun struct {
	History []goldenStat `json:"history"`
	// ZBitsFNV is an FNV-1a hash over the final iterate's float64 bit
	// patterns — pins res.Z without storing the whole vector.
	ZBitsFNV string `json:"z_bits_fnv"`
}

func bits(v float64) string { return strconv.FormatUint(math.Float64bits(v), 16) }

func fnvZ(z []float64) string {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range z {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime
		}
	}
	return strconv.FormatUint(h, 16)
}

func goldenFromResult(res *Result) goldenRun {
	out := goldenRun{ZBitsFNV: fnvZ(res.Z)}
	for _, h := range res.History {
		out.History = append(out.History, goldenStat{
			Iter:      h.Iter,
			Objective: bits(h.Objective),
			RelError:  bits(h.RelError),
			Accuracy:  bits(h.Accuracy),
			CalTime:   bits(h.CalTime),
			CommTime:  bits(h.CommTime),
			Bytes:     h.Bytes,
			PrimalRes: bits(h.PrimalRes),
			DualRes:   bits(h.DualRes),
			Rho:       bits(h.Rho),
		})
	}
	return out
}

func TestGoldenHistories(t *testing.T) {
	train, test := testData(t, 120)
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			res, err := Run(gc.cfg(), train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFromResult(res)
			path := filepath.Join("testdata", "golden", gc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			var want goldenRun
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if len(got.History) != len(want.History) {
				t.Fatalf("history length %d, golden %d", len(got.History), len(want.History))
			}
			for i := range want.History {
				if got.History[i] != want.History[i] {
					t.Errorf("iter %d diverged from golden:\n got %+v\nwant %+v",
						i, got.History[i], want.History[i])
				}
			}
			if got.ZBitsFNV != want.ZBitsFNV {
				t.Errorf("final iterate diverged from golden: hash %s vs %s", got.ZBitsFNV, want.ZBitsFNV)
			}
			if t.Failed() {
				t.Log("bit-identical histories are a hard contract of the strategy refactor;" +
					" only regenerate goldens for an intentional numerical change")
			}
		})
	}
}

var _ = fmt.Sprintf
