// Package simnet models the cluster the paper ran on — virtual time only.
// The algorithms move real bytes over real fabrics (package transport); what
// a laptop cannot reproduce is Tianhe-2's *clock*: a bus an order of
// magnitude faster than the interconnect, per-message latencies, and slow
// nodes. simnet supplies that clock: an α/β (latency/bandwidth) cost model
// over the collective traces the algorithms actually emitted, a hierarchical
// topology (nodes × workers-per-node), a deterministic compute-time model
// driven by the work the TRON solver actually performed, and seeded
// straggler injection following §5.5's methodology (randomly chosen nodes
// get their computation time inflated).
//
// Everything here is a pure function of (seed, inputs): experiment
// timelines are bit-reproducible.
package simnet

import (
	"fmt"

	"psrahgadmm/internal/collective"
)

// Topology is a two-level cluster: Nodes physical nodes, each running
// WorkersPerNode worker ranks. Rank r lives on node r/WorkersPerNode —
// matching how MPI ranks are laid out contiguously across nodes.
type Topology struct {
	Nodes          int
	WorkersPerNode int
}

// Size returns the total rank count.
func (t Topology) Size() int { return t.Nodes * t.WorkersPerNode }

// NodeOf returns the physical node hosting rank r.
func (t Topology) NodeOf(r int) int { return r / t.WorkersPerNode }

// WorkersOf returns the ranks hosted on node n, in rank order.
func (t Topology) WorkersOf(n int) []int {
	out := make([]int, t.WorkersPerNode)
	for i := range out {
		out[i] = n*t.WorkersPerNode + i
	}
	return out
}

// SameNode reports whether ranks a and b share a physical node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Validate checks the topology is non-degenerate.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.WorkersPerNode <= 0 {
		return fmt.Errorf("simnet: topology %dx%d invalid", t.Nodes, t.WorkersPerNode)
	}
	return nil
}

// CostModel holds the α/β link parameters and the compute-rate constant.
// Alpha is seconds per message, Beta seconds per payload byte; Intra
// applies when both endpoints share a node (memory bus / shared memory),
// Inter when they cross the interconnect.
type CostModel struct {
	IntraAlpha, IntraBeta float64
	InterAlpha, InterBeta float64
	// ComputePerUnit converts solver work units (see WorkUnits) into
	// seconds.
	ComputePerUnit float64
}

// Tianhe2Like returns parameters shaped after the paper's platform: TH2
// Express-2+ at 14 Gbps × 8 lanes ≈ 1.4 GB/s effective per link with ~5 µs
// MPI latency, and an intra-node bus roughly 10× faster with sub-µs
// latency. Absolute values are only order-of-magnitude; the figures depend
// on the intra/inter ratio and on relative growth with cluster size.
func Tianhe2Like() CostModel {
	return CostModel{
		IntraAlpha:     5e-7,
		IntraBeta:      1.0 / 12e9, // ~12 GB/s bus
		InterAlpha:     5e-6,
		InterBeta:      1.0 / 1.4e9, // ~1.4 GB/s interconnect
		ComputePerUnit: 2e-9,        // ~2 flops/unit at ~1 Gflop/s effective
	}
}

// ScaleBandwidth returns a copy of c with both link bandwidths divided by
// k (betas multiplied). Scaled-down reproductions use this to preserve the
// original system's communication-to-computation ratio: our datasets are
// tens of times lower-dimensional than the paper's, so at unscaled
// bandwidth every transfer would vanish next to compute and no
// communication effect could be observed.
func (c CostModel) ScaleBandwidth(k float64) CostModel {
	c.IntraBeta *= k
	c.InterBeta *= k
	return c
}

// ScaleCompute returns a copy of c with compute k× slower. Together with
// ScaleBandwidth this calibrates a scaled-down problem back to the
// original system's compute-to-communication balance.
func (c CostModel) ScaleCompute(k float64) CostModel {
	c.ComputePerUnit *= k
	return c
}

// linkCost returns the (alpha, beta) pair for a message from rank a to b.
func (c CostModel) linkCost(topo Topology, a, b int) (alpha, beta float64) {
	if topo.SameNode(a, b) {
		return c.IntraAlpha, c.IntraBeta
	}
	return c.InterAlpha, c.InterBeta
}

// StepTimes folds a merged set of collective events (the union of every
// participating rank's local trace) into per-step durations. Within a
// step, messages are concurrent across the cluster but serialize through
// each endpoint's interface: a rank sending k messages in one step pays
// the sum of their costs, and likewise on the receive side. The step lasts
// as long as its busiest endpoint.
func (c CostModel) StepTimes(topo Topology, steps int, events []collective.Event) []float64 {
	if steps == 0 {
		return nil
	}
	type load struct{ out, in float64 }
	times := make([]float64, steps)
	perStep := make(map[int]map[int]*load)
	for _, e := range events {
		if e.Step < 0 || e.Step >= steps {
			panic(fmt.Sprintf("simnet: event step %d out of [0,%d)", e.Step, steps))
		}
		alpha, beta := c.linkCost(topo, e.From, e.To)
		cost := alpha + beta*float64(e.Bytes)
		m := perStep[e.Step]
		if m == nil {
			m = make(map[int]*load)
			perStep[e.Step] = m
		}
		for _, end := range []int{e.From, e.To} {
			if m[end] == nil {
				m[end] = &load{}
			}
		}
		m[e.From].out += cost
		m[e.To].in += cost
	}
	for s, m := range perStep {
		var worst float64
		for _, l := range m {
			if l.out > worst {
				worst = l.out
			}
			if l.in > worst {
				worst = l.in
			}
		}
		times[s] = worst
	}
	return times
}

// TraceTime returns the total elapsed virtual seconds of a collective
// whose members contributed the given local traces.
func (c CostModel) TraceTime(topo Topology, traces ...collective.Trace) float64 {
	steps := 0
	var events []collective.Event
	for _, tr := range traces {
		if tr.Steps > steps {
			steps = tr.Steps
		}
		events = append(events, tr.Events...)
	}
	var total float64
	for _, t := range c.StepTimes(topo, steps, events) {
		total += t
	}
	return total
}

// WorkUnits converts a subproblem solve's observed work into model units:
// each function evaluation and each Hessian-vector product streams the
// shard once (≈ 2·nnz flops), and the vector updates stream the dense
// iterate a handful of times.
func WorkUnits(cgIters, funEvals, shardNNZ, dim int) float64 {
	return float64(cgIters+funEvals)*2*float64(shardNNZ) + 6*float64(dim)
}

// ComputeTime converts work units into virtual seconds.
func (c CostModel) ComputeTime(units float64) float64 {
	return units * c.ComputePerUnit
}
