package bench

import (
	"fmt"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
	"psrahgadmm/internal/simnet"
)

// Fig7 reproduces Figure 7: PSRA-HGADMM with the dynamic grouping strategy
// versus without it, under injected stragglers — §5.5's methodology of
// randomly selected nodes with prolonged computation time (a fixed
// additive delay, so straggler damage does not shrink as shards shrink).
// Runs use the group-local consensus mode, the reading of Algorithms 1–3
// under which fast groups proceed without waiting for slow nodes; the
// ungrouped baseline (threshold = all nodes) is a single global group,
// which every iteration must wait for the slowest node. The headline is
// the grouped/ungrouped communication-time trend from the smallest to the
// largest cluster.
func Fig7(opts Options) error {
	opts.fill()
	nodesList, wpn := fig6Sizes(opts.Quick)

	type cell struct{ cal, comm, sys float64 }
	for _, dcfg := range BenchDatasets(opts.Seed, opts.Quick) {
		l, err := load(dcfg)
		if err != nil {
			return err
		}
		run := func(nodes, threshold int) (cell, error) {
			cfg := runCfg(core.PSRAHGADMM, nodes, wpn, opts)
			cfg.Consensus = core.ConsensusGroup
			cfg.GroupThreshold = threshold
			// A slow node is picked rarely but pauses for a fixed virtual
			// delay large next to a shard's compute at scale.
			cfg.Stragglers = simnet.Stragglers{Seed: opts.Seed + 100, Prob: 0.05, Delay: 8e-3}
			cfg.EvalEvery = cfg.MaxIter
			res, err := core.Run(cfg, l.train, core.RunOptions{})
			if err != nil {
				return cell{}, err
			}
			return cell{cal: res.TotalCalTime, comm: res.TotalCommTime, sys: res.SystemTime}, nil
		}

		grouped := map[int]cell{}
		ungrouped := map[int]cell{}
		groupSize := 4 // the paper's Figure 3 illustrates a fixed small GQ threshold
		for _, nodes := range nodesList {
			th := groupSize
			if th > nodes {
				th = nodes
			}
			if grouped[nodes], err = run(nodes, th); err != nil {
				return fmt.Errorf("fig7 %s grouped %d: %w", dcfg.Name, nodes, err)
			}
			if ungrouped[nodes], err = run(nodes, nodes); err != nil {
				return fmt.Errorf("fig7 %s ungrouped %d: %w", dcfg.Name, nodes, err)
			}
		}

		tbl := metrics.NewTable(
			fmt.Sprintf("Figure 7 — %s: dynamic grouping vs ungrouped under stragglers (%d workers/node, %d iters)",
				dcfg.Name, wpn, opts.MaxIter),
			"nodes", "strategy", "cal_time", "comm_time", "system_time")
		for _, nodes := range nodesList {
			g, u := grouped[nodes], ungrouped[nodes]
			tbl.AddRow(nodes, "dynamic-grouping", metrics.Seconds(g.cal), metrics.Seconds(g.comm), metrics.Seconds(g.sys))
			tbl.AddRow(nodes, "ungrouped", metrics.Seconds(u.cal), metrics.Seconds(u.comm), metrics.Seconds(u.sys))
		}
		if err := emit(opts, tbl); err != nil {
			return err
		}

		lo := nodesList[0]
		hi := nodesList[len(nodesList)-1]
		fmt.Fprintf(opts.Out,
			"headline[%s]: comm time %d→%d nodes: grouped %+.1f%%, ungrouped %+.1f%%\n",
			dcfg.Name, lo, hi,
			metrics.PctChange(grouped[lo].comm, grouped[hi].comm),
			metrics.PctChange(ungrouped[lo].comm, ungrouped[hi].comm))
		fmt.Fprintf(opts.Out,
			"headline[%s]: system time at %d nodes: grouping %.1f%% lower than ungrouped (%s vs %s)\n\n",
			dcfg.Name, hi,
			metrics.Reduction(ungrouped[hi].sys, grouped[hi].sys),
			metrics.Seconds(grouped[hi].sys), metrics.Seconds(ungrouped[hi].sys))
	}
	return nil
}
