package core

import (
	"math"
	"testing"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// TestElasticRejoinRestoresFullDataOptimum is the fail-recover acceptance
// test: 2 of 8 workers die — including a Leader, taking its whole node out
// of the tree — and both rejoin a few iterations later. With every shard
// contributing again, the run must converge to the FULL-data optimum, the
// same target an undisturbed run reaches: the z-update's contributor
// scaling grows back exactly as it shrank, so the disturbance is transient.
func TestElasticRejoinRestoresFullDataOptimum(t *testing.T) {
	train, _ := testData(t, 240)
	cfg := baseConfig(PSRAHGADMM, 4, 2) // node n owns ranks {2n, 2n+1}
	cfg.MaxIter = 200
	cfg.EvalEvery = 10
	cfg.Elastic = true
	cfg.Faults = &transport.FaultPlan{
		Seed: 5,
		KillAtIteration: map[int]int{
			3: 3, // non-leader of node 1
			2: 5, // Leader of node 1 → node 1 fully dead
		},
		RejoinAtIteration: map[int]int{
			3: 9,  // back while its node is still gone: re-seeds node 1
			2: 12, // ex-Leader returns, reclaims the leadership slot
		},
	}

	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatalf("rejoin run failed: %v", err)
	}
	if len(res.History) != cfg.MaxIter {
		t.Fatalf("completed %d of %d iterations", len(res.History), cfg.MaxIter)
	}

	// Membership trajectory: every transition lands at its boundary and
	// bumps the epoch — deaths AND rejoins.
	wantLive := func(iter, live, epoch int) {
		t.Helper()
		s := res.History[iter]
		if s.LiveWorkers != live || s.Epoch != epoch {
			t.Fatalf("iter %d: live=%d epoch=%d, want live=%d epoch=%d",
				iter, s.LiveWorkers, s.Epoch, live, epoch)
		}
	}
	wantLive(2, 8, 0)
	wantLive(3, 7, 1)
	wantLive(5, 6, 2)
	wantLive(9, 7, 3)
	wantLive(12, 8, 4)

	// Full recovery: the final membership view is whole, not degraded.
	if res.Degraded || res.LiveWorkers != 8 || res.Epoch != 4 {
		t.Fatalf("final membership after rejoins: live=%d epoch=%d degraded=%v",
			res.LiveWorkers, res.Epoch, res.Degraded)
	}

	// Convergence target: the reference optimum of ALL data — and the
	// undisturbed elastic run must agree, pinning that the disturbance
	// cost iterations, not the optimum.
	fstar, _, err := ReferenceOptimum(train, cfg.Rho, cfg.Lambda, 300)
	if err != nil {
		t.Fatal(err)
	}
	f := res.FinalObjective()
	if rel := math.Abs(f-fstar) / math.Abs(fstar); rel > 1e-3 {
		t.Fatalf("recovered run missed the full-data optimum: f=%v f*=%v rel=%v", f, fstar, rel)
	}
	clean := cfg
	clean.Faults = nil
	undisturbed, err := Run(clean, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fu := undisturbed.FinalObjective()
	if rel := math.Abs(f-fu) / math.Abs(fu); rel > 1e-3 {
		t.Fatalf("recovered run diverged from the undisturbed one: f=%v undisturbed=%v rel=%v", f, fu, rel)
	}
}

// TestElasticRejoinDeterministic extends the determinism contract to
// fail-recover: scheduled kills AND rejoins land at iteration boundaries,
// so chaos runs with equal inputs produce bit-identical histories.
func TestElasticRejoinDeterministic(t *testing.T) {
	train, test := testData(t, 160)
	run := func() *Result {
		cfg := baseConfig(PSRAHGADMM, 4, 2)
		cfg.MaxIter = 16
		cfg.GroupThreshold = 2
		cfg.Elastic = true
		cfg.Faults = &transport.FaultPlan{
			Seed:              7,
			KillAtIteration:   map[int]int{3: 3, 2: 6},
			RejoinAtIteration: map[int]int{3: 8, 2: 11},
		}
		res, err := Run(cfg, train, RunOptions{Test: test})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	for rep := 0; rep < 8; rep++ {
		b := run()
		for i := range a.History {
			if !iterStatEqual(a.History[i], b.History[i]) {
				t.Fatalf("rep %d iter %d differs:\n%+v\n%+v", rep, i, a.History[i], b.History[i])
			}
		}
		if !vec.Equal(a.Z, b.Z) {
			t.Fatalf("rep %d: final iterates differ", rep)
		}
	}
}

// TestElasticRejoinAcrossAlgorithms: the boundary-scheduled rejoin is a
// membership-layer mechanism, so every elastic-capable strategy must fold
// a returning rank back in — flat PSR, sparse Leader ring, and the staged
// tree alike.
func TestElasticRejoinAcrossAlgorithms(t *testing.T) {
	train, _ := testData(t, 120)
	for _, alg := range []Algorithm{PSRAADMM, GRADMM, PSRAHGADMM} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := baseConfig(alg, 3, 2)
			cfg.MaxIter = 30
			cfg.EvalEvery = 5
			cfg.Elastic = true
			cfg.Faults = &transport.FaultPlan{
				Seed:              9,
				KillAtIteration:   map[int]int{2: 4},
				RejoinAtIteration: map[int]int{2: 10},
			}
			res, err := Run(cfg, train, RunOptions{})
			if err != nil {
				t.Fatalf("%s rejoin run failed: %v", alg, err)
			}
			if len(res.History) != cfg.MaxIter {
				t.Fatalf("completed %d of %d iterations", len(res.History), cfg.MaxIter)
			}
			if res.Degraded || res.LiveWorkers != 6 || res.Epoch != 2 {
				t.Fatalf("final membership: live=%d epoch=%d degraded=%v",
					res.LiveWorkers, res.Epoch, res.Degraded)
			}
			if res.FinalObjective() >= res.History[0].Objective {
				t.Fatalf("no progress across kill+rejoin: %v → %v",
					res.History[0].Objective, res.FinalObjective())
			}
		})
	}
}

// TestRejoinRequiresElastic pins the validation: fail-stop runs cannot
// re-admit ranks, and a rejoin without a preceding kill is a plan bug.
func TestRejoinRequiresElastic(t *testing.T) {
	train, _ := testData(t, 60)
	cfg := baseConfig(PSRAADMM, 2, 2)
	cfg.MaxIter = 4
	cfg.Faults = &transport.FaultPlan{
		KillAtIteration:   map[int]int{1: 1},
		RejoinAtIteration: map[int]int{1: 2},
	}
	if _, err := Run(cfg, train, RunOptions{}); err == nil {
		t.Fatal("non-elastic run accepted RejoinAtIteration")
	}
	cfg.Elastic = true
	cfg.Faults.RejoinAtIteration = map[int]int{3: 2} // rank 3 is never killed
	if _, err := Run(cfg, train, RunOptions{}); err == nil {
		t.Fatal("rejoin without a kill accepted")
	}
	cfg.Faults.RejoinAtIteration = map[int]int{1: 1} // not after the kill
	if _, err := Run(cfg, train, RunOptions{}); err == nil {
		t.Fatal("rejoin at the kill iteration accepted")
	}
}

// TestRejoinResetsAgeScoringState covers the age-scored top-k codec across
// a kill+rejoin: the engine resets the rejoiner's exchange state (error-
// feedback residual AND the residual ages) at the boundary, so the run is
// deterministic across repetitions and still makes real progress — an
// inherited age vector from the dead incarnation would perturb selection
// unpredictably and break both properties.
func TestRejoinResetsAgeScoringState(t *testing.T) {
	train, _ := testData(t, 160)
	run := func() *Result {
		cfg := baseConfig(PSRAADMMTopK, 4, 2)
		cfg.MaxIter = 40
		cfg.EvalEvery = cfg.MaxIter
		cfg.CodecTopK = 8
		cfg.CodecAgeScoring = true
		cfg.Elastic = true
		cfg.Faults = &transport.FaultPlan{
			Seed:              13,
			KillAtIteration:   map[int]int{3: 6},
			RejoinAtIteration: map[int]int{3: 12},
		}
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if len(a.History) != 40 {
		t.Fatalf("completed %d iterations", len(a.History))
	}
	if a.Degraded || a.LiveWorkers != 8 {
		t.Fatalf("rejoin did not restore the world: live=%d degraded=%v", a.LiveWorkers, a.Degraded)
	}
	if f0 := a.History[0].Objective; !isNaN(f0) && a.FinalObjective() >= f0 {
		t.Fatalf("no progress across kill+rejoin with age scoring: %v -> %v", f0, a.FinalObjective())
	}
	for rep := 0; rep < 3; rep++ {
		b := run()
		if !vec.Equal(a.Z, b.Z) {
			t.Fatalf("rep %d: age-scored rejoin run is nondeterministic", rep)
		}
	}
}
