package core

import (
	"encoding/json"
	"io"
	"math"
)

// Run exports: the Result type serializes to JSON for external plotting
// and archival. NaN (Go's "not evaluated" marker) is not representable in
// JSON, so the export replaces it with null via a shadow structure.

// jsonFloat marshals NaN as null.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

type iterStatJSON struct {
	Iter      int       `json:"iter"`
	Objective jsonFloat `json:"objective"`
	RelError  jsonFloat `json:"rel_error"`
	Accuracy  jsonFloat `json:"accuracy"`
	CalTime   float64   `json:"cal_time_s"`
	CommTime  float64   `json:"comm_time_s"`
	Bytes     int64     `json:"bytes"`
	PrimalRes float64   `json:"primal_res"`
	DualRes   float64   `json:"dual_res"`
	Rho       float64   `json:"rho"`
}

type resultJSON struct {
	Algorithm      string         `json:"algorithm"`
	Consensus      string         `json:"consensus"`
	Nodes          int            `json:"nodes"`
	WorkersPerNode int            `json:"workers_per_node"`
	Rho            float64        `json:"rho"`
	Lambda         float64        `json:"lambda"`
	MaxIter        int            `json:"max_iter"`
	GroupThreshold int            `json:"group_threshold"`
	QuantBits      int            `json:"quant_bits"`
	Stopped        bool           `json:"stopped_early"`
	TotalCalTime   float64        `json:"total_cal_time_s"`
	TotalCommTime  float64        `json:"total_comm_time_s"`
	SystemTime     float64        `json:"system_time_s"`
	TotalBytes     int64          `json:"total_bytes"`
	History        []iterStatJSON `json:"history"`
}

// WriteJSON serializes the run (configuration summary plus full history)
// as indented JSON, with NaN fields rendered as null.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Algorithm:      string(r.Config.Algorithm),
		Consensus:      string(r.Config.Consensus),
		Nodes:          r.Config.Topo.Nodes,
		WorkersPerNode: r.Config.Topo.WorkersPerNode,
		Rho:            r.Config.Rho,
		Lambda:         r.Config.Lambda,
		MaxIter:        r.Config.MaxIter,
		GroupThreshold: r.Config.GroupThreshold,
		QuantBits:      r.Config.QuantBits,
		Stopped:        r.Stopped,
		TotalCalTime:   r.TotalCalTime,
		TotalCommTime:  r.TotalCommTime,
		SystemTime:     r.SystemTime,
		TotalBytes:     r.TotalBytes,
	}
	for _, h := range r.History {
		out.History = append(out.History, iterStatJSON{
			Iter:      h.Iter,
			Objective: jsonFloat(h.Objective),
			RelError:  jsonFloat(h.RelError),
			Accuracy:  jsonFloat(h.Accuracy),
			CalTime:   h.CalTime,
			CommTime:  h.CommTime,
			Bytes:     h.Bytes,
			PrimalRes: h.PrimalRes,
			DualRes:   h.DualRes,
			Rho:       h.Rho,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
