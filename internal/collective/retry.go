package collective

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// Bounded retry with exponential backoff: the degraded-mode runtimes never
// block forever on a peer, and never declare one dead on first loss. A
// message that a FaultFabric dropped or delayed is retried under a growing
// deadline; only transport-level death evidence (PeerDownError) or an
// exhausted budget ends the wait. Crucially the two outcomes are distinct:
//
//   - *transport.PeerDownError — the peer is KNOWN dead; the caller prunes
//     it from membership.
//   - ErrUnavailable — the budget ran out but the peer is (as far as the
//     transport knows) alive; the caller treats the exchange as stale and
//     moves on WITHOUT declaring anyone dead. Slowness is not death.
//
// This is tentpole (3) of the elastic design: a peer is only removed from
// the world after the transport itself says so, never because a retry
// budget expired.

// ErrUnavailable reports that a peer did not respond within the retry
// budget but is not known to be dead. Callers skip the exchange (bounded
// staleness) instead of pruning the peer.
var ErrUnavailable = errors.New("collective: peer unresponsive within retry budget")

// ackTagOffset maps a data tag to its acknowledgement tag. User tags must
// stay below this offset; the wire package's reserved control tags are
// negative and cannot collide.
const ackTagOffset = int32(1) << 28

// AckTag returns the acknowledgement tag paired with a data tag.
func AckTag(tag int32) int32 { return tag + ackTagOffset }

// RetryPolicy bounds a retried exchange: up to Attempts tries, the i-th
// waiting BaseDelay·2^i capped at MaxDelay. The zero value means the
// defaults (4 attempts, 50ms base, 2s cap).
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter decorrelates the waits: each attempt draws uniformly from
	// [BaseDelay, 3·previous], clamped to [delay(attempt)/2, MaxDelay].
	// The clamp keeps the exponential shape — the budget a caller sized
	// against the deterministic schedule still holds to within 2× — while
	// N survivors retrying the same dead peer spread out instead of
	// thundering the transport in lockstep. Off by default so tests that
	// pin exact schedules stay deterministic.
	Jitter bool
}

func (p RetryPolicy) fill() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay returns the attempt-th wait (0-based) under exponential backoff.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// jitteredDelay returns the attempt-th wait under decorrelated jitter: a
// uniform draw from [BaseDelay, 3·prev] (prev = the previous attempt's
// wait), clamped to [delay(attempt)/2, MaxDelay]. Drawing against the
// previous *realized* wait rather than the deterministic schedule is what
// decorrelates concurrent retriers: their sleep sequences diverge after
// the first draw instead of re-synchronizing every attempt.
func (p RetryPolicy) jitteredDelay(attempt int, prev time.Duration) time.Duration {
	hi := 3 * prev
	if hi < p.BaseDelay {
		hi = p.BaseDelay
	}
	d := p.BaseDelay
	if span := int64(hi - p.BaseDelay); span > 0 {
		d += time.Duration(rand.Int63n(span + 1))
	}
	if floor := p.delay(attempt) / 2; d < floor {
		d = floor
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// wait returns the attempt-th wait, threading prev for jitter's
// decorrelation state. Callers start with prev = 0.
func (p RetryPolicy) wait(attempt int, prev time.Duration) time.Duration {
	if !p.Jitter {
		return p.delay(attempt)
	}
	if prev <= 0 {
		prev = p.BaseDelay
	}
	return p.jitteredDelay(attempt, prev)
}

// RecvRetry waits for a message from `from` (or transport.AnySource) on
// tag, retrying with exponential backoff. It returns the message; a
// *transport.PeerDownError as soon as the source is known dead; or
// ErrUnavailable once the budget is exhausted with the peer still alive.
func RecvRetry(ep transport.Endpoint, from int, tag int32, pol RetryPolicy) (wire.Message, error) {
	pol = pol.fill()
	var prev time.Duration
	var corrupt error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		prev = pol.wait(attempt, prev)
		m, err := ep.RecvTimeout(from, tag, prev)
		if err == nil {
			return m, nil
		}
		switch {
		case errors.Is(err, transport.ErrTimeout):
		case errors.Is(err, wire.ErrFrameCorrupt):
			// The frame arrived but failed its integrity check and was
			// dropped: a recoverable loss, not a wrong answer. Burn an
			// attempt and keep waiting — an ack-protocol sender re-sends.
			corrupt = err
		default:
			return wire.Message{}, err
		}
	}
	if corrupt != nil {
		return wire.Message{}, fmt.Errorf("collective: recv from %d tag %d: %w (last corrupt frame: %v)",
			from, tag, ErrUnavailable, corrupt)
	}
	return wire.Message{}, fmt.Errorf("collective: recv from %d tag %d: %w", from, tag, ErrUnavailable)
}

// SendAck sends m to `to` and waits for the receiver's acknowledgement on
// AckTag(m.Tag), resending the payload on each timeout — the recovery path
// for FaultFabric drops. The receiver must use RecvAck on the same tag.
//
// When the ack budget is exhausted the sender probes the peer's liveness:
// a dead peer returns its PeerDownError; a live peer means the data (or
// its ack) was merely lost or slow, and the send is reported successful —
// at-least-once delivery, with duplicates left harmlessly unmatched under
// the iteration-unique tags all callers use.
func SendAck(ep transport.Endpoint, to int, m wire.Message, pol RetryPolicy) error {
	pol = pol.fill()
	ackTag := AckTag(m.Tag)
	var prev time.Duration
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if err := ep.Send(to, m); err != nil {
			return err
		}
		prev = pol.wait(attempt, prev)
		_, err := ep.RecvTimeout(to, ackTag, prev)
		if err == nil {
			return nil
		}
		// A corrupt frame (the data frame on the receiver's side, or the
		// ack on ours) is a recoverable loss: loop and resend the payload,
		// exactly as for a timeout.
		if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, wire.ErrFrameCorrupt) {
			return err
		}
	}
	if err := ProbePeer(ep, to); err != nil {
		return err
	}
	return nil // peer alive: assume delivered (ack lost), proceed
}

// RecvAck receives a message from `from` on tag with RecvRetry semantics
// and acknowledges it on AckTag(tag) so a SendAck sender stops resending.
// A failed ack send to an already-dead sender is ignored — the data
// arrived, which is all the caller needs.
func RecvAck(ep transport.Endpoint, from int, tag int32, pol RetryPolicy) (wire.Message, error) {
	m, err := RecvRetry(ep, from, tag, pol)
	if err != nil {
		return wire.Message{}, err
	}
	_ = ep.Send(int(m.From), wire.Control(AckTag(tag), 0))
	return m, nil
}

// probeTag is a tag no protocol sends on: a RecvTimeout against it can
// only end in ErrTimeout (peer alive) or a PeerDownError (peer dead),
// which is exactly the liveness oracle SendAck needs.
const probeTag = ackTagOffset - 1

// ProbePeer checks whether a peer is known dead without exchanging any
// message: it returns the peer's PeerDownError if the transport has one,
// nil while the peer is (as far as anyone knows) alive.
func ProbePeer(ep transport.Endpoint, peer int) error {
	_, err := ep.RecvTimeout(peer, probeTag, time.Millisecond)
	if err == nil || errors.Is(err, transport.ErrTimeout) {
		return nil
	}
	return err
}
