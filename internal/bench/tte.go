package bench

import (
	"fmt"
	"math"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
)

// TimeToError is a derived experiment the paper's Figures 5 and 6 jointly
// imply but never print: the virtual system time each algorithm needs to
// *reach a fixed relative error*, rather than to finish a fixed iteration
// count. SSP baselines buy cheaper iterations with staleness, so
// equal-iteration timing (Figure 6) flatters them; equal-error timing is
// the fair productivity metric, and it is where PSRA-HGADMM's fresher
// updates pay off.
func TimeToError(opts Options) error {
	opts.fill()
	const target = 0.05
	nodesList, wpn := fig6Sizes(opts.Quick)
	nodes := nodesList[len(nodesList)-1] // largest cluster

	for _, dcfg := range BenchDatasets(opts.Seed, opts.Quick) {
		l, err := load(dcfg)
		if err != nil {
			return err
		}
		fstar, err := l.referenceOptimum(opts.Rho, opts.Lambda)
		if err != nil {
			return err
		}
		tbl := metrics.NewTable(
			fmt.Sprintf("Time to relative error ≤ %v — %s, %d nodes × %d workers",
				target, dcfg.Name, nodes, wpn),
			"algorithm", "iterations", "system_time", "comm_bytes", "rel_error curve")
		for _, alg := range fig5Algorithms() {
			cfg := runCfg(alg, nodes, wpn, opts)
			res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
			if err != nil {
				return fmt.Errorf("tte %s/%s: %w", dcfg.Name, alg, err)
			}
			iters := -1
			var sys float64
			var bytes int64
			curve := make([]float64, len(res.History))
			for i, h := range res.History {
				curve[i] = h.RelError
				sys += h.CalTime + h.CommTime
				bytes += h.Bytes
				if iters < 0 && !math.IsNaN(h.RelError) && h.RelError <= target {
					iters = i + 1
					break
				}
			}
			if iters < 0 {
				tbl.AddRow(string(alg), fmt.Sprintf(">%d", opts.MaxIter),
					"-", metrics.Bytes(bytes), metrics.Sparkline(curve))
				continue
			}
			tbl.AddRow(string(alg), iters, metrics.Seconds(sys),
				metrics.Bytes(bytes), metrics.Sparkline(curve[:iters]))
		}
		if err := emit(opts, tbl); err != nil {
			return err
		}
		fmt.Fprintln(opts.Out)
	}
	return nil
}
