package core

import (
	"psrahgadmm/internal/sparse"
)

// flatStrategy is the cluster-wide PSR-Allreduce (§4.2 without the WLG
// framework): every worker is a peer in a single sparse collective; the
// recursion is exact consensus every round. Under BSP the collective
// starts when the slowest worker is ready. Under SSP/async — compositions
// the monolithic variant could not express — the collective runs over
// every worker's cached contribution as soon as the quorum finishes, and
// only fresh workers receive (and pay for) the result.
type flatStrategy struct {
	env      *strategyEnv
	clocks   []sspClock // per worker
	wCur     []*sparse.Vector
	pendingW []*sparse.Vector
	// lastEnd serializes consecutive collectives: a new round cannot start
	// before the previous one's result has been delivered.
	lastEnd float64
}

func newFlatStrategy(env *strategyEnv) *flatStrategy {
	st := &flatStrategy{
		env:      env,
		clocks:   make([]sspClock, len(env.ws)),
		wCur:     make([]*sparse.Vector, len(env.ws)),
		pendingW: make([]*sparse.Vector, len(env.ws)),
	}
	for i := range st.wCur {
		st.wCur[i] = sparse.NewVector(env.dim, 0)
	}
	return st
}

func (st *flatStrategy) Round(cfg Config, iter int) (iterTiming, error) {
	env := st.env
	ws := env.ws
	var timing iterTiming

	// Reconcile: dead workers leave the barrier, the collective, and the
	// z-update's averaging count.
	if env.elastic {
		for i := range st.clocks {
			if st.clocks[i].pending != nil && !env.members.Alive(ws[i].rank) {
				st.clocks[i] = sspClock{}
				st.pendingW[i] = nil
			}
		}
	}

	idle := make([]int, 0, len(ws))
	for i := range st.clocks {
		if st.clocks[i].pending == nil && env.members.Alive(ws[i].rank) {
			idle = append(idle, i)
		}
	}
	sub := make([]*worker, len(idle))
	for j, i := range idle {
		sub[j] = ws[i]
	}
	cals := parallelXUpdates(cfg, sub, iter)
	for j, i := range idle {
		w := ws[i]
		st.pendingW[i] = w.wSparse(cfg.Rho)
		env.codec.EncodeSparse(st.pendingW[i])
		st.clocks[i].pending = &pendingCompute{
			finish: w.clock + cals[j],
			ranks:  []int{w.rank},
			starts: []float64{w.clock},
			cals:   []float64{cals[j]},
		}
	}

	contributors := env.members.LiveCount()
	cutoff := sspCutoff(st.clocks, env.sync.Quorum(contributors, 1), env.sync.Delay())
	fresh := admitted(st.clocks, cutoff)
	for _, i := range fresh {
		st.wCur[i] = st.pendingW[i]
	}

	// Every LIVE worker is a peer in the collective, serving its cached
	// contribution when stale.
	ranks := make([]int, 0, len(ws))
	inputs := make([]*sparse.Vector, 0, len(ws))
	for i, w := range ws {
		if !env.members.Alive(w.rank) {
			continue
		}
		ranks = append(ranks, w.rank)
		inputs = append(inputs, st.wCur[i])
	}
	start := maxf(cutoff, st.lastEnd)
	agg, tr, err := groupAllreduce(env, ranks, commPSRSparse, inputs)
	if err != nil {
		return timing, err
	}
	tr = env.codec.WireTrace(tr)
	commT := cfg.Cost.TraceTime(cfg.Topo, tr)
	timing.bytes += traceBytes(tr)
	end := start + commT
	st.lastEnd = end

	bigW := agg.ToDense()
	calSum, commSum := 0.0, 0.0
	for _, i := range fresh {
		p := st.clocks[i].pending
		ws[i].applyW(cfg, bigW, contributors)
		calSum += p.cals[0]
		commSum += end - p.starts[0] - p.cals[0]
		ws[i].clock = end
		st.clocks[i].pending = nil
		st.clocks[i].staleness = 0
		st.pendingW[i] = nil
	}
	bumpStale(st.clocks)
	if len(fresh) > 0 {
		timing.cal = calSum / float64(len(fresh))
		timing.comm = commSum / float64(len(fresh))
	}
	return timing, nil
}
