package wlg

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// TestElasticRejoinFoldsWorkerBack is the WLG fail-recover acceptance
// test: a Leader is killed mid-protocol, its node recovers under the
// survivor, and then the dead rank comes back as a new incarnation via
// Config.Rejoin. The rejoiner must receive a grant (join iteration, warm
// start), execute exactly the tail [joinIter, MaxIter), and the whole
// world — including ranks that never exchanged a message with it — must
// re-admit it at the same boundary, restoring the full contributor count.
func TestElasticRejoinFoldsWorkerBack(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 30, Elastic: true}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		// Rank 2 (Leader of node 1) dies on its 5th send: one complete
		// iteration, then mid-contribution — rank 3 recovers through the
		// GG cache and takes over the node.
		transport.FaultPlan{Seed: 11, KillAfterSends: map[int]int{2: 5}},
	)
	defer fab.Close()

	const dim = 3
	var mu sync.Mutex
	agg := make([]map[int][]float64, topo.Size())
	counts := make([]map[int]int, topo.Size())
	for r := range agg {
		agg[r] = map[int][]float64{}
		counts[r] = map[int]int{}
	}
	record := func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 { return rankVec(dim, rank) },
			ApplyW: func(iter int, w []float64, n int) {
				mu.Lock()
				agg[rank][iter] = vec.Clone(w)
				counts[rank][iter] = n
				mu.Unlock()
			},
		}
	}

	type exit struct {
		rank int
		info *RunInfo
		err  error
	}
	var wg sync.WaitGroup
	ggErr := make(chan error, 1)
	exits := make(chan exit, topo.Size()+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ggErr <- RunGG(fab.Endpoint(GGRank(topo)), cfg)
	}()
	start := func(rank int, c Config, f WorkerFuncs) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := RunWorkerInfo(fab.Endpoint(rank), c, f)
			exits <- exit{rank, info, err}
		}()
	}
	for r := 0; r < topo.Size(); r++ {
		start(r, cfg, record(r))
	}

	var rej struct {
		called   int
		joinIter int
		warm     []float64
		cnt      int
	}
	rcfg := cfg
	rcfg.Rejoin = true
	rfuncs := record(2)
	rfuncs.Rejoined = func(joinIter int, w []float64, n int) {
		mu.Lock()
		rej.called++
		rej.joinIter = joinIter
		rej.warm = vec.Clone(w)
		rej.cnt = n
		mu.Unlock()
	}

	// Coordinator: the killed rank's exit (its own endpoint closed) is the
	// signal a real launcher would see; revive the slot and start the new
	// incarnation. Everyone else must finish cleanly.
	deadline := time.After(120 * time.Second)
	rejoined := false
	finals := make([]*RunInfo, topo.Size())
	for finished := 0; finished < topo.Size()+1; {
		select {
		case e := <-exits:
			finished++
			if e.rank == 2 && !rejoined {
				if !errors.Is(e.err, transport.ErrClosed) {
					t.Fatalf("killed rank exited with %v, want its own ErrClosed", e.err)
				}
				fab.Revive(2)
				rejoined = true
				start(2, rcfg, rfuncs)
				continue
			}
			if e.err != nil {
				t.Fatalf("rank %d failed: %v", e.rank, e.err)
			}
			finals[e.rank] = e.info
		case <-deadline:
			t.Fatal("rejoin run hung")
		}
	}
	wg.Wait()
	if err := <-ggErr; err != nil {
		t.Fatalf("GG failed: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if rej.called != 1 {
		t.Fatalf("Rejoined called %d times, want 1", rej.called)
	}
	if rej.joinIter < 2 || rej.joinIter >= cfg.MaxIter {
		t.Fatalf("join iteration %d outside the useful range [2, %d)", rej.joinIter, cfg.MaxIter)
	}
	// A cold grant (no warm start) is only possible before the first
	// flush, which pins the join boundary to the very start of the run.
	if rej.warm == nil && rej.joinIter > 2 {
		t.Fatalf("no warm start despite joining at iteration %d", rej.joinIter)
	}
	if rej.warm != nil && (len(rej.warm) != dim || rej.cnt < 1) {
		t.Fatalf("warm start dim=%d contributors=%d", len(rej.warm), rej.cnt)
	}

	// The new incarnation executes exactly the granted tail.
	for iter := rej.joinIter; iter < cfg.MaxIter; iter++ {
		if agg[2][iter] == nil {
			t.Fatalf("rejoiner never applied iteration %d (joined at %d)", iter, rej.joinIter)
		}
	}
	// Survivors never miss an iteration.
	for _, r := range []int{0, 1, 3} {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if agg[r][iter] == nil {
				t.Fatalf("survivor %d never applied iteration %d", r, iter)
			}
		}
	}
	// Full-world restoration: the final round's consensus carries every
	// rank's contribution with the full contributor count, on every rank —
	// the WLG analogue of "contributor scaling grows back".
	last := cfg.MaxIter - 1
	for r := 0; r < topo.Size(); r++ {
		if counts[r][last] != topo.Size() {
			t.Fatalf("rank %d final contributors = %d, want %d", r, counts[r][last], topo.Size())
		}
		ranks := decodeRanks(agg[r][last][0], topo.Size())
		for p := 0; p < topo.Size(); p++ {
			if !ranks[p] {
				t.Fatalf("rank %d final sum misses rank %d: %v", r, p, ranks)
			}
		}
	}
	// Every final membership view is whole again — including on ranks 0/1,
	// which only learn both the death and the rejoin through the log.
	for r, info := range finals {
		if info == nil {
			t.Fatalf("rank %d reported no RunInfo", r)
		}
		if info.LiveWorkers != topo.Size() {
			t.Fatalf("rank %d final view: %d live, want %d", r, info.LiveWorkers, topo.Size())
		}
	}
}

// TestRejoinAnnouncementIdempotent drives the GG's rejoin handshake
// directly: duplicated announcements (a loss-driven re-announce or a
// fabric-duplicated frame) must re-serve the SAME grant — one join
// iteration, one incarnation — and a duplicate straggling in after the
// rejoiner's farewell must not corrupt the done accounting the GG's
// termination depends on.
func TestRejoinAnnouncementIdempotent(t *testing.T) {
	topo := simnet.Topology{Nodes: 1, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 3, Elastic: true}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	gg := GGRank(topo)
	ggDone := make(chan error, 1)
	go func() { ggDone <- RunGG(fab.Endpoint(gg), cfg) }()

	ep0, ep1 := fab.Endpoint(0), fab.Endpoint(1)
	announce := func() []int64 {
		t.Helper()
		if err := ep1.Send(gg, wire.Control(tagElControl, elKindRejoin, 0, 0, 0)); err != nil {
			t.Fatal(err)
		}
		m, err := ep1.Recv(gg, tagElRejoinReply)
		if err != nil {
			t.Fatal(err)
		}
		return m.Ints
	}
	farewell := func(ep transport.Endpoint) {
		t.Helper()
		if err := ep.Send(gg, wire.Control(tagElControl, elKindDone, 0, 0, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := ep.Recv(gg, collective.AckTag(tagElControl)); err != nil {
			t.Fatal(err)
		}
	}

	g1 := announce()
	g2 := announce()
	if !reflect.DeepEqual(g1, g2) {
		t.Fatalf("duplicate announcement changed the grant:\n%v\n%v", g1, g2)
	}
	// Nothing has contributed: maxIterSeen is StartIter-1, so the join
	// boundary is iteration 1, incarnation 1, cold start, nobody dead, and
	// the log holds exactly this grant.
	want := []int64{1, 1, 0, 0, 0, 1, 1, 1}
	if !reflect.DeepEqual(g1, want) {
		t.Fatalf("grant = %v, want %v", g1, want)
	}

	// Farewell, then a straggler duplicate: the grant is still re-served
	// (same bytes), but done accounting survives — proven by the GG
	// terminating once rank 0 also says goodbye.
	farewell(ep1)
	if g3 := announce(); !reflect.DeepEqual(g3, want) {
		t.Fatalf("post-farewell duplicate changed the grant: %v", g3)
	}
	farewell(ep0)
	select {
	case err := <-ggDone:
		if err != nil {
			t.Fatalf("GG failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("GG hung: the straggling duplicate announcement resurrected done accounting")
	}
}

// TestElasticToleratesDuplicationAndReordering runs the full elastic
// world over a fabric that duplicates and reorders frames. Every exchange
// is either idempotent (contributions are deduplicated by node, cache
// replies and broadcasts carry identical content per iteration, farewells
// are ack'd) or iteration-tag-scoped, so at-least-once, out-of-order
// delivery must cost at most staleness — never a wrong aggregate, a false
// death, or a hang.
func TestElasticToleratesDuplicationAndReordering(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 8, Elastic: true}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{Seed: 13, DupProb: 0.05, ReorderProb: 0.05},
	)
	defer fab.Close()
	rec := runElastic(t, fab, cfg, 3)

	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				t.Fatalf("rank %d never applied iteration %d", r, iter)
			}
			// Duplicates must never double-count: every applied sum is a
			// subset-sum of distinct rank contributions (a held/duplicated
			// frame may cost a member staleness — its contribution skipped
			// for the round — but the power-of-two encoding would expose
			// any contribution entering a sum twice as a non-subset value).
			if got := rec.agg[r][iter][0]; got != float64(int64(got)) || int64(got) <= 0 ||
				int64(got) >= 1<<topo.Size() {
				t.Fatalf("rank %d iter %d: sum %v is not a subset of distinct contributions", r, iter, got)
			}
		}
	}
	if rec.info.Epoch != 0 {
		t.Fatalf("duplication/reordering was escalated to a death: %+v", rec.info)
	}
	if dups := fab.InjectedDups(); dups == 0 {
		t.Fatalf("plan injected no duplicates — the test exercised nothing")
	}
}
