package wlg

import (
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
)

// byzElasticWorld runs an elastic world where one member rank returns a
// sign-flipped, scaled contribution for a window of iterations, and
// records every rank's applied aggregates and counts. The healthy ranks'
// ComputeW carries a tiny sleep so the cluster advances on a wall-clock
// scale the victim's (purely local, fast) probation easily beats — the
// rejoin then lands well before MaxIter without any timing assumptions
// beyond "milliseconds beat microseconds".
func byzElasticWorld(t *testing.T, fab transport.Fabric, cfg Config, victim, evilFrom, evilUntil int) *elasticRecorder {
	t.Helper()
	topo := cfg.Topo
	rec := &elasticRecorder{
		agg:    make([][][]float64, topo.Size()),
		counts: make([][]int, topo.Size()),
	}
	var mu sync.Mutex
	for r := range rec.agg {
		rec.agg[r] = make([][]float64, cfg.MaxIter)
		rec.counts[r] = make([]int, cfg.MaxIter)
	}
	funcs := func(rank int) WorkerFuncs {
		return WorkerFuncs{
			ComputeW: func(iter int) []float64 {
				time.Sleep(4 * time.Millisecond)
				v := rankVec(3, rank)
				if rank == victim && iter >= evilFrom && iter < evilUntil {
					for i := range v {
						v[i] *= -100
					}
				}
				return v
			},
			ApplyW: func(iter int, w []float64, n int) {
				mu.Lock()
				rec.agg[rank][iter] = vec.Clone(w)
				rec.counts[rank][iter] = n
				mu.Unlock()
			},
		}
	}
	type outcome struct {
		info *RunInfo
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		info, err := RunWithInfo(fab, cfg, funcs)
		done <- outcome{info, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("byzantine elastic run failed: %v", o.err)
		}
		rec.info = o.info
	case <-time.After(120 * time.Second):
		t.Fatal("byzantine elastic run hung")
	}
	return rec
}

// TestElasticQuarantineProbationRejoin is the full semantic-fault cycle:
// a member turns Byzantine (sign-flip ×100) for a few iterations, the
// Leader's screen excludes every poisoned contribution from the node sum,
// two strikes quarantine the rank, the evidence reaches every rank via
// the GG's log, the victim self-detects, serves probation locally, and
// re-enters through the rejoin handshake once its contributions come
// clean — so the final iterations aggregate the whole world again.
func TestElasticQuarantineProbationRejoin(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{
		Topo:    topo,
		MaxIter: 30,
		Elastic: true,
		Screen:  watchdog.ScreenConfig{Enabled: true},
		// A short retry budget keeps the victim's "my Leader stopped
		// broadcasting to me" stall well under the throttled cluster's
		// remaining runtime, so the rejoin lands before MaxIter.
		Retry: collective.RetryPolicy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	fab := transport.NewChanFabric(WorldSize(topo))
	defer fab.Close()
	const victim, evilFrom, evilUntil = 3, 4, 8
	rec := byzElasticWorld(t, fab, cfg, victim, evilFrom, evilUntil)

	// The poisoned iteration is excluded deterministically: the Leader's
	// baseline matured on iterations 0–2, so iteration evilFrom flags and
	// stays out of the sum — no healthy rank ever applies a value with the
	// victim's flipped contribution folded in.
	for r := 0; r < topo.Size(); r++ {
		if r == victim {
			continue
		}
		got := rec.agg[r][evilFrom]
		if got == nil {
			t.Fatalf("rank %d never applied iteration %d", r, evilFrom)
		}
		if ranks := decodeRanks(got[0], topo.Size()); ranks[victim] {
			t.Fatalf("rank %d iter %d: poisoned contribution leaked into %v", r, evilFrom, got[0])
		}
		if rec.counts[r][evilFrom] != topo.Size()-1 {
			t.Fatalf("rank %d iter %d contributors = %d, want %d", r, evilFrom, rec.counts[r][evilFrom], topo.Size()-1)
		}
	}
	// No aggregate anywhere may carry a poisoned value: every applied sum
	// decodes to a subset of honest contributions (plus possibly the
	// victim's honest ones before and after the attack window).
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				continue
			}
			sum := rec.agg[r][iter][0]
			if sum < 1 || sum != float64(int64(sum)) || int64(sum) >= int64(1)<<topo.Size() {
				t.Fatalf("rank %d iter %d: aggregate %v is not a clean rank-subset sum", r, iter, sum)
			}
		}
	}
	// The victim must have come back: the last iteration is whole-world
	// consensus again, victim included.
	last := cfg.MaxIter - 1
	for r := 0; r < topo.Size(); r++ {
		if rec.agg[r][last] == nil {
			t.Fatalf("rank %d never applied the final iteration %d (rejoin did not land)", r, last)
		}
		if rec.counts[r][last] != topo.Size() {
			t.Fatalf("rank %d final contributors = %d, want %d (victim not re-admitted)", r, rec.counts[r][last], topo.Size())
		}
		if ranks := decodeRanks(rec.agg[r][last][0], topo.Size()); !ranks[victim] {
			t.Fatalf("rank %d final aggregate %v misses the re-admitted victim", r, rec.agg[r][last][0])
		}
	}
	if rec.info.Flagged < 2 {
		t.Fatalf("screen flagged %d contributions, want >= 2 (strike limit)", rec.info.Flagged)
	}
	if rec.info.SelfQuarantines < 1 {
		t.Fatalf("victim never entered probation: %+v", rec.info)
	}
	if !rec.info.Degraded() {
		t.Fatalf("a quarantine cycle must report degradation: %+v", rec.info)
	}
}

// TestElasticQuarantineEvidenceDupReorder replays the quarantine cycle
// over a fabric that duplicates and reorders frames. The evidence path is
// at-least-once by design (the Leader re-sends until the log confirms),
// so duplication and reordering must change nothing observable: the run
// completes, the poisoned window stays excluded, and the victim is
// quarantined exactly once per incarnation (idempotent application at the
// GG and in every rank's log fold).
func TestElasticQuarantineEvidenceDupReorder(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{
		Topo:    topo,
		MaxIter: 30,
		Elastic: true,
		Screen:  watchdog.ScreenConfig{Enabled: true},
		Retry:   collective.RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	fab := transport.NewFaultFabric(
		transport.NewChanFabric(WorldSize(topo)),
		transport.FaultPlan{Seed: 11, DupProb: 0.05, ReorderProb: 0.2},
	)
	defer fab.Close()
	// A reordered contribution is held until the member's NEXT send, so
	// the Leader skips (never observes) it — each gather has a ~ReorderProb
	// chance of not feeding the screen. The attack starts late enough that
	// baseline maturity is certain despite skips, and runs long enough that
	// observing two malicious frames (the strike limit) is near-certain.
	const victim, evilFrom, evilUntil = 1, 10, 18
	rec := byzElasticWorld(t, fab, cfg, victim, evilFrom, evilUntil)

	// Under duplication the same poisoned frame can be screened twice and
	// the same evidence applied many times; none of it may leak a flipped
	// value into any applied aggregate.
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if rec.agg[r][iter] == nil {
				continue
			}
			sum := rec.agg[r][iter][0]
			if sum < 1 || sum != float64(int64(sum)) || int64(sum) >= int64(1)<<topo.Size() {
				t.Fatalf("rank %d iter %d: aggregate %v is not a clean rank-subset sum", r, iter, sum)
			}
		}
	}
	if rec.info.Flagged < 2 {
		t.Fatalf("screen flagged %d contributions, want >= 2", rec.info.Flagged)
	}
	if rec.info.SelfQuarantines < 1 {
		t.Fatalf("victim never entered probation: %+v", rec.info)
	}
	// Some healthy iteration inside the attack window ran without the
	// victim — exclusion happened despite the noisy fabric.
	excluded := false
	for iter := evilFrom; iter < cfg.MaxIter && !excluded; iter++ {
		if rec.agg[0][iter] != nil && !decodeRanks(rec.agg[0][iter][0], topo.Size())[victim] {
			excluded = true
		}
	}
	if !excluded {
		t.Fatal("victim was never excluded from any aggregate")
	}
}
