package collective

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// refCenter is an independent brute-force reference for the robust center:
// sort a copy, then apply the statistic by its textbook definition. Kept
// deliberately naive so a bug in robustCenter cannot hide in a shared
// helper.
func refCenter(vals []float64, spec AggSpec) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	switch spec.Kind {
	case AggMedian:
		if n%2 == 1 {
			return s[n/2]
		}
		return (s[n/2-1] + s[n/2]) / 2
	case AggTrimmedMean:
		f := spec.TrimF
		if 2*f >= n {
			f = (n - 1) / 2
		}
		sum := 0.0
		for _, x := range s[f : n-f] {
			sum += x
		}
		return sum / float64(n-2*f)
	default:
		sum := 0.0
		for _, x := range s {
			sum += x
		}
		return sum / float64(n)
	}
}

// refRobustReduce computes the expected full-width robust allreduce output:
// per coordinate, center over every contributor's value (implicit zero for
// missing support) times the contributor count.
func refRobustReduce(vs []*sparse.Vector, dim int, spec AggSpec) []float64 {
	n := len(vs)
	dense := make([][]float64, n)
	for i, v := range vs {
		dense[i] = v.ToDense()
	}
	out := make([]float64, dim)
	col := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i := range dense {
			col[i] = dense[i][j]
		}
		out[j] = refCenter(col, spec) * float64(n)
	}
	return out
}

func robustSpecs() map[string]AggSpec {
	return map[string]AggSpec{
		"trim1":  {Kind: AggTrimmedMean, TrimF: 1},
		"trim2":  {Kind: AggTrimmedMean, TrimF: 2},
		"median": {Kind: AggMedian},
	}
}

func TestRobustCenterMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	specs := robustSpecs()
	// Include the degenerate trims: 2f >= n must clamp so at least one
	// value survives.
	specs["trim-overshoot"] = AggSpec{Kind: AggTrimmedMean, TrimF: 50}
	for name, spec := range specs {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 9} {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = r.NormFloat64() * 10
			}
			sorted := append([]float64(nil), vals...)
			sort.Float64s(sorted)
			got := robustCenter(sorted, spec)
			want := refCenter(vals, spec)
			if got != want {
				t.Fatalf("%s n=%d: robustCenter = %v, reference = %v", name, n, got, want)
			}
		}
	}
}

func TestCombineDenseMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for name, spec := range robustSpecs() {
		for _, n := range []int{1, 2, 3, 5, 8} {
			dim := 37
			srcs := make([][]float64, n)
			for i := range srcs {
				srcs[i] = make([]float64, dim)
				for j := range srcs[i] {
					srcs[i][j] = r.NormFloat64()
				}
			}
			dst := make([]float64, dim)
			var sortBuf []float64
			sortBuf = CombineDense(spec, dst, srcs, sortBuf)
			col := make([]float64, n)
			for j := 0; j < dim; j++ {
				for i := range srcs {
					col[i] = srcs[i][j]
				}
				want := refCenter(col, spec) * float64(n)
				if dst[j] != want {
					t.Fatalf("%s n=%d coord %d: got %v want %v", name, n, j, dst[j], want)
				}
			}
			// The returned scratch must be reusable without reallocation.
			before := &sortBuf[0]
			CombineDense(spec, dst, srcs, sortBuf)
			if &sortBuf[0] != before {
				t.Fatalf("%s: warmed CombineDense reallocated its sort scratch", name)
			}
		}
	}
}

// TestCombineDenseSuppressesOutlier pins the property the whole PR exists
// for: one sign-flipped contributor among n cannot move the trimmed mean
// or median beyond the honest value range.
func TestCombineDenseSuppressesOutlier(t *testing.T) {
	n, dim := 5, 11
	srcs := make([][]float64, n)
	for i := range srcs {
		srcs[i] = make([]float64, dim)
		for j := range srcs[i] {
			srcs[i][j] = 1 + 0.01*float64(i)
		}
	}
	for j := range srcs[n-1] {
		srcs[n-1][j] *= -1000 // Byzantine sign-flip, scaled
	}
	for name, spec := range robustSpecs() {
		dst := make([]float64, dim)
		CombineDense(spec, dst, srcs, nil)
		for j, v := range dst {
			center := v / float64(n)
			if center < 1 || center > 1.04 {
				t.Fatalf("%s coord %d: center %v escaped the honest range [1, 1.04]", name, j, center)
			}
		}
	}
	// The mean, by contrast, is dominated by the attacker — the contrast
	// the robust specs are measured against.
	meanDst := make([]float64, dim)
	CombineDense(AggSpec{Kind: AggMean}, meanDst, srcs, nil)
	if meanDst[0]/float64(n) > 0 {
		t.Fatalf("mean center %v should be dragged negative by the attacker", meanDst[0]/float64(n))
	}
}

func TestCombineSparse(t *testing.T) {
	var ws Workspace
	dim := 9
	mk := func(pairs ...float64) *sparse.Vector {
		v := sparse.NewVector(dim, 0)
		for i := 0; i+1 < len(pairs); i += 2 {
			v.Append(int32(pairs[i]), pairs[i+1])
		}
		return v
	}
	spec := AggSpec{Kind: AggMedian}

	t.Run("nil-srcs-skipped", func(t *testing.T) {
		// nil entries model dead/quarantined ranks: n counts only the
		// non-nil contributors.
		srcs := []*sparse.Vector{mk(0, 3), nil, mk(0, 5), nil, mk(0, 7)}
		out := ws.CombineSparse(spec, dim, srcs, nil)
		want := make([]float64, dim)
		want[0] = 5 * 3 // median(3,5,7) × 3 contributors
		if !vec.Equal(out.ToDense(), want) {
			t.Fatalf("got %v want %v", out.ToDense(), want)
		}
	})

	t.Run("implicit-zeros-count", func(t *testing.T) {
		// A contributor with no entry at a coordinate still contributes a
		// zero to the statistic there: median(0, 0, 9) = 0.
		srcs := []*sparse.Vector{mk(2, 9), mk(), mk()}
		out := ws.CombineSparse(spec, dim, srcs, nil)
		if out.NNZ() != 0 {
			t.Fatalf("median over {9, 0, 0} should be 0 (unstored), got %v", out.ToDense())
		}
	})

	t.Run("all-nil", func(t *testing.T) {
		out := ws.CombineSparse(spec, dim, []*sparse.Vector{nil, nil}, nil)
		if out.Dim != dim || out.NNZ() != 0 {
			t.Fatalf("empty combine should yield an empty dim-%d vector, got dim=%d nnz=%d", dim, out.Dim, out.NNZ())
		}
	})

	t.Run("destination-reuse", func(t *testing.T) {
		srcs := []*sparse.Vector{mk(1, 2), mk(1, 4), mk(1, 6)}
		out := ws.CombineSparse(spec, dim, srcs, nil)
		again := ws.CombineSparse(spec, dim, srcs, out)
		if again != out {
			t.Fatal("CombineSparse dropped the caller's destination")
		}
		want := make([]float64, dim)
		want[1] = 4 * 3
		if !vec.Equal(again.ToDense(), want) {
			t.Fatalf("reused destination got %v want %v", again.ToDense(), want)
		}
	})

	t.Run("random-vs-reference", func(t *testing.T) {
		r := rand.New(rand.NewSource(5))
		for name, spec := range robustSpecs() {
			vs, _ := sparseInputs(r, 6, 43, 0.3)
			out := ws.CombineSparse(spec, 43, vs, nil)
			want := refRobustReduce(vs, 43, spec)
			if !vec.Equal(out.ToDense(), want) {
				t.Fatalf("%s: CombineSparse diverges from brute-force reference", name)
			}
		}
	})
}

// TestPSRAllreduceSparseAggMeanBitIdentical pins the bit-identity contract:
// with the mean spec the Agg entry point must return exactly what the
// original kernel returns — same bits, same traced bytes.
func TestPSRAllreduceSparseAggMeanBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(n)))
			vs, _ := sparseInputs(r, n, 73, 0.3)
			run := func(agg bool) ([][]float64, []int) {
				var mu sync.Mutex
				got := make([][]float64, n)
				bytes := make([]int, n)
				runRanks(t, n, func(ep transport.Endpoint) error {
					var ws Workspace
					out := new(sparse.Vector)
					var tr Trace
					var err error
					if agg {
						tr, err = ws.PSRAllreduceSparseAgg(ep, WorldGroup(n), 70, vs[ep.Rank()], out, AggSpec{Kind: AggMean})
					} else {
						tr, err = ws.PSRAllreduceSparse(ep, WorldGroup(n), 70, vs[ep.Rank()], out)
					}
					if err != nil {
						return err
					}
					mu.Lock()
					got[ep.Rank()] = out.ToDense()
					bytes[ep.Rank()] = tr.TotalBytes()
					mu.Unlock()
					return nil
				})
				return got, bytes
			}
			plain, plainBytes := run(false)
			mean, meanBytes := run(true)
			for rk := range plain {
				if !vec.Equal(plain[rk], mean[rk]) {
					t.Fatalf("rank %d: AggMean result diverges bitwise from the original kernel", rk)
				}
				if plainBytes[rk] != meanBytes[rk] {
					t.Fatalf("rank %d: AggMean traced %dB, original %dB", rk, meanBytes[rk], plainBytes[rk])
				}
			}
		})
	}
}

func TestPSRAllreduceSparseAggRobustMatchesReference(t *testing.T) {
	for name, spec := range robustSpecs() {
		for _, n := range []int{1, 2, 3, 5, 8} {
			for _, dim := range []int{7, 64, 301} {
				t.Run(fmt.Sprintf("%s/n=%d/dim=%d", name, n, dim), func(t *testing.T) {
					r := rand.New(rand.NewSource(int64(n*131 + dim)))
					vs, _ := sparseInputs(r, n, dim, 0.3)
					want := refRobustReduce(vs, dim, spec)
					var mu sync.Mutex
					results := make([]*sparse.Vector, n)
					runRanks(t, n, func(ep transport.Endpoint) error {
						var ws Workspace
						out := new(sparse.Vector)
						if _, err := ws.PSRAllreduceSparseAgg(ep, WorldGroup(n), 90, vs[ep.Rank()], out, spec); err != nil {
							return err
						}
						mu.Lock()
						results[ep.Rank()] = out
						mu.Unlock()
						return nil
					})
					for rk, got := range results {
						if err := got.Check(); err != nil {
							t.Fatalf("rank %d invariant: %v", rk, err)
						}
						if !vec.Equal(got.ToDense(), want) {
							t.Fatalf("rank %d robust result diverges from brute-force reference", rk)
						}
					}
				})
			}
		}
	}
}

// shardedRobustWant mirrors shardedWant for the robust kinds: per block,
// center over the block's STATIC subscriber set (implicit zeros for
// subscribers without stored support) times the subscriber count.
func shardedRobustWant(plan *shard.Plan, vs []*sparse.Vector, spec AggSpec) [][]float64 {
	dim := plan.Part.Dim
	dense := make([][]float64, len(vs))
	for i, v := range vs {
		dense[i] = v.ToDense()
	}
	blockRed := make([]float64, dim)
	for b := 0; b < plan.Part.Blocks; b++ {
		c := plan.Part.Chunk(b)
		var subs []int
		for i := range vs {
			if subscribes(plan, i, b) {
				subs = append(subs, i)
			}
		}
		if len(subs) == 0 {
			continue
		}
		col := make([]float64, len(subs))
		for j := c.Lo; j < c.Hi; j++ {
			for k, i := range subs {
				col[k] = dense[i][j]
			}
			blockRed[j] = refCenter(col, spec) * float64(len(subs))
		}
	}
	want := make([][]float64, len(vs))
	for i := range vs {
		want[i] = make([]float64, dim)
		for _, b := range plan.Subs[i] {
			c := plan.Part.Chunk(int(b))
			copy(want[i][c.Lo:c.Hi], blockRed[c.Lo:c.Hi])
		}
	}
	return want
}

func TestShardAllreduceSparseAggRobustMatchesReference(t *testing.T) {
	for name, spec := range robustSpecs() {
		for _, tc := range []struct {
			p, dim, blocks int
			q              float64
		}{
			{2, 40, 2, 0.7},
			{3, 50, 7, 0.5},
			{5, 128, 16, 0.4},
		} {
			t.Run(fmt.Sprintf("%s/p=%d/B=%d", name, tc.p, tc.blocks), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(tc.p*77 + tc.blocks)))
				plan := randomPlan(r, tc.dim, tc.blocks, tc.p, tc.q)
				vs := shardedInputs(r, plan, 0.6)
				want := shardedRobustWant(plan, vs, spec)
				g := WorldGroup(tc.p)
				var mu sync.Mutex
				results := make([][]float64, tc.p)
				runRanks(t, tc.p, func(ep transport.Endpoint) error {
					var ws Workspace
					out := new(sparse.Vector)
					if _, err := ws.ShardAllreduceSparseAgg(ep, g, 400, plan, vs[ep.Rank()], out, spec); err != nil {
						return err
					}
					if err := out.Check(); err != nil {
						return err
					}
					mu.Lock()
					results[ep.Rank()] = out.ToDense()
					mu.Unlock()
					return nil
				})
				for rk, got := range results {
					if !vec.Equal(got, want[rk]) {
						t.Fatalf("rank %d sharded robust result diverges from reference", rk)
					}
				}
			})
		}
	}
}

// TestShardAllreduceSparseAggMeanBitIdentical: the sharded Agg entry point
// with the mean spec delegates to the original sharded kernel untouched.
func TestShardAllreduceSparseAggMeanBitIdentical(t *testing.T) {
	p, dim, blocks := 4, 64, 16
	r := rand.New(rand.NewSource(41))
	plan := randomPlan(r, dim, blocks, p, 0.4)
	vs := shardedInputs(r, plan, 0.6)
	g := WorldGroup(p)
	run := func(agg bool) [][]float64 {
		var mu sync.Mutex
		got := make([][]float64, p)
		runRanks(t, p, func(ep transport.Endpoint) error {
			var ws Workspace
			out := new(sparse.Vector)
			var err error
			if agg {
				_, err = ws.ShardAllreduceSparseAgg(ep, g, 500, plan, vs[ep.Rank()], out, AggSpec{Kind: AggMean})
			} else {
				_, err = ws.ShardAllreduceSparse(ep, g, 500, plan, vs[ep.Rank()], out)
			}
			if err != nil {
				return err
			}
			mu.Lock()
			got[ep.Rank()] = out.ToDense()
			mu.Unlock()
			return nil
		})
		return got
	}
	plain := run(false)
	mean := run(true)
	for rk := range plain {
		if !vec.Equal(plain[rk], mean[rk]) {
			t.Fatalf("rank %d: sharded AggMean diverges bitwise from the original kernel", rk)
		}
	}
}

// TestRobustScratchDimensionChange guards the reset path that re-maps rows
// onto different flat positions: stale cells from a wider block must not
// leak into a narrower one.
func TestRobustScratchDimensionChange(t *testing.T) {
	var ws Workspace
	spec := AggSpec{Kind: AggMedian}
	wide := sparse.NewVector(8, 0)
	for j := 0; j < 8; j++ {
		wide.Append(int32(j), 100)
	}
	ws.CombineSparse(spec, 8, []*sparse.Vector{wide, wide, wide}, nil)

	narrow := sparse.NewVector(3, 0)
	narrow.Append(0, 1)
	out := ws.CombineSparse(spec, 3, []*sparse.Vector{narrow, narrow}, nil)
	want := make([]float64, 3)
	want[0] = 1 * 2 // median(1,1) × 2; coords 1,2 untouched ⇒ 0
	if !vec.Equal(out.ToDense(), want) {
		t.Fatalf("stale scratch leaked across a dimension change: got %v want %v", out.ToDense(), want)
	}
}

func TestParseAgg(t *testing.T) {
	for name, want := range map[string]Agg{
		"":                 AggMean,
		AggMeanName:        AggMean,
		AggTrimmedMeanName: AggTrimmedMean,
		AggMedianName:      AggMedian,
	} {
		got, err := ParseAgg(name)
		if err != nil || got != want {
			t.Fatalf("ParseAgg(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() != name && name != "" {
			t.Fatalf("Agg(%v).String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseAgg("winsorized"); err == nil {
		t.Fatal("ParseAgg accepted an unknown aggregator")
	}
}
