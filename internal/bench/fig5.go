package bench

import (
	"fmt"

	"psrahgadmm/internal/core"
	"psrahgadmm/internal/metrics"
)

// fig5Algorithms are the three lines of each Figure 5 panel.
func fig5Algorithms() []core.Algorithm {
	return []core.Algorithm{core.PSRAHGADMM, core.ADMMLib, core.ADADMM}
}

// Fig5 reproduces Figure 5: relative objective error (eq. 18) versus
// iteration for PSRA-HGADMM, ADMMLib, and AD-ADMM on each dataset, on a
// fixed 8-node cluster with 4/8/16 workers per node (32/64/128 workers).
// GQ is half the nodes, Min_barrier half the workers, Max_delay 5 — the
// paper's §5.3 settings.
func Fig5(opts Options) error {
	opts.fill()
	nodes := 8
	wpns := []int{4, 8, 16}
	if opts.Quick {
		nodes = 4
		wpns = []int{2, 4}
	}

	for _, dcfg := range BenchDatasets(opts.Seed, opts.Quick) {
		l, err := load(dcfg)
		if err != nil {
			return err
		}
		fstar, err := l.referenceOptimum(opts.Rho, opts.Lambda)
		if err != nil {
			return err
		}
		for _, wpn := range wpns {
			workers := nodes * wpn
			title := fmt.Sprintf("Figure 5 — %s, %d workers (%d nodes × %d): relative error vs iteration (f* = %s)",
				dcfg.Name, workers, nodes, wpn, metrics.FormatFloat(fstar))
			tbl := metrics.NewTable(title, "iter", "psra-hgadmm", "admmlib", "ad-admm")

			series := make(map[core.Algorithm][]float64)
			for _, alg := range fig5Algorithms() {
				cfg := runCfg(alg, nodes, wpn, opts)
				res, err := core.Run(cfg, l.train, core.RunOptions{FStar: fstar, HaveFStar: true})
				if err != nil {
					return fmt.Errorf("fig5 %s/%s/%d: %w", dcfg.Name, alg, workers, err)
				}
				vals := make([]float64, len(res.History))
				for i, h := range res.History {
					vals[i] = h.RelError
				}
				series[alg] = vals
			}
			step := opts.MaxIter / 10
			if step < 1 {
				step = 1
			}
			for it := 0; it < opts.MaxIter; it += step {
				tbl.AddRow(it+1,
					series[core.PSRAHGADMM][it],
					series[core.ADMMLib][it],
					series[core.ADADMM][it])
			}
			last := opts.MaxIter - 1
			if (opts.MaxIter-1)%step != 0 {
				tbl.AddRow(last+1,
					series[core.PSRAHGADMM][last],
					series[core.ADMMLib][last],
					series[core.ADADMM][last])
			}
			if err := emit(opts, tbl); err != nil {
				return err
			}

			final := func(a core.Algorithm) float64 { return series[a][last] }
			fmt.Fprintf(opts.Out,
				"final relative error: psra-hgadmm=%s admmlib=%s ad-admm=%s\n",
				metrics.FormatFloat(final(core.PSRAHGADMM)),
				metrics.FormatFloat(final(core.ADMMLib)),
				metrics.FormatFloat(final(core.ADADMM)))
			for _, alg := range fig5Algorithms() {
				fmt.Fprintf(opts.Out, "%-12s %s\n", alg, metrics.Sparkline(series[alg]))
			}
			fmt.Fprintln(opts.Out)
		}
	}
	return nil
}
