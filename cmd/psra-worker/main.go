// Command psra-worker is one rank of a genuinely distributed PSRA-HGADMM
// run over a TCP mesh — the multi-process counterpart of the in-process
// engine. Start nodes×wpn worker processes plus one Group Generator
// process (the last rank); every process receives the same -addrs list and
// its own -rank:
//
//	ADDRS=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//	psra-worker -rank 0 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 1 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 2 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 3 -addrs $ADDRS -nodes 2 -wpn 2 &
//	psra-worker -rank 4 -addrs $ADDRS -nodes 2 -wpn 2   # the GG
//
// Every process generates the identical synthetic dataset from -seed and
// takes the shard matching its rank, so no data distribution step is
// needed.
//
// With -elastic the run survives worker deaths: nodes re-elect their
// Leader, inter-node aggregation routes through the GG (which caches
// results for recovery), and surviving ranks train to completion on the
// shrunken world. -start-iter resumes a run's tail after a restart.
//
// With -rejoin (requires -elastic) a relaunched process re-enters a run
// that is still going: the endpoint re-dials the mesh as a new
// incarnation of its rank, the GG grants a join iteration plus the latest
// consensus aggregate for a warm start, and every live rank folds the
// returner back in at the same boundary. Pair it with -snapshot-dir,
// which saves this rank's (x, y, z) every -snapshot-every iterations, so
// the relaunch also restores local primal/dual state instead of starting
// from zero:
//
//	psra-worker -rank 2 ... -elastic -snapshot-dir /tmp/psra   # dies
//	psra-worker -rank 2 ... -elastic -snapshot-dir /tmp/psra -rejoin
//
// Exit codes tell orchestration what happened:
//
//	0 — clean completion, nobody lost
//	1 — local failure (bad flags, dataset, I/O)
//	3 — unrecoverable peer loss: a peer died and the run could not
//	    continue without it (always the outcome of a death without
//	    -elastic)
//	4 — degraded completion: all iterations finished, but peers died or
//	    contributions were skipped along the way (-elastic only)
//	5 — divergence: the -watchdog tripped on a non-finite or exploding
//	    value; relaunch from the last good -snapshot-dir checkpoint with
//	    -start-iter instead of restarting cold
//	6 — aborted: robust quorum unreachable — more ranks are quarantined by
//	    the -screen than the robust -aggregator tolerates, so the
//	    remaining faulty minority could dominate the trim; investigate the
//	    quarantined ranks before relaunching
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	psra "psrahgadmm"
	"psrahgadmm/internal/checkpoint"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/prof"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
	"psrahgadmm/internal/wlg"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this process's rank (workers first, GG last)")
		addrs     = flag.String("addrs", "", "comma-separated host:port of every rank")
		nodes     = flag.Int("nodes", 2, "logical nodes")
		wpn       = flag.Int("wpn", 2, "workers per node")
		iters     = flag.Int("iters", 30, "outer iterations")
		threshold = flag.Int("threshold", 0, "GQ grouping threshold in nodes (0 = all)")
		codec     = flag.String("codec", "", "exchange codec: sparse | sparse-q8 | sparse-q16 | dense | dense-f32 | topk | topk-q8 (empty = exact)")
		codecKB   = flag.Int64("codec-budget-bytes", 0, "per-round wire budget for top-k codecs: k adapts to stay under it (0 = no budget)")
		shardBlk  = flag.Int("shard-blocks", 0, "route the sparse inter-Leader aggregation through the shard-aware collective with this many blocks (0 = classic PSR-Allreduce; topk codecs only)")
		rho       = flag.Float64("rho", 1, "ADMM penalty parameter ρ")
		lambda    = flag.Float64("lambda", 1, "L1 regularization weight λ")
		synth     = flag.String("synth", "news20", "synthetic preset: news20 | webspam | url")
		scale     = flag.Float64("scale", 0.001, "preset scale")
		seed      = flag.Int64("seed", 1, "generation seed (must match across ranks)")
		timeout   = flag.Duration("timeout", time.Minute, "mesh establishment timeout")
		heartbeat = flag.Duration("heartbeat", time.Second, "keepalive interval on idle connections (negative disables)")
		peerDead  = flag.Duration("peer-timeout", 15*time.Second, "declare a peer dead after this much silence (0 disables)")
		elastic   = flag.Bool("elastic", false, "survive peer deaths: re-elect Leaders and keep training (exit 4 when degraded)")
		minBarr   = flag.Int("min-barrier", 0, "SSP partial barrier in workers: Leaders stop waiting for laggards once their per-node share is gathered (0 = full gather; requires -elastic)")
		maxDelay  = flag.Int("max-delay", 0, "staleness bound in rounds for -min-barrier laggards (0 = the paper's Max_delay of 5)")
		startIter = flag.Int("start-iter", 0, "first iteration to execute (resume a run's tail after a restart)")
		rejoin    = flag.Bool("rejoin", false, "re-enter a running elastic mesh as a new incarnation of this rank (requires -elastic)")
		snapDir   = flag.String("snapshot-dir", "", "directory for this rank's periodic state snapshots (warm-starts x/y/z with -rejoin)")
		snapEvery = flag.Int("snapshot-every", 5, "snapshot every k-th iteration (with -snapshot-dir)")
		wdOn      = flag.Bool("watchdog", false, "divergence watchdog: scan contributions and aggregates for NaN/Inf and magnitude explosions (exit 5 on a trip)")
		wdWindow  = flag.Int("watchdog-window", 0, "healthy iterations forming the explosion baseline (0 = default 8)")
		wdFactor  = flag.Float64("watchdog-factor", 0, "explosion threshold as a multiple of the window floor (0 = default 1e4)")
		aggName   = flag.String("aggregator", "", "consensus reduce statistic: mean | trimmed-mean | coordinate-median (empty = mean; robust choices require -elastic)")
		trimF     = flag.Int("trim-f", 0, "trimmed-mean per-side trim count in nodes (0 = default 1 with -aggregator=trimmed-mean)")
		screenOn  = flag.Bool("screen", false, "contribution screen: Leaders score every gathered contribution and quarantine sustained outliers (requires -elastic; exit 6 when quarantines exceed the robust tolerance)")
		quarRnds  = flag.Int("quarantine-rounds", 0, "consecutive clean self-probes a quarantined rank needs to rejoin (0 = default 3)")
	)
	profiles := prof.Register(flag.CommandLine)
	flag.Parse()

	if err := profiles.Start(); err != nil {
		fatal(err)
	}
	topo := simnet.Topology{Nodes: *nodes, WorkersPerNode: *wpn}
	world := wlg.WorldSize(topo)
	addrList := strings.Split(*addrs, ",")
	if len(addrList) != world {
		fatal(fmt.Errorf("need %d addresses (workers + GG), got %d", world, len(addrList)))
	}
	if *rank < 0 || *rank >= world {
		fatal(fmt.Errorf("rank %d out of [0,%d)", *rank, world))
	}
	if *rejoin && !*elastic {
		fatal(fmt.Errorf("-rejoin requires -elastic: the fail-stop protocol cannot re-admit ranks"))
	}
	if *minBarr > 0 && !*elastic {
		fatal(fmt.Errorf("-min-barrier requires -elastic: the fail-stop gather is a full barrier"))
	}
	if *screenOn && !*elastic {
		fatal(fmt.Errorf("-screen requires -elastic: quarantine is a membership transition only the elastic protocol can absorb"))
	}
	if *aggName != "" && *aggName != "mean" && !*elastic {
		fatal(fmt.Errorf("-aggregator=%s requires -elastic: the robust combine point is the elastic GG", *aggName))
	}
	if *snapEvery < 1 {
		fatal(fmt.Errorf("-snapshot-every must be >= 1, got %d", *snapEvery))
	}
	if err := validateExplicitFlags(); err != nil {
		fatal(err)
	}

	ep, err := transport.NewTCPEndpoint(*rank, addrList, transport.TCPOptions{
		DialTimeout:       *timeout,
		HeartbeatInterval: *heartbeat,
		PeerTimeout:       *peerDead,
		Rejoin:            *rejoin,
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()

	cfg := wlg.Config{
		Topo:             topo,
		MaxIter:          *iters,
		GroupThreshold:   *threshold,
		Codec:            exchange.Kind(*codec),
		CodecBudgetBytes: *codecKB,
		ShardBlocks:      *shardBlk,
		Elastic:          *elastic,
		MinBarrier:       *minBarr,
		MaxDelay:         *maxDelay,
		StartIter:        *startIter,
		Rejoin:           *rejoin,
		Aggregator:       *aggName,
		TrimF:            *trimF,
		QuarantineRounds: *quarRnds,
	}
	if *screenOn {
		cfg.Screen = watchdog.ScreenConfig{Enabled: true}
	}
	if *wdOn {
		cfg.Watchdog = watchdog.Config{
			Enabled:        true,
			Window:         *wdWindow,
			ResidualFactor: *wdFactor,
		}
	}
	if *rank == wlg.GGRank(topo) {
		fmt.Printf("rank %d: group generator serving %d nodes × %d iterations\n", *rank, *nodes, *iters)
		if err := wlg.RunGG(ep, cfg); err != nil {
			fatal(err)
		}
		if err := profiles.Stop(); err != nil {
			fatal(err)
		}
		return
	}

	var preset psra.SynthConfig
	switch *synth {
	case "news20":
		preset = psra.News20Like(*scale, *seed)
	case "webspam":
		preset = psra.WebspamLike(*scale, *seed)
	case "url":
		preset = psra.URLLike(*scale, *seed)
	default:
		fatal(fmt.Errorf("unknown preset %q", *synth))
	}
	train, _, err := psra.Generate(preset)
	if err != nil {
		fatal(err)
	}
	shard := train.Shard(topo.Size())[*rank]
	dim := train.Dim()
	fmt.Printf("rank %d: node %d, shard %d×%d (%d nnz)\n",
		*rank, topo.NodeOf(*rank), shard.Rows(), dim, shard.NNZ())

	x := make([]float64, dim)
	y := make([]float64, dim)
	z := make([]float64, dim)
	w := make([]float64, dim)
	var store checkpoint.Store
	if *snapDir != "" {
		ds, err := checkpoint.NewDirStore(*snapDir, fmt.Sprintf("rank-%d.ckpt", *rank))
		if err != nil {
			fatal(err)
		}
		store = ds
	}
	if *rejoin && store != nil {
		// Restore local primal/dual state from the last snapshot. Copy INTO
		// the slices — the prox objective below captures y and z by
		// reference, and the consensus runtime owns the same views.
		if snap, ok := loadSnapshot(store, *rank, dim); ok {
			copy(x, snap.XA)
			copy(y, snap.YA)
			copy(z, snap.ZDense)
			fmt.Printf("rank %d: restored x/y/z from snapshot\n", *rank)
		} else {
			fmt.Printf("rank %d: no usable snapshot, rejoining with zero local state\n", *rank)
		}
	}
	obj := solver.NewLogisticProx(shard.X, shard.Labels, *rho, y, z)

	funcs := wlg.WorkerFuncs{
		ComputeW: func(iter int) []float64 {
			solver.TRON(obj, x, solver.TronOptions{MaxIter: 10, MaxCG: 20})
			solver.WLocal(w, y, x, *rho)
			return w
		},
		ApplyW: func(iter int, bigW []float64, contributors int) {
			solver.ZUpdateL1(z, bigW, *lambda, *rho, contributors)
			solver.DualUpdate(y, x, z, *rho)
			if *rank == 0 && (iter%5 == 0 || iter == *iters-1) {
				fmt.Printf("rank 0: iter %3d  local loss %.4f  ‖z‖₁ %.4f  z nnz %d  (group of %d workers)\n",
					iter+1, obj.LocalLoss(z), vec.Nrm1(z), vec.CountNonzero(z), contributors)
			}
			if store != nil && ((iter+1)%*snapEvery == 0 || iter == *iters-1) {
				saveSnapshot(store, *rank, iter+1, *rho, x, y, z)
			}
		},
		Rejoined: func(joinIter int, bigW []float64, contributors int) {
			if bigW == nil {
				fmt.Printf("rank %d: rejoined at iteration %d (cold: no aggregate flushed yet)\n", *rank, joinIter)
				return
			}
			// The GG's latest flushed aggregate is the freshest consensus
			// view; derive z from it so the first local solve chases the
			// world's current iterate, not the snapshot's stale one.
			solver.ZUpdateL1(z, bigW, *lambda, *rho, contributors)
			fmt.Printf("rank %d: rejoined at iteration %d, warm-started from %d contributors\n",
				*rank, joinIter, contributors)
		},
	}
	info, err := wlg.RunWorkerInfo(ep, cfg, funcs)
	if err != nil {
		fatal(err)
	}
	// Profiles flush before the degraded os.Exit below: a degraded-but-
	// complete run is a clean exit as far as profiling is concerned.
	if err := profiles.Stop(); err != nil {
		fatal(err)
	}
	if info.Degraded() {
		fmt.Printf("rank %d: done DEGRADED — %d workers alive, %d deaths absorbed, %d contributions skipped, %d short rounds, %d screened out, %d self-quarantines\n",
			*rank, info.LiveWorkers, info.Epoch, info.Skipped, info.ShortRounds, info.Flagged, info.SelfQuarantines)
		os.Exit(4)
	}
	fmt.Printf("rank %d: done\n", *rank)
}

// saveSnapshot persists this rank's (x, y, z) as a one-worker PSCK
// snapshot. A failed save is reported but never kills training: the
// snapshot is an optimization for a future rejoin, not run state.
func saveSnapshot(store checkpoint.Store, rank, iter int, rho float64, x, y, z []float64) {
	snap := &exchange.Snapshot{
		Algorithm: "psra-worker",
		Iter:      int32(iter),
		Rho:       rho,
		Workers:   []exchange.WorkerSnap{{Rank: int32(rank), XA: x, YA: y, ZDense: z}},
	}
	if err := store.Save(exchange.EncodeSnapshot(snap)); err != nil {
		fmt.Fprintf(os.Stderr, "psra-worker: rank %d snapshot save failed: %v\n", rank, err)
	}
}

// loadSnapshot returns this rank's WorkerSnap from the store, or ok=false
// when there is nothing usable (no file, corrupt bytes, wrong rank, or a
// dimension mismatch from a differently-configured run). All of those are
// survivable — the rejoin still warm-starts z from the GG's aggregate.
func loadSnapshot(store checkpoint.Store, rank, dim int) (*exchange.WorkerSnap, bool) {
	data, ok, err := store.Load()
	if err != nil || !ok {
		if err != nil {
			fmt.Fprintf(os.Stderr, "psra-worker: rank %d snapshot load failed: %v\n", rank, err)
		}
		return nil, false
	}
	snap, err := exchange.DecodeSnapshot(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psra-worker: rank %d snapshot rejected: %v\n", rank, err)
		return nil, false
	}
	for i := range snap.Workers {
		ws := &snap.Workers[i]
		if int(ws.Rank) == rank && len(ws.XA) == dim && len(ws.YA) == dim && len(ws.ZDense) == dim {
			return ws, true
		}
	}
	return nil, false
}

// validateExplicitFlags rejects nonsense values for flags whose zero
// default means "auto": leaving them unset is fine, but explicitly passing
// a non-positive value is a typo'd invocation that would otherwise be
// silently reinterpreted as the default.
func validateExplicitFlags() error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		if err != nil {
			return
		}
		switch f.Name {
		case "shard-blocks", "codec-budget-bytes", "min-barrier", "max-delay",
			"trim-f", "quarantine-rounds":
			if v, perr := strconv.ParseInt(f.Value.String(), 10, 64); perr != nil || v <= 0 {
				err = fmt.Errorf("-%s must be a positive integer, got %s", f.Name, f.Value.String())
			}
		}
	})
	return err
}

// fatal exits nonzero with a diagnostic. Peer loss gets its own exit code
// (3, "unrecoverable") and a pointed message so orchestration (and humans
// reading logs) can tell "a neighbor died and took the run with it" apart
// from local failures — and apart from exit 4, a degraded-but-complete
// elastic run. A watchdog trip exits 5: the state is numerically poisoned,
// so the right relaunch is -rejoin/-start-iter from the last good
// -snapshot-dir checkpoint, not a plain restart.
func fatal(err error) {
	var pd *transport.PeerDownError
	if errors.As(err, &pd) {
		fmt.Fprintf(os.Stderr, "psra-worker: peer rank %d is down (%v); aborting run: %v\n", pd.Peer, pd.Cause, err)
		os.Exit(3)
	}
	if errors.Is(err, watchdog.ErrDiverged) {
		fmt.Fprintf(os.Stderr, "psra-worker: training diverged; relaunch from the last snapshot with -start-iter: %v\n", err)
		os.Exit(5)
	}
	if errors.Is(err, watchdog.ErrQuorumLost) {
		fmt.Fprintf(os.Stderr, "psra-worker: aborted: robust quorum unreachable: %v\n", err)
		os.Exit(6)
	}
	fmt.Fprintln(os.Stderr, "psra-worker:", err)
	os.Exit(1)
}
