// Fail-recover (rejoin) extension of the elastic WLG runtime: a worker
// that died can come back as a NEW INCARNATION of its rank and be folded
// into the running world, restoring full-data convergence.
//
// The handshake is GG-centric, like everything else in elastic mode:
//
//  1. The returning rank announces itself (elKindRejoin) on the fixed
//     control tag. Announcements are idempotent: loss-driven re-announces
//     and fabric-duplicated frames re-serve the SAME grant and never mint
//     a second incarnation.
//  2. The GG mints the grant: a join iteration, a fresh incarnation
//     number, the current dead set (to seed the rejoiner's membership
//     view), and — when any group has flushed — the latest aggregate for
//     a warm start. It revives the rank in its own tracker via MarkUpAt
//     and appends (rank, joinIter, incarnation) to an append-only rejoin
//     log.
//  3. The log piggybacks on every subsequent GG control reply, and
//     Leaders forward it in their broadcast controls, so it reaches every
//     live rank without extra messages. Each rank applies an entry at the
//     first iteration boundary >= joinIter (MarkUpAt is idempotent and
//     incarnation-guarded, so replay is free and a stale entry cannot
//     resurrect a newer death). All ranks therefore re-admit the rejoiner
//     at the SAME boundary — no split-brain window where one Leader
//     gathers from it and another does not.
//
// The join iteration is maxIterSeen+2, where maxIterSeen is the highest
// iteration any contribution or recovery request has named. Safety: at
// grant time no contribution for maxIterSeen+1 has been received, so
// every GG reply for iteration maxIterSeen+1 — and hence every Leader
// broadcast for it — is sent after the grant and carries the log. Every
// rank that completes iteration joinIter-1 therefore holds the log before
// it starts joinIter, and the rejoiner's first round finds a world that
// expects it. The GG's flush accounting gates the revived rank on
// joinIter (activeFrom), so pending remainder groups for earlier
// iterations never wait on a rank that will not contribute to them.
package wlg

import (
	"errors"
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/membership"
	"psrahgadmm/internal/wire"
)

const (
	// Fixed rejoin tags, beside tagElControl and below tagIterBase: the
	// grant control and its optional warm-start aggregate. The rejoiner
	// owns a fresh endpoint (a reopened channel slot or a new TCP
	// process), so no stale frame from its previous life can sit under
	// these tags.
	tagElRejoinReply int32 = 521
	tagElRejoinW     int32 = 522

	// elKindRejoin announces a returning incarnation to the GG:
	// Ints = [elKindRejoin, node, 0, 0].
	elKindRejoin = 4
)

// errDeadAtRejoin is the cause recorded for ranks the GG's grant reported
// dead: the rejoiner never exchanged a message with them, so this is
// adopted evidence, not transport evidence.
var errDeadAtRejoin = errors.New("wlg: reported dead in rejoin grant")

// rejoinGrant is what the GG minted for one returning incarnation. It is
// retained so duplicate announcements are answered identically.
type rejoinGrant struct {
	joinIter int
	inc      int
	warm     []float64 // latest flushed aggregate at grant time; nil = cold start
	warmCnt  int64
}

// ggRejoin is the Group Generator's fail-recover bookkeeping, threaded
// through runGGElastic.
type ggRejoin struct {
	tr *membership.Tracker
	// activeFrom[r] is the first iteration rank r may contribute to.
	// Zero for original incarnations; a rejoiner's grant boundary after
	// it returns. Flush accounting consults it per iteration so pending
	// remainders from before the join are not blocked by the revival.
	activeFrom []int
	// maxSeen is the highest iteration any contribution or recovery
	// request has named — the grant boundary's anchor.
	maxSeen int
	grants  map[int]*rejoinGrant
	// log is the append-only rejoin history, flattened (rank, joinIter,
	// incarnation) triples, piggybacked on every control reply.
	log []int64
	// Latest flushed aggregate, served as the rejoiner's warm start.
	lastAgg  []float64
	lastCnt  int64
	lastIter int
}

func newGGRejoin(tr *membership.Tracker, world, startIter int) *ggRejoin {
	return &ggRejoin{
		tr:         tr,
		activeFrom: make([]int, world),
		maxSeen:    startIter - 1,
		grants:     make(map[int]*rejoinGrant),
		lastIter:   startIter - 1,
	}
}

// observe records that some rank is working on iter.
func (g *ggRejoin) observe(iter int) {
	if iter > g.maxSeen {
		g.maxSeen = iter
	}
}

// noteFlush retains the newest flushed aggregate for warm starts. The
// slice is the cache's, never mutated after flush, so aliasing is safe.
func (g *ggRejoin) noteFlush(iter int, w []float64, cnt int64) {
	if iter >= g.lastIter {
		g.lastIter, g.lastAgg, g.lastCnt = iter, w, cnt
	}
}

// activeAt reports whether rank may still contribute to iteration iter
// (membership and done-ness are the caller's dimensions).
func (g *ggRejoin) activeAt(rank, iter int) bool { return g.activeFrom[rank] <= iter }

// admit serves a rejoin announcement. A duplicate — the rank is alive in
// the GG's view and holds a grant — returns the existing grant unchanged,
// so re-announces and fabric-duplicated frames are idempotent. Otherwise
// (first announcement, or the rank died again since its last grant) a new
// incarnation is minted, revived in the tracker, gated on its join
// iteration, and appended to the log. fresh reports which case ran.
func (g *ggRejoin) admit(from int) (grant *rejoinGrant, fresh bool) {
	if grant, ok := g.grants[from]; ok && g.tr.Alive(from) {
		return grant, false
	}
	grant = &rejoinGrant{
		joinIter: g.maxSeen + 2,
		inc:      g.tr.Incarnation(from) + 1,
		warm:     g.lastAgg,
		warmCnt:  g.lastCnt,
	}
	g.grants[from] = grant
	g.tr.MarkUpAt(from, grant.inc)
	g.activeFrom[from] = grant.joinIter
	g.log = append(g.log, int64(from), int64(grant.joinIter), int64(grant.inc))
	return grant, true
}

// noteQuarantine folds one piece of quarantine evidence into the GG's
// state: the victim is quarantined in the tracker and the evidence is
// appended to the log (where it piggybacks on every control reply).
// Idempotent under duplication and reordering: evidence for a rank that is
// already quarantined, dead, or reincarnated past the indicted incarnation
// is ignored, so the log gains at most one entry per (rank, incarnation).
// Returns whether the evidence was fresh.
func (g *ggRejoin) noteQuarantine(rank, iter, inc int) bool {
	if inc != g.tr.Incarnation(rank) || !g.tr.Alive(rank) {
		return false
	}
	e := membership.QuarantineLogEntry(rank, iter, inc)
	g.log = append(g.log, e[0], e[1], e[2])
	g.tr.Quarantine(rank, errQuarantinedByScreen)
	return true
}

// grantInts builds the grant control payload:
//
//	[joinIter, incarnation, haveW, warmCount, nDead, dead..., log...]
//
// The dead set is read at reply time (fresher is better for seeding the
// rejoiner's view); the idempotent part of the grant never changes.
func (g *ggRejoin) grantInts(grant *rejoinGrant) []int64 {
	dead := g.tr.Dead()
	ints := make([]int64, 0, 5+len(dead)+len(g.log))
	have := int64(0)
	if grant.warm != nil {
		have = 1
	}
	ints = append(ints, int64(grant.joinIter), int64(grant.inc), have, grant.warmCnt, int64(len(dead)))
	for _, r := range dead {
		ints = append(ints, int64(r))
	}
	return append(ints, g.log...)
}

// withLog prefixes the rejoin log with a reply's own fields — the shape
// of every elastic GG control reply once rejoin exists.
func (g *ggRejoin) withLog(prefix ...int64) []int64 {
	if len(g.log) == 0 {
		return prefix
	}
	return append(append(make([]int64, 0, len(prefix)+len(g.log)), prefix...), g.log...)
}

// rejoinStart runs the announce handshake for a returning incarnation and
// surfaces the warm start through f.Rejoined. It returns the granted join
// iteration — the first one this rank executes (possibly >= MaxIter, in
// which case the caller's loop body never runs and the rank goes straight
// to its done farewell).
func (w *elasticWorker) rejoinStart(f WorkerFuncs) (int, error) {
	joinIter, warm, warmCnt, err := w.announceRejoin()
	if err != nil {
		return 0, err
	}
	if f.Rejoined != nil {
		f.Rejoined(joinIter, warm, warmCnt)
	}
	return joinIter, nil
}

// announceRejoin sends the announcement and awaits the grant,
// re-announcing on loss (the GG answers duplicates with the same grant).
func (w *elasticWorker) announceRejoin() (joinIter int, warm []float64, warmCnt int, err error) {
	for cycle := 0; cycle < elasticCycles; cycle++ {
		if err := w.ep.Send(w.gg, wire.Control(tagElControl, elKindRejoin, int64(w.node), 0, 0)); err != nil {
			return 0, nil, 0, fmt.Errorf("wlg: rank %d rejoin announce: %w", w.rank, err)
		}
		ctl, err := collective.RecvRetry(w.ep, w.gg, tagElRejoinReply, w.pol)
		if err != nil {
			if errors.Is(err, collective.ErrUnavailable) {
				continue // announce or grant lost: re-announce
			}
			return 0, nil, 0, fmt.Errorf("wlg: rank %d rejoin grant: %w", w.rank, err)
		}
		if len(ctl.Ints) < 5 {
			return 0, nil, 0, fmt.Errorf("wlg: rank %d malformed rejoin grant (%d ints)", w.rank, len(ctl.Ints))
		}
		joinIter = int(ctl.Ints[0])
		haveW, cnt := ctl.Ints[2] != 0, int(ctl.Ints[3])
		nDead := int(ctl.Ints[4])
		if nDead < 0 || 5+nDead > len(ctl.Ints) {
			return 0, nil, 0, fmt.Errorf("wlg: rank %d malformed rejoin dead set", w.rank)
		}
		// Seed the fresh incarnation's view: the world's deaths, and the
		// rejoin log (which includes this rank's own grant — applying it
		// records the incarnation so a stale log entry can never
		// resurrect us for our peers after a later death).
		for _, r := range ctl.Ints[5 : 5+nDead] {
			if int(r) != w.rank {
				w.tr.MarkDown(int(r), errDeadAtRejoin)
			}
		}
		w.noteJoins(ctl.Ints[5+nDead:])
		if !haveW {
			return joinIter, nil, 0, nil
		}
		wm, err := collective.RecvRetry(w.ep, w.gg, tagElRejoinW, w.pol)
		if err != nil {
			if errors.Is(err, collective.ErrUnavailable) {
				continue // grant arrived but the warm start was lost: redo both
			}
			return 0, nil, 0, fmt.Errorf("wlg: rank %d rejoin warm start: %w", w.rank, err)
		}
		return joinIter, wm.Dense, cnt, nil
	}
	return 0, nil, 0, fmt.Errorf("wlg: rank %d: no rejoin grant after %d announcements: %w",
		w.rank, elasticCycles, collective.ErrUnavailable)
}

// noteJoins retains the GG's rejoin log. Every control reply carries the
// full log (it is append-only at the GG), so the longest copy seen is the
// most complete; shorter, older copies are ignored.
func (w *elasticWorker) noteJoins(ints []int64) {
	if len(ints) > len(w.joinLog) {
		w.joinLog = append(w.joinLog[:0], ints...)
	}
}

// applyJoins folds the rejoin log into this rank's membership view for
// iteration iter. An entry (rank, joinIter, inc) cuts both ways:
//
//   - joinIter <= iter: the new incarnation serves this iteration —
//     revive it. MarkUpAt is idempotent and incarnation-guarded, so
//     replaying the log every iteration is free and an entry for an
//     incarnation that has since died again is a no-op.
//   - joinIter > iter: the grant PROVES incarnation inc-1 is dead and its
//     successor serves nothing before joinIter, so for this iteration the
//     rank is down. This matters because transport evidence of the old
//     incarnation's death can be unobservable once the new one owns the
//     endpoint (sends to it succeed, receives merely time out): without
//     the log a survivor would keep electing the dead Leader and wedge
//     the round. The incarnation guard keeps this monotone — once this
//     view has adopted inc (or newer), the entry never kills again.
//
// All ranks holding the log therefore exclude and re-admit a rejoiner at
// the same boundaries, keeping elections and gather sets convergent.
//
// Quarantine evidence rides the same log as membership.QuarantineLogEntry
// triples (negative first element). It is applied in a SECOND pass, after
// every rejoin triple, so the incarnation guard always judges evidence
// against the final incarnation for this boundary: a quarantine of
// incarnation k followed by a rejoin minting k+1 nets out to "alive",
// whatever order the passes would otherwise visit them in. An entry that
// indicts THIS rank's current incarnation raises selfQuar instead of
// touching the tracker — being quarantined is something a rank does to
// its behavior (probation), not to its own membership view.
func (w *elasticWorker) applyJoins(iter int) {
	for i := 0; i+2 < len(w.joinLog); i += 3 {
		rank, joinIter, inc, quar := membership.ParseLogEntry(w.joinLog[i], w.joinLog[i+1], w.joinLog[i+2])
		if quar {
			continue
		}
		if joinIter <= iter {
			w.tr.MarkUpAt(rank, inc)
		} else if rank != w.rank && w.tr.Incarnation(rank) < inc && w.tr.Alive(rank) {
			w.tr.MarkDown(rank, errDeadAtRejoin)
		}
	}
	w.selfQuar = false
	for i := 0; i+2 < len(w.joinLog); i += 3 {
		rank, _, inc, quar := membership.ParseLogEntry(w.joinLog[i], w.joinLog[i+1], w.joinLog[i+2])
		if !quar || inc != w.tr.Incarnation(rank) {
			continue // superseded by a later incarnation (or not evidence)
		}
		if rank == w.rank {
			w.selfQuar = true
			continue
		}
		w.tr.Quarantine(rank, errQuarantinedByScreen)
	}
}
