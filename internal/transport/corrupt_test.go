package transport

import (
	"errors"
	"testing"
	"time"

	"psrahgadmm/internal/wire"
)

// TestCorruptProbDetectedNeverSilent drives many sends through a fabric
// with CorruptProb set and checks every injected flip was detected by the
// frame checksum: the receiver sees either the re-sent clean payload or a
// typed FrameCorruptError — never different bytes than were sent.
func TestCorruptProbDetectedNeverSilent(t *testing.T) {
	under := NewChanFabric(2)
	fab := NewFaultFabric(under, FaultPlan{Seed: 7, CorruptProb: 0.3})
	defer fab.Close()
	sender, receiver := fab.Endpoint(0), fab.Endpoint(1)

	// ChanFabric sends are non-blocking, so one goroutine can play both
	// sides: send, then see what the receiver observes; on a detected
	// corruption, resend — the shape of the collective retry path.
	const rounds = 200
	for i := 0; i < rounds; i++ {
		payload := []float64{float64(i), float64(i) * 0.5, -float64(i)}
		for {
			if err := sender.Send(1, wire.DenseMsg(int32(i), payload)); err != nil {
				t.Fatalf("send round %d: %v", i, err)
			}
			m, err := receiver.RecvTimeout(0, int32(i), 5*time.Second)
			if err != nil {
				if errors.Is(err, wire.ErrFrameCorrupt) {
					continue // dropped in transit: resend
				}
				t.Fatalf("recv round %d: %v", i, err)
			}
			if len(m.Dense) != 3 || m.Dense[0] != float64(i) || m.Dense[1] != float64(i)*0.5 || m.Dense[2] != -float64(i) {
				t.Fatalf("round %d: delivered payload differs from sent: %v", i, m.Dense)
			}
			break
		}
	}
	if fab.InjectedCorruptions() == 0 {
		t.Fatal("CorruptProb=0.3 over 200 rounds injected nothing — injection is not running")
	}
	if fab.SilentCorruptions() != 0 {
		t.Fatalf("%d corrupt frames passed the checksum and were delivered wrong", fab.SilentCorruptions())
	}
	t.Logf("injected %d corruptions, all detected", fab.InjectedCorruptions())
}

// TestArmCorruptFiresOnce checks the deterministic single-shot trigger the
// engine uses for CorruptAtIteration: exactly the next algorithm send is
// corrupted, subsequent sends are clean.
func TestArmCorruptFiresOnce(t *testing.T) {
	under := NewChanFabric(2)
	fab := NewFaultFabric(under, FaultPlan{Seed: 1})
	defer fab.Close()
	sender, receiver := fab.Endpoint(0), fab.Endpoint(1)

	fab.ArmCorrupt(0)
	if err := sender.Send(1, wire.DenseMsg(1, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	_, err := receiver.RecvTimeout(0, 1, time.Second)
	var fc *FrameCorruptError
	if !errors.As(err, &fc) {
		t.Fatalf("armed send: err = %v, want FrameCorruptError", err)
	}
	if fc.From != 0 || fc.Tag != 1 {
		t.Fatalf("corrupt record = %+v, want from 0 tag 1", fc)
	}
	if !errors.Is(err, wire.ErrFrameCorrupt) {
		t.Fatal("FrameCorruptError must match wire.ErrFrameCorrupt")
	}
	if fab.InjectedCorruptions() != 1 {
		t.Fatalf("InjectedCorruptions = %d, want 1", fab.InjectedCorruptions())
	}

	// The arm is spent: the retry goes through clean.
	if err := sender.Send(1, wire.DenseMsg(1, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	m, err := receiver.RecvTimeout(0, 1, time.Second)
	if err != nil || m.Dense[2] != 3 {
		t.Fatalf("retry after armed corruption: %v %v", m.Dense, err)
	}
	if fab.InjectedCorruptions() != 1 {
		t.Fatalf("arm fired more than once: %d", fab.InjectedCorruptions())
	}
}

// TestCorruptionDeterministic replays the same plan twice and expects the
// same injection count — the property chaos tests in CI rely on.
func TestCorruptionDeterministic(t *testing.T) {
	run := func() int64 {
		under := NewChanFabric(2)
		fab := NewFaultFabric(under, FaultPlan{Seed: 42, CorruptProb: 0.25})
		defer fab.Close()
		sender, receiver := fab.Endpoint(0), fab.Endpoint(1)
		for i := 0; i < 100; i++ {
			if err := sender.Send(1, wire.Control(int32(i), int64(i))); err != nil {
				t.Fatal(err)
			}
			if _, err := receiver.RecvTimeout(0, int32(i), time.Second); err != nil && !errors.Is(err, wire.ErrFrameCorrupt) {
				t.Fatal(err)
			}
		}
		return fab.InjectedCorruptions()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("injections not deterministic: %d vs %d", a, b)
	}
}
