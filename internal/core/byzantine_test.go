package core

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/solver"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/watchdog"
)

// TestGoldenMeanAggregatorBitIdentical pins the Aggregator axis's escape
// hatch against the pre-robust goldens: explicitly selecting "mean" must
// route every variant — replicated and sharded — through the unmodified
// sum kernels, reproducing the golden histories bit for bit. If this
// fails, the robust plumbing leaked into the default path.
func TestGoldenMeanAggregatorBitIdentical(t *testing.T) {
	train, test := testData(t, 120)
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			cfg := gc.cfg()
			cfg.Aggregator = collective.AggMeanName // explicit, not inherited
			res, err := Run(cfg, train, RunOptions{Test: test})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFromResult(res)
			data, err := os.ReadFile(filepath.Join("testdata", "golden", gc.name+".json"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			var want goldenRun
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if len(got.History) != len(want.History) {
				t.Fatalf("history length %d, golden %d", len(got.History), len(want.History))
			}
			for i := range want.History {
				if got.History[i] != want.History[i] {
					t.Fatalf("iter %d: explicit mean diverged from the pre-robust golden:\n got %+v\nwant %+v",
						i, got.History[i], want.History[i])
				}
			}
			if got.ZBitsFNV != want.ZBitsFNV {
				t.Fatalf("final iterate hash %s, golden %s", got.ZBitsFNV, want.ZBitsFNV)
			}
		})
	}
}

// TestExplicitMeanMatchesDefaultAcrossVariants extends the bit-identity
// claim beyond the golden configurations: for every registered variant
// whose axis is the mean, Aggregator:"mean" and the empty default must be
// indistinguishable, down to the last bit of the final iterate.
func TestExplicitMeanMatchesDefaultAcrossVariants(t *testing.T) {
	train, _ := testData(t, 120)
	for _, v := range Variants() {
		if v.Aggregator != "" && v.Aggregator != collective.AggMeanName {
			continue // robust variants: "mean" would change the algorithm
		}
		v := v
		t.Run(string(v.Name), func(t *testing.T) {
			run := func(agg string) *Result {
				cfg := baseConfig(v.Name, 2, 2)
				cfg.MaxIter = 8
				cfg.Aggregator = agg
				res, err := Run(cfg, train, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			// Compare through the golden bit-pattern rendering: unevaluated
			// stats are NaN, and NaN != NaN would fail a raw struct compare.
			def, explicit := goldenFromResult(run("")), goldenFromResult(run(collective.AggMeanName))
			if def.ZBitsFNV != explicit.ZBitsFNV {
				t.Fatal("explicit mean diverges bitwise from the default aggregator")
			}
			for i := range def.History {
				if def.History[i] != explicit.History[i] {
					t.Fatalf("iter %d history diverges between default and explicit mean", i)
				}
			}
		})
	}
}

// iidData builds a dense, noise-free dataset whose 16 contiguous row
// shards are statistically interchangeable. Both residual error sources of
// the robust run shrink with rows: the trimmed-mean's per-coordinate bias
// (skewed contributor distributions) and the lost-shard effect (a
// forever-quarantined attacker's data is excluded from training, shifting
// the reachable optimum). At 38400 rows the sum lands under the 1e-3
// acceptance bound with margin. The zero label noise is what separates the
// two aggregators by orders of magnitude: the data is separable, so the
// sign-flip's multiplicative shrink of the consensus sum pushes signal
// coordinates below the soft threshold and the mean run's loss explodes,
// while the robust run's floor stays a second-order statistical effect.
func iidData(t testing.TB) *dataset.Dataset {
	t.Helper()
	train, _, err := dataset.Generate(dataset.SynthConfig{
		Name: "byz", Dim: 40, TrainRows: 38400, TestRows: 10, RowNNZ: 16,
		ZipfS: 1.05, SignalNNZ: 15, NoiseFlip: 0, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train
}

// TestByzantineChaos16Ranks is the PR's acceptance gate: a 16-rank cluster
// with one persistently sign-flipping rank. With the trimmed-mean
// aggregator and the contribution screen, the attacker is quarantined
// within a bounded number of rounds and the run converges within 1e-3
// relative objective error of the clean mean reference; the default mean
// on the identical schedule demonstrably degrades.
func TestByzantineChaos16Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("16-rank chaos acceptance is not a -short test")
	}
	train := iidData(t)
	topo := simnet.Topology{Nodes: 4, WorkersPerNode: 4}
	// The attack starts mid-run: a sign-flip is norm-preserving, so the
	// screen needs partially-decayed Δ-norm baselines to see it — in the
	// first few iterations the honest steps are as large as the flip.
	const attacker, attackIter = 5, 10
	faults := func() *transport.FaultPlan {
		return &transport.FaultPlan{
			Seed: 1,
			ByzantineAtIteration: map[int]transport.ByzantineFault{
				attacker: {Iteration: attackIter, Mode: transport.ByzantineSignFlip},
			},
		}
	}
	base := func() Config {
		cfg := Config{
			Algorithm: PSRAADMM,
			Topo:      topo,
			Rho:       1.0,
			Lambda:    8.0,
			// The 1e-3 bound compares two CONVERGED objectives — run both
			// to their fixed points with tight inner solves, or the bound
			// measures leftover descent instead of the robust bias.
			MaxIter:   200,
			EvalEvery: 200, // only the endpoint matters
		}
		cfg.Tron.MaxIter = 40
		return cfg
	}

	// Evaluate every run's final iterate against the FULL dataset: the
	// engine's own Objective stat sums live shards only, so a run whose
	// attacker stays quarantined would report a smaller problem, not a
	// better solution.
	fullObj := func(z []float64) float64 { // rho/lambda must mirror base()
		scratch := make([]float64, train.Dim())
		obj := solver.NewLogisticProx(train.X, train.Labels, 1.0, scratch, scratch)
		return obj.LocalLoss(z) + 8.0*vec.Nrm1(z)
	}

	// Clean dense reference: the exact mean consensus, no faults.
	clean, err := Run(base(), train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fClean := fullObj(clean.Z)
	if isNaN(fClean) || fClean <= 0 {
		t.Fatalf("degenerate clean reference objective %v", fClean)
	}

	// Robust run: trimmed-mean + screen against the attacker.
	robustCfg := base()
	robustCfg.Aggregator = collective.AggTrimmedMeanName
	robustCfg.Screen = watchdog.ScreenConfig{Enabled: true}
	robustCfg.Faults = faults()
	robust, err := Run(robustCfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fRobust := fullObj(robust.Z)
	relRobust := math.Abs(fRobust-fClean) / fClean
	if isNaN(relRobust) || relRobust > 1e-3 {
		t.Errorf("trimmed-mean under attack: objective %v vs clean %v (rel %v, want <= 1e-3)",
			fRobust, fClean, relRobust)
	}

	// The attacker was quarantined within a bounded number of rounds of
	// turning: warmup is long since matured by attackIter, so the strike
	// limit is the only latency.
	quarantined := false
	for _, ev := range robust.Quarantines {
		if ev.Readmitted {
			t.Fatalf("a forever-attacker must never be readmitted: %+v", ev)
		}
		if ev.Rank != attacker {
			t.Fatalf("quarantined honest rank %d", ev.Rank)
		}
		if ev.Iter < attackIter || ev.Iter > attackIter+5 {
			t.Fatalf("quarantine at iteration %d, want within (%d, %d]", ev.Iter, attackIter, attackIter+5)
		}
		quarantined = true
	}
	if !quarantined {
		t.Fatal("attacker was never quarantined")
	}

	// The default mean on the identical schedule demonstrably degrades: the
	// sign-flipped contribution is folded straight into every z-update, the
	// shrunken consensus sum soft-thresholds signal coordinates away, and
	// the objective floor lands orders of magnitude above the robust run's
	// (the acceptance asks for ≥ 10×; the measured gap is ~100×).
	meanCfg := base()
	meanCfg.Faults = faults()
	mean, err := Run(meanCfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fMean := fullObj(mean.Z)
	relMean := math.Abs(fMean-fClean) / fClean
	if isNaN(relMean) || relMean < 10*maxf(relRobust, 1e-3) {
		t.Errorf("mean under attack should degrade >= 10x: rel %v vs robust rel %v", relMean, relRobust)
	}
	t.Logf("clean %.6f | trimmed+screen %.6f (rel %.2e) | mean under attack %.6f (rel %.2e)",
		fClean, fRobust, relRobust, fMean, relMean)

	// Seeded determinism: both acceptance runs replay bit-identically.
	robustAgain, err := Run(robustCfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fnvZ(robustAgain.Z) != fnvZ(robust.Z) {
		t.Fatal("robust chaos acceptance run is not deterministic")
	}
	meanAgain, err := Run(meanCfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fnvZ(meanAgain.Z) != fnvZ(mean.Z) {
		t.Fatal("mean chaos acceptance run is not deterministic")
	}
}

// TestByzantineBoundedWindowReadmission: a compromise window with an end
// (Until) lets the quarantine protocol demonstrate its second half — after
// the attack stops, QuarantineRounds consecutive clean probes re-admit the
// rank, and training finishes with the whole world live.
func TestByzantineBoundedWindowReadmission(t *testing.T) {
	train, _ := testData(t, 160)
	cfg := baseConfig(PSRAADMMRobust, 2, 2)
	cfg.MaxIter = 30
	cfg.Screen = watchdog.ScreenConfig{Enabled: true}
	cfg.Faults = &transport.FaultPlan{
		Seed: 3,
		ByzantineAtIteration: map[int]transport.ByzantineFault{
			2: {Iteration: 5, Mode: transport.ByzantineScale, Until: 12},
		},
	}
	res, err := Run(cfg, train, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var quarIter, readmitIter = -1, -1
	for _, ev := range res.Quarantines {
		if ev.Rank != 2 {
			t.Fatalf("unexpected quarantine event %+v", ev)
		}
		if ev.Readmitted {
			readmitIter = ev.Iter
		} else if quarIter < 0 {
			quarIter = ev.Iter
		}
	}
	if quarIter < 0 {
		t.Fatal("attacker was never quarantined")
	}
	if readmitIter < 0 {
		t.Fatalf("attacker was never readmitted after the window closed (events %+v)", res.Quarantines)
	}
	if readmitIter <= quarIter || readmitIter < 12 {
		t.Fatalf("readmission at %d, quarantine at %d, window closed at 12", readmitIter, quarIter)
	}
	final := res.History[len(res.History)-1]
	if final.LiveWorkers != cfg.Topo.Size() {
		t.Fatalf("final live workers %d, want the whole world %d", final.LiveWorkers, cfg.Topo.Size())
	}
}

// TestByzantineQuorumLostAborts: with TrimF = 1 a second quarantined rank
// exceeds what the trim can out-vote; the run must abort with an error
// wrapping watchdog.ErrQuorumLost rather than keep aggregating.
func TestByzantineQuorumLostAborts(t *testing.T) {
	train, _ := testData(t, 160)
	cfg := baseConfig(PSRAADMMRobust, 3, 2)
	cfg.MaxIter = 40
	cfg.Screen = watchdog.ScreenConfig{Enabled: true}
	cfg.Faults = &transport.FaultPlan{
		Seed: 5,
		// Mid-run: the sign-flip's Δ-norm signature needs partially-decayed
		// baselines — early-training steps are themselves large, so an
		// attack in the first few iterations hides inside the honest Δ.
		ByzantineAtIteration: map[int]transport.ByzantineFault{
			1: {Iteration: 8, Mode: transport.ByzantineSignFlip},
			4: {Iteration: 8, Mode: transport.ByzantineScale},
		},
	}
	_, err := Run(cfg, train, RunOptions{})
	if !errors.Is(err, watchdog.ErrQuorumLost) {
		t.Fatalf("err = %v, want wrapping watchdog.ErrQuorumLost", err)
	}
}
