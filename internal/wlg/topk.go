// The top-k error-feedback path of the plain (fail-stop) WLG runtime.
//
// Unlike the value-rounding codecs, top-k changes WHICH coordinates
// travel, so riding the dense transport would throw its savings away. This
// loop swaps every hop of Algorithm 1/3 to the sparse collectives: workers
// reduce their selected contributions to the Leader, the GG-formed group
// runs the sparse PSR-Allreduce among Leaders — aggregating the partially-
// overlapping supports different ranks selected — and the Leader broadcasts
// the sparse aggregate back. Each rank owns one exchange.State: the
// residual carries its dropped mass into the next round, and k adapts from
// the rank's own observed contribution bytes against Config.
// CodecBudgetBytes.
//
// The elastic runtime keeps its dense transport (the GG result cache and
// recovery replies are dense frames) and applies the State only to the
// values — selection still sparsifies the contribution, but wire size is
// unchanged there. That asymmetry is documented in DESIGN.md.
package wlg

import (
	"fmt"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// interRouter picks the inter-Leader allreduce schedule the GG's group
// runs: the classic chunked PSR-Allreduce, or — with ShardBlocks > 0 —
// the shard-aware collective under a full-subscription plan (block
// ownership round-robin over the group; bit-identical aggregate,
// per-block-owner schedule). A full plan depends only on the group size,
// and the GG re-forms the same few sizes every iteration, so plans are
// built once per size and cached — a warmed iteration allocates nothing
// here.
type interRouter struct {
	blocks int
	plans  map[int]*shard.Plan // group size → full-subscription plan
}

func newInterRouter(blocks int) *interRouter {
	r := &interRouter{blocks: blocks}
	if blocks > 0 {
		r.plans = make(map[int]*shard.Plan)
	}
	return r
}

func (r *interRouter) allreduce(ws *collective.Workspace, ep transport.Endpoint, g collective.Group, tag int32, in, out *sparse.Vector) error {
	if r.blocks <= 0 {
		_, err := ws.PSRAllreduceSparse(ep, g, tag, in, out)
		return err
	}
	sp, ok := r.plans[g.Size()]
	if !ok {
		sp = shard.FullPlan(shard.NewPartition(in.Dim, r.blocks), g.Size())
		r.plans[g.Size()] = sp
	}
	_, err := ws.ShardAllreduceSparse(ep, g, tag, sp, in, out)
	return err
}

// runWorkerPlainTopK is runWorkerPlain with the exchange swapped to the
// sparse collectives and the per-rank error-feedback state. The tag
// layout, GG protocol, and callback contract are identical.
func runWorkerPlainTopK(ep transport.Endpoint, cfg Config, f WorkerFuncs) error {
	topo := cfg.Topo
	rank := ep.Rank()
	node := topo.NodeOf(rank)
	intra := collective.NewGroup(topo.WorkersOf(node)...)
	leader := IsLeader(topo, rank)
	gg := GGRank(topo)
	st := exchange.NewState(cfg.Codec, cfg.CodecBudgetBytes)
	router := newInterRouter(cfg.ShardBlocks)

	var ws collective.Workspace
	var buf []float64
	sv := new(sparse.Vector)   // this rank's selected contribution
	part := new(sparse.Vector) // Leader: node partial sum
	agg := new(sparse.Vector)  // group aggregate
	members := make([]int, 0, topo.Nodes)
	var ggReq [2]int64
	var cnt [1]int64

	wd := newWatch(cfg, rank)
	for iter := cfg.StartIter; iter < cfg.MaxIter; iter++ {
		w := f.ComputeW(iter)
		// The scan runs on the raw ComputeW output: a NaN absorbed into the
		// error-feedback residual would re-poison every later selection.
		if err := wd.checkOwn(iter, w); err != nil {
			return err
		}
		buf = append(buf[:0], w...)
		sv = sparse.FromDenseInto(sv, buf)
		// Error-feedback selection, then steer k from this rank's own wire
		// bytes — each rank observes only its contribution here, unlike the
		// engine where every rank sees the round total.
		st.Encode(sv)
		st.Adapt(st.WireBytes(sv.NNZ()))

		// Step 9: intra-node sparse reduce to the Leader.
		if _, err := ws.ReduceSparse(ep, intra, iterTag(iter, offIntraRed), 0, sv, part); err != nil {
			return fmt.Errorf("wlg: rank %d iter %d intra reduce: %w", rank, iter, err)
		}

		var contributors int
		if leader {
			// Algorithm 3: report to the GG, receive the inter-node group.
			ggReq[0], ggReq[1] = int64(node), int64(iter)
			if err := ep.Send(gg, wire.Control(tagGGRequest, ggReq[:]...)); err != nil {
				return fmt.Errorf("wlg: leader %d iter %d GG request: %w", rank, iter, err)
			}
			reply, err := ep.Recv(gg, iterTag(iter, offGGReply))
			if err != nil {
				return fmt.Errorf("wlg: leader %d iter %d GG reply: %w", rank, iter, err)
			}
			members = members[:0]
			for _, n := range reply.Ints {
				members = append(members, LeaderOf(topo, int(n)))
			}
			inter := collective.NewGroup(members...)
			// Sparse allreduce among the group's Leaders: the node partials
			// carry whatever supports their workers selected, and the
			// scatter-reduce sums them block-wise without ever densifying.
			// The router picks the schedule (classic PSR vs shard-aware)
			// and caches shard plans per group size.
			if err := router.allreduce(&ws, ep, inter, iterTag(iter, offInterAR), part, agg); err != nil {
				return fmt.Errorf("wlg: leader %d iter %d inter allreduce: %w", rank, iter, err)
			}
			contributors = inter.Size() * topo.WorkersPerNode
			cnt[0] = int64(contributors)
			if _, err := ws.BroadcastSparse(ep, intra, iterTag(iter, offIntraBc), 0, agg, nil); err != nil {
				return fmt.Errorf("wlg: leader %d iter %d intra broadcast: %w", rank, iter, err)
			}
			for _, r := range intra.Ranks[1:] {
				if err := ep.Send(r, wire.Control(iterTag(iter, offIntraBc2), cnt[:]...)); err != nil {
					return fmt.Errorf("wlg: leader %d iter %d contributor broadcast: %w", rank, iter, err)
				}
			}
		} else {
			if _, err := ws.BroadcastSparse(ep, intra, iterTag(iter, offIntraBc), 0, nil, agg); err != nil {
				return fmt.Errorf("wlg: rank %d iter %d receive W: %w", rank, iter, err)
			}
			c, err := ep.Recv(intra.Ranks[0], iterTag(iter, offIntraBc2))
			if err != nil {
				return fmt.Errorf("wlg: rank %d iter %d receive count: %w", rank, iter, err)
			}
			contributors = int(c.Ints[0])
		}
		buf = agg.ToDenseInto(buf)
		if err := wd.checkAgg(iter, buf); err != nil {
			return err
		}
		f.ApplyW(iter, buf, contributors)
	}
	return nil
}
