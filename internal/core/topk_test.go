package core

import (
	"testing"

	"psrahgadmm/internal/raceflag"
)

// The top-k acceptance suite: the codec-axis contract is that top-k
// error-feedback sparsification changes WHAT travels, not WHERE the
// recursion converges. The reference optimum comes from the dense
// single-worker solve (ReferenceOptimum), so the comparison crosses the
// codec axis entirely.

func topkRefConfig(alg Algorithm, nodes, wpn int) Config {
	cfg := baseConfig(alg, nodes, wpn)
	cfg.MaxIter = 200
	cfg.Tron.MaxIter = 40
	cfg.EvalEvery = cfg.MaxIter // only the endpoint matters
	return cfg
}

// TestTopKConvergesToDenseReference pins the tentpole acceptance
// criterion: the hierarchical and flat top-k variants, compressing well
// below the problem dimension, land within 1e-3 relative error of the
// dense reference optimum.
func TestTopKConvergesToDenseReference(t *testing.T) {
	train, _ := testData(t, 120) // dim 200
	fstar, _, err := ReferenceOptimum(train, 1.0, 0.5, 250)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PSRAHGADMMTopK, PSRAHGADMMTopKQ8, PSRAADMMTopK} {
		t.Run(string(alg), func(t *testing.T) {
			cfg := topkRefConfig(alg, 2, 2)
			cfg.CodecTopK = 80 // 2.5x compression on dim 200
			res, err := Run(cfg, train, RunOptions{FStar: fstar, HaveFStar: true})
			if err != nil {
				t.Fatal(err)
			}
			last := res.History[len(res.History)-1]
			if isNaN(last.RelError) || last.RelError > 1e-3 {
				t.Fatalf("%s k=%d: relative error %v vs f*=%v (objective %v)",
					alg, cfg.CodecTopK, last.RelError, fstar, last.Objective)
			}
		})
	}
}

// TestTopKErrorFeedbackLoadBearing is the ablation: the identical run
// with the residual accumulator disabled (pure lossy truncation) must
// stall measurably short of the optimum, demonstrating the carried
// residual — not the selection rule — is what preserves convergence. At
// k=48 (dim 200) pure truncation freezes at a bias floor above the
// 1e-3 acceptance line while the error-feedback run lands well under it;
// both floors are stable from 200 through 800 iterations, so the
// assertions below are not horizon-sensitive.
func TestTopKErrorFeedbackLoadBearing(t *testing.T) {
	train, _ := testData(t, 120)
	fstar, _, err := ReferenceOptimum(train, 1.0, 0.5, 250)
	if err != nil {
		t.Fatal(err)
	}
	run := func(noEF bool) float64 {
		cfg := topkRefConfig(PSRAADMMTopK, 2, 2)
		cfg.CodecTopK = 48
		cfg.CodecNoErrorFeedback = noEF
		res, err := Run(cfg, train, RunOptions{FStar: fstar, HaveFStar: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.History[len(res.History)-1].RelError
	}
	withEF, withoutEF := run(false), run(true)
	t.Logf("relative error: with error feedback %v, without %v", withEF, withoutEF)
	if isNaN(withEF) || withEF > 1e-3 {
		t.Fatalf("error-feedback run missed the acceptance line: %v > 1e-3", withEF)
	}
	if isNaN(withoutEF) || withoutEF <= 1e-3 || withoutEF < 3*withEF {
		t.Fatalf("ablation did not degrade: with EF %v, without EF %v", withEF, withoutEF)
	}
}

// TestTopKBytesBelowSparse checks the communication side of the trade:
// at equal iterations on the same cluster, the top-k variant's total
// trace bytes must land measurably below the exact sparse codec's.
func TestTopKBytesBelowSparse(t *testing.T) {
	train, _ := testData(t, 120)
	run := func(alg Algorithm, k int) int64 {
		cfg := topkRefConfig(alg, 2, 2)
		cfg.MaxIter = 60
		cfg.CodecTopK = k
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes
	}
	sparseBytes := run(PSRAHGADMM, 0)
	topkBytes := run(PSRAHGADMMTopK, 48)
	t.Logf("total bytes at 60 iterations: sparse %d, topk %d", sparseBytes, topkBytes)
	if topkBytes >= sparseBytes*8/10 {
		t.Fatalf("topk bytes %d not measurably below sparse %d", topkBytes, sparseBytes)
	}
}

// TestTopKBudgetAdaptsK checks the adaptive loop end to end: a byte
// budget below the default-k traffic must shrink the observed
// per-iteration bytes toward the budget, and a deliberately huge budget
// must not (k is already clamped at KMax).
func TestTopKBudgetAdaptsK(t *testing.T) {
	train, _ := testData(t, 120)
	run := func(budget int64) *Result {
		cfg := topkRefConfig(PSRAADMMTopK, 2, 2)
		cfg.MaxIter = 60
		cfg.CodecBudgetBytes = budget
		res, err := Run(cfg, train, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(0)
	tail := func(r *Result) int64 { // mean per-iteration bytes, last 20 rounds
		var sum int64
		h := r.History[len(r.History)-20:]
		for _, s := range h {
			sum += s.Bytes
		}
		return sum / int64(len(h))
	}
	budget := tail(free) / 2
	capped := run(budget)
	t.Logf("tail bytes/iter: unbudgeted %d, budget %d -> %d", tail(free), budget, tail(capped))
	if got := tail(capped); got >= tail(free) {
		t.Fatalf("budget %d did not reduce tail bytes/iter: %d vs unbudgeted %d", budget, got, tail(free))
	}
	// The budget must overshoot at most 2x: Adapt's halving smoothing
	// converges k geometrically, so 40 rounds is plenty.
	if got := tail(capped); got > 2*budget {
		t.Fatalf("tail bytes/iter %d more than doubles budget %d", got, budget)
	}
}

// TestTopKSteadyStateAllocBudget extends the zero-allocation discipline
// to the stateful codec path: a warmed flat-PSR round encoding through
// the per-rank error-feedback states stays within the same small heap
// budget as the stateless composition.
func TestTopKSteadyStateAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	train, _ := testData(t, 160)
	cfg := baseConfig(PSRAADMMTopK, 3, 2)
	cfg.EvalEvery = 1 << 20
	cfg.CodecTopK = 48 // well below the contributions' nnz: selection runs every round

	const budget = 8.0
	got := marginalAllocs(t, cfg, train, 30, 130)
	t.Logf("topk steady-state allocations: %.2f objects/iter (budget %g)", got, budget)
	if got > budget {
		t.Fatalf("topk steady-state allocations: %.2f objects/iter exceeds budget %g", got, budget)
	}
}
