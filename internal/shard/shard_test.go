package shard

import (
	"testing"

	"psrahgadmm/internal/vec"
)

// TestPartitionMatchesVecSplit pins the partition to vec.Split's layout
// exactly: block boundaries and the Chunk/BlockOf inverse pair must agree
// with the chunk tables every existing collective uses.
func TestPartitionMatchesVecSplit(t *testing.T) {
	for _, tc := range []struct{ dim, blocks int }{
		{1, 1}, {7, 3}, {10, 10}, {13, 4}, {100, 7}, {64, 64}, {65, 64}, {1000, 33},
	} {
		p := NewPartition(tc.dim, tc.blocks)
		chunks := vec.Split(tc.dim, p.Blocks)
		for b, c := range chunks {
			if got := p.Chunk(b); got != c {
				t.Fatalf("dim=%d blocks=%d: Chunk(%d)=%v, vec.Split gives %v", tc.dim, tc.blocks, b, got, c)
			}
			for idx := c.Lo; idx < c.Hi; idx++ {
				if got := p.BlockOf(idx); got != b {
					t.Fatalf("dim=%d blocks=%d: BlockOf(%d)=%d, want %d", tc.dim, tc.blocks, idx, got, b)
				}
			}
		}
	}
}

func TestNewPartitionClamps(t *testing.T) {
	if p := NewPartition(5, 0); p.Blocks != 1 {
		t.Fatalf("blocks=0 should clamp to 1, got %d", p.Blocks)
	}
	if p := NewPartition(5, 9); p.Blocks != 5 {
		t.Fatalf("blocks>dim should clamp to dim, got %d", p.Blocks)
	}
}

func TestMapSubscriptions(t *testing.T) {
	// dim 12, 4 blocks of 3: block b covers [3b, 3b+3).
	part := NewPartition(12, 4)
	active := [][]int32{
		{0, 1, 5},     // rank 0 touches blocks 0, 1
		{3, 4, 9, 11}, // rank 1 touches blocks 1, 3
		{0, 6, 7, 8},  // rank 2 touches blocks 0, 2
	}
	m := NewMap(part, active)
	wantSubs := [][]int32{{0, 1}, {1, 3}, {0, 2}}
	for r, want := range wantSubs {
		got := m.Subs[r]
		if len(got) != len(want) {
			t.Fatalf("rank %d subs %v, want %v", r, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d subs %v, want %v", r, got, want)
			}
		}
	}
	if got := m.Subscribers(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("block 1 subscribers %v, want [0 1]", got)
	}
	if m.FullSubscription() {
		t.Fatal("partial map reported full subscription")
	}

	alive := func(r int) bool { return r != 0 }
	counts := m.LiveCounts(nil, alive)
	want := []int{1, 1, 1, 1} // block 0: rank 2; block 1: rank 1; block 2: rank 2; block 3: rank 1
	for b := range want {
		if counts[b] != want[b] {
			t.Fatalf("live counts %v, want %v", counts, want)
		}
	}
}

func TestFullPlanAndOwnership(t *testing.T) {
	part := NewPartition(100, 8)
	pl := FullPlan(part, 3)
	if pl.Members() != 3 {
		t.Fatalf("members %d, want 3", pl.Members())
	}
	for b := 0; b < part.Blocks; b++ {
		if got, want := pl.OwnerPos(b), b%3; got != want {
			t.Fatalf("OwnerPos(%d)=%d, want %d", b, got, want)
		}
	}
	for i, subs := range pl.Subs {
		if len(subs) != part.Blocks {
			t.Fatalf("full plan member %d subscribes to %d blocks, want %d", i, len(subs), part.Blocks)
		}
	}
}
