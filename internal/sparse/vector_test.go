package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psrahgadmm/internal/vec"
)

func randSparse(r *rand.Rand, dim int, density float64) *Vector {
	v := NewVector(dim, 0)
	for i := 0; i < dim; i++ {
		if r.Float64() < density {
			v.Append(int32(i), r.NormFloat64())
		}
	}
	return v
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := []float64{0, 1.5, 0, -2, 0, 0, 3}
	v := FromDense(d)
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", v.NNZ())
	}
	if !vec.Equal(v.ToDense(), d) {
		t.Fatalf("round trip mismatch: %v", v.ToDense())
	}
}

func TestFromMapSorts(t *testing.T) {
	v := FromMap(10, map[int32]float64{7: 1, 2: 2, 5: 3, 9: 0})
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	want := []int32{2, 5, 7}
	if len(v.Index) != 3 {
		t.Fatalf("NNZ = %d, want 3 (zero dropped)", v.NNZ())
	}
	for i, idx := range want {
		if v.Index[i] != idx {
			t.Fatalf("Index = %v, want %v", v.Index, want)
		}
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	v := NewVector(10, 2)
	v.Append(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing Append")
		}
	}()
	v.Append(3, 2)
}

func TestAppendIgnoresZero(t *testing.T) {
	v := NewVector(10, 1)
	v.Append(3, 0)
	if v.NNZ() != 0 {
		t.Fatal("Append(,-0) stored a zero")
	}
}

func TestDotAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		dim := r.Intn(100) + 1
		v := randSparse(r, dim, 0.3)
		x := make([]float64, dim)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := vec.Dot(v.ToDense(), x)
		got := v.Dot(x)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("Dot mismatch: %v vs %v", got, want)
		}
	}
}

func TestAddIntoDense(t *testing.T) {
	v := FromDense([]float64{0, 2, 0, 3})
	dst := []float64{1, 1, 1, 1}
	v.AddIntoDense(dst, 2)
	if !vec.Equal(dst, []float64{1, 5, 1, 7}) {
		t.Fatalf("AddIntoDense = %v", dst)
	}
}

func TestScaleZeroEmpties(t *testing.T) {
	v := FromDense([]float64{1, 2, 3})
	v.Scale(0)
	if v.NNZ() != 0 {
		t.Fatal("Scale(0) left stored zeros")
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceRebase(t *testing.T) {
	v := FromDense([]float64{1, 0, 2, 0, 3, 4, 0, 5})
	s := v.Slice(2, 6)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(s.ToDense(), []float64{2, 0, 3, 4}) {
		t.Fatalf("Slice = %v", s.ToDense())
	}
	// Empty slice bounds.
	e := v.Slice(3, 3)
	if e.Dim != 0 || e.NNZ() != 0 {
		t.Fatalf("empty Slice = %+v", e)
	}
}

func TestMergeAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		dim := r.Intn(80) + 1
		a := randSparse(r, dim, 0.3)
		b := randSparse(r, dim, 0.3)
		m := Merge(a, b)
		if err := m.Check(); err != nil {
			t.Fatal(err)
		}
		want := a.ToDense()
		vec.AddInto(want, b.ToDense())
		if !vec.Equal(m.ToDense(), want) {
			t.Fatalf("Merge mismatch")
		}
	}
}

func TestMergeCancellationDropsZeros(t *testing.T) {
	a := FromDense([]float64{1, 2, 0})
	b := FromDense([]float64{-1, 0, 3})
	m := Merge(a, b)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("cancelled entry not dropped: nnz=%d", m.NNZ())
	}
}

func TestConcatInvertsSlice(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		dim := r.Intn(120) + 1
		p := r.Intn(6) + 1
		v := randSparse(r, dim, 0.25)
		chunks := vec.Split(dim, p)
		blocks := make([]*Vector, p)
		offsets := make([]int, p)
		for i, c := range chunks {
			blocks[i] = v.Slice(c.Lo, c.Hi)
			offsets[i] = c.Lo
		}
		back := Concat(dim, offsets, blocks)
		if err := back.Check(); err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(back.ToDense(), v.ToDense()) {
			t.Fatal("Concat(Slice(v)) != v")
		}
	}
}

func TestConcatRejectsOverlap(t *testing.T) {
	a := FromDense([]float64{1, 2})
	b := FromDense([]float64{3, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping Concat")
		}
	}()
	Concat(3, []int{0, 1}, []*Vector{a, b})
}

func TestAccumulatorMatchesDenseSum(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	dim := 64
	acc := NewAccumulator(dim)
	want := make([]float64, dim)
	for i := 0; i < 20; i++ {
		v := randSparse(r, dim, 0.2)
		acc.Add(v)
		vec.AddInto(want, v.ToDense())
	}
	got := acc.Sum()
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if !vec.WithinTol(got.ToDense(), want, 1e-12) {
		t.Fatal("Accumulator sum mismatch")
	}
	// Reuse after Sum must start from zero.
	v := FromDense(make([]float64, dim))
	acc.Add(v)
	second := acc.Sum()
	if second.NNZ() != 0 {
		t.Fatal("Accumulator not reset after Sum")
	}
}

func TestAccumulatorAddDense(t *testing.T) {
	acc := NewAccumulator(4)
	acc.AddDense([]float64{1, 0, 2, 0})
	acc.AddDense([]float64{-1, 0, 1, 5})
	got := acc.Sum().ToDense()
	if !vec.Equal(got, []float64{0, 0, 3, 5}) {
		t.Fatalf("AddDense sum = %v", got)
	}
}

// Property: Merge is commutative and preserves invariants.
func TestMergeCommutative(t *testing.T) {
	f := func(seedA, seedB int64, dimRaw uint8) bool {
		dim := int(dimRaw%60) + 1
		a := randSparse(rand.New(rand.NewSource(seedA)), dim, 0.3)
		b := randSparse(rand.New(rand.NewSource(seedB)), dim, 0.3)
		ab := Merge(a, b)
		ba := Merge(b, a)
		if ab.Check() != nil || ba.Check() != nil {
			return false
		}
		return vec.Equal(ab.ToDense(), ba.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: slicing covers and partitions exactly — total NNZ preserved.
func TestSlicePartitionPreservesNNZ(t *testing.T) {
	f := func(seed int64, dimRaw, pRaw uint8) bool {
		dim := int(dimRaw%100) + 1
		p := int(pRaw%8) + 1
		v := randSparse(rand.New(rand.NewSource(seed)), dim, 0.3)
		total := 0
		for _, c := range vec.Split(dim, p) {
			total += v.Slice(c.Lo, c.Hi).NNZ()
		}
		return total == v.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	r := rand.New(rand.NewSource(14))
	x := randSparse(r, 1<<16, 0.05)
	y := randSparse(r, 1<<16, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Merge(x, y)
	}
}

func BenchmarkAccumulator(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	dim := 1 << 16
	vs := make([]*Vector, 16)
	for i := range vs {
		vs[i] = randSparse(r, dim, 0.02)
	}
	acc := NewAccumulator(dim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			acc.Add(v)
		}
		_ = acc.Sum()
	}
}
