package exchange

import (
	"math"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		Algorithm:  "psra-hgadmm",
		Iter:       17,
		Rho:        1.5625,
		Epoch:      3,
		Dead:       []int32{2, 5},
		ZPrev:      []float64{0.25, -1, math.Copysign(0, -1)},
		TotalCal:   12.5,
		TotalComm:  3.25,
		TotalBytes: 1 << 40,
		Strategy:   []float64{42.5},
		Workers: []WorkerSnap{
			{Rank: 0, Clock: 9.75, CalTotal: 4.5,
				XA: []float64{1, 2}, YA: []float64{-3, 0.125}, ZDense: []float64{0, 7},
				ZIdx: []int32{1}, ZVal: []float64{7}},
			{Rank: 3, Clock: 1, CalTotal: 0.5,
				XA: []float64{0.1}, YA: []float64{0.2}, ZDense: []float64{0.3}},
		},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed snapshot:\n in  %+v\n out %+v", s, got)
	}
}

func TestSnapshotBitExactFloats(t *testing.T) {
	// NaN payloads and -0 must survive: bit-exact resume depends on it.
	nan := math.Float64frombits(0x7ff8000000000001)
	s := &Snapshot{Algorithm: "a", ZPrev: []float64{nan, math.Copysign(0, -1)}}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.ZPrev {
		if math.Float64bits(got.ZPrev[i]) != math.Float64bits(s.ZPrev[i]) {
			t.Fatalf("ZPrev[%d]: bits %x != %x", i,
				math.Float64bits(got.ZPrev[i]), math.Float64bits(s.ZPrev[i]))
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	blob := EncodeSnapshot(&Snapshot{Algorithm: "a"})
	if _, err := DecodeSnapshot(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := DecodeSnapshot(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[4] = 99 // version
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("future version accepted")
	}
}
