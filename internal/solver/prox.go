package solver

import "psrahgadmm/internal/vec"

// ZUpdateL1 computes the consensus z-update for g(z) = lambda·‖z‖₁ (paper
// eq. 10, with the N-worker penalty aggregated correctly):
//
//	z = argmin_z  λ‖z‖₁ + (Nρ/2)‖z‖² − zᵀW
//	  = SoftThreshold(W, λ) / (Nρ)
//
// where W = Σᵢ (yᵢ + ρ·xᵢ) over the n workers contributing to W. Note the
// paper's eq. (10) writes ρ/2·‖z‖²; summing eq. (5)'s penalty over i gives
// N·ρ/2, which is what we use (the paper silently absorbs N into ρ).
// dst may alias w.
func ZUpdateL1(dst, w []float64, lambda, rho float64, n int) {
	if n <= 0 {
		panic("solver: ZUpdateL1 requires n >= 1")
	}
	inv := 1 / (rho * float64(n))
	for i, wi := range w {
		dst[i] = vec.SoftThreshold(wi, lambda) * inv
	}
}

// ZUpdateL2 computes the consensus z-update for ridge regularization
// g(z) = (lambda/2)·‖z‖²:
//
//	z = argmin_z (λ/2)‖z‖² + (Nρ/2)‖z‖² − zᵀW = W / (λ + Nρ)
func ZUpdateL2(dst, w []float64, lambda, rho float64, n int) {
	if n <= 0 {
		panic("solver: ZUpdateL2 requires n >= 1")
	}
	vec.ScaleTo(dst, 1/(lambda+rho*float64(n)), w)
}

// DualUpdate performs yᵢ ← yᵢ + ρ(xᵢ − z) in place (paper eq. 6).
func DualUpdate(y, x, z []float64, rho float64) {
	for i := range y {
		y[i] += rho * (x[i] - z[i])
	}
}

// WLocal computes wᵢ = yᵢ + ρ·xᵢ (paper eq. 8), the quantity each worker
// contributes to the Allreduce.
func WLocal(dst, y, x []float64, rho float64) {
	for i := range dst {
		dst[i] = y[i] + rho*x[i]
	}
}
