package core

import "testing"

// BenchmarkBSPIteration makes one benchmark op equal one engine iteration
// by running a single training with MaxIter = b.N: setup (fabric, crew,
// workers) happens once and amortizes away, so time/op and allocs/op
// converge on the warmed steady-state iteration cost the alloc-budget
// test bounds. Flat PSR / BSP / sparse — the allocation benchmark
// composition.
func BenchmarkBSPIteration(b *testing.B) {
	train, _ := testData(b, 160)
	cfg := baseConfig(PSRAADMM, 3, 2)
	cfg.EvalEvery = 1 << 20 // objective eval is off the steady-state path
	cfg.MaxIter = b.N
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(cfg, train, RunOptions{}); err != nil {
		b.Fatal(err)
	}
}
