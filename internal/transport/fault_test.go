package transport

import (
	"errors"
	"testing"
	"time"

	"psrahgadmm/internal/wire"
)

func TestFaultKillUnblocksReceiversWithTypedError(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(3), FaultPlan{})
	defer f.Close()

	done := make(chan error, 1)
	go func() {
		_, err := f.Endpoint(0).Recv(1, 5)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block
	f.Kill(1)

	select {
	case err := <-done:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Peer != 1 {
			t.Fatalf("err = %v, want *PeerDownError{Peer: 1}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock after Kill")
	}

	// The dead rank's own calls fail as a closed endpoint...
	if _, err := f.Endpoint(1).Recv(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("dead rank's Recv = %v, want ErrClosed", err)
	}
	// ...and sends to it fail fast with the typed error.
	err := f.Endpoint(0).Send(1, wire.Control(1, 1))
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("Send to dead rank = %v, want *PeerDownError{Peer: 1}", err)
	}
	// An unrelated pair keeps working.
	if err := f.Endpoint(0).Send(2, wire.Control(9, 3)); err != nil {
		t.Fatal(err)
	}
	if m, err := f.Endpoint(2).RecvTimeout(0, 9, time.Second); err != nil || m.Ints[0] != 3 {
		t.Fatalf("live pair broken by kill: %v %v", m, err)
	}
}

func TestFaultKillAfterSends(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(2), FaultPlan{
		KillAfterSends: map[int]int{0: 3},
	})
	defer f.Close()
	ep := f.Endpoint(0)
	for i := 0; i < 3; i++ {
		if err := ep.Send(1, wire.Control(1, int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := ep.Send(1, wire.Control(1, 99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send past budget = %v, want ErrClosed", err)
	}
	// The 3 pre-death messages were delivered and survive the death.
	for i := 0; i < 3; i++ {
		m, err := f.Endpoint(1).RecvTimeout(0, 1, time.Second)
		if err != nil || m.Ints[0] != int64(i) {
			t.Fatalf("pre-death message %d: %v %v", i, m, err)
		}
	}
	// After draining, the death surfaces.
	_, err := f.Endpoint(1).RecvTimeout(0, 1, time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 0 {
		t.Fatalf("err = %v, want *PeerDownError{Peer: 0}", err)
	}
}

func TestFaultReviveRestoresTraffic(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(3), FaultPlan{})
	defer f.Close()
	f.Kill(1)
	// Surface the death to rank 0 once (any-source report consumed).
	if _, err := f.Endpoint(0).RecvTimeout(1, 5, 100*time.Millisecond); err == nil {
		t.Fatal("recv from dead peer must fail")
	}
	// A message that would land in the dead inbox must not leak into the
	// next incarnation.
	_ = f.Endpoint(0).Send(1, wire.Control(7, 111))

	f.Revive(1)
	if err := f.Endpoint(0).Send(1, wire.Control(1, 42)); err != nil {
		t.Fatalf("send to revived rank: %v", err)
	}
	m, err := f.Endpoint(1).RecvTimeout(0, 1, time.Second)
	if err != nil || m.Ints[0] != 42 {
		t.Fatalf("revived rank recv: %v %v", m, err)
	}
	// Pre-death traffic was drained: the stale tag matches nothing.
	if _, err := f.Endpoint(1).RecvTimeout(0, 7, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("stale pre-death message leaked into new incarnation: %v", err)
	}
	// The rank's own calls work again.
	if err := f.Endpoint(1).Send(2, wire.Control(2, 1)); err != nil {
		t.Fatalf("revived rank's own send: %v", err)
	}
	if _, err := f.Endpoint(2).RecvTimeout(1, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	// The new incarnation's death is reported afresh to every observer.
	f.Kill(1)
	_, err = f.Endpoint(0).RecvTimeout(AnySource, 9, time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("second death not re-reported: %v", err)
	}
}

func TestFaultDuplicateDelivery(t *testing.T) {
	const n = 100
	f := NewFaultFabric(NewChanFabric(2), FaultPlan{Seed: 11, DupProb: 0.5})
	defer f.Close()
	for i := 0; i < n; i++ {
		if err := f.Endpoint(0).Send(1, wire.Control(1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		if _, err := f.Endpoint(1).RecvTimeout(0, 1, 100*time.Millisecond); err != nil {
			break
		}
		got++
	}
	dups := int(f.InjectedDups())
	if dups == 0 || dups == n {
		t.Fatalf("degenerate dup count %d/%d", dups, n)
	}
	if got != n+dups {
		t.Fatalf("delivered %d, want %d sent + %d dups", got, n, dups)
	}
}

func TestFaultReorderSwapsPairs(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(2), FaultPlan{Seed: 3, ReorderProb: 1})
	defer f.Close()
	// With ReorderProb 1 every odd send releases the held even one behind
	// it: 0,1,2,3 arrive as 1,0,3,2.
	for i := 0; i < 4; i++ {
		if err := f.Endpoint(0).Send(1, wire.Control(1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := []int64{1, 0, 3, 2}
	for i, w := range want {
		m, err := f.Endpoint(1).RecvTimeout(0, 1, time.Second)
		if err != nil || m.Ints[0] != w {
			t.Fatalf("message %d: got %v %v, want %d", i, m, err, w)
		}
	}
	if f.InjectedReorders() != 2 {
		t.Fatalf("InjectedReorders = %d, want 2", f.InjectedReorders())
	}
}

func TestFaultDropsAreDeterministic(t *testing.T) {
	const n = 200
	run := func() (int64, int) {
		f := NewFaultFabric(NewChanFabric(2), FaultPlan{Seed: 42, DropProb: 0.3})
		defer f.Close()
		for i := 0; i < n; i++ {
			if err := f.Endpoint(0).Send(1, wire.Control(1, int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		got := 0
		for {
			if _, err := f.Endpoint(1).RecvTimeout(0, 1, 100*time.Millisecond); err != nil {
				break
			}
			got++
		}
		return f.InjectedDrops(), got
	}
	drops1, got1 := run()
	drops2, got2 := run()
	if drops1 == 0 || drops1 == n {
		t.Fatalf("degenerate drop count %d/%d", drops1, n)
	}
	if drops1 != drops2 || got1 != got2 {
		t.Fatalf("same seed diverged: drops %d vs %d, delivered %d vs %d", drops1, drops2, got1, got2)
	}
	if got1 != n-int(drops1) {
		t.Fatalf("delivered %d + dropped %d != sent %d", got1, drops1, n)
	}
}

func TestFaultPartitionAndHeal(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(2), FaultPlan{Partitions: [][2]int{{0, 1}}})
	defer f.Close()
	if err := f.Endpoint(0).Send(1, wire.Control(1, 1)); err != nil {
		t.Fatalf("partitioned send must look successful (blackhole): %v", err)
	}
	if _, err := f.Endpoint(1).RecvTimeout(0, 1, 80*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout across partition", err)
	}
	if f.InjectedDrops() != 1 {
		t.Fatalf("InjectedDrops = %d, want 1", f.InjectedDrops())
	}
	f.Heal(0, 1)
	if err := f.Endpoint(0).Send(1, wire.Control(1, 2)); err != nil {
		t.Fatal(err)
	}
	m, err := f.Endpoint(1).RecvTimeout(0, 1, time.Second)
	if err != nil || m.Ints[0] != 2 {
		t.Fatalf("healed link: %v %v", m, err)
	}
}

func TestFaultDelaysDeliverEventually(t *testing.T) {
	f := NewFaultFabric(NewChanFabric(2), FaultPlan{
		Seed: 7, DelayProb: 1, MaxDelay: 20 * time.Millisecond,
	})
	defer f.Close()
	for i := 0; i < 5; i++ {
		if err := f.Endpoint(0).Send(1, wire.Control(1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := f.Endpoint(1).RecvTimeout(0, 1, 2*time.Second)
		if err != nil || m.Ints[0] != int64(i) {
			t.Fatalf("delayed message %d: %v %v", i, m, err)
		}
	}
	if f.InjectedDelays() != 5 {
		t.Fatalf("InjectedDelays = %d, want 5", f.InjectedDelays())
	}
}
