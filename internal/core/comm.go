package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/shard"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
	"psrahgadmm/internal/wire"
)

// commKind selects which allreduce schedule a leader group runs.
type commKind int

const (
	commPSRSparse commKind = iota
	commRingSparse
	commRingDense
	commShardSparse
)

// errRoundCorrupt marks a round failure caused by a wire frame failing its
// integrity check mid-collective. Unlike errPeersLost it is retryable in
// BOTH failure modes: the fabric is healthy, the checksum-failed frame was
// dropped before anyone read it, and a fresh attempt under a new tag
// window simply re-ships the round. The engine bounds the retries so a
// persistently poisoned link still fails fast with a typed cause.
var errRoundCorrupt = errors.New("core: corrupt frame detected mid-round")

// abortOnError closes the scratch fabric the first time a group member
// reports an error, so every other member's blocked Recv unblocks with
// ErrClosed instead of waiting forever on a rank that will never send.
// Only clean fail-stop runs use it — the run is aborting anyway, and a
// dead scratch fabric is the price of the no-hang guarantee. Runs that
// may need to retry a round (elastic regroups, corrupt-frame drops) latch
// instead: their fabric must survive the failed attempt.
type abortOnError struct {
	fab  transport.Fabric
	once sync.Once
}

func (a *abortOnError) observe(err error) {
	if err != nil {
		a.once.Do(a.fab.Close)
	}
}

// crewJob is one member's share of a collective round: the sparse kinds
// read in and write the aggregate into out; the dense kind sums in place
// into dense.
type crewJob struct {
	kind    commKind
	g       collective.Group
	tagBase int32
	in      *sparse.Vector
	out     *sparse.Vector
	dense   []float64
	plan    *shard.Plan // commShardSparse only
	// spec selects the reduce statistic for the PSR and shard kinds. The
	// mean spec routes through the unmodified sum kernels, so every
	// pre-robust schedule stays bit-identical; the ring kinds are pairwise
	// and ignore it (robust × ring is rejected at registration).
	spec collective.AggSpec
}

// crew is the run-persistent collective executor: one goroutine per world
// rank, fed one crewJob per collective round through its own channel. The
// per-round form this replaces — spawn a goroutine per member, allocate
// results, traces, endpoint wrappers, and a whole collective.Workspace per
// call — put every round's collective on the heap; the crew keeps all of
// it warm. Per-rank Workspaces grow to the round's (group size, dim) shape
// once and are reused for the rest of the run; elastic regroups simply
// present a smaller group and the workspaces adapt in place.
//
// Rounds are dispatched strictly sequentially from the single strategy
// goroutine, so per-rank result slots need no locks: wg.Wait() is the
// barrier that orders every slot write before the dispatcher reads it.
type crew struct {
	env     *strategyEnv
	jobs    []chan crewJob
	wg      sync.WaitGroup
	wss     []collective.Workspace
	outs    []*sparse.Vector // aggregate sinks for members beyond the first
	dense   [][]float64      // dense in-place buffers, grown to dim once
	traces  []collective.Trace
	errs    []error
	eps     []transport.Endpoint // pre-boxed (latched when retryable)
	stop    atomic.Bool          // round abort latch, reset per round
	latched bool                 // endpoints latch instead of abort-closing
	abort   abortOnError         // clean fail-stop unblock

	mergedEvents []collective.Event // mergedTrace scratch
}

func newCrew(env *strategyEnv) *crew {
	n := len(env.ws)
	c := &crew{
		env:    env,
		jobs:   make([]chan crewJob, n),
		wss:    make([]collective.Workspace, n),
		outs:   make([]*sparse.Vector, n),
		dense:  make([][]float64, n),
		traces: make([]collective.Trace, n),
		errs:   make([]error, n),
		eps:    make([]transport.Endpoint, n),
	}
	// A run that may retry a failed round — elastic regroups, corrupt-
	// frame drops — latches: the fabric must survive the attempt. A clean
	// fail-stop run keeps raw endpoints and the closing abort.
	c.latched = env.elastic || env.corruptible
	c.abort.fab = env.fab
	for r := 0; r < n; r++ {
		if c.latched {
			c.eps[r] = latchEndpoint{env.fab.Endpoint(r), &c.stop}
		} else {
			c.eps[r] = env.fab.Endpoint(r)
		}
		c.outs[r] = new(sparse.Vector)
		c.jobs[r] = make(chan crewJob)
		go c.serve(r)
	}
	return c
}

func (c *crew) serve(r int) {
	for job := range c.jobs[r] {
		var err error
		var tr collective.Trace
		switch job.kind {
		case commPSRSparse:
			tr, err = c.wss[r].PSRAllreduceSparseAgg(c.eps[r], job.g, job.tagBase, job.in, job.out, job.spec)
		case commRingSparse:
			tr, err = c.wss[r].RingAllreduceSparse(c.eps[r], job.g, job.tagBase, job.in, job.out)
		case commRingDense:
			tr, err = c.wss[r].RingAllreduceDense(c.eps[r], job.g, job.tagBase, job.dense)
		case commShardSparse:
			tr, err = c.wss[r].ShardAllreduceSparseAgg(c.eps[r], job.g, job.tagBase, job.plan, job.in, job.out, job.spec)
		default:
			err = fmt.Errorf("core: unknown comm kind %d", job.kind)
		}
		c.traces[r], c.errs[r] = tr, err
		if err != nil {
			// Unblock the rest of the group: flip the latch in a retryable
			// run (the fabric must survive the next attempt), close the
			// fabric in a clean fail-stop one.
			if c.latched {
				c.stop.Store(true)
			} else {
				c.abort.observe(err)
			}
			// The failed attempt may have abandoned async sends that still
			// read this workspace's buffers; with the fabric now unblocked
			// they finish promptly, and a retry must not reuse the buffers
			// until they do. wg.Done() below orders the wait before the
			// dispatcher can launch the next round.
			c.wss[r].AbandonSends()
		}
		c.wg.Done()
	}
}

// close stops the crew goroutines; no round may be in flight.
func (c *crew) close() {
	for _, ch := range c.jobs {
		close(ch)
	}
}

// collect classifies the round's member errors. Non-elastic, it picks the
// most informative one: a typed PeerDownError beats a generic failure,
// which beats the errRoundAborted/ErrClosed noise the latch itself
// produced on the other members; a round whose only real failure is a
// checksum-dropped frame is wrapped in errRoundCorrupt for the engine to
// retry. Elastic, it translates errors into membership facts — a
// PeerDownError marks its peer dead, a member's own ErrClosed marks that
// member dead (its endpoint was killed under it; the fabric is never
// closed mid-run) — and wraps retryable peer loss in errPeersLost so the
// engine re-runs the round over the survivors; corruption with no deaths
// is again errRoundCorrupt (peer loss wins when both appear — membership
// already changed, and the regroup retry re-ships everything anyway). Any
// other error is non-retryable and returned as-is.
func (c *crew) collect(what string, ranks []int) error {
	if !c.env.elastic {
		var fallback, corrupt error
		for _, r := range ranks {
			err := c.errs[r]
			if err == nil || errors.Is(err, errRoundAborted) {
				continue
			}
			var pd *transport.PeerDownError
			if errors.As(err, &pd) {
				return fmt.Errorf("core: %s rank %d: %w", what, r, err)
			}
			if errors.Is(err, wire.ErrFrameCorrupt) {
				if corrupt == nil {
					corrupt = fmt.Errorf("core: %s rank %d: %v: %w", what, r, err, errRoundCorrupt)
				}
				continue
			}
			if fallback == nil || errors.Is(fallback, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed) {
				fallback = fmt.Errorf("core: %s rank %d: %w", what, r, err)
			}
		}
		if fallback != nil {
			return fallback
		}
		return corrupt
	}
	var cause, corrupt error
	lost := false
	for _, r := range ranks {
		err := c.errs[r]
		if err == nil || errors.Is(err, errRoundAborted) {
			continue
		}
		var pd *transport.PeerDownError
		switch {
		case errors.As(err, &pd):
			c.env.members.MarkDown(pd.Peer, pd)
			lost = true
		case errors.Is(err, wire.ErrFrameCorrupt):
			if corrupt == nil {
				corrupt = fmt.Errorf("core: %s rank %d: %v: %w", what, r, err, errRoundCorrupt)
			}
			continue
		case errors.Is(err, transport.ErrClosed):
			c.env.members.MarkDown(r, err)
			lost = true
		default:
			return fmt.Errorf("core: %s rank %d: %w", what, r, err)
		}
		if cause == nil {
			cause = err
		}
	}
	if lost {
		return fmt.Errorf("core: %s: %v: %w", what, cause, errPeersLost)
	}
	return corrupt
}

// mergedTrace folds the group's per-member traces into one (max steps, all
// events in member order). The result aliases crew scratch and is valid
// until the next collective round.
func (c *crew) mergedTrace(ranks []int) collective.Trace {
	merged := collective.Trace{Events: c.mergedEvents[:0]}
	for _, r := range ranks {
		tr := c.traces[r]
		if tr.Steps > merged.Steps {
			merged.Steps = tr.Steps
		}
		merged.Events = append(merged.Events, tr.Events...)
	}
	c.mergedEvents = merged.Events
	return merged
}

// groupAllreduce runs the *actual* collective implementation among the
// given world ranks over the engine's scratch fabric — the crew's
// persistent member goroutines — writing the aggregate into the
// caller-owned out and returning the merged trace. The engine's virtual
// clock is driven by real message sizes, not an analytic formula; this is
// what keeps the Figure 6/7 communication times honest about sparsity.
// Each invocation draws a fresh tag window, so a retried attempt can never
// match an aborted attempt's stale messages. The returned trace aliases
// crew scratch (consume it before the next collective); out is untouched
// by later rounds, so strategies may retain it.
func groupAllreduce(env *strategyEnv, ranks []int, kind commKind, inputs []*sparse.Vector, out *sparse.Vector) (collective.Trace, error) {
	if len(ranks) != len(inputs) {
		panic("core: groupAllreduce ranks/inputs mismatch")
	}
	c := env.crew
	tagBase := env.nextTagBase()
	g := collective.Group{Ranks: ranks}
	c.stop.Store(false)
	c.wg.Add(len(ranks))
	for i, r := range ranks {
		dst := out
		if i != 0 {
			dst = c.outs[r]
		}
		c.jobs[r] <- crewJob{kind: kind, g: g, tagBase: tagBase, in: inputs[i], out: dst, spec: env.agg}
	}
	c.wg.Wait()
	if err := c.collect("group allreduce", ranks); err != nil {
		return collective.Trace{}, err
	}
	return c.mergedTrace(ranks), nil
}

// groupShardAllreduce runs the shard-aware PSR-Allreduce among the given
// world ranks: each member ships only the blocks it subscribes to or owns,
// and each member's RESTRICTED reduced result — its own subscription, not
// the full W — lands in c.outs[r]. Unlike groupAllreduce there is no
// single caller-owned aggregate: the whole point is that no rank holds the
// full reduction. Results alias crew-owned vectors valid until the next
// shard collective.
func groupShardAllreduce(env *strategyEnv, ranks []int, plan *shard.Plan, inputs []*sparse.Vector) (collective.Trace, error) {
	if len(ranks) != len(inputs) {
		panic("core: groupShardAllreduce ranks/inputs mismatch")
	}
	c := env.crew
	tagBase := env.nextTagBase()
	g := collective.Group{Ranks: ranks}
	c.stop.Store(false)
	c.wg.Add(len(ranks))
	for i, r := range ranks {
		c.jobs[r] <- crewJob{kind: commShardSparse, g: g, tagBase: tagBase, in: inputs[i], out: c.outs[r], plan: plan, spec: env.agg}
	}
	c.wg.Wait()
	if err := c.collect("shard allreduce", ranks); err != nil {
		return collective.Trace{}, err
	}
	return c.mergedTrace(ranks), nil
}

// groupAllreduceDense runs the real dense Ring-Allreduce among the given
// world ranks — ADMMLib's exchange: the full parameter vector circulates
// regardless of sparsity. Inputs are copied into crew-owned per-member
// buffers and summed in place; member 0's result is copied into the
// caller-owned out (len == dim). Failure handling as in groupAllreduce.
func groupAllreduceDense(env *strategyEnv, ranks []int, inputs [][]float64, out []float64) (collective.Trace, error) {
	if len(ranks) != len(inputs) {
		panic("core: groupAllreduceDense ranks/inputs mismatch")
	}
	c := env.crew
	tagBase := env.nextTagBase()
	g := collective.Group{Ranks: ranks}
	c.stop.Store(false)
	c.wg.Add(len(ranks))
	for i, r := range ranks {
		if cap(c.dense[r]) < len(inputs[i]) {
			c.dense[r] = make([]float64, len(inputs[i]))
		}
		buf := c.dense[r][:len(inputs[i])]
		copy(buf, inputs[i])
		c.dense[r] = buf
		c.jobs[r] <- crewJob{kind: commRingDense, g: g, tagBase: tagBase, dense: buf}
	}
	c.wg.Wait()
	if err := c.collect("dense group allreduce", ranks); err != nil {
		return collective.Trace{}, err
	}
	copy(out, c.dense[ranks[0]])
	return c.mergedTrace(ranks), nil
}

// traceBytes sums payload bytes across a merged trace.
func traceBytes(tr collective.Trace) int64 {
	var n int64
	for _, e := range tr.Events {
		n += int64(e.Bytes)
	}
	return n
}

// traceAlias lets sibling files name collective.Trace in struct literals
// without re-importing.
type traceAlias = collective.Trace

// denseFanTrace models a one-step dense fan over the node bus: reduce=true
// is the workers→leader fan-in, reduce=false the leader→workers fan-out.
// Every message has the same fixed size (dense vectors).
func denseFanTrace(workers []int, leader int, msgBytes int, reduce bool) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for _, r := range workers {
		if r == leader {
			continue
		}
		e := collective.Event{Step: 0, From: r, To: leader, Bytes: msgBytes}
		if !reduce {
			e.From, e.To = leader, r
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

// intraReduceTrace models the intra-node fan-in of workers' w vectors to
// their Leader: one step, wpn−1 messages over the bus. Message sizes use
// the senders' actual sparse sizes.
func intraReduceTrace(workers []int, leader int, nnzs []int) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for i, r := range workers {
		if r == leader {
			continue
		}
		tr.Events = append(tr.Events, collective.Event{
			Step: 0, From: r, To: leader,
			Bytes: 8 + wire.SparseEntryBytes*nnzs[i],
		})
	}
	return tr
}

// intraBcastTrace models the Leader broadcasting the aggregate back: one
// step, wpn−1 bus messages of the aggregate's size.
func intraBcastTrace(workers []int, leader, aggNNZ int) collective.Trace {
	tr := collective.Trace{Steps: 1}
	for _, r := range workers {
		if r == leader {
			continue
		}
		tr.Events = append(tr.Events, collective.Event{
			Step: 0, From: leader, To: r,
			Bytes: 8 + wire.SparseEntryBytes*aggNNZ,
		})
	}
	return tr
}

// ggRequestBytes is the payload of a Leader→GG grouping request plus the
// reply (a handful of int64s). The GG round trip is charged at inter-node
// cost.
const ggRequestBytes = 4 + 8*2

// zFromW applies the L1 z-update (eq. 10, N·ρ scaling) directly on a
// sparse W: only entries with |W_j| > λ survive, which is why the
// downstream distribution ships z rather than W — same math, a fraction of
// the bytes.
func zFromW(w *sparse.Vector, lambda, rho float64, n int) *sparse.Vector {
	inv := 1 / (rho * float64(n))
	out := sparse.NewVector(w.Dim, 0)
	for k, idx := range w.Index {
		if v := vec.SoftThreshold(w.Value[k], lambda) * inv; v != 0 {
			out.Index = append(out.Index, idx)
			out.Value = append(out.Value, v)
		}
	}
	return out
}

// zFromWBlocks is zFromW with per-block contributor counts — the sharded
// tree path's z-update: entry j averages over counts[BlockOf(j)], the live
// subscribers whose objective actually couples to block j (block-wise
// general-form consensus). When every count equals n it reproduces
// zFromW(w, lambda, rho, n) bit for bit: the scalar expression is the same.
func zFromWBlocks(w *sparse.Vector, lambda, rho float64, part shard.Partition, counts []int) *sparse.Vector {
	out := sparse.NewVector(w.Dim, 0)
	for k, idx := range w.Index {
		n := counts[part.BlockOf(int(idx))]
		if n <= 0 {
			continue
		}
		if v := vec.SoftThreshold(w.Value[k], lambda) * (1 / (rho * float64(n))); v != 0 {
			out.Index = append(out.Index, idx)
			out.Value = append(out.Value, v)
		}
	}
	return out
}

// sumSparse adds vs in index order (deterministic association).
func sumSparse(dim int, vs []*sparse.Vector) *sparse.Vector {
	acc := sparse.NewAccumulator(dim)
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Sum()
}

// starGatherTrace models AD-ADMM's master-side exchange for one round:
// step 0, each fresh worker ships its primal and dual vectors (2·d dense
// doubles) to the master; step 1, the master returns the new z (d dense
// doubles) to each fresh worker. The master's NIC serializes both sides —
// the scaling bottleneck the paper attributes to AD-ADMM.
func starGatherTrace(master int, fresh []int, dim int) collective.Trace {
	up := 4 + wire.DenseEntryBytes*dim*2
	down := 4 + wire.DenseEntryBytes*dim
	tr := collective.Trace{Steps: 2}
	for _, r := range fresh {
		if r == master {
			continue
		}
		tr.Events = append(tr.Events,
			collective.Event{Step: 0, From: r, To: master, Bytes: up},
			collective.Event{Step: 1, From: master, To: r, Bytes: down},
		)
	}
	return tr
}
