package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"psrahgadmm/internal/collective"
	"psrahgadmm/internal/core"
	"psrahgadmm/internal/dataset"
	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/vec"
)

// PerfEntry records one benchmark of the steady-state perf suite.
type PerfEntry struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfReport is the schema of BENCH_psra.json: one entry per layer of the
// hot path (vec kernel, sparse reduce, codec, collective, full engine
// iteration), recorded on one machine as a comparison point — absolute
// numbers are machine-dependent; allocs/op is the portable column and the
// one the alloc-budget tests enforce. ShardScale adds the sharded-state
// comparison at simnet scale: per-rank resident bytes and total wire
// bytes, dense vs block-sharded, at 64 and 256 ranks (both columns are
// deterministic and machine-independent; only the timing column drifts).
type PerfReport struct {
	Schema     int               `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	MaxProcs   int               `json:"gomaxprocs"`
	Benchmarks []PerfEntry       `json:"benchmarks"`
	ShardScale []ShardScaleEntry `json:"shard_scale,omitempty"`
}

// ShardScaleEntry records one dense-vs-sharded engine comparison: the same
// flat BSP run twice, replicated z and block-sharded z, on a sparse
// synthetic problem wide enough that subscriptions are genuinely partial.
// Resident bytes are the max over live ranks of the consensus-state
// footprint at the final iteration (IterStat.ResidentBytes); wire bytes
// are the run totals. Both are bit-deterministic, so the perf gate
// compares them exactly; ns/iter is informational.
type ShardScaleEntry struct {
	Name               string  `json:"name"`
	Ranks              int     `json:"ranks"`
	Blocks             int     `json:"blocks"`
	MaxProcs           int     `json:"gomaxprocs"`
	Iters              int     `json:"iters"`
	DenseNsPerIter     float64 `json:"dense_ns_per_iter"`
	ShardNsPerIter     float64 `json:"sharded_ns_per_iter"`
	DenseResidentBytes int64   `json:"dense_resident_bytes"`
	ShardResidentBytes int64   `json:"sharded_resident_bytes"`
	MemoryReduction    float64 `json:"memory_reduction"`
	DenseWireBytes     int64   `json:"dense_wire_bytes"`
	ShardWireBytes     int64   `json:"sharded_wire_bytes"`
}

func perfEntry(name string, r testing.BenchmarkResult) PerfEntry {
	return PerfEntry{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func perfSparse(r *rand.Rand, dim int, density float64) *sparse.Vector {
	v := sparse.NewVector(dim, 0)
	for i := 0; i < dim; i++ {
		if r.Float64() < density {
			v.Index = append(v.Index, int32(i))
			v.Value = append(v.Value, r.NormFloat64())
		}
	}
	return v
}

// Perf runs the per-layer steady-state suite and returns the report.
// Each layer is measured through testing.Benchmark, so the CLI records
// exactly what `go test -bench` would.
func Perf(seed int64) (*PerfReport, error) {
	rep := &PerfReport{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	add := func(name string, fn func(b *testing.B)) {
		rep.Benchmarks = append(rep.Benchmarks, perfEntry(name, testing.Benchmark(fn)))
	}

	// Layer 1: vec kernels.
	{
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 4096)
		y := make([]float64, 4096)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		add("vec/dot-4096", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = vec.Dot(x, y)
			}
		})
		add("vec/axpy-4096", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vec.Axpy(1e-9, x, y)
			}
		})
	}

	// Layer 2: sparse reduce (the accumulator behind every aggregation).
	{
		r := rand.New(rand.NewSource(seed + 1))
		const dim = 1 << 16
		vs := make([]*sparse.Vector, 8)
		for i := range vs {
			vs[i] = perfSparse(r, dim, 0.02)
		}
		acc := sparse.NewAccumulator(dim)
		out := new(sparse.Vector)
		add("sparse/reduce-8x", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.Reset(dim)
				for _, v := range vs {
					acc.Add(v)
				}
				out = acc.SumInto(out)
			}
		})
	}

	// Layer 2b: the robust reduce at the same scale as the plain sum above
	// — 8 sparse contributors through the trimmed-mean combine, scratch and
	// destination recycled across ops like the reducer's steady state.
	{
		r := rand.New(rand.NewSource(seed + 1))
		const dim = 1 << 16
		vs := make([]*sparse.Vector, 8)
		for i := range vs {
			vs[i] = perfSparse(r, dim, 0.02)
		}
		spec := collective.AggSpec{Kind: collective.AggTrimmedMean, TrimF: 1}
		ws := new(collective.Workspace)
		out := new(sparse.Vector)
		out = ws.CombineSparse(spec, dim, vs, out) // warm scratch once
		add("collective/robust-combine-8x", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = ws.CombineSparse(spec, dim, vs, out)
			}
		})
	}

	// Layer 3: codec encode (exact passthrough vs 8-bit quantization).
	for _, kind := range []exchange.Kind{exchange.Sparse, exchange.SparseQ8} {
		codec, err := exchange.For(kind)
		if err != nil {
			return nil, err
		}
		v := perfSparse(rand.New(rand.NewSource(seed+2)), 1<<16, 0.05)
		add(fmt.Sprintf("exchange/encode-%s", kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				codec.EncodeSparse(v)
			}
		})
	}

	// Layer 3b: the stateful top-k error-feedback encode — merge the
	// residual, select k survivors, carry the dropped mass — at the same
	// density as the plain codec benchmarks.
	{
		r := rand.New(rand.NewSource(seed + 2))
		v := perfSparse(r, 1<<16, 0.05)
		st := exchange.NewState(exchange.TopK, 0)
		// Pin k below the vector's nnz so every encode runs a real
		// selection, not just the merge.
		st.K, st.KMin = 1024, 1024
		work := sparse.NewVector(v.Dim, v.NNZ())
		for i := 0; i < 8; i++ { // saturate residual support and scratch
			work.ReuseFrom(v)
			st.Encode(work)
		}
		add("exchange/encode-topk-ef", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				work.ReuseFrom(v)
				st.Encode(work)
			}
		})
	}

	// Layer 4: the sparse PSR-Allreduce across a 4-member world with
	// persistent workspaces — the engine crew's exact steady state. The
	// zero-copy fabric matches what the engine actually runs on (the
	// copying fabric's per-send Sparse.Clone is what used to make this
	// the one allocating entry in the report).
	{
		const n = 4
		fab := transport.NewChanFabricZeroCopy(n)
		defer fab.Close()
		g := collective.WorldGroup(n)
		r := rand.New(rand.NewSource(seed + 3))
		wss := make([]collective.Workspace, n)
		ins := make([]*sparse.Vector, n)
		outs := make([]*sparse.Vector, n)
		eps := make([]transport.Endpoint, n)
		for i := 0; i < n; i++ {
			ins[i] = perfSparse(r, 1<<14, 0.05)
			outs[i] = new(sparse.Vector)
			eps[i] = fab.Endpoint(i)
		}
		add("collective/psr-allreduce-sparse-4", func(b *testing.B) {
			// Persistent member goroutines signalled per op: spawning four
			// goroutines inside the measured loop would charge the harness's
			// own allocations to the collective.
			starts := make([]chan struct{}, n)
			var wg sync.WaitGroup
			for m := 0; m < n; m++ {
				starts[m] = make(chan struct{}, 1)
				go func(m int) {
					for range starts[m] {
						if _, err := wss[m].PSRAllreduceSparse(eps[m], g, 64, ins[m], outs[m]); err != nil {
							b.Error(err)
						}
						wg.Done()
					}
				}(m)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wg.Add(n)
				for m := 0; m < n; m++ {
					starts[m] <- struct{}{}
				}
				wg.Wait()
			}
			b.StopTimer()
			for m := 0; m < n; m++ {
				close(starts[m])
			}
		})
	}

	// Layer 5: one full engine iteration (flat PSR / BSP / sparse — the
	// alloc-budget composition), MaxIter = b.N so setup amortizes away.
	{
		train, _, err := dataset.Generate(dataset.SynthConfig{
			Name: "perf", Dim: 200, TrainRows: 160, TestRows: 40, RowNNZ: 10,
			ZipfS: 1.3, SignalNNZ: 30, NoiseFlip: 0.02, Seed: seed + 4,
		})
		if err != nil {
			return nil, err
		}
		var runErr error
		add("core/bsp-iteration", func(b *testing.B) {
			cfg := core.Config{
				Algorithm: core.PSRAADMM,
				Topo:      simnet.Topology{Nodes: 3, WorkersPerNode: 2},
				Rho:       1.0,
				Lambda:    0.5,
				MaxIter:   b.N,
				EvalEvery: 1 << 20,
			}
			b.ReportAllocs()
			if _, err := core.Run(cfg, train, core.RunOptions{}); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return nil, runErr
		}
	}

	// Layer 6: sharded state at simnet scale — 64 and 256 ranks, plus the
	// 64-rank config re-run with GOMAXPROCS > 1 to exercise the crew
	// executor's real parallelism (the engine's numerics are scheduling-
	// independent, so only the timing column moves).
	for _, sc := range shardScaleConfigs() {
		entry, err := runShardScale(sc, seed)
		if err != nil {
			return nil, err
		}
		rep.ShardScale = append(rep.ShardScale, entry)
	}
	return rep, nil
}

// shardScaleConfig parameterizes one dense-vs-sharded scale point. The
// algorithm fields default to the original pairing — psra-admm dense vs
// the same strategy with ShardedState flipped on — so the long-standing
// entries keep producing bit-identical snapshot rows; a config may
// instead name an explicit pair, which is how the SSP composition the
// StateStore layer unlocked enters the gate.
type shardScaleConfig struct {
	name     string
	nodes    int
	wpn      int
	blocks   int
	iters    int
	rows     int
	maxProcs int            // 0 keeps the ambient GOMAXPROCS
	denseAlg core.Algorithm // reference run ("" = psra-admm)
	shardAlg core.Algorithm // sharded run ("" = denseAlg + ShardedState)
}

func shardScaleConfigs() []shardScaleConfig {
	return []shardScaleConfig{
		{name: "core/shard-scale-64", nodes: 16, wpn: 4, blocks: 256, iters: 8, rows: 512},
		{name: "core/shard-scale-256", nodes: 32, wpn: 8, blocks: 512, iters: 4, rows: 1024},
		{name: "core/shard-scale-64-mp4", nodes: 16, wpn: 4, blocks: 256, iters: 8, rows: 512, maxProcs: 4},
		// Sharding under a relaxed barrier: the dense tree-BSP reference
		// against the block-sharded SSP variant, gating that the per-rank
		// resident footprint of the composition stays where the BSP
		// pairing put it.
		{name: "core/shard-scale-64-ssp", nodes: 16, wpn: 4, blocks: 256, iters: 8, rows: 512,
			denseAlg: core.PSRAHGADMM, shardAlg: core.PSRAHGADMMShardedSSP},
	}
}

// runShardScale runs one scale point twice — replicated, then sharded —
// and reports the per-rank memory and wire-byte comparison.
func runShardScale(sc shardScaleConfig, seed int64) (ShardScaleEntry, error) {
	train, _, err := dataset.Generate(dataset.SynthConfig{
		Name: "shard-scale", Dim: 16000, TrainRows: sc.rows, TestRows: 8, RowNNZ: 6,
		ZipfS: 1.4, SignalNNZ: 60, NoiseFlip: 0.02, Seed: seed + 5,
	})
	if err != nil {
		return ShardScaleEntry{}, err
	}
	if sc.maxProcs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(sc.maxProcs))
	}
	denseAlg := sc.denseAlg
	if denseAlg == "" {
		denseAlg = core.PSRAADMM
	}
	cfg := core.Config{
		Algorithm: denseAlg,
		Topo:      simnet.Topology{Nodes: sc.nodes, WorkersPerNode: sc.wpn},
		Rho:       1.0,
		Lambda:    0.5,
		MaxIter:   sc.iters,
		EvalEvery: sc.iters,
	}
	timed := func(cfg core.Config) (*core.Result, float64, error) {
		start := time.Now()
		res, err := core.Run(cfg, train, core.RunOptions{})
		if err != nil {
			return nil, 0, err
		}
		return res, float64(time.Since(start).Nanoseconds()) / float64(sc.iters), nil
	}
	dense, denseNs, err := timed(cfg)
	if err != nil {
		return ShardScaleEntry{}, err
	}
	if sc.shardAlg != "" {
		cfg.Algorithm = sc.shardAlg
	} else {
		cfg.ShardedState = true
	}
	cfg.ShardBlocks = sc.blocks
	sharded, shardNs, err := timed(cfg)
	if err != nil {
		return ShardScaleEntry{}, err
	}
	dRB := dense.History[len(dense.History)-1].ResidentBytes
	sRB := sharded.History[len(sharded.History)-1].ResidentBytes
	entry := ShardScaleEntry{
		Name:               sc.name,
		Ranks:              sc.nodes * sc.wpn,
		Blocks:             sc.blocks,
		MaxProcs:           runtime.GOMAXPROCS(0),
		Iters:              sc.iters,
		DenseNsPerIter:     denseNs,
		ShardNsPerIter:     shardNs,
		DenseResidentBytes: dRB,
		ShardResidentBytes: sRB,
		DenseWireBytes:     dense.TotalBytes,
		ShardWireBytes:     sharded.TotalBytes,
	}
	if sRB > 0 {
		entry.MemoryReduction = float64(dRB) / float64(sRB)
	}
	return entry, nil
}

// WritePerfReport runs the perf suite and writes the JSON report to path
// (the committed BENCH_psra.json), echoing a human-readable table to out.
func WritePerfReport(path string, out io.Writer, seed int64) error {
	rep, err := Perf(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-36s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, e := range rep.Benchmarks {
		fmt.Fprintf(out, "%-36s %14.1f %12d %12d\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	if len(rep.ShardScale) > 0 {
		fmt.Fprintf(out, "\n%-26s %6s %13s %13s %7s %13s %13s\n",
			"shard scale", "ranks", "dense res B", "shard res B", "mem ×", "dense wire B", "shard wire B")
		for _, e := range rep.ShardScale {
			fmt.Fprintf(out, "%-26s %6d %13d %13d %7.2f %13d %13d\n",
				e.Name, e.Ranks, e.DenseResidentBytes, e.ShardResidentBytes,
				e.MemoryReduction, e.DenseWireBytes, e.ShardWireBytes)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckPerfReport re-runs the perf suite and gates it against the
// committed snapshot at path: any allocs/op increase fails, as does ns/op
// drift beyond nsTol (fractional, e.g. 0.15 for 15%; <= 0 disables the
// timing comparison, the right setting on shared CI runners where only
// the alloc column is machine-independent). A benchmark present on one
// side only also fails — a stale snapshot must be regenerated with
// -perf, not silently ignored.
func CheckPerfReport(path string, out io.Writer, seed int64, nsTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench: read snapshot: %w", err)
	}
	var want PerfReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("bench: parse snapshot %s: %w", path, err)
	}
	rep, err := Perf(seed)
	if err != nil {
		return err
	}
	wantBy := make(map[string]PerfEntry, len(want.Benchmarks))
	for _, e := range want.Benchmarks {
		wantBy[e.Name] = e
	}
	var failures []string
	for _, e := range rep.Benchmarks {
		w, ok := wantBy[e.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not in snapshot (regenerate with -perf)", e.Name))
			continue
		}
		delete(wantBy, e.Name)
		status := "ok"
		if e.AllocsPerOp > w.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d > snapshot %d", e.Name, e.AllocsPerOp, w.AllocsPerOp))
			status = "FAIL"
		}
		if nsTol > 0 && w.NsPerOp > 0 && e.NsPerOp > w.NsPerOp*(1+nsTol) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.1f exceeds snapshot %.1f by more than %.0f%%",
				e.Name, e.NsPerOp, w.NsPerOp, nsTol*100))
			status = "FAIL"
		}
		fmt.Fprintf(out, "%-4s %-36s allocs %d (snapshot %d)  ns/op %.1f (snapshot %.1f)\n",
			status, e.Name, e.AllocsPerOp, w.AllocsPerOp, e.NsPerOp, w.NsPerOp)
	}
	leftover := make([]string, 0, len(wantBy))
	for name := range wantBy {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		failures = append(failures, fmt.Sprintf("%s: in snapshot but not produced by this run", name))
	}

	// Shard-scale entries gate on the deterministic columns: per-rank
	// resident bytes and run wire bytes are bit-reproducible across
	// machines, so any change means the partitioning or the collective's
	// accounting changed — regenerate with -perf if intentional. Timing is
	// never compared here.
	wantSS := make(map[string]ShardScaleEntry, len(want.ShardScale))
	for _, e := range want.ShardScale {
		wantSS[e.Name] = e
	}
	for _, e := range rep.ShardScale {
		w, ok := wantSS[e.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not in snapshot (regenerate with -perf)", e.Name))
			continue
		}
		delete(wantSS, e.Name)
		status := "ok"
		if e.ShardResidentBytes != w.ShardResidentBytes || e.DenseResidentBytes != w.DenseResidentBytes {
			failures = append(failures, fmt.Sprintf("%s: resident bytes dense %d / sharded %d, snapshot %d / %d",
				e.Name, e.DenseResidentBytes, e.ShardResidentBytes, w.DenseResidentBytes, w.ShardResidentBytes))
			status = "FAIL"
		}
		if e.ShardWireBytes != w.ShardWireBytes || e.DenseWireBytes != w.DenseWireBytes {
			failures = append(failures, fmt.Sprintf("%s: wire bytes dense %d / sharded %d, snapshot %d / %d",
				e.Name, e.DenseWireBytes, e.ShardWireBytes, w.DenseWireBytes, w.ShardWireBytes))
			status = "FAIL"
		}
		fmt.Fprintf(out, "%-4s %-36s mem reduction %.2fx (snapshot %.2fx)\n",
			status, e.Name, e.MemoryReduction, w.MemoryReduction)
	}
	leftoverSS := make([]string, 0, len(wantSS))
	for name := range wantSS {
		leftoverSS = append(leftoverSS, name)
	}
	sort.Strings(leftoverSS)
	for _, name := range leftoverSS {
		failures = append(failures, fmt.Sprintf("%s: in snapshot but not produced by this run", name))
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: perf regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
