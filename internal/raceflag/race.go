//go:build race

// Package raceflag reports whether the race detector is compiled in.
// Allocation-budget tests skip under race: the detector instruments
// allocations and synchronization, inflating AllocsPerRun counts beyond
// anything the production binary does.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
