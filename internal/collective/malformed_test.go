package collective

import (
	"errors"
	"sync"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/transport"
	"psrahgadmm/internal/wire"
)

// TestSparseCollectivesRejectWrongKind injects mis-typed messages (dense
// and control payloads) onto the tags the sparse collectives receive on.
// Every receiving member must surface ErrPayloadKind — never the
// nil-dereference panic the unchecked in.Sparse.Dim access used to cause.
func TestSparseCollectivesRejectWrongKind(t *testing.T) {
	g := Group{Ranks: []int{0, 1}}
	evil := []wire.Message{
		wire.DenseMsg(0, []float64{1, 2, 3}), // kind mismatch: dense
		wire.Control(0, 7, 8),                // kind mismatch: control
	}
	type run struct {
		name string
		recv func(ep transport.Endpoint, v *sparse.Vector) error
	}
	var ws Workspace
	out := new(sparse.Vector)
	runs := []run{
		{"reduce-root", func(ep transport.Endpoint, v *sparse.Vector) error {
			_, _, err := ReduceSparse(ep, g, 0, 0, v)
			return err
		}},
		{"broadcast-member", func(ep transport.Endpoint, v *sparse.Vector) error {
			// Receiving member with root index 1 (the injector).
			_, _, err := BroadcastSparse(ep, g, 0, 1, v)
			return err
		}},
		{"ring-allreduce", func(ep transport.Endpoint, v *sparse.Vector) error {
			_, err := ws.RingAllreduceSparse(ep, g, 0, v, out)
			return err
		}},
		{"psr-allreduce", func(ep transport.Endpoint, v *sparse.Vector) error {
			_, err := ws.PSRAllreduceSparse(ep, g, 0, v, out)
			return err
		}},
		{"ws-reduce-root", func(ep transport.Endpoint, v *sparse.Vector) error {
			_, err := ws.ReduceSparse(ep, g, 0, 0, v, out)
			return err
		}},
		{"ws-broadcast-member", func(ep transport.Endpoint, v *sparse.Vector) error {
			_, err := ws.BroadcastSparse(ep, g, 0, 1, v, out)
			return err
		}},
	}
	for _, tc := range runs {
		for _, bad := range evil {
			t.Run(tc.name, func(t *testing.T) {
				f := transport.NewChanFabric(2)
				defer f.Close()
				v := sparse.FromDense([]float64{1, 0, 2, 0})

				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Rank 1 injects the mis-typed frame on every tag the
					// receiver might block on, instead of participating.
					ep := f.Endpoint(1)
					for tag := int32(0); tag < 2; tag++ {
						m := bad
						m.Tag = tag
						if err := ep.Send(0, m); err != nil {
							t.Errorf("inject: %v", err)
							return
						}
					}
				}()

				err := func() (err error) {
					defer func() {
						if p := recover(); p != nil {
							t.Errorf("receiver panicked: %v", p)
						}
					}()
					return tc.recv(f.Endpoint(0), v)
				}()
				wg.Wait()
				if err == nil {
					t.Fatal("mis-typed payload accepted")
				}
				if !errors.Is(err, ErrPayloadKind) {
					t.Fatalf("error %v is not ErrPayloadKind", err)
				}
			})
		}
	}
}
