package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"psrahgadmm/internal/sparse"
)

// frames returns one message of every kind for table tests.
func frames() []Message {
	sv := sparse.NewVector(16, 3)
	sv.Index = append(sv.Index, 0, 7, 12)
	sv.Value = append(sv.Value, 1.5, -2.25, 3)
	return []Message{
		Control(5, 1, -2, 1<<40),
		DenseMsg(9, []float64{0.5, -1, 2, 7.75}),
		SparseMsg(3, sv),
	}
}

// TestCRCDetectsEveryPayloadBitFlip flips each payload and trailer bit of an
// encoded frame in turn: every single-bit flip must surface as
// ErrFrameCorrupt (CRC32C detects all 1-bit errors), never as a silently
// different message, and must consume exactly one frame from the stream.
func TestCRCDetectsEveryPayloadBitFlip(t *testing.T) {
	for _, m := range frames() {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
		clean := buf.Bytes()
		if len(clean) != EncodedBytes(m) {
			t.Fatalf("encoded %d bytes, EncodedBytes %d", len(clean), EncodedBytes(m))
		}
		for bit := headerBytes * 8; bit < len(clean)*8; bit++ {
			flipped := append([]byte(nil), clean...)
			flipped[bit/8] ^= 1 << (bit % 8)
			// Append a second clean frame: a corrupt first frame must leave
			// the stream positioned exactly at the second.
			stream := append(flipped, clean...)
			r := bytes.NewReader(stream)
			_, err := Decode(r)
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("kind %v bit %d: err = %v, want ErrFrameCorrupt", m.Kind, bit, err)
			}
			if errors.Is(err, ErrBadFrame) {
				t.Fatalf("kind %v bit %d: ErrFrameCorrupt must not match ErrBadFrame", m.Kind, bit)
			}
			if got, err2 := Decode(r); err2 != nil || got.Tag != m.Tag {
				t.Fatalf("kind %v bit %d: frame after corrupt one: %v (tag %d)", m.Kind, bit, err2, got.Tag)
			}
		}
	}
}

// TestHeaderBitFlipsNeverDecodeSilently covers the header region: a flipped
// header bit must yield some error (ErrFrameCorrupt, ErrBadFrame, or a short
// read) — never a clean decode of wrong metadata.
func TestHeaderBitFlipsNeverDecodeSilently(t *testing.T) {
	m := Control(5, 1, -2, 3)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for bit := 0; bit < headerBytes*8; bit++ {
		flipped := append([]byte(nil), clean...)
		flipped[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("header bit %d: corrupt frame decoded cleanly", bit)
		}
	}
}

// TestVersion1FramesStillDecode hand-builds a legacy frame (no CRC trailer)
// and checks the decoder accepts it unverified.
func TestVersion1FramesStillDecode(t *testing.T) {
	for _, m := range frames() {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
		// Downgrade: flip the version byte to 1 and drop the trailer.
		legacy := append([]byte(nil), buf.Bytes()[:buf.Len()-crcBytes]...)
		legacy[2] = version1
		got, err := Decode(bytes.NewReader(legacy))
		if err != nil {
			t.Fatalf("kind %v: legacy frame rejected: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.Tag != m.Tag {
			t.Fatalf("kind %v: legacy decode mismatch: %+v", m.Kind, got)
		}
	}
}

// TestTruncatedTrailer checks that a version-2 frame cut inside its CRC
// trailer reports an unexpected EOF, not corruption.
func TestTruncatedTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Control(1, 7)); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= crcBytes; cut++ {
		trunc := buf.Bytes()[:buf.Len()-cut]
		if _, err := Decode(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}
