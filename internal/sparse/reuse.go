package sparse

import "sort"

// This file holds the destination-reuse counterparts of the allocating
// constructors in vector.go. Each XxxInto writes into a caller-provided
// vector (grown only when capacity is short) so steady-state iterations
// rebuild their sparse state without touching the heap. Destinations must
// not alias any source argument.

// Reset empties v and sets its dimension, keeping the backing arrays for
// reuse.
func (v *Vector) Reset(dim int) {
	v.Dim = dim
	v.Index = v.Index[:0]
	v.Value = v.Value[:0]
}

// grow ensures capacity for nnz entries without retaining old contents.
func (v *Vector) grow(nnz int) {
	if cap(v.Index) < nnz {
		v.Index = make([]int32, 0, nnz)
		v.Value = make([]float64, 0, nnz)
	}
}

// ReuseFrom makes v a deep copy of src, reusing v's backing arrays when
// they are large enough.
func (v *Vector) ReuseFrom(src *Vector) {
	v.Reset(src.Dim)
	v.grow(len(src.Index))
	v.Index = append(v.Index, src.Index...)
	v.Value = append(v.Value, src.Value...)
}

// FromDenseInto is FromDense writing into dst (allocated when nil).
func FromDenseInto(dst *Vector, x []float64) *Vector {
	if dst == nil {
		return FromDense(x)
	}
	dst.Reset(len(x))
	for i, xv := range x {
		if xv != 0 {
			dst.Index = append(dst.Index, int32(i))
			dst.Value = append(dst.Value, xv)
		}
	}
	return dst
}

// ToDenseInto expands v into dst, which is grown to length Dim when too
// small and fully overwritten (zeros included). Returns the destination.
func (v *Vector) ToDenseInto(dst []float64) []float64 {
	if cap(dst) < v.Dim {
		dst = make([]float64, v.Dim)
	}
	dst = dst[:v.Dim]
	for i := range dst {
		dst[i] = 0
	}
	for k, i := range v.Index {
		dst[i] = v.Value[k]
	}
	return dst
}

// SliceInto is Slice writing into dst (allocated when nil). dst must not
// alias v.
func (v *Vector) SliceInto(dst *Vector, lo, hi int) *Vector {
	if lo < 0 || hi < lo || hi > v.Dim {
		panic("sparse: Slice bounds out of range")
	}
	from := sort.Search(len(v.Index), func(k int) bool { return int(v.Index[k]) >= lo })
	to := sort.Search(len(v.Index), func(k int) bool { return int(v.Index[k]) >= hi })
	if dst == nil {
		dst = NewVector(hi-lo, to-from)
	} else {
		dst.Reset(hi - lo)
		dst.grow(to - from)
	}
	for k := from; k < to; k++ {
		dst.Index = append(dst.Index, v.Index[k]-int32(lo))
		dst.Value = append(dst.Value, v.Value[k])
	}
	return dst
}

// MergeInto is Merge writing into dst (allocated when nil). dst must not
// alias a or b.
func MergeInto(dst, a, b *Vector) *Vector {
	if a.Dim != b.Dim {
		panic("sparse: Merge dimension mismatch")
	}
	if dst == nil {
		dst = NewVector(a.Dim, len(a.Index)+len(b.Index))
	} else {
		if dst == a || dst == b {
			panic("sparse: MergeInto destination aliases a source")
		}
		dst.Reset(a.Dim)
		dst.grow(len(a.Index) + len(b.Index))
	}
	i, j := 0, 0
	for i < len(a.Index) && j < len(b.Index) {
		switch {
		case a.Index[i] < b.Index[j]:
			dst.Index = append(dst.Index, a.Index[i])
			dst.Value = append(dst.Value, a.Value[i])
			i++
		case a.Index[i] > b.Index[j]:
			dst.Index = append(dst.Index, b.Index[j])
			dst.Value = append(dst.Value, b.Value[j])
			j++
		default:
			if s := a.Value[i] + b.Value[j]; s != 0 {
				dst.Index = append(dst.Index, a.Index[i])
				dst.Value = append(dst.Value, s)
			}
			i++
			j++
		}
	}
	for ; i < len(a.Index); i++ {
		dst.Index = append(dst.Index, a.Index[i])
		dst.Value = append(dst.Value, a.Value[i])
	}
	for ; j < len(b.Index); j++ {
		dst.Index = append(dst.Index, b.Index[j])
		dst.Value = append(dst.Value, b.Value[j])
	}
	return dst
}

// ConcatInto is Concat writing into dst (allocated when nil). dst must
// not alias any block.
func ConcatInto(dst *Vector, dim int, offsets []int, blocks []*Vector) *Vector {
	if len(offsets) != len(blocks) {
		panic("sparse: Concat offsets/blocks length mismatch")
	}
	nnz := 0
	for _, b := range blocks {
		nnz += b.NNZ()
	}
	if dst == nil {
		dst = NewVector(dim, nnz)
	} else {
		dst.Reset(dim)
		dst.grow(nnz)
	}
	prevEnd := 0
	for bi, b := range blocks {
		off := offsets[bi]
		if off < prevEnd {
			panic("sparse: Concat blocks overlap or out of order")
		}
		if off+b.Dim > dim {
			panic("sparse: Concat block exceeds dimension")
		}
		for k, i := range b.Index {
			dst.Index = append(dst.Index, i+int32(off))
			dst.Value = append(dst.Value, b.Value[k])
		}
		prevEnd = off + b.Dim
	}
	return dst
}
