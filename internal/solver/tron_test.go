package solver

import (
	"math"
	"math/rand"
	"testing"

	"psrahgadmm/internal/sparse"
	"psrahgadmm/internal/vec"
)

// quadratic is f(x) = ½xᵀQx − bᵀx with SPD diagonal-dominant Q, whose
// unique minimizer solves Qx = b.
type quadratic struct {
	q [][]float64
	b []float64
}

func newQuadratic(r *rand.Rand, n int) *quadratic {
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	// Q = MᵀM + I for random M: SPD.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = r.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[k][i] * m[k][j]
			}
			q[i][j] = s
			if i == j {
				q[i][j] += 1
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return &quadratic{q: q, b: b}
}

func (o *quadratic) Dim() int { return len(o.b) }

func (o *quadratic) Eval(x, g []float64) float64 {
	n := len(x)
	var f float64
	for i := 0; i < n; i++ {
		var qx float64
		for j := 0; j < n; j++ {
			qx += o.q[i][j] * x[j]
		}
		g[i] = qx - o.b[i]
		f += 0.5*x[i]*qx - o.b[i]*x[i]
	}
	return f
}

func (o *quadratic) HessVec(v, hv []float64) {
	n := len(v)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += o.q[i][j] * v[j]
		}
		hv[i] = s
	}
}

// solveDense solves Qx=b by Gaussian elimination for the reference answer.
func (o *quadratic) solve() []float64 {
	n := len(o.b)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append(vec.Clone(o.q[i]), o.b[i])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

func TestTRONSolvesQuadratics(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 10; trial++ {
		n := r.Intn(12) + 2
		q := newQuadratic(r, n)
		x := make([]float64, n)
		res := TRON(q, x, TronOptions{GradTol: 1e-8, MaxIter: 200})
		if !res.Converged {
			t.Fatalf("trial %d: not converged: %+v", trial, res)
		}
		want := q.solve()
		if !vec.WithinTol(x, want, 1e-5) {
			t.Fatalf("trial %d: x=%v want %v", trial, x, want)
		}
		if res.CGIters == 0 || res.FunEvals == 0 {
			t.Fatalf("work counters empty: %+v", res)
		}
	}
}

func TestTRONAtOptimumImmediateStop(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	q := newQuadratic(r, 5)
	x := q.solve()
	res := TRON(q, x, TronOptions{})
	if !res.Converged {
		t.Fatalf("not converged at optimum: %+v", res)
	}
	if res.Iters > 1 {
		t.Fatalf("took %d iterations at the optimum", res.Iters)
	}
}

func TestTRONZeroGradientStart(t *testing.T) {
	// f ≡ const at x=0 for b=0: gradient is exactly zero.
	q := &quadratic{q: [][]float64{{1, 0}, {0, 1}}, b: []float64{0, 0}}
	x := make([]float64, 2)
	res := TRON(q, x, TronOptions{})
	if !res.Converged || res.Iters != 0 {
		t.Fatalf("zero-gradient start: %+v", res)
	}
}

// checkGradient compares analytic gradient to central differences.
func checkGradient(t *testing.T, obj Objective, x []float64, tol float64) {
	t.Helper()
	n := obj.Dim()
	g := make([]float64, n)
	obj.Eval(x, g)
	h := 1e-6
	scratch := make([]float64, n)
	for i := 0; i < n; i++ {
		xp := vec.Clone(x)
		xp[i] += h
		fp := obj.Eval(xp, scratch)
		xm := vec.Clone(x)
		xm[i] -= h
		fm := obj.Eval(xm, scratch)
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-g[i]) > tol*(1+math.Abs(fd)) {
			t.Fatalf("gradient[%d]: analytic %v, fd %v", i, g[i], fd)
		}
	}
	// Restore curvature cache at x for subsequent HessVec checks.
	obj.Eval(x, g)
}

// checkHessVec compares H·v against finite differences of the gradient.
func checkHessVec(t *testing.T, obj Objective, x []float64, tol float64) {
	t.Helper()
	n := obj.Dim()
	r := rand.New(rand.NewSource(77))
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	g := make([]float64, n)
	obj.Eval(x, g)
	hv := make([]float64, n)
	obj.HessVec(v, hv)

	h := 1e-6
	xp := vec.Clone(x)
	vec.Axpy(h, v, xp)
	gp := make([]float64, n)
	obj.Eval(xp, gp)
	xm := vec.Clone(x)
	vec.Axpy(-h, v, xm)
	gm := make([]float64, n)
	obj.Eval(xm, gm)
	for i := 0; i < n; i++ {
		fd := (gp[i] - gm[i]) / (2 * h)
		if math.Abs(fd-hv[i]) > tol*(1+math.Abs(fd)) {
			t.Fatalf("HessVec[%d]: analytic %v, fd %v", i, hv[i], fd)
		}
	}
}

func smallLogistic(r *rand.Rand, rows, cols int) (*sparse.CSR, []float64) {
	m := sparse.NewCSR(0, cols, 0)
	labels := make([]float64, rows)
	for i := 0; i < rows; i++ {
		var cs []int32
		var vs []float64
		for c := 0; c < cols; c++ {
			if r.Float64() < 0.5 {
				cs = append(cs, int32(c))
				vs = append(vs, r.NormFloat64())
			}
		}
		m.AppendRow(cs, vs)
		if r.Float64() < 0.5 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	return m, labels
}

func TestLogisticProxGradHess(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	data, labels := smallLogistic(r, 12, 6)
	y := make([]float64, 6)
	z := make([]float64, 6)
	for i := range y {
		y[i] = r.NormFloat64() * 0.1
		z[i] = r.NormFloat64() * 0.1
	}
	obj := NewLogisticProx(data, labels, 1.5, y, z)
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.NormFloat64() * 0.3
	}
	checkGradient(t, obj, x, 1e-4)
	checkHessVec(t, obj, x, 1e-4)
}

func TestLeastSquaresProxGradHess(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	data, _ := smallLogistic(r, 10, 5)
	b := make([]float64, 10)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	y := make([]float64, 5)
	z := make([]float64, 5)
	obj := NewLeastSquaresProx(data, b, 0.7, y, z)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	checkGradient(t, obj, x, 1e-4)
	checkHessVec(t, obj, x, 1e-4)
}

func TestTRONSolvesLogisticProx(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	data, labels := smallLogistic(r, 40, 8)
	y := make([]float64, 8)
	z := make([]float64, 8)
	obj := NewLogisticProx(data, labels, 1.0, y, z)
	x := make([]float64, 8)
	res := TRON(obj, x, TronOptions{GradTol: 1e-6, MaxIter: 100})
	if !res.Converged {
		t.Fatalf("TRON failed on logistic prox: %+v", res)
	}
	// At the solution the gradient must be ~0.
	g := make([]float64, 8)
	obj.Eval(x, g)
	if vec.Nrm2(g) > 1e-5 {
		t.Fatalf("gradient norm at solution: %v", vec.Nrm2(g))
	}
}

func TestLogLossStable(t *testing.T) {
	// Huge positive margin: loss → 0 without overflow.
	if l := LogLoss(1000); l != 0 {
		if math.IsNaN(l) || math.IsInf(l, 0) || l > 1e-300 {
			t.Fatalf("LogLoss(1000) = %v", l)
		}
	}
	// Huge negative margin: loss ≈ −margin.
	if l := LogLoss(-1000); math.Abs(l-1000) > 1e-9 {
		t.Fatalf("LogLoss(-1000) = %v", l)
	}
	if l := LogLoss(0); math.Abs(l-math.Ln2) > 1e-15 {
		t.Fatalf("LogLoss(0) = %v", l)
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := Sigmoid(1000); s != 1 {
		t.Fatalf("Sigmoid(1000) = %v", s)
	}
	if s := Sigmoid(-1000); s != 0 && s > 1e-300 {
		t.Fatalf("Sigmoid(-1000) = %v", s)
	}
	if s := Sigmoid(0); s != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", s)
	}
	// Symmetry σ(t) + σ(−t) = 1.
	for _, v := range []float64{0.3, 2, 17} {
		if d := Sigmoid(v) + Sigmoid(-v) - 1; math.Abs(d) > 1e-15 {
			t.Fatalf("sigmoid symmetry broken at %v: %v", v, d)
		}
	}
}

func TestLocalLossMatchesEval(t *testing.T) {
	// With y=0, z=0, rho=0 the prox objective equals the raw loss.
	r := rand.New(rand.NewSource(45))
	data, labels := smallLogistic(r, 15, 5)
	y := make([]float64, 5)
	z := make([]float64, 5)
	obj := NewLogisticProx(data, labels, 0, y, z)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	g := make([]float64, 5)
	f := obj.Eval(x, g)
	if math.Abs(f-obj.LocalLoss(x)) > 1e-12*(1+math.Abs(f)) {
		t.Fatalf("Eval %v != LocalLoss %v with zero prox terms", f, obj.LocalLoss(x))
	}
}

func BenchmarkTRONLogistic(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	data, labels := smallLogistic(r, 200, 50)
	y := make([]float64, 50)
	z := make([]float64, 50)
	obj := NewLogisticProx(data, labels, 1.0, y, z)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := make([]float64, 50)
		TRON(obj, x, TronOptions{})
	}
}
