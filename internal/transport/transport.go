// Package transport provides the message-passing fabric the PSRA-HGADMM
// algorithms run on. It plays the role MPICH plays in the paper: reliable,
// ordered, tagged point-to-point messaging between ranks, with two
// interchangeable implementations:
//
//   - ChanFabric: all ranks are goroutines in one process, messages travel
//     over channels. This is the default for the engine, the tests, and the
//     benchmark harness.
//   - TCPFabric: each rank is a peer in a full TCP mesh using the wire
//     codec. This is the "custom RPC" substitute for MPI when ranks live in
//     separate processes (see cmd/psra-worker).
//
// Collectives (package collective) and the WLG runtime (package wlg) are
// written purely against Endpoint, so every algorithm runs unchanged on
// either fabric.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"psrahgadmm/internal/wire"
)

// AnySource makes Recv match a message from any sender, like MPI_ANY_SOURCE.
const AnySource = -1

// ErrClosed is returned by Send/Recv after the endpoint has been closed.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrTimeout is returned (wrapped) by RecvTimeout when the deadline expires
// before a matching message arrives. Check with errors.Is.
var ErrTimeout = errors.New("transport: deadline exceeded")

// PeerDownError reports that a specific peer rank has failed: its
// connection broke, a frame from it failed to decode, or it went silent
// past the configured heartbeat timeout. Once a peer is down, every Send to
// it and every Recv that could only be satisfied by it fails fast with this
// error instead of blocking forever — the property the WLG runtime needs to
// turn a crashed worker into a clean abort rather than a cluster-wide hang.
type PeerDownError struct {
	// Peer is the world rank that failed.
	Peer int
	// Cause is the first error observed from the peer (EOF, decode
	// failure, write error, or heartbeat timeout).
	Cause error
	// Graceful is true when the peer announced an orderly shutdown (a
	// goodbye frame preceded the disconnect) rather than crashing. A
	// graceful departure still fails targeted Sends and Recvs — the peer
	// will never speak again — but is tolerated by Recv(AnySource) waits,
	// which only a crash (or a fully departed world) aborts.
	Graceful bool
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer %d down: %v", e.Peer, e.Cause)
}

func (e *PeerDownError) Unwrap() error { return e.Cause }

// Endpoint is one rank's handle onto the fabric. Send and Recv follow MPI
// point-to-point semantics: messages between a fixed (sender, receiver)
// pair are delivered in send order, and Recv matches on (source, tag),
// buffering non-matching messages until a matching Recv arrives.
//
// An Endpoint is safe for use by a single goroutine (one rank = one
// goroutine); concurrent Sends from the owning goroutine's helpers must be
// externally serialized.
type Endpoint interface {
	// Rank returns this endpoint's 0-based rank.
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers m to rank `to`. The From field is stamped by the
	// fabric. Delivered payloads never alias the sender's buffers: the
	// channel fabric deep-copies float payloads, the TCP fabric
	// serializes. Senders may mutate their buffers as soon as Send
	// returns.
	Send(to int, m wire.Message) error
	// Recv blocks until a message with the given tag from the given source
	// (or from anyone when from == AnySource) is available.
	//
	// Delivery guarantee around shutdown: messages already delivered to
	// this endpoint before Close are never dropped — Recv drains and
	// matches them first and returns ErrClosed only once no buffered
	// message matches. Likewise, frames received from a peer before it
	// died are matched before Recv reports the peer's PeerDownError.
	//
	// Failure policy: a targeted Recv fails once its source is down for
	// any reason. An AnySource Recv fails on the first crashed peer, but
	// tolerates graceful departures (PeerDownError.Graceful) while any
	// remote peer is still alive.
	Recv(from int, tag int32) (wire.Message, error)
	// RecvTimeout is Recv with a deadline: it returns an error wrapping
	// ErrTimeout if no matching message arrives within d. d <= 0 means no
	// deadline (identical to Recv). On fabrics with failure detection a
	// dead peer surfaces as PeerDownError as soon as it is detected, which
	// may be well before the deadline.
	RecvTimeout(from int, tag int32, d time.Duration) (wire.Message, error)
	// Stats returns cumulative traffic and error counters for this endpoint.
	Stats() Stats
	// Close tears down the endpoint. Blocked Recvs return ErrClosed (after
	// draining already-delivered messages, per the Recv contract).
	Close() error
}

// NonBlockingSender is the optional interface of endpoints whose Send
// needs no concurrent receiver to make progress (in-process buffered
// delivery). Collectives consult it to send inline instead of spawning a
// goroutine per message — the dominant per-iteration allocation on hot
// paths. Endpoints that may block in Send (TCP flow control, injected
// fault delays) simply don't implement it, or return false; wrappers
// should forward the question to what they wrap.
type NonBlockingSender interface {
	SendNonBlocking() bool
}

// SendsNonBlocking reports whether ep advertises non-blocking sends.
func SendsNonBlocking(ep Endpoint) bool {
	nb, ok := ep.(NonBlockingSender)
	return ok && nb.SendNonBlocking()
}

// Fabric is a set of endpoints sharing one world — the handle the engine
// holds to build, wrap (fault injection), and tear down a whole cluster of
// ranks at once. ChanFabric and FaultFabric implement it.
type Fabric interface {
	// Size returns the number of ranks.
	Size() int
	// Endpoint returns rank i's endpoint.
	Endpoint(i int) Endpoint
	// Close closes every endpoint, unblocking all ranks.
	Close()
}

// Stats counts traffic an endpoint has sent and errors it has observed.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	// RecvErrors counts frames that failed to decode on this endpoint's
	// reader side (corrupted frames, protocol violations). A clean peer
	// shutdown (EOF at a frame boundary) is not counted.
	RecvErrors int64
	// HeartbeatsSent counts keepalive frames, which are deliberately
	// excluded from MsgsSent/BytesSent so algorithm-traffic accounting is
	// unchanged by liveness plumbing.
	HeartbeatsSent int64
	// FramesCorrupt counts frames whose CRC32C trailer failed verification
	// on this endpoint's reader side. Each one was dropped (never delivered
	// to the algorithm) and recovered by the collective retry layer; a
	// nonzero count with a correct result is the integrity layer working.
	FramesCorrupt int64
}

type statsCounter struct {
	msgs       atomic.Int64
	bytes      atomic.Int64
	recvErrs   atomic.Int64
	heartbeats atomic.Int64
	corrupt    atomic.Int64
}

func (s *statsCounter) record(m wire.Message) {
	s.msgs.Add(1)
	s.bytes.Add(int64(wire.EncodedBytes(m)))
}

func (s *statsCounter) snapshot() Stats {
	return Stats{
		MsgsSent:       s.msgs.Load(),
		BytesSent:      s.bytes.Load(),
		RecvErrors:     s.recvErrs.Load(),
		HeartbeatsSent: s.heartbeats.Load(),
		FramesCorrupt:  s.corrupt.Load(),
	}
}

func checkRank(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", rank, size)
	}
	return nil
}

// pending is an ordered buffer of received-but-unmatched messages.
type pending struct {
	msgs []wire.Message
}

// take removes and returns the first buffered message matching (from, tag).
func (p *pending) take(from int, tag int32) (wire.Message, bool) {
	for i, m := range p.msgs {
		if m.Tag != tag {
			continue
		}
		if from != AnySource && int(m.From) != from {
			continue
		}
		p.msgs = append(p.msgs[:i], p.msgs[i+1:]...)
		return m, true
	}
	return wire.Message{}, false
}

func (p *pending) put(m wire.Message) { p.msgs = append(p.msgs, m) }

// matches reports whether m satisfies a Recv(from, tag) call.
func matches(m wire.Message, from int, tag int32) bool {
	return m.Tag == tag && (from == AnySource || int(m.From) == from)
}

// deadlineChan turns a timeout into a select-able channel. The returned
// stop func must be called to release the timer; the channel is nil (never
// ready) when d <= 0.
func deadlineChan(d time.Duration) (<-chan time.Time, func()) {
	if d <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}
