package wlg

import (
	"math"
	"testing"

	"psrahgadmm/internal/exchange"
	"psrahgadmm/internal/simnet"
	"psrahgadmm/internal/vec"
)

// TestTopKPlainRuntimeExactWhenKCoversSupport drives the sparse top-k
// transport end to end — intra-node sparse reduce, GG grouping, sparse
// PSR-Allreduce among Leaders, sparse broadcast — on contributions small
// enough that selection never truncates (nnz < KMin), so every aggregate
// must match the exact consensus bit-for-bit.
func TestTopKPlainRuntimeExactWhenKCoversSupport(t *testing.T) {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 3, GroupThreshold: 0, Codec: exchange.TopK}
	dim := 7 // nnz 7 < DefaultKMin: selection is the identity
	agg, counts := runWLG(t, cfg, dim, func(r, iter int) []float64 {
		v := rankVec(dim, r)
		vec.Scale(float64(iter+1), v)
		return v
	})
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if counts[r][iter] != topo.Size() {
				t.Fatalf("rank %d iter %d contributors = %d, want %d", r, iter, counts[r][iter], topo.Size())
			}
			wantSum := float64(iter+1) * float64(int(1)<<topo.Size()-1)
			for j, got := range agg[r][iter] {
				if got != wantSum {
					t.Fatalf("rank %d iter %d slot %d = %v, want %v", r, iter, j, got, wantSum)
				}
			}
		}
	}
}

// TestTopKPlainRuntimeSelectsTopCoordinates pins the truncation itself:
// with dim 64 every rank's default k is 32, so a single round over a
// magnitude ramp must aggregate exactly the top half of the coordinates
// and drop the rest on the wire.
func TestTopKPlainRuntimeSelectsTopCoordinates(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 1, GroupThreshold: 0, Codec: exchange.TopK}
	const dim = 64
	agg, _ := runWLG(t, cfg, dim, func(r, iter int) []float64 {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(j + 1) // magnitude ramp, identical on every rank
		}
		return v
	})
	n := float64(topo.Size())
	for r := 0; r < topo.Size(); r++ {
		for j, got := range agg[r][0] {
			want := 0.0
			if j >= dim/2 { // top 32 magnitudes are indices 32..63
				want = n * float64(j+1)
			}
			if got != want {
				t.Fatalf("rank %d slot %d = %v, want %v", r, j, got, want)
			}
		}
	}
}

// TestTopKElasticRuntimeValuesOnly checks the elastic composition: the
// dense transport is unchanged but contributions still pass through the
// error-feedback state. With nnz < KMin the selection is the identity, so
// a fault-free elastic topk run must agree with exact consensus.
func TestTopKElasticRuntimeValuesOnly(t *testing.T) {
	topo := simnet.Topology{Nodes: 2, WorkersPerNode: 2}
	cfg := Config{Topo: topo, MaxIter: 3, GroupThreshold: 0, Codec: exchange.TopK, Elastic: true}
	dim := 5
	agg, counts := runWLG(t, cfg, dim, func(r, iter int) []float64 {
		return rankVec(dim, r)
	})
	wantSum := math.Ldexp(1, topo.Size()) - 1 // Σ 2^r
	for r := 0; r < topo.Size(); r++ {
		for iter := 0; iter < cfg.MaxIter; iter++ {
			if counts[r][iter] != topo.Size() {
				t.Fatalf("rank %d iter %d contributors = %d, want %d", r, iter, counts[r][iter], topo.Size())
			}
			for j, got := range agg[r][iter] {
				if got != wantSum {
					t.Fatalf("rank %d iter %d slot %d = %v, want %v", r, iter, j, got, wantSum)
				}
			}
		}
	}
}

// TestTopKShardBlocksBitIdentical routes the inter-Leader aggregation
// through the shard-aware collective (ShardBlocks > 0) and checks every
// rank's aggregate history against the classic PSR-Allreduce run bit for
// bit: block ownership changes the message schedule, never the per-block
// member-order reduction. Truncation is active (dim 64 ⇒ k 32), so the
// error-feedback residuals must also evolve identically. Contributions
// are integer-valued: the GG groups Leaders in (scheduling-dependent)
// arrival order, so only exactly-associative values make the comparison
// meaningful across runs.
func TestTopKShardBlocksBitIdentical(t *testing.T) {
	topo := simnet.Topology{Nodes: 3, WorkersPerNode: 2}
	const dim = 64
	contrib := func(r, iter int) []float64 {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64((j+3*r+iter)%dim - dim/3)
		}
		return v
	}
	mk := func(blocks int) Config {
		return Config{Topo: topo, MaxIter: 4, GroupThreshold: 0, Codec: exchange.TopK, ShardBlocks: blocks}
	}
	plainAgg, plainCnt := runWLG(t, mk(0), dim, contrib)
	for _, blocks := range []int{1, 5, 16} {
		shardAgg, shardCnt := runWLG(t, mk(blocks), dim, contrib)
		for r := 0; r < topo.Size(); r++ {
			for iter := 0; iter < 4; iter++ {
				if plainCnt[r][iter] != shardCnt[r][iter] {
					t.Fatalf("blocks=%d rank %d iter %d contributors %d, want %d",
						blocks, r, iter, shardCnt[r][iter], plainCnt[r][iter])
				}
				if !vec.Equal(plainAgg[r][iter], shardAgg[r][iter]) {
					t.Fatalf("blocks=%d rank %d iter %d aggregate diverged from classic PSR-Allreduce", blocks, r, iter)
				}
			}
		}
	}
}
